#!/usr/bin/env bash
# Experiments harness: builds the bench binaries, runs them all offline,
# aggregates their JSON into a single BENCH_<mode>.json, regenerates
# EXPERIMENTS.md from the tables, and can diff the run against a committed
# baseline aggregate (failing on out-of-tolerance regressions; direction-
# hinted metrics only fail when they drift the bad way).
#
# Usage:
#   scripts/bench.sh                       # quick mode (default, ~10 s)
#   scripts/bench.sh --quick               # same, explicit
#   scripts/bench.sh --full                # paper-scale op budgets
#   scripts/bench.sh --system-benchmark    # micro bench vs system library
#                                          # (uses build-sysbench/ unless
#                                          # BUILD_DIR is set explicitly)
#   scripts/bench.sh --diff <baseline>     # also diff against a baseline
#   scripts/bench.sh --tolerance 0.25      # diff tolerance (relative)
#   scripts/bench.sh --no-experiments-md   # never rewrite EXPERIMENTS.md
#   scripts/bench.sh --experiments-md      # rewrite it even in --full mode
#   scripts/bench.sh --write-baseline      # refresh bench/BENCH_baseline.json
#                                          # (quick aggregate, wall-clock
#                                          # metrics stripped) — the file CI
#                                          # diffs every run against
#   BUILD_DIR=out scripts/bench.sh         # custom build directory
#
# EXPERIMENTS.md is the committed quick-mode baseline: quick runs rewrite
# it by default, --full runs leave it alone unless --experiments-md.
#
# Artifacts land in <build>/bench-out/: one .json + .txt per bench binary
# plus the merged BENCH_quick.json (or BENCH_full.json). Model numbers are
# deterministic; bench_micro_transport sections are wall-clock and vary by
# machine (benchctl diff skips them by default).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR_WAS_SET="${BUILD_DIR:+1}"
BUILD_DIR="${BUILD_DIR:-build}"
MODE=quick
CMAKE_ARGS=()
DIFF_BASELINE=""
TOLERANCE=0.25
WRITE_BASELINE=0
# Empty = auto: EXPERIMENTS.md is the committed QUICK-mode baseline, so it
# is only (re)written for quick runs; a --full run would otherwise replace
# it with numbers a quick run can never reproduce.
WRITE_EXPERIMENTS_MD=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) MODE=quick ;;
    --full) MODE=full ;;
    --system-benchmark)
      CMAKE_ARGS+=(-DROS2_USE_SYSTEM_BENCHMARK=ON)
      # Keep the system-library configure out of the default (vendored)
      # build dir's CMake cache — unless the caller pinned BUILD_DIR
      # (scripts/ci.sh does, with its own suffix scheme).
      [[ -z "$BUILD_DIR_WAS_SET" ]] && BUILD_DIR="build-sysbench"
      ;;
    --diff)
      shift
      [[ $# -gt 0 ]] || { echo "--diff needs a baseline path" >&2; exit 2; }
      DIFF_BASELINE="$1"
      ;;
    --tolerance)
      shift
      [[ $# -gt 0 ]] || { echo "--tolerance needs a value" >&2; exit 2; }
      TOLERANCE="$1"
      ;;
    --no-experiments-md) WRITE_EXPERIMENTS_MD=0 ;;
    --experiments-md) WRITE_EXPERIMENTS_MD=1 ;;
    --write-baseline) WRITE_BASELINE=1 ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
  shift
done

if [[ -z "$WRITE_EXPERIMENTS_MD" ]]; then
  [[ "$MODE" == quick ]] && WRITE_EXPERIMENTS_MD=1 || WRITE_EXPERIMENTS_MD=0
fi

if [[ "$WRITE_BASELINE" == 1 && "$MODE" != quick ]]; then
  # Fail fast, before the (long) full-mode bench run: the committed
  # baseline is the quick-mode aggregate by definition.
  echo "--write-baseline requires quick mode (the committed baseline is" \
       "the quick-mode aggregate)" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

OUT_DIR="$BUILD_DIR/bench-out"
mkdir -p "$OUT_DIR"

# Canonical order: figures, table, ablations, then the real-time micro
# bench — this is the section order of the regenerated EXPERIMENTS.md.
MODEL_BENCHES=(
  bench_fig1_workloads
  bench_fig3_local_fio
  bench_fig4_remote_spdk
  bench_fig5_dfs
  bench_table1_gpus
  bench_ablation_checksum
  bench_ablation_gpudirect
  bench_ablation_host_savings
  bench_ablation_inline_crypto
  bench_ablation_multitenant
  bench_micro_sim
  bench_micro_rpc
  bench_micro_pipeline
  bench_micro_dfs
  bench_micro_mt
  bench_micro_rebuild
  bench_micro_telemetry
)

QUICK_FLAG=""
[[ "$MODE" == quick ]] && QUICK_FLAG="--quick"

for bench in "${MODEL_BENCHES[@]}"; do
  echo "== running $bench ($MODE) =="
  "$BUILD_DIR/bench/$bench" $QUICK_FLAG \
      --json="$OUT_DIR/$bench.json" > "$OUT_DIR/$bench.txt"
done

# bench_micro_transport measures real CPU time; quick mode just shortens
# the per-benchmark measurement window. Plain seconds (no "s" suffix):
# google-benchmark < 1.8 rejects suffixed values, >= 1.8 and the vendored
# shim accept both.
MICRO_MIN_TIME="0.5"
[[ "$MODE" == quick ]] && MICRO_MIN_TIME="0.02"
echo "== running bench_micro_transport ($MODE, min_time=$MICRO_MIN_TIME) =="
"$BUILD_DIR/bench/bench_micro_transport" \
    "--benchmark_min_time=$MICRO_MIN_TIME" \
    "--benchmark_out=$OUT_DIR/bench_micro_transport.json" \
    --benchmark_out_format=json > "$OUT_DIR/bench_micro_transport.txt"

# The one list of merge inputs: the aggregate and the committed baseline
# must always be built from the same reports.
MERGE_INPUTS=()
for bench in "${MODEL_BENCHES[@]}"; do
  MERGE_INPUTS+=("$OUT_DIR/$bench.json")
done
MERGE_INPUTS+=("$OUT_DIR/bench_micro_transport.json")

AGGREGATE="$OUT_DIR/BENCH_${MODE}.json"
MERGE_ARGS=(merge "--out=$AGGREGATE")
if [[ "$WRITE_EXPERIMENTS_MD" == 1 ]]; then
  MERGE_ARGS+=("--experiments-md=EXPERIMENTS.md")
fi
"$BUILD_DIR/src/bench/ros2_benchctl" "${MERGE_ARGS[@]}" "${MERGE_INPUTS[@]}"
echo "aggregate: $AGGREGATE"
[[ "$WRITE_EXPERIMENTS_MD" == 1 ]] && echo "regenerated: EXPERIMENTS.md"

# The diff runs BEFORE any baseline refresh, so `--write-baseline --diff
# bench/BENCH_baseline.json` compares against the PREVIOUS committed
# baseline (and, under set -e, a regression blocks the refresh) instead of
# vacuously diffing the run against itself.
if [[ -n "$DIFF_BASELINE" ]]; then
  # A baseline that IS the fresh aggregate would diff the file against
  # itself and always pass; save a copy of a previous run's aggregate
  # (e.g. cp .../BENCH_quick.json /tmp/baseline.json) and diff that.
  if [[ "$(realpath -m "$DIFF_BASELINE")" == "$(realpath -m "$AGGREGATE")" ]]; then
    echo "--diff baseline resolves to the aggregate this run just wrote" \
         "($AGGREGATE); diff a saved copy instead" >&2
    exit 2
  fi
  "$BUILD_DIR/src/bench/ros2_benchctl" diff \
      "--tolerance=$TOLERANCE" "$DIFF_BASELINE" "$AGGREGATE"
fi

if [[ "$WRITE_BASELINE" == 1 ]]; then
  # The committed regression baseline: same inputs, wall-clock (realtime)
  # reports/metrics stripped so the file is byte-stable across machines.
  "$BUILD_DIR/src/bench/ros2_benchctl" merge \
      "--out=bench/BENCH_baseline.json" --strip-realtime "${MERGE_INPUTS[@]}"
  echo "baseline: bench/BENCH_baseline.json"
fi
