#!/usr/bin/env bash
# Project-invariant lint: the repo's standing rules, enforced instead of
# remembered. Each violation prints one line
#
#   LINT-FAIL <rule>: <file>:<line>: <what>
#
# and the script exits 1 if anything fired. Rules:
#
#   adhoc-stats      New ad-hoc `struct FooStats` outside src/telemetry.
#                    Runtime stats register (or Link) in the telemetry
#                    tree (ROADMAP standing constraint); the three
#                    pre-tree structs that survive as views over tree
#                    objects are grandfathered below.
#   raw-mutex        `std::mutex` / `std::condition_variable` /
#                    `std::shared_mutex` in src/ outside the annotated
#                    wrapper (common/thread_annotations.h). Raw mutexes
#                    carry no capability, so Clang's thread-safety
#                    analysis cannot see them; use common::Mutex,
#                    common::MutexLock, and common::CondVar.
#   nodiscard        A free factory function returning Status/Result
#                    without [[nodiscard]] on it (on the same or the
#                    preceding line). The classes themselves are
#                    [[nodiscard]]; the attribute on factories keeps the
#                    contract visible at the declaration.
#   include-guard    A header without `#pragma once`.
#   banned-function  strcpy/strcat/sprintf/gets/tmpnam — unbounded or
#                    unsafe C library calls with bounded replacements.
#
# When clang-tidy AND a compile_commands.json exist, the committed
# .clang-tidy profile also runs over the scanned sources (advisory depth
# on top of the grep rules; absent tooling never fails the stage).
#
# Usage:
#   scripts/lint.sh                 # lint src/ (the CI gate)
#   scripts/lint.sh --dir <path>    # lint another tree (the selftest
#                                   # points this at seeded violations)
#   scripts/lint.sh --no-clang-tidy # grep rules only
set -euo pipefail

cd "$(dirname "$0")/.."

ROOT="src"
RUN_TIDY=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --dir)
      shift
      [[ $# -gt 0 ]] || { echo "--dir needs a path" >&2; exit 2; }
      ROOT="$1"
      ;;
    --no-clang-tidy)
      RUN_TIDY=0
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
  shift
done

[[ -d "$ROOT" ]] || { echo "no such directory: $ROOT" >&2; exit 2; }

FAILED=0
fail() {  # fail <rule> <file:line> <message>
  echo "LINT-FAIL $1: $2: $3"
  FAILED=1
}

# Every C++ source under the scanned root (NUL-safe not needed: the tree
# has no whitespace paths, and ctest would have failed long before this).
mapfile -t SOURCES < <(find "$ROOT" \( -name '*.h' -o -name '*.cc' \) \
    -type f | sort)
mapfile -t HEADERS < <(find "$ROOT" -name '*.h' -type f | sort)

# ---------------------------------------------------------- adhoc-stats
# Grandfathered: pre-telemetry-tree structs that PR 7 rebuilt as VIEWS
# over tree-registered objects (accessors read the same Counter/Gauge the
# tree snapshots). New stat structs do not get added here — they register
# in the tree instead.
ADHOC_ALLOW='src/rpc/data_rpc\.h|src/daos/vos\.h|src/daos/engine\.h'
for f in "${SOURCES[@]}"; do
  [[ "$f" == */telemetry/* ]] && continue
  [[ "$f" =~ ^($ADHOC_ALLOW)$ ]] && continue
  while IFS=: read -r line _; do
    [[ -n "$line" ]] || continue
    fail adhoc-stats "$f:$line" \
        "ad-hoc stat struct; register in the telemetry tree instead"
  done < <(grep -nE 'struct [A-Za-z0-9_]*Stats\b' "$f" || true)
done

# ------------------------------------------------------------ raw-mutex
for f in "${SOURCES[@]}"; do
  [[ "$f" == */thread_annotations.h ]] && continue
  while IFS=: read -r line _; do
    [[ -n "$line" ]] || continue
    fail raw-mutex "$f:$line" \
        "raw std::mutex family; use common::Mutex (thread_annotations.h)"
  done < <(grep -nE \
      'std::(mutex|shared_mutex|recursive_mutex|condition_variable)\b' \
      "$f" || true)
done

# ------------------------------------------------------------ nodiscard
# Free factory declarations at line start: `Status Foo(...)` or
# `Result<T> Foo(...)` (optionally inline/constexpr), with no nodiscard on
# the declaration or the line above it.
for f in "${HEADERS[@]}"; do
  while IFS=: read -r line _; do
    [[ -n "$line" ]] || continue
    fail nodiscard "$f:$line" \
        "Status/Result factory without [[nodiscard]]"
  done < <(awk '
    /nodiscard/ { prev_nodiscard = 1; print_line = 0 }
    /^(inline |constexpr )*(Status|Result<.*>) [A-Z][A-Za-z0-9_]*\(/ {
      if (!prev_nodiscard && $0 !~ /nodiscard/) printf "%d:x\n", NR
    }
    !/nodiscard/ { prev_nodiscard = 0 }
  ' "$f" || true)
done

# -------------------------------------------------------- include-guard
for f in "${HEADERS[@]}"; do
  if ! grep -q '^#pragma once' "$f"; then
    fail include-guard "$f:1" "header missing #pragma once"
  fi
done

# ------------------------------------------------------ banned-function
for f in "${SOURCES[@]}"; do
  while IFS=: read -r line _; do
    [[ -n "$line" ]] || continue
    fail banned-function "$f:$line" \
        "banned C library call (unbounded/unsafe; use the bounded form)"
  done < <(grep -nE '\b(strcpy|strcat|sprintf|gets|tmpnam)\s*\(' "$f" \
      || true)
done

# ----------------------------------------------------------- clang-tidy
# Depth pass when the tooling exists: the committed .clang-tidy profile
# over compile_commands.json. Skipped silently when clang-tidy or the
# compilation database is absent (offline containers, fresh checkouts).
if [[ "$RUN_TIDY" == 1 && "$ROOT" == "src" ]] \
    && command -v clang-tidy > /dev/null 2>&1; then
  DB=""
  for cand in build compile_commands; do
    [[ -f "$cand/compile_commands.json" ]] && { DB="$cand"; break; }
  done
  if [[ -n "$DB" ]]; then
    echo "lint: running clang-tidy over $DB/compile_commands.json"
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' -type f | sort)
    if ! clang-tidy -p "$DB" --quiet "${TIDY_SOURCES[@]}"; then
      fail clang-tidy "src" "clang-tidy reported errors (see above)"
    fi
  fi
fi

if [[ "$FAILED" != 0 ]]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK ($ROOT: ${#SOURCES[@]} files)"
