#!/usr/bin/env bash
# Tier-1 gate: lint -> configure -> build -> ctest -> sanitizer matrix ->
# bench smoke. Keep the configure/build/ctest sequence byte-for-byte in
# sync with the one-liner in README.md; .github/workflows/ci.yml just
# calls this script.
#
# CI turns -Werror ON (src/ and tests/ are warning-clean and stay that
# way); local builds default it OFF so an unusual toolchain can't brick
# the build.
#
# Usage:
#   scripts/ci.sh                     # vendored minigtest + minibenchmark
#   scripts/ci.sh --system-gtest      # suite against installed GoogleTest
#   scripts/ci.sh --system-benchmark  # micro bench against installed
#                                     # google-benchmark
#   scripts/ci.sh --no-bench          # skip the bench smoke stage
#   scripts/ci.sh --no-tsan           # skip the ThreadSanitizer stage
#   scripts/ci.sh --tsan-only         # ONLY the ThreadSanitizer stage
#   scripts/ci.sh --no-asan           # skip the ASan/UBSan stage
#   scripts/ci.sh --asan-only         # ONLY the ASan/UBSan stage
#   scripts/ci.sh --no-lint           # skip the project-invariant lint
#   scripts/ci.sh --lint-only         # ONLY the project-invariant lint
#   BUILD_DIR=out scripts/ci.sh       # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CMAKE_ARGS=(-DROS2_WERROR=ON)
BENCH_ARGS=()
RUN_BENCH=1
RUN_TSAN=1
RUN_ASAN=1
RUN_LINT=1
RUN_MAIN=1
for arg in "$@"; do
  case "$arg" in
    --system-gtest)
      CMAKE_ARGS+=(-DROS2_USE_SYSTEM_GTEST=ON)
      BUILD_DIR="${BUILD_DIR}-sysgtest"
      ;;
    --system-benchmark)
      CMAKE_ARGS+=(-DROS2_USE_SYSTEM_BENCHMARK=ON)
      BENCH_ARGS+=(--system-benchmark)
      # Own build dir, like --system-gtest: otherwise the ON value would
      # stick in the default dir's CMake cache and poison later plain runs.
      BUILD_DIR="${BUILD_DIR}-sysbench"
      ;;
    --no-bench)
      RUN_BENCH=0
      ;;
    --no-tsan)
      RUN_TSAN=0
      ;;
    --tsan-only)
      RUN_MAIN=0
      RUN_BENCH=0
      RUN_ASAN=0
      RUN_LINT=0
      ;;
    --no-asan)
      RUN_ASAN=0
      ;;
    --asan-only)
      RUN_MAIN=0
      RUN_BENCH=0
      RUN_TSAN=0
      RUN_LINT=0
      ;;
    --no-lint)
      RUN_LINT=0
      ;;
    --lint-only)
      RUN_MAIN=0
      RUN_BENCH=0
      RUN_TSAN=0
      RUN_ASAN=0
      ;;
    *)
      echo "unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "$RUN_LINT" == 1 ]]; then
  # Project-invariant lint runs FIRST so rule violations fail in seconds,
  # before any compile. scripts/lint.sh enforces the repo's standing rules
  # (telemetry-tree registration, annotated mutex wrapper, [[nodiscard]]
  # factories, include guards, banned functions) and runs the committed
  # .clang-tidy profile when clang-tidy + compile_commands.json exist.
  scripts/lint.sh
fi

if [[ "$RUN_MAIN" == 1 ]]; then
  cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
  cmake --build "$BUILD_DIR" -j "$JOBS"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
  # Telemetry smoke: boot a demo engine, drive a workload, and validate the
  # end-to-end wiring (non-zero per-opcode latency histograms, per-target
  # queue-depth gauges) over the kTelemetryQuery RPC. --check exits 1 on
  # any missing metric.
  "$BUILD_DIR/src/telemetry/ros2_telemetryctl" dump --check > /dev/null
  # Self-healing smoke: 3 engines, kill one mid-workload, degrade, rebuild,
  # resync. --check additionally gates the rebuild/<victim>/* counters,
  # progress == 100, pool-map transitions, and a fully drained journal.
  "$BUILD_DIR/src/telemetry/ros2_telemetryctl" dump --rebuild --check \
      > /dev/null
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  # ThreadSanitizer gate over the concurrency suites: the xstream workers,
  # the poll-set doorbell, the MR cache, and the stall-deadline client are
  # all multithreaded now, and TSan keeps their locking honest. Only the
  # concurrency-relevant test binaries are built (benches/examples off) so
  # the stage stays cheap; halt_on_error makes any report a hard failure.
  TSAN_DIR="${BUILD_DIR}-tsan"
  TSAN_SUITES="engine_scheduler_mt_test|fabric_test|mr_cache_test"
  TSAN_SUITES+="|rpc_pipeline_test|engine_scheduler_test|nvme_device_test"
  TSAN_SUITES+="|telemetry_test|rebuild_mt_test|dfs_mt_test"
  cmake -B "$TSAN_DIR" -S . "${CMAKE_ARGS[@]}" -DROS2_SANITIZE=thread \
      -DROS2_BUILD_BENCHES=OFF -DROS2_BUILD_EXAMPLES=OFF
  # shellcheck disable=SC2086  # the | list is a ctest regex, not words
  cmake --build "$TSAN_DIR" -j "$JOBS" \
      --target ${TSAN_SUITES//|/ }
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$TSAN_DIR" \
      --output-on-failure -j "$JOBS" -R "^(${TSAN_SUITES})\$"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  # AddressSanitizer + UBSan gate over the FULL suite (TSan's blind spot:
  # heap misuse, leaks, UB). Unlike the TSan stage this runs everything —
  # including the vos/dfs/rpc fuzz shards, which feed adversarial bytes
  # into the decode paths where UB hides. detect_leaks=1 makes any leak a
  # failure; -fno-sanitize-recover=undefined (wired in CMakeLists.txt when
  # ROS2_SANITIZE contains "undefined") makes any UB report a hard abort
  # instead of a printed warning.
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . "${CMAKE_ARGS[@]}" \
      -DROS2_SANITIZE=address,undefined \
      -DROS2_BUILD_BENCHES=OFF -DROS2_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_DIR" -j "$JOBS"
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
      UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  # Bench gate: every experiment binary runs quick-mode, its functional
  # checks must pass, and the aggregate is diffed against the committed
  # model-number baseline (bench/BENCH_baseline.json; wall-clock metrics
  # are excluded from it, and direction-hinted metrics only fail on
  # bad-direction drift). A deliberate model change must refresh the
  # baseline via `scripts/bench.sh --write-baseline` in the same PR.
  # EXPERIMENTS.md is left untouched here — regenerating it is a deliberate
  # local act (scripts/bench.sh) whose diff rides the PR that changed perf.
  BUILD_DIR="$BUILD_DIR" scripts/bench.sh --quick --no-experiments-md \
      --diff bench/BENCH_baseline.json "${BENCH_ARGS[@]}"
fi
