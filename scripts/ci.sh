#!/usr/bin/env bash
# Tier-1 gate: configure -> build -> ctest. Keep this byte-for-byte in sync
# with the one-liner in README.md; .github/workflows/ci.yml just calls it.
#
# Usage:
#   scripts/ci.sh                 # vendored minigtest harness (offline)
#   scripts/ci.sh --system-gtest  # same suite against an installed GoogleTest
#   BUILD_DIR=out scripts/ci.sh   # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CMAKE_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --system-gtest)
      CMAKE_ARGS+=(-DROS2_USE_SYSTEM_GTEST=ON)
      BUILD_DIR="${BUILD_DIR}-sysgtest"
      ;;
    *)
      echo "unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
