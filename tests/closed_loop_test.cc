#include "sim/closed_loop.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::sim {
namespace {

TEST(ClosedLoopTest, SingleContextSingleStage) {
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 1;
  config.total_ops = 1000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-3});
        plan.bytes = 100;
      });
  EXPECT_EQ(result.completed_ops, 1000u);
  EXPECT_NEAR(result.makespan, 1.0, 1e-9);
  EXPECT_NEAR(result.ops_per_sec, 1000.0, 10.0);
  EXPECT_NEAR(result.bytes_per_sec, 100'000.0, 1000.0);
}

TEST(ClosedLoopTest, LatencyEqualsServiceWhenUncontended) {
  ServerPool pool("p", 8);
  ClosedLoopConfig config;
  config.contexts = 4;
  config.total_ops = 400;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 5e-4});
        plan.fixed_latency = 5e-4;
      });
  EXPECT_NEAR(result.latency.mean(), 1e-3, 5e-5);
}

TEST(ClosedLoopTest, PipeliningHidesLatency) {
  // A single-server stage with service s and fixed latency L: one context
  // yields 1/(s+L); enough contexts approach 1/s.
  ServerPool pool1("a", 1);
  ClosedLoopConfig one;
  one.contexts = 1;
  one.total_ops = 2000;
  auto r1 = RunClosedLoop(one, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
    plan.stages.push_back({&pool1, 1e-4});
    plan.fixed_latency = 9e-4;
  });
  EXPECT_NEAR(r1.ops_per_sec, 1000.0, 20.0);

  ServerPool pool2("b", 1);
  ClosedLoopConfig many;
  many.contexts = 32;
  many.total_ops = 20000;
  auto r32 =
      RunClosedLoop(many, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool2, 1e-4});
        plan.fixed_latency = 9e-4;
      });
  EXPECT_NEAR(r32.ops_per_sec, 10000.0, 300.0);
}

TEST(ClosedLoopTest, BottleneckStageGovernsThroughput) {
  ServerPool fast("fast", 8);
  ServerPool slow("slow", 1);
  ClosedLoopConfig config;
  config.contexts = 16;
  config.total_ops = 10000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&fast, 1e-4});
        plan.stages.push_back({&slow, 1e-3});  // the bottleneck: 1000 ops/s
      });
  EXPECT_NEAR(result.ops_per_sec, 1000.0, 30.0);
}

TEST(ClosedLoopTest, LittlesLawHolds) {
  // L = lambda * W for the closed system: contexts = throughput * latency.
  ServerPool pool("p", 4);
  ClosedLoopConfig config;
  config.contexts = 12;
  config.total_ops = 30000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 2e-4});
      });
  const double concurrency = result.ops_per_sec * result.latency.mean();
  EXPECT_NEAR(concurrency, 12.0, 1.0);
}

TEST(ClosedLoopTest, NullStagePoolAddsFixedTime) {
  ClosedLoopConfig config;
  config.contexts = 1;
  config.total_ops = 100;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({nullptr, 1e-3});
      });
  EXPECT_NEAR(result.makespan, 0.1, 1e-9);
}

TEST(ClosedLoopTest, ZeroOpsYieldsEmptyResult) {
  ClosedLoopConfig config;
  config.contexts = 4;
  config.total_ops = 0;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan&) {});
  EXPECT_EQ(result.completed_ops, 0u);
  EXPECT_DOUBLE_EQ(result.ops_per_sec, 0.0);
}

TEST(ClosedLoopTest, OpSourceSeesSequentialOpIndices) {
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 3;
  config.total_ops = 50;
  std::uint64_t expected = 0;
  bool monotonic = true;
  RunClosedLoop(config, [&](std::uint32_t, std::uint64_t op, OpPlan& plan) {
    if (op != expected++) monotonic = false;
    plan.stages.push_back({&pool, 1e-5});
  });
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(expected, 50u);
}

TEST(ClosedLoopTest, PlanArrivesCleared) {
  // The engine recycles one plan object; the source must always see it
  // empty, even after a deep/fat plan on the previous op.
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 2;
  config.total_ops = 40;
  bool always_cleared = true;
  RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
    if (!plan.stages.empty() || plan.fixed_latency != 0.0 || plan.bytes != 0) {
      always_cleared = false;
    }
    for (int i = 0; i < 5; ++i) plan.stages.push_back({&pool, 1e-5});
    plan.fixed_latency = 1e-6;
    plan.bytes = 4096;
  });
  EXPECT_TRUE(always_cleared);
}

TEST(ClosedLoopTest, StageListInlineCapacity) {
  StageList stages;
  EXPECT_TRUE(stages.empty());
  for (std::uint32_t i = 0; i < StageList::kCapacity; ++i) {
    stages.push_back({nullptr, double(i)});
  }
  EXPECT_EQ(stages.size(), StageList::kCapacity);
  std::uint32_t seen = 0;
  for (const Stage& stage : stages) {
    EXPECT_DOUBLE_EQ(stage.service, double(seen));
    ++seen;
  }
  EXPECT_EQ(seen, StageList::kCapacity);
  stages.clear();
  EXPECT_TRUE(stages.empty());
}

class ContextScalingTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ContextScalingTest, ThroughputCapsAtResourceCapacity) {
  // Property: with a 4-server 1ms stage, throughput = min(contexts, 4)/1ms.
  const std::uint32_t contexts = GetParam();
  ServerPool pool("p", 4);
  ClosedLoopConfig config;
  config.contexts = contexts;
  config.total_ops = 20000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-3});
      });
  const double expected = std::min<double>(contexts, 4) * 1000.0;
  EXPECT_NEAR(result.ops_per_sec, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Contexts, ContextScalingTest,
                         ::testing::Values(1, 2, 3, 4, 8, 64));

}  // namespace
}  // namespace ros2::sim
