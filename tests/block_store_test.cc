#include "storage/block_store.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::storage {
namespace {

TEST(BlockStoreTest, WriteThenReadRoundTrips) {
  BlockStore store(kMiB);
  Buffer data = MakePatternBuffer(4096, 1);
  ASSERT_TRUE(store.Write(0, data).ok());
  Buffer out(4096);
  ASSERT_TRUE(store.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockStoreTest, UnwrittenRangesReadZero) {
  BlockStore store(kMiB);
  Buffer out = MakePatternBuffer(512, 9);  // non-zero garbage
  ASSERT_TRUE(store.Read(1000, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST(BlockStoreTest, UnalignedCrossChunkWrite) {
  BlockStore store(kMiB, /*chunk_size=*/4096);
  Buffer data = MakePatternBuffer(10000, 3);
  ASSERT_TRUE(store.Write(1234, data).ok());
  Buffer out(10000);
  ASSERT_TRUE(store.Read(1234, out).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockStoreTest, PartialOverwrite) {
  BlockStore store(kMiB);
  ASSERT_TRUE(store.Write(0, MakePatternBuffer(8192, 1)).ok());
  Buffer patch = MakePatternBuffer(100, 2);
  ASSERT_TRUE(store.Write(4000, patch).ok());
  Buffer out(100);
  ASSERT_TRUE(store.Read(4000, out).ok());
  EXPECT_EQ(out, patch);
  // Neighbours keep the original pattern.
  Buffer before(100);
  ASSERT_TRUE(store.Read(3900, before).ok());
  EXPECT_EQ(VerifyPattern(before, 1, 3900), -1);
}

TEST(BlockStoreTest, OutOfRangeRejected) {
  BlockStore store(4096);
  Buffer buf(100);
  EXPECT_EQ(store.Write(4090, buf).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(store.Read(4097, std::span<std::byte>(buf.data(), 0)).code(),
            ErrorCode::kOutOfRange);
  EXPECT_TRUE(store.Write(4096 - 100, buf).ok());  // exactly at the edge
}

TEST(BlockStoreTest, SparseAllocationOnlyForTouchedChunks) {
  BlockStore store(1ull * kTiB, /*chunk_size=*/64 * 1024);
  EXPECT_EQ(store.allocated_bytes(), 0u);
  Buffer data(100);
  ASSERT_TRUE(store.Write(512ull * kGiB, data).ok());
  EXPECT_EQ(store.allocated_bytes(), 64u * 1024);
}

TEST(BlockStoreTest, DiscardWholeChunksFreesMemory) {
  BlockStore store(kMiB, 4096);
  ASSERT_TRUE(store.Write(0, MakePatternBuffer(16384, 1)).ok());
  EXPECT_EQ(store.allocated_bytes(), 16384u);
  ASSERT_TRUE(store.Discard(0, 16384).ok());
  EXPECT_EQ(store.allocated_bytes(), 0u);
  Buffer out(16384);
  ASSERT_TRUE(store.Read(0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST(BlockStoreTest, DiscardPartialChunkZeroes) {
  BlockStore store(kMiB, 4096);
  ASSERT_TRUE(store.Write(0, MakePatternBuffer(4096, 1)).ok());
  ASSERT_TRUE(store.Discard(1000, 2000).ok());
  Buffer out(4096);
  ASSERT_TRUE(store.Read(0, out).ok());
  EXPECT_EQ(VerifyPattern(std::span<const std::byte>(out.data(), 1000), 1, 0),
            -1);
  for (std::size_t i = 1000; i < 3000; ++i) {
    ASSERT_EQ(out[i], std::byte(0)) << i;
  }
  EXPECT_EQ(VerifyPattern(
                std::span<const std::byte>(out.data() + 3000, 1096), 1, 3000),
            -1);
}

class BlockStoreSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BlockStoreSizeTest, RoundTripAcrossChunkSizes) {
  BlockStore store(8 * kMiB, GetParam());
  Buffer data = MakePatternBuffer(100000, 42);
  ASSERT_TRUE(store.Write(777, data).ok());
  Buffer out(100000);
  ASSERT_TRUE(store.Read(777, out).ok());
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, BlockStoreSizeTest,
                         ::testing::Values(512, 4096, 65536, 1 << 20));

}  // namespace
}  // namespace ros2::storage
