// Rebuild under concurrent foreground traffic (the TSan-gated suite):
// three threaded engines (real xstream workers + progress threads), a
// writer thread hammering degraded writes while the rebuild manager
// re-silvers the victim from another thread. Correctness bar: zero
// failed reads, every degraded write succeeds, and after rebuild +
// straggler resync the victim alone serves byte-exact data.
#include "daos/rebuild.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"
#include "daos/placement.h"

namespace ros2::daos {
namespace {

class RebuildMtTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kEngines = 3;
  static constexpr std::uint32_t kReplicas = 2;
  static constexpr std::uint32_t kVictim = 1;

  void SetUp() override {
    for (std::uint32_t e = 0; e < kEngines; ++e) {
      storage::NvmeDeviceConfig dev;
      dev.capacity_bytes = 256 * kMiB;
      devices_.push_back(std::make_unique<storage::NvmeDevice>(dev));
      storage::NvmeDevice* raw[] = {devices_.back().get()};
      EngineConfig config;
      config.address = "fabric://rebuild-mt-engine-" + std::to_string(e);
      config.targets = 4;
      config.scm_per_target = 16 * kMiB;
      config.xstream_workers = true;
      auto engine = DaosEngine::Create(&fabric_, config, raw);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      engines_.push_back(std::move(*engine));
      engines_.back()->StartProgressThread();
    }
    for (auto& engine : engines_) raw_engines_.push_back(engine.get());
    map_ = std::make_unique<PoolMap>(kEngines);
  }

  /// A pumpless client (the engines' progress threads serve it), safe to
  /// own per thread.
  std::unique_ptr<DaosClient> NewClient(const std::string& name) {
    DaosClient::ConnectOptions options;
    options.client_address = "fabric://rebuild-mt-" + name;
    options.replicas = kReplicas;
    options.pool_map = map_.get();
    options.progress_pump = false;
    auto client = DaosClient::Connect(&fabric_, raw_engines_, options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  net::Fabric fabric_;
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices_;
  std::vector<std::unique_ptr<DaosEngine>> engines_;
  std::vector<DaosEngine*> raw_engines_;
  std::unique_ptr<PoolMap> map_;
};

TEST_F(RebuildMtTest, RebuildConvergesUnderConcurrentWrites) {
  auto setup = NewClient("setup");
  ASSERT_NE(setup, nullptr);
  auto cont = setup->ContainerCreate("mt");
  ASSERT_TRUE(cont.ok());
  auto oid = setup->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  // Seed data the victim will have to re-silver via the bulk scan.
  constexpr int kSeeded = 32;
  std::map<std::string, std::uint64_t> last_seed;
  for (int i = 0; i < kSeeded; ++i) {
    const std::string dkey = "seed" + std::to_string(i);
    ASSERT_TRUE(setup
                    ->Update(*cont, *oid, dkey, "a", 0,
                             MakePatternBuffer(1024, std::uint64_t(i) + 1))
                    .ok());
    last_seed[dkey] = std::uint64_t(i) + 1;
  }

  // Clients dial in while the pool is healthy (PoolConnect is metadata —
  // no degraded mode), then the victim dies and the writer + reader keep
  // running concurrently with the rebuild. The writer loops over a
  // bounded dkey set so the final expected bytes are the last pattern it
  // wrote to each.
  auto writer_client = NewClient("writer");
  auto reader_client = NewClient("reader");
  auto verify = NewClient("verify");
  ASSERT_NE(writer_client, nullptr);
  ASSERT_NE(reader_client, nullptr);
  ASSERT_NE(verify, nullptr);
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());
  std::atomic<bool> stop_writer{false};
  std::atomic<bool> stop_reader{false};
  std::atomic<bool> writer_ok{true};
  std::atomic<bool> reader_ok{true};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    DaosClient* client = writer_client.get();
    constexpr int kHot = 16;
    std::uint64_t round = 0;
    while (!stop_writer.load(std::memory_order_acquire)) {
      ++round;
      for (int i = 0; i < kHot; ++i) {
        const std::string dkey = "hot" + std::to_string(i);
        const std::uint64_t seed = round * 1000 + std::uint64_t(i);
        if (!client
                 ->Update(*cont, *oid, dkey, "a", 0,
                          MakePatternBuffer(1024, seed))
                 .ok()) {
          writer_ok.store(false);
          return;
        }
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Record the final content for post-rebuild verification.
    for (int i = 0; i < kHot; ++i) {
      last_seed["hot" + std::to_string(i)] =
          round * 1000 + std::uint64_t(i);
    }
  });

  std::thread reader([&] {
    DaosClient* client = reader_client.get();
    Buffer out(1024);
    while (!stop_reader.load(std::memory_order_acquire)) {
      for (int i = 0;
           i < kSeeded && !stop_reader.load(std::memory_order_acquire);
           ++i) {
        const std::string dkey = "seed" + std::to_string(i);
        if (!client->Fetch(*cont, *oid, dkey, "a", 0, out).ok()) {
          reader_ok.store(false);  // zero failed reads, ever
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Let degraded traffic build up a journal, then rebuild while both
  // threads keep running.
  while (writes.load(std::memory_order_relaxed) < 64 &&
         writer_ok.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  RebuildManager::Options ropts;
  ropts.address = "fabric://rebuild-mt-mgr";
  ropts.replicas = kReplicas;
  ropts.progress_pump = false;
  auto mgr =
      RebuildManager::Create(&fabric_, raw_engines_, map_.get(), ropts);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  // The rebuild runs concurrently with live traffic through its scan +
  // re-silver phase; once it is under way the writer quiesces so the
  // journal-drain loop can terminate. (A sustained hot-key writer can
  // legitimately starve the quiesce check forever: every write landing
  // on the REBUILDING engine re-journals post-completion — the two-mark
  // rule — so each drain pass finds the hot dkeys again. Reads keep
  // running to the end: zero failures, ever.)
  Status rebuilt;
  std::atomic<bool> rebuild_done{false};
  std::thread rebuilder([&] {
    rebuilt = (*mgr)->Rebuild(kVictim);
    rebuild_done.store(true, std::memory_order_release);
  });
  const std::uint64_t mark = writes.load(std::memory_order_relaxed);
  while (!rebuild_done.load(std::memory_order_acquire) &&
         writer_ok.load(std::memory_order_acquire) &&
         (map_->state(kVictim) == EngineState::kDown ||
          writes.load(std::memory_order_relaxed) < mark + 32)) {
    std::this_thread::yield();
  }
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  rebuilder.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(writer_ok.load()) << "a degraded write failed";
  ASSERT_TRUE(reader_ok.load()) << "a foreground read failed";
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.ToString();
  EXPECT_EQ(map_->state(kVictim), EngineState::kUp);
  EXPECT_GT((*mgr)->dkeys_scanned(kVictim), 0u);
  EXPECT_GT((*mgr)->bytes_copied(kVictim), 0u);

  // Traffic has quiesced: one straggler sweep clears writes that raced
  // the UP transition, then the victim alone must serve its share.
  ASSERT_TRUE((*mgr)->Resync(kVictim).ok());
  EXPECT_EQ(map_->journal().depth(kVictim), 0u);

  for (std::uint32_t e = 0; e < kEngines; ++e) {
    if (e != kVictim) {
      ASSERT_TRUE(map_->SetState(e, EngineState::kDown).ok());
    }
  }
  for (const auto& [dkey, seed] : last_seed) {
    const std::uint32_t primary = PlaceEngine(*oid, dkey, kEngines);
    bool owed = false;
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      if ((primary + r) % kEngines == kVictim) owed = true;
    }
    if (!owed) continue;
    Buffer out(1024);
    ASSERT_TRUE(verify->Fetch(*cont, *oid, dkey, "a", 0, out).ok())
        << dkey << " unreadable from the rebuilt engine alone";
    EXPECT_EQ(out, MakePatternBuffer(1024, seed))
        << dkey << " diverged on the rebuilt engine";
  }
  EXPECT_GT(reads.load(), 0u);
}

TEST_F(RebuildMtTest, ConcurrentDegradedWritersJournalSafely) {
  // Several writers degrade around the same DOWN engine at once: the
  // journal (mutex-guarded, deduplicated) and the sharded counters must
  // stay consistent — this is the TSan meat.
  auto setup = NewClient("setup2");
  ASSERT_NE(setup, nullptr);
  auto cont = setup->ContainerCreate("mt2");
  ASSERT_TRUE(cont.ok());
  auto oid = setup->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 48;
  std::vector<std::unique_ptr<DaosClient>> clients;
  for (int w = 0; w < kWriters; ++w) {
    clients.push_back(NewClient("w" + std::to_string(w)));
    ASSERT_NE(clients.back(), nullptr);
  }
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      DaosClient* client = clients[std::size_t(w)].get();
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string dkey =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        if (!client
                 ->Update(*cont, *oid, dkey, "a", 0,
                          MakePatternBuffer(256, std::uint64_t(i) + 1))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every dkey owed to the victim journaled exactly once (dedup holds
  // under contention); none of the others did.
  std::size_t expected = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      const std::string dkey =
          "w" + std::to_string(w) + "-" + std::to_string(i);
      const std::uint32_t primary = PlaceEngine(*oid, dkey, kEngines);
      for (std::uint32_t r = 0; r < kReplicas; ++r) {
        if ((primary + r) % kEngines == kVictim) {
          ++expected;
          break;
        }
      }
    }
  }
  EXPECT_EQ(map_->journal().depth(kVictim), expected);
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kUp).ok());
}

}  // namespace
}  // namespace ros2::daos
