// Buffered-stream tests: client-side batching (§3.3) must reduce RPC
// traffic without changing file content.
#include "dfs/stream.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "daos/client.h"

namespace ros2::dfs {
namespace {

class DfsStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    daos::EngineConfig config;
    config.targets = 8;
    config.scm_per_target = 32 * kMiB;
    engine_ = std::make_unique<daos::DaosEngine>(&fabric_, config, raw);
    auto client = daos::DaosClient::Connect(&fabric_, engine_.get(), {});
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    auto cont = client_->ContainerCreate("c");
    ASSERT_TRUE(cont.ok());
    auto dfs = Dfs::Mount(client_.get(), *cont, true,
                          DfsConfig{/*chunk_size=*/256 * 1024});
    ASSERT_TRUE(dfs.ok());
    dfs_ = std::move(*dfs);
  }

  Fd OpenFile(const std::string& path) {
    OpenFlags flags;
    flags.create = true;
    auto fd = dfs_->Open(path, flags);
    EXPECT_TRUE(fd.ok());
    return fd.value_or(0);
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<daos::DaosEngine> engine_;
  std::unique_ptr<daos::DaosClient> client_;
  std::unique_ptr<Dfs> dfs_;
};

TEST_F(DfsStreamTest, TinyAppendsBatchIntoFewUpdates) {
  const Fd fd = OpenFile("/batched");
  const auto updates_before = engine_->stats().updates;
  {
    DfsOutputStream out(dfs_.get(), fd);
    Buffer piece(100);
    for (int i = 0; i < 1000; ++i) {  // 100 KB in 100-byte appends
      FillPattern(piece, 1, std::uint64_t(i) * 100);
      ASSERT_TRUE(out.Append(piece).ok());
    }
    ASSERT_TRUE(out.Flush().ok());
    EXPECT_EQ(out.offset(), 100'000u);
  }
  // 100 KB / 256 KiB buffer -> exactly 1 data flush (plus size metadata).
  const auto update_rpcs = engine_->stats().updates - updates_before;
  EXPECT_LE(update_rpcs, 4u) << "batching failed: " << update_rpcs
                             << " updates for 1000 appends";

  Buffer all(100'000);
  auto n = dfs_->Read(fd, 0, all);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, all.size());
  EXPECT_EQ(VerifyPattern(all, 1, 0), -1);
}

TEST_F(DfsStreamTest, AppendsLargerThanBufferPassThrough) {
  const Fd fd = OpenFile("/big-append");
  DfsOutputStream out(dfs_.get(), fd, /*buffer_size=*/4096);
  Buffer big = MakePatternBuffer(100'000, 2);
  ASSERT_TRUE(out.Append(big).ok());
  ASSERT_TRUE(out.Flush().ok());
  Buffer all(big.size());
  auto n = dfs_->Read(fd, 0, all);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(all, big);
}

TEST_F(DfsStreamTest, DestructorFlushes) {
  const Fd fd = OpenFile("/dtor");
  {
    DfsOutputStream out(dfs_.get(), fd);
    ASSERT_TRUE(out.Append(MakePatternBuffer(512, 3)).ok());
  }
  Buffer back(512);
  auto n = dfs_->Read(fd, 0, back);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 512u);
  EXPECT_EQ(VerifyPattern(back, 3, 0), -1);
}

TEST_F(DfsStreamTest, InterleavedFlushKeepsOffsets) {
  const Fd fd = OpenFile("/interleaved");
  DfsOutputStream out(dfs_.get(), fd, 1024);
  for (int i = 0; i < 10; ++i) {
    Buffer piece(333);
    FillPattern(piece, 4, std::uint64_t(i) * 333);
    ASSERT_TRUE(out.Append(piece).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(out.Flush().ok());
    }
  }
  ASSERT_TRUE(out.Flush().ok());
  Buffer all(3330);
  auto n = dfs_->Read(fd, 0, all);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 3330u);
  EXPECT_EQ(VerifyPattern(all, 4, 0), -1);
}

TEST_F(DfsStreamTest, CloseSurfacesSwallowedWriteFailure) {
  const Fd fd = OpenFile("/close-error");
  DfsOutputStream out(dfs_.get(), fd, 1024);
  ASSERT_TRUE(out.Append(MakePatternBuffer(100, 7)).ok());
  // Yank the fd out from under the stream: the deferred buffered write
  // can no longer succeed. Before Close() existed this failure vanished
  // in the destructor.
  ASSERT_TRUE(dfs_->Close(fd).ok());
  const Status closed = out.Close();
  EXPECT_EQ(closed.code(), ErrorCode::kNotFound) << closed.ToString();
  EXPECT_EQ(out.status().code(), ErrorCode::kNotFound);
  // Idempotent: closing again reports the same first failure.
  EXPECT_EQ(out.Close().code(), ErrorCode::kNotFound);
  // The stream is sealed.
  EXPECT_TRUE(out.closed());
  EXPECT_EQ(out.Append(MakePatternBuffer(1, 1)).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(out.Flush().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(DfsStreamTest, FirstWriteErrorLatchesAndFailsFast) {
  const Fd fd = OpenFile("/latch-error");
  DfsOutputStream out(dfs_.get(), fd, 512);
  ASSERT_TRUE(out.Append(MakePatternBuffer(100, 8)).ok());
  ASSERT_TRUE(dfs_->Close(fd).ok());
  // An Append large enough to force a flush hits the dead fd...
  EXPECT_EQ(out.Append(MakePatternBuffer(2048, 8)).code(),
            ErrorCode::kNotFound);
  // ...and every later operation fails fast with the SAME latched status
  // instead of writing out of order past the hole.
  EXPECT_EQ(out.Append(MakePatternBuffer(1, 8)).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(out.Flush().code(), ErrorCode::kNotFound);
  EXPECT_EQ(out.Close().code(), ErrorCode::kNotFound);
}

TEST_F(DfsStreamTest, CloseFlushesAndSucceedsOnHealthyStream) {
  const Fd fd = OpenFile("/clean-close");
  DfsOutputStream out(dfs_.get(), fd);
  ASSERT_TRUE(out.Append(MakePatternBuffer(512, 9)).ok());
  EXPECT_TRUE(out.Close().ok());
  EXPECT_TRUE(out.closed());
  Buffer back(512);
  auto n = dfs_->Read(fd, 0, back);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 512u);
  EXPECT_EQ(VerifyPattern(back, 9, 0), -1);
}

TEST_F(DfsStreamTest, InputStreamReadsSequentiallyWithFewRefills) {
  const Fd fd = OpenFile("/reader");
  Buffer content = MakePatternBuffer(400'000, 5);
  ASSERT_TRUE(dfs_->Write(fd, 0, content).ok());

  DfsInputStream in(dfs_.get(), fd);  // 256 KiB readahead
  Buffer piece(1000);
  std::uint64_t pos = 0;
  while (true) {
    auto n = in.Read(piece);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    for (std::uint64_t i = 0; i < *n; ++i) {
      ASSERT_EQ(piece[i], content[pos + i]) << pos + i;
    }
    pos += *n;
  }
  EXPECT_EQ(pos, content.size());
  // 400 KB / 256 KiB window -> 2 refills, not 400.
  EXPECT_LE(in.refills(), 3u);
}

TEST_F(DfsStreamTest, InputStreamSeekAndEof) {
  const Fd fd = OpenFile("/seek");
  Buffer content = MakePatternBuffer(10'000, 6);
  ASSERT_TRUE(dfs_->Write(fd, 0, content).ok());
  DfsInputStream in(dfs_.get(), fd, 4096);
  in.Seek(9'000);
  Buffer tail(2'000);
  auto n = in.Read(tail);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1'000u);  // clamped at EOF
  EXPECT_EQ(VerifyPattern(std::span<const std::byte>(tail.data(), 1000), 6,
                          9'000),
            -1);
  // Second read at EOF returns 0.
  auto eof = in.Read(tail);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST_F(DfsStreamTest, RandomSizedAppendsMatchReference) {
  const Fd fd = OpenFile("/random-appends");
  Rng rng(99);
  Buffer reference;
  DfsOutputStream out(dfs_.get(), fd, 8192);
  for (int i = 0; i < 200; ++i) {
    Buffer piece = MakePatternBuffer(1 + rng.Below(5000), rng.Next());
    reference.insert(reference.end(), piece.begin(), piece.end());
    ASSERT_TRUE(out.Append(piece).ok());
  }
  ASSERT_TRUE(out.Flush().ok());
  Buffer all(reference.size());
  auto n = dfs_->Read(fd, 0, all);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, reference.size());
  EXPECT_EQ(all, reference);
}

}  // namespace
}  // namespace ros2::dfs
