#include "common/crc.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "support/test_support.h"

namespace ros2 {
namespace {

using ros2::test::AsBytes;

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI test vectors for CRC-32C.
  std::uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  std::uint8_t ones[32];
  for (auto& b : ones) b = 0xFF;
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  std::uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = std::uint8_t(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, StreamingMatchesOneShot) {
  Buffer data = MakePatternBuffer(10000, /*tag=*/7);
  const std::uint32_t whole = Crc32c(data);
  std::uint32_t streamed = 0;
  std::size_t pos = 0;
  for (std::size_t chunk : {100u, 900u, 4096u, 4904u}) {
    streamed = Crc32c(std::span<const std::byte>(data.data() + pos, chunk),
                      streamed);
    pos += chunk;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(streamed, whole);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  Buffer data = MakePatternBuffer(4096, /*tag=*/3);
  const std::uint32_t before = Crc32c(data);
  data[2048] ^= std::byte(0x01);
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32cTest, DetectsSwappedBlocks) {
  Buffer data = MakePatternBuffer(512, /*tag=*/9);
  const std::uint32_t before = Crc32c(data);
  std::swap(data[0], data[511]);
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc64Test, KnownVector) {
  // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA.
  EXPECT_EQ(Crc64("123456789", 9), 0x995DC9BBDF1939FAull);
}

TEST(Crc64Test, SpanOverloadMatchesRaw) {
  const char* s = "object-storage";
  EXPECT_EQ(Crc64(AsBytes(s, 14)), Crc64(s, 14));
}

TEST(Crc64Test, DifferentSeedsDiffer) {
  const char* s = "seed me";
  EXPECT_NE(Crc64(s, 7, 0), Crc64(s, 7, 1));
}

}  // namespace
}  // namespace ros2
