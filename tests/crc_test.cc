#include "common/crc.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "support/test_support.h"

namespace ros2 {
namespace {

using ros2::test::AsBytes;

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI test vectors for CRC-32C.
  std::uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  std::uint8_t ones[32];
  for (auto& b : ones) b = 0xFF;
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  std::uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = std::uint8_t(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, StreamingMatchesOneShot) {
  Buffer data = MakePatternBuffer(10000, /*tag=*/7);
  const std::uint32_t whole = Crc32c(data);
  std::uint32_t streamed = 0;
  std::size_t pos = 0;
  for (std::size_t chunk : {100u, 900u, 4096u, 4904u}) {
    streamed = Crc32c(std::span<const std::byte>(data.data() + pos, chunk),
                      streamed);
    pos += chunk;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(streamed, whole);
}

/// Bit-at-a-time reference CRC32C (reversed poly 0x82F63B78) — the
/// definition the sliced/hardware fast paths must reproduce exactly.
std::uint32_t ReferenceCrc32c(const std::byte* data, std::size_t size,
                              std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= std::uint32_t(data[i]);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
  }
  return ~crc;
}

TEST(Crc32cTest, FastPathsMatchBitwiseReference) {
  // Lengths straddle the 8-byte slicing boundary; offsets exercise
  // unaligned heads; a nonzero seed exercises streaming state.
  Buffer data = MakePatternBuffer(1024, /*tag=*/21);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 100u,
                          511u, 512u, 1000u}) {
    for (std::size_t offset : {0u, 1u, 3u, 5u}) {
      for (std::uint32_t seed : {0u, 0xDEADBEEFu}) {
        std::span<const std::byte> view(data.data() + offset, len);
        const std::uint32_t expect =
            ReferenceCrc32c(view.data(), view.size(), seed);
        // The dispatching entry point (hardware where CPUID allows)...
        EXPECT_EQ(Crc32c(view, seed), expect)
            << "len=" << len << " offset=" << offset << " seed=" << seed;
        // ...and the slicing-by-8 software path explicitly: on SSE4.2
        // hosts Crc32c() never reaches it, so pin it on every host.
        EXPECT_EQ(Crc32cPortable(view, seed), expect)
            << "portable len=" << len << " offset=" << offset
            << " seed=" << seed;
      }
    }
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  Buffer data = MakePatternBuffer(4096, /*tag=*/3);
  const std::uint32_t before = Crc32c(data);
  data[2048] ^= std::byte(0x01);
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32cTest, DetectsSwappedBlocks) {
  Buffer data = MakePatternBuffer(512, /*tag=*/9);
  const std::uint32_t before = Crc32c(data);
  std::swap(data[0], data[511]);
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc64Test, KnownVector) {
  // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA.
  EXPECT_EQ(Crc64("123456789", 9), 0x995DC9BBDF1939FAull);
}

TEST(Crc64Test, SpanOverloadMatchesRaw) {
  const char* s = "object-storage";
  EXPECT_EQ(Crc64(AsBytes(s, 14)), Crc64(s, 14));
}

TEST(Crc64Test, DifferentSeedsDiffer) {
  const char* s = "seed me";
  EXPECT_NE(Crc64(s, 7, 0), Crc64(s, 7, 1));
}

}  // namespace
}  // namespace ros2
