// Tests for the BenchReport emitter (src/bench/report.h): JSON document
// shape, parameter ordering, check aggregation, and the three renderers.
#include "bench/report.h"

#include <fstream>
#include <sstream>
#include <string>

#include "bench/json.h"
#include "common/table.h"
#include "gtest/gtest.h"
#include "support/test_support.h"

namespace ros2::bench {
namespace {

BenchReport MakeSampleReport() {
  BenchReport report("bench_sample", /*quick=*/true);
  report.BeginExperiment("exp_one", "first experiment");
  report.AddNote("a note");
  report.AddCheck("functional pass", true);
  AsciiTable table({"col", "value"});
  table.AddRow({"row", "42"});
  report.AddTable("sample table", table);
  report.AddMetric("throughput", "bytes_per_sec", 1.5e9,
                   {{"zeta", "z"}, {"alpha", "a"}});
  report.BeginExperiment("exp_two", "second experiment");
  report.AddMetric("latency", "seconds", 0.004);
  return report;
}

TEST(BenchReportTest, JsonDocumentShape) {
  const Json doc = MakeSampleReport().ToJson();
  EXPECT_EQ(doc.Find("schema")->AsString(), "ros2-bench-report-v1");
  EXPECT_EQ(doc.Find("binary")->AsString(), "bench_sample");
  EXPECT_TRUE(doc.Find("quick")->AsBool());
  const Json* experiments = doc.Find("experiments");
  ASSERT_TRUE(experiments != nullptr);
  ASSERT_EQ(experiments->size(), 2u);

  const Json& first = experiments->elements()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "exp_one");
  EXPECT_EQ(first.Find("description")->AsString(), "first experiment");
  ASSERT_EQ(first.Find("notes")->size(), 1u);
  EXPECT_EQ(first.Find("notes")->elements()[0].AsString(), "a note");
  ASSERT_EQ(first.Find("checks")->size(), 1u);
  EXPECT_TRUE(first.Find("checks")->elements()[0].Find("pass")->AsBool());
  ASSERT_EQ(first.Find("tables")->size(), 1u);
  const Json& table = first.Find("tables")->elements()[0];
  EXPECT_EQ(table.Find("title")->AsString(), "sample table");
  EXPECT_NE(table.Find("text")->AsString().find("| col | value |"),
            std::string::npos);

  ASSERT_EQ(first.Find("metrics")->size(), 1u);
  const Json& metric = first.Find("metrics")->elements()[0];
  EXPECT_EQ(metric.Find("metric")->AsString(), "throughput");
  EXPECT_EQ(metric.Find("unit")->AsString(), "bytes_per_sec");
  EXPECT_EQ(metric.Find("value")->AsNumber(), 1.5e9);
  // Params keep the caller's order, not alphabetical.
  const Json* params = metric.Find("params");
  ASSERT_EQ(params->members().size(), 2u);
  EXPECT_EQ(params->members()[0].first, "zeta");
  EXPECT_EQ(params->members()[1].first, "alpha");
}

TEST(BenchReportTest, DirectionAndRealtimeEmitOnlyWhenSet) {
  // Default: neither key appears, keeping pre-hint reports byte-identical.
  const Json plain = MakeSampleReport().ToJson();
  EXPECT_TRUE(plain.Find("realtime") == nullptr);
  const Json& plain_metric =
      plain.Find("experiments")->elements()[0].Find("metrics")->elements()[0];
  EXPECT_TRUE(plain_metric.Find("direction") == nullptr);

  BenchReport report("bench_rt", /*quick=*/false);
  report.MarkRealtime();
  report.BeginExperiment("exp", "wall-clock section");
  report.AddMetric("rate", "ops_per_wall_sec", 1e6, {},
                   MetricDirection::kHigherIsBetter);
  report.AddMetric("stall", "seconds", 0.5, {},
                   MetricDirection::kLowerIsBetter);
  const Json doc = report.ToJson();
  ASSERT_TRUE(doc.Find("realtime") != nullptr);
  EXPECT_TRUE(doc.Find("realtime")->AsBool());
  const Json* metrics = doc.Find("experiments")->elements()[0].Find("metrics");
  EXPECT_EQ(metrics->elements()[0].Find("direction")->AsString(), "higher");
  EXPECT_EQ(metrics->elements()[1].Find("direction")->AsString(), "lower");
}

TEST(BenchReportTest, MetricsBeforeAnyExperimentLandInDefaultSection) {
  BenchReport report("bench_default", /*quick=*/false);
  report.AddMetric("m", "unit", 1.0);
  const Json doc = report.ToJson();
  ASSERT_EQ(doc.Find("experiments")->size(), 1u);
  EXPECT_EQ(doc.Find("experiments")->elements()[0].Find("name")->AsString(),
            "bench_default");
}

TEST(BenchReportTest, AllChecksPassedAggregatesAcrossExperiments) {
  BenchReport report("bench_checks", false);
  EXPECT_TRUE(report.AllChecksPassed());  // vacuously
  report.BeginExperiment("a", "");
  report.AddCheck("ok", true);
  EXPECT_TRUE(report.AllChecksPassed());
  report.BeginExperiment("b", "");
  report.AddCheck("broken", false);
  EXPECT_FALSE(report.AllChecksPassed());
}

TEST(BenchReportTest, ConsoleRenderContainsTablesAndChecks) {
  const std::string console = MakeSampleReport().RenderConsole();
  EXPECT_NE(console.find("== bench_sample (quick mode) =="),
            std::string::npos);
  EXPECT_NE(console.find("-- exp_one: first experiment --"),
            std::string::npos);
  EXPECT_NE(console.find("check: functional pass: PASS"), std::string::npos);
  // Numeric cells right-align inside their column.
  EXPECT_NE(console.find("| row |    42 |"), std::string::npos);
}

TEST(BenchReportTest, MarkdownRenderEmbedsTableVerbatim) {
  AsciiTable table({"h1", "h2"});
  table.AddRow({"cell", "123"});
  BenchReport report("bench_md", false);
  report.BeginExperiment("exp", "desc");
  report.AddTable("title", table);
  const std::string markdown = report.RenderMarkdown();
  EXPECT_NE(markdown.find("## bench_md"), std::string::npos);
  EXPECT_NE(markdown.find("### exp"), std::string::npos);
  EXPECT_NE(markdown.find(table.Render()), std::string::npos);
}

TEST(BenchReportTest, WriteJsonFileRoundTripsThroughParser) {
  test::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = dir.File("report.json");
  ASSERT_TRUE(MakeSampleReport().WriteJsonFile(path).ok());
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto doc = Json::Parse(buffer.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("schema")->AsString(), "ros2-bench-report-v1");
  EXPECT_EQ(doc->Find("experiments")->size(), 2u);
}

TEST(BenchReportTest, WriteJsonFileToBadPathFails) {
  BenchReport report("bench_bad", false);
  EXPECT_FALSE(
      report.WriteJsonFile("/nonexistent-dir-zzz/report.json").ok());
}

}  // namespace
}  // namespace ros2::bench
