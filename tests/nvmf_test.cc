// NVMe-oF target/initiator tests over both transports (§4.3 substrate).
#include "spdk/nvmf.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::spdk {
namespace {

class NvmfTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig config;
    config.capacity_bytes = 64 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(config);
    bdev_ = std::make_unique<Bdev>(device_.get());
    target_ = std::make_unique<NvmfTarget>(&fabric_, "fabric://nvmf");
    ASSERT_TRUE(target_->AddNamespace(1, bdev_.get()).ok());
    auto initiator =
        NvmfConnect(&fabric_, target_.get(), GetParam(), "fabric://init");
    ASSERT_TRUE(initiator.ok());
    initiator_ = std::move(*initiator);
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<Bdev> bdev_;
  std::unique_ptr<NvmfTarget> target_;
  std::unique_ptr<NvmfInitiator> initiator_;
};

TEST_P(NvmfTest, IdentifyReportsGeometry) {
  auto info = initiator_->Identify(1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size_bytes, 64 * kMiB);
  EXPECT_EQ(info->block_size, 4096u);
}

TEST_P(NvmfTest, IdentifyUnknownNamespace) {
  EXPECT_EQ(initiator_->Identify(9).status().code(), ErrorCode::kNotFound);
}

TEST_P(NvmfTest, RemoteWriteThenReadRoundTrip) {
  Buffer data = MakePatternBuffer(64 * 1024, 21);
  ASSERT_TRUE(initiator_->Write(1, 8192, data).ok());
  Buffer out(64 * 1024);
  ASSERT_TRUE(initiator_->Read(1, 8192, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(NvmfTest, DataLandsOnTheActualDevice) {
  Buffer data = MakePatternBuffer(4096, 13);
  ASSERT_TRUE(initiator_->Write(1, 0, data).ok());
  // Verify through a separate local bdev, bypassing the network.
  Bdev local(device_.get());
  Buffer out(4096);
  ASSERT_TRUE(local.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(NvmfTest, LargeTransfer) {
  Buffer data = MakePatternBuffer(4 * kMiB, 17);
  ASSERT_TRUE(initiator_->Write(1, 0, data).ok());
  Buffer out(4 * kMiB);
  ASSERT_TRUE(initiator_->Read(1, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(NvmfTest, MisalignedIoRejectedByBdev) {
  Buffer buf(1000);
  EXPECT_FALSE(initiator_->Write(1, 0, buf).ok());
}

TEST_P(NvmfTest, FlushSucceeds) {
  EXPECT_TRUE(initiator_->Flush(1).ok());
}

TEST_P(NvmfTest, UnknownNamespaceIo) {
  Buffer buf(4096);
  EXPECT_EQ(initiator_->Read(7, 0, buf).code(), ErrorCode::kNotFound);
}

TEST_P(NvmfTest, CommandsServedCounter) {
  Buffer buf(4096);
  ASSERT_TRUE(initiator_->Write(1, 0, buf).ok());
  ASSERT_TRUE(initiator_->Read(1, 0, buf).ok());
  EXPECT_EQ(target_->commands_served(), 2u);
}

TEST_P(NvmfTest, MultipleInitiatorsShareTarget) {
  auto second =
      NvmfConnect(&fabric_, target_.get(), GetParam(), "fabric://init2");
  ASSERT_TRUE(second.ok());
  Buffer data = MakePatternBuffer(4096, 5);
  ASSERT_TRUE(initiator_->Write(1, 0, data).ok());
  Buffer out(4096);
  ASSERT_TRUE((*second)->Read(1, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(NvmfTest, DuplicateNamespaceRejected) {
  EXPECT_EQ(target_->AddNamespace(1, bdev_.get()).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(target_->AddNamespace(2, nullptr).code(),
            ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Transports, NvmfTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::spdk
