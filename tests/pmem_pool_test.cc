#include "scm/pmem_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.h"

namespace ros2::scm {
namespace {

TEST(PmemPoolTest, AllocDerefFree) {
  PmemPool pool(4096);
  auto h = pool.Alloc(100);
  ASSERT_TRUE(h.ok());
  auto span = pool.Deref(*h);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->size(), 100u);
  EXPECT_EQ(pool.used_bytes(), 100u);
  ASSERT_TRUE(pool.Free(*h).ok());
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.Deref(*h).status().code(), ErrorCode::kNotFound);
}

TEST(PmemPoolTest, FreshAllocationIsZeroed) {
  PmemPool pool(4096);
  auto h1 = pool.Alloc(64);
  ASSERT_TRUE(h1.ok());
  auto s1 = pool.Deref(*h1);
  ASSERT_TRUE(s1.ok());
  std::memset(s1->data(), 0xAB, 64);
  ASSERT_TRUE(pool.Free(*h1).ok());
  auto h2 = pool.Alloc(64);
  ASSERT_TRUE(h2.ok());
  auto view = pool.Deref(*h2);
  ASSERT_TRUE(view.ok());
  for (std::byte b : *view) {
    EXPECT_EQ(b, std::byte(0));
  }
}

TEST(PmemPoolTest, ExhaustionReported) {
  PmemPool pool(256);
  auto h = pool.Alloc(200);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool.Alloc(100).status().code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(pool.Free(*h).ok());
  EXPECT_TRUE(pool.Alloc(100).ok());
}

TEST(PmemPoolTest, FreeListCoalesces) {
  PmemPool pool(300);
  auto a = pool.Alloc(100);
  auto b = pool.Alloc(100);
  auto c = pool.Alloc(100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Free in an order that requires both-side coalescing.
  ASSERT_TRUE(pool.Free(*a).ok());
  ASSERT_TRUE(pool.Free(*c).ok());
  ASSERT_TRUE(pool.Free(*b).ok());
  // Whole pool must be one block again.
  EXPECT_TRUE(pool.Alloc(300).ok());
}

TEST(PmemPoolTest, ZeroSizeAllocRejected) {
  PmemPool pool(64);
  EXPECT_EQ(pool.Alloc(0).status().code(), ErrorCode::kInvalidArgument);
}

TEST(PmemPoolTest, DoubleFreeRejected) {
  PmemPool pool(64);
  auto h = pool.Alloc(10);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.Free(*h).ok());
  EXPECT_EQ(pool.Free(*h).code(), ErrorCode::kNotFound);
}

TEST(PmemPoolTxTest, CommitKeepsChanges) {
  PmemPool pool(4096);
  auto h = pool.Alloc(16);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxSnapshot(*h, 0, 16).ok());
  auto wview = pool.Deref(*h);
  ASSERT_TRUE(wview.ok());
  std::memset(wview->data(), 0x42, 16);
  ASSERT_TRUE(pool.TxCommit().ok());
  auto view = pool.Deref(*h);
  ASSERT_TRUE(view.ok());
  for (std::byte b : *view) {
    EXPECT_EQ(b, std::byte(0x42));
  }
}

// Pinned UBSan regression: a zero-length snapshot used to memcpy from the
// arena into the null data() of the empty undo record (memcpy arguments
// are nonnull even for length 0 — fatal under -fno-sanitize-recover).
TEST(PmemPoolTxTest, ZeroLengthSnapshotIsDefined) {
  PmemPool pool(4096);
  auto h = pool.Alloc(16);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxSnapshot(*h, 0, 0).ok());
  ASSERT_TRUE(pool.TxSnapshot(*h, 16, 0).ok());  // at-end offset, len 0
  ASSERT_TRUE(pool.TxCommit().ok());
}

TEST(PmemPoolTxTest, AbortRollsBackData) {
  PmemPool pool(4096);
  auto h = pool.Alloc(16);
  ASSERT_TRUE(h.ok());
  auto wview = pool.Deref(*h);
  ASSERT_TRUE(wview.ok());
  std::memset(wview->data(), 0x11, 16);
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxSnapshot(*h, 4, 8).ok());
  auto wview2 = pool.Deref(*h);
  ASSERT_TRUE(wview2.ok());
  std::memset(wview2->data() + 4, 0x99, 8);
  pool.TxAbort();
  auto view = pool.Deref(*h);
  ASSERT_TRUE(view.ok());
  for (std::byte b : *view) {
    EXPECT_EQ(b, std::byte(0x11));
  }
}

TEST(PmemPoolTxTest, CrashRollsBackAllocations) {
  PmemPool pool(4096);
  ASSERT_TRUE(pool.TxBegin().ok());
  auto h = pool.TxAlloc(128);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool.used_bytes(), 128u);
  pool.SimulateCrash();
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.Deref(*h).status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(pool.InTx());
}

TEST(PmemPoolTxTest, CrashPreservesDeferredFrees) {
  PmemPool pool(4096);
  auto h = pool.Alloc(64);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxFree(*h).ok());
  pool.SimulateCrash();
  // The free never committed: the allocation must survive.
  EXPECT_TRUE(pool.Deref(*h).ok());
}

TEST(PmemPoolTxTest, CommitAppliesDeferredFrees) {
  PmemPool pool(4096);
  auto h = pool.Alloc(64);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxFree(*h).ok());
  ASSERT_TRUE(pool.TxCommit().ok());
  EXPECT_EQ(pool.Deref(*h).status().code(), ErrorCode::kNotFound);
}

TEST(PmemPoolTxTest, NestedTxRejected) {
  PmemPool pool(64);
  ASSERT_TRUE(pool.TxBegin().ok());
  EXPECT_EQ(pool.TxBegin().code(), ErrorCode::kFailedPrecondition);
  pool.TxAbort();
}

TEST(PmemPoolTxTest, TxOpsOutsideTxRejected) {
  PmemPool pool(64);
  auto h = pool.Alloc(8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool.TxSnapshot(*h, 0, 8).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pool.TxAlloc(8).status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pool.TxCommit().code(), ErrorCode::kFailedPrecondition);
}

TEST(PmemPoolTxTest, SnapshotRangeValidated) {
  PmemPool pool(64);
  auto h = pool.Alloc(8);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(pool.TxBegin().ok());
  EXPECT_EQ(pool.TxSnapshot(*h, 4, 8).code(), ErrorCode::kOutOfRange);
  pool.TxAbort();
}

TEST(PmemPoolTxTest, MultipleSnapshotsRollBackInReverseOrder) {
  PmemPool pool(4096);
  auto h = pool.Alloc(4);
  ASSERT_TRUE(h.ok());
  auto span = *pool.Deref(*h);
  span[0] = std::byte(1);
  ASSERT_TRUE(pool.TxBegin().ok());
  ASSERT_TRUE(pool.TxSnapshot(*h, 0, 1).ok());
  span[0] = std::byte(2);
  ASSERT_TRUE(pool.TxSnapshot(*h, 0, 1).ok());
  span[0] = std::byte(3);
  pool.SimulateCrash();
  EXPECT_EQ((*pool.Deref(*h))[0], std::byte(1));
}

}  // namespace
}  // namespace ros2::scm
