#include "common/units.h"

#include <gtest/gtest.h>

namespace ros2 {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(kGbps * 8, 1e9);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4 * kKiB), "4.00 KiB");
  EXPECT_EQ(FormatBytes(kMiB), "1.00 MiB");
  EXPECT_EQ(FormatBytes(5 * kGiB + kGiB / 2), "5.50 GiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(FormatBandwidth(5.4 * double(kGiB)), "5.40 GiB/s");
  EXPECT_EQ(FormatBandwidth(900 * double(kMiB)), "900 MiB/s");
}

TEST(UnitsTest, FormatCount) {
  EXPECT_EQ(FormatCount(612'300), "612 K");
  EXPECT_EQ(FormatCount(1'250'000), "1.25 M");
  EXPECT_EQ(FormatCount(85), "85.0 ");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(83.4e-6), "83.4 us");
  EXPECT_EQ(FormatDuration(1.21e-3), "1.21 ms");
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
}

TEST(ParseSizeTest, PlainNumbers) {
  EXPECT_EQ(ParseSize("64"), 64u);
  EXPECT_EQ(ParseSize("0"), 0u);
}

TEST(ParseSizeTest, Suffixes) {
  EXPECT_EQ(ParseSize("4k"), 4 * kKiB);
  EXPECT_EQ(ParseSize("4K"), 4 * kKiB);
  EXPECT_EQ(ParseSize("1m"), kMiB);
  EXPECT_EQ(ParseSize("2g"), 2 * kGiB);
  EXPECT_EQ(ParseSize("1t"), kTiB);
}

TEST(ParseSizeTest, FractionalValues) {
  EXPECT_EQ(ParseSize("1.5k"), 1536u);
  EXPECT_EQ(ParseSize("0.5m"), 512 * kKiB);
}

TEST(ParseSizeTest, MalformedReturnsZero) {
  EXPECT_EQ(ParseSize(""), 0u);
  EXPECT_EQ(ParseSize("abc"), 0u);
  EXPECT_EQ(ParseSize("4x"), 0u);
  EXPECT_EQ(ParseSize("-4k"), 0u);
}

}  // namespace
}  // namespace ros2
