// Telemetry subsystem: metric primitives (sharded counters, gauges,
// timestamps, sharded histograms, trace ring), the hierarchical tree
// (registration, links, callbacks, snapshot ordering/prefix), snapshot
// codecs (wire + JSON), concurrency (racing writers vs snapshots — the
// TSan stage runs this suite), and the engine end to end: the
// kTelemetryQuery control-plane RPC, stats-as-views, the per-request
// trace breakdown, and the published-after-Stop() snapshot.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "daos/client.h"
#include "rpc/wire.h"
#include "telemetry/snapshot.h"

namespace ros2::telemetry {
namespace {

TEST(CounterTest, FoldsShards) {
  Counter c(4);
  EXPECT_EQ(c.shards(), 4u);
  c.Add(1, 0);
  c.Add(10, 1);
  c.Add(100, 2);
  c.Add(1000, 3);
  EXPECT_EQ(c.value(), 1111u);
  EXPECT_EQ(c.shard_value(1), 10u);
  EXPECT_EQ(c.shard_value(7), 0u);  // out of range reads as empty
}

TEST(CounterTest, OutOfRangeShardFallsBackToShardZero) {
  // A worker with an unexpected index must not write out of bounds; the
  // update lands (in shard 0) rather than being dropped.
  Counter c(2);
  c.Add(5, 99);
  EXPECT_EQ(c.shard_value(0), 5u);
  EXPECT_EQ(c.value(), 5u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.value(), -12);  // signed: depth accounting may transiently dip
}

TEST(TimestampTest, StampsWallClock) {
  Timestamp ts;
  EXPECT_EQ(ts.value_ns(), 0u);
  ts.StampAt(12345);
  EXPECT_EQ(ts.value_ns(), 12345u);
  ts.Stamp();
  EXPECT_GT(ts.value_ns(), 12345u);
}

TEST(TraceRingTest, WrapsKeepingNewestOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ring.Push(TraceRecord{i, std::uint32_t(i), 0, 0, i * 100});
  }
  EXPECT_EQ(ring.pushed(), 10u);
  auto records = ring.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // The last 4 pushes survive, oldest first: 7, 8, 9, 10.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].trace_id, 7 + i);
    EXPECT_EQ(records[i].total_ns, (7 + i) * 100);
  }
}

TEST(TelemetryTreeTest, RegistrationIsIdempotentAndKindClashesFail) {
  Telemetry tree(/*default_shards=*/3);
  Counter* c = tree.RegisterCounter("a/b/c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->shards(), 3u);  // default_shards applied
  EXPECT_EQ(tree.RegisterCounter("a/b/c"), c);  // idempotent, same object
  EXPECT_EQ(tree.RegisterGauge("a/b/c"), nullptr);  // kind clash
  EXPECT_EQ(tree.RegisterHistogram("a/b/c"), nullptr);
  EXPECT_TRUE(tree.Contains("a/b/c"));
  EXPECT_FALSE(tree.Contains("a/b"));
  EXPECT_EQ(tree.FindCounter("a/b/c"), c);
  EXPECT_EQ(tree.FindCounter("nope"), nullptr);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(TelemetryTreeTest, LinksAndCallbacksDontMixWithOwnedNodes) {
  Telemetry tree;
  Counter external(2);
  ASSERT_TRUE(tree.LinkCounter("views/ext", &external));
  EXPECT_TRUE(tree.LinkCounter("views/ext", &external));  // same link: ok
  Counter other;
  EXPECT_FALSE(tree.LinkCounter("views/ext", &other));  // different object
  // Owned registration on a linked path is refused (and vice versa).
  EXPECT_EQ(tree.RegisterCounter("views/ext"), nullptr);
  ASSERT_NE(tree.RegisterCounter("owned"), nullptr);
  EXPECT_FALSE(tree.LinkCounter("owned", &external));
  EXPECT_FALSE(tree.RegisterCallback("owned", [] { return std::int64_t(0); }));
  // Find* hands out mutable pointers, so links are not findable.
  EXPECT_EQ(tree.FindCounter("views/ext"), nullptr);

  external.Add(7, 0);
  external.Add(5, 1);
  TelemetrySnapshot snap = tree.Snapshot();
  EXPECT_EQ(snap.ValueOr("views/ext", 0), 12u);  // read through the link
}

TEST(TelemetryTreeTest, CallbackGaugeComputesAtSnapshotTime) {
  Telemetry tree;
  std::int64_t level = 3;
  ASSERT_TRUE(tree.RegisterCallback("live/depth", [&level] { return level; }));
  EXPECT_EQ(tree.Snapshot().ValueOr("live/depth", 0), 3u);
  level = 42;
  EXPECT_EQ(tree.Snapshot().ValueOr("live/depth", 0), 42u);
}

TEST(TelemetryHistogramTest, ShardFoldMatchesSingleRecordingBitExactly) {
  // The telemetry::Histogram fold is LatencyHistogram::Merge underneath;
  // exactly-representable samples make bit-equality a fair bar (see
  // histogram_test's merge test for the numeric argument).
  Rng rng(11);
  Histogram sharded(4);
  LatencyHistogram single;
  constexpr double kStep = 0x1.0p-20;
  for (int i = 0; i < 2000; ++i) {
    const double v = double(1 + rng.Below(1u << 20)) * kStep;
    sharded.Record(v, std::uint32_t(i % 4));
    single.Record(v);
  }
  EXPECT_EQ(sharded.count(), single.count());
  LatencyHistogram folded = sharded.Fold();
  EXPECT_EQ(folded.count(), single.count());
  EXPECT_EQ(folded.sum(), single.sum());
  EXPECT_EQ(folded.min(), single.min());
  EXPECT_EQ(folded.max(), single.max());
  EXPECT_EQ(folded.p50(), single.p50());
  EXPECT_EQ(folded.p99(), single.p99());
  EXPECT_EQ(folded.p999(), single.p999());
}

TEST(TelemetryTreeTest, SnapshotIsPathOrderedAndPrefixFiltered) {
  Telemetry tree;
  tree.RegisterCounter("z/last")->Add(1);
  tree.RegisterCounter("a/first")->Add(2);
  tree.RegisterCounter("m/mid/one")->Add(3);
  tree.RegisterCounter("m/mid/two")->Add(4);
  tree.RegisterGauge("m/gauge")->Set(-5);

  TelemetrySnapshot all = tree.Snapshot();
  ASSERT_EQ(all.metrics.size(), 5u);
  for (std::size_t i = 1; i < all.metrics.size(); ++i) {
    EXPECT_LT(all.metrics[i - 1].path, all.metrics[i].path);
  }
  EXPECT_EQ(all.Find("m/gauge")->gauge, -5);
  EXPECT_EQ(all.Find("missing"), nullptr);

  TelemetrySnapshot mid = tree.Snapshot("m/mid/");
  ASSERT_EQ(mid.metrics.size(), 2u);
  EXPECT_EQ(mid.metrics[0].path, "m/mid/one");
  EXPECT_EQ(mid.metrics[1].path, "m/mid/two");
  EXPECT_TRUE(tree.Snapshot("zz").empty());
}

TelemetrySnapshot MakeRichSnapshot() {
  Telemetry tree;
  tree.RegisterCounter("c/requests")->Add(123456789);
  tree.RegisterGauge("g/depth")->Set(-42);
  tree.RegisterTimestamp("t/start")->StampAt(1700000000123456789ull);
  Histogram* h = tree.RegisterHistogram("h/latency", 2);
  h->Record(10 * kUsec, 0);
  h->Record(250 * kUsec, 1);
  h->Record(2 * kMsec, 0);
  TelemetrySnapshot snap = tree.Snapshot();
  snap.traces.push_back(TraceRecord{0xABCDEF, 205, 1000, 2000, 3500});
  snap.traces.push_back(TraceRecord{0x123456, 104, 0, 900, 950});
  return snap;
}

TEST(SnapshotCodecTest, WireRoundTripIsExact) {
  TelemetrySnapshot snap = MakeRichSnapshot();
  rpc::Encoder enc;
  snap.EncodeTo(enc);
  Buffer wire = enc.Take();

  rpc::Decoder dec(wire);
  auto decoded = TelemetrySnapshot::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->metrics.size(), snap.metrics.size());
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    const MetricValue& a = snap.metrics[i];
    const MetricValue& b = decoded->metrics[i];
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(int(a.kind), int(b.kind));
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.gauge, b.gauge);
    EXPECT_EQ(a.count, b.count);
    // Doubles ride the wire as IEEE bit patterns: exact, not approximate.
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
  }
  ASSERT_EQ(decoded->traces.size(), 2u);
  EXPECT_EQ(decoded->traces[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(decoded->traces[0].opcode, 205u);
  EXPECT_EQ(decoded->traces[1].exec_ns, 900u);

  // Truncated frames decode to errors, not garbage.
  Buffer cut(wire.begin(), wire.begin() + std::ptrdiff_t(wire.size() / 2));
  rpc::Decoder cut_dec(cut);
  EXPECT_FALSE(TelemetrySnapshot::DecodeFrom(cut_dec).ok());
}

TEST(SnapshotCodecTest, JsonRoundTrip) {
  TelemetrySnapshot snap = MakeRichSnapshot();
  auto back = TelemetrySnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->metrics.size(), snap.metrics.size());
  EXPECT_EQ(back->ValueOr("c/requests", 0), 123456789u);
  EXPECT_EQ(back->Find("g/depth")->gauge, -42);
  const MetricValue* h = back->Find("h/latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->max, snap.Find("h/latency")->max);
  ASSERT_EQ(back->traces.size(), 2u);
  EXPECT_EQ(back->traces[0].trace_id, 0xABCDEFu);

  EXPECT_FALSE(TelemetrySnapshot::FromJson(bench::Json::Object()).ok());
}

TEST(SnapshotCodecTest, RenderTableListsEveryMetric) {
  TelemetrySnapshot snap = MakeRichSnapshot();
  const std::string table = snap.RenderTable();
  for (const MetricValue& m : snap.metrics) {
    EXPECT_NE(table.find(m.path), std::string::npos) << m.path;
  }
  EXPECT_NE(table.find("n=3"), std::string::npos);  // histogram count cell
  EXPECT_NE(table.find("trace_id"), std::string::npos);
}

// ------------------------------------------------------ concurrency (TSan)

TEST(TelemetryConcurrencyTest, RacingIncrementsAllLand) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  Telemetry tree(kThreads);
  Counter* sharded = tree.RegisterCounter("race/sharded");
  Counter* contended = tree.RegisterCounter("race/contended", 1);
  Histogram* hist = tree.RegisterHistogram("race/latency", kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded->Add(1, std::uint32_t(t));     // own cache line
        contended->Add(1, 0);                  // all threads, one shard
        hist->Record(kUsec * double(i + 1), std::uint32_t(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sharded->value(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(contended->value(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), std::uint64_t(kThreads) * kPerThread);
  const TelemetrySnapshot snap = tree.Snapshot();
  EXPECT_EQ(snap.ValueOr("race/sharded", 0),
            std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(snap.Find("race/latency")->count,
            std::uint64_t(kThreads) * kPerThread);
}

TEST(TelemetryConcurrencyTest, SnapshotsDuringWritesAreMonotone) {
  // Snapshots taken while writers race must see values that only move
  // forward (fold reads are relaxed, but each shard is monotone, so the
  // folded value is too) and never exceed the final total.
  constexpr int kWriters = 3;
  constexpr int kPerThread = 30000;
  Telemetry tree(kWriters);
  Counter* counter = tree.RegisterCounter("mono/counter");
  TraceRing ring(64);
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1, std::uint32_t(t));
        ring.Push(TraceRecord{std::uint64_t(i), std::uint32_t(t), 0, 0, 0});
      }
    });
  }
  std::uint64_t last = 0;
  bool monotone = true;
  while (!done.load(std::memory_order_acquire)) {
    const std::uint64_t now = tree.Snapshot().ValueOr("mono/counter", 0);
    monotone = monotone && now >= last;
    last = now;
    (void)ring.Snapshot();  // concurrent ring reads must also be safe
    if (last >= std::uint64_t(kWriters) * kPerThread) break;
    std::this_thread::yield();
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  EXPECT_TRUE(monotone);
  EXPECT_EQ(counter->value(), std::uint64_t(kWriters) * kPerThread);
  EXPECT_EQ(ring.pushed(), std::uint64_t(kWriters) * kPerThread);
}

// --------------------------------------------------- engine, end to end

struct EngineHarness {
  net::Fabric fabric;
  std::unique_ptr<storage::NvmeDevice> device;
  std::unique_ptr<daos::DaosEngine> engine;
  std::unique_ptr<daos::DaosClient> client;
  daos::ContainerId cont = 0;
  daos::ObjectId oid;

  static std::unique_ptr<EngineHarness> Boot(bool threaded, bool telemetry,
                                             std::uint32_t targets = 4) {
    auto h = std::make_unique<EngineHarness>();
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 128 * kMiB;
    h->device = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {h->device.get()};
    daos::EngineConfig config;
    config.address = "fabric://telemetry-engine";
    config.targets = targets;
    config.scm_per_target = 8 * kMiB;
    config.xstream_workers = threaded;
    config.telemetry = telemetry;
    auto engine = daos::DaosEngine::Create(&h->fabric, config, raw);
    if (!engine.ok()) return nullptr;
    h->engine = std::move(*engine);
    daos::DaosClient::ConnectOptions connect;
    connect.client_address = "fabric://telemetry-client";
    auto client =
        daos::DaosClient::Connect(&h->fabric, h->engine.get(), connect);
    if (!client.ok()) return nullptr;
    h->client = std::move(*client);
    auto cont = h->client->ContainerCreate("telemetry");
    if (!cont.ok()) return nullptr;
    h->cont = *cont;
    auto oid = h->client->AllocOid(h->cont);
    if (!oid.ok()) return nullptr;
    h->oid = *oid;
    return h;
  }

  bool RunWorkload(int ops) {
    Buffer value = MakePatternBuffer(512, 3);
    for (int i = 0; i < ops; ++i) {
      const std::string dkey = "k" + std::to_string(i);
      if (!client->UpdateSingle(cont, oid, dkey, "a", value).ok()) {
        return false;
      }
      if (!client->FetchSingle(cont, oid, dkey, "a").ok()) return false;
    }
    return true;
  }
};

TEST(EngineTelemetryTest, QueryExportsLiveMetricsOverRpc) {
  auto h = EngineHarness::Boot(/*threaded=*/true, /*telemetry=*/true);
  ASSERT_NE(h, nullptr);
  constexpr int kOps = 32;
  ASSERT_TRUE(h->RunWorkload(kOps));

  auto snap = h->client->TelemetryQuery();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Per-opcode latency histograms have real samples.
  const MetricValue* upd = snap->Find("rpc/op/single_update/latency/total");
  ASSERT_NE(upd, nullptr);
  EXPECT_EQ(upd->count, std::uint64_t(kOps));
  EXPECT_GT(upd->max, 0.0);
  EXPECT_EQ(snap->ValueOr("rpc/op/single_update/requests", 0),
            std::uint64_t(kOps));
  EXPECT_EQ(snap->ValueOr("rpc/op/single_fetch/requests", 0),
            std::uint64_t(kOps));

  // Engine counters, per-target scheduler state, VOS counters.
  EXPECT_EQ(snap->ValueOr("engine/updates", 0), std::uint64_t(kOps));
  EXPECT_EQ(snap->ValueOr("engine/fetches", 0), std::uint64_t(kOps));
  EXPECT_GT(snap->ValueOr("engine/started_at", 0), 0u);
  std::uint64_t executed = 0;
  std::uint64_t vos_updates = 0;
  for (std::uint32_t t = 0; t < h->engine->num_targets(); ++t) {
    const std::string sched = "sched/target/" + std::to_string(t) + "/";
    const MetricValue* depth = snap->Find(sched + "queue_depth");
    ASSERT_NE(depth, nullptr) << sched;
    EXPECT_EQ(int(depth->kind), int(MetricKind::kGauge));
    executed += snap->ValueOr(sched + "executed", 0);
    vos_updates += snap->ValueOr(
        "vos/target/" + std::to_string(t) + "/updates", 0);
  }
  EXPECT_EQ(executed, std::uint64_t(2 * kOps));
  EXPECT_EQ(vos_updates, std::uint64_t(kOps));
  EXPECT_GT(snap->ValueOr("sched/busy_ns", 0), 0u);
  EXPECT_GT(snap->ValueOr("net/bytes_sent", 0), 0u);
  EXPECT_EQ(snap->ValueOr("engine/cont/telemetry/epoch", 0),
            std::uint64_t(kOps) + 1);

  // Prefix queries return the matching subtree only.
  auto rpc_only = h->client->TelemetryQuery(0, "rpc/");
  ASSERT_TRUE(rpc_only.ok());
  ASSERT_FALSE(rpc_only->metrics.empty());
  for (const MetricValue& m : rpc_only->metrics) {
    EXPECT_EQ(m.path.rfind("rpc/", 0), 0u) << m.path;
  }

  // The trace ring rides along when asked for: every record carries a
  // breakdown consistent with total = queue + exec + reply overhead.
  auto traced = h->client->TelemetryQuery(0, "telemetry/", /*traces=*/true);
  ASSERT_TRUE(traced.ok());
  ASSERT_FALSE(traced->traces.empty());
  for (const TraceRecord& rec : traced->traces) {
    EXPECT_NE(rec.trace_id, 0u);
    EXPECT_GE(rec.total_ns, rec.exec_ns);
    EXPECT_GE(rec.total_ns, rec.queue_ns);
  }
  // The query op meters itself too.
  auto again = h->client->TelemetryQuery(0, "telemetry/");
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again->ValueOr("telemetry/queries", 0), 3u);
}

TEST(EngineTelemetryTest, ExistingStatsAreViewsOverTheTree) {
  auto h = EngineHarness::Boot(/*threaded=*/false, /*telemetry=*/true);
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->RunWorkload(12));
  // Snapshots happen inside the query handler, before the query itself is
  // counted as served — so compare against the accessor read BEFORE the
  // query (no other traffic moves the counters in between).
  rpc::RpcServer* server = h->engine->server();
  const std::uint64_t served_before = server->requests_served();
  auto snap = h->client->TelemetryQuery();
  ASSERT_TRUE(snap.ok());
  // One source of truth: the snapshot reads the same counter objects the
  // legacy accessors fold, so they must agree exactly.
  const daos::EngineStats stats = h->engine->stats();
  EXPECT_EQ(snap->ValueOr("engine/updates", 1), stats.updates);
  EXPECT_EQ(snap->ValueOr("engine/fetches", 1), stats.fetches);
  EXPECT_EQ(snap->ValueOr("rpc/requests_served", 0), served_before);
  EXPECT_EQ(server->requests_served(), served_before + 1);
  EXPECT_EQ(snap->ValueOr("rpc/requests_deferred", 0),
            server->requests_deferred());
  EXPECT_EQ(snap->ValueOr("rpc/bulk_bytes_in", 1), server->bulk_bytes_in());
  EXPECT_EQ(snap->ValueOr("rpc/bulk_bytes_out", 1),
            server->bulk_bytes_out());
  const net::MrCache& mrc = h->engine->endpoint()->mr_cache();
  EXPECT_EQ(snap->ValueOr("net/mr_cache/hits", 1), mrc.hits());
  EXPECT_EQ(snap->ValueOr("net/mr_cache/misses", 1), mrc.misses());
  EXPECT_EQ(snap->ValueOr("net/mr_cache/evictions", 1), mrc.evictions());
  // Scheduler executed: accessor and callback gauge agree.
  EXPECT_EQ(snap->ValueOr("sched/executed", 0),
            h->engine->scheduler().executed());
}

TEST(EngineTelemetryTest, ProgressThreadPublishesFinalSnapshotOnStop) {
  auto h = EngineHarness::Boot(/*threaded=*/true, /*telemetry=*/true);
  ASSERT_NE(h, nullptr);
  // Nothing published until the progress thread has exited once.
  EXPECT_EQ(h->engine->published_snapshot().status().code(),
            ErrorCode::kFailedPrecondition);

  constexpr int kOps = 16;
  ASSERT_TRUE(h->RunWorkload(kOps));
  h->engine->StartProgressThread();
  h->engine->StopProgressThread();

  // The post-mortem view is NOT all-zero: it carries the real totals the
  // engine had served when the thread exited.
  auto post = h->engine->published_snapshot();
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->ValueOr("engine/updates", 0), std::uint64_t(kOps));
  EXPECT_EQ(post->ValueOr("engine/fetches", 0), std::uint64_t(kOps));
  EXPECT_EQ(post->Find("rpc/op/single_update/latency/total")->count,
            std::uint64_t(kOps));

  // A second run replaces the published snapshot (latest totals win).
  ASSERT_TRUE(h->RunWorkload(kOps));
  h->engine->StartProgressThread();
  h->engine->StopProgressThread();
  auto post2 = h->engine->published_snapshot();
  ASSERT_TRUE(post2.ok());
  EXPECT_EQ(post2->ValueOr("engine/updates", 0), std::uint64_t(2 * kOps));
}

TEST(EngineTelemetryTest, DisabledTelemetryAnswersEmptyAndStillCounts) {
  auto h = EngineHarness::Boot(/*threaded=*/true, /*telemetry=*/false);
  ASSERT_NE(h, nullptr);
  constexpr int kOps = 8;
  ASSERT_TRUE(h->RunWorkload(kOps));
  // The tree is empty but the RPC answers (an operator probing a
  // dark engine gets a valid empty snapshot, not an error).
  auto snap = h->client->TelemetryQuery(0, "", /*traces=*/true);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap->metrics.empty());
  EXPECT_TRUE(snap->traces.empty());
  // The legacy accessors still count — they own the counters; only the
  // tree wiring (and per-op latency stamping) is off.
  EXPECT_EQ(h->engine->stats().updates, std::uint64_t(kOps));
  EXPECT_EQ(h->engine->stats().fetches, std::uint64_t(kOps));
  EXPECT_FALSE(h->engine->scheduler().time_ops());
  EXPECT_EQ(h->engine->scheduler().busy_ns(), 0u);
  EXPECT_EQ(h->engine->published_snapshot().status().code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace ros2::telemetry
