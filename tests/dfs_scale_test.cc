// DFS-at-scale tests for the pipelined data path: batch round-trips
// larger than the client's in-flight window, paged Readdir over a
// directory too big for one page, and lookup-cache semantics (hits,
// invalidation on rename/unlink, LRU bound) observed through the dfs/*
// telemetry subtree.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"
#include "dfs/dfs.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace ros2::dfs {
namespace {

/// Small chunks so a single Write fans out into far more chunk ops than
/// the RPC client's 32-op window — the batch path must flow-control, not
/// overrun or deadlock.
constexpr std::uint64_t kChunk = 4 * kKiB;

class DfsScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    daos::EngineConfig config;
    config.targets = 8;
    config.scm_per_target = 16 * kMiB;
    engine_ = std::make_unique<daos::DaosEngine>(&fabric_, config, raw);
    auto client = daos::DaosClient::Connect(&fabric_, engine_.get(),
                                            daos::DaosClient::ConnectOptions{});
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    auto cont = client_->ContainerCreate("scale");
    ASSERT_TRUE(cont.ok());
    cont_ = *cont;
  }

  std::unique_ptr<Dfs> NewMount(bool create, DfsConfig config) {
    config.chunk_size = kChunk;
    auto dfs = Dfs::Mount(client_.get(), cont_, create, config);
    EXPECT_TRUE(dfs.ok()) << dfs.status().ToString();
    return dfs.ok() ? std::move(*dfs) : nullptr;
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<daos::DaosEngine> engine_;
  std::unique_ptr<daos::DaosClient> client_;
  daos::ContainerId cont_;
};

TEST_F(DfsScaleTest, BatchRoundTripExceedsClientWindow) {
  auto dfs = NewMount(/*create=*/true, DfsConfig{});
  ASSERT_NE(dfs, nullptr);
  telemetry::Telemetry tree;
  dfs->AttachTelemetry(&tree);

  OpenFlags create;
  create.create = true;
  auto fd = dfs->Open("/wide", create);
  ASSERT_TRUE(fd.ok());

  // 40+ chunks in one call — beyond the RPC client's 32-op window, and
  // starting/ending mid-chunk so the edges take the read-modify-write
  // path while the middle takes the full-chunk path.
  const std::uint64_t offset = kChunk / 2 + 17;
  Buffer data = MakePatternBuffer(40 * kChunk + 1234, 21);
  ASSERT_TRUE(dfs->Write(*fd, offset, data).ok());

  Buffer out(data.size());
  auto n = dfs->Read(*fd, offset, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, data.size());
  EXPECT_EQ(out, data);

  // The whole request went through the pipelined path: one logical write
  // batch and one read batch, each carrying more chunk ops than the
  // client window holds at once.
  auto snap = tree.Snapshot("dfs/io");
  EXPECT_GE(snap.ValueOr("dfs/io/write_batches", 0), 1u);
  EXPECT_GE(snap.ValueOr("dfs/io/read_batches", 0), 1u);
  EXPECT_GT(snap.ValueOr("dfs/io/chunk_updates", 0), 32u);
  EXPECT_GT(snap.ValueOr("dfs/io/chunk_fetches", 0), 32u);

  // A mount with every accelerator off reads the same bytes back: the
  // batched writer left exactly the state the sequential path expects.
  DfsConfig plain;
  plain.batch_io = false;
  plain.lookup_cache = false;
  plain.readahead = false;
  auto seq = NewMount(/*create=*/false, plain);
  ASSERT_NE(seq, nullptr);
  auto fd2 = seq->Open("/wide", OpenFlags{});
  ASSERT_TRUE(fd2.ok());
  Buffer again(data.size());
  auto n2 = seq->Read(*fd2, offset, again);
  ASSERT_TRUE(n2.ok());
  ASSERT_EQ(*n2, data.size());
  EXPECT_EQ(again, data);
}

TEST_F(DfsScaleTest, ReaddirPagingCoversLargeDirectory) {
  auto dfs = NewMount(/*create=*/true, DfsConfig{});
  ASSERT_NE(dfs, nullptr);
  ASSERT_TRUE(dfs->Mkdir("/big").ok());
  constexpr int kFiles = 57;
  std::set<std::string> expected;
  for (int i = 0; i < kFiles; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "f%03d", i);
    OpenFlags create;
    create.create = true;
    auto fd = dfs->Open(std::string("/big/") + name, create);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(dfs->Close(*fd).ok());
    expected.insert(name);
  }
  ASSERT_TRUE(dfs->Mkdir("/big/sub").ok());
  expected.insert("sub");

  // Walk the directory 10 entries at a time; every page but the last
  // reports more=true and a usable marker, and each name shows up
  // exactly once across pages.
  ReaddirPage page;
  page.limit = 10;
  std::set<std::string> listed;
  std::vector<std::size_t> page_sizes;
  for (;;) {
    auto result = dfs->Readdir("/big", page);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    page_sizes.push_back(result->entries.size());
    std::string prev;
    for (const auto& entry : result->entries) {
      EXPECT_LT(prev, entry.name) << "page not sorted";
      prev = entry.name;
      EXPECT_TRUE(listed.insert(entry.name).second)
          << entry.name << " listed twice";
      EXPECT_EQ(entry.type, entry.name == "sub" ? InodeType::kDirectory
                                                : InodeType::kFile);
    }
    if (!result->more) break;
    EXPECT_EQ(result->entries.size(), page.limit);
    ASSERT_FALSE(result->next_marker.empty());
    page.marker = result->next_marker;
  }
  EXPECT_EQ(listed, expected);
  EXPECT_EQ(page_sizes.size(), (kFiles + 1 + 9) / 10u);

  // An unbounded page and the convenience Readdir agree with the pages.
  auto all = dfs->Readdir("/big", ReaddirPage{});
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->more);
  EXPECT_EQ(all->entries.size(), expected.size());
  auto flat = dfs->Readdir("/big");
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), expected.size());
}

TEST_F(DfsScaleTest, ReaddirPageMarkerSurvivesUnlink) {
  // Unlinking the marker entry (and its successors) between pages must
  // not derail the walk: the next page resumes strictly after the
  // marker's name, skipping whatever vanished.
  auto dfs = NewMount(/*create=*/true, DfsConfig{});
  ASSERT_NE(dfs, nullptr);
  ASSERT_TRUE(dfs->Mkdir("/churn").ok());
  for (int i = 0; i < 20; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "f%02d", i);
    OpenFlags create;
    create.create = true;
    auto fd = dfs->Open(std::string("/churn/") + name, create);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(dfs->Close(*fd).ok());
  }
  ReaddirPage page;
  page.limit = 8;
  auto first = dfs->Readdir("/churn", page);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->more);
  ASSERT_EQ(first->next_marker, "f07");  // nothing punched mid-listing yet
  // Remove the marker itself plus the next two names.
  ASSERT_TRUE(dfs->Unlink("/churn/" + first->next_marker).ok());
  ASSERT_TRUE(dfs->Unlink("/churn/f08").ok());
  ASSERT_TRUE(dfs->Unlink("/churn/f09").ok());
  page.marker = first->next_marker;
  std::set<std::string> rest;
  for (;;) {
    auto result = dfs->Readdir("/churn", page);
    ASSERT_TRUE(result.ok());
    for (const auto& entry : result->entries) {
      EXPECT_GT(entry.name, first->next_marker);
      EXPECT_TRUE(rest.insert(entry.name).second);
    }
    if (!result->more) break;
    page.marker = result->next_marker;
  }
  std::set<std::string> expected;
  for (int i = 10; i < 20; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "f%02d", i);
    expected.insert(name);
  }
  EXPECT_EQ(rest, expected);
}

TEST_F(DfsScaleTest, LookupCacheHitsAndInvalidation) {
  auto dfs = NewMount(/*create=*/true, DfsConfig{});
  ASSERT_NE(dfs, nullptr);
  telemetry::Telemetry tree;
  dfs->AttachTelemetry(&tree);
  ASSERT_TRUE(dfs->Mkdir("/cache").ok());
  OpenFlags create;
  create.create = true;
  auto fd = dfs->Open("/cache/a", create);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs->Write(*fd, 0, MakePatternBuffer(100, 1)).ok());
  ASSERT_TRUE(dfs->Close(*fd).ok());

  // First stat warms the cache; repeats are pure hits.
  ASSERT_TRUE(dfs->Stat("/cache/a").ok());
  const std::uint64_t hits_before =
      tree.Snapshot("dfs/lookup_cache").ValueOr("dfs/lookup_cache/hits", 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(dfs->Stat("/cache/a").ok());
  auto snap = tree.Snapshot("dfs/lookup_cache");
  EXPECT_GE(snap.ValueOr("dfs/lookup_cache/hits", 0), hits_before + 5);

  // Rename drops the old name at once — a stale hit here would resolve
  // the dead entry.
  ASSERT_TRUE(dfs->Rename("/cache/a", "/cache/b").ok());
  EXPECT_FALSE(dfs->Stat("/cache/a").ok());
  auto moved = dfs->Stat("/cache/b");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->size, 100u);

  // Unlink likewise: the cached entry must die with the file.
  ASSERT_TRUE(dfs->Stat("/cache/b").ok());  // warm it again
  ASSERT_TRUE(dfs->Unlink("/cache/b").ok());
  EXPECT_FALSE(dfs->Stat("/cache/b").ok());
  EXPECT_FALSE(dfs->Open("/cache/b", OpenFlags{}).ok());

  // Re-creating the name must serve the NEW object, not a cached ghost.
  auto fd2 = dfs->Open("/cache/b", create);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(dfs->Write(*fd2, 0, MakePatternBuffer(7, 2)).ok());
  ASSERT_TRUE(dfs->Close(*fd2).ok());
  auto reborn = dfs->Stat("/cache/b");
  ASSERT_TRUE(reborn.ok());
  EXPECT_EQ(reborn->size, 7u);
}

TEST_F(DfsScaleTest, LookupCacheStaysBounded) {
  DfsConfig config;
  config.lookup_cache_entries = 8;
  auto dfs = NewMount(/*create=*/true, config);
  ASSERT_NE(dfs, nullptr);
  telemetry::Telemetry tree;
  dfs->AttachTelemetry(&tree);
  OpenFlags create;
  create.create = true;
  for (int i = 0; i < 24; ++i) {
    const std::string path = "/f" + std::to_string(i);
    auto fd = dfs->Open(path, create);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(dfs->Close(*fd).ok());
    ASSERT_TRUE(dfs->Stat(path).ok());
  }
  auto snap = tree.Snapshot("dfs/lookup_cache");
  EXPECT_LE(snap.ValueOr("dfs/lookup_cache/entries", 99), 8u);
  EXPECT_GT(snap.ValueOr("dfs/lookup_cache/evictions", 0), 0u);

  // Evicted names still resolve — the cache is an accelerator, never
  // the source of truth.
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(dfs->Stat("/f" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(DfsScaleTest, KillSwitchesDisableAcceleratorsNotSemantics) {
  // batch_io=false + lookup_cache=false must behave identically, just
  // slower: zero batch counters, zero cache traffic.
  DfsConfig plain;
  plain.batch_io = false;
  plain.lookup_cache = false;
  plain.readahead = false;
  auto dfs = NewMount(/*create=*/true, plain);
  ASSERT_NE(dfs, nullptr);
  telemetry::Telemetry tree;
  dfs->AttachTelemetry(&tree);
  OpenFlags create;
  create.create = true;
  auto fd = dfs->Open("/plain", create);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(10 * kChunk + 99, 3);
  ASSERT_TRUE(dfs->Write(*fd, 0, data).ok());
  Buffer out(data.size());
  auto n = dfs->Read(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(dfs->Stat("/plain").ok());

  auto snap = tree.Snapshot("dfs");
  EXPECT_EQ(snap.ValueOr("dfs/io/read_batches", 99), 0u);
  EXPECT_EQ(snap.ValueOr("dfs/io/write_batches", 99), 0u);
  EXPECT_EQ(snap.ValueOr("dfs/lookup_cache/hits", 99), 0u);
  EXPECT_EQ(snap.ValueOr("dfs/lookup_cache/entries", 99), 0u);
  // Chunk ops still count — they meter the data path itself, not the
  // batching.
  EXPECT_GT(snap.ValueOr("dfs/io/chunk_updates", 0), 10u);
}

}  // namespace
}  // namespace ros2::dfs
