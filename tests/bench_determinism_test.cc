// Determinism gate for the experiments subsystem: two --quick runs of a
// model-based experiment must produce byte-identical JSON (metric values
// included). This is what makes `scripts/bench.sh --diff` meaningful — the
// calibrated simulator has no wall-clock or unseeded randomness, so any
// drift between runs is a bug in the models or the report pipeline, not
// noise. Exercises the real registration macro + registry + BenchContext
// quick scaling end to end.
#include <string>

#include "bench/registry.h"
#include "common/units.h"
#include "gtest/gtest.h"
#include "perf/dfs_model.h"

namespace ros2 {
namespace {

// A miniature fig-5-style sweep, registered through the production macro.
ROS2_BENCH_EXPERIMENT(determinism_probe,
                      "DFS model sweep used by bench_determinism_test") {
  AsciiTable table({"deployment", "throughput"});
  for (auto platform :
       {perf::Platform::kServerHost, perf::Platform::kBlueField3}) {
    for (auto transport : {perf::Transport::kTcp, perf::Transport::kRdma}) {
      perf::DfsModel::Config config;
      config.platform = platform;
      config.transport = transport;
      config.num_ssds = 4;
      config.num_jobs = 8;
      config.op = perf::OpKind::kRandRead;
      config.block_size = 64 * kKiB;
      perf::DfsModel model(config);
      const auto result = model.Run(ctx.ops(16000));
      const std::string name =
          std::string(perf::PlatformName(platform)) + "/" +
          std::string(perf::TransportName(transport));
      table.AddRow({name, FormatBandwidth(result.bytes_per_sec)});
      ctx.Metric("throughput", "bytes_per_sec", result.bytes_per_sec,
                 {{"deployment", name}});
      ctx.Metric("p99_latency", "seconds", result.latency.p99(),
                 {{"deployment", name}});
    }
  }
  ctx.Table("determinism probe sweep", table);
}

bench::BenchReport RunQuickProbe() {
  bench::RunOptions options;
  options.quick = true;
  options.filter = "determinism_probe";
  bench::BenchReport report("bench_determinism", options.quick);
  const int run = bench::RunExperiments(options, &report);
  EXPECT_EQ(run, 1);
  return report;
}

TEST(BenchDeterminismTest, ExperimentIsRegistered) {
  bool found = false;
  for (const auto& experiment : bench::Experiments()) {
    if (experiment.name == "determinism_probe") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BenchDeterminismTest, TwoQuickRunsProduceIdenticalJson) {
  const std::string first = RunQuickProbe().ToJson().Dump(2);
  const std::string second = RunQuickProbe().ToJson().Dump(2);
  EXPECT_EQ(first, second);
  // The run produced real metric payloads, not empty sections.
  EXPECT_NE(first.find("\"metric\": \"throughput\""), std::string::npos);
  EXPECT_NE(first.find("\"deployment\": \"host-cpu/rdma\""),
            std::string::npos);
}

TEST(BenchDeterminismTest, QuickAndFullModeDiverge) {
  // Sanity check that --quick actually scales the op budget: quick and full
  // runs should disagree on at least the latency tail.
  bench::RunOptions quick;
  quick.quick = true;
  quick.filter = "determinism_probe";
  bench::RunOptions full;
  full.quick = false;
  full.filter = "determinism_probe";
  bench::BenchReport quick_report("b", true);
  bench::BenchReport full_report("b", false);
  bench::RunExperiments(quick, &quick_report);
  bench::RunExperiments(full, &full_report);
  EXPECT_NE(quick_report.ToJson().Dump(), full_report.ToJson().Dump());
}

TEST(BenchDeterminismTest, FilterSelectsNothingWhenNoMatch) {
  bench::RunOptions options;
  options.filter = "no_such_experiment_*";
  bench::BenchReport report("b", false);
  EXPECT_EQ(bench::RunExperiments(options, &report), 0);
}

TEST(BenchDeterminismTest, WildcardMatching) {
  EXPECT_TRUE(bench::WildcardMatch("determinism_*", "determinism_probe"));
  EXPECT_TRUE(bench::WildcardMatch("*_probe", "determinism_probe"));
  EXPECT_TRUE(bench::WildcardMatch("det?rminism_probe",
                                   "determinism_probe"));
  EXPECT_FALSE(bench::WildcardMatch("fig*", "determinism_probe"));
  EXPECT_TRUE(bench::WildcardMatch("*", ""));
  EXPECT_FALSE(bench::WildcardMatch("?", ""));
}

}  // namespace
}  // namespace ros2
