#include "core/chacha20.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace ros2::core {
namespace {

ChaChaKey TestKey() {
  ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = std::uint8_t(i);
  return key;
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  const ChaChaKey key = TestKey();
  Buffer data = MakePatternBuffer(10000, 1);
  Buffer original = data;
  ChaCha20Xor(key, 42, 0, data);
  EXPECT_NE(data, original);
  ChaCha20Xor(key, 42, 0, data);  // XOR stream is its own inverse
  EXPECT_EQ(data, original);
}

TEST(ChaCha20Test, CiphertextLooksNothingLikePlaintext) {
  const ChaChaKey key = TestKey();
  Buffer data(1024, std::byte(0));  // all zeros: ciphertext = keystream
  ChaCha20Xor(key, 1, 0, data);
  int zero_count = 0;
  for (std::byte b : data) {
    if (b == std::byte(0)) ++zero_count;
  }
  EXPECT_LT(zero_count, 32);  // keystream should have few zero bytes
}

TEST(ChaCha20Test, StreamOffsetSeekable) {
  // Encrypting [0, 1000) in one shot must equal encrypting [0, 300) and
  // [300, 1000) separately — the property chunk-split DFS writes rely on.
  const ChaChaKey key = TestKey();
  Buffer whole = MakePatternBuffer(1000, 2);
  Buffer split = whole;
  ChaCha20Xor(key, 7, 0, whole);
  ChaCha20Xor(key, 7, 0, std::span<std::byte>(split.data(), 300));
  ChaCha20Xor(key, 7, 300, std::span<std::byte>(split.data() + 300, 700));
  EXPECT_EQ(whole, split);
}

TEST(ChaCha20Test, UnalignedOffsetsWithinBlock) {
  const ChaChaKey key = TestKey();
  Buffer whole = MakePatternBuffer(200, 3);
  Buffer split = whole;
  ChaCha20Xor(key, 9, 0, whole);
  // Split at a non-64 boundary inside a keystream block.
  ChaCha20Xor(key, 9, 0, std::span<std::byte>(split.data(), 37));
  ChaCha20Xor(key, 9, 37, std::span<std::byte>(split.data() + 37, 163));
  EXPECT_EQ(whole, split);
}

TEST(ChaCha20Test, DifferentKeysDiffer) {
  Buffer a(256, std::byte(0));
  Buffer b(256, std::byte(0));
  ChaChaKey k1 = TestKey();
  ChaChaKey k2 = TestKey();
  k2[0] ^= 1;
  ChaCha20Xor(k1, 1, 0, a);
  ChaCha20Xor(k2, 1, 0, b);
  EXPECT_NE(a, b);
}

TEST(ChaCha20Test, DifferentNoncesDiffer) {
  Buffer a(256, std::byte(0));
  Buffer b(256, std::byte(0));
  const ChaChaKey key = TestKey();
  ChaCha20Xor(key, 1, 0, a);
  ChaCha20Xor(key, 2, 0, b);
  EXPECT_NE(a, b);
}

TEST(ChaCha20Test, EmptySpanIsNoop) {
  const ChaChaKey key = TestKey();
  ChaCha20Xor(key, 1, 0, {});
}

TEST(DeriveNonceTest, DeterministicAndSpread) {
  EXPECT_EQ(DeriveNonce(1, 2), DeriveNonce(1, 2));
  EXPECT_NE(DeriveNonce(1, 2), DeriveNonce(2, 1));
  EXPECT_NE(DeriveNonce(1, 2), DeriveNonce(1, 3));
}

class ChaChaOffsetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaChaOffsetTest, SeekEquivalenceAtOffset) {
  // Property: keystream position is absolute; any split point yields the
  // same ciphertext.
  const std::uint64_t offset = GetParam();
  const ChaChaKey key = TestKey();
  Buffer whole = MakePatternBuffer(512, offset);
  Buffer prefix_suffix = whole;
  ChaCha20Xor(key, 5, offset, whole);
  const std::size_t cut = 129;
  ChaCha20Xor(key, 5, offset,
              std::span<std::byte>(prefix_suffix.data(), cut));
  ChaCha20Xor(key, 5, offset + cut,
              std::span<std::byte>(prefix_suffix.data() + cut, 512 - cut));
  EXPECT_EQ(whole, prefix_suffix);
}

INSTANTIATE_TEST_SUITE_P(Offsets, ChaChaOffsetTest,
                         ::testing::Values(0, 1, 63, 64, 65, 4096,
                                           (1ull << 20) + 17));

}  // namespace
}  // namespace ros2::core
