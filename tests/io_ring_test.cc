#include "iouring/io_ring.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::iouring {
namespace {

storage::NvmeDeviceConfig SmallDevice() {
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  config.lba_size = 4096;
  return config;
}

TEST(IoRingTest, WriteThenReadRoundTrip) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 32);

  Buffer data = MakePatternBuffer(8192, 7);
  Sqe write;
  write.op = RingOp::kWrite;
  write.offset = 16384;
  write.buf = data.data();
  write.len = data.size();
  write.user_data = 0xAA;
  ASSERT_TRUE(ring.Prepare(write).ok());
  auto cqes = ring.SubmitAndWait(1);
  ASSERT_TRUE(cqes.ok());
  ASSERT_EQ(cqes->size(), 1u);
  EXPECT_EQ((*cqes)[0].user_data, 0xAAu);
  EXPECT_EQ((*cqes)[0].res, 8192);

  Buffer out(8192);
  Sqe read = write;
  read.op = RingOp::kRead;
  read.buf = out.data();
  read.user_data = 0xBB;
  ASSERT_TRUE(ring.Prepare(read).ok());
  cqes = ring.SubmitAndWait(1);
  ASSERT_TRUE(cqes.ok());
  EXPECT_EQ((*cqes)[0].user_data, 0xBBu);
  EXPECT_EQ(out, data);
}

TEST(IoRingTest, BatchedSubmission) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 32);
  Buffer bufs[8];
  for (int i = 0; i < 8; ++i) {
    bufs[i] = MakePatternBuffer(4096, std::uint64_t(i));
    Sqe sqe;
    sqe.op = RingOp::kWrite;
    sqe.offset = std::uint64_t(i) * 4096;
    sqe.buf = bufs[i].data();
    sqe.len = 4096;
    sqe.user_data = std::uint64_t(i);
    ASSERT_TRUE(ring.Prepare(sqe).ok());
  }
  auto submitted = ring.Submit();
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(*submitted, 8u);
  auto cqes = ring.Reap();
  EXPECT_EQ(cqes.size(), 8u);
}

TEST(IoRingTest, RingCapacityEnforced) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 2);
  Buffer buf(4096);
  Sqe sqe;
  sqe.op = RingOp::kWrite;
  sqe.buf = buf.data();
  sqe.len = 4096;
  ASSERT_TRUE(ring.Prepare(sqe).ok());
  ASSERT_TRUE(ring.Prepare(sqe).ok());
  EXPECT_EQ(ring.Prepare(sqe).code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(ring.sq_space(), 0u);
  ASSERT_TRUE(ring.Submit().ok());
  EXPECT_EQ(ring.sq_space(), 2u);
}

TEST(IoRingTest, AlignmentEnforcedLikeODirect) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 8);
  Buffer buf(4096);
  Sqe sqe;
  sqe.op = RingOp::kRead;
  sqe.buf = buf.data();
  sqe.len = 4096;
  sqe.offset = 100;  // unaligned
  EXPECT_EQ(ring.Prepare(sqe).code(), ErrorCode::kInvalidArgument);
  sqe.offset = 0;
  sqe.len = 100;  // unaligned length
  EXPECT_EQ(ring.Prepare(sqe).code(), ErrorCode::kInvalidArgument);
  sqe.len = 0;
  EXPECT_EQ(ring.Prepare(sqe).code(), ErrorCode::kInvalidArgument);
  sqe.buf = nullptr;
  sqe.len = 4096;
  EXPECT_EQ(ring.Prepare(sqe).code(), ErrorCode::kInvalidArgument);
}

TEST(IoRingTest, FsyncNeedsNoBuffer) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 8);
  Sqe sqe;
  sqe.op = RingOp::kFsync;
  sqe.user_data = 42;
  ASSERT_TRUE(ring.Prepare(sqe).ok());
  auto cqes = ring.SubmitAndWait(1);
  ASSERT_TRUE(cqes.ok());
  EXPECT_TRUE((*cqes)[0].status.ok());
  EXPECT_EQ((*cqes)[0].user_data, 42u);
}

TEST(IoRingTest, ErrorSurfacesInCqe) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 8);
  Buffer buf(4096);
  Sqe sqe;
  sqe.op = RingOp::kRead;
  sqe.offset = dev.config().capacity_bytes;  // beyond the namespace
  sqe.buf = buf.data();
  sqe.len = 4096;
  ASSERT_TRUE(ring.Prepare(sqe).ok());
  auto cqes = ring.SubmitAndWait(1);
  ASSERT_TRUE(cqes.ok());
  EXPECT_EQ((*cqes)[0].status.code(), ErrorCode::kOutOfRange);
  EXPECT_EQ((*cqes)[0].res, -1);
}

TEST(IoRingTest, ReapMaxLimitsBatch) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 8);
  for (int i = 0; i < 4; ++i) {
    Sqe sqe;
    sqe.op = RingOp::kFsync;
    ASSERT_TRUE(ring.Prepare(sqe).ok());
  }
  ASSERT_TRUE(ring.Submit().ok());
  EXPECT_EQ(ring.Reap(2).size(), 2u);
  EXPECT_EQ(ring.Reap().size(), 2u);
}

TEST(IoRingTest, CidWraparoundUnderChurn) {
  storage::NvmeDevice dev(SmallDevice());
  IoRing ring(&dev, 8);
  Buffer buf = MakePatternBuffer(4096, 3);
  // More ops than the device queue depth to exercise cid reuse.
  for (int i = 0; i < 3000; ++i) {
    Sqe sqe;
    sqe.op = RingOp::kWrite;
    sqe.offset = 4096 * std::uint64_t(i % 16);
    sqe.buf = buf.data();
    sqe.len = 4096;
    sqe.user_data = std::uint64_t(i);
    ASSERT_TRUE(ring.Prepare(sqe).ok());
    auto cqes = ring.SubmitAndWait(1);
    ASSERT_TRUE(cqes.ok());
    ASSERT_EQ((*cqes)[0].user_data, std::uint64_t(i));
  }
}

}  // namespace
}  // namespace ros2::iouring
