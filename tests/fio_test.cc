// FIO-harness tests: each engine must (a) really move and verify bytes and
// (b) produce timing reports with the right qualitative shape.
#include "fio/fio.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::fio {
namespace {

JobSpec SmallJob(perf::OpKind op, std::uint64_t bs) {
  JobSpec spec;
  spec.rw = op;
  spec.block_size = bs;
  spec.total_ops = 4000;
  spec.verify_ops = 64;
  return spec;
}

TEST(LocalFioTest, ReadJobVerifiesAndReports) {
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice dev(config);
  LocalFio fio({&dev});
  auto report = fio.Run(SmallJob(perf::OpKind::kRead, 4096));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verified_ops, 64u);
  EXPECT_EQ(report->simulated_ops, 4000u);
  EXPECT_GT(report->iops, 0.0);
  EXPECT_GT(report->p99, report->p50 * 0.99);
}

TEST(LocalFioTest, AllFourWorkloadsRun) {
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice dev(config);
  LocalFio fio({&dev});
  for (auto op : {perf::OpKind::kRead, perf::OpKind::kWrite,
                  perf::OpKind::kRandRead, perf::OpKind::kRandWrite}) {
    auto report = fio.Run(SmallJob(op, 4096));
    ASSERT_TRUE(report.ok()) << perf::OpKindName(op);
    EXPECT_EQ(report->verified_ops, 64u) << perf::OpKindName(op);
  }
}

TEST(LocalFioTest, TimingOnlyModeSkipsFunctional) {
  storage::NvmeDeviceConfig config;
  storage::NvmeDevice dev(config);
  LocalFio fio({&dev});
  JobSpec spec = SmallJob(perf::OpKind::kRead, kMiB);
  spec.verify_ops = 0;
  auto report = fio.Run(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verified_ops, 0u);
  EXPECT_EQ(dev.reads_completed(), 0u);  // nothing touched the device
}

TEST(LocalFioTest, SpecValidation) {
  storage::NvmeDevice dev((storage::NvmeDeviceConfig()));
  LocalFio fio({&dev});
  JobSpec bad = SmallJob(perf::OpKind::kRead, 4096);
  bad.block_size = 0;
  EXPECT_FALSE(fio.Run(bad).ok());
  bad = SmallJob(perf::OpKind::kRead, 4096);
  bad.numjobs = 0;
  EXPECT_FALSE(fio.Run(bad).ok());
  LocalFio empty({});
  EXPECT_FALSE(empty.Run(SmallJob(perf::OpKind::kRead, 4096)).ok());
}

TEST(RemoteFioTest, FunctionalOverBothTransports) {
  for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
    net::Fabric fabric;
    storage::NvmeDeviceConfig config;
    config.capacity_bytes = 64 * kMiB;
    storage::NvmeDevice dev(config);
    spdk::Bdev bdev(&dev);
    spdk::NvmfTarget target(&fabric, "fabric://t");
    ASSERT_TRUE(target.AddNamespace(1, &bdev).ok());
    auto initiator = spdk::NvmfConnect(&fabric, &target, transport,
                                       "fabric://c");
    ASSERT_TRUE(initiator.ok());

    RemoteFio::Setup setup;
    setup.transport = transport;
    setup.client_cores = 4;
    setup.server_cores = 4;
    RemoteFio fio(initiator->get(), setup);
    auto report = fio.Run(SmallJob(perf::OpKind::kRandRead, 4096));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->verified_ops, 64u);
    EXPECT_GT(report->iops, 0.0);
  }
}

TEST(RemoteFioTest, RdmaReportsBeatTcpAtSmallBlocks) {
  net::Fabric fabric;
  storage::NvmeDevice dev((storage::NvmeDeviceConfig()));
  spdk::Bdev bdev(&dev);
  spdk::NvmfTarget target(&fabric, "fabric://t");
  ASSERT_TRUE(target.AddNamespace(1, &bdev).ok());

  double iops[2] = {0, 0};
  int i = 0;
  for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
    auto initiator = spdk::NvmfConnect(
        &fabric, &target, transport,
        "fabric://c" + std::string(perf::TransportName(transport)));
    ASSERT_TRUE(initiator.ok());
    RemoteFio::Setup setup;
    setup.transport = transport;
    setup.client_cores = 8;
    setup.server_cores = 8;
    RemoteFio fio(initiator->get(), setup);
    JobSpec spec = SmallJob(perf::OpKind::kRandRead, 4096);
    spec.total_ops = 20000;
    spec.verify_ops = 8;
    auto report = fio.Run(spec);
    ASSERT_TRUE(report.ok());
    iops[i++] = report->iops;
  }
  EXPECT_GT(iops[1], iops[0] * 2.0);
}

class DfsFioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Ros2Cluster::Config config;
    config.num_ssds = 1;
    config.engine_targets = 8;
    config.scm_per_target = 16 * kMiB;
    cluster_ = std::make_unique<core::Ros2Cluster>(config);
    core::TenantConfig tenant;
    tenant.name = "t";
    tenant.auth_token = "k";
    ASSERT_TRUE(cluster_->tenants()->Register(tenant).ok());
  }

  std::unique_ptr<core::Ros2Client> Connect(perf::Platform platform,
                                            net::Transport transport) {
    core::ClientConfig config;
    config.platform = platform;
    config.transport = transport;
    config.tenant_name = "t";
    config.tenant_token = "k";
    auto client = core::Ros2Client::Connect(cluster_.get(), config);
    EXPECT_TRUE(client.ok());
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<core::Ros2Cluster> cluster_;
};

TEST_F(DfsFioTest, EndToEndVerifiedOverAllDeployments) {
  int i = 0;
  for (auto platform :
       {perf::Platform::kServerHost, perf::Platform::kBlueField3}) {
    for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
      auto client = Connect(platform, transport);
      ASSERT_NE(client, nullptr);
      DfsFio::Setup setup;
      setup.work_dir = "/fio" + std::to_string(i++);
      DfsFio fio(client.get(), setup);
      JobSpec spec = SmallJob(perf::OpKind::kRandRead, 4096);
      spec.name = "rr";
      auto report = fio.Run(spec);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->verified_ops, 64u);
    }
  }
}

TEST_F(DfsFioTest, WriteWorkloadReadsBack) {
  auto client = Connect(perf::Platform::kServerHost, net::Transport::kRdma);
  ASSERT_NE(client, nullptr);
  DfsFio::Setup setup;
  DfsFio fio(client.get(), setup);
  JobSpec spec = SmallJob(perf::OpKind::kRandWrite, 4096);
  spec.name = "rw";
  auto report = fio.Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verified_ops, 64u);
}

TEST_F(DfsFioTest, TimingShapeDpuTcpBelowDpuRdma) {
  auto tcp = Connect(perf::Platform::kBlueField3, net::Transport::kTcp);
  auto rdma = Connect(perf::Platform::kBlueField3, net::Transport::kRdma);
  ASSERT_NE(tcp, nullptr);
  ASSERT_NE(rdma, nullptr);
  JobSpec spec;
  spec.rw = perf::OpKind::kRead;
  spec.block_size = kMiB;
  spec.numjobs = 8;
  spec.total_ops = 10000;
  spec.verify_ops = 0;  // timing comparison only
  DfsFio::Setup setup;
  DfsFio tcp_fio(tcp.get(), setup);
  DfsFio rdma_fio(rdma.get(), setup);
  auto tcp_report = tcp_fio.Run(spec);
  auto rdma_report = rdma_fio.Run(spec);
  ASSERT_TRUE(tcp_report.ok() && rdma_report.ok());
  EXPECT_GT(rdma_report->bytes_per_sec, 2.0 * tcp_report->bytes_per_sec);
}

TEST(ReportTest, MakeReportTranslatesSimResult) {
  sim::ClosedLoopResult sim_result;
  sim_result.bytes_per_sec = 100.0;
  sim_result.ops_per_sec = 10.0;
  sim_result.completed_ops = 5;
  sim_result.latency.Record(1e-3);
  const Report report = MakeReport(sim_result, 3);
  EXPECT_DOUBLE_EQ(report.bytes_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(report.iops, 10.0);
  EXPECT_EQ(report.simulated_ops, 5u);
  EXPECT_EQ(report.verified_ops, 3u);
  EXPECT_GT(report.p50, 0.0);
}

}  // namespace
}  // namespace ros2::fio
