// ROS2 client tests: host-direct vs DPU-offloaded deployments, inline
// encryption, GPU placement, QoS, and the control/data-plane split (§3).
#include "core/ros2_client.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::core {
namespace {

struct Deployment {
  perf::Platform platform;
  net::Transport transport;
};

class Ros2ClientTest : public ::testing::TestWithParam<Deployment> {
 protected:
  void SetUp() override {
    Ros2Cluster::Config config;
    config.num_ssds = 2;
    config.engine_targets = 8;
    config.scm_per_target = 16 * kMiB;
    cluster_ = std::make_unique<Ros2Cluster>(config);
    TenantConfig tenant;
    tenant.name = "llm-team";
    tenant.auth_token = "key";
    ASSERT_TRUE(cluster_->tenants()->Register(tenant).ok());
  }

  Result<std::unique_ptr<Ros2Client>> Connect(bool crypto = false) {
    ClientConfig config;
    config.platform = GetParam().platform;
    config.transport = GetParam().transport;
    config.tenant_name = "llm-team";
    config.tenant_token = "key";
    config.inline_crypto = crypto;
    return Ros2Client::Connect(cluster_.get(), config);
  }

  std::unique_ptr<Ros2Cluster> cluster_;
};

TEST_P(Ros2ClientTest, ConnectAuthenticatesAndMounts) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT((*client)->session(), 0u);
  EXPECT_GT((*client)->tenant(), 0u);
  EXPECT_GE((*client)->counters().control_calls, 2u);  // auth + mount
}

TEST_P(Ros2ClientTest, BadTenantCredentialsRejected) {
  ClientConfig config;
  config.platform = GetParam().platform;
  config.transport = GetParam().transport;
  config.tenant_name = "llm-team";
  config.tenant_token = "stolen";
  EXPECT_EQ(Ros2Client::Connect(cluster_.get(), config).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_P(Ros2ClientTest, FileIoRoundTrip) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/data.bin", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(2 * kMiB + 777, 1);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());
  Buffer out(data.size());
  auto n = (*client)->Pread(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  EXPECT_TRUE((*client)->Fsync(*fd).ok());
  EXPECT_TRUE((*client)->Close(*fd).ok());
}

TEST_P(Ros2ClientTest, NamespaceOps) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Mkdir("/checkpoints").ok());
  dfs::OpenFlags flags;
  flags.create = true;
  ASSERT_TRUE((*client)->Open("/checkpoints/step-100", flags).ok());
  auto entries = (*client)->Readdir("/checkpoints");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "step-100");
  ASSERT_TRUE(
      (*client)->Rename("/checkpoints/step-100", "/checkpoints/latest").ok());
  auto stat = (*client)->Stat("/checkpoints/latest");
  ASSERT_TRUE(stat.ok());
  ASSERT_TRUE((*client)->Unlink("/checkpoints/latest").ok());
}

TEST_P(Ros2ClientTest, OffloadStagesThroughDpuDram) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/staged", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(64 * kKiB, 2);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());
  Buffer out(data.size());
  ASSERT_TRUE((*client)->Pread(*fd, 0, out).ok());
  if ((*client)->offloaded()) {
    // Payloads terminated in DPU DRAM and crossed to the host explicitly.
    EXPECT_GE((*client)->counters().staging_copies, 2u);
    EXPECT_GE((*client)->counters().staging_bytes, 2 * data.size());
  } else {
    EXPECT_EQ((*client)->counters().staging_copies, 0u);
  }
}

TEST_P(Ros2ClientTest, InlineCryptoTransparentToReader) {
  auto client = Connect(/*crypto=*/true);
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/secret", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(kMiB + 100, 3);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());
  Buffer out(data.size());
  auto n = (*client)->Pread(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  EXPECT_GE((*client)->counters().encrypted_bytes, data.size());
  EXPECT_GE((*client)->counters().decrypted_bytes, data.size());
}

TEST_P(Ros2ClientTest, InlineCryptoCiphertextAtRest) {
  auto client = Connect(/*crypto=*/true);
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/atrest", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(4096, 4);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());

  // Read the stored bytes through the raw DFS layer (bypassing the DPU
  // decryption service): they must NOT be the plaintext.
  Buffer raw(4096);
  auto n = (*client)->dfs()->Read(*fd, 0, raw);
  ASSERT_TRUE(n.ok());
  EXPECT_NE(raw, data);
}

TEST_P(Ros2ClientTest, CryptoIsPerTenantKeyed) {
  auto client = Connect(/*crypto=*/true);
  ASSERT_TRUE(client.ok());
  // Same offset, different file => different oid nonce => different bytes.
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd1 = (*client)->Open("/n1", flags);
  auto fd2 = (*client)->Open("/n2", flags);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  Buffer plain(4096, std::byte(0x55));
  ASSERT_TRUE((*client)->Pwrite(*fd1, 0, plain).ok());
  ASSERT_TRUE((*client)->Pwrite(*fd2, 0, plain).ok());
  Buffer raw1(4096);
  Buffer raw2(4096);
  ASSERT_TRUE((*client)->dfs()->Read(*fd1, 0, raw1).ok());
  ASSERT_TRUE((*client)->dfs()->Read(*fd2, 0, raw2).ok());
  EXPECT_NE(raw1, raw2);
}

TEST_P(Ros2ClientTest, QosRateLimitEnforced) {
  TenantConfig limited;
  limited.name = "capped";
  limited.auth_token = "x";
  limited.rate_limit_bps = 1024.0;
  limited.burst_bytes = 8192;
  ASSERT_TRUE(cluster_->tenants()->Register(limited).ok());
  ClientConfig config;
  config.platform = GetParam().platform;
  config.transport = GetParam().transport;
  config.tenant_name = "capped";
  config.tenant_token = "x";
  config.container_label = "capped-cont";
  auto client = Ros2Client::Connect(cluster_.get(), config);
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/f", flags);
  ASSERT_TRUE(fd.ok());
  Buffer chunk(4096);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, chunk).ok());
  ASSERT_TRUE((*client)->Pwrite(*fd, 4096, chunk).ok());  // burst exhausted
  EXPECT_EQ((*client)->Pwrite(*fd, 8192, chunk).code(),
            ErrorCode::kResourceExhausted);
  // Time passes (fabric clock), tokens refill.
  cluster_->fabric()->AdvanceTime(8.0);
  EXPECT_TRUE((*client)->Pwrite(*fd, 8192, chunk).ok());
}

TEST_P(Ros2ClientTest, GpuStagedPlacement) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/gpu-data", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(kMiB, 6);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());

  GpuBuffer gpu(2 * kMiB);
  auto n = (*client)->PreadGpu(*fd, 0, &gpu, kMiB, kMiB,
                               /*gpudirect=*/false);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kMiB);
  EXPECT_EQ(VerifyPattern(gpu.bytes().subspan(kMiB, kMiB), 6, 0), -1);
  EXPECT_GE((*client)->counters().staging_copies, 1u);
}

TEST_P(Ros2ClientTest, GpuDirectPlacement) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/gpu-direct", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(kMiB, 7);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());

  const auto staging_before = (*client)->counters().staging_copies;
  GpuBuffer gpu(kMiB);
  auto n = (*client)->PreadGpu(*fd, 0, &gpu, 0, kMiB, /*gpudirect=*/true);
  if (GetParam().transport == net::Transport::kRdma) {
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(VerifyPattern(gpu.bytes(), 7, 0), -1);
    // §3.5: no DPU-DRAM staging on the GPUDirect path.
    EXPECT_EQ((*client)->counters().staging_copies, staging_before);
  } else {
    // GPUDirect requires RDMA (the paper's topology requirement).
    EXPECT_EQ(n.status().code(), ErrorCode::kFailedPrecondition);
  }
}

TEST_P(Ros2ClientTest, GpuDirectIncompatibleWithInlineCrypto) {
  if (GetParam().transport != net::Transport::kRdma) GTEST_SKIP();
  auto client = Connect(/*crypto=*/true);
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/clash", flags);
  ASSERT_TRUE(fd.ok());
  GpuBuffer gpu(4096);
  EXPECT_EQ(
      (*client)->PreadGpu(*fd, 0, &gpu, 0, 4096, true).status().code(),
      ErrorCode::kFailedPrecondition);
}

TEST_P(Ros2ClientTest, GpuBoundsChecked) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/b", flags);
  ASSERT_TRUE(fd.ok());
  GpuBuffer gpu(4096);
  EXPECT_EQ(
      (*client)->PreadGpu(*fd, 0, &gpu, 4000, 200, false).status().code(),
      ErrorCode::kOutOfRange);
}

TEST_P(Ros2ClientTest, ControlPlaneNeverCarriesBulk) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/bulkcheck", flags);
  ASSERT_TRUE(fd.ok());
  const auto control_bytes_before =
      cluster_->control()->service()->bytes_transferred();
  Buffer data = MakePatternBuffer(8 * kMiB, 8);
  ASSERT_TRUE((*client)->Pwrite(*fd, 0, data).ok());
  const auto control_bytes_after =
      cluster_->control()->service()->bytes_transferred();
  // The QoS grant rides the control plane; the 8 MiB payload must not.
  EXPECT_LT(control_bytes_after - control_bytes_before, 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, Ros2ClientTest,
    ::testing::Values(
        Deployment{perf::Platform::kServerHost, net::Transport::kRdma},
        Deployment{perf::Platform::kServerHost, net::Transport::kTcp},
        Deployment{perf::Platform::kBlueField3, net::Transport::kRdma},
        Deployment{perf::Platform::kBlueField3, net::Transport::kTcp}),
    [](const auto& info) {
      std::string name =
          std::string(perf::PlatformName(info.param.platform)) + "_" +
          std::string(perf::TransportName(info.param.transport));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ros2::core
