// Property/fuzz test: DFS against an in-memory reference filesystem.
// Random namespace + I/O operations must behave identically in both, per
// seed (TEST_P). Exercises chunk-spanning writes, sparse reads, renames,
// unlinks, and truncates through the full DAOS stack.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "daos/client.h"
#include "dfs/dfs.h"

namespace ros2::dfs {
namespace {

/// Reference: path -> file bytes. Directories are implicit ("/d0".."/d3"
/// created up front) so the fuzz focuses on file state.
using ReferenceFs = std::map<std::string, Buffer>;

class DfsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 1024 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    daos::EngineConfig config;
    config.targets = 8;
    config.scm_per_target = 32 * kMiB;
    engine_ = std::make_unique<daos::DaosEngine>(&fabric_, config, raw);
    daos::DaosClient::ConnectOptions options;
    options.transport = GetParam() % 2 == 0 ? net::Transport::kRdma
                                            : net::Transport::kTcp;
    auto client = daos::DaosClient::Connect(&fabric_, engine_.get(), options);
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    auto cont = client_->ContainerCreate("fuzz");
    ASSERT_TRUE(cont.ok());
    auto dfs = Dfs::Mount(client_.get(), *cont, /*create=*/true,
                          DfsConfig{/*chunk_size=*/64 * 1024});
    ASSERT_TRUE(dfs.ok());
    dfs_ = std::move(*dfs);
    for (int d = 0; d < 4; ++d) {
      ASSERT_TRUE(dfs_->Mkdir("/d" + std::to_string(d)).ok());
    }
  }

  std::string RandomPath(Rng& rng) {
    return "/d" + std::to_string(rng.Below(4)) + "/f" +
           std::to_string(rng.Below(6));
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<daos::DaosEngine> engine_;
  std::unique_ptr<daos::DaosClient> client_;
  std::unique_ptr<Dfs> dfs_;
};

TEST_P(DfsFuzzTest, RandomOpsMatchReferenceFs) {
  Rng rng(GetParam());
  ReferenceFs ref;
  constexpr std::uint64_t kMaxFile = 300 * 1024;  // spans several chunks

  for (int step = 0; step < 300; ++step) {
    const std::string path = RandomPath(rng);
    const std::uint64_t dice = rng.Below(100);
    const bool exists = ref.contains(path);

    if (dice < 40) {
      // Write a random extent (creating the file if needed).
      OpenFlags flags;
      flags.create = true;
      auto fd = dfs_->Open(path, flags);
      ASSERT_TRUE(fd.ok()) << path;
      const std::uint64_t offset = rng.Below(kMaxFile);
      const std::uint64_t length = 1 + rng.Below(80 * 1024);
      Buffer data = MakePatternBuffer(length, rng.Next());
      ASSERT_TRUE(dfs_->Write(*fd, offset, data).ok());
      ASSERT_TRUE(dfs_->Close(*fd).ok());
      Buffer& file = ref[path];
      if (file.size() < offset + length) {
        file.resize(offset + length, std::byte(0));
      }
      std::copy(data.begin(), data.end(),
                file.begin() + std::ptrdiff_t(offset));
    } else if (dice < 70) {
      // Read a random window and compare (missing files must fail).
      auto fd = dfs_->Open(path, OpenFlags{});
      if (!exists) {
        EXPECT_FALSE(fd.ok()) << path;
        continue;
      }
      ASSERT_TRUE(fd.ok()) << path;
      const Buffer& file = ref[path];
      const std::uint64_t offset = rng.Below(kMaxFile + 1000);
      const std::uint64_t length = 1 + rng.Below(64 * 1024);
      Buffer got(length);
      auto n = dfs_->Read(*fd, offset, got);
      ASSERT_TRUE(n.ok());
      const std::uint64_t expect_n =
          offset >= file.size()
              ? 0
              : std::min<std::uint64_t>(length, file.size() - offset);
      ASSERT_EQ(*n, expect_n) << path << " @" << offset;
      for (std::uint64_t i = 0; i < expect_n; ++i) {
        ASSERT_EQ(got[i], file[offset + i])
            << path << " byte " << offset + i << " step " << step;
      }
      ASSERT_TRUE(dfs_->Close(*fd).ok());
    } else if (dice < 80) {
      // Unlink.
      const Status status = dfs_->Unlink(path);
      EXPECT_EQ(status.ok(), exists) << path;
      ref.erase(path);
    } else if (dice < 90) {
      // Rename to another random path.
      const std::string to = RandomPath(rng);
      if (to == path) continue;
      const Status status = dfs_->Rename(path, to);
      if (!exists) {
        EXPECT_FALSE(status.ok());
        continue;
      }
      ASSERT_TRUE(status.ok()) << path << " -> " << to;
      ref[to] = std::move(ref[path]);
      ref.erase(path);
    } else if (exists) {
      // Truncate to a RANDOM size: shrink to mid-chunk (trailing chunks
      // punched, partial tail zero-filled), extend (hole reads as
      // zeros), or no-op — all must match POSIX resize semantics.
      auto fd = dfs_->Open(path, OpenFlags{});
      ASSERT_TRUE(fd.ok());
      const std::uint64_t new_size = rng.Below(kMaxFile + 1000);
      ASSERT_TRUE(dfs_->Truncate(*fd, new_size).ok()) << path;
      ASSERT_TRUE(dfs_->Close(*fd).ok());
      ref[path].resize(new_size, std::byte(0));
    }
  }

  // Final sweep: stat + full read of every referenced file.
  for (const auto& [path, bytes] : ref) {
    auto stat = dfs_->Stat(path);
    ASSERT_TRUE(stat.ok()) << path;
    EXPECT_EQ(stat->size, bytes.size()) << path;
    if (bytes.empty()) continue;
    auto fd = dfs_->Open(path, OpenFlags{});
    ASSERT_TRUE(fd.ok());
    Buffer got(bytes.size());
    auto n = dfs_->Read(*fd, 0, got);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, bytes.size());
    EXPECT_EQ(got, bytes) << path;
  }

  // Directory listings agree with the reference's name set.
  std::set<std::string> listed;
  for (int d = 0; d < 4; ++d) {
    const std::string dir = "/d" + std::to_string(d);
    auto entries = dfs_->Readdir(dir);
    ASSERT_TRUE(entries.ok());
    for (const auto& entry : *entries) {
      listed.insert(dir + "/" + entry.name);
    }
  }
  std::set<std::string> expected;
  for (const auto& [path, _] : ref) expected.insert(path);
  EXPECT_EQ(listed, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ros2::dfs
