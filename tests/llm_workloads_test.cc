#include "fio/llm_workloads.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::fio {
namespace {

TEST(LlmWorkloadsTest, FourStagesInPipelineOrder) {
  const auto stages = AllLlmStages();
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "data-preparation");
  EXPECT_EQ(stages[1].name, "model-development");
  EXPECT_EQ(stages[2].name, "model-training");
  EXPECT_EQ(stages[3].name, "model-inference");
}

TEST(LlmWorkloadsTest, IngestIsLargeBlockWrite) {
  const auto stage = DataPreparationStage();
  EXPECT_EQ(stage.job.rw, perf::OpKind::kWrite);
  EXPECT_GE(stage.job.block_size, kMiB);
}

TEST(LlmWorkloadsTest, DataloaderIsHighConcurrencySmallRandomRead) {
  const auto stage = ModelTrainingStage();
  EXPECT_EQ(stage.job.rw, perf::OpKind::kRandRead);
  EXPECT_LE(stage.job.block_size, 4096u);
  EXPECT_GE(stage.job.numjobs * stage.job.iodepth, 128u);
}

TEST(LlmWorkloadsTest, InferenceIsSequentialParameterLoad) {
  const auto stage = ModelInferenceStage();
  EXPECT_EQ(stage.job.rw, perf::OpKind::kRead);
  EXPECT_GE(stage.job.block_size, kMiB);
}

TEST(LlmWorkloadsTest, EveryStageCarriesRequirementText) {
  for (const auto& stage : AllLlmStages()) {
    EXPECT_FALSE(stage.requirement.empty()) << stage.name;
    EXPECT_FALSE(stage.job.name.empty()) << stage.name;
  }
}

TEST(LlmWorkloadsTest, StageJobsAreValidSpecs) {
  for (const auto& stage : AllLlmStages()) {
    EXPECT_GT(stage.job.block_size, 0u) << stage.name;
    EXPECT_GT(stage.job.numjobs, 0u) << stage.name;
    EXPECT_GT(stage.job.iodepth, 0u) << stage.name;
  }
}

}  // namespace
}  // namespace ros2::fio
