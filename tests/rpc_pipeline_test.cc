// Async RPC pipeline tests: CallAsync/Poll/Flush/Take on the client,
// decode->dispatch with deferred RpcContext completion on the server, and
// the poll-set progress path. Covers out-of-order completion (replies
// matched by sequence tag, including TCP inline bulk landing in the RIGHT
// pending window), in-flight window backpressure, abandoned-call lease
// hygiene, and the exactly-once Complete contract.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "net/fabric.h"
#include "net/mr_cache.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

namespace ros2::rpc {
namespace {

constexpr std::span<const std::byte> kNoHeader{};

class RpcPipelineTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://server");
    auto client_ep = fabric_.CreateEndpoint("fabric://client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    server_ep_ = *server_ep;
    client_ep_ = *client_ep;
    auto qp = client_ep_->Connect(server_ep_, GetParam(),
                                  client_ep_->AllocPd(),
                                  server_ep_->AllocPd());
    ASSERT_TRUE(qp.ok());
    qp_ = *qp;
    client_ = std::make_unique<RpcClient>(
        qp_, client_ep_, [this] { (void)server_.Progress(qp_->peer()); });
  }

  bool tcp() const { return GetParam() == net::Transport::kTcp; }

  net::Fabric fabric_;
  net::Endpoint* server_ep_ = nullptr;
  net::Endpoint* client_ep_ = nullptr;
  net::Qp* qp_ = nullptr;
  RpcServer server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_P(RpcPipelineTest, AsyncCallsCompleteViaFlush) {
  server_.Register(1, [](const Buffer& header, BulkIo&) -> Result<Buffer> {
    Buffer reply = header;
    reply.push_back(std::byte(0xAB));
    return reply;
  });
  std::vector<RpcClient::CallId> ids;
  for (std::uint32_t i = 0; i < 10; ++i) {
    Encoder header;
    header.U32(i);
    auto id = client_->CallAsync(1, header);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_FALSE(client_->Done(*id));
    ids.push_back(*id);
  }
  EXPECT_EQ(client_->in_flight(), 10u);
  ASSERT_TRUE(client_->Flush().ok());
  EXPECT_EQ(client_->in_flight(), 0u);
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(client_->Done(ids[i]));
    auto reply = client_->Take(ids[i]);
    ASSERT_TRUE(reply.ok());
    Decoder dec(reply->header);
    EXPECT_EQ(dec.U32().value_or(999), i) << "reply matched to wrong call";
  }
  // Taken handles are gone.
  EXPECT_EQ(client_->Take(ids[0]).status().code(), ErrorCode::kNotFound);
}

TEST_P(RpcPipelineTest, OutOfOrderCompletionMatchesBySequence) {
  // The server parks every request; the test completes them in REVERSE
  // arrival order. Each reply must still land on its own call — and its
  // bulk in its own window.
  std::vector<RpcContextPtr> parked;
  server_.RegisterAsync(7, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });
  constexpr int kCalls = 4;
  std::vector<Buffer> windows(kCalls);
  std::vector<RpcClient::CallId> ids;
  for (int i = 0; i < kCalls; ++i) {
    windows[i].resize(64);
    Encoder header;
    header.U32(std::uint32_t(i));
    CallOptions options;
    options.recv_bulk = windows[i];
    auto id = client_->CallAsync(7, header, options);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Decode + dispatch only: everything defers.
  ASSERT_TRUE(server_.Progress(qp_->peer()).ok());
  ASSERT_EQ(parked.size(), std::size_t(kCalls));
  EXPECT_EQ(server_.requests_deferred(), std::uint64_t(kCalls));
  EXPECT_EQ(server_.requests_served(), 0u);

  // Complete newest-first, each pushing a payload derived from its own
  // request header.
  for (int i = kCalls - 1; i >= 0; --i) {
    RpcContextPtr ctx = std::move(parked[std::size_t(i)]);
    Decoder dec(ctx->header());
    const std::uint32_t tag = dec.U32().value_or(999);
    Buffer payload = MakePatternBuffer(64, tag + 1);
    ASSERT_TRUE(ctx->bulk().Push(payload).ok());
    Encoder reply;
    reply.U32(tag);
    ASSERT_TRUE(ctx->Complete(reply.Take()).ok());
  }
  EXPECT_EQ(server_.requests_served(), std::uint64_t(kCalls));

  EXPECT_EQ(client_->Poll(), std::size_t(kCalls));
  for (int i = 0; i < kCalls; ++i) {
    auto reply = client_->Take(ids[std::size_t(i)]);
    ASSERT_TRUE(reply.ok());
    Decoder dec(reply->header);
    EXPECT_EQ(dec.U32().value_or(999), std::uint32_t(i));
    EXPECT_EQ(reply->bulk_received, 64u);
    // The window holds THIS call's pattern even though replies arrived
    // reversed.
    EXPECT_EQ(VerifyPattern(windows[std::size_t(i)], std::uint64_t(i) + 1,
                            0),
              -1)
        << "bulk landed in the wrong window for call " << i;
  }
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
}

TEST_P(RpcPipelineTest, InFlightWindowAppliesBackpressure) {
  std::vector<RpcContextPtr> parked;
  server_.RegisterAsync(2, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });
  client_->set_max_in_flight(2);
  // Zero stall tolerance = the pre-threading semantics: one no-progress
  // pump round fails fast (keeps this test instant).
  client_->set_stall_timeout_ms(0.0);
  auto a = client_->CallAsync(2, kNoHeader);
  auto b = client_->CallAsync(2, kNoHeader);
  ASSERT_TRUE(a.ok() && b.ok());
  // Window full and the server only parks: the third call pumps, frees
  // nothing, and reports exhaustion instead of deadlocking. The per-call
  // override pins the deadline regardless of the client-wide setting.
  CallOptions fail_fast;
  fail_fast.window_timeout_ms = 0.0;
  EXPECT_EQ(client_->CallAsync(2, kNoHeader, fail_fast).status().code(),
            ErrorCode::kResourceExhausted);
  // Completing one parked context frees a slot.
  ASSERT_EQ(parked.size(), 2u);  // the failed CallAsync pumped decode
  RpcContextPtr first = std::move(parked.front());
  parked.erase(parked.begin());
  ASSERT_TRUE(first->Complete(Buffer{}).ok());
  auto c = client_->CallAsync(2, kNoHeader);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  // Cleanup: complete the stragglers so leases drain.
  for (auto& ctx : parked) ASSERT_TRUE(ctx->Complete(Buffer{}).ok());
  parked.clear();
  ASSERT_TRUE(server_.Progress(qp_->peer()).ok());
  // c's context parked by that progress call; it defers forever — flush
  // abandons it, which is the documented stall contract.
  (void)client_->Flush();
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
}

TEST_P(RpcPipelineTest, AwaitOnDeadServerAbandonsAndReleasesLeases) {
  RpcClient dead(qp_, client_ep_, nullptr);  // no progress hook
  dead.set_stall_timeout_ms(0.0);  // genuinely dead: no need to linger
  Buffer payload = MakePatternBuffer(4096, 3);
  Buffer window(4096);
  CallOptions options;
  options.send_bulk = payload;
  options.recv_bulk = window;
  auto id = dead.CallAsync(5, kNoHeader, options);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dead.in_flight(), 1u);
  auto reply = dead.Await(*id);
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(dead.in_flight(), 0u);
  // The abandoned call released its MR leases and forgot the handle.
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
  EXPECT_EQ(dead.Take(*id).status().code(), ErrorCode::kNotFound);
  // Drain the request the dead client left on the server queue.
  while (qp_->peer()->HasMessage()) (void)qp_->peer()->Recv();
}

TEST_P(RpcPipelineTest, DroppedContextAutoRepliesInternal) {
  server_.RegisterAsync(3, [](RpcContextPtr ctx) {
    ctx.reset();  // handler loses the request on an error path
    return HandlerVerdict::kDeferred;
  });
  auto reply = client_->Call(3, kNoHeader, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kInternal);
  EXPECT_EQ(server_.requests_served(), 1u);
}

TEST_P(RpcPipelineTest, CompleteIsExactlyOnce) {
  Status second = Status::Ok();
  server_.RegisterAsync(4, [&](RpcContextPtr ctx) {
    EXPECT_TRUE(ctx->Complete(Buffer{}).ok());
    second = ctx->Complete(Buffer{});
    return HandlerVerdict::kDone;
  });
  ASSERT_TRUE(client_->Call(4, kNoHeader, {}).ok());
  EXPECT_EQ(second.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server_.requests_served(), 1u) << "double Complete must not "
                                              "double-count";
}

TEST_P(RpcPipelineTest, SynchronousCallStillWorksThroughThePipeline) {
  // The preserved public contract: Call == CallAsync + Await, including
  // bulk in both directions.
  server_.Register(6, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer data(bulk.in_size());
    ROS2_RETURN_IF_ERROR(bulk.Pull(data));
    for (auto& b : data) b ^= std::byte(0xFF);
    ROS2_RETURN_IF_ERROR(bulk.Push(data));
    return Buffer{};
  });
  Buffer out = MakePatternBuffer(4096, 9);
  Buffer in(4096);
  CallOptions options;
  options.send_bulk = out;
  options.recv_bulk = in;
  ASSERT_TRUE(client_->Call(6, kNoHeader, options).ok());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(in[i], out[i] ^ std::byte(0xFF));
  }
  EXPECT_EQ(client_->in_flight(), 0u);
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
}

TEST_P(RpcPipelineTest, UnmatchedRepliesAreDroppedNotMisdelivered) {
  // A stray frame with an unknown tag (a reply for an abandoned call)
  // must not complete anyone else's call or scribble on a window.
  server_.Register(8, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Buffer{};
  });
  Encoder stray;
  stray.U64(0xDEAD);  // tag the client never issued
  stray.U16(std::uint16_t(ErrorCode::kOk)).Str("").Bytes({});
  if (tcp()) stray.Bytes({});
  stray.U64(0);
  ASSERT_TRUE(qp_->peer()->Send(stray.buffer()).ok());
  auto reply = client_->Call(8, kNoHeader, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(client_->unmatched_replies(), 1u);
}

// One server progress call over a poll set services every connected
// client — no per-QP scan, no starvation.
TEST_P(RpcPipelineTest, PollSetProgressServicesAllClients) {
  net::PollSet set;
  server_ep_->set_accept_poll_set(&set);
  server_.Register(9, [](const Buffer& header, BulkIo&) -> Result<Buffer> {
    return header;
  });
  constexpr int kClients = 5;
  std::vector<std::unique_ptr<RpcClient>> clients;
  std::vector<net::Qp*> qps;
  for (int c = 0; c < kClients; ++c) {
    auto ep = fabric_.CreateEndpoint("fabric://pipeline-client-" +
                                     std::to_string(c));
    ASSERT_TRUE(ep.ok());
    auto qp = (*ep)->Connect(server_ep_, GetParam(), (*ep)->AllocPd(),
                             server_ep_->AllocPd());
    ASSERT_TRUE(qp.ok());
    qps.push_back(*qp);
    clients.push_back(std::make_unique<RpcClient>(
        *qp, *ep, [this, &set] { (void)server_.Progress(&set); }));
  }
  EXPECT_EQ(set.member_count(), std::size_t(kClients));
  // Interleaved outstanding requests from every client...
  std::vector<std::vector<RpcClient::CallId>> ids(kClients);
  for (int round = 0; round < 3; ++round) {
    for (int c = 0; c < kClients; ++c) {
      Encoder header;
      header.U32(std::uint32_t(c * 100 + round));
      auto id = clients[std::size_t(c)]->CallAsync(9, header);
      ASSERT_TRUE(id.ok());
      ids[std::size_t(c)].push_back(*id);
    }
  }
  // ...all served by ONE progress drain.
  ASSERT_TRUE(server_.Progress(&set).ok());
  EXPECT_EQ(server_.requests_served(), std::uint64_t(kClients) * 3);
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(clients[std::size_t(c)]->Poll(), 3u) << "client " << c;
    for (int round = 0; round < 3; ++round) {
      auto reply =
          clients[std::size_t(c)]->Take(ids[std::size_t(c)][round]);
      ASSERT_TRUE(reply.ok());
      Decoder dec(reply->header);
      EXPECT_EQ(dec.U32().value_or(0), std::uint32_t(c * 100 + round));
    }
  }
  server_ep_->set_accept_poll_set(nullptr);
}

TEST_P(RpcPipelineTest, FullWindowWaitsOutASlowServer) {
  // The threaded-engine contract: a full in-flight window with a server
  // that IS making progress (just slowly) must block-and-pump until a
  // slot frees — the stall deadline resets on every completed reply, so
  // only a genuine stall errors. The slow server here answers at most
  // one parked request per client pump.
  std::deque<RpcContextPtr> parked;
  server_.RegisterAsync(11, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });
  RpcClient slow(qp_, client_ep_, [&] {
    (void)server_.Progress(qp_->peer());
    if (!parked.empty()) {
      RpcContextPtr ctx = std::move(parked.front());
      parked.pop_front();
      Encoder reply;
      reply.U32(7);
      (void)ctx->Complete(reply.Take());
    }
  });
  slow.set_max_in_flight(2);
  std::vector<RpcClient::CallId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = slow.CallAsync(11, kNoHeader);
    ASSERT_TRUE(id.ok())
        << "call " << i
        << " must ride out backpressure, not fail: "
        << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(slow.Flush().ok());
  for (auto id : ids) {
    auto reply = slow.Take(id);
    ASSERT_TRUE(reply.ok());
    Decoder dec(reply->header);
    EXPECT_EQ(dec.U32().value_or(0), 7u);
  }
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
}

TEST_P(RpcPipelineTest, StallDeadlineExpiresOnlyWithoutProgress) {
  // A nonzero deadline against a server that never answers: the blocked
  // CallAsync spins the real clock down and reports exhaustion — the
  // wait is bounded, not forever.
  std::vector<RpcContextPtr> parked;
  server_.RegisterAsync(12, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });
  client_->set_max_in_flight(1);
  client_->set_stall_timeout_ms(5.0);
  ASSERT_TRUE(client_->CallAsync(12, kNoHeader).ok());
  EXPECT_EQ(client_->CallAsync(12, kNoHeader).status().code(),
            ErrorCode::kResourceExhausted);
  // Cleanup: answer the parked request so leases and the window drain.
  ASSERT_EQ(parked.size(), 1u);
  ASSERT_TRUE(parked.front()->Complete(Buffer{}).ok());
  parked.clear();
  ASSERT_TRUE(client_->Flush().ok());
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
}

TEST_P(RpcPipelineTest, TraceIdRoundTripsThroughTheWire) {
  // The trace ID rides the request frame, is echoed in the reply, and
  // keys the server's TraceRecord ring — a request's engine-side timing
  // breakdown stays recoverable per call.
  telemetry::Telemetry tree;
  telemetry::TraceRing traces(8);
  server_.EnableTelemetry(&tree, {}, &traces);
  std::deque<RpcContextPtr> parked;
  server_.RegisterAsync(21, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });

  // Explicit trace ID.
  CallOptions options;
  options.trace_id = 0xDEADBEEFCAFEull;
  auto id = client_->CallAsync(21, kNoHeader, options);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(server_.Progress(qp_->peer()).ok());
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_EQ(parked.front()->trace_id(), options.trace_id);
  ASSERT_TRUE(parked.front()->Complete(Buffer{}).ok());
  parked.pop_front();
  ASSERT_TRUE(client_->Flush().ok());
  auto reply = client_->Take(*id);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->trace_id, options.trace_id);

  // Default: derived from the sequence tag — nonzero and echoed too.
  auto id2 = client_->CallAsync(21, kNoHeader);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(server_.Progress(qp_->peer()).ok());
  ASSERT_EQ(parked.size(), 1u);
  const std::uint64_t derived = parked.front()->trace_id();
  EXPECT_NE(derived, 0u);
  ASSERT_TRUE(parked.front()->Complete(Buffer{}).ok());
  parked.pop_front();
  ASSERT_TRUE(client_->Flush().ok());
  auto reply2 = client_->Take(*id2);
  ASSERT_TRUE(reply2.ok());
  EXPECT_EQ(reply2->trace_id, derived);

  // Both requests landed in the trace ring, oldest first, with a
  // consistent breakdown (total covers exec).
  auto records = traces.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, options.trace_id);
  EXPECT_EQ(records[1].trace_id, derived);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.opcode, 21u);
    EXPECT_GE(rec.total_ns, rec.exec_ns);
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, RpcPipelineTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::rpc
