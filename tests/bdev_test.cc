#include "spdk/bdev.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::spdk {
namespace {

storage::NvmeDeviceConfig SmallDevice() {
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  config.lba_size = 4096;
  return config;
}

TEST(BdevTest, ReadWriteRoundTrip) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  Buffer data = MakePatternBuffer(16384, 11);
  ASSERT_TRUE(bdev.Write(4096, data).ok());
  Buffer out(16384);
  ASSERT_TRUE(bdev.Read(4096, out).ok());
  EXPECT_EQ(out, data);
}

TEST(BdevTest, GeometryExposed) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  EXPECT_EQ(bdev.size_bytes(), 64 * kMiB);
  EXPECT_EQ(bdev.block_size(), 4096u);
}

TEST(BdevTest, AlignmentEnforced) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  Buffer buf(4096);
  EXPECT_EQ(bdev.Read(100, buf).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bdev.Write(0, std::span<const std::byte>(buf.data(), 100)).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(bdev.Read(0, std::span<std::byte>(buf.data(), 0)).code(),
            ErrorCode::kInvalidArgument);
}

TEST(BdevTest, OutOfRangeSurfacesDeviceError) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  Buffer buf(4096);
  EXPECT_EQ(bdev.Read(bdev.size_bytes(), buf).code(),
            ErrorCode::kOutOfRange);
}

TEST(BdevTest, FlushSucceeds) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  EXPECT_TRUE(bdev.Flush().ok());
}

TEST(BdevTest, UnmapZeroesRange) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev bdev(&dev);
  Buffer data = MakePatternBuffer(8192, 5);
  ASSERT_TRUE(bdev.Write(0, data).ok());
  ASSERT_TRUE(bdev.Unmap(0, 4096).ok());
  Buffer out(8192);
  ASSERT_TRUE(bdev.Read(0, out).ok());
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(out[i], std::byte(0));
  }
  EXPECT_EQ(VerifyPattern(
                std::span<const std::byte>(out.data() + 4096, 4096), 5, 4096),
            -1);
}

TEST(BdevTest, MultipleBdevsShareDevice) {
  storage::NvmeDevice dev(SmallDevice());
  Bdev a(&dev);
  Bdev b(&dev);
  Buffer data = MakePatternBuffer(4096, 1);
  ASSERT_TRUE(a.Write(0, data).ok());
  Buffer out(4096);
  ASSERT_TRUE(b.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace ros2::spdk
