// Seeded violation: an ad-hoc stat struct outside src/telemetry. The
// telemetry tree is the one home for runtime stats (ROADMAP standing
// constraint); this struct must make lint.sh fail with `adhoc-stats`.
#pragma once

#include <cstdint>

namespace ros2::lintfixture {

struct WidgetStats {
  std::uint64_t widgets_made = 0;
  std::uint64_t widgets_dropped = 0;
};

}  // namespace ros2::lintfixture
