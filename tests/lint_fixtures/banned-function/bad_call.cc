// Seeded violation: an unbounded C string call. Must make lint.sh fail
// with `banned-function`.
#include <cstring>

namespace ros2::lintfixture {

void CopyName(char* dst, const char* src) {
  strcpy(dst, src);  // the violation
}

}  // namespace ros2::lintfixture
