// Violates nothing: the selftest's negative control — lint.sh over this
// directory must exit 0.
#pragma once

#include <string>

namespace ros2::lintfixture {

class GoodStatus {};

[[nodiscard]] GoodStatus Frobnicate(const std::string& widget);

}  // namespace ros2::lintfixture
