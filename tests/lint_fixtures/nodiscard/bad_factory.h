// Seeded violation: Status/Result factory declarations without
// [[nodiscard]]. Must make lint.sh fail with `nodiscard`.
#pragma once

#include <string>

namespace ros2::lintfixture {

class Status {};
template <typename T>
class Result {};

Status WidgetJammed(std::string msg);
Result<int> CountWidgets(const std::string& bin);

}  // namespace ros2::lintfixture
