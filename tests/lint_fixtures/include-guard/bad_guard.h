// Seeded violation: header without #pragma once. Must make lint.sh fail
// with `include-guard`.

namespace ros2::lintfixture {

inline int Two() { return 2; }

}  // namespace ros2::lintfixture
