// Seeded violation: a raw std::mutex member instead of the annotated
// common::Mutex wrapper. Must make lint.sh fail with `raw-mutex`.
#pragma once

#include <mutex>

namespace ros2::lintfixture {

class Widget {
 public:
  void Frob() {
    std::lock_guard<std::mutex> lk(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace ros2::lintfixture
