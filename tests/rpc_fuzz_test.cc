// RPC frame fuzzing: truncated, bit-flipped, and length-inflated request
// and reply frames fed through Decoder, RpcServer::Progress, and
// RpcClient::Call. Every mutated input must come back as a Status (or a
// harmlessly-garbled success) — never a crash, hang, or out-of-bounds
// read. Seeds are TEST_P params so ctest shards them (same pattern as
// vos_fuzz/dfs_fuzz).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

namespace ros2::rpc {
namespace {

constexpr std::span<const std::byte> kNoHeader{};

/// One of the three mutation classes from the issue; `kTruncate` may also
/// drop the frame to zero bytes.
void Mutate(Rng& rng, Buffer* frame) {
  if (frame->empty()) return;
  switch (rng.Below(3)) {
    case 0:  // truncate
      frame->resize(rng.Below(frame->size()));
      break;
    case 1: {  // single bit flip
      (*frame)[rng.Below(frame->size())] ^=
          std::byte(1u << rng.Below(8));
      break;
    }
    default: {  // length-inflate: stamp 0xFFFFFFFF over a random window
      const std::size_t at = rng.Below(frame->size());
      const std::size_t end = std::min(frame->size(), at + 4);
      for (std::size_t i = at; i < end; ++i) {
        (*frame)[i] = std::byte(0xFF);
      }
      break;
    }
  }
}

class RpcFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://fuzz-server");
    auto client_ep = fabric_.CreateEndpoint("fabric://fuzz-client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    server_ep_ = *server_ep;
    client_ep_ = *client_ep;
    server_pd_ = server_ep_->AllocPd();
    client_pd_ = client_ep_->AllocPd();

    // Opcode 1: echo as much of the input as fits the client window. Like
    // any real rendezvous handler, it refuses absurd client-claimed bulk
    // sizes BEFORE allocating (a length-inflated descriptor is a resource
    // attack; the fabric's bounds check would reject the Pull anyway).
    server_.Register(1, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
      if (bulk.in_size() > (1u << 20)) {
        return Status(InvalidArgument("bulk too large"));
      }
      Buffer data(bulk.in_size());
      ROS2_RETURN_IF_ERROR(bulk.Pull(data));
      const std::size_t n =
          std::min<std::size_t>(data.size(), bulk.out_capacity());
      ROS2_RETURN_IF_ERROR(
          bulk.Push(std::span<const std::byte>(data.data(), n)));
      return Buffer{};
    });
    // Opcode 2: push a little, then fail.
    server_.Register(2, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
      Buffer partial(std::min<std::uint64_t>(16, bulk.out_capacity()));
      ROS2_RETURN_IF_ERROR(bulk.Push(partial));
      return Status(Internal("fuzz handler failure"));
    });

    payload_ = MakePatternBuffer(4096, 0xF);
    window_.resize(4096);
  }

  net::Qp* Connect(net::Transport transport) {
    auto qp = client_ep_->Connect(server_ep_, transport, client_pd_,
                                  server_pd_);
    EXPECT_TRUE(qp.ok());
    return qp.value_or(nullptr);
  }

  /// Builds the exact frame RpcClient::CallAsync would send, using REAL
  /// registered descriptors on RDMA so mutations of addr/len/rkey exercise
  /// the fabric's capability and bounds validation against live MRs.
  Buffer BuildRequest(Rng& rng, bool tcp) {
    Encoder req;
    req.U32(std::uint32_t(rng.Below(4)));  // 0/3 unknown, 1 echo, 2 fail
    req.U64(rng.Next());                   // sequence tag (echoed in reply)
    req.U64(rng.Next());                   // trace id (echoed in reply)
    Buffer header = MakePatternBuffer(rng.Below(48), rng.Next());
    req.Bytes(header);
    if (rng.Below(2) != 0) {
      req.U8(1);
      if (tcp) {
        req.Bytes(payload_);
      } else {
        req.U64(reinterpret_cast<std::uintptr_t>(payload_.data()))
            .U64(payload_.size())
            .U64(payload_rkey_);
      }
    } else {
      req.U8(0);
    }
    if (rng.Below(2) != 0) {
      req.U8(1);
      if (tcp) {
        req.U64(window_.size());
      } else {
        req.U64(reinterpret_cast<std::uintptr_t>(window_.data()))
            .U64(window_.size())
            .U64(window_rkey_);
      }
    } else {
      req.U8(0);
    }
    return req.Take();
  }

  /// Builds the exact frame RpcContext::Complete would reply with. `seq`
  /// is the tag the client under test expects next, so unmutated frames
  /// match a pending call and mutated ones exercise the unmatched-drop
  /// path.
  Buffer BuildReply(Rng& rng, bool tcp, std::uint64_t seq) {
    Encoder reply;
    reply.U64(seq);
    reply.U64(rng.Next());  // trace id
    reply.U16(std::uint16_t(rng.Below(14)));
    reply.Str(rng.Below(2) != 0 ? "fuzz error" : "");
    Buffer header = MakePatternBuffer(rng.Below(48), rng.Next());
    reply.Bytes(header);
    if (tcp) {
      Buffer inline_out = MakePatternBuffer(rng.Below(256), rng.Next());
      reply.Bytes(inline_out);
    }
    reply.U64(rng.Below(1 << 20));
    return reply.Take();
  }

  void RegisterFuzzWindows() {
    auto in = client_ep_->RegisterMemory(client_pd_, payload_,
                                         net::kRemoteRead);
    auto out = client_ep_->RegisterMemory(client_pd_, window_,
                                          net::kRemoteWrite);
    ASSERT_TRUE(in.ok() && out.ok());
    payload_rkey_ = in->rkey;
    window_rkey_ = out->rkey;
  }

  net::Fabric fabric_;
  net::Endpoint* server_ep_ = nullptr;
  net::Endpoint* client_ep_ = nullptr;
  net::PdId server_pd_ = 0;
  net::PdId client_pd_ = 0;
  RpcServer server_;
  Buffer payload_;
  Buffer window_;
  net::RKey payload_rkey_ = 0;
  net::RKey window_rkey_ = 0;
};

TEST_P(RpcFuzzTest, DecoderSurvivesRandomBytes) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    Buffer junk(rng.Below(96));
    for (auto& b : junk) b = std::byte(rng.Below(256));
    Decoder dec(junk);
    // Random walk over the accessors; every step either yields a value,
    // consuming within bounds, or a DATA_LOSS status.
    for (int op = 0; op < 12 && !dec.Done(); ++op) {
      switch (rng.Below(6)) {
        case 0: (void)dec.U8(); break;
        case 1: (void)dec.U16(); break;
        case 2: (void)dec.U32(); break;
        case 3: (void)dec.U64(); break;
        case 4: (void)dec.Str(); break;
        default: (void)dec.Bytes(); break;
      }
      ASSERT_LE(dec.remaining(), junk.size());
    }
  }
}

TEST_P(RpcFuzzTest, ServerSurvivesMutatedRequests) {
  Rng rng(GetParam() ^ 0x5EED);
  RegisterFuzzWindows();
  for (net::Transport transport :
       {net::Transport::kTcp, net::Transport::kRdma}) {
    net::Qp* qp = Connect(transport);
    ASSERT_NE(qp, nullptr);
    const bool tcp = transport == net::Transport::kTcp;
    for (int iter = 0; iter < 300; ++iter) {
      Buffer frame = BuildRequest(rng, tcp);
      Mutate(rng, &frame);
      ASSERT_TRUE(qp->Send(frame).ok());
      // Progress must return — ok or error — never crash or read OOB.
      (void)server_.Progress(qp->peer());
      while (qp->HasMessage()) (void)qp->Recv();   // drop replies
      while (qp->peer()->HasMessage()) (void)qp->peer()->Recv();
    }
  }
}

// The deferred-reply path under mutation: an async handler parks every
// request it gets; contexts are completed only AFTER the next frame has
// been decoded (interleaving deferral with decode, as the engine's
// xstream drain does), sometimes dropped without a reply (the dtor must
// auto-complete with an error), always without crashes or OOB reads.
TEST_P(RpcFuzzTest, DeferredServerSurvivesMutatedRequests) {
  Rng rng(GetParam() ^ 0xDEFE);
  RegisterFuzzWindows();
  std::vector<RpcContextPtr> parked;
  RpcServer deferring;
  deferring.RegisterAsync(1, [&](RpcContextPtr ctx) {
    parked.push_back(std::move(ctx));
    return HandlerVerdict::kDeferred;
  });
  // Opcode 2 stays synchronous so decode interleaves both handler kinds.
  deferring.Register(2, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer partial(std::min<std::uint64_t>(16, bulk.out_capacity()));
    ROS2_RETURN_IF_ERROR(bulk.Push(partial));
    return Status(Internal("fuzz handler failure"));
  });
  for (net::Transport transport :
       {net::Transport::kTcp, net::Transport::kRdma}) {
    net::Qp* qp = Connect(transport);
    ASSERT_NE(qp, nullptr);
    const bool tcp = transport == net::Transport::kTcp;
    for (int iter = 0; iter < 300; ++iter) {
      Buffer frame = BuildRequest(rng, tcp);
      Mutate(rng, &frame);
      ASSERT_TRUE(qp->Send(frame).ok());
      (void)deferring.Progress(qp->peer());
      // Contexts deferred by PREVIOUS frames complete here — after the
      // decode of the next frame, the ordering the engine pipeline
      // produces. A third of them are dropped instead: destroying an
      // uncompleted context must auto-reply, never hang or crash.
      if (iter % 2 == 1) {
        for (auto& ctx : parked) {
          switch (rng.Below(3)) {
            case 0: {
              // Like any real rendezvous handler: refuse absurd
              // client-claimed bulk sizes BEFORE allocating.
              if (ctx->bulk().in_size() > (1u << 20)) {
                (void)ctx->Complete(
                    Status(InvalidArgument("bulk too large")));
                break;
              }
              Buffer data(ctx->bulk().in_size());
              Status pull = ctx->bulk().Pull(data);
              (void)ctx->Complete(pull.ok() ? Result<Buffer>(Buffer{})
                                            : Result<Buffer>(pull));
              break;
            }
            case 1:
              (void)ctx->Complete(Status(Internal("deferred failure")));
              break;
            default:
              ctx.reset();  // dropped: dtor sends the INTERNAL reply
              break;
          }
        }
        parked.clear();
      }
      while (qp->HasMessage()) (void)qp->Recv();   // drop replies
    }
    parked.clear();
    while (qp->HasMessage()) (void)qp->Recv();
    while (qp->peer()->HasMessage()) (void)qp->peer()->Recv();
  }
  // Every deferred context was eventually answered (Complete or the
  // dtor's auto-reply), so none is missing from the served count.
  EXPECT_GE(deferring.requests_served(), deferring.requests_deferred());
}

TEST_P(RpcFuzzTest, ClientSurvivesMutatedReplies) {
  Rng rng(GetParam() ^ 0xCA11);
  for (net::Transport transport :
       {net::Transport::kTcp, net::Transport::kRdma}) {
    net::Qp* qp = Connect(transport);
    ASSERT_NE(qp, nullptr);
    const bool tcp = transport == net::Transport::kTcp;
    // No progress hook: the "server" is the mutated reply we pre-queue.
    RpcClient client(qp, client_ep_, nullptr);
    for (int iter = 0; iter < 300; ++iter) {
      // The client's next CallAsync takes sequence tag iter + 1.
      Buffer reply = BuildReply(rng, tcp, std::uint64_t(iter) + 1);
      Mutate(rng, &reply);
      ASSERT_TRUE(qp->peer()->Send(reply).ok());
      CallOptions options;
      options.recv_bulk = window_;
      // Any Status (or a garbled-but-bounded success) is acceptable.
      (void)client.Call(1, kNoHeader, options);
      while (qp->peer()->HasMessage()) (void)qp->peer()->Recv();
      while (qp->HasMessage()) (void)qp->Recv();
    }
  }
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u)
      << "mutated replies leaked bulk-window leases";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace ros2::rpc
