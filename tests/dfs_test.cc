// DFS POSIX-layer tests: namespace operations, chunked file I/O, rename,
// truncate — the §3.3 "DFS mapping" contract, over both transports.
#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"

namespace ros2::dfs {
namespace {

class DfsTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    daos::EngineConfig config;
    config.targets = 8;
    config.scm_per_target = 16 * kMiB;
    engine_ = std::make_unique<daos::DaosEngine>(&fabric_, config, raw);
    daos::DaosClient::ConnectOptions options;
    options.transport = GetParam();
    auto client = daos::DaosClient::Connect(&fabric_, engine_.get(), options);
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    auto cont = client_->ContainerCreate("posix");
    ASSERT_TRUE(cont.ok());
    auto dfs = Dfs::Mount(client_.get(), *cont, /*create=*/true);
    ASSERT_TRUE(dfs.ok()) << dfs.status().ToString();
    dfs_ = std::move(*dfs);
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<daos::DaosEngine> engine_;
  std::unique_ptr<daos::DaosClient> client_;
  std::unique_ptr<Dfs> dfs_;
};

TEST_P(DfsTest, CreateWriteReadFile) {
  OpenFlags flags;
  flags.create = true;
  auto fd = dfs_->Open("/hello.txt", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(1000, 1);
  ASSERT_TRUE(dfs_->Write(*fd, 0, data).ok());
  Buffer out(1000);
  auto n = dfs_->Read(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1000u);
  EXPECT_EQ(out, data);
  ASSERT_TRUE(dfs_->Close(*fd).ok());
}

TEST_P(DfsTest, ReadClampsAtEof) {
  OpenFlags flags;
  flags.create = true;
  auto fd = dfs_->Open("/short", flags);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 0, MakePatternBuffer(100, 1)).ok());
  Buffer out(1000);
  auto n = dfs_->Read(*fd, 50, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  auto past = dfs_->Read(*fd, 100, out);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(*past, 0u);
}

TEST_P(DfsTest, ChunkSpanningIo) {
  OpenFlags flags;
  flags.create = true;
  auto fd = dfs_->Open("/big", flags);
  ASSERT_TRUE(fd.ok());
  // Write 3.5 MiB starting mid-chunk: spans 4+ chunks.
  Buffer data = MakePatternBuffer(3 * kMiB + 512 * kKiB, 7);
  const std::uint64_t offset = 512 * kKiB + 123;
  ASSERT_TRUE(dfs_->Write(*fd, offset, data).ok());
  Buffer out(data.size());
  auto n = dfs_->Read(*fd, offset, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(dfs_->Size(*fd).value(), offset + data.size());
}

TEST_P(DfsTest, SparseFileReadsZerosInHoles) {
  OpenFlags flags;
  flags.create = true;
  auto fd = dfs_->Open("/sparse", flags);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 5 * kMiB, MakePatternBuffer(100, 3)).ok());
  Buffer out(4096);
  auto n = dfs_->Read(*fd, kMiB, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4096u);
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST_P(DfsTest, OpenSemantics) {
  OpenFlags none;
  EXPECT_EQ(dfs_->Open("/missing", none).status().code(),
            ErrorCode::kNotFound);
  OpenFlags create;
  create.create = true;
  ASSERT_TRUE(dfs_->Open("/f", create).ok());
  OpenFlags excl = create;
  excl.exclusive = true;
  EXPECT_EQ(dfs_->Open("/f", excl).status().code(),
            ErrorCode::kAlreadyExists);
  // Reopen without create works.
  EXPECT_TRUE(dfs_->Open("/f", none).ok());
}

TEST_P(DfsTest, TruncateOnOpen) {
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/t", create);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 0, MakePatternBuffer(1000, 1)).ok());
  ASSERT_TRUE(dfs_->Close(*fd).ok());
  OpenFlags trunc;
  trunc.truncate = true;
  auto fd2 = dfs_->Open("/t", trunc);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(dfs_->Size(*fd2).value(), 0u);
}

TEST_P(DfsTest, MkdirAndNestedPaths) {
  ASSERT_TRUE(dfs_->Mkdir("/a").ok());
  ASSERT_TRUE(dfs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(dfs_->Mkdir("/a/b/c").ok());
  EXPECT_EQ(dfs_->Mkdir("/a").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(dfs_->Mkdir("/x/y").code(), ErrorCode::kNotFound);
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/a/b/c/file", create);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 0, MakePatternBuffer(64, 1)).ok());
  auto stat = dfs_->Stat("/a/b/c/file");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, InodeType::kFile);
  EXPECT_EQ(stat->size, 64u);
}

TEST_P(DfsTest, StatRootAndDirs) {
  auto root = dfs_->Stat("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->type, InodeType::kDirectory);
  ASSERT_TRUE(dfs_->Mkdir("/d").ok());
  auto dir = dfs_->Stat("/d");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->type, InodeType::kDirectory);
}

TEST_P(DfsTest, ReaddirSortedAndTyped) {
  ASSERT_TRUE(dfs_->Mkdir("/dir").ok());
  OpenFlags create;
  create.create = true;
  ASSERT_TRUE(dfs_->Open("/dir/zebra", create).ok());
  ASSERT_TRUE(dfs_->Open("/dir/alpha", create).ok());
  ASSERT_TRUE(dfs_->Mkdir("/dir/middle").ok());
  auto entries = dfs_->Readdir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "alpha");
  EXPECT_EQ((*entries)[0].type, InodeType::kFile);
  EXPECT_EQ((*entries)[1].name, "middle");
  EXPECT_EQ((*entries)[1].type, InodeType::kDirectory);
  EXPECT_EQ((*entries)[2].name, "zebra");
}

TEST_P(DfsTest, ReaddirOnFileRejected) {
  OpenFlags create;
  create.create = true;
  ASSERT_TRUE(dfs_->Open("/plain", create).ok());
  EXPECT_EQ(dfs_->Readdir("/plain").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_P(DfsTest, UnlinkFileAndEmptyDirOnly) {
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/doomed", create);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 0, MakePatternBuffer(kMiB, 1)).ok());
  ASSERT_TRUE(dfs_->Close(*fd).ok());
  ASSERT_TRUE(dfs_->Unlink("/doomed").ok());
  EXPECT_EQ(dfs_->Stat("/doomed").status().code(), ErrorCode::kNotFound);

  ASSERT_TRUE(dfs_->Mkdir("/full").ok());
  ASSERT_TRUE(dfs_->Open("/full/kid", create).ok());
  EXPECT_EQ(dfs_->Unlink("/full").code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(dfs_->Unlink("/full/kid").ok());
  EXPECT_TRUE(dfs_->Unlink("/full").ok());
}

TEST_P(DfsTest, RenameMovesContent) {
  ASSERT_TRUE(dfs_->Mkdir("/src").ok());
  ASSERT_TRUE(dfs_->Mkdir("/dst").ok());
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/src/f", create);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(2 * kMiB, 9);
  ASSERT_TRUE(dfs_->Write(*fd, 0, data).ok());
  ASSERT_TRUE(dfs_->Close(*fd).ok());

  ASSERT_TRUE(dfs_->Rename("/src/f", "/dst/g").ok());
  EXPECT_EQ(dfs_->Stat("/src/f").status().code(), ErrorCode::kNotFound);
  auto fd2 = dfs_->Open("/dst/g", OpenFlags{});
  ASSERT_TRUE(fd2.ok());
  Buffer out(data.size());
  auto n = dfs_->Read(*fd2, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_P(DfsTest, RenameOverwritesFile) {
  OpenFlags create;
  create.create = true;
  auto a = dfs_->Open("/a", create);
  auto b = dfs_->Open("/b", create);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(dfs_->Write(*a, 0, MakePatternBuffer(10, 1)).ok());
  ASSERT_TRUE(dfs_->Write(*b, 0, MakePatternBuffer(10, 2)).ok());
  ASSERT_TRUE(dfs_->Rename("/a", "/b").ok());
  auto fd = dfs_->Open("/b", OpenFlags{});
  ASSERT_TRUE(fd.ok());
  Buffer out(10);
  ASSERT_TRUE(dfs_->Read(*fd, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 1, 0), -1);
}

TEST_P(DfsTest, TruncateShrinkAndExtend) {
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/trunc", create);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(dfs_->Write(*fd, 0, MakePatternBuffer(1000, 1)).ok());
  ASSERT_TRUE(dfs_->Truncate(*fd, 0).ok());
  EXPECT_EQ(dfs_->Size(*fd).value(), 0u);
  Buffer out(100);
  EXPECT_EQ(dfs_->Read(*fd, 0, out).value(), 0u);

  ASSERT_TRUE(dfs_->Truncate(*fd, 5000).ok());
  EXPECT_EQ(dfs_->Size(*fd).value(), 5000u);
  auto n = dfs_->Read(*fd, 4900, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST_P(DfsTest, MountOpenExistingNamespace) {
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/persisted", create);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(123, 4);
  ASSERT_TRUE(dfs_->Write(*fd, 0, data).ok());

  // Re-mount the same container without create.
  auto cont = client_->ContainerOpen("posix");
  ASSERT_TRUE(cont.ok());
  auto dfs2 = Dfs::Mount(client_.get(), *cont, /*create=*/false);
  ASSERT_TRUE(dfs2.ok()) << dfs2.status().ToString();
  auto fd2 = (*dfs2)->Open("/persisted", OpenFlags{});
  ASSERT_TRUE(fd2.ok());
  Buffer out(123);
  ASSERT_TRUE((*dfs2)->Read(*fd2, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(DfsTest, MountRejectsForeignContainer) {
  auto cont = client_->ContainerCreate("not-posix");
  ASSERT_TRUE(cont.ok());
  auto dfs = Dfs::Mount(client_.get(), *cont, /*create=*/false);
  EXPECT_FALSE(dfs.ok());
}

TEST_P(DfsTest, PathValidation) {
  EXPECT_EQ(dfs_->Mkdir("relative").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(dfs_->Mkdir("/a/../b").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(dfs_->Stat("").status().code(), ErrorCode::kInvalidArgument);
}

TEST_P(DfsTest, TruncateMidChunkZeroFillsStaleTail) {
  // Regression: shrinking to a mid-chunk size used to only update the
  // size record, leaving the old chunk bytes materialized — growing the
  // file again (truncate-extend or a later write) exposed the STALE data
  // instead of zeros.
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/stale-tail", create);
  ASSERT_TRUE(fd.ok());
  const std::uint64_t total = 2 * kMiB + 500 * kKiB;  // spans 3 chunks
  Buffer data = MakePatternBuffer(total, 9);
  ASSERT_TRUE(dfs_->Write(*fd, 0, data).ok());

  const std::uint64_t cut = kMiB + 300 * kKiB + 7;  // mid chunk 1
  ASSERT_TRUE(dfs_->Truncate(*fd, cut).ok());
  ASSERT_TRUE(dfs_->Truncate(*fd, total).ok());  // grow back over the cut
  EXPECT_EQ(dfs_->Size(*fd).value(), total);

  Buffer out(total);
  auto n = dfs_->Read(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, total);
  // Bytes below the cut survive; everything above reads as zeros even
  // where the old chunks used to hold data.
  for (std::uint64_t i = 0; i < cut; ++i) {
    ASSERT_EQ(out[i], data[i]) << "byte " << i;
  }
  for (std::uint64_t i = cut; i < total; ++i) {
    ASSERT_EQ(out[i], std::byte(0)) << "stale byte " << i;
  }
}

TEST_P(DfsTest, ReadSpanningHoleMixesDataAndZeros) {
  // One read crossing data -> hole -> data: the hole bytes come back as
  // zeros in place, not as a short read or an error.
  OpenFlags create;
  create.create = true;
  auto fd = dfs_->Open("/hole-span", create);
  ASSERT_TRUE(fd.ok());
  Buffer head = MakePatternBuffer(100 * kKiB, 5);
  Buffer tail = MakePatternBuffer(100 * kKiB, 6);
  const std::uint64_t tail_at = 4 * kMiB;  // chunks 1..3 never written
  ASSERT_TRUE(dfs_->Write(*fd, 0, head).ok());
  ASSERT_TRUE(dfs_->Write(*fd, tail_at, tail).ok());

  Buffer out(tail_at + tail.size());
  auto n = dfs_->Read(*fd, 0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, out.size());
  for (std::uint64_t i = 0; i < head.size(); ++i) {
    ASSERT_EQ(out[i], head[i]) << "head byte " << i;
  }
  for (std::uint64_t i = head.size(); i < tail_at; ++i) {
    ASSERT_EQ(out[i], std::byte(0)) << "hole byte " << i;
  }
  for (std::uint64_t i = 0; i < tail.size(); ++i) {
    ASSERT_EQ(out[tail_at + i], tail[i]) << "tail byte " << i;
  }
}

TEST_P(DfsTest, SizeCoherentAcrossFds) {
  // Two fds on the same file share size state: an extending write or a
  // truncate through one is immediately visible through the other (each
  // fd used to carry a private stale copy loaded at open).
  OpenFlags create;
  create.create = true;
  auto fd1 = dfs_->Open("/shared", create);
  ASSERT_TRUE(fd1.ok());
  auto fd2 = dfs_->Open("/shared", OpenFlags{});
  ASSERT_TRUE(fd2.ok());

  Buffer data = MakePatternBuffer(3000, 2);
  ASSERT_TRUE(dfs_->Write(*fd1, 0, data).ok());
  EXPECT_EQ(dfs_->Size(*fd2).value(), 3000u);

  ASSERT_TRUE(dfs_->Truncate(*fd2, 1000).ok());
  Buffer out(3000);
  auto n = dfs_->Read(*fd1, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1000u);  // fd1 sees fd2's shrink at once

  ASSERT_TRUE(dfs_->Write(*fd2, 4000, MakePatternBuffer(500, 3)).ok());
  EXPECT_EQ(dfs_->Size(*fd1).value(), 4500u);

  // The shared state expires with the last close: a fresh open reloads
  // from the stored size record, which every path above kept current.
  ASSERT_TRUE(dfs_->Close(*fd1).ok());
  ASSERT_TRUE(dfs_->Close(*fd2).ok());
  auto fd3 = dfs_->Open("/shared", OpenFlags{});
  ASSERT_TRUE(fd3.ok());
  EXPECT_EQ(dfs_->Size(*fd3).value(), 4500u);
}

TEST_P(DfsTest, BadFdRejected) {
  Buffer out(10);
  EXPECT_EQ(dfs_->Read(999, 0, out).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(dfs_->Write(999, 0, out).code(), ErrorCode::kNotFound);
  EXPECT_EQ(dfs_->Close(999).code(), ErrorCode::kNotFound);
  EXPECT_EQ(dfs_->Fsync(999).code(), ErrorCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Transports, DfsTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::dfs
