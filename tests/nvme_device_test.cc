#include "storage/nvme_device.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::storage {
namespace {

NvmeDeviceConfig SmallDevice() {
  NvmeDeviceConfig config;
  config.capacity_bytes = 16 * kMiB;
  config.lba_size = 4096;
  config.max_queue_pairs = 4;
  config.queue_depth = 8;
  return config;
}

TEST(NvmeDeviceTest, WriteReadRoundTrip) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());

  Buffer data = MakePatternBuffer(8192, 1);
  NvmeCommand write;
  write.opcode = NvmeOpcode::kWrite;
  write.cid = 1;
  write.slba = 4;
  write.nlb = 2;
  write.data = data.data();
  write.data_len = data.size();
  ASSERT_TRUE((*qp)->Submit(write).ok());

  Buffer out(8192);
  NvmeCommand read = write;
  read.opcode = NvmeOpcode::kRead;
  read.cid = 2;
  read.data = out.data();
  ASSERT_TRUE((*qp)->Submit(read).ok());

  auto completions = (*qp)->Poll();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].cid, 1);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_TRUE(completions[1].status.ok());
  EXPECT_EQ(out, data);
}

TEST(NvmeDeviceTest, QueueDepthEnforced) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  Buffer data(4096);
  for (int i = 0; i < 8; ++i) {
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::kWrite;
    cmd.cid = std::uint16_t(i);
    cmd.slba = std::uint64_t(i);
    cmd.nlb = 1;
    cmd.data = data.data();
    cmd.data_len = data.size();
    ASSERT_TRUE((*qp)->Submit(cmd).ok()) << i;
  }
  NvmeCommand extra;
  extra.opcode = NvmeOpcode::kFlush;
  EXPECT_EQ((*qp)->Submit(extra).code(), ErrorCode::kResourceExhausted);
  (*qp)->Poll();
  EXPECT_TRUE((*qp)->Submit(extra).ok());
}

TEST(NvmeDeviceTest, MaxQueuePairsEnforced) {
  NvmeDevice dev(SmallDevice());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dev.CreateQueuePair().ok()) << i;
  }
  EXPECT_EQ(dev.CreateQueuePair().status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(NvmeDeviceTest, DestroyQueuePairFreesSlot) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  const std::uint16_t id = (*qp)->id();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(dev.CreateQueuePair().ok());
  ASSERT_TRUE(dev.DestroyQueuePair(id).ok());
  EXPECT_TRUE(dev.CreateQueuePair().ok());
  EXPECT_EQ(dev.DestroyQueuePair(99).code(), ErrorCode::kNotFound);
}

TEST(NvmeDeviceTest, LbaRangeValidation) {
  NvmeDevice dev(SmallDevice());  // 4096 blocks
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  Buffer data(4096);
  NvmeCommand cmd;
  cmd.opcode = NvmeOpcode::kRead;
  cmd.slba = dev.capacity_blocks();  // one past the end
  cmd.nlb = 1;
  cmd.data = data.data();
  cmd.data_len = data.size();
  ASSERT_TRUE((*qp)->Submit(cmd).ok());
  auto completions = (*qp)->Poll();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), ErrorCode::kOutOfRange);
}

TEST(NvmeDeviceTest, PayloadSizeValidation) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  Buffer data(4096);
  NvmeCommand cmd;
  cmd.opcode = NvmeOpcode::kWrite;
  cmd.nlb = 2;  // needs 8192 bytes
  cmd.data = data.data();
  cmd.data_len = data.size();
  EXPECT_EQ((*qp)->Submit(cmd).code(), ErrorCode::kInvalidArgument);
  cmd.nlb = 0;
  EXPECT_EQ((*qp)->Submit(cmd).code(), ErrorCode::kInvalidArgument);
  cmd.nlb = 1;
  cmd.data = nullptr;
  EXPECT_EQ((*qp)->Submit(cmd).code(), ErrorCode::kInvalidArgument);
}

TEST(NvmeDeviceTest, FlushAndDeallocate) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  Buffer data = MakePatternBuffer(4096, 5);
  NvmeCommand write;
  write.opcode = NvmeOpcode::kWrite;
  write.slba = 0;
  write.nlb = 1;
  write.data = data.data();
  write.data_len = data.size();
  ASSERT_TRUE((*qp)->Submit(write).ok());
  NvmeCommand flush;
  flush.opcode = NvmeOpcode::kFlush;
  ASSERT_TRUE((*qp)->Submit(flush).ok());
  NvmeCommand trim;
  trim.opcode = NvmeOpcode::kDeallocate;
  trim.slba = 0;
  trim.nlb = 1;
  ASSERT_TRUE((*qp)->Submit(trim).ok());
  for (const auto& c : (*qp)->Poll()) {
    EXPECT_TRUE(c.status.ok());
  }
  Buffer out(4096);
  NvmeCommand read;
  read.opcode = NvmeOpcode::kRead;
  read.slba = 0;
  read.nlb = 1;
  read.data = out.data();
  read.data_len = out.size();
  ASSERT_TRUE((*qp)->Submit(read).ok());
  (*qp)->Poll();
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST(NvmeDeviceTest, SmartCountersAccumulate) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  Buffer data(8192);
  NvmeCommand write;
  write.opcode = NvmeOpcode::kWrite;
  write.slba = 0;
  write.nlb = 2;
  write.data = data.data();
  write.data_len = data.size();
  ASSERT_TRUE((*qp)->Submit(write).ok());
  (*qp)->Poll();
  EXPECT_EQ(dev.writes_completed(), 1u);
  EXPECT_EQ(dev.bytes_written(), 8192u);
  EXPECT_EQ(dev.reads_completed(), 0u);
}

TEST(NvmeDeviceTest, PollMaxLimitsDrain) {
  NvmeDevice dev(SmallDevice());
  auto qp = dev.CreateQueuePair();
  ASSERT_TRUE(qp.ok());
  for (int i = 0; i < 4; ++i) {
    NvmeCommand flush;
    flush.opcode = NvmeOpcode::kFlush;
    flush.cid = std::uint16_t(i);
    ASSERT_TRUE((*qp)->Submit(flush).ok());
  }
  EXPECT_EQ((*qp)->Poll(3).size(), 3u);
  EXPECT_EQ((*qp)->outstanding(), 1u);
  EXPECT_EQ((*qp)->Poll().size(), 1u);
}

}  // namespace
}  // namespace ros2::storage
