// Security-model tests for one-sided RDMA (§2.3): the capability risks the
// paper catalogs (cross-tenant access, rkey leakage, weak isolation) and
// the mitigations a DPU-resident client enables (per-tenant PDs, scoped
// short-lived rkeys, strict registration bounds).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "net/fabric.h"

namespace ros2::net {
namespace {

class RdmaSecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = fabric_.CreateEndpoint("fabric://server");
    auto tenant_a = fabric_.CreateEndpoint("fabric://tenant-a");
    auto tenant_b = fabric_.CreateEndpoint("fabric://tenant-b");
    ASSERT_TRUE(server.ok() && tenant_a.ok() && tenant_b.ok());
    server_ = *server;
    a_ = *tenant_a;
    b_ = *tenant_b;

    // The server scopes each tenant to its own protection domain.
    pd_for_a_ = server_->AllocPd(/*tenant=*/1);
    pd_for_b_ = server_->AllocPd(/*tenant=*/2);

    auto qp_a = a_->Connect(server_, Transport::kRdma, a_->AllocPd(1),
                            pd_for_a_);
    auto qp_b = b_->Connect(server_, Transport::kRdma, b_->AllocPd(2),
                            pd_for_b_);
    ASSERT_TRUE(qp_a.ok() && qp_b.ok());
    qp_a_ = *qp_a;
    qp_b_ = *qp_b;
  }

  Fabric fabric_;
  Endpoint* server_ = nullptr;
  Endpoint* a_ = nullptr;
  Endpoint* b_ = nullptr;
  PdId pd_for_a_ = 0;
  PdId pd_for_b_ = 0;
  Qp* qp_a_ = nullptr;
  Qp* qp_b_ = nullptr;
};

TEST_F(RdmaSecurityTest, CrossTenantRkeyRejectedByPdScoping) {
  // Tenant A's data registered under A's PD on the server.
  Buffer secret = MakePatternBuffer(1024, 0xA);
  auto mr = server_->RegisterMemory(pd_for_a_, secret, kRemoteRead);
  ASSERT_TRUE(mr.ok());

  // Tenant A can read it...
  Buffer out(1024);
  EXPECT_TRUE(qp_a_->RdmaRead(out, mr->addr, mr->rkey).ok());

  // ...tenant B, holding the LEAKED rkey, cannot: its QP is bound to B's
  // PD (the §2.3 "cross-tenant access" scenario, blocked).
  Buffer stolen(1024);
  const Status denied = qp_b_->RdmaRead(stolen, mr->addr, mr->rkey);
  EXPECT_EQ(denied.code(), ErrorCode::kPermissionDenied);
  for (std::byte byte : stolen) EXPECT_EQ(byte, std::byte(0));
}

TEST_F(RdmaSecurityTest, UnknownRkeyRejected) {
  Buffer out(64);
  EXPECT_EQ(qp_a_->RdmaRead(out, 0xDEAD, 0xBEEF).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RdmaSecurityTest, BoundsEnforcedAgainstPythiaStyleProbing) {
  // A registration must not grant access to adjacent memory.
  Buffer region = MakePatternBuffer(4096, 0xB);
  auto mr = server_->RegisterMemory(pd_for_a_, region, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  Buffer out(128);
  // One byte past the end.
  EXPECT_EQ(
      qp_a_->RdmaRead(out, mr->addr + mr->length - 127, mr->rkey).code(),
      ErrorCode::kPermissionDenied);
  // Before the start.
  EXPECT_EQ(qp_a_->RdmaRead(out, mr->addr - 1, mr->rkey).code(),
            ErrorCode::kPermissionDenied);
  // Length overflow across the whole region.
  Buffer big(8192);
  EXPECT_EQ(qp_a_->RdmaRead(big, mr->addr, mr->rkey).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RdmaSecurityTest, AccessMaskSeparatesReadAndWrite) {
  Buffer region(256);
  auto read_only = server_->RegisterMemory(pd_for_a_, region, kRemoteRead);
  ASSERT_TRUE(read_only.ok());
  Buffer data = MakePatternBuffer(256, 1);
  EXPECT_EQ(qp_a_->RdmaWrite(data, read_only->addr, read_only->rkey).code(),
            ErrorCode::kPermissionDenied);

  auto write_only = server_->RegisterMemory(pd_for_a_, region, kRemoteWrite);
  ASSERT_TRUE(write_only.ok());
  Buffer out(256);
  EXPECT_EQ(qp_a_->RdmaRead(out, write_only->addr, write_only->rkey).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(qp_a_->RdmaWrite(data, write_only->addr, write_only->rkey).ok());
}

TEST_F(RdmaSecurityTest, ScopedRkeyExpires) {
  Buffer region = MakePatternBuffer(512, 0xC);
  // Short-lived capability: 10 seconds of fabric time.
  auto mr = server_->RegisterMemory(pd_for_a_, region, kRemoteRead,
                                    /*ttl=*/10.0);
  ASSERT_TRUE(mr.ok());
  Buffer out(512);
  EXPECT_TRUE(qp_a_->RdmaRead(out, mr->addr, mr->rkey).ok());

  fabric_.AdvanceTime(11.0);
  EXPECT_EQ(qp_a_->RdmaRead(out, mr->addr, mr->rkey).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RdmaSecurityTest, RevocationIsImmediate) {
  Buffer region = MakePatternBuffer(512, 0xD);
  auto mr = server_->RegisterMemory(pd_for_a_, region, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  Buffer out(512);
  EXPECT_TRUE(qp_a_->RdmaRead(out, mr->addr, mr->rkey).ok());
  ASSERT_TRUE(server_->RevokeMemory(mr->rkey).ok());
  EXPECT_EQ(qp_a_->RdmaRead(out, mr->addr, mr->rkey).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RdmaSecurityTest, DeregisteredRkeyUnusable) {
  Buffer region(512);
  auto mr = server_->RegisterMemory(pd_for_a_, region, kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  ASSERT_TRUE(server_->DeregisterMemory(mr->rkey).ok());
  Buffer data(512);
  EXPECT_EQ(qp_a_->RdmaWrite(data, mr->addr, mr->rkey).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RdmaSecurityTest, TenantsIsolatedEvenWithIdenticalLayout) {
  // Both tenants register identical-looking buffers; each can only touch
  // its own.
  Buffer buf_a = MakePatternBuffer(256, 0xAA);
  Buffer buf_b = MakePatternBuffer(256, 0xBB);
  auto mr_a = server_->RegisterMemory(pd_for_a_, buf_a,
                                      kRemoteRead | kRemoteWrite);
  auto mr_b = server_->RegisterMemory(pd_for_b_, buf_b,
                                      kRemoteRead | kRemoteWrite);
  ASSERT_TRUE(mr_a.ok() && mr_b.ok());

  Buffer out(256);
  EXPECT_TRUE(qp_a_->RdmaRead(out, mr_a->addr, mr_a->rkey).ok());
  EXPECT_TRUE(qp_b_->RdmaRead(out, mr_b->addr, mr_b->rkey).ok());
  EXPECT_EQ(qp_a_->RdmaRead(out, mr_b->addr, mr_b->rkey).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(qp_b_->RdmaWrite(out, mr_a->addr, mr_a->rkey).code(),
            ErrorCode::kPermissionDenied);
}

}  // namespace
}  // namespace ros2::net
