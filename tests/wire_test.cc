#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace ros2::rpc {
namespace {

// Golden vectors: the wire format is little-endian BY CONTRACT, not by
// host accident. These committed bytes must match the encoder's output on
// every host (and a decoder fed the committed bytes must yield the
// original values), pinning cross-architecture frame compatibility.
TEST(WireTest, GoldenLittleEndianScalars) {
  Encoder enc;
  enc.U8(0x01).U16(0x0203).U32(0x04050607).U64(0x08090A0B0C0D0E0Full);
  const std::uint8_t expect[] = {
      0x01,                                            // U8
      0x03, 0x02,                                      // U16 LE
      0x07, 0x06, 0x05, 0x04,                          // U32 LE
      0x0F, 0x0E, 0x0D, 0x0C, 0x0B, 0x0A, 0x09, 0x08,  // U64 LE
  };
  ASSERT_EQ(enc.buffer().size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(enc.buffer()[i], std::byte(expect[i])) << "byte " << i;
  }
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U8().value(), 0x01);
  EXPECT_EQ(dec.U16().value(), 0x0203);
  EXPECT_EQ(dec.U32().value(), 0x04050607u);
  EXPECT_EQ(dec.U64().value(), 0x08090A0B0C0D0E0Full);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, GoldenLittleEndianLengthPrefixes) {
  Encoder enc;
  enc.Str("Hi");
  const std::byte two[] = {std::byte(0xAA), std::byte(0xBB)};
  enc.Bytes(two);
  const std::uint8_t expect[] = {
      0x02, 0x00, 0x00, 0x00, 'H', 'i',     // u32 LE length + chars
      0x02, 0x00, 0x00, 0x00, 0xAA, 0xBB,   // u32 LE length + bytes
  };
  ASSERT_EQ(enc.buffer().size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(enc.buffer()[i], std::byte(expect[i])) << "byte " << i;
  }
}

TEST(WireTest, EncoderLatchesLengthOverflow) {
  static const std::byte kByte{0x42};
  Encoder enc;
  enc.U32(7);
  EXPECT_TRUE(enc.ok());
  const std::size_t before = enc.buffer().size();
  // A span claiming 2^33 bytes: the length cannot fit the u32 prefix. The
  // encoder must latch the overflow and append NOTHING (the span contents
  // are never read), instead of silently truncating the length.
  enc.Bytes(std::span<const std::byte>(&kByte, std::size_t(1) << 33));
  EXPECT_FALSE(enc.ok());
  EXPECT_EQ(enc.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(enc.buffer().size(), before);
  // The latch is sticky across further (valid) appends.
  enc.U8(1);
  EXPECT_FALSE(enc.ok());
}

TEST(WireTest, ScalarRoundTrip) {
  Encoder enc;
  enc.U8(0xAB).U16(0xCDEF).U32(0xDEADBEEF).U64(0x0123456789ABCDEFull);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U8().value(), 0xAB);
  EXPECT_EQ(dec.U16().value(), 0xCDEF);
  EXPECT_EQ(dec.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, StringRoundTrip) {
  Encoder enc;
  enc.Str("hello").Str("").Str("path/with/slashes");
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().value(), "hello");
  EXPECT_EQ(dec.Str().value(), "");
  EXPECT_EQ(dec.Str().value(), "path/with/slashes");
}

TEST(WireTest, BytesRoundTrip) {
  Buffer payload = MakePatternBuffer(1000, 3);
  Encoder enc;
  enc.Bytes(payload).Bytes({});
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Bytes().value(), payload);
  EXPECT_TRUE(dec.Bytes().value().empty());
}

TEST(WireTest, MixedMessage) {
  Encoder enc;
  enc.U32(7).Str("dkey").U64(4096).Bytes(MakePatternBuffer(64, 1)).U8(1);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U32().value(), 7u);
  EXPECT_EQ(dec.Str().value(), "dkey");
  EXPECT_EQ(dec.U64().value(), 4096u);
  EXPECT_EQ(dec.Bytes().value().size(), 64u);
  EXPECT_EQ(dec.U8().value(), 1);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, TruncatedScalarFails) {
  Encoder enc;
  enc.U16(42);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U32().status().code(), ErrorCode::kDataLoss);
}

TEST(WireTest, TruncatedStringFails) {
  Encoder enc;
  enc.U32(100);  // declares a 100-byte string with no payload
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().status().code(), ErrorCode::kDataLoss);
}

TEST(WireTest, EmptyBufferFailsCleanly) {
  Decoder dec(std::span<const std::byte>{});
  EXPECT_EQ(dec.U8().status().code(), ErrorCode::kDataLoss);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, RemainingTracksPosition) {
  Encoder enc;
  enc.U32(1).U32(2);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.remaining(), 8u);
  (void)dec.U32();
  EXPECT_EQ(dec.remaining(), 4u);
}

TEST(WireTest, TakeMovesBuffer) {
  Encoder enc;
  enc.U64(99);
  Buffer taken = enc.Take();
  EXPECT_EQ(taken.size(), 8u);
  EXPECT_TRUE(enc.buffer().empty());
}

TEST(WireTest, BinaryStringsWithEmbeddedNuls) {
  std::string s("a\0b", 3);
  Encoder enc;
  enc.Str(s);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().value(), s);
}

}  // namespace
}  // namespace ros2::rpc
