#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace ros2::rpc {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  Encoder enc;
  enc.U8(0xAB).U16(0xCDEF).U32(0xDEADBEEF).U64(0x0123456789ABCDEFull);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U8().value(), 0xAB);
  EXPECT_EQ(dec.U16().value(), 0xCDEF);
  EXPECT_EQ(dec.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, StringRoundTrip) {
  Encoder enc;
  enc.Str("hello").Str("").Str("path/with/slashes");
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().value(), "hello");
  EXPECT_EQ(dec.Str().value(), "");
  EXPECT_EQ(dec.Str().value(), "path/with/slashes");
}

TEST(WireTest, BytesRoundTrip) {
  Buffer payload = MakePatternBuffer(1000, 3);
  Encoder enc;
  enc.Bytes(payload).Bytes({});
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Bytes().value(), payload);
  EXPECT_TRUE(dec.Bytes().value().empty());
}

TEST(WireTest, MixedMessage) {
  Encoder enc;
  enc.U32(7).Str("dkey").U64(4096).Bytes(MakePatternBuffer(64, 1)).U8(1);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U32().value(), 7u);
  EXPECT_EQ(dec.Str().value(), "dkey");
  EXPECT_EQ(dec.U64().value(), 4096u);
  EXPECT_EQ(dec.Bytes().value().size(), 64u);
  EXPECT_EQ(dec.U8().value(), 1);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, TruncatedScalarFails) {
  Encoder enc;
  enc.U16(42);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.U32().status().code(), ErrorCode::kDataLoss);
}

TEST(WireTest, TruncatedStringFails) {
  Encoder enc;
  enc.U32(100);  // declares a 100-byte string with no payload
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().status().code(), ErrorCode::kDataLoss);
}

TEST(WireTest, EmptyBufferFailsCleanly) {
  Decoder dec(std::span<const std::byte>{});
  EXPECT_EQ(dec.U8().status().code(), ErrorCode::kDataLoss);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, RemainingTracksPosition) {
  Encoder enc;
  enc.U32(1).U32(2);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.remaining(), 8u);
  (void)dec.U32();
  EXPECT_EQ(dec.remaining(), 4u);
}

TEST(WireTest, TakeMovesBuffer) {
  Encoder enc;
  enc.U64(99);
  Buffer taken = enc.Take();
  EXPECT_EQ(taken.size(), 8u);
  EXPECT_TRUE(enc.buffer().empty());
}

TEST(WireTest, BinaryStringsWithEmbeddedNuls) {
  std::string s("a\0b", 3);
  Encoder enc;
  enc.Str(s);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.Str().value(), s);
}

}  // namespace
}  // namespace ros2::rpc
