#include "daos/placement.h"

#include <gtest/gtest.h>

#include <vector>

namespace ros2::daos {
namespace {

TEST(PlacementTest, Deterministic) {
  const ObjectId oid{1, 2};
  EXPECT_EQ(PlaceDkey(oid, "chunk0", 16), PlaceDkey(oid, "chunk0", 16));
}

TEST(PlacementTest, InRange) {
  const ObjectId oid{42, 7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(PlaceDkey(oid, "c" + std::to_string(i), 16), 16u);
  }
}

TEST(PlacementTest, ZeroTargetsClampedToOne) {
  EXPECT_EQ(PlaceDkey(ObjectId{1, 1}, "x", 0), 0u);
}

TEST(PlacementTest, DkeysSpreadAcrossTargets) {
  // A file's chunks (dkeys c0..c255) must hit every target of a 16-target
  // pool — that is what gives DFS its striping (§3.3).
  const ObjectId oid{3, 9};
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 256; ++i) {
    hits[PlaceDkey(oid, "c" + std::to_string(i), 16)]++;
  }
  for (int t = 0; t < 16; ++t) {
    EXPECT_GT(hits[t], 0) << "target " << t << " never used";
    EXPECT_LT(hits[t], 64) << "target " << t << " is a hotspot";
  }
}

TEST(PlacementTest, DifferentObjectsSpreadDifferently) {
  // Identical dkeys of different objects should not all colocate.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    const ObjectId a{std::uint64_t(i), 1};
    const ObjectId b{std::uint64_t(i), 2};
    if (PlaceDkey(a, "c0", 16) == PlaceDkey(b, "c0", 16)) ++same;
  }
  EXPECT_LT(same, 16);
}

TEST(PlacementTest, EngineLevelPlacementDeterministicAndSpread) {
  // Two-level placement: PlaceEngine picks the primary engine, replicas
  // live on the consecutive ring slots.
  const ObjectId oid{5, 21};
  EXPECT_EQ(PlaceEngine(oid, "dk", 3), PlaceEngine(oid, "dk", 3));
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 96; ++i) {
    hits[PlaceEngine(oid, "c" + std::to_string(i), 3)]++;
  }
  for (int e = 0; e < 3; ++e) {
    EXPECT_GT(hits[e], 0) << "engine " << e << " never primary";
  }
  EXPECT_EQ(PlaceEngine(oid, "dk", 0), 0u);
}

TEST(PlacementTest, HashKeyMatchesFnvProperties) {
  EXPECT_NE(HashKey("a"), HashKey("b"));
  EXPECT_NE(HashKey("ab"), HashKey("ba"));
  EXPECT_EQ(HashKey(""), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace ros2::daos
