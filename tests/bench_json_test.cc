// Tests for the experiments subsystem's ordered JSON model
// (src/bench/json.h): construction, insertion-order preservation,
// serialization, and the parser (round trips + malformed input).
#include "bench/json.h"

#include <string>

#include "gtest/gtest.h"

namespace ros2::bench {
namespace {

TEST(BenchJsonTest, ScalarConstructionAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(true).AsBool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_EQ(Json(3.5).AsNumber(), 3.5);
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_EQ(Json("hi").AsString(), "hi");
  EXPECT_EQ(Json(std::int64_t(42)).AsNumber(), 42.0);
}

TEST(BenchJsonTest, ObjectPreservesInsertionOrder) {
  Json object = Json::Object();
  object["zulu"] = 1;
  object["alpha"] = 2;
  object["mike"] = 3;
  ASSERT_EQ(object.members().size(), 3u);
  EXPECT_EQ(object.members()[0].first, "zulu");
  EXPECT_EQ(object.members()[1].first, "alpha");
  EXPECT_EQ(object.members()[2].first, "mike");
  // Compact dump preserves the same order.
  EXPECT_EQ(object.Dump(), "{\"zulu\":1, \"alpha\":2, \"mike\":3}");
}

TEST(BenchJsonTest, OperatorBracketUpdatesExistingKey) {
  Json object = Json::Object();
  object["key"] = 1;
  object["key"] = 2;
  ASSERT_EQ(object.members().size(), 1u);
  EXPECT_EQ(object.Find("key")->AsNumber(), 2.0);
}

TEST(BenchJsonTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(Json(3.0).Find("x"), nullptr);
  EXPECT_EQ(Json::Array().Find("x"), nullptr);
  Json object = Json::Object();
  EXPECT_EQ(object.Find("absent"), nullptr);
}

TEST(BenchJsonTest, ArrayAppend) {
  Json array = Json::Array();
  array.Append(1);
  array.Append("two");
  array.Append(Json::Object());
  ASSERT_EQ(array.size(), 3u);
  EXPECT_EQ(array.elements()[1].AsString(), "two");
  EXPECT_EQ(array.Dump(), "[1, \"two\", {}]");
}

TEST(BenchJsonTest, NumbersRenderIntegersWithoutExponent) {
  EXPECT_EQ(Json(123456789.0).Dump(), "123456789");
  EXPECT_EQ(Json(-4096).Dump(), "-4096");
  EXPECT_EQ(Json(0.25).Dump(), "0.25");
}

TEST(BenchJsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(BenchJsonTest, PrettyDumpIndents) {
  Json object = Json::Object();
  object["a"] = Json::Array();
  object["a"].Append(1);
  EXPECT_EQ(object.Dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(BenchJsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_EQ(Json::Parse("-12.5e2")->AsNumber(), -1250.0);
  EXPECT_EQ(Json::Parse("\"text\"")->AsString(), "text");
}

TEST(BenchJsonTest, ParseNestedDocument) {
  const std::string text =
      R"({"schema": "v1", "values": [1, 2.5, {"deep": true}], "n": null})";
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("schema")->AsString(), "v1");
  const Json* values = doc->Find("values");
  ASSERT_TRUE(values != nullptr);
  ASSERT_EQ(values->size(), 3u);
  EXPECT_EQ(values->elements()[1].AsNumber(), 2.5);
  EXPECT_TRUE(values->elements()[2].Find("deep")->AsBool());
  EXPECT_TRUE(doc->Find("n")->is_null());
}

TEST(BenchJsonTest, ParseStringEscapes) {
  auto doc = Json::Parse(R"("tab\tquote\"uA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "tab\tquote\"uA");
}

TEST(BenchJsonTest, RoundTripThroughDumpAndParse) {
  Json object = Json::Object();
  object["metrics"] = Json::Array();
  Json metric = Json::Object();
  metric["metric"] = "throughput";
  metric["value"] = 11459498499.5;
  metric["params"] = Json::Object();
  metric["params"]["stage"] = "data-preparation";
  object["metrics"].Append(std::move(metric));
  for (int indent : {-1, 2}) {
    auto reparsed = Json::Parse(object.Dump(indent));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->Dump(), object.Dump());
  }
}

TEST(BenchJsonTest, ParseErrorsAreInvalidArgument) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "\"unterminated", "12..5", "{} trailing",
        "{1: 2}"}) {
    auto doc = Json::Parse(bad);
    EXPECT_FALSE(doc.ok()) << "input: " << bad;
    EXPECT_EQ(doc.status().code(), ErrorCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace ros2::bench
