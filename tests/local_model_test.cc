// Shape tests for the Fig. 3 (local FIO/io_uring) model. Bands come from
// the paper's §4.2 "Results" paragraph.
#include "perf/local_fio_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::perf {
namespace {

double GiBps(const sim::ClosedLoopResult& r) {
  return r.bytes_per_sec / double(kGiB);
}

sim::ClosedLoopResult RunModel(std::uint32_t ssds, std::uint32_t jobs, OpKind op,
                          std::uint64_t bs, std::uint64_t ops = 20000) {
  LocalFioModel::Config config;
  config.num_ssds = ssds;
  config.num_jobs = jobs;
  config.op = op;
  config.block_size = bs;
  LocalFioModel model(config);
  return model.Run(ops);
}

TEST(LocalModelTest, OneSsdLargeReadSaturatesNearDeviceCeiling) {
  // Fig. 3a: sequential reads plateau ~5-5.6 GiB/s with one job.
  const auto r = RunModel(1, 1, OpKind::kRead, kMiB);
  EXPECT_GE(GiBps(r), 5.0);
  EXPECT_LE(GiBps(r), 5.7);
}

TEST(LocalModelTest, OneSsdLargeWritePlateau) {
  // Fig. 3a: writes plateau ~2.7 GiB/s.
  const auto r = RunModel(1, 1, OpKind::kWrite, kMiB);
  EXPECT_NEAR(GiBps(r), 2.7, 0.2);
}

TEST(LocalModelTest, MoreJobsDoNotHelpLargeBlocks) {
  // Fig. 3a: "additional jobs provide no gain" at 1 MiB.
  const double one = GiBps(RunModel(1, 1, OpKind::kRead, kMiB));
  const double sixteen = GiBps(RunModel(1, 16, OpKind::kRead, kMiB));
  EXPECT_NEAR(one, sixteen, one * 0.05);
}

TEST(LocalModelTest, FourSsdsScaleNearLinearlyAtLargeBlocks) {
  // Fig. 3c: reads ~20-22 GiB/s, writes ~10.6-10.7 GiB/s with 4 SSDs.
  const auto reads = RunModel(4, 4, OpKind::kRead, kMiB);
  EXPECT_GE(GiBps(reads), 20.0);
  EXPECT_LE(GiBps(reads), 22.5);
  const auto writes = RunModel(4, 4, OpKind::kWrite, kMiB);
  EXPECT_NEAR(GiBps(writes), 10.7, 0.5);
}

TEST(LocalModelTest, RandomTracksSequentialAtLargeBlocks) {
  // §4.2 (iii): at 1 MiB, random ~= sequential (transfer size dominates).
  const double seq = GiBps(RunModel(1, 4, OpKind::kRead, kMiB));
  const double rand = GiBps(RunModel(1, 4, OpKind::kRandRead, kMiB));
  EXPECT_NEAR(seq, rand, seq * 0.05);
}

TEST(LocalModelTest, SmallBlockIopsStartNear80K) {
  // Fig. 3b: ~80 K IOPS with one job.
  const auto r = RunModel(1, 1, OpKind::kRandRead, 4096);
  EXPECT_NEAR(r.ops_per_sec, 80'000, 8'000);
}

TEST(LocalModelTest, SmallBlockIopsScaleWithJobsToHostPathCap) {
  // Fig. 3b: grows to ~600 K at 16 jobs.
  const auto r16 = RunModel(1, 16, OpKind::kRandRead, 4096, 60000);
  EXPECT_GE(r16.ops_per_sec, 520'000);
  EXPECT_LE(r16.ops_per_sec, 680'000);
}

TEST(LocalModelTest, SmallBlockIopsMonotonicInJobs) {
  double prev = 0.0;
  for (std::uint32_t jobs : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = RunModel(1, jobs, OpKind::kRandRead, 4096, 40000);
    EXPECT_GT(r.ops_per_sec, prev * 0.99);
    prev = r.ops_per_sec;
  }
}

TEST(LocalModelTest, DriveCountDoesNotLiftSmallBlockIops) {
  // Fig. 3b vs 3d: same IOPS curve for 1 and 4 SSDs (host-path limit).
  const auto one = RunModel(1, 16, OpKind::kRandRead, 4096, 60000);
  const auto four = RunModel(4, 16, OpKind::kRandRead, 4096, 60000);
  EXPECT_NEAR(one.ops_per_sec, four.ops_per_sec, one.ops_per_sec * 0.1);
}

TEST(LocalModelTest, ReadLatencyAboveMediaFloor) {
  const auto r = RunModel(1, 1, OpKind::kRandRead, 4096);
  EXPECT_GE(r.latency.mean(), 80e-6);
  EXPECT_LE(r.latency.mean(), 400e-6);
}

struct GridCase {
  OpKind op;
  std::uint32_t ssds;
};

class LocalGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(LocalGridTest, ThroughputMonotonicInJobsFor4K) {
  // Property over the paper's whole Fig. 3 grid: adding jobs never hurts
  // 4 KiB IOPS (they saturate, not degrade).
  const auto [op, ssds] = GetParam();
  double prev = 0.0;
  for (std::uint32_t jobs : {1u, 2u, 4u, 8u, 16u}) {
    LocalFioModel::Config config;
    config.num_ssds = ssds;
    config.num_jobs = jobs;
    config.op = op;
    config.block_size = 4096;
    LocalFioModel model(config);
    const auto r = model.Run(30000);
    EXPECT_GE(r.ops_per_sec, prev * 0.98)
        << OpKindName(op) << " ssds=" << ssds << " jobs=" << jobs;
    prev = r.ops_per_sec;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LocalGridTest,
    ::testing::Values(GridCase{OpKind::kRead, 1}, GridCase{OpKind::kWrite, 1},
                      GridCase{OpKind::kRandRead, 1},
                      GridCase{OpKind::kRandWrite, 1},
                      GridCase{OpKind::kRead, 4},
                      GridCase{OpKind::kRandWrite, 4}));

}  // namespace
}  // namespace ros2::perf
