// Registered-memory pool tests: LRU bounds, lease pinning, hit/miss
// accounting, revocation interplay, and the owned (unpooled) lease path.
#include "net/mr_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "net/fabric.h"

namespace ros2::net {
namespace {

class MrCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ep = fabric_.CreateEndpoint("fabric://pool");
    ASSERT_TRUE(ep.ok());
    ep_ = *ep;
    pd_ = ep_->AllocPd();
  }

  MrCache& cache() { return ep_->mr_cache(); }

  net::Fabric fabric_;
  Endpoint* ep_ = nullptr;
  PdId pd_ = 0;
};

TEST_F(MrCacheTest, HitOnSameKeyMissOnDifferent) {
  Buffer a(4096);
  Buffer b(4096);
  {
    auto l1 = cache().Acquire(pd_, a, kRemoteRead);
    ASSERT_TRUE(l1.ok());
    EXPECT_EQ(cache().misses(), 1u);
    EXPECT_EQ(cache().hits(), 0u);
    EXPECT_EQ(cache().leased(), 1u);
  }
  EXPECT_EQ(cache().leased(), 0u);

  auto l2 = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(cache().hits(), 1u);
  EXPECT_EQ(cache().misses(), 1u);

  // Different buffer, different access, different length => misses.
  auto l3 = cache().Acquire(pd_, b, kRemoteRead);
  auto l4 = cache().Acquire(pd_, a, kRemoteWrite);
  auto l5 = cache().Acquire(
      pd_, std::span<std::byte>(a.data(), a.size() / 2), kRemoteRead);
  ASSERT_TRUE(l3.ok() && l4.ok() && l5.ok());
  EXPECT_EQ(cache().misses(), 4u);
  EXPECT_EQ(ep_->mr_count(), 4u);
}

TEST_F(MrCacheTest, SameRkeyAcrossHits) {
  Buffer a(1024);
  RKey first = 0;
  {
    auto l = cache().Acquire(pd_, a, kRemoteRead);
    ASSERT_TRUE(l.ok());
    first = l->rkey();
  }
  auto l = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->rkey(), first) << "hit must reuse the registration";
  EXPECT_EQ(ep_->mr_count(), 1u);
}

TEST_F(MrCacheTest, LruEvictionBeyondCapacity) {
  cache().set_capacity(4);
  std::vector<Buffer> buffers;
  for (int i = 0; i < 6; ++i) {
    buffers.emplace_back(512);
    auto l = cache().Acquire(pd_, buffers.back(), kRemoteRead);
    ASSERT_TRUE(l.ok());
  }
  EXPECT_EQ(cache().size(), 4u);
  EXPECT_EQ(cache().evictions(), 2u);
  EXPECT_EQ(ep_->mr_count(), 4u);
  // The oldest two were evicted: re-acquiring buffer 0 is a miss,
  // buffer 5 (most recent) is a hit.
  const auto misses = cache().misses();
  auto l0 = cache().Acquire(pd_, buffers[0], kRemoteRead);
  ASSERT_TRUE(l0.ok());
  EXPECT_EQ(cache().misses(), misses + 1);
  auto l5 = cache().Acquire(pd_, buffers[5], kRemoteRead);
  ASSERT_TRUE(l5.ok());
  EXPECT_EQ(cache().misses(), misses + 1);
}

TEST_F(MrCacheTest, LeasedEntriesAreNotEvicted) {
  cache().set_capacity(2);
  Buffer pinned(256);
  auto hold = cache().Acquire(pd_, pinned, kRemoteRead);
  ASSERT_TRUE(hold.ok());
  std::vector<Buffer> churn;
  for (int i = 0; i < 5; ++i) {
    churn.emplace_back(256);
    auto l = cache().Acquire(pd_, churn.back(), kRemoteRead);
    ASSERT_TRUE(l.ok());
  }
  // The pinned entry survived the churn and is still a hit.
  const auto hits = cache().hits();
  auto again = cache().Acquire(pd_, pinned, kRemoteRead);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache().hits(), hits + 1);
  EXPECT_EQ(again->rkey(), hold->rkey());
}

TEST_F(MrCacheTest, ClearSkipsLeasedEntries) {
  Buffer a(128);
  Buffer b(128);
  auto held = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(held.ok());
  { auto tmp = cache().Acquire(pd_, b, kRemoteRead); ASSERT_TRUE(tmp.ok()); }
  EXPECT_EQ(cache().Clear(), 1u);  // b dropped, a pinned by the lease
  EXPECT_EQ(cache().size(), 1u);
  EXPECT_EQ(ep_->mr_count(), 1u);
  held->Release();
  EXPECT_EQ(cache().Clear(), 1u);
  EXPECT_EQ(ep_->mr_count(), 0u);
}

TEST_F(MrCacheTest, RevokedEntryIsReRegisteredOnNextAcquire) {
  Buffer a(512);
  RKey first = 0;
  {
    auto l = cache().Acquire(pd_, a, kRemoteRead);
    ASSERT_TRUE(l.ok());
    first = l->rkey();
  }
  ASSERT_TRUE(ep_->RevokeMemory(first).ok());
  auto l = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(l.ok());
  EXPECT_NE(l->rkey(), first) << "revoked capability must not be reused";
  EXPECT_EQ(cache().misses(), 2u);
  EXPECT_EQ(ep_->mr_count(), 1u) << "stale registration dropped";
}

TEST_F(MrCacheTest, RevocationWithLiveLeaseParksEntryUntilRelease) {
  Buffer a(512);
  auto held = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(ep_->RevokeMemory(held->rkey()).ok());
  // Re-acquiring must mint a fresh registration while the stale entry —
  // still pinned by `held` — is parked, NOT freed under the lease.
  auto fresh = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->rkey(), held->rkey());
  EXPECT_EQ(cache().leased(), 2u);
  // Releasing the stale lease must be safe (no dangling entry) and the
  // accounting must drain to zero.
  held->Release();
  EXPECT_EQ(cache().leased(), 1u);
  fresh->Release();
  EXPECT_EQ(cache().leased(), 0u);
  EXPECT_EQ(cache().size(), 1u) << "only the fresh entry remains cached";
  EXPECT_EQ(ep_->mr_count(), 1u);
}

TEST_F(MrCacheTest, OverlappingRegistrationsDeregisterIndependently) {
  // ibv_reg_mr semantics: two MRs over the same bytes each hold their
  // pages; dropping one must not invalidate the other.
  Buffer a(8192);
  auto read_mr = *ep_->RegisterMemory(pd_, a, kRemoteRead);
  auto write_mr = *ep_->RegisterMemory(pd_, a, kRemoteWrite);
  ASSERT_TRUE(ep_->DeregisterMemory(read_mr.rkey).ok());
  EXPECT_EQ(ep_->mr_count(), 1u);
  ASSERT_TRUE(ep_->DeregisterMemory(write_mr.rkey).ok());
  EXPECT_EQ(ep_->mr_count(), 0u);
}

TEST_F(MrCacheTest, RegistrationFailurePropagates) {
  Buffer a(64);
  ep_->InjectRegisterFaults(/*skip=*/0, /*count=*/1);
  EXPECT_EQ(cache().Acquire(pd_, a, kRemoteRead).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(cache().size(), 0u);
  EXPECT_EQ(cache().leased(), 0u);
}

TEST_F(MrCacheTest, OwnedLeaseDeregistersOnRelease) {
  Buffer a(256);
  {
    auto lease = MrLease::Register(ep_, pd_, a, kRemoteWrite);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(ep_->mr_count(), 1u);
  }
  EXPECT_EQ(ep_->mr_count(), 0u);
  EXPECT_EQ(cache().size(), 0u) << "owned leases bypass the cache";
}

TEST_F(MrCacheTest, MoveTransfersOwnership) {
  Buffer a(256);
  auto lease = cache().Acquire(pd_, a, kRemoteRead);
  ASSERT_TRUE(lease.ok());
  MrLease moved = std::move(*lease);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(cache().leased(), 1u);
  moved.Release();
  EXPECT_EQ(cache().leased(), 0u);
  moved.Release();  // idempotent
  EXPECT_EQ(cache().leased(), 0u);
}

TEST_F(MrCacheTest, SetCapacityEvictsDown) {
  std::vector<Buffer> buffers;
  for (int i = 0; i < 8; ++i) {
    buffers.emplace_back(64);
    auto l = cache().Acquire(pd_, buffers.back(), kRemoteRead);
    ASSERT_TRUE(l.ok());
  }
  EXPECT_EQ(cache().size(), 8u);
  cache().set_capacity(3);
  EXPECT_EQ(cache().size(), 3u);
  EXPECT_EQ(ep_->mr_count(), 3u);
}

TEST_F(MrCacheTest, ConcurrentAcquireReleaseKeepsAccountsConsistent) {
  // Contention storm: several threads acquire/release overlapping buffer
  // sets through one cache while capacity pressure forces evictions. The
  // invariants — every lease's MR is live while held, counters balance,
  // no entry double-freed — must survive; TSan keeps the locking honest.
  cache().set_capacity(4);
  constexpr int kThreads = 4;
  constexpr int kBuffersPerThread = 6;
  constexpr int kRounds = 200;
  std::vector<std::vector<Buffer>> buffers(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kBuffersPerThread; ++i) {
      // Overlapping working sets: thread t uses buffers [t, t+3).
      buffers[std::size_t(t)].emplace_back(64 * (std::size_t(i) + 1));
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto& mine = buffers[std::size_t(t)];
      for (int r = 0; r < kRounds; ++r) {
        auto lease = cache().Acquire(
            pd_, mine[std::size_t(r) % mine.size()], kRemoteRead);
        if (!lease.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // While held, the lease's registration must be live: a pinned
        // entry is never evicted out from under its holder.
        MemoryRegion live;
        if (!ep_->FindMr(lease->rkey(), &live) || live.revoked) {
          failures.fetch_add(1);
        }
      }  // lease releases here
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache().leased(), 0u);
  EXPECT_LE(cache().size(), 4u);
  EXPECT_EQ(cache().hits() + cache().misses(),
            std::uint64_t(kThreads) * kRounds);
  // Every cached entry still registered exactly once.
  EXPECT_EQ(ep_->mr_count(), cache().size());
}

}  // namespace
}  // namespace ros2::net
