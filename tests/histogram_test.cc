#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace ros2 {
namespace {

/// Reference bucket mapping: the pre-optimization formula (libm log2 per
/// record). The table-driven BucketIndex self-calibrates against this
/// process's libm at init and must agree EVERYWHERE — including the top
/// few ulps of each binade, where log2 rounds up to the next integer.
int ReferenceBucketIndex(double seconds) {
  constexpr int kExponents = 40;
  constexpr int kSubBuckets = 32;
  constexpr double kUnit = 1e-9;
  const double units = std::max(seconds / kUnit, 1.0);
  int exponent = std::min(int(std::floor(std::log2(units))), kExponents - 1);
  const double base = std::exp2(double(exponent));
  int sub = int((units - base) / base * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return exponent * kSubBuckets + sub;
}

TEST(HistogramTest, BucketIndexMatchesLog2Reference) {
  Rng rng(42);
  for (int e = 0; e <= 45; ++e) {
    const double lo = std::exp2(double(e)) * 1e-9;
    // Random interior points of the binade.
    for (int i = 0; i < 200; ++i) {
      const double s = lo * (1.0 + rng.NextDouble());
      ASSERT_EQ(LatencyHistogram::BucketIndex(s), ReferenceBucketIndex(s))
          << "interior seconds=" << s;
    }
    // The top ulps of the binade, where libm log2 may round up, and the
    // exact binade boundary itself.
    double s = std::nextafter(lo * 2.0, 0.0);
    for (int i = 0; i < 80; ++i) {
      ASSERT_EQ(LatencyHistogram::BucketIndex(s), ReferenceBucketIndex(s))
          << "edge seconds=" << s;
      s = std::nextafter(s, 0.0);
    }
    ASSERT_EQ(LatencyHistogram::BucketIndex(lo), ReferenceBucketIndex(lo));
    ASSERT_EQ(LatencyHistogram::BucketIndex(lo * 2.0),
              ReferenceBucketIndex(lo * 2.0));
  }
  // Below the 1ns floor and at the clamped top end.
  ASSERT_EQ(LatencyHistogram::BucketIndex(1e-12),
            ReferenceBucketIndex(1e-12));
  ASSERT_EQ(LatencyHistogram::BucketIndex(5000.0),
            ReferenceBucketIndex(5000.0));
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(100 * kUsec);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 100 * kUsec);
  EXPECT_DOUBLE_EQ(h.max(), 100 * kUsec);
  // Bucketed value within ~3.5% of the recorded one.
  EXPECT_NEAR(h.p50(), 100 * kUsec, 3.5e-6);
}

TEST(HistogramTest, MeanIsExact) {
  LatencyHistogram h;
  h.Record(1 * kUsec);
  h.Record(3 * kUsec);
  EXPECT_DOUBLE_EQ(h.mean(), 2 * kUsec);
}

TEST(HistogramTest, QuantilesAreOrdered) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.Record((1.0 + rng.NextDouble() * 999.0) * kUsec);
  }
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max() * 1.05);
  EXPECT_GE(h.p50(), h.min() * 0.95);
}

TEST(HistogramTest, UniformQuantileAccuracy) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextDouble() * kMsec);  // U(0, 1ms)
  }
  EXPECT_NEAR(h.p50(), 0.5 * kMsec, 0.05 * kMsec);
  EXPECT_NEAR(h.Quantile(0.9), 0.9 * kMsec, 0.05 * kMsec);
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10 * kUsec);
  b.Record(20 * kUsec);
  b.Record(30 * kUsec);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 10 * kUsec);
  EXPECT_DOUBLE_EQ(a.max(), 30 * kUsec);
  EXPECT_DOUBLE_EQ(a.mean(), 20 * kUsec);
}

TEST(HistogramTest, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(5 * kUsec);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 5 * kUsec);
}

TEST(HistogramTest, MergeIsBitExactAgainstSingleRecording) {
  // The shard-fold contract telemetry::Histogram leans on: merging
  // per-shard histograms must reproduce EXACTLY what one histogram fed
  // the same samples reports — not approximately. Samples are multiples
  // of 2^-20 with a total well inside the 53-bit mantissa, so every
  // partial sum is exact under any association and bit-equality is a
  // fair expectation (no tolerance hides a real fold bug).
  Rng rng(7);
  LatencyHistogram single;
  LatencyHistogram shards[4];
  constexpr double kStep = 0x1.0p-20;
  for (int i = 0; i < 4096; ++i) {
    const double v = double(1 + rng.Below(1u << 20)) * kStep;
    single.Record(v);
    shards[i % 4].Record(v);
  }
  LatencyHistogram merged;
  for (const auto& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.sum(), single.sum());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  EXPECT_EQ(merged.mean(), single.mean());
  EXPECT_EQ(merged.p50(), single.p50());
  EXPECT_EQ(merged.p99(), single.p99());
  EXPECT_EQ(merged.p999(), single.p999());
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(kMsec);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, NonPositiveClampedToFloor) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.p50(), 0.0);
}

TEST(HistogramTest, WideDynamicRange) {
  LatencyHistogram h;
  h.Record(1e-9);   // 1 ns
  h.Record(10.0);   // 10 s
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LT(h.Quantile(0.25), 1e-7);
  EXPECT_GT(h.Quantile(0.99), 1.0);
}

// Pinned regression for the first UBSan finding: BucketIndex used to
// compute `int((units - base) * scale)` even for overflow binades, which
// is float-cast-overflow UB for values past 2^65 ns (and for the +inf and
// NaN a caller can feed Record). The fix short-circuits those to the last
// bucket — the same bucket the old clamp reached whenever the cast
// happened to be representable, so every previously-defined input maps
// identically (MergeIsBitExactAgainstSingleRecording above still pins the
// finite mapping).
TEST(HistogramTest, NonFiniteAndHugeValuesAreDefined) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const int last = 40 * 32 - 1;  // kExponents * kSubBuckets - 1

  // Overflow binades all land in the last bucket, no UB on the way.
  EXPECT_EQ(LatencyHistogram::BucketIndex(inf), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(nan), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e300), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e30), last);   // 2^~96 units
  EXPECT_EQ(LatencyHistogram::BucketIndex(1200.0), last);  // finite, > range

  // NaN now takes the non-positive fallback (!(x > 0)) instead of
  // poisoning min/max/sum; inf records as a plain last-bucket sample.
  LatencyHistogram h;
  h.Record(nan);
  h.Record(inf);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1e-9);  // the NaN fallback value, not NaN
  EXPECT_GT(h.sum(), 0.0);   // inf-contaminated but not NaN
  EXPECT_GT(h.p50(), 0.0);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramAccuracyTest, RelativeErrorBounded) {
  const double value = GetParam();
  LatencyHistogram h;
  h.Record(value);
  // Log-bucketing with 32 sub-buckets: <= ~1/32 relative error plus
  // midpoint rounding.
  EXPECT_NEAR(h.p50(), value, value / 16.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramAccuracyTest,
                         ::testing::Values(2e-9, 1e-6, 12.5e-6, 83e-6,
                                           1.7e-3, 0.42, 3.0));

}  // namespace
}  // namespace ros2
