#include "common/table.h"

#include <gtest/gtest.h>

namespace ros2 {
namespace {

TEST(TableTest, RendersHeaderAndRule) {
  AsciiTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(TableTest, NumericCellsRightAligned) {
  AsciiTable table({"metric", "count"});
  table.AddRow({"ops", "5"});
  table.AddRow({"bytes", "12345"});
  const std::string out = table.Render();
  // "5" should be padded on the left to the width of "12345".
  EXPECT_NE(out.find("|     5 |"), std::string::npos);
}

TEST(TableTest, TextCellsLeftAligned) {
  AsciiTable table({"aaaa", "bbbb"});
  table.AddRow({"x", "y"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| x    |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  AsciiTable table({"a", "b", "c"});
  table.AddRow({"only"});
  const std::string out = table.Render();
  // Three columns render even though the row had one cell.
  int pipes = 0;
  for (char ch : out) {
    if (ch == '|') ++pipes;
  }
  // 3 lines x 4 pipes.
  EXPECT_EQ(pipes, 12);
}

TEST(TableTest, ColumnWidthTracksWidestCell) {
  AsciiTable table({"h"});
  table.AddRow({"wide-cell-content"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| wide-cell-content |"), std::string::npos);
  EXPECT_NE(out.find("| h                 |"), std::string::npos);
}

}  // namespace
}  // namespace ros2
