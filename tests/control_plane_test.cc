#include "core/control_plane.h"

#include <gtest/gtest.h>

#include "rpc/wire.h"

namespace ros2::core {
namespace {

class ControlPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TenantConfig config;
    config.name = "tenant";
    config.auth_token = "tok";
    config.rate_limit_bps = 1000.0;
    config.burst_bytes = 500;
    ASSERT_TRUE(tenants_.Register(config).ok());
    control_ = std::make_unique<Ros2ControlService>(&tenants_, &fabric_,
                                                    "pool0", "posix");
    channel_ = std::make_unique<rpc::ControlChannel>(control_->service());
  }

  Result<std::uint64_t> Auth(const std::string& name,
                             const std::string& token) {
    rpc::Encoder enc;
    enc.Str(name).Str(token);
    auto reply = channel_->Call("ros2.auth", enc.buffer());
    if (!reply.ok()) return reply.status();
    rpc::Decoder dec(*reply);
    return dec.U64();
  }

  core::TenantRegistry tenants_;
  net::Fabric fabric_;
  std::unique_ptr<Ros2ControlService> control_;
  std::unique_ptr<rpc::ControlChannel> channel_;
};

TEST_F(ControlPlaneTest, AuthIssuesSession) {
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  auto info = control_->FindSession(*session);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->tenant, 1u);
}

TEST_F(ControlPlaneTest, AuthRejectsBadCredentials) {
  EXPECT_EQ(Auth("tenant", "bad").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(Auth("ghost", "tok").status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(ControlPlaneTest, SessionsAreDistinct) {
  auto s1 = Auth("tenant", "tok");
  auto s2 = Auth("tenant", "tok");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(control_->sessions_opened(), 2u);
}

TEST_F(ControlPlaneTest, MountReturnsLabels) {
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  rpc::Encoder enc;
  enc.U64(*session);
  auto reply = channel_->Call("ros2.mount", enc.buffer());
  ASSERT_TRUE(reply.ok());
  rpc::Decoder dec(*reply);
  EXPECT_EQ(dec.Str().value(), "pool0");
  EXPECT_EQ(dec.Str().value(), "posix");
}

TEST_F(ControlPlaneTest, MountNeedsValidSession) {
  rpc::Encoder enc;
  enc.U64(999);
  EXPECT_EQ(channel_->Call("ros2.mount", enc.buffer()).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ControlPlaneTest, QosGrantEnforcesTenantBucket) {
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  auto grant = [&](std::uint64_t bytes) {
    rpc::Encoder enc;
    enc.U64(*session).U64(bytes);
    return channel_->Call("ros2.grant_qos", enc.buffer()).status();
  };
  EXPECT_TRUE(grant(500).ok());  // burst
  EXPECT_EQ(grant(100).code(), ErrorCode::kResourceExhausted);
  fabric_.AdvanceTime(0.2);  // refill 200 tokens
  EXPECT_TRUE(grant(100).ok());
}

TEST_F(ControlPlaneTest, ExchangeMrRecordsDescriptors) {
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  rpc::Encoder enc;
  enc.U64(*session).U64(0x1000).U64(4096).U64(0xCAFE);
  ASSERT_TRUE(channel_->Call("ros2.exchange_mr", enc.buffer()).ok());
  const auto* mrs = control_->SessionMrs(*session);
  ASSERT_NE(mrs, nullptr);
  ASSERT_EQ(mrs->size(), 1u);
  EXPECT_EQ((*mrs)[0].addr, 0x1000u);
  EXPECT_EQ((*mrs)[0].len, 4096u);
  EXPECT_EQ((*mrs)[0].rkey, 0xCAFEu);
}

TEST_F(ControlPlaneTest, ExchangeMrNeedsSession) {
  rpc::Encoder enc;
  enc.U64(12345).U64(0).U64(0).U64(0);
  EXPECT_EQ(
      channel_->Call("ros2.exchange_mr", enc.buffer()).status().code(),
      ErrorCode::kNotFound);
  EXPECT_EQ(control_->SessionMrs(12345), nullptr);
}

TEST_F(ControlPlaneTest, PoolMapPublishesVersionedEngineStates) {
  daos::PoolMap map(3);
  control_->set_pool_map(&map);
  ASSERT_TRUE(map.SetState(1, daos::EngineState::kRebuilding).ok());
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  rpc::Encoder enc;
  enc.U64(*session);
  auto reply = channel_->Call("ros2.pool_map", enc.buffer());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  rpc::Decoder dec(*reply);
  EXPECT_EQ(dec.U64().value(), map.version());
  ASSERT_EQ(dec.U32().value(), 3u);
  EXPECT_EQ(dec.U8().value(), std::uint8_t(daos::EngineState::kUp));
  EXPECT_EQ(dec.U8().value(),
            std::uint8_t(daos::EngineState::kRebuilding));
  EXPECT_EQ(dec.U8().value(), std::uint8_t(daos::EngineState::kUp));
}

TEST_F(ControlPlaneTest, PoolMapNeedsSessionAndAttachment) {
  // Without an attached map the method reports FAILED_PRECONDITION (but
  // only to authenticated sessions).
  auto session = Auth("tenant", "tok");
  ASSERT_TRUE(session.ok());
  rpc::Encoder enc;
  enc.U64(*session);
  EXPECT_EQ(channel_->Call("ros2.pool_map", enc.buffer()).status().code(),
            ErrorCode::kFailedPrecondition);
  daos::PoolMap map(2);
  control_->set_pool_map(&map);
  rpc::Encoder bad;
  bad.U64(999);
  EXPECT_EQ(channel_->Call("ros2.pool_map", bad.buffer()).status().code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace ros2::core
