// Property/fuzz test: the versioned object store against a reference
// model. Thousands of randomized updates/fetches/punches/aggregations on
// one array must always agree with a plain byte-map that applies the same
// operations — across seeds (TEST_P) and at historical epochs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "daos/vos.h"

namespace ros2::daos {
namespace {

/// Reference: full array materialized per retained epoch.
class ReferenceArray {
 public:
  void Update(Epoch epoch, std::uint64_t offset,
              std::span<const std::byte> data) {
    Buffer& head = HeadFor(epoch);
    if (head.size() < offset + data.size()) {
      head.resize(offset + data.size(), std::byte(0));
    }
    std::copy(data.begin(), data.end(),
              head.begin() + std::ptrdiff_t(offset));
  }

  void Punch(Epoch epoch) { HeadFor(epoch).clear(); }

  /// Content visible at `epoch` (kEpochHead = latest).
  Buffer At(Epoch epoch) const {
    if (versions_.empty()) return {};
    if (epoch == kEpochHead) return versions_.rbegin()->second;
    auto it = versions_.upper_bound(epoch);
    if (it == versions_.begin()) return {};
    return std::prev(it)->second;
  }

 private:
  Buffer& HeadFor(Epoch epoch) {
    Buffer head = At(kEpochHead);
    return versions_[epoch] = std::move(head);
  }

  std::map<Epoch, Buffer> versions_;
};

class VosFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  VosFuzzTest() {
    storage::NvmeDeviceConfig config;
    config.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(config);
    bdev_ = std::make_unique<spdk::Bdev>(device_.get());
    scm_ = std::make_unique<scm::PmemPool>(64 * kMiB);
    vos_ = std::make_unique<Vos>(scm_.get(), bdev_.get());
  }

  void CheckAgainstReference(const ReferenceArray& ref, Epoch epoch) {
    const Buffer expect = ref.At(epoch);
    // Read a window larger than the reference to also check the tail hole.
    Buffer got(expect.size() + 64);
    ASSERT_TRUE(
        vos_->FetchArray(oid_, "dk", "ak", epoch, 0, got).ok());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << "epoch " << epoch << " byte " << i;
    }
    for (std::size_t i = expect.size(); i < got.size(); ++i) {
      ASSERT_EQ(got[i], std::byte(0)) << "tail byte " << i;
    }
  }

  const ObjectId oid_{1, 1};
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<spdk::Bdev> bdev_;
  std::unique_ptr<scm::PmemPool> scm_;
  std::unique_ptr<Vos> vos_;
};

TEST_P(VosFuzzTest, RandomOpsMatchReference) {
  Rng rng(GetParam());
  ReferenceArray ref;
  Epoch epoch = 0;
  std::vector<Epoch> checkpoints;

  constexpr std::uint64_t kArraySpan = 256 * 1024;
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t dice = rng.Below(100);
    if (dice < 70) {
      // Update: random offset/length (spans SCM and NVMe tiers).
      const std::uint64_t offset = rng.Below(kArraySpan);
      const std::uint64_t length = 1 + rng.Below(130 * 1024);
      Buffer data = MakePatternBuffer(length, rng.Next(), offset);
      ++epoch;
      ASSERT_TRUE(
          vos_->UpdateArray(oid_, "dk", "ak", epoch, offset, data).ok());
      ref.Update(epoch, offset, data);
    } else if (dice < 78) {
      // Punch the akey.
      ++epoch;
      Status punched = vos_->PunchAkey(oid_, "dk", "ak", epoch);
      if (punched.ok()) ref.Punch(epoch);
    } else if (dice < 85 && epoch > 0) {
      // Aggregate up to a random past epoch; visibility must not change
      // at or above the aggregation point.
      const Epoch upto = 1 + rng.Below(epoch);
      Status agg = vos_->AggregateArray(oid_, "dk", "ak", upto);
      if (agg.ok()) {
        // Checkpoints below `upto` collapse to the aggregated state; drop
        // them from the set we verify at historical epochs.
        std::erase_if(checkpoints,
                      [upto](Epoch e) { return e < upto; });
      }
    } else if (dice < 95) {
      // Random-window fetch against the reference head.
      const Buffer head = ref.At(kEpochHead);
      const std::uint64_t offset = rng.Below(kArraySpan);
      const std::uint64_t length = 1 + rng.Below(8192);
      Buffer got(length);
      ASSERT_TRUE(vos_
                      ->FetchArray(oid_, "dk", "ak", kEpochHead, offset,
                                   got)
                      .ok());
      for (std::uint64_t i = 0; i < length; ++i) {
        const std::uint64_t pos = offset + i;
        const std::byte expect =
            pos < head.size() ? head[pos] : std::byte(0);
        ASSERT_EQ(got[i], expect) << "step " << step << " pos " << pos;
      }
    } else {
      checkpoints.push_back(epoch);
    }
  }

  // Full verification at HEAD and at every retained checkpoint epoch.
  CheckAgainstReference(ref, kEpochHead);
  for (Epoch checkpoint : checkpoints) {
    if (checkpoint == 0) continue;
    CheckAgainstReference(ref, checkpoint);
  }
}

TEST_P(VosFuzzTest, SingleValuesMatchLastWriterPerEpoch) {
  Rng rng(GetParam() ^ 0xABCD);
  std::map<Epoch, Buffer> reference;
  Epoch epoch = 0;
  for (int step = 0; step < 200; ++step) {
    ++epoch;
    Buffer value = MakePatternBuffer(1 + rng.Below(512), rng.Next());
    ASSERT_TRUE(
        vos_->UpdateSingle(oid_, "meta", "kv", epoch, value).ok());
    reference[epoch] = std::move(value);
  }
  // Spot-check 50 random historical epochs plus HEAD.
  for (int check = 0; check < 50; ++check) {
    const Epoch at = 1 + rng.Below(epoch);
    auto got = vos_->FetchSingle(oid_, "meta", "kv", at);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, reference.at(at));
  }
  auto head = vos_->FetchSingle(oid_, "meta", "kv", kEpochHead);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, reference.rbegin()->second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VosFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ros2::daos
