#include "net/fabric.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bytes.h"

namespace ros2::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = fabric_.CreateEndpoint("fabric://a");
    auto b = fabric_.CreateEndpoint("fabric://b");
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = *a;
    b_ = *b;
    pd_a_ = a_->AllocPd();
    pd_b_ = b_->AllocPd();
  }

  Qp* Connect(Transport transport) {
    auto qp = a_->Connect(b_, transport, pd_a_, pd_b_);
    EXPECT_TRUE(qp.ok());
    return qp.ok() ? *qp : nullptr;
  }

  Fabric fabric_;
  Endpoint* a_ = nullptr;
  Endpoint* b_ = nullptr;
  PdId pd_a_ = 0;
  PdId pd_b_ = 0;
};

TEST_F(FabricTest, EndpointAddressesUnique) {
  EXPECT_EQ(fabric_.CreateEndpoint("fabric://a").status().code(),
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fabric_.Lookup("fabric://a").ok());
  EXPECT_EQ(fabric_.Lookup("fabric://zzz").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FabricTest, SendRecvBothTransports) {
  for (Transport t : {Transport::kTcp, Transport::kRdma}) {
    Qp* qp = Connect(t);
    ASSERT_NE(qp, nullptr);
    Buffer msg = MakePatternBuffer(256, 1);
    ASSERT_TRUE(qp->Send(msg).ok());
    ASSERT_TRUE(qp->peer()->HasMessage());
    auto received = qp->peer()->Recv();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received->payload, msg);
    // Reply direction.
    ASSERT_TRUE(qp->peer()->Send(msg).ok());
    EXPECT_TRUE(qp->Recv().ok());
  }
}

TEST_F(FabricTest, RecvOnEmptyQueue) {
  Qp* qp = Connect(Transport::kRdma);
  EXPECT_EQ(qp->Recv().status().code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, MessagesDeliveredInOrder) {
  Qp* qp = Connect(Transport::kTcp);
  for (std::uint8_t i = 0; i < 10; ++i) {
    Buffer msg{std::byte(i)};
    ASSERT_TRUE(qp->Send(msg).ok());
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    auto msg = qp->peer()->Recv();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->payload[0], std::byte(i));
  }
}

TEST_F(FabricTest, RdmaReadPullsRemoteMemory) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote = MakePatternBuffer(4096, 9);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead);
  ASSERT_TRUE(mr.ok());

  Buffer local(4096);
  ASSERT_TRUE(qp->RdmaRead(local, mr->addr, mr->rkey).ok());
  EXPECT_EQ(local, remote);
  EXPECT_EQ(qp->bytes_one_sided(), 4096u);
}

TEST_F(FabricTest, RdmaWritePushesIntoRemoteMemory) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote(4096);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteWrite);
  ASSERT_TRUE(mr.ok());

  Buffer local = MakePatternBuffer(4096, 4);
  ASSERT_TRUE(qp->RdmaWrite(local, mr->addr, mr->rkey).ok());
  EXPECT_EQ(remote, local);
}

TEST_F(FabricTest, RdmaIntoSubrange) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote = MakePatternBuffer(4096, 2);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  Buffer local(100);
  ASSERT_TRUE(qp->RdmaRead(local, mr->addr + 1000, mr->rkey).ok());
  EXPECT_EQ(VerifyPattern(local, 2, 1000), -1);
}

TEST_F(FabricTest, OneSidedOpsRefusedOnTcp) {
  Qp* qp = Connect(Transport::kTcp);
  Buffer remote(128);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead | kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  Buffer local(128);
  EXPECT_EQ(qp->RdmaRead(local, mr->addr, mr->rkey).code(),
            ErrorCode::kUnimplemented);
  EXPECT_EQ(qp->RdmaWrite(local, mr->addr, mr->rkey).code(),
            ErrorCode::kUnimplemented);
}

TEST_F(FabricTest, ConnectValidatesPds) {
  EXPECT_EQ(a_->Connect(b_, Transport::kRdma, 999, pd_b_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a_->Connect(b_, Transport::kRdma, pd_a_, 999).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a_->Connect(nullptr, Transport::kRdma, pd_a_, pd_b_)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FabricTest, RegisterValidation) {
  Buffer region(64);
  EXPECT_EQ(a_->RegisterMemory(999, region, kRemoteRead).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(
      a_->RegisterMemory(pd_a_, std::span<std::byte>(), kRemoteRead)
          .status()
          .code(),
      ErrorCode::kInvalidArgument);
}

TEST_F(FabricTest, DeregisterRemovesMr) {
  Buffer region(64);
  auto mr = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(a_->mr_count(), 1u);
  ASSERT_TRUE(a_->DeregisterMemory(mr->rkey).ok());
  EXPECT_EQ(a_->mr_count(), 0u);
  EXPECT_EQ(a_->DeregisterMemory(mr->rkey).code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, RkeysNeverReused) {
  Buffer region(64);
  auto mr1 = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr1.ok());
  ASSERT_TRUE(a_->DeregisterMemory(mr1->rkey).ok());
  auto mr2 = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr2.ok());
  EXPECT_NE(mr1->rkey, mr2->rkey);
}

TEST_F(FabricTest, PdTenantTracked) {
  const PdId pd = a_->AllocPd(/*tenant=*/7);
  auto tenant = a_->PdTenant(pd);
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(*tenant, 7u);
  EXPECT_EQ(a_->PdTenant(12345).status().code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, LogicalClockAdvances) {
  EXPECT_DOUBLE_EQ(fabric_.now(), 0.0);
  fabric_.AdvanceTime(1.5);
  fabric_.AdvanceTime(0.5);
  EXPECT_DOUBLE_EQ(fabric_.now(), 2.0);
}

// ------------------------------------------------------------- PollSet

TEST_F(FabricTest, PollSetDrainServicesOnlyReadyQps) {
  // Three server-side QPs in the set; messages on two of them.
  std::vector<Qp*> server_qps;
  for (int i = 0; i < 3; ++i) {
    Qp* qp = Connect(Transport::kRdma);
    ASSERT_NE(qp, nullptr);
    server_qps.push_back(qp->peer());
  }
  PollSet set;
  for (Qp* qp : server_qps) ASSERT_TRUE(set.Add(qp).ok());
  EXPECT_EQ(set.member_count(), 3u);
  EXPECT_FALSE(set.has_ready());

  Buffer msg = MakePatternBuffer(16, 1);
  ASSERT_TRUE(server_qps[0]->peer()->Send(msg).ok());
  ASSERT_TRUE(server_qps[2]->peer()->Send(msg).ok());
  ASSERT_TRUE(server_qps[2]->peer()->Send(msg).ok());  // same edge

  std::vector<Qp*> drained;
  EXPECT_EQ(set.Drain([&](Qp* qp) {
              drained.push_back(qp);
              while (qp->HasMessage()) (void)qp->Recv();
            }),
            2u)
      << "only the two ready QPs get serviced — no per-QP scan semantics";
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], server_qps[0]);
  EXPECT_EQ(drained[1], server_qps[2]);
  // Nothing ready: an idle drain services nobody.
  EXPECT_EQ(set.Drain([&](Qp*) { FAIL() << "idle drain ran a qp"; }), 0u);
}

TEST_F(FabricTest, PollSetRearmsUndrainedQps) {
  Qp* client = Connect(Transport::kTcp);
  ASSERT_NE(client, nullptr);
  PollSet set;
  ASSERT_TRUE(set.Add(client->peer()).ok());
  Buffer msg = MakePatternBuffer(8, 2);
  ASSERT_TRUE(client->Send(msg).ok());
  ASSERT_TRUE(client->Send(msg).ok());
  // A handler that consumes only ONE message (bailed early): the edge was
  // spent, but the set re-raises it so the leftover is not stranded.
  EXPECT_EQ(set.Drain([](Qp* qp) { (void)qp->Recv(); }), 1u);
  EXPECT_TRUE(set.has_ready());
  EXPECT_EQ(set.Drain([](Qp* qp) { (void)qp->Recv(); }), 1u);
  EXPECT_FALSE(set.has_ready());
}

TEST_F(FabricTest, PollSetAddWithQueuedMessagesIsReady) {
  Qp* client = Connect(Transport::kRdma);
  ASSERT_NE(client, nullptr);
  Buffer msg = MakePatternBuffer(8, 3);
  ASSERT_TRUE(client->Send(msg).ok());  // arrives BEFORE registration
  PollSet set;
  ASSERT_TRUE(set.Add(client->peer()).ok());
  EXPECT_TRUE(set.has_ready());
  EXPECT_EQ(set.Drain([](Qp* qp) {
              while (qp->HasMessage()) (void)qp->Recv();
            }),
            1u);
}

TEST_F(FabricTest, PollSetMembershipIsExclusiveAndIdempotent) {
  Qp* client = Connect(Transport::kRdma);
  ASSERT_NE(client, nullptr);
  Qp* server_qp = client->peer();
  PollSet set_a;
  PollSet set_b;
  ASSERT_TRUE(set_a.Add(server_qp).ok());
  EXPECT_TRUE(set_a.Add(server_qp).ok());  // idempotent re-add
  EXPECT_EQ(set_a.member_count(), 1u);
  EXPECT_EQ(set_b.Add(server_qp).code(), ErrorCode::kFailedPrecondition);
  set_a.Remove(server_qp);
  EXPECT_EQ(set_a.member_count(), 0u);
  EXPECT_TRUE(set_b.Add(server_qp).ok());
}

TEST_F(FabricTest, PollSetDetachesOnDestruction) {
  Qp* client = Connect(Transport::kRdma);
  ASSERT_NE(client, nullptr);
  {
    PollSet set;
    ASSERT_TRUE(set.Add(client->peer()).ok());
  }
  // The set died registered; sends must not touch the dead set.
  Buffer msg = MakePatternBuffer(8, 4);
  EXPECT_TRUE(client->Send(msg).ok());
  EXPECT_TRUE(client->peer()->HasMessage());
}

TEST_F(FabricTest, PollSetAcceptHookAutoRegistersAcceptedQps) {
  PollSet set;
  b_->set_accept_poll_set(&set);
  Qp* q1 = Connect(Transport::kRdma);
  Qp* q2 = Connect(Transport::kTcp);
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q2, nullptr);
  // Only b_'s accepted halves joined the set — not the initiator side.
  EXPECT_EQ(set.member_count(), 2u);
  Buffer msg = MakePatternBuffer(8, 5);
  ASSERT_TRUE(q1->Send(msg).ok());
  ASSERT_TRUE(q2->Send(msg).ok());
  int serviced = 0;
  set.Drain([&](Qp* qp) {
    ++serviced;
    while (qp->HasMessage()) (void)qp->Recv();
  });
  EXPECT_EQ(serviced, 2);
  b_->set_accept_poll_set(nullptr);
  Qp* q3 = Connect(Transport::kRdma);
  ASSERT_NE(q3, nullptr);
  EXPECT_EQ(set.member_count(), 2u) << "hook cleared; no auto-register";
}

TEST_F(FabricTest, PollSetDoorbellRingsOncePerArmCycle) {
  Qp* client = Connect(Transport::kRdma);
  ASSERT_NE(client, nullptr);
  PollSet set;
  ASSERT_TRUE(set.Add(client->peer()).ok());
  const std::uint64_t doorbells_before = set.doorbells();
  Buffer msg = MakePatternBuffer(8, 6);
  // A burst of sends into an idle set: ONE doorbell (eventfd semantics) —
  // the wakeup cost pipelining amortizes across the burst.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(client->Send(msg).ok());
  const std::uint64_t rung = set.doorbells() - doorbells_before;
  EXPECT_LE(rung, 1u);
  set.Drain([](Qp* qp) {
    while (qp->HasMessage()) (void)qp->Recv();
  });
  // Next burst starts a new arm cycle.
  ASSERT_TRUE(client->Send(msg).ok());
  EXPECT_EQ(set.doorbells() - doorbells_before, rung * 2);
}

TEST_F(FabricTest, ForeignThreadRingWakesBlockedDrainWait) {
  // The progress-thread wakeup path: a thread blocked in DrainWait must
  // wake when ANOTHER thread rings the doorbell (worker completions use
  // exactly this edge), and a consumed ring must not re-fire.
  PollSet set;
  std::atomic<int> wakeups{0};
  std::thread waiter([&] {
    // Generous timeout: the test fails on wakeups, not timing — a missed
    // ring shows up as a 30 s hang converted into wakeups == 0.
    set.DrainWait(30000, [](Qp*) {});
    wakeups.fetch_add(1);
  });
  // Give the waiter time to park. Ordering is safe either way: a Ring
  // BEFORE the wait latches ring_pending_, so the wait returns at once —
  // the exact lost-wakeup hole the latch exists to close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  set.Ring();
  waiter.join();
  EXPECT_EQ(wakeups.load(), 1);
  // The ring was consumed by that DrainWait: an immediate re-wait with a
  // short timeout sees an idle set, not a stale doorbell edge.
  EXPECT_EQ(set.DrainWait(1, [](Qp*) {
    FAIL() << "stale ring delivered a qp";
  }), 0u);
}

TEST_F(FabricTest, ConcurrentSendsMarkReadyWithoutLostWakeups) {
  // Many threads send into one poll set while a drainer loops: every
  // message must be serviced (no lost MarkReady edge, no torn ready set).
  constexpr int kSenders = 4;
  constexpr int kPerSender = 64;
  std::vector<Qp*> qps;
  for (int i = 0; i < kSenders; ++i) {
    Qp* qp = Connect(Transport::kRdma);
    ASSERT_NE(qp, nullptr);
    qps.push_back(qp);
  }
  PollSet set;
  for (Qp* qp : qps) ASSERT_TRUE(set.Add(qp->peer()).ok());

  std::atomic<int> received{0};
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      set.DrainWait(1, [&](Qp* qp) {
        while (qp->HasMessage()) {
          (void)qp->Recv();
          received.fetch_add(1);
        }
      });
    }
  });
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      Buffer msg = MakePatternBuffer(16, std::uint64_t(s) + 1);
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(qps[std::size_t(s)]->Send(msg).ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  while (received.load() < kSenders * kPerSender) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  set.Ring();  // unblock the drainer's final DrainWait
  drainer.join();
  EXPECT_EQ(received.load(), kSenders * kPerSender);
}

}  // namespace
}  // namespace ros2::net
