#include "net/fabric.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace ros2::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = fabric_.CreateEndpoint("fabric://a");
    auto b = fabric_.CreateEndpoint("fabric://b");
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = *a;
    b_ = *b;
    pd_a_ = a_->AllocPd();
    pd_b_ = b_->AllocPd();
  }

  Qp* Connect(Transport transport) {
    auto qp = a_->Connect(b_, transport, pd_a_, pd_b_);
    EXPECT_TRUE(qp.ok());
    return qp.ok() ? *qp : nullptr;
  }

  Fabric fabric_;
  Endpoint* a_ = nullptr;
  Endpoint* b_ = nullptr;
  PdId pd_a_ = 0;
  PdId pd_b_ = 0;
};

TEST_F(FabricTest, EndpointAddressesUnique) {
  EXPECT_EQ(fabric_.CreateEndpoint("fabric://a").status().code(),
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fabric_.Lookup("fabric://a").ok());
  EXPECT_EQ(fabric_.Lookup("fabric://zzz").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FabricTest, SendRecvBothTransports) {
  for (Transport t : {Transport::kTcp, Transport::kRdma}) {
    Qp* qp = Connect(t);
    ASSERT_NE(qp, nullptr);
    Buffer msg = MakePatternBuffer(256, 1);
    ASSERT_TRUE(qp->Send(msg).ok());
    ASSERT_TRUE(qp->peer()->HasMessage());
    auto received = qp->peer()->Recv();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received->payload, msg);
    // Reply direction.
    ASSERT_TRUE(qp->peer()->Send(msg).ok());
    EXPECT_TRUE(qp->Recv().ok());
  }
}

TEST_F(FabricTest, RecvOnEmptyQueue) {
  Qp* qp = Connect(Transport::kRdma);
  EXPECT_EQ(qp->Recv().status().code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, MessagesDeliveredInOrder) {
  Qp* qp = Connect(Transport::kTcp);
  for (std::uint8_t i = 0; i < 10; ++i) {
    Buffer msg{std::byte(i)};
    ASSERT_TRUE(qp->Send(msg).ok());
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    auto msg = qp->peer()->Recv();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->payload[0], std::byte(i));
  }
}

TEST_F(FabricTest, RdmaReadPullsRemoteMemory) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote = MakePatternBuffer(4096, 9);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead);
  ASSERT_TRUE(mr.ok());

  Buffer local(4096);
  ASSERT_TRUE(qp->RdmaRead(local, mr->addr, mr->rkey).ok());
  EXPECT_EQ(local, remote);
  EXPECT_EQ(qp->bytes_one_sided(), 4096u);
}

TEST_F(FabricTest, RdmaWritePushesIntoRemoteMemory) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote(4096);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteWrite);
  ASSERT_TRUE(mr.ok());

  Buffer local = MakePatternBuffer(4096, 4);
  ASSERT_TRUE(qp->RdmaWrite(local, mr->addr, mr->rkey).ok());
  EXPECT_EQ(remote, local);
}

TEST_F(FabricTest, RdmaIntoSubrange) {
  Qp* qp = Connect(Transport::kRdma);
  Buffer remote = MakePatternBuffer(4096, 2);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  Buffer local(100);
  ASSERT_TRUE(qp->RdmaRead(local, mr->addr + 1000, mr->rkey).ok());
  EXPECT_EQ(VerifyPattern(local, 2, 1000), -1);
}

TEST_F(FabricTest, OneSidedOpsRefusedOnTcp) {
  Qp* qp = Connect(Transport::kTcp);
  Buffer remote(128);
  auto mr = b_->RegisterMemory(pd_b_, remote, kRemoteRead | kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  Buffer local(128);
  EXPECT_EQ(qp->RdmaRead(local, mr->addr, mr->rkey).code(),
            ErrorCode::kUnimplemented);
  EXPECT_EQ(qp->RdmaWrite(local, mr->addr, mr->rkey).code(),
            ErrorCode::kUnimplemented);
}

TEST_F(FabricTest, ConnectValidatesPds) {
  EXPECT_EQ(a_->Connect(b_, Transport::kRdma, 999, pd_b_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a_->Connect(b_, Transport::kRdma, pd_a_, 999).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a_->Connect(nullptr, Transport::kRdma, pd_a_, pd_b_)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FabricTest, RegisterValidation) {
  Buffer region(64);
  EXPECT_EQ(a_->RegisterMemory(999, region, kRemoteRead).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(
      a_->RegisterMemory(pd_a_, std::span<std::byte>(), kRemoteRead)
          .status()
          .code(),
      ErrorCode::kInvalidArgument);
}

TEST_F(FabricTest, DeregisterRemovesMr) {
  Buffer region(64);
  auto mr = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(a_->mr_count(), 1u);
  ASSERT_TRUE(a_->DeregisterMemory(mr->rkey).ok());
  EXPECT_EQ(a_->mr_count(), 0u);
  EXPECT_EQ(a_->DeregisterMemory(mr->rkey).code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, RkeysNeverReused) {
  Buffer region(64);
  auto mr1 = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr1.ok());
  ASSERT_TRUE(a_->DeregisterMemory(mr1->rkey).ok());
  auto mr2 = a_->RegisterMemory(pd_a_, region, kRemoteRead);
  ASSERT_TRUE(mr2.ok());
  EXPECT_NE(mr1->rkey, mr2->rkey);
}

TEST_F(FabricTest, PdTenantTracked) {
  const PdId pd = a_->AllocPd(/*tenant=*/7);
  auto tenant = a_->PdTenant(pd);
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(*tenant, 7u);
  EXPECT_EQ(a_->PdTenant(12345).status().code(), ErrorCode::kNotFound);
}

TEST_F(FabricTest, LogicalClockAdvances) {
  EXPECT_DOUBLE_EQ(fabric_.now(), 0.0);
  fabric_.AdvanceTime(1.5);
  fabric_.AdvanceTime(0.5);
  EXPECT_DOUBLE_EQ(fabric_.now(), 2.0);
}

}  // namespace
}  // namespace ros2::net
