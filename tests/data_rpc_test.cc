// Data-plane RPC tests, parameterized over both transports: the same
// handler code must move bulk payloads via one-sided RDMA (rendezvous) and
// via inline TCP bytes. RDMA bulk windows go through the endpoint's
// pooled MrCache (leases, not ad-hoc registrations), so the MR-lifetime
// tests assert pool invariants: bounded registrations, zero outstanding
// leases after every call, and nothing left behind once the pool is
// cleared — including after injected registration/send failures, the leak
// paths the pre-pool code had.
#include "rpc/data_rpc.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "net/fabric.h"
#include "rpc/wire.h"

namespace ros2::rpc {
namespace {

constexpr std::span<const std::byte> kNoHeader{};

class DataRpcTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://server");
    auto client_ep = fabric_.CreateEndpoint("fabric://client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    server_ep_ = *server_ep;
    client_ep_ = *client_ep;
    const auto server_pd = server_ep_->AllocPd();
    const auto client_pd = client_ep_->AllocPd();
    auto qp = client_ep_->Connect(server_ep_, GetParam(), client_pd,
                                  server_pd);
    ASSERT_TRUE(qp.ok());
    qp_ = *qp;
    client_ = std::make_unique<RpcClient>(
        qp_, client_ep_, [this] { (void)server_.Progress(qp_->peer()); });
  }

  bool rdma() const { return GetParam() == net::Transport::kRdma; }

  net::Fabric fabric_;
  net::Endpoint* server_ep_ = nullptr;
  net::Endpoint* client_ep_ = nullptr;
  net::Qp* qp_ = nullptr;
  RpcServer server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_P(DataRpcTest, UnaryCallRoundTrip) {
  server_.Register(1, [](const Buffer& header, BulkIo&) -> Result<Buffer> {
    Buffer reply = header;
    reply.push_back(std::byte(0xFF));
    return reply;
  });
  Buffer header = MakePatternBuffer(16, 1);
  auto reply = client_->Call(1, header, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->header.size(), 17u);
}

TEST_P(DataRpcTest, UnknownOpcode) {
  EXPECT_EQ(client_->Call(42, kNoHeader, {}).status().code(),
            ErrorCode::kNotFound);
}

TEST_P(DataRpcTest, HandlerErrorPropagatesWithMessage) {
  server_.Register(2, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Status(OutOfRange("beyond eof"));
  });
  auto reply = client_->Call(2, kNoHeader, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(reply.status().message(), "beyond eof");
}

TEST_P(DataRpcTest, EncoderOverloadRejectsOverflowedHeader) {
  server_.Register(1, [](const Buffer& header, BulkIo&) -> Result<Buffer> {
    return header;
  });
  Encoder good;
  good.U32(7);
  EXPECT_TRUE(client_->Call(1, good, {}).ok());

  static const std::byte kByte{0x5A};
  Encoder bad;
  // A span whose size field overflows the u32 length prefix; the encoder
  // latches the overflow without reading the (bogus) span contents.
  bad.Bytes(std::span<const std::byte>(&kByte, std::size_t(1) << 33));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(client_->Call(1, bad, {}).status().code(),
            ErrorCode::kOutOfRange);
}

TEST_P(DataRpcTest, SendBulkReachesServer) {
  Buffer received;
  server_.Register(3, [&](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    received.resize(bulk.in_size());
    ROS2_RETURN_IF_ERROR(bulk.Pull(received));
    return Buffer{};
  });
  Buffer payload = MakePatternBuffer(256 * 1024, 7);
  CallOptions options;
  options.send_bulk = payload;
  ASSERT_TRUE(client_->Call(3, kNoHeader, options).ok());
  EXPECT_EQ(received, payload);
  EXPECT_EQ(server_.bulk_bytes_in(), payload.size());
}

TEST_P(DataRpcTest, RecvBulkReachesClient) {
  Buffer source = MakePatternBuffer(128 * 1024, 9);
  server_.Register(4, [&](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    ROS2_RETURN_IF_ERROR(bulk.Push(source));
    return Buffer{};
  });
  Buffer sink(source.size());
  CallOptions options;
  options.recv_bulk = sink;
  auto reply = client_->Call(4, kNoHeader, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->bulk_received, source.size());
  EXPECT_EQ(sink, source);
}

TEST_P(DataRpcTest, BothDirectionsInOneCall) {
  server_.Register(5, [&](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer data(bulk.in_size());
    ROS2_RETURN_IF_ERROR(bulk.Pull(data));
    for (auto& b : data) b ^= std::byte(0xFF);  // transform
    ROS2_RETURN_IF_ERROR(bulk.Push(data));
    return Buffer{};
  });
  Buffer out = MakePatternBuffer(4096, 3);
  Buffer in(4096);
  CallOptions options;
  options.send_bulk = out;
  options.recv_bulk = in;
  ASSERT_TRUE(client_->Call(5, kNoHeader, options).ok());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(in[i], out[i] ^ std::byte(0xFF));
  }
}

TEST_P(DataRpcTest, PushBeyondWindowRejected) {
  server_.Register(6, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer big(bulk.out_capacity() + 1);
    ROS2_RETURN_IF_ERROR(bulk.Push(big));
    return Buffer{};
  });
  Buffer window(64);
  CallOptions options;
  options.recv_bulk = window;
  EXPECT_EQ(client_->Call(6, kNoHeader, options).status().code(),
            ErrorCode::kOutOfRange);
}

TEST_P(DataRpcTest, IncrementalPushesAccumulate) {
  server_.Register(7, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer chunk = MakePatternBuffer(100, 1);
    ROS2_RETURN_IF_ERROR(bulk.Push(chunk));
    Buffer chunk2 = MakePatternBuffer(100, 1, 100);
    ROS2_RETURN_IF_ERROR(bulk.Push(chunk2));
    return Buffer{};
  });
  Buffer window(200);
  CallOptions options;
  options.recv_bulk = window;
  auto reply = client_->Call(7, kNoHeader, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->bulk_received, 200u);
  EXPECT_EQ(VerifyPattern(window, 1, 0), -1);
}

TEST_P(DataRpcTest, PullSizeMismatchRejected) {
  server_.Register(8, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer wrong(bulk.in_size() + 1);
    ROS2_RETURN_IF_ERROR(bulk.Pull(wrong));
    return Buffer{};
  });
  Buffer payload(64);
  CallOptions options;
  options.send_bulk = payload;
  EXPECT_EQ(client_->Call(8, kNoHeader, options).status().code(),
            ErrorCode::kInvalidArgument);
}

// The pre-pool code registered and destroyed MRs on every call; pooled
// calls must instead converge to cache hits with a bounded MR count and
// leave nothing behind once the pool is cleared.
TEST_P(DataRpcTest, PooledMrsAreCachedBoundedAndReclaimable) {
  server_.Register(9, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Buffer{};
  });
  Buffer payload(1024);
  Buffer window(1024);
  CallOptions options;
  options.send_bulk = payload;
  options.recv_bulk = window;
  const auto before = client_ep_->mr_count();
  ASSERT_TRUE(client_->Call(9, kNoHeader, options).ok());
  const auto after_first = client_ep_->mr_count();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->Call(9, kNoHeader, options).ok());
  }
  // Same buffers, same windows: no new registrations after the first call.
  EXPECT_EQ(client_ep_->mr_count(), after_first);
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
  if (rdma()) {
    EXPECT_EQ(after_first, before + 2);  // send + recv windows, cached
    EXPECT_GE(client_ep_->mr_cache().hits(), 20u);  // 10 calls x 2 windows
  } else {
    EXPECT_EQ(after_first, before);  // TCP never registers
  }
  // Every registration the data path made is pool-owned: clearing the
  // pool returns the endpoint to its pre-call MR census (leak == a
  // registration the pool does NOT own == count stays elevated).
  client_ep_->mr_cache().Clear();
  EXPECT_EQ(client_ep_->mr_count(), before);
}

TEST_P(DataRpcTest, NoMrLeakWhenRecvRegistrationFails) {
  if (!rdma()) GTEST_SKIP() << "registration is RDMA-only";
  server_.Register(9, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Buffer{};
  });
  Buffer payload(2048);
  Buffer window(2048);
  CallOptions options;
  options.send_bulk = payload;
  options.recv_bulk = window;
  const auto before = client_ep_->mr_count();

  // Unpooled (the seed's per-call mode): the send MR is registered, then
  // the recv registration fails — the seed leaked the send MR here.
  client_->set_mr_pooling(false);
  client_ep_->InjectRegisterFaults(/*skip=*/1, /*count=*/1);
  EXPECT_EQ(client_->Call(9, kNoHeader, options).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(client_ep_->mr_count(), before) << "send MR leaked";

  // Pooled: same forced failure; the send registration stays CACHED (not
  // leaked), no lease stays outstanding, and Clear() reclaims everything.
  client_->set_mr_pooling(true);
  client_ep_->InjectRegisterFaults(/*skip=*/1, /*count=*/1);
  EXPECT_EQ(client_->Call(9, kNoHeader, options).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
  client_ep_->mr_cache().Clear();
  EXPECT_EQ(client_ep_->mr_count(), before);
}

TEST_P(DataRpcTest, NoMrLeakWhenSendFails) {
  server_.Register(9, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Buffer{};
  });
  Buffer payload(2048);
  Buffer window(2048);
  CallOptions options;
  options.send_bulk = payload;
  options.recv_bulk = window;
  const auto before = client_ep_->mr_count();

  client_->set_mr_pooling(false);
  qp_->InjectSendFaults(1);
  EXPECT_EQ(client_->Call(9, kNoHeader, options).status().code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(client_ep_->mr_count(), before)
      << "MRs leaked on the send-failed path";
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);

  client_->set_mr_pooling(true);
  qp_->InjectSendFaults(1);
  EXPECT_EQ(client_->Call(9, kNoHeader, options).status().code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(client_ep_->mr_cache().leased(), 0u);
  client_ep_->mr_cache().Clear();
  EXPECT_EQ(client_ep_->mr_count(), before);
}

TEST_P(DataRpcTest, ServerDrainsPipelinedRequestsInOrder) {
  // CaRT progress-loop semantics: several requests queued on the QP before
  // the server runs are all served, in arrival order.
  std::vector<std::uint32_t> order;
  server_.Register(11, [&](const Buffer& header, BulkIo&) -> Result<Buffer> {
    rpc::Decoder dec(header);
    order.push_back(dec.U32().value_or(0));
    return Buffer{};
  });
  for (std::uint32_t i = 0; i < 5; ++i) {
    Encoder req;
    // opcode, sequence tag, trace id, header, no-bulk flags (the
    // CallAsync frame).
    req.U32(11).U64(i + 1).U64(i + 1).Bytes(Encoder().U32(i).buffer());
    req.U8(0).U8(0);
    ASSERT_TRUE(qp_->Send(req.buffer()).ok());
  }
  ASSERT_TRUE(server_.Progress(qp_->peer()).ok());
  ASSERT_EQ(order.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(order[i], i);
  }
  // Five replies are waiting on the client QP.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(qp_->Recv().ok()) << i;
  }
  EXPECT_FALSE(qp_->HasMessage());
}

TEST_P(DataRpcTest, ZeroLengthBulkWindowsAreNoops) {
  server_.Register(12, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    if (bulk.in_size() != 0 || bulk.out_capacity() != 0) {
      return Status(Internal("unexpected bulk state"));
    }
    return Buffer{};
  });
  CallOptions options;  // both spans empty
  EXPECT_TRUE(client_->Call(12, kNoHeader, options).ok());
}

// Transport parity: a zero-byte Push must succeed on BOTH transports,
// with or without a client window. (It used to RdmaWrite against the
// zero-initialized descriptor when the client exposed no window — rkey 0
// -> PermissionDenied on RDMA while TCP succeeded.)
TEST_P(DataRpcTest, EmptyPushIsANoopOnBothTransports) {
  server_.Register(13, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    ROS2_RETURN_IF_ERROR(bulk.Push({}));
    return Buffer{};
  });
  EXPECT_TRUE(client_->Call(13, kNoHeader, {}).ok()) << "no recv window";

  Buffer window(64);
  CallOptions options;
  options.recv_bulk = window;
  auto reply = client_->Call(13, kNoHeader, options);
  ASSERT_TRUE(reply.ok()) << "with recv window";
  EXPECT_EQ(reply->bulk_received, 0u);

  // Empty pushes interleaved with real ones keep the offset intact.
  server_.Register(14, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    ROS2_RETURN_IF_ERROR(bulk.Push({}));
    Buffer chunk = MakePatternBuffer(32, 5);
    ROS2_RETURN_IF_ERROR(bulk.Push(chunk));
    ROS2_RETURN_IF_ERROR(bulk.Push({}));
    return Buffer{};
  });
  reply = client_->Call(14, kNoHeader, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->bulk_received, 32u);
  EXPECT_EQ(VerifyPattern(std::span<const std::byte>(window.data(), 32), 5,
                          0),
            -1);
}

// A handler that pushes bulk and THEN fails must not hand the client
// partial output: error replies report pushed = 0, ship no inline bulk,
// and leave the client's recv window untouched on TCP.
TEST_P(DataRpcTest, FailedHandlerReportsNoBulk) {
  server_.Register(15, [](const Buffer&, BulkIo& bulk) -> Result<Buffer> {
    Buffer partial = MakePatternBuffer(64, 2);
    ROS2_RETURN_IF_ERROR(bulk.Push(partial));
    return Status(Internal("handler failed after pushing"));
  });
  Buffer window(128, std::byte(0xEE));  // sentinel fill
  CallOptions options;
  options.recv_bulk = window;
  const auto bulk_out_before = server_.bulk_bytes_out();
  auto reply = client_->Call(15, kNoHeader, options);
  EXPECT_EQ(reply.status().code(), ErrorCode::kInternal);
  // The reply advertised zero pushed bytes (and the server's counter
  // agrees: failed handlers contribute nothing).
  EXPECT_EQ(server_.bulk_bytes_out(), bulk_out_before);
  if (!rdma()) {
    // TCP: the partial inline bulk was dropped server-side; the window
    // still holds the sentinel. (RDMA pushes land one-sided before the
    // handler returns, so the window is undefined there — that's what
    // pushed = 0 tells the caller.)
    for (std::size_t i = 0; i < window.size(); ++i) {
      ASSERT_EQ(window[i], std::byte(0xEE)) << "byte " << i;
    }
  }
}

TEST_P(DataRpcTest, ServedCounterTicks) {
  server_.Register(10, [](const Buffer&, BulkIo&) -> Result<Buffer> {
    return Buffer{};
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->Call(10, kNoHeader, {}).ok());
  }
  EXPECT_EQ(server_.requests_served(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Transports, DataRpcTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::rpc
