#include "fio/jobfile.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::fio {
namespace {

TEST(JobFileTest, SingleJob) {
  auto jobs = ParseJobFile(
      "[dataloader]\n"
      "rw=randread\n"
      "bs=4k\n"
      "numjobs=16\n"
      "iodepth=32\n");
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->size(), 1u);
  const JobSpec& job = (*jobs)[0];
  EXPECT_EQ(job.name, "dataloader");
  EXPECT_EQ(job.rw, perf::OpKind::kRandRead);
  EXPECT_EQ(job.block_size, 4 * kKiB);
  EXPECT_EQ(job.numjobs, 16u);
  EXPECT_EQ(job.iodepth, 32u);
}

TEST(JobFileTest, GlobalDefaultsInherited) {
  auto jobs = ParseJobFile(
      "[global]\n"
      "bs=1m\n"
      "iodepth=8\n"
      "[a]\n"
      "rw=write\n"
      "[b]\n"
      "bs=4k\n");
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ((*jobs)[0].block_size, kMiB);       // from global
  EXPECT_EQ((*jobs)[0].rw, perf::OpKind::kWrite);
  EXPECT_EQ((*jobs)[1].block_size, 4 * kKiB);   // override
  EXPECT_EQ((*jobs)[1].iodepth, 8u);            // from global
}

TEST(JobFileTest, CommentsAndBlankLines) {
  auto jobs = ParseJobFile(
      "# a comment\n"
      "; another style\n"
      "\n"
      "[job]\n"
      "rw=read   \n"
      "  bs = 64k\n");
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  EXPECT_EQ((*jobs)[0].block_size, 64 * kKiB);
}

TEST(JobFileTest, AllRwModes) {
  for (auto [text, kind] :
       {std::pair{"read", perf::OpKind::kRead},
        std::pair{"write", perf::OpKind::kWrite},
        std::pair{"randread", perf::OpKind::kRandRead},
        std::pair{"randwrite", perf::OpKind::kRandWrite}}) {
    JobSpec spec;
    ASSERT_TRUE(ApplyJobKey(&spec, "rw", text).ok());
    EXPECT_EQ(spec.rw, kind);
  }
  JobSpec spec;
  EXPECT_FALSE(ApplyJobKey(&spec, "rw", "trim").ok());
}

TEST(JobFileTest, SizeSuffixes) {
  JobSpec spec;
  ASSERT_TRUE(ApplyJobKey(&spec, "size", "2g").ok());
  EXPECT_EQ(spec.file_size, 2 * kGiB);
  ASSERT_TRUE(ApplyJobKey(&spec, "bs", "512").ok());
  EXPECT_EQ(spec.block_size, 512u);
}

TEST(JobFileTest, OpsVerifySeed) {
  JobSpec spec;
  ASSERT_TRUE(ApplyJobKey(&spec, "ops", "12345").ok());
  ASSERT_TRUE(ApplyJobKey(&spec, "verify", "99").ok());
  ASSERT_TRUE(ApplyJobKey(&spec, "seed", "7").ok());
  EXPECT_EQ(spec.total_ops, 12345u);
  EXPECT_EQ(spec.verify_ops, 99u);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(JobFileTest, ErrorsCarryLineNumbers) {
  auto bad_key = ParseJobFile("[j]\nbogus=1\n");
  EXPECT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("line 2"), std::string::npos);

  auto bad_value = ParseJobFile("[j]\nrw=read\n\nnumjobs=zero\n");
  EXPECT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("line 4"), std::string::npos);
}

TEST(JobFileTest, StructuralErrors) {
  EXPECT_FALSE(ParseJobFile("").ok());                 // no jobs
  EXPECT_FALSE(ParseJobFile("[global]\nbs=4k\n").ok());  // only global
  EXPECT_FALSE(ParseJobFile("bs=4k\n[j]\nrw=read\n").ok());  // preamble key
  EXPECT_FALSE(ParseJobFile("[broken\nrw=read\n").ok());
  EXPECT_FALSE(ParseJobFile("[j]\njust-a-line\n").ok());
}

TEST(JobFileTest, RangeValidation) {
  JobSpec spec;
  EXPECT_FALSE(ApplyJobKey(&spec, "numjobs", "0").ok());
  EXPECT_FALSE(ApplyJobKey(&spec, "numjobs", "100000").ok());
  EXPECT_FALSE(ApplyJobKey(&spec, "iodepth", "0").ok());
  EXPECT_FALSE(ApplyJobKey(&spec, "ops", "0").ok());
  EXPECT_FALSE(ApplyJobKey(&spec, "bs", "0").ok());
}

TEST(JobFileTest, PaperSweepAsJobFile) {
  // The Fig. 3 grid expressed as a job file round-trips into runnable specs.
  std::string text = "[global]\nbs=4k\niodepth=16\nrw=randread\n";
  for (int jobs : {1, 2, 4, 8, 16}) {
    text += "[jobs" + std::to_string(jobs) + "]\nnumjobs=" +
            std::to_string(jobs) + "\n";
  }
  auto parsed = ParseJobFile(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 5u);
  EXPECT_EQ((*parsed)[4].numjobs, 16u);
  EXPECT_EQ((*parsed)[0].block_size, 4 * kKiB);
}

}  // namespace
}  // namespace ros2::fio
