// End-to-end engine + client tests over both transports: pool auth,
// containers, object I/O with bulk transfer, epochs, punch, enumeration.
#include "daos/client.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::daos {
namespace {

class DaosClientTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};

    EngineConfig config;
    config.targets = 8;
    config.scm_per_target = 8 * kMiB;
    config.access_token = "secret";
    engine_ = std::make_unique<DaosEngine>(&fabric_, config, raw);

    DaosClient::ConnectOptions options;
    options.transport = GetParam();
    options.access_token = "secret";
    auto client = DaosClient::Connect(&fabric_, engine_.get(), options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
    auto cont = client_->ContainerCreate("c0");
    ASSERT_TRUE(cont.ok());
    cont_ = *cont;
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<DaosEngine> engine_;
  std::unique_ptr<DaosClient> client_;
  ContainerId cont_ = 0;
};

TEST_P(DaosClientTest, PoolAuthRejectsBadToken) {
  DaosClient::ConnectOptions options;
  options.transport = GetParam();
  options.client_address = "fabric://bad-client";
  options.access_token = "wrong";
  EXPECT_EQ(
      DaosClient::Connect(&fabric_, engine_.get(), options).status().code(),
      ErrorCode::kPermissionDenied);
}

TEST_P(DaosClientTest, PoolConnectReportsTargets) {
  EXPECT_EQ(client_->pool_targets(), 8u);
}

TEST_P(DaosClientTest, ContainerLifecycle) {
  EXPECT_EQ(client_->ContainerCreate("c0").status().code(),
            ErrorCode::kAlreadyExists);
  auto opened = client_->ContainerOpen("c0");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, cont_);
  EXPECT_EQ(client_->ContainerOpen("missing").status().code(),
            ErrorCode::kNotFound);
}

TEST_P(DaosClientTest, OidAllocationUniqueAndNamespaced) {
  auto a = client_->AllocOid(cont_);
  auto b = client_->AllocOid(cont_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(a->hi, cont_);
}

TEST_P(DaosClientTest, UpdateFetchRoundTripSmall) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(4096, 1);
  auto epoch = client_->Update(cont_, *oid, "dk", "ak", 0, data);
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(*epoch, 0u);
  Buffer out(4096);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(DaosClientTest, UpdateFetchRoundTripLargeBulk) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(4 * kMiB, 2);
  ASSERT_TRUE(client_->Update(cont_, *oid, "dk", "ak", 0, data).ok());
  Buffer out(4 * kMiB);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, out).ok());
  EXPECT_EQ(out, data);
  // Bulk bytes really moved through the engine.
  EXPECT_GE(engine_->stats().bulk_bytes_in, data.size());
  EXPECT_GE(engine_->stats().bulk_bytes_out, data.size());
}

TEST_P(DaosClientTest, EpochSnapshotFetch) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer v1 = MakePatternBuffer(100, 1);
  Buffer v2 = MakePatternBuffer(100, 2);
  auto e1 = client_->Update(cont_, *oid, "dk", "ak", 0, v1);
  ASSERT_TRUE(e1.ok());
  auto e2 = client_->Update(cont_, *oid, "dk", "ak", 0, v2);
  ASSERT_TRUE(e2.ok());
  Buffer out(100);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, out, *e1).ok());
  EXPECT_EQ(out, v1);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, out).ok());
  EXPECT_EQ(out, v2);
}

TEST_P(DaosClientTest, SingleValueRoundTrip) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer meta = MakePatternBuffer(32, 5);
  ASSERT_TRUE(client_->UpdateSingle(cont_, *oid, "m", "size", meta).ok());
  auto fetched = client_->FetchSingle(cont_, *oid, "m", "size");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, meta);
}

TEST_P(DaosClientTest, DkeysSpreadOverEngineTargets) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer data(256);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(client_
                    ->Update(cont_, *oid, "chunk" + std::to_string(i), "d",
                             0, data)
                    .ok());
  }
  // At least half the targets must hold something (placement works).
  int populated = 0;
  for (std::uint32_t t = 0; t < engine_->num_targets(); ++t) {
    if (!engine_->target_vos(t)->ListDkeys(*oid).empty()) ++populated;
  }
  EXPECT_GE(populated, 4);
  // And enumeration through the client sees all dkeys across targets.
  auto dkeys = client_->ListDkeys(cont_, *oid);
  ASSERT_TRUE(dkeys.ok());
  EXPECT_EQ(dkeys->size(), 64u);
}

TEST_P(DaosClientTest, PunchScopes) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(64, 1);
  ASSERT_TRUE(client_->Update(cont_, *oid, "d1", "a1", 0, data).ok());
  ASSERT_TRUE(client_->Update(cont_, *oid, "d1", "a2", 0, data).ok());
  ASSERT_TRUE(client_->Update(cont_, *oid, "d2", "a1", 0, data).ok());

  ASSERT_TRUE(client_->PunchAkey(cont_, *oid, "d1", "a1").ok());
  Buffer out(64);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "d1", "a1", 0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "d1", "a2", 0, out).ok());
  EXPECT_EQ(out, data);

  ASSERT_TRUE(client_->PunchDkey(cont_, *oid, "d1").ok());
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "d1", "a2", 0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));

  ASSERT_TRUE(client_->PunchObject(cont_, *oid).ok());
  auto dkeys = client_->ListDkeys(cont_, *oid);
  ASSERT_TRUE(dkeys.ok());
  EXPECT_TRUE(dkeys->empty());
}

TEST_P(DaosClientTest, ArraySizeAndAggregate) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  for (int i = 0; i < 20; ++i) {
    Buffer data = MakePatternBuffer(1000, std::uint64_t(i));
    ASSERT_TRUE(
        client_->Update(cont_, *oid, "dk", "ak", (i % 5) * 500, data).ok());
  }
  auto size = client_->ArraySize(cont_, *oid, "dk", "ak");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u * 500 + 1000);
  Buffer before(*size);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, before).ok());
  ASSERT_TRUE(client_->Aggregate(cont_, *oid, "dk", "ak", kEpochHead).ok());
  Buffer after(*size);
  ASSERT_TRUE(client_->Fetch(cont_, *oid, "dk", "ak", 0, after).ok());
  EXPECT_EQ(after, before);
}

TEST_P(DaosClientTest, UnknownContainerRejected) {
  Buffer data(16);
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(client_->Update(999, *oid, "d", "a", 0, data).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client_->AllocOid(999).status().code(), ErrorCode::kNotFound);
}

TEST_P(DaosClientTest, ListAkeys) {
  auto oid = client_->AllocOid(cont_);
  ASSERT_TRUE(oid.ok());
  Buffer data(16);
  ASSERT_TRUE(client_->Update(cont_, *oid, "d", "a1", 0, data).ok());
  ASSERT_TRUE(client_->Update(cont_, *oid, "d", "a2", 0, data).ok());
  auto akeys = client_->ListAkeys(cont_, *oid, "d");
  ASSERT_TRUE(akeys.ok());
  EXPECT_EQ(akeys->size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Transports, DaosClientTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::daos
