#include "daos/nvme_alloc.h"

#include <gtest/gtest.h>

namespace ros2::daos {
namespace {

TEST(NvmeAllocTest, RoundsUpToBlocks) {
  NvmeAllocator alloc(0, 1 << 20, 4096);
  auto a = alloc.Alloc(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.used_bytes(), 4096u);
  auto b = alloc.Alloc(4097);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.used_bytes(), 4096u + 8192u);
}

TEST(NvmeAllocTest, OffsetsAreBlockAligned) {
  NvmeAllocator alloc(0, 1 << 20, 4096);
  for (int i = 0; i < 10; ++i) {
    auto offset = alloc.Alloc(1000);
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(*offset % 4096, 0u);
  }
}

TEST(NvmeAllocTest, BaseOffsetPartitioning) {
  NvmeAllocator alloc(1 << 20, 1 << 20, 4096);
  auto offset = alloc.Alloc(4096);
  ASSERT_TRUE(offset.ok());
  EXPECT_GE(*offset, std::uint64_t(1) << 20);
  EXPECT_LT(*offset, std::uint64_t(2) << 20);
}

TEST(NvmeAllocTest, ExhaustionAndReuse) {
  NvmeAllocator alloc(0, 8192, 4096);
  auto a = alloc.Alloc(4096);
  auto b = alloc.Alloc(4096);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(alloc.Alloc(1).status().code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(alloc.Free(*a).ok());
  auto c = alloc.Alloc(4096);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST(NvmeAllocTest, FreeUnknownRejected) {
  NvmeAllocator alloc(0, 8192, 4096);
  EXPECT_EQ(alloc.Free(4096).code(), ErrorCode::kNotFound);
}

TEST(NvmeAllocTest, CoalescingAllowsLargeRealloc) {
  NvmeAllocator alloc(0, 16384, 4096);
  auto a = alloc.Alloc(4096);
  auto b = alloc.Alloc(4096);
  auto c = alloc.Alloc(4096);
  auto d = alloc.Alloc(4096);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  ASSERT_TRUE(alloc.Free(*b).ok());
  ASSERT_TRUE(alloc.Free(*d).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());  // coalesce b..d
  EXPECT_TRUE(alloc.Alloc(12288).ok());
}

TEST(NvmeAllocTest, ZeroSizeRejected) {
  NvmeAllocator alloc(0, 8192, 4096);
  EXPECT_EQ(alloc.Alloc(0).status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ros2::daos
