#include "common/status.h"

#include <gtest/gtest.h>

namespace ros2 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ConstructorHelpersCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(PermissionDenied("x").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(DataLoss("x").code(), ErrorCode::kDataLoss);
  EXPECT_EQ(TimedOut("x").code(), ErrorCode::kTimedOut);
  EXPECT_EQ(Unimplemented("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(NotFound("no such file").ToString(), "NOT_FOUND: no such file");
  EXPECT_EQ(DataLoss("crc").ToString(), "DATA_LOSS: crc");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(NotFound("a"), NotFound("b"));
  EXPECT_FALSE(NotFound("a") == InvalidArgument("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(bool(r));
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  ROS2_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedCall(int x) {
  ROS2_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(DoubleIfPositive(-1).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(ChainedCall(-5).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ChainedCall(10).value(), 21);
}

TEST(ErrorCodeTest, AllNamesDistinct) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kTimedOut), "TIMED_OUT");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnimplemented), "UNIMPLEMENTED");
}

}  // namespace
}  // namespace ros2
