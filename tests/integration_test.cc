// Whole-system integration tests: multiple tenants sharing one cluster,
// the paper's headline comparisons smoke-checked end to end, and the
// control/data separation validated under real file traffic.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"
#include "fio/fio.h"

namespace ros2 {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Ros2Cluster::Config config;
    config.num_ssds = 4;
    config.engine_targets = 16;
    config.scm_per_target = 16 * kMiB;
    cluster_ = std::make_unique<core::Ros2Cluster>(config);
    for (const char* name : {"tenant-a", "tenant-b"}) {
      core::TenantConfig tenant;
      tenant.name = name;
      tenant.auth_token = std::string(name) + "-key";
      ASSERT_TRUE(cluster_->tenants()->Register(tenant).ok());
    }
  }

  std::unique_ptr<core::Ros2Client> Connect(const std::string& tenant,
                                            perf::Platform platform,
                                            net::Transport transport,
                                            const std::string& container) {
    core::ClientConfig config;
    config.platform = platform;
    config.transport = transport;
    config.tenant_name = tenant;
    config.tenant_token = tenant + "-key";
    config.container_label = container;
    auto client = core::Ros2Client::Connect(cluster_.get(), config);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<core::Ros2Cluster> cluster_;
};

TEST_F(IntegrationTest, TwoTenantsIsolatedNamespaces) {
  auto a = Connect("tenant-a", perf::Platform::kBlueField3,
                   net::Transport::kRdma, "cont-a");
  auto b = Connect("tenant-b", perf::Platform::kBlueField3,
                   net::Transport::kRdma, "cont-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  dfs::OpenFlags create;
  create.create = true;
  auto fa = a->Open("/private-a", create);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(a->Pwrite(*fa, 0, MakePatternBuffer(4096, 0xA)).ok());

  // Tenant B's namespace does not contain tenant A's file.
  EXPECT_EQ(b->Stat("/private-a").status().code(), ErrorCode::kNotFound);
  auto entries = b->Readdir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST_F(IntegrationTest, SharedContainerVisibleAcrossClients) {
  auto writer = Connect("tenant-a", perf::Platform::kServerHost,
                        net::Transport::kRdma, "shared");
  ASSERT_NE(writer, nullptr);
  dfs::OpenFlags create;
  create.create = true;
  auto fd = writer->Open("/dataset.bin", create);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(2 * kMiB, 0x5);
  ASSERT_TRUE(writer->Pwrite(*fd, 0, data).ok());

  // A second client (offloaded, different transport) sees the same bytes —
  // the engine is deployment-agnostic (§3.3).
  auto reader = Connect("tenant-b", perf::Platform::kBlueField3,
                        net::Transport::kTcp, "shared");
  ASSERT_NE(reader, nullptr);
  auto rfd = reader->Open("/dataset.bin", dfs::OpenFlags{});
  ASSERT_TRUE(rfd.ok());
  Buffer out(data.size());
  auto n = reader->Pread(*rfd, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(IntegrationTest, CryptoTenantsCannotReadEachOthersPlaintext) {
  // Both tenants write the same plaintext with inline crypto into a shared
  // container; their at-rest bytes differ (per-tenant keys), and each can
  // only decrypt its own.
  core::ClientConfig config_a;
  config_a.tenant_name = "tenant-a";
  config_a.tenant_token = "tenant-a-key";
  config_a.inline_crypto = true;
  config_a.container_label = "vault";
  auto a = core::Ros2Client::Connect(cluster_.get(), config_a);
  ASSERT_TRUE(a.ok());

  dfs::OpenFlags create;
  create.create = true;
  auto fd = (*a)->Open("/blob", create);
  ASSERT_TRUE(fd.ok());
  Buffer plain(4096, std::byte(0x77));
  ASSERT_TRUE((*a)->Pwrite(*fd, 0, plain).ok());

  core::ClientConfig config_b = config_a;
  config_b.tenant_name = "tenant-b";
  config_b.tenant_token = "tenant-b-key";
  auto b = core::Ros2Client::Connect(cluster_.get(), config_b);
  ASSERT_TRUE(b.ok());
  auto bfd = (*b)->Open("/blob", dfs::OpenFlags{});
  ASSERT_TRUE(bfd.ok());
  Buffer stolen(4096);
  ASSERT_TRUE((*b)->Pread(*bfd, 0, stolen).ok());
  // B decrypts with B's key: garbage, not the plaintext.
  EXPECT_NE(stolen, plain);
}

TEST_F(IntegrationTest, HeadlineShapesHoldEndToEnd) {
  // The paper's three takeaways (§4.4), asserted through the full harness
  // with functional verification enabled.
  struct Cell {
    perf::Platform platform;
    net::Transport transport;
    double gib_per_sec = 0.0;
  };
  Cell cells[] = {
      {perf::Platform::kServerHost, net::Transport::kRdma},
      {perf::Platform::kBlueField3, net::Transport::kRdma},
      {perf::Platform::kBlueField3, net::Transport::kTcp},
  };
  int i = 0;
  for (auto& cell : cells) {
    auto client = Connect("tenant-a", cell.platform, cell.transport,
                          "bench" + std::to_string(i++));
    ASSERT_NE(client, nullptr);
    fio::DfsFio::Setup setup;
    setup.num_ssds = 1;
    fio::DfsFio fio(client.get(), setup);
    fio::JobSpec spec;
    spec.name = "headline";
    spec.rw = perf::OpKind::kRead;
    spec.block_size = kMiB;
    spec.numjobs = 8;
    spec.total_ops = 8000;
    spec.verify_ops = 16;
    auto report = fio.Run(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->verified_ops, 16u);
    cell.gib_per_sec = report->bytes_per_sec / double(kGiB);
  }
  const double host_rdma = cells[0].gib_per_sec;
  const double dpu_rdma = cells[1].gib_per_sec;
  const double dpu_tcp = cells[2].gib_per_sec;
  // (i) DPU RDMA ~= host RDMA.
  EXPECT_NEAR(dpu_rdma, host_rdma, host_rdma * 0.1);
  // (ii) DPU TCP collapses for reads.
  EXPECT_LT(dpu_tcp, 0.6 * dpu_rdma);
}

TEST_F(IntegrationTest, EngineUnchangedAcrossDeployments) {
  // The same engine instance serves host-direct and offloaded clients
  // concurrently; its stats just accumulate.
  auto host = Connect("tenant-a", perf::Platform::kServerHost,
                      net::Transport::kRdma, "mix");
  auto dpu = Connect("tenant-b", perf::Platform::kBlueField3,
                     net::Transport::kTcp, "mix");
  ASSERT_NE(host, nullptr);
  ASSERT_NE(dpu, nullptr);
  dfs::OpenFlags create;
  create.create = true;
  auto f1 = host->Open("/h", create);
  auto f2 = dpu->Open("/d", create);
  ASSERT_TRUE(f1.ok() && f2.ok());
  ASSERT_TRUE(host->Pwrite(*f1, 0, MakePatternBuffer(kMiB, 1)).ok());
  ASSERT_TRUE(dpu->Pwrite(*f2, 0, MakePatternBuffer(kMiB, 2)).ok());
  const auto stats = cluster_->engine()->stats();
  EXPECT_GT(stats.updates, 0u);
  EXPECT_GE(stats.bulk_bytes_in, 2 * kMiB);
}

}  // namespace
}  // namespace ros2
