// Pipelined DaosClient batch APIs (UpdateBatch/FetchBatch) and the
// concurrent replica fan-out: correctness across engines, degraded-write
// semantics with down engines (survivors land, misses journal), HEAD
// failover, in-flight-window backpressure on batches larger than the
// window, and same-dkey ordering inside one batch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"
#include "daos/placement.h"

namespace ros2::daos {
namespace {

class DaosBatchTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  static constexpr int kEngines = 3;

  void SetUp() override {
    for (int e = 0; e < kEngines; ++e) {
      storage::NvmeDeviceConfig dev;
      dev.capacity_bytes = 256 * kMiB;
      devices_.push_back(std::make_unique<storage::NvmeDevice>(dev));
      storage::NvmeDevice* raw[] = {devices_.back().get()};
      EngineConfig config;
      config.address = "fabric://batch-engine-" + std::to_string(e);
      config.targets = 4;
      config.scm_per_target = 16 * kMiB;
      auto engine = DaosEngine::Create(&fabric_, config, raw);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      engines_.push_back(std::move(*engine));
    }
    for (auto& engine : engines_) raw_engines_.push_back(engine.get());
  }

  Result<std::unique_ptr<DaosClient>> Connect(std::uint32_t replicas) {
    DaosClient::ConnectOptions options;
    options.transport = GetParam();
    options.client_address = "fabric://batch-client";
    options.replicas = replicas;
    return DaosClient::Connect(&fabric_, raw_engines_, options);
  }

  std::uint64_t TotalUpdates() const {
    std::uint64_t n = 0;
    for (const auto& engine : engines_) n += engine->stats().updates;
    return n;
  }

  net::Fabric fabric_;
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices_;
  std::vector<std::unique_ptr<DaosEngine>> engines_;
  std::vector<DaosEngine*> raw_engines_;
};

TEST_P(DaosBatchTest, BatchRoundTripAcrossEnginesAndTargets) {
  auto client = Connect(1);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto cont = (*client)->ContainerCreate("batch");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  constexpr int kOps = 24;
  std::vector<Buffer> payloads;
  std::vector<DaosClient::UpdateOp> updates;
  for (int i = 0; i < kOps; ++i) {
    payloads.push_back(MakePatternBuffer(2048, std::uint64_t(i) + 1));
    DaosClient::UpdateOp op;
    op.cont = *cont;
    op.oid = *oid;
    op.dkey = "dkey-" + std::to_string(i);  // spreads engines AND targets
    op.akey = "a";
    op.offset = 0;
    op.data = payloads.back();
    updates.push_back(std::move(op));
  }
  auto epochs = (*client)->UpdateBatch(updates);
  ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
  ASSERT_EQ(epochs->size(), std::size_t(kOps));
  for (Epoch e : *epochs) EXPECT_GT(e, 0u);
  EXPECT_EQ(TotalUpdates(), std::uint64_t(kOps));

  std::vector<Buffer> outs(kOps);
  std::vector<DaosClient::FetchOp> fetches;
  for (int i = 0; i < kOps; ++i) {
    outs[std::size_t(i)].resize(2048);
    DaosClient::FetchOp op;
    op.cont = *cont;
    op.oid = *oid;
    op.dkey = "dkey-" + std::to_string(i);
    op.akey = "a";
    op.offset = 0;
    op.out = outs[std::size_t(i)];
    fetches.push_back(std::move(op));
  }
  ASSERT_TRUE((*client)->FetchBatch(fetches).ok());
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(outs[std::size_t(i)], payloads[std::size_t(i)])
        << "fetch " << i << " returned the wrong op's bytes";
  }
}

TEST_P(DaosBatchTest, BatchLargerThanInFlightWindowStreamsThrough) {
  auto client = Connect(1);
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("big-batch");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  // Default rpc window is 32 in-flight; 100 ops must stream through via
  // backpressure pumping, not fail or deadlock.
  constexpr int kOps = 100;
  std::vector<Buffer> payloads;
  std::vector<DaosClient::UpdateOp> updates;
  for (int i = 0; i < kOps; ++i) {
    payloads.push_back(MakePatternBuffer(256, std::uint64_t(i) + 1));
    updates.push_back({*cont, *oid, "wide-" + std::to_string(i), "a", 0,
                       payloads.back()});
  }
  auto epochs = (*client)->UpdateBatch(updates);
  ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
  EXPECT_EQ(TotalUpdates(), std::uint64_t(kOps));
}

TEST_P(DaosBatchTest, SameDkeyKeepsBatchOrder) {
  auto client = Connect(1);
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("order");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  // Same (dkey, akey, offset) five times in one batch: per-target FIFO
  // means the LAST op's bytes win and epochs increase in batch order.
  constexpr int kOps = 5;
  std::vector<Buffer> payloads;
  std::vector<DaosClient::UpdateOp> updates;
  for (int i = 0; i < kOps; ++i) {
    payloads.push_back(MakePatternBuffer(512, std::uint64_t(i) + 10));
    updates.push_back({*cont, *oid, "same-dkey", "a", 0, payloads.back()});
  }
  auto epochs = (*client)->UpdateBatch(updates);
  ASSERT_TRUE(epochs.ok());
  for (int i = 1; i < kOps; ++i) {
    EXPECT_GT((*epochs)[std::size_t(i)], (*epochs)[std::size_t(i) - 1])
        << "batch order not FIFO on the shared dkey";
  }
  Buffer out(512);
  ASSERT_TRUE((*client)
                  ->Fetch(*cont, *oid, "same-dkey", "a", 0, out)
                  .ok());
  EXPECT_EQ(out, payloads.back());
}

TEST_P(DaosBatchTest, ReplicatedBatchWritesEveryReplicaConcurrently) {
  auto client = Connect(2);
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("replicated");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  constexpr int kOps = 12;
  std::vector<Buffer> payloads;
  std::vector<DaosClient::UpdateOp> updates;
  for (int i = 0; i < kOps; ++i) {
    payloads.push_back(MakePatternBuffer(1024, std::uint64_t(i) + 3));
    updates.push_back({*cont, *oid, "rep-" + std::to_string(i), "a", 0,
                       payloads.back()});
  }
  auto epochs = (*client)->UpdateBatch(updates);
  ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
  // Write-all x 2 replicas: every op updated exactly two engines.
  EXPECT_EQ(TotalUpdates(), std::uint64_t(kOps) * 2);

  // Failover readback: down one engine, every op remains fetchable at
  // HEAD from its surviving replica.
  ASSERT_TRUE((*client)->SetEngineDown(0, true).ok());
  std::vector<Buffer> outs(kOps);
  std::vector<DaosClient::FetchOp> fetches;
  for (int i = 0; i < kOps; ++i) {
    outs[std::size_t(i)].resize(1024);
    DaosClient::FetchOp op;
    op.cont = *cont;
    op.oid = *oid;
    op.dkey = "rep-" + std::to_string(i);
    op.akey = "a";
    op.out = outs[std::size_t(i)];
    fetches.push_back(std::move(op));
  }
  ASSERT_TRUE((*client)->FetchBatch(fetches).ok());
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(outs[std::size_t(i)], payloads[std::size_t(i)]);
  }
}

TEST_P(DaosBatchTest, DownEngineDegradesBatchWritesAndJournals) {
  auto client = Connect(2);
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("down");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  ASSERT_TRUE((*client)->SetEngineDown(1, true).ok());
  const std::uint64_t updates_before = TotalUpdates();
  Buffer payload = MakePatternBuffer(1024, 5);
  std::vector<DaosClient::UpdateOp> updates;
  // Enough dkeys that SOME op's replica set includes engine 1 for sure
  // (replica sets are {primary, primary+1} over 3 engines).
  for (int i = 0; i < 8; ++i) {
    updates.push_back({*cont, *oid, "d" + std::to_string(i), "a", 0,
                       payload});
  }
  auto epochs = (*client)->UpdateBatch(updates);
  ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
  ASSERT_EQ(epochs->size(), updates.size());

  // Degraded-write accounting: copies owed to the DOWN engine are
  // skipped and journaled; every other copy lands.
  std::uint64_t expect_landed = 0;
  std::size_t expect_journaled = 0;
  for (const auto& op : updates) {
    const std::uint32_t primary = PlaceEngine(op.oid, op.dkey, kEngines);
    const bool hits_down =
        primary == 1 || (primary + 1) % kEngines == 1;
    expect_landed += hits_down ? 1 : 2;
    if (hits_down) ++expect_journaled;
  }
  EXPECT_GT(expect_journaled, 0u) << "8 dkeys must touch engine 1";
  EXPECT_EQ(TotalUpdates() - updates_before, expect_landed);
  EXPECT_EQ((*client)->pool_map()->journal().depth(1), expect_journaled);

  // Every op stays readable at HEAD from its surviving replica.
  for (const auto& op : updates) {
    Buffer out(payload.size());
    ASSERT_TRUE(
        (*client)->Fetch(*cont, *oid, op.dkey, "a", 0, out).ok());
    EXPECT_EQ(out, payload);
  }
}

TEST_P(DaosBatchTest, SynchronousUpdateDegradesAroundDownReplica) {
  // The concurrent CallReplicas fan-out keeps the serial path's degraded
  // contract (multiengine_test covers it broadly; this pins the
  // post-pipeline behavior on a single op): a DOWN replica-set member
  // never fails the write — the survivors land it and the miss is
  // journaled for rebuild.
  auto client = Connect(2);
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("sync-rep");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer payload = MakePatternBuffer(4096, 11);
  auto epoch = (*client)->Update(*cont, *oid, "k", "a", 0, payload);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(TotalUpdates(), 2u);

  // The dkey's replica set is exactly 2 of the 3 engines: downing a
  // replica member degrades the update (it still succeeds, journaling
  // the miss); downing the third engine leaves the update unaffected.
  // HEAD reads survive any single down engine via failover.
  ResyncJournal& journal = (*client)->pool_map()->journal();
  int journaled_downs = 0;
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    ASSERT_TRUE((*client)->SetEngineDown(e, true).ok());
    const std::size_t depth_before = journal.depth(e);
    ASSERT_TRUE((*client)->Update(*cont, *oid, "k", "a", 0, payload).ok())
        << "degraded write must succeed with engine " << e << " down";
    if (journal.depth(e) > depth_before) ++journaled_downs;
    Buffer out(4096);
    ASSERT_TRUE((*client)->Fetch(*cont, *oid, "k", "a", 0, out).ok())
        << "HEAD fetch must fail over around down engine " << e;
    EXPECT_EQ(out, payload);
    ASSERT_TRUE((*client)->SetEngineDown(e, false).ok());
  }
  EXPECT_EQ(journaled_downs, 2) << "exactly the replica-set members must "
                                   "journal a missed copy";
}

INSTANTIATE_TEST_SUITE_P(Transports, DaosBatchTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::daos
