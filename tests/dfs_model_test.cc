// Shape tests for the Fig. 5 (end-to-end DFS, host vs BlueField-3) model.
// These encode the paper's §4.4 takeaways — the headline results of ROS2.
#include "perf/dfs_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::perf {
namespace {

double GiBps(const sim::ClosedLoopResult& r) {
  return r.bytes_per_sec / double(kGiB);
}

sim::ClosedLoopResult RunModel(Platform p, Transport t, std::uint32_t ssds,
                          std::uint32_t jobs, OpKind op, std::uint64_t bs,
                          std::uint64_t ops = 20000) {
  DfsModel::Config config;
  config.platform = p;
  config.transport = t;
  config.num_ssds = ssds;
  config.num_jobs = jobs;
  config.op = op;
  config.block_size = bs;
  DfsModel model(config);
  return model.Run(ops);
}

// ---------------------------------------------------------- 1 MiB, RDMA

TEST(DfsModelTest, HostRdmaOneSsdLargeReads) {
  // Fig. 5b: ~6.4 GiB/s (slightly above the raw device: SCM tier hits).
  const double r =
      GiBps(RunModel(Platform::kServerHost, Transport::kRdma, 1, 4,
                OpKind::kRead, kMiB));
  EXPECT_NEAR(r, 6.4, 0.5);
}

TEST(DfsModelTest, HostRdmaFourSsdsLinkBound) {
  // Fig. 5b: ~10-11 GiB/s with 4 SSDs (100 Gbps link becomes the ceiling).
  const double r =
      GiBps(RunModel(Platform::kServerHost, Transport::kRdma, 4, 8,
                OpKind::kRead, kMiB));
  EXPECT_GE(r, 10.0);
  EXPECT_LE(r, 11.2);
}

TEST(DfsModelTest, DpuRdmaMatchesHostAtLargeBlocks) {
  // §4.4 takeaway (i): offload is performance-equivalent for large I/O
  // under RDMA.
  for (std::uint32_t ssds : {1u, 4u}) {
    const double host = GiBps(RunModel(Platform::kServerHost, Transport::kRdma,
                                  ssds, 8, OpKind::kRead, kMiB));
    const double dpu = GiBps(RunModel(Platform::kBlueField3, Transport::kRdma,
                                 ssds, 8, OpKind::kRead, kMiB));
    EXPECT_NEAR(dpu, host, host * 0.08) << ssds << " ssds";
  }
}

// ----------------------------------------------------------- 1 MiB, TCP

TEST(DfsModelTest, HostTcpLargeReadsInPaperBand) {
  // Fig. 5a top: ~5-6 GiB/s (1 SSD), ~10 GiB/s (4 SSDs).
  const double one = GiBps(RunModel(Platform::kServerHost, Transport::kTcp, 1, 8,
                               OpKind::kRead, kMiB));
  EXPECT_GE(one, 5.0);
  EXPECT_LE(one, 6.5);
  const double four = GiBps(RunModel(Platform::kServerHost, Transport::kTcp, 4, 8,
                                OpKind::kRead, kMiB));
  EXPECT_NEAR(four, 10.0, 0.8);
}

TEST(DfsModelTest, DpuTcpReadsCollapse) {
  // Fig. 5a bottom: 1 MiB reads cap at ~3.1 GiB/s at low concurrency...
  const double low = GiBps(RunModel(Platform::kBlueField3, Transport::kTcp, 1, 1,
                               OpKind::kRead, kMiB));
  EXPECT_NEAR(low, 3.1, 0.4);
  // ...and DEGRADE with concurrency (~1.6 GiB/s at 16 jobs) — the only
  // non-monotone series in the whole evaluation.
  const double high = GiBps(RunModel(Platform::kBlueField3, Transport::kTcp, 4,
                                16, OpKind::kRead, kMiB));
  EXPECT_NEAR(high, 1.6, 0.35);
  EXPECT_LT(high, low);
}

TEST(DfsModelTest, DpuTcpWritesStillFast) {
  // Fig. 5a bottom: 4-SSD TCP *writes* from the DPU approach ~10 GiB/s
  // (TX is DMA-assisted; the bottleneck is receive-side).
  const double w = GiBps(RunModel(Platform::kBlueField3, Transport::kTcp, 4, 8,
                             OpKind::kWrite, kMiB));
  EXPECT_GE(w, 8.5);
  EXPECT_LE(w, 11.0);
}

// ------------------------------------------------------------- 4 KiB

TEST(DfsModelTest, HostTcpSmallBlockBand) {
  // Fig. 5c top: ~0.4-0.6 M IOPS.
  const auto r = RunModel(Platform::kServerHost, Transport::kTcp, 1, 16,
                     OpKind::kRandRead, 4096, 60000);
  EXPECT_GE(r.ops_per_sec, 0.40e6);
  EXPECT_LE(r.ops_per_sec, 0.62e6);
}

TEST(DfsModelTest, DpuTcpSmallBlockBand) {
  // Fig. 5c bottom: ~0.18-0.23 M IOPS.
  const auto r = RunModel(Platform::kBlueField3, Transport::kTcp, 1, 16,
                     OpKind::kRandRead, 4096, 60000);
  EXPECT_GE(r.ops_per_sec, 0.17e6);
  EXPECT_LE(r.ops_per_sec, 0.25e6);
}

TEST(DfsModelTest, DpuRdmaAtLeastTwiceDpuTcpAtSmallBlocks) {
  // §4.4: "RDMA on the DPU improves markedly over its TCP results (often
  // 2x or more)".
  const auto tcp = RunModel(Platform::kBlueField3, Transport::kTcp, 1, 16,
                       OpKind::kRandRead, 4096, 60000);
  const auto rdma = RunModel(Platform::kBlueField3, Transport::kRdma, 1, 16,
                        OpKind::kRandRead, 4096, 60000);
  EXPECT_GE(rdma.ops_per_sec, 1.9 * tcp.ops_per_sec);
}

TEST(DfsModelTest, DpuRdmaTrailsHostBy20To40PercentAtSmallBlocks) {
  // §4.4: "though it still trails the CPU host by roughly 20-40%".
  const auto host = RunModel(Platform::kServerHost, Transport::kRdma, 1, 16,
                        OpKind::kRandRead, 4096, 60000);
  const auto dpu = RunModel(Platform::kBlueField3, Transport::kRdma, 1, 16,
                       OpKind::kRandRead, 4096, 60000);
  const double ratio = dpu.ops_per_sec / host.ops_per_sec;
  EXPECT_GE(ratio, 0.55);
  EXPECT_LE(ratio, 0.85);
}

// ------------------------------------------------------------ ablations

TEST(DfsModelTest, ChecksumsCostLittleAtSmallBlocks) {
  DfsModel::Config config;
  config.op = OpKind::kRandRead;
  config.block_size = 4096;
  config.num_jobs = 16;
  config.checksums = true;
  DfsModel with(config);
  config.checksums = false;
  DfsModel without(config);
  const double w = with.Run(40000).ops_per_sec;
  const double wo = without.Run(40000).ops_per_sec;
  EXPECT_GE(w, wo * 0.9);
}

TEST(DfsModelTest, InlineCryptoCostsLatencyNotLinkThroughput) {
  // 16 Arm cores sustain ~16 x 1.8 GiB/s of ChaCha20 — above the link
  // ceiling — so inline crypto shows up as per-op LATENCY (one pass over
  // the payload), not as lost aggregate throughput.
  DfsModel::Config config;
  config.platform = Platform::kBlueField3;
  config.op = OpKind::kRead;
  config.block_size = kMiB;
  config.num_jobs = 8;
  DfsModel plain(config);
  config.inline_crypto = true;
  DfsModel crypto(config);
  const auto p = plain.Run(20000);
  const auto c = crypto.Run(20000);
  EXPECT_LE(c.bytes_per_sec, p.bytes_per_sec * 1.02);

  // The latency cost is visible where service (not queueing) dominates:
  // one ChaCha20 pass over 1 MiB at ~1.8 GiB/s ~= 0.55 ms per op.
  config.inline_crypto = false;
  config.num_jobs = 1;
  config.iodepth = 2;
  DfsModel plain_lowq(config);
  config.inline_crypto = true;
  DfsModel crypto_lowq(config);
  const auto pl = plain_lowq.Run(5000);
  const auto cl = crypto_lowq.Run(5000);
  EXPECT_GT(cl.latency.mean(), pl.latency.mean() + 0.3e-3);
}

TEST(DfsModelTest, InlineCryptoThrottlesWhenDemandExceedsCryptoCapacity) {
  // At 1 job the pipeline is latency-bound, so the crypto pass directly
  // reduces delivered bandwidth.
  DfsModel::Config config;
  config.platform = Platform::kBlueField3;
  config.op = OpKind::kRead;
  config.block_size = kMiB;
  config.num_jobs = 1;
  config.iodepth = 1;
  DfsModel plain(config);
  config.inline_crypto = true;
  DfsModel crypto(config);
  const double p = GiBps(plain.Run(5000));
  const double c = GiBps(crypto.Run(5000));
  EXPECT_LT(c, p * 0.85);
}

TEST(DfsModelTest, GpuDirectBeatsStagedPlacement) {
  // With 4 SSDs the link sustains ~10.7 GiB/s, above the 9 GiB/s staging
  // copy channel — GPUDirect removes that stage entirely.
  DfsModel::Config config;
  config.platform = Platform::kBlueField3;
  config.op = OpKind::kRead;
  config.block_size = kMiB;
  config.num_jobs = 8;
  config.num_ssds = 4;
  config.sink = DataSink::kGpuStaged;
  DfsModel staged(config);
  config.sink = DataSink::kGpuDirect;
  DfsModel direct(config);
  const double s = GiBps(staged.Run(20000));
  const double d = GiBps(direct.Run(20000));
  EXPECT_GT(d, s);
}

TEST(DfsModelTest, TenantRateLimitCapsThroughput) {
  DfsModel::Config config;
  config.op = OpKind::kRead;
  config.block_size = kMiB;
  config.num_jobs = 8;
  config.tenants = 2;
  config.per_tenant_bw = 1.0 * double(kGiB);
  DfsModel model(config);
  const double total = GiBps(model.Run(20000));
  // Two tenants at 1 GiB/s each.
  EXPECT_NEAR(total, 2.0, 0.2);
}

class DfsMatrixTest
    : public ::testing::TestWithParam<std::tuple<Platform, Transport,
                                                 OpKind>> {};

TEST_P(DfsMatrixTest, ModelProducesFiniteSaneNumbers) {
  // Property over the full Fig. 5 matrix: every cell yields positive,
  // finite throughput and latency no lower than the wire floor.
  const auto [platform, transport, op] = GetParam();
  for (std::uint64_t bs : {std::uint64_t(4096), kMiB}) {
    const auto r = RunModel(platform, transport, 1, 4, op, bs, 10000);
    EXPECT_GT(r.ops_per_sec, 0.0);
    EXPECT_GT(r.bytes_per_sec, 0.0);
    EXPECT_GE(r.latency.mean(), 2.0 * 1.5e-6);
    EXPECT_LT(r.latency.mean(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DfsMatrixTest,
    ::testing::Combine(::testing::Values(Platform::kServerHost,
                                         Platform::kBlueField3),
                       ::testing::Values(Transport::kTcp, Transport::kRdma),
                       ::testing::Values(OpKind::kRead, OpKind::kWrite,
                                         OpKind::kRandRead,
                                         OpKind::kRandWrite)));

}  // namespace
}  // namespace ros2::perf
