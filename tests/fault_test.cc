// FaultPlan unit tests plus integration through the layers that consult
// it: the net-layer legacy injectors (now thin wrappers over the owning
// object's plan) and the RPC server's kRpcDrop/kRpcDelay points.
#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

namespace ros2::common {
namespace {

TEST(FaultPlanTest, DisarmedNeverFires) {
  FaultPlan plan;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.Evaluate(FaultPoint::kNetSend).fire);
  }
  EXPECT_EQ(plan.arrivals(FaultPoint::kNetSend), 100u);
  EXPECT_EQ(plan.fired(FaultPoint::kNetSend), 0u);
  EXPECT_FALSE(plan.armed(FaultPoint::kNetSend));
}

TEST(FaultPlanTest, SkipCountWindow) {
  FaultPlan plan;
  FaultSpec spec;
  spec.skip = 3;
  spec.count = 2;
  plan.Arm(FaultPoint::kRpcDrop, spec);
  std::vector<bool> fires;
  for (int i = 0; i < 8; ++i) {
    fires.push_back(plan.Evaluate(FaultPoint::kRpcDrop).fire);
  }
  // 3 skipped, 2 fired, exhausted after.
  EXPECT_EQ(fires, (std::vector<bool>{false, false, false, true, true,
                                      false, false, false}));
  EXPECT_EQ(plan.fired(FaultPoint::kRpcDrop), 2u);
}

TEST(FaultPlanTest, RearmResetsWindowAndZeroCountDisarms) {
  FaultPlan plan;
  plan.Arm(FaultPoint::kNetSend, {/*skip=*/0, /*count=*/1});
  EXPECT_TRUE(plan.Evaluate(FaultPoint::kNetSend).fire);
  EXPECT_FALSE(plan.Evaluate(FaultPoint::kNetSend).fire);
  plan.Arm(FaultPoint::kNetSend, {/*skip=*/1, /*count=*/1});
  EXPECT_FALSE(plan.Evaluate(FaultPoint::kNetSend).fire);
  EXPECT_TRUE(plan.Evaluate(FaultPoint::kNetSend).fire);
  FaultSpec disarm;
  disarm.count = 0;
  plan.Arm(FaultPoint::kNetSend, disarm);
  EXPECT_FALSE(plan.armed(FaultPoint::kNetSend));
  EXPECT_FALSE(plan.Evaluate(FaultPoint::kNetSend).fire);
}

TEST(FaultPlanTest, PointsAreIndependent) {
  FaultPlan plan;
  plan.Arm(FaultPoint::kNetRegister, {/*skip=*/0, /*count=*/1});
  EXPECT_FALSE(plan.Evaluate(FaultPoint::kNetSend).fire);
  EXPECT_TRUE(plan.Evaluate(FaultPoint::kNetRegister).fire);
  EXPECT_FALSE(plan.Evaluate(FaultPoint::kRpcDrop).fire);
}

TEST(FaultPlanTest, ProbabilisticWindowIsSeedDeterministic) {
  // Two plans with the same seed replay the same flaky pattern; a third
  // with a different seed is allowed to differ (and a 64-arrival window at
  // p=0.5 fires some but not all).
  FaultSpec spec;
  spec.skip = 0;
  spec.count = 1000;
  spec.probability = 0.5;
  FaultPlan a(42), b(42), c(43);
  a.Arm(FaultPoint::kRpcDrop, spec);
  b.Arm(FaultPoint::kRpcDrop, spec);
  c.Arm(FaultPoint::kRpcDrop, spec);
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 64; ++i) {
    fa.push_back(a.Evaluate(FaultPoint::kRpcDrop).fire);
    fb.push_back(b.Evaluate(FaultPoint::kRpcDrop).fire);
    fc.push_back(c.Evaluate(FaultPoint::kRpcDrop).fire);
  }
  EXPECT_EQ(fa, fb);
  EXPECT_GT(a.fired(FaultPoint::kRpcDrop), 0u);
  EXPECT_LT(a.fired(FaultPoint::kRpcDrop), 64u);
  // Probability draws only consume RNG when in-window: a fired count
  // mismatch across seeds is expected but not guaranteed; the sequences
  // existing and being internally consistent is the contract.
  EXPECT_EQ(fc.size(), 64u);
}

TEST(FaultPlanTest, DelayPayloadRidesTheDecision) {
  FaultPlan plan;
  FaultSpec spec;
  spec.count = 1;
  spec.delay_us = 250;
  plan.Arm(FaultPoint::kRpcDelay, spec);
  const FaultDecision d = plan.Evaluate(FaultPoint::kRpcDelay);
  EXPECT_TRUE(d.fire);
  EXPECT_EQ(d.delay_us, 250u);
  EXPECT_EQ(plan.Evaluate(FaultPoint::kRpcDelay).delay_us, 0u);
}

// --- net-layer integration: the legacy injectors arm the same plan ------

TEST(FaultPlanNetTest, LegacySendInjectorArmsQpPlan) {
  net::Fabric fabric;
  auto a = fabric.CreateEndpoint("fabric://fault-a");
  auto b = fabric.CreateEndpoint("fabric://fault-b");
  ASSERT_TRUE(a.ok() && b.ok());
  auto qp = (*a)->Connect(*b, net::Transport::kTcp, (*a)->AllocPd(),
                          (*b)->AllocPd());
  ASSERT_TRUE(qp.ok());
  (*qp)->InjectSendFaults(2);
  EXPECT_TRUE((*qp)->fault_plan().armed(FaultPoint::kNetSend));
  Buffer payload = MakePatternBuffer(64, 1);
  EXPECT_EQ((*qp)->Send(payload).code(), ErrorCode::kUnavailable);
  EXPECT_EQ((*qp)->Send(payload).code(), ErrorCode::kUnavailable);
  EXPECT_TRUE((*qp)->Send(payload).ok());
  EXPECT_EQ((*qp)->fault_plan().fired(FaultPoint::kNetSend), 2u);
}

TEST(FaultPlanNetTest, LegacyRegisterInjectorHonorsSkip) {
  net::Fabric fabric;
  auto ep = fabric.CreateEndpoint("fabric://fault-reg");
  ASSERT_TRUE(ep.ok());
  (*ep)->InjectRegisterFaults(/*skip=*/1, /*count=*/1);
  Buffer buf = MakePatternBuffer(128, 2);
  const auto pd = (*ep)->AllocPd();
  auto first = (*ep)->RegisterMemory(pd, buf, net::kRemoteRead);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*ep)->RegisterMemory(pd, buf, net::kRemoteRead).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE((*ep)->RegisterMemory(pd, buf, net::kRemoteRead).ok());
}

// --- RPC-layer integration: drop + delay points in Dispatch -------------

class FaultRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://fault-server");
    auto client_ep = fabric_.CreateEndpoint("fabric://fault-client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    auto qp = (*client_ep)->Connect(*server_ep, net::Transport::kTcp,
                                    (*client_ep)->AllocPd(),
                                    (*server_ep)->AllocPd());
    ASSERT_TRUE(qp.ok());
    qp_ = *qp;
    client_ = std::make_unique<rpc::RpcClient>(
        qp_, *client_ep, [this] { (void)server_.Progress(qp_->peer()); });
    server_.Register(
        1, [](const Buffer& header, rpc::BulkIo&) -> Result<Buffer> {
          return header;
        });
  }

  net::Fabric fabric_;
  net::Qp* qp_ = nullptr;
  rpc::RpcServer server_;
  std::unique_ptr<rpc::RpcClient> client_;
};

TEST_F(FaultRpcTest, DroppedRequestAnswersUnavailable) {
  FaultPlan plan;
  plan.Arm(FaultPoint::kRpcDrop, {/*skip=*/1, /*count=*/1});
  server_.set_fault_plan(&plan);
  Buffer header = MakePatternBuffer(8, 3);
  EXPECT_TRUE(client_->Call(1, header, {}).ok());
  auto dropped = client_->Call(1, header, {});
  EXPECT_EQ(dropped.status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(client_->Call(1, header, {}).ok());
  EXPECT_EQ(server_.requests_dropped(), 1u);
  server_.set_fault_plan(nullptr);
  EXPECT_TRUE(client_->Call(1, header, {}).ok());
}

TEST_F(FaultRpcTest, DelayedRequestStillAnswers) {
  FaultPlan plan;
  FaultSpec spec;
  spec.count = 1;
  spec.delay_us = 100;  // keep the test fast; firing is what we assert
  plan.Arm(FaultPoint::kRpcDelay, spec);
  server_.set_fault_plan(&plan);
  Buffer header = MakePatternBuffer(8, 4);
  EXPECT_TRUE(client_->Call(1, header, {}).ok());
  EXPECT_EQ(plan.fired(FaultPoint::kRpcDelay), 1u);
  EXPECT_EQ(server_.requests_dropped(), 0u);
}

}  // namespace
}  // namespace ros2::common
