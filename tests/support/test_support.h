// Shared test helpers, so individual tests stop growing private copies of
// byte-view casts, temp-dir plumbing, and RNG seeding policy.
//
// Pattern-buffer helpers (FillPattern / VerifyPattern / MakePatternBuffer)
// live in src/common/bytes.h because the FIO harness uses them too; this
// header re-exports them for tests alongside the test-only utilities.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ftw.h>
#include <span>
#include <string>
#include <string_view>
#include <unistd.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace ros2::test {

/// Views a C string (or any char array) as a byte span without copying.
inline std::span<const std::byte> AsBytes(const char* data, std::size_t size) {
  return {reinterpret_cast<const std::byte*>(data), size};
}

inline std::span<const std::byte> AsBytes(std::string_view text) {
  return {reinterpret_cast<const std::byte*>(text.data()), text.size()};
}

/// Copies a string's characters into an owning Buffer (for APIs that take
/// Buffer values, e.g. RPC payloads and VOS records).
inline Buffer ToBuffer(std::string_view text) {
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  return Buffer(data, data + text.size());
}

/// All test randomness must flow through a fixed default seed (or an explicit
/// per-test seed) so failures reproduce run-to-run; see src/common/rng.h.
inline constexpr std::uint64_t kDefaultTestSeed = 0x5EEDBA5EBA11ull;

inline Rng MakeTestRng(std::uint64_t seed = kDefaultTestSeed) {
  return Rng(seed);
}

/// RAII temporary directory under $TMPDIR (default /tmp), recursively
/// removed on destruction. For tests that need real files (e.g. pmem pool
/// backing files or jobfile parsing from disk).
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/ros2_test_XXXXXX";
    if (mkdtemp(tmpl.data()) != nullptr) path_ = tmpl;
  }

  ~TempDir() {
    if (!path_.empty()) RemoveTree(path_);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Empty when creation failed (disk full / unwritable TMPDIR).
  const std::string& path() const { return path_; }
  bool ok() const { return !path_.empty(); }

  /// `name` joined onto the temp dir; no separator handling beyond '/'.
  std::string File(std::string_view name) const {
    return path_ + "/" + std::string(name);
  }

 private:
  static void RemoveTree(const std::string& root) {
    nftw(
        root.c_str(),
        [](const char* fpath, const struct stat*, int, struct FTW*) {
          return ::remove(fpath);
        },
        /*nopenfd=*/16, FTW_DEPTH | FTW_PHYS);
  }

  std::string path_;
};

}  // namespace ros2::test
