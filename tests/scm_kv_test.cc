#include "scm/scm_kv.h"

#include <gtest/gtest.h>

namespace ros2::scm {
namespace {

class ScmKvTest : public ::testing::Test {
 protected:
  PmemPool pool_{1 << 20};
  ScmKv kv_{&pool_};
};

TEST_F(ScmKvTest, PutGetRoundTrip) {
  ASSERT_TRUE(kv_.Put("key", "value").ok());
  auto v = kv_.Get("key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()),
            "value");
}

TEST_F(ScmKvTest, OverwriteReplacesValue) {
  ASSERT_TRUE(kv_.Put("k", "old").ok());
  ASSERT_TRUE(kv_.Put("k", "newer-and-longer").ok());
  auto v = kv_.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 16u);
  EXPECT_EQ(kv_.size(), 1u);
}

TEST_F(ScmKvTest, OverwriteFreesOldStorage) {
  ASSERT_TRUE(kv_.Put("k", std::string(1000, 'x')).ok());
  const auto used_before = pool_.used_bytes();
  ASSERT_TRUE(kv_.Put("k", std::string(1000, 'y')).ok());
  EXPECT_EQ(pool_.used_bytes(), used_before);
}

TEST_F(ScmKvTest, GetMissingKey) {
  EXPECT_EQ(kv_.Get("nope").status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(kv_.Contains("nope"));
}

TEST_F(ScmKvTest, DeleteRemovesAndFrees) {
  ASSERT_TRUE(kv_.Put("k", "v").ok());
  const auto used = pool_.used_bytes();
  ASSERT_TRUE(kv_.Delete("k").ok());
  EXPECT_LT(pool_.used_bytes(), used);
  EXPECT_EQ(kv_.Delete("k").code(), ErrorCode::kNotFound);
  EXPECT_EQ(kv_.size(), 0u);
}

TEST_F(ScmKvTest, EmptyValueSupported) {
  ASSERT_TRUE(kv_.Put("empty", "").ok());
  auto v = kv_.Get("empty");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST_F(ScmKvTest, EmptyKeyRejected) {
  EXPECT_EQ(kv_.Put("", "v").code(), ErrorCode::kInvalidArgument);
}

TEST_F(ScmKvTest, ListPrefixOrdered) {
  ASSERT_TRUE(kv_.Put("dir/b", "1").ok());
  ASSERT_TRUE(kv_.Put("dir/a", "2").ok());
  ASSERT_TRUE(kv_.Put("dir/c", "3").ok());
  ASSERT_TRUE(kv_.Put("other", "4").ok());
  const auto keys = kv_.ListPrefix("dir/");
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "dir/a");
  EXPECT_EQ(keys[1], "dir/b");
  EXPECT_EQ(keys[2], "dir/c");
}

TEST_F(ScmKvTest, ListPrefixEmptyMatchesAll) {
  ASSERT_TRUE(kv_.Put("a", "1").ok());
  ASSERT_TRUE(kv_.Put("b", "2").ok());
  EXPECT_EQ(kv_.ListPrefix("").size(), 2u);
}

TEST_F(ScmKvTest, PoolExhaustionSurfacesAndKeepsOldValue) {
  PmemPool tiny(128);
  ScmKv kv(&tiny);
  ASSERT_TRUE(kv.Put("k", std::string(64, 'a')).ok());
  // The new value cannot fit alongside the old during allocate-then-swap.
  EXPECT_EQ(kv.Put("k", std::string(100, 'b')).code(),
            ErrorCode::kResourceExhausted);
  auto v = kv.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)[0], std::byte('a'));
}

TEST_F(ScmKvTest, ManyKeysSurviveChurn) {
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(kv_
                      .Put("key" + std::to_string(i),
                           "round" + std::to_string(round))
                      .ok());
    }
  }
  EXPECT_EQ(kv_.size(), 100u);
  auto v = kv_.Get("key42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v->data()), v->size()),
            "round2");
}

}  // namespace
}  // namespace ros2::scm
