// Target-partitioning tests: several VOS targets sharing one NVMe device
// must never touch each other's LBA ranges — the invariant behind the
// engine's target-per-device layout.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/vos.h"

namespace ros2::daos {
namespace {

TEST(VosPartitionTest, TwoTargetsOneDeviceDoNotCollide) {
  storage::NvmeDeviceConfig dev;
  dev.capacity_bytes = 128 * kMiB;
  storage::NvmeDevice device(dev);

  spdk::Bdev bdev_a(&device);
  spdk::Bdev bdev_b(&device);
  scm::PmemPool scm_a(8 * kMiB);
  scm::PmemPool scm_b(8 * kMiB);

  VosConfig config_a;
  config_a.nvme_base = 0;
  config_a.nvme_capacity = 64 * kMiB;
  VosConfig config_b;
  config_b.nvme_base = 64 * kMiB;
  config_b.nvme_capacity = 64 * kMiB;
  Vos a(&scm_a, &bdev_a, config_a);
  Vos b(&scm_b, &bdev_b, config_b);

  const ObjectId oid{1, 1};
  // Interleave large (NVMe-tier) writes on both targets.
  for (Epoch e = 1; e <= 20; ++e) {
    Buffer data_a = MakePatternBuffer(256 * 1024, e);
    Buffer data_b = MakePatternBuffer(256 * 1024, e + 1000);
    ASSERT_TRUE(a.UpdateArray(oid, "d", "a", e, (e - 1) * 256 * 1024,
                              data_a)
                    .ok());
    ASSERT_TRUE(b.UpdateArray(oid, "d", "a", e, (e - 1) * 256 * 1024,
                              data_b)
                    .ok());
  }
  // Every extent on both targets reads back intact (a collision would trip
  // the CRC as DATA_LOSS or return the other target's bytes).
  for (Epoch e = 1; e <= 20; ++e) {
    Buffer out(256 * 1024);
    ASSERT_TRUE(
        a.FetchArray(oid, "d", "a", kEpochHead, (e - 1) * 256 * 1024, out)
            .ok());
    EXPECT_EQ(VerifyPattern(out, e, 0), -1) << "target a extent " << e;
    ASSERT_TRUE(
        b.FetchArray(oid, "d", "a", kEpochHead, (e - 1) * 256 * 1024, out)
            .ok());
    EXPECT_EQ(VerifyPattern(out, e + 1000, 0), -1)
        << "target b extent " << e;
  }
}

TEST(VosPartitionTest, PartitionCapacityIsEnforced) {
  storage::NvmeDeviceConfig dev;
  dev.capacity_bytes = 128 * kMiB;
  storage::NvmeDevice device(dev);
  spdk::Bdev bdev(&device);
  scm::PmemPool scm(8 * kMiB);
  VosConfig config;
  config.nvme_base = 0;
  config.nvme_capacity = 1 * kMiB;  // tiny partition
  Vos vos(&scm, &bdev, config);

  const ObjectId oid{1, 1};
  // First large record fits; the partition (not the device) then fills up.
  Buffer big = MakePatternBuffer(512 * 1024, 1);
  ASSERT_TRUE(vos.UpdateArray(oid, "d", "a", 1, 0, big).ok());
  Buffer more = MakePatternBuffer(768 * 1024, 2);
  EXPECT_EQ(vos.UpdateArray(oid, "d", "a", 2, 1 << 20, more).code(),
            ErrorCode::kResourceExhausted);
}

TEST(VosPartitionTest, ReleasedSpaceIsReusableWithinPartition) {
  storage::NvmeDeviceConfig dev;
  dev.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice device(dev);
  spdk::Bdev bdev(&device);
  scm::PmemPool scm(8 * kMiB);
  VosConfig config;
  config.nvme_base = 0;
  config.nvme_capacity = 2 * kMiB;
  Vos vos(&scm, &bdev, config);

  const ObjectId oid{1, 1};
  // Fill, punch (reclaims), refill — several times over.
  for (int round = 0; round < 5; ++round) {
    Buffer data = MakePatternBuffer(1 << 20, std::uint64_t(round));
    ASSERT_TRUE(
        vos.UpdateArray(oid, "d", "a", Epoch(round * 2 + 1), 0, data).ok())
        << "round " << round;
    ASSERT_TRUE(vos.PunchObject(oid, Epoch(round * 2 + 2)).ok());
  }
}

}  // namespace
}  // namespace ros2::daos
