// Keeps tests/support/test_support.h honest: these helpers underpin other
// tests, so they get their own coverage instead of being trusted silently.
#include "support/test_support.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sys/stat.h>

#include "common/bytes.h"

namespace ros2::test {
namespace {

TEST(AsBytesTest, PointerFormViewsWithoutCopying) {
  const char* text = "hello";
  auto view = AsBytes(text, 5);
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(static_cast<const void*>(view.data()),
            static_cast<const void*>(text));
  EXPECT_EQ(view[0], std::byte{'h'});
  EXPECT_EQ(view[4], std::byte{'o'});
}

TEST(AsBytesTest, StringViewFormHandlesEmbeddedNul) {
  const std::string s("a\0b", 3);
  auto view = AsBytes(s);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], std::byte{0});
  EXPECT_EQ(view[2], std::byte{'b'});
}

TEST(ToBufferTest, CopiesCharactersIntoOwningBuffer) {
  const std::string s = "payload";
  Buffer buffer = ToBuffer(s);
  ASSERT_EQ(buffer.size(), s.size());
  EXPECT_NE(static_cast<const void*>(buffer.data()),
            static_cast<const void*>(s.data()));
  EXPECT_EQ(buffer[0], std::byte{'p'});
  EXPECT_EQ(buffer[6], std::byte{'d'});
}

TEST(MakeTestRngTest, DefaultSeedIsDeterministicAcrossInstances) {
  Rng a = MakeTestRng();
  Rng b = MakeTestRng();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at draw " << i;
  }
}

TEST(MakeTestRngTest, DistinctSeedsDiverge) {
  Rng a = MakeTestRng(1);
  Rng b = MakeTestRng(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(TempDirTest, CreatesWritableDirectoryAndCleansUp) {
  std::string path;
  {
    TempDir dir;
    ASSERT_TRUE(dir.ok());
    path = dir.path();
    struct stat st{};
    ASSERT_EQ(stat(path.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));

    // Must be writable, including nested content.
    const std::string file = dir.File("probe.txt");
    {
      std::ofstream out(file);
      out << "x";
      ASSERT_TRUE(out.good());
    }
    ASSERT_EQ(stat(file.c_str(), &st), 0);
  }
  // Destructor removes the tree, files included.
  struct stat st{};
  EXPECT_NE(stat(path.c_str(), &st), 0);
}

TEST(TempDirTest, TwoInstancesGetDistinctPaths) {
  TempDir a, b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.path(), b.path());
}

}  // namespace
}  // namespace ros2::test
