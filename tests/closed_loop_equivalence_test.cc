// Bit-exactness gate for the allocation-free closed-loop engine.
//
// The engine refactor (reused inline-capacity plans, streaming steady-state
// accumulator instead of buffer+sort, single-server ServerPool fast path)
// carries a hard invariant: every model number is BYTE-IDENTICAL to the
// pre-refactor engine. The expected values below are hexfloat captures from
// the original buffer-and-sort implementation (commit 77916ec) running the
// exact workloads defined here; EXPECT_EQ on doubles is bitwise equality
// for these values. If an intentional engine change ever breaks them, the
// whole bench baseline (bench/BENCH_baseline.json, EXPERIMENTS.md) moves
// with it — recapture, don't loosen.
#include <gtest/gtest.h>

#include "perf/local_fio_model.h"
#include "sim/closed_loop.h"

namespace ros2::sim {
namespace {

TEST(ClosedLoopEquivalenceTest, MultiContextMultiStage) {
  // 7 contexts over a 4-server pool + a contended single-server pool with
  // op-dependent service, fixed latency, uniform payload.
  ServerPool pool4("pool4", 4);
  ServerPool pool1("pool1", 1);
  ClosedLoopConfig config;
  config.contexts = 7;
  config.total_ops = 5000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t op, OpPlan& plan) {
        plan.stages.push_back({&pool4, 2e-4});
        plan.stages.push_back({&pool1, 1e-4 * double(1 + op % 3)});
        plan.fixed_latency = 5e-5;
        plan.bytes = 4096;
      });
  EXPECT_EQ(result.completed_ops, 5000u);
  EXPECT_EQ(result.makespan, 0x1.0009d49518197p+0);
  EXPECT_EQ(result.ops_per_sec, 0x1.388000000015cp+12);
  EXPECT_EQ(result.bytes_per_sec, 0x1.388000000015cp+24);
  EXPECT_EQ(result.latency.mean(), 0x1.6ed8d0bc1a76cp-10);
  EXPECT_EQ(result.latency.p50(), 0x1.6d127d05394fep-10);
  EXPECT_EQ(result.latency.p99(), 0x1.86d78ee17391cp-10);
  // Resource accounting is part of the contract (utilization reports).
  EXPECT_EQ(pool1.busy_time(), 0x1.fff2e48e8a4f7p-1);
  EXPECT_EQ(pool1.served_ops(), 5000u);
}

TEST(ClosedLoopEquivalenceTest, SingleContext) {
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 1;
  config.total_ops = 1000;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-3});
        plan.bytes = 100;
      });
  EXPECT_EQ(result.makespan, 0x1.0000000000003p+0);
  EXPECT_EQ(result.ops_per_sec, 0x1.f3ffffffffff9p+9);
  EXPECT_EQ(result.bytes_per_sec, 0x1.869fffffffffbp+16);
  EXPECT_EQ(result.latency.mean(), 0x1.0624dd2f1a9ffp-10);
  EXPECT_EQ(result.latency.p50(), 0x1.0823f71155233p-10);
  EXPECT_EQ(result.latency.p99(), 0x1.0823f71155233p-10);
}

TEST(ClosedLoopEquivalenceTest, FewerOpsThanContexts) {
  // Degenerate: 3 ops across 4 contexts — ids 0..2 issue exactly once and
  // the trimmed window collapses to the makespan-average fallback.
  ServerPool pool("p", 2);
  ClosedLoopConfig config;
  config.contexts = 4;
  config.total_ops = 3;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t c, std::uint64_t, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-3 * double(c + 1)});
        plan.bytes = 512;
      });
  EXPECT_EQ(result.completed_ops, 3u);
  EXPECT_EQ(result.makespan, 0x1.0624dd2f1a9fcp-8);
  EXPECT_EQ(result.ops_per_sec, 0x1.4d55555555555p+9);
  EXPECT_EQ(result.bytes_per_sec, 0x1.4d55555555555p+18);
  EXPECT_EQ(result.latency.mean(), 0x1.31d5acb6f4651p-9);
  EXPECT_EQ(result.latency.p50(), 0x1.0823f71155233p-9);
  EXPECT_EQ(result.latency.p99(), 0x1.0823f71155233p-8);
}

TEST(ClosedLoopEquivalenceTest, TrimWindowCollapse) {
  // trim_fraction at the 0.45 clamp with 10 ops: lo == hi is avoided
  // (trim = 4, window [4, 5]) but tiny windows stress boundary handling.
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 2;
  config.total_ops = 10;
  config.trim_fraction = 0.45;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t op, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-4 * double(1 + op % 2)});
        plan.bytes = 256;
      });
  EXPECT_EQ(result.makespan, 0x1.89374bc6a7efbp-10);
  EXPECT_EQ(result.ops_per_sec, 0x1.388p+12);
  EXPECT_EQ(result.bytes_per_sec, 0x1.388p+20);
  EXPECT_EQ(result.latency.mean(), 0x1.2599ed7c6fbd3p-12);
}

TEST(ClosedLoopEquivalenceTest, VaryingPayloadBytes) {
  // Per-op payload sizes exercise the windowed byte sum (not just op
  // counts); a single context keeps completion times distinct so the
  // sorted-commit order is unambiguous.
  ServerPool pool("p", 1);
  ClosedLoopConfig config;
  config.contexts = 1;
  config.total_ops = 777;
  auto result =
      RunClosedLoop(config, [&](std::uint32_t, std::uint64_t op, OpPlan& plan) {
        plan.stages.push_back({&pool, 1e-4 * double(1 + op % 7)});
        plan.bytes = 100 * (op % 5 + 1);
      });
  EXPECT_EQ(result.makespan, 0x1.3e425aee631efp-2);
  EXPECT_EQ(result.ops_per_sec, 0x1.381fa734ed31bp+11);
  EXPECT_EQ(result.bytes_per_sec, 0x1.6e5ba2af5359p+19);
  EXPECT_EQ(result.latency.mean(), 0x1.a36e2eb1c432p-12);
  EXPECT_EQ(result.latency.p50(), 0x1.a09ca0bdadd3ap-12);
  EXPECT_EQ(result.latency.p99(), 0x1.6d127d05394fep-11);
}

TEST(ClosedLoopEquivalenceTest, LocalFioModelFig3PanelD) {
  // Full-stack reference: the fig3 panel (d) workload (4 SSDs, 16 jobs,
  // 4 KiB random read) through perf::LocalFioModel. Also pins the
  // calibration constants this workload touches.
  perf::LocalFioModel::Config config;
  config.num_ssds = 4;
  config.num_jobs = 16;
  config.op = perf::OpKind::kRandRead;
  config.block_size = 4096;
  perf::LocalFioModel model(config);
  auto result = model.Run(60000);
  EXPECT_EQ(result.completed_ops, 60000u);
  EXPECT_EQ(result.makespan, 0x1.96800b5f28184p-4);
  EXPECT_EQ(result.ops_per_sec, 0x1.27f04d5252387p+19);
  EXPECT_EQ(result.bytes_per_sec, 0x1.27f04d5252387p+31);
  EXPECT_EQ(result.latency.mean(), 0x1.bb125f10399fep-12);
  EXPECT_EQ(result.latency.p50(), 0x1.ba61b299e8158p-12);
  EXPECT_EQ(result.latency.p99(), 0x1.ba61b299e8158p-12);
}

}  // namespace
}  // namespace ros2::sim
