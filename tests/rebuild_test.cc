// Self-healing redundancy, serial + deterministic: pool-map versioning,
// degraded writes feeding the resync journal, the background rebuild
// restoring full redundancy byte-exactly, and the reply-time degraded
// path (a send that raced the down-transition, the CheckReplicasUp
// TOCTOU the pool map closed).
#include "daos/rebuild.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/units.h"
#include "daos/client.h"
#include "daos/placement.h"

namespace ros2::daos {
namespace {

class RebuildTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kEngines = 3;
  static constexpr std::uint32_t kReplicas = 2;
  static constexpr std::uint32_t kVictim = 1;

  void SetUp() override {
    for (std::uint32_t e = 0; e < kEngines; ++e) {
      storage::NvmeDeviceConfig dev;
      dev.capacity_bytes = 256 * kMiB;
      devices_.push_back(std::make_unique<storage::NvmeDevice>(dev));
      storage::NvmeDevice* raw[] = {devices_.back().get()};
      EngineConfig config;
      config.address = "fabric://rebuild-engine-" + std::to_string(e);
      config.targets = 4;
      config.scm_per_target = 16 * kMiB;
      auto engine = DaosEngine::Create(&fabric_, config, raw);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      engines_.push_back(std::move(*engine));
    }
    for (auto& engine : engines_) raw_engines_.push_back(engine.get());
    map_ = std::make_unique<PoolMap>(kEngines);

    DaosClient::ConnectOptions options;
    options.client_address = "fabric://rebuild-client";
    options.replicas = kReplicas;
    options.pool_map = map_.get();
    auto client = DaosClient::Connect(&fabric_, raw_engines_, options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);

    RebuildManager::Options ropts;
    ropts.address = "fabric://rebuild-mgr";
    ropts.replicas = kReplicas;
    auto mgr =
        RebuildManager::Create(&fabric_, raw_engines_, map_.get(), ropts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    mgr_ = std::move(*mgr);
  }

  /// True when `engine` is in the dkey's replica ring.
  bool OwesCopy(const ObjectId& oid, const std::string& dkey,
                std::uint32_t engine) const {
    const std::uint32_t primary = PlaceEngine(oid, dkey, kEngines);
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      if ((primary + r) % kEngines == engine) return true;
    }
    return false;
  }

  /// Reads every dkey in `expected` with ONLY `engine` up, comparing
  /// bytes — proof the rebuilt engine alone can serve its share.
  void VerifyAlone(ContainerId cont, const ObjectId& oid,
                   std::uint32_t engine,
                   const std::map<std::string, Buffer>& expected) {
    for (std::uint32_t e = 0; e < kEngines; ++e) {
      if (e != engine) {
        ASSERT_TRUE(client_->SetEngineDown(e, true).ok());
      }
    }
    for (const auto& [dkey, want] : expected) {
      if (!OwesCopy(oid, dkey, engine)) continue;
      Buffer out(want.size());
      ASSERT_TRUE(client_->Fetch(cont, oid, dkey, "a", 0, out).ok())
          << dkey << " unreadable from rebuilt engine alone";
      EXPECT_EQ(out, want) << dkey << " diverged on the rebuilt engine";
    }
    for (std::uint32_t e = 0; e < kEngines; ++e) {
      if (e != engine) {
        ASSERT_TRUE(client_->SetEngineDown(e, false).ok());
      }
    }
  }

  net::Fabric fabric_;
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices_;
  std::vector<std::unique_ptr<DaosEngine>> engines_;
  std::vector<DaosEngine*> raw_engines_;
  std::unique_ptr<PoolMap> map_;
  std::unique_ptr<DaosClient> client_;
  std::unique_ptr<RebuildManager> mgr_;
};

TEST_F(RebuildTest, PoolMapVersionsEveryTransition) {
  EXPECT_EQ(map_->version(), 1u);
  EXPECT_EQ(map_->state(kVictim), EngineState::kUp);
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());
  EXPECT_EQ(map_->version(), 2u);
  EXPECT_FALSE(map_->readable(kVictim));
  EXPECT_FALSE(map_->writable(kVictim));
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kRebuilding).ok());
  EXPECT_EQ(map_->version(), 3u);
  EXPECT_FALSE(map_->readable(kVictim));
  EXPECT_TRUE(map_->writable(kVictim));
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kUp).ok());
  EXPECT_EQ(map_->version(), 4u);
  EXPECT_EQ(map_->transitions(), 3u);
  EXPECT_EQ(map_->SetState(99, EngineState::kDown).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(RebuildTest, SharedMapPropagatesToClientRouting) {
  // One SetState on the shared map redirects the client immediately: no
  // per-client flag, one authority.
  auto cont = client_->ContainerCreate("shared");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(512, 1);
  ASSERT_TRUE(client_->Update(*cont, *oid, "dk", "a", 0, data).ok());
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());
  Buffer out(data.size());
  EXPECT_TRUE(client_->Fetch(*cont, *oid, "dk", "a", 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(client_->pool_map(), map_.get());
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kUp).ok());
}

TEST_F(RebuildTest, DegradedWriteJournalsThenRebuildRestoresByteExact) {
  auto cont = client_->ContainerCreate("degraded");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());

  // Healthy phase: arrays and singles, some of which the victim holds.
  std::map<std::string, Buffer> arrays;
  std::map<std::string, Buffer> singles;
  for (int i = 0; i < 24; ++i) {
    const std::string dkey = "d" + std::to_string(i);
    Buffer data = MakePatternBuffer(2048, std::uint64_t(i) + 1);
    ASSERT_TRUE(client_->Update(*cont, *oid, dkey, "a", 0, data).ok());
    arrays[dkey] = std::move(data);
    const std::string skey = "s" + std::to_string(i);
    Buffer value = MakePatternBuffer(96, std::uint64_t(i) + 100);
    ASSERT_TRUE(
        client_->UpdateSingle(*cont, *oid, skey, "a", value).ok());
    singles[skey] = std::move(value);
  }

  // Failure: every write from here on degrades around the victim.
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());
  for (int i = 0; i < 24; i += 3) {
    const std::string dkey = "d" + std::to_string(i);
    Buffer data = MakePatternBuffer(2048, std::uint64_t(i) + 500);
    ASSERT_TRUE(client_->Update(*cont, *oid, dkey, "a", 0, data).ok())
        << "degraded overwrite must succeed";
    arrays[dkey] = std::move(data);
  }
  for (int i = 24; i < 32; ++i) {  // brand-new dkeys while degraded
    const std::string dkey = "d" + std::to_string(i);
    Buffer data = MakePatternBuffer(1024, std::uint64_t(i) + 900);
    ASSERT_TRUE(client_->Update(*cont, *oid, dkey, "a", 0, data).ok());
    arrays[dkey] = std::move(data);
  }
  EXPECT_GT(map_->journal().depth(kVictim), 0u);
  EXPECT_GT(map_->journal().recorded(), 0u);

  // Rebuild: bulk scan + journal replay, then UP.
  ASSERT_TRUE(mgr_->Rebuild(kVictim).ok());
  EXPECT_EQ(map_->state(kVictim), EngineState::kUp);
  EXPECT_EQ(map_->journal().depth(kVictim), 0u);
  EXPECT_GT(mgr_->dkeys_scanned(kVictim), 0u);
  EXPECT_GT(mgr_->bytes_copied(kVictim), 0u);
  EXPECT_GT(mgr_->journal_replayed(kVictim), 0u);
  EXPECT_EQ(mgr_->progress(kVictim), 100);

  // The rebuilt engine alone serves every dkey it owes, byte-exact —
  // including the overwrites and the dkeys born while it was DOWN.
  VerifyAlone(*cont, *oid, kVictim, arrays);
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    if (e != kVictim) {
      ASSERT_TRUE(client_->SetEngineDown(e, true).ok());
    }
  }
  for (const auto& [skey, want] : singles) {
    if (!OwesCopy(*oid, skey, kVictim)) continue;
    auto got = client_->FetchSingle(*cont, *oid, skey, "a");
    ASSERT_TRUE(got.ok()) << skey;
    EXPECT_EQ(*got, want) << skey;
  }
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    if (e != kVictim) {
      ASSERT_TRUE(client_->SetEngineDown(e, false).ok());
    }
  }
}

TEST_F(RebuildTest, RebuildFromScanAloneNeedsNoJournal) {
  // No degraded writes at all: the bulk scan must discover everything
  // the victim owes from the survivors' indexes.
  auto cont = client_->ContainerCreate("scan-only");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  std::map<std::string, Buffer> data;
  for (int i = 0; i < 16; ++i) {
    const std::string dkey = "k" + std::to_string(i);
    Buffer buf = MakePatternBuffer(4096, std::uint64_t(i) + 1);
    ASSERT_TRUE(client_->Update(*cont, *oid, dkey, "a", 0, buf).ok());
    data[dkey] = std::move(buf);
  }
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kDown).ok());
  ASSERT_EQ(map_->journal().depth(kVictim), 0u);
  ASSERT_TRUE(mgr_->Rebuild(kVictim).ok());
  EXPECT_EQ(map_->state(kVictim), EngineState::kUp);
  EXPECT_GT(mgr_->dkeys_scanned(kVictim), 0u);
  VerifyAlone(*cont, *oid, kVictim, data);
}

TEST_F(RebuildTest, RebuildRejectsUpEngineAndResyncIsIdempotent) {
  EXPECT_EQ(mgr_->Rebuild(kVictim).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(mgr_->Rebuild(99).code(), ErrorCode::kInvalidArgument);
  // Resync with an empty journal is a cheap no-op.
  EXPECT_TRUE(mgr_->Resync(kVictim).ok());
  EXPECT_EQ(mgr_->journal_replayed(kVictim), 0u);
}

TEST_F(RebuildTest, WritesLandOnRebuildingEngineAndConverge) {
  // A write racing the REBUILDING window lands on the replacement AND
  // journals post-completion; the drain loop re-silvers survivor HEAD so
  // the final bytes match regardless of apply order.
  auto cont = client_->ContainerCreate("racing");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer v1 = MakePatternBuffer(1024, 1);
  ASSERT_TRUE(client_->Update(*cont, *oid, "race", "a", 0, v1).ok());
  ASSERT_TRUE(map_->SetState(kVictim, EngineState::kRebuilding).ok());
  Buffer v2 = MakePatternBuffer(1024, 2);
  ASSERT_TRUE(client_->Update(*cont, *oid, "race", "a", 0, v2).ok());
  if (OwesCopy(*oid, "race", kVictim)) {
    EXPECT_GT(map_->journal().depth(kVictim), 0u)
        << "rebuilding-window write must journal post-completion";
  }
  ASSERT_TRUE(mgr_->Rebuild(kVictim).ok());
  std::map<std::string, Buffer> expected;
  expected["race"] = v2;
  VerifyAlone(*cont, *oid, kVictim, expected);
}

TEST_F(RebuildTest, ReplyTimeUnavailableDegradesInsteadOfFailing) {
  // The TOCTOU the pool map closed: the map says UP at issue time, but
  // the copy comes back UNAVAILABLE (here: an armed kRpcDrop on the
  // victim's server). The write must still succeed on the survivors and
  // journal the miss — per-send rejection is authoritative, not the
  // pre-issue map check.
  auto cont = client_->ContainerCreate("toctou");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  // A dkey the victim owes a copy of, so the drop hits a replica write.
  std::string dkey = "t0";
  for (int i = 0; OwesCopy(*oid, dkey, kVictim) == false; ++i) {
    dkey = "t" + std::to_string(i);
  }
  common::FaultPlan plan;
  common::FaultSpec spec;
  spec.count = 1;
  plan.Arm(common::FaultPoint::kRpcDrop, spec);
  engines_[kVictim]->server()->set_fault_plan(&plan);
  Buffer data = MakePatternBuffer(512, 7);
  ASSERT_TRUE(client_->Update(*cont, *oid, dkey, "a", 0, data).ok())
      << "reply-time UNAVAILABLE must degrade, not fail";
  EXPECT_EQ(plan.fired(common::FaultPoint::kRpcDrop), 1u);
  EXPECT_EQ(map_->journal().depth(kVictim), 1u);
  engines_[kVictim]->server()->set_fault_plan(nullptr);

  // Resync (the engine is UP — no full rebuild needed) replays the miss;
  // afterwards the victim serves the dkey alone.
  ASSERT_TRUE(mgr_->Resync(kVictim).ok());
  EXPECT_EQ(map_->journal().depth(kVictim), 0u);
  std::map<std::string, Buffer> expected;
  expected[dkey] = data;
  VerifyAlone(*cont, *oid, kVictim, expected);
}

TEST_F(RebuildTest, ZeroLandedCopiesIsAHardFailure) {
  // Degraded mode needs at least one survivor: with every replica
  // unwritable the update fails UNAVAILABLE and the status carries the
  // landed count instead of silently journaling everything.
  auto cont = client_->ContainerCreate("hard-err");
  ASSERT_TRUE(cont.ok());
  auto oid = client_->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  // All replicas down -> 0/N landed is UNAVAILABLE with the landed count.
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    ASSERT_TRUE(map_->SetState(e, EngineState::kDown).ok());
  }
  Buffer data(64);
  const Status st =
      client_->Update(*cont, *oid, "x", "a", 0, data).status();
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_NE(st.message().find("no writable replica"), std::string::npos)
      << st.ToString();
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    ASSERT_TRUE(map_->SetState(e, EngineState::kUp).ok());
  }
}

}  // namespace
}  // namespace ros2::daos
