#include "sim/resource.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::sim {
namespace {

TEST(ServerPoolTest, SingleServerSerializes) {
  ServerPool pool("p", 1);
  EXPECT_DOUBLE_EQ(pool.Serve(0.0, 1.0), 1.0);
  // Arrives at 0.5 but the server is busy until 1.0.
  EXPECT_DOUBLE_EQ(pool.Serve(0.5, 1.0), 2.0);
  // Arrives after the server freed: starts at arrival.
  EXPECT_DOUBLE_EQ(pool.Serve(5.0, 1.0), 6.0);
}

TEST(ServerPoolTest, TwoServersOverlap) {
  ServerPool pool("p", 2);
  EXPECT_DOUBLE_EQ(pool.Serve(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.Serve(0.0, 1.0), 1.0);  // second server
  EXPECT_DOUBLE_EQ(pool.Serve(0.0, 1.0), 2.0);  // queues
}

TEST(ServerPoolTest, ZeroServiceIsPassThrough) {
  ServerPool pool("p", 1);
  EXPECT_DOUBLE_EQ(pool.Serve(3.0, 0.0), 3.0);
}

TEST(ServerPoolTest, TracksBusyTimeAndOps) {
  ServerPool pool("p", 4);
  pool.Serve(0.0, 2.0);
  pool.Serve(0.0, 3.0);
  EXPECT_DOUBLE_EQ(pool.busy_time(), 5.0);
  EXPECT_EQ(pool.served_ops(), 2u);
  EXPECT_DOUBLE_EQ(pool.Utilization(10.0), 5.0 / 40.0);
}

TEST(ServerPoolTest, ResetRestoresIdle) {
  ServerPool pool("p", 1);
  pool.Serve(0.0, 100.0);
  pool.Reset();
  EXPECT_DOUBLE_EQ(pool.Serve(0.0, 1.0), 1.0);
  EXPECT_EQ(pool.served_ops(), 1u);
}

TEST(ServerPoolTest, ZeroServersClampedToOne) {
  ServerPool pool("p", 0);
  EXPECT_EQ(pool.servers(), 1u);
}

TEST(ServerPoolTest, ThroughputMatchesCapacity) {
  // k servers with service s sustain k/s ops/sec under saturation.
  ServerPool pool("p", 4);
  const double service = 0.01;
  double last = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    last = std::max(last, pool.Serve(0.0, service));
  }
  const double throughput = n / last;
  EXPECT_NEAR(throughput, 4.0 / service, 4.0 / service * 0.01);
}

TEST(BandwidthPipeTest, ServiceIsBytesOverRate) {
  BandwidthPipe pipe("link", 1000.0);  // 1000 B/s
  EXPECT_DOUBLE_EQ(pipe.Serve(0.0, 500), 0.5);
  EXPECT_DOUBLE_EQ(pipe.Serve(0.0, 500), 1.0);  // queued behind first
}

TEST(BandwidthPipeTest, PerMessageOverheadAdds) {
  BandwidthPipe pipe("link", 1000.0, 0.25);
  EXPECT_DOUBLE_EQ(pipe.Serve(0.0, 500), 0.75);
}

TEST(BandwidthPipeTest, RateAdjustable) {
  BandwidthPipe pipe("link", 1000.0);
  pipe.set_rate(2000.0);
  EXPECT_DOUBLE_EQ(pipe.Serve(0.0, 1000), 0.5);
}

class PoolCapacityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PoolCapacityTest, SaturatedThroughputScalesWithServers) {
  const std::uint32_t k = GetParam();
  ServerPool pool("p", k);
  const double service = 1e-3;
  double makespan = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    makespan = std::max(makespan, pool.Serve(0.0, service));
  }
  EXPECT_NEAR(n / makespan, double(k) / service, double(k) / service * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Servers, PoolCapacityTest,
                         ::testing::Values(1, 2, 4, 8, 16, 48));

}  // namespace
}  // namespace ros2::sim
