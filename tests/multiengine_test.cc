// Scale-out pool tests: one DAOS client spanning several engines, with
// replication and failure injection (the paper's §5 "broaden device
// counts" follow-up, plus DAOS-style redundancy semantics).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"
#include "dfs/dfs.h"

namespace ros2::daos {
namespace {

class MultiEngineTest : public ::testing::TestWithParam<net::Transport> {
 protected:
  static constexpr int kEngines = 3;

  void SetUp() override {
    for (int e = 0; e < kEngines; ++e) {
      storage::NvmeDeviceConfig dev;
      dev.capacity_bytes = 256 * kMiB;
      devices_.push_back(std::make_unique<storage::NvmeDevice>(dev));
      storage::NvmeDevice* raw[] = {devices_.back().get()};
      EngineConfig config;
      config.address = "fabric://engine-" + std::to_string(e);
      config.targets = 4;
      config.scm_per_target = 16 * kMiB;
      engines_.push_back(
          std::make_unique<DaosEngine>(&fabric_, config, raw));
    }
    for (auto& engine : engines_) raw_engines_.push_back(engine.get());
  }

  Result<std::unique_ptr<DaosClient>> Connect(std::uint32_t replicas,
                                              const std::string& address) {
    DaosClient::ConnectOptions options;
    options.transport = GetParam();
    options.client_address = address;
    options.replicas = replicas;
    return DaosClient::Connect(&fabric_, raw_engines_, options);
  }

  net::Fabric fabric_;
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices_;
  std::vector<std::unique_ptr<DaosEngine>> engines_;
  std::vector<DaosEngine*> raw_engines_;
};

TEST_P(MultiEngineTest, RoundTripAcrossEngines) {
  auto client = Connect(1, "fabric://c1");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->engine_count(), 3u);
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  // Many dkeys: every engine should end up holding some.
  for (int i = 0; i < 48; ++i) {
    Buffer data = MakePatternBuffer(1024, std::uint64_t(i));
    ASSERT_TRUE((*client)
                    ->Update(*cont, *oid, "k" + std::to_string(i), "a", 0,
                             data)
                    .ok());
  }
  for (int i = 0; i < 48; ++i) {
    Buffer out(1024);
    ASSERT_TRUE(
        (*client)->Fetch(*cont, *oid, "k" + std::to_string(i), "a", 0, out)
            .ok());
    EXPECT_EQ(VerifyPattern(out, std::uint64_t(i), 0), -1) << i;
  }
  int populated = 0;
  for (auto& engine : engines_) {
    std::uint64_t updates = engine->stats().updates;
    if (updates > 0) ++populated;
  }
  EXPECT_EQ(populated, kEngines) << "placement failed to spread dkeys";

  auto dkeys = (*client)->ListDkeys(*cont, *oid);
  ASSERT_TRUE(dkeys.ok());
  EXPECT_EQ(dkeys->size(), 48u);
}

TEST_P(MultiEngineTest, ReplicationSurvivesEngineFailure) {
  auto client = Connect(/*replicas=*/2, "fabric://c2");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(64 * 1024, 7);
  ASSERT_TRUE((*client)->Update(*cont, *oid, "dk", "a", 0, data).ok());

  // Take each engine down in turn; the read must survive every single
  // failure (2 replicas tolerate 1 fault).
  for (std::uint32_t down = 0; down < kEngines; ++down) {
    ASSERT_TRUE((*client)->SetEngineDown(down, true).ok());
    Buffer out(data.size());
    ASSERT_TRUE((*client)->Fetch(*cont, *oid, "dk", "a", 0, out).ok())
        << "engine " << down << " down";
    EXPECT_EQ(out, data);
    ASSERT_TRUE((*client)->SetEngineDown(down, false).ok());
  }
}

TEST_P(MultiEngineTest, UnreplicatedDataUnavailableWhenEngineDown) {
  auto client = Connect(/*replicas=*/1, "fabric://c3");
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer data = MakePatternBuffer(4096, 3);
  ASSERT_TRUE((*client)->Update(*cont, *oid, "dk", "a", 0, data).ok());

  // Find the engine holding "dk" by knocking them out one at a time.
  int owner = -1;
  for (std::uint32_t down = 0; down < kEngines; ++down) {
    ASSERT_TRUE((*client)->SetEngineDown(down, true).ok());
    Buffer out(data.size());
    const Status status =
        (*client)->Fetch(*cont, *oid, "dk", "a", 0, out);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
      owner = int(down);
    }
    ASSERT_TRUE((*client)->SetEngineDown(down, false).ok());
  }
  EXPECT_NE(owner, -1) << "some engine must own the only copy";
}

TEST_P(MultiEngineTest, DegradedWriteSucceedsAndJournalsMiss) {
  auto client = Connect(/*replicas=*/3, "fabric://c4");
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE((*client)->SetEngineDown(1, true).ok());
  Buffer data = MakePatternBuffer(128, 11);
  // With 3-way replication every engine is a replica; the DOWN engine's
  // copy is skipped, the write lands on the survivors, and the miss is
  // journaled for the rebuild task.
  ASSERT_TRUE((*client)->Update(*cont, *oid, "dk", "a", 0, data).ok());
  PoolMap* map = (*client)->pool_map();
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->journal().depth(1), 1u);
  EXPECT_GE(map->journal().recorded(), 1u);
  // Survivors serve the read while engine 1 stays down.
  Buffer out(data.size());
  ASSERT_TRUE((*client)->Fetch(*cont, *oid, "dk", "a", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(MultiEngineTest, WriteFailsWhenNoReplicaWritable) {
  auto client = Connect(/*replicas=*/3, "fabric://c4b");
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    ASSERT_TRUE((*client)->SetEngineDown(e, true).ok());
  }
  Buffer data(128);
  // Zero landed copies is a hard failure — degraded mode needs at least
  // one survivor.
  const Status status =
      (*client)->Update(*cont, *oid, "dk", "a", 0, data).status();
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_NE(status.message().find("no writable replica"),
            std::string::npos)
      << status.ToString();
}

TEST_P(MultiEngineTest, SnapshotReadsPinToPrimary) {
  auto client = Connect(/*replicas=*/2, "fabric://c5");
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("c");
  ASSERT_TRUE(cont.ok());
  auto oid = (*client)->AllocOid(*cont);
  ASSERT_TRUE(oid.ok());
  Buffer v1 = MakePatternBuffer(256, 1);
  Buffer v2 = MakePatternBuffer(256, 2);
  auto e1 = (*client)->Update(*cont, *oid, "dk", "a", 0, v1);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE((*client)->Update(*cont, *oid, "dk", "a", 0, v2).ok());
  Buffer out(256);
  ASSERT_TRUE((*client)->Fetch(*cont, *oid, "dk", "a", 0, out, *e1).ok());
  EXPECT_EQ(out, v1);
  ASSERT_TRUE((*client)->Fetch(*cont, *oid, "dk", "a", 0, out).ok());
  EXPECT_EQ(out, v2);
}

TEST_P(MultiEngineTest, DfsRunsUnchangedOnScaleOutPool) {
  // The POSIX layer is oblivious to pool topology: mount DFS over a
  // replicated 3-engine pool, lose an engine, keep reading.
  auto client = Connect(/*replicas=*/2, "fabric://c6");
  ASSERT_TRUE(client.ok());
  auto cont = (*client)->ContainerCreate("posix");
  ASSERT_TRUE(cont.ok());
  auto dfs = dfs::Dfs::Mount(client->get(), *cont, /*create=*/true);
  ASSERT_TRUE(dfs.ok()) << dfs.status().ToString();
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*dfs)->Open("/survivor.bin", flags);
  ASSERT_TRUE(fd.ok());
  Buffer data = MakePatternBuffer(3 * kMiB, 9);  // spans several chunks
  ASSERT_TRUE((*dfs)->Write(*fd, 0, data).ok());

  ASSERT_TRUE((*client)->SetEngineDown(2, true).ok());
  Buffer out(data.size());
  auto n = (*dfs)->Read(*fd, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  auto entries = (*dfs)->Readdir("/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "survivor.bin");
}

TEST_P(MultiEngineTest, ReplicaCountValidated) {
  EXPECT_FALSE(Connect(0, "fabric://c7a").ok());
  EXPECT_FALSE(Connect(4, "fabric://c7b").ok());
}

INSTANTIATE_TEST_SUITE_P(Transports, MultiEngineTest,
                         ::testing::Values(net::Transport::kTcp,
                                           net::Transport::kRdma),
                         [](const auto& info) {
                           return std::string(
                               perf::TransportName(info.param));
                         });

}  // namespace
}  // namespace ros2::daos
