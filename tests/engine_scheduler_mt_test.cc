// Threaded-xstream tests: real worker threads per target (daos::Xstream),
// the threaded EngineScheduler's completion hand-off, and the engine's
// dedicated network progress thread. Parallelism is asserted STRUCTURALLY
// (latch handshakes between ops on different targets), never by timing —
// the suite must pass unchanged on a single-core host.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/engine.h"
#include "daos/scheduler.h"
#include "daos/xstream.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

namespace ros2::daos {
namespace {

constexpr std::span<const std::byte> kNoHeader{};

// ---------------------------------------------------- Xstream unit tests

TEST(XstreamTest, ExecutesSubmittedTasksFifo) {
  Xstream xs;
  std::vector<int> order;  // touched only by the single worker thread
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(xs.Submit([&order, i] { order.push_back(i); }));
  }
  xs.Quiesce();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[std::size_t(i)], i);
  EXPECT_EQ(xs.executed(), 32u);
  EXPECT_EQ(xs.queued(), 0u);
  EXPECT_GE(xs.max_queue_depth(), 1u);
}

TEST(XstreamTest, StopDrainsTheQueueBeforeJoining) {
  // Hold the worker on its first task so the rest pile up, then Stop:
  // every queued task must still execute (clean shutdown loses nothing).
  Xstream xs(/*queue_capacity=*/64);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  ASSERT_TRUE(xs.Submit([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(xs.Submit([&ran] { ran.fetch_add(1); }));
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  xs.Stop();
  EXPECT_EQ(ran.load(), 17);
  EXPECT_EQ(xs.executed(), 17u);
  // A stopped stream rejects new work instead of silently dropping it.
  EXPECT_FALSE(xs.Submit([] {}));
}

// ------------------------------------------ threaded scheduler fixtures

class SchedulerMtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://sched-mt-server");
    auto client_ep = fabric_.CreateEndpoint("fabric://sched-mt-client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    auto qp = (*client_ep)->Connect(*server_ep, net::Transport::kRdma,
                                    (*client_ep)->AllocPd(),
                                    (*server_ep)->AllocPd());
    ASSERT_TRUE(qp.ok());
    qp_ = *qp;
    client_ = std::make_unique<rpc::RpcClient>(qp_, *client_ep, nullptr);
    client_->set_max_in_flight(64);
    server_.RegisterAsync(1, [this](rpc::RpcContextPtr ctx) {
      parked_.push_back(std::move(ctx));
      return rpc::HandlerVerdict::kDeferred;
    });
  }

  std::vector<rpc::RpcContextPtr> Park(int n) {
    for (int i = 0; i < n; ++i) {
      auto id = client_->CallAsync(1, kNoHeader);
      EXPECT_TRUE(id.ok());
    }
    EXPECT_TRUE(server_.Progress(qp_->peer()).ok());
    return std::move(parked_);
  }

  net::Fabric fabric_;
  net::Qp* qp_ = nullptr;
  rpc::RpcServer server_;
  std::unique_ptr<rpc::RpcClient> client_;
  std::vector<rpc::RpcContextPtr> parked_;
};

TEST_F(SchedulerMtTest, SameTargetOpsStayFifoOnAWorkerThread) {
  EngineScheduler sched(4, {.threaded = true});
  ASSERT_TRUE(sched.threaded());
  auto ctxs = Park(24);
  ASSERT_EQ(ctxs.size(), 24u);
  // One target = one worker = one FIFO: arrival order is execution order.
  std::vector<int> order;  // touched only by target 2's worker
  for (int i = 0; i < 24; ++i) {
    sched.Enqueue(2, std::move(ctxs[std::size_t(i)]),
                  [&order, i](rpc::RpcContext&) -> Result<Buffer> {
                    order.push_back(i);
                    return Buffer{};
                  });
  }
  EXPECT_EQ(sched.Quiesce(), 24u);  // every reply sent at the barrier
  ASSERT_EQ(order.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(order[std::size_t(i)], i) << "op executed out of order";
  }
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(sched.executed(), 24u);
  EXPECT_EQ(client_->Poll(), 24u);
}

TEST_F(SchedulerMtTest, CrossTargetOpsRunConcurrently) {
  // STRUCTURAL parallelism proof: target 0's op blocks until target 1's
  // op releases it. If both targets shared one execution stream this
  // deadlocks (and the guard timeout turns it into a visible failure);
  // with real per-target workers it completes on any core count.
  EngineScheduler sched(2, {.threaded = true});
  auto ctxs = Park(2);
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  sched.Enqueue(0, std::move(ctxs[0]),
                [&](rpc::RpcContext&) -> Result<Buffer> {
                  std::unique_lock<std::mutex> lk(mu);
                  if (!cv.wait_for(lk, std::chrono::seconds(30),
                                   [&] { return released; })) {
                    return Status(
                        Unavailable("target 1 never ran concurrently"));
                  }
                  return Buffer{};
                });
  sched.Enqueue(1, std::move(ctxs[1]),
                [&](rpc::RpcContext&) -> Result<Buffer> {
                  std::lock_guard<std::mutex> lk(mu);
                  released = true;
                  cv.notify_all();
                  return Buffer{};
                });
  sched.Quiesce();
  ASSERT_EQ(client_->Poll(), 2u);
  // Both replies OK: the handshake completed, so the ops overlapped.
  auto first = client_->Take(1);
  auto second = client_->Take(2);
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(second.ok()) << second.status().ToString();
}

TEST_F(SchedulerMtTest, ShutdownExecutesQueuedOpsAndSendsReplies) {
  EngineScheduler sched(2, {.threaded = true});
  auto ctxs = Park(8);
  std::atomic<int> ran{0};
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    sched.Enqueue(std::uint32_t(i % 2), std::move(ctxs[i]),
                  [&ran](rpc::RpcContext&) -> Result<Buffer> {
                    ran.fetch_add(1);
                    return Buffer{};
                  });
  }
  // No Progress tick at all: Shutdown itself must run the queues dry and
  // send every reply — a clean shutdown loses no accepted request.
  sched.Shutdown();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(sched.executed(), 8u);
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(client_->Poll(), 8u);

  // Work arriving AFTER shutdown is refused with a reply, not dropped.
  auto late = Park(1);
  ASSERT_EQ(late.size(), 1u);
  const auto late_id = late[0]->seq();
  sched.Enqueue(0, std::move(late[0]),
                [](rpc::RpcContext&) -> Result<Buffer> { return Buffer{}; });
  ASSERT_EQ(client_->Poll(), 1u);
  auto reply = client_->Take(late_id);
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  sched.Shutdown();  // idempotent
}

// ----------------------------------------------- threaded engine tests

class ThreadedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 256 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    EngineConfig config;
    config.address = "fabric://mt-engine";
    config.targets = 4;
    config.scm_per_target = 16 * kMiB;
    config.xstream_workers = true;
    auto engine = DaosEngine::Create(&fabric_, config, raw);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    ASSERT_TRUE(engine_->scheduler().threaded());
  }

  std::unique_ptr<rpc::RpcClient> NewClient(int index, bool pump) {
    auto ep = fabric_.CreateEndpoint("fabric://mt-client-" +
                                     std::to_string(index));
    EXPECT_TRUE(ep.ok());
    auto qp = (*ep)->Connect(engine_->endpoint(), net::Transport::kRdma,
                             (*ep)->AllocPd(), engine_->pd());
    EXPECT_TRUE(qp.ok());
    DaosEngine* engine = engine_.get();
    auto client = std::make_unique<rpc::RpcClient>(
        *qp, *ep,
        pump ? std::function<void()>([engine] { (void)engine->ProgressAll(); })
             : std::function<void()>());
    // The progress-thread path completes replies asynchronously; give the
    // pump loops a generous stall window so a loaded host can't misfire.
    client->set_stall_timeout_ms(10000.0);
    return client;
  }

  Result<ContainerId> CreateContainer(rpc::RpcClient* client,
                                      const std::string& label) {
    rpc::Encoder enc;
    enc.Str(label);
    ROS2_ASSIGN_OR_RETURN(
        rpc::RpcReply reply,
        client->Call(std::uint32_t(DaosOpcode::kContCreate), enc));
    rpc::Decoder dec(reply.header);
    return dec.U64();
  }

  static rpc::Encoder SingleUpdateHeader(ContainerId cont,
                                         const ObjectId& oid,
                                         const std::string& dkey,
                                         std::span<const std::byte> value) {
    rpc::Encoder enc;
    enc.U64(cont).U64(oid.hi).U64(oid.lo).Str(dkey).Str("a");
    enc.Bytes(value);
    return enc;
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<DaosEngine> engine_;
};

TEST_F(ThreadedEngineTest, SameDkeyFifoHoldsWithRealWorkers) {
  auto client = NewClient(0, /*pump=*/true);
  auto cont = CreateContainer(client.get(), "mt-fifo");
  ASSERT_TRUE(cont.ok());
  ObjectId oid{1, 42};

  constexpr int kUpdates = 12;
  std::vector<rpc::RpcClient::CallId> ids;
  std::vector<Buffer> values;
  for (int i = 0; i < kUpdates; ++i) {
    values.push_back(MakePatternBuffer(64, std::uint64_t(i) + 1));
    rpc::Encoder header =
        SingleUpdateHeader(*cont, oid, "hot-dkey", values.back());
    auto id = client->CallAsync(std::uint32_t(DaosOpcode::kSingleUpdate),
                                header);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(engine_->ProgressAll().ok());
  ASSERT_EQ(client->Poll(), std::size_t(kUpdates));

  // Epochs stamp on the target worker at execution time: per-dkey FIFO
  // means the i-th issued update carries the i-th epoch.
  Epoch last = 0;
  for (int i = 0; i < kUpdates; ++i) {
    auto reply = client->Take(ids[std::size_t(i)]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    rpc::Decoder dec(reply->header);
    auto epoch = dec.U64();
    ASSERT_TRUE(epoch.ok());
    EXPECT_GT(*epoch, last) << "update " << i << " executed out of order";
    last = *epoch;
  }
  EXPECT_EQ(engine_->stats().updates, std::uint64_t(kUpdates));

  rpc::Encoder fetch;
  fetch.U64(*cont).U64(oid.hi).U64(oid.lo).Str("hot-dkey").Str("a");
  fetch.U64(kEpochHead);
  auto reply = client->Call(std::uint32_t(DaosOpcode::kSingleFetch), fetch);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  rpc::Decoder dec(reply->header);
  auto value = dec.Bytes();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, values.back());
}

TEST_F(ThreadedEngineTest, ProgressThreadServesClientsWithoutAPump) {
  engine_->StartProgressThread();
  ASSERT_TRUE(engine_->progress_thread_running());
  engine_->StartProgressThread();  // no-op, not a second thread

  // NO client-side progress hook: the engine's own thread must notice the
  // doorbell, decode, execute on the target worker, and send the reply.
  auto client = NewClient(1, /*pump=*/false);
  auto cont = CreateContainer(client.get(), "mt-async");
  ASSERT_TRUE(cont.ok());
  ObjectId oid{1, 7};

  constexpr int kOps = 16;
  Buffer value = MakePatternBuffer(128, 9);
  std::vector<rpc::RpcClient::CallId> ids;
  for (int i = 0; i < kOps; ++i) {
    rpc::Encoder header = SingleUpdateHeader(
        *cont, oid, "k" + std::to_string(i), value);
    auto id = client->CallAsync(std::uint32_t(DaosOpcode::kSingleUpdate),
                                header);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(client->Flush().ok());
  for (auto id : ids) {
    auto reply = client->Take(id);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_EQ(engine_->stats().updates, std::uint64_t(kOps));

  // Barrier op (dkey enumeration) answered by the progress thread too.
  // Wire format: obj addr + paging marker/limit ("" + 0 = everything).
  rpc::Encoder list;
  list.U64(*cont).U64(oid.hi).U64(oid.lo).Str("").U32(0);
  auto listed = client->Call(std::uint32_t(DaosOpcode::kListDkeys), list);
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  rpc::Decoder dec(listed->header);
  auto count = dec.U32();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, std::uint32_t(kOps));

  engine_->StopProgressThread();
  EXPECT_FALSE(engine_->progress_thread_running());
  engine_->StopProgressThread();  // idempotent
}

}  // namespace
}  // namespace ros2::daos
