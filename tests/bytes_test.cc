#include "common/bytes.h"

#include <gtest/gtest.h>

namespace ros2 {
namespace {

TEST(BytesTest, FillThenVerifyMatches) {
  Buffer buf(4096);
  FillPattern(buf, /*tag=*/5, /*offset=*/0);
  EXPECT_EQ(VerifyPattern(buf, 5, 0), -1);
}

TEST(BytesTest, SliceVerifiesIndependently) {
  Buffer buf(8192);
  FillPattern(buf, 9, 1000);
  // Any sub-span re-verifies with the adjusted offset.
  std::span<const std::byte> slice(buf.data() + 100, 200);
  EXPECT_EQ(VerifyPattern(slice, 9, 1100), -1);
}

TEST(BytesTest, WrongTagFails) {
  Buffer buf(256);
  FillPattern(buf, 1, 0);
  EXPECT_NE(VerifyPattern(buf, 2, 0), -1);
}

TEST(BytesTest, WrongOffsetFails) {
  Buffer buf(256);
  FillPattern(buf, 1, 0);
  EXPECT_NE(VerifyPattern(buf, 1, 1), -1);
}

TEST(BytesTest, ReportsFirstMismatchIndex) {
  Buffer buf(128);
  FillPattern(buf, 3, 0);
  buf[57] ^= std::byte(0xFF);
  EXPECT_EQ(VerifyPattern(buf, 3, 0), 57);
}

TEST(BytesTest, MakePatternBufferEquivalent) {
  Buffer a = MakePatternBuffer(512, 7, 64);
  Buffer b(512);
  FillPattern(b, 7, 64);
  EXPECT_EQ(a, b);
}

TEST(BytesTest, EmptySpanVerifies) {
  EXPECT_EQ(VerifyPattern({}, 1, 0), -1);
}

TEST(BytesTest, PatternsDifferAcrossOffsets) {
  Buffer a = MakePatternBuffer(64, 1, 0);
  Buffer b = MakePatternBuffer(64, 1, 64);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ros2
