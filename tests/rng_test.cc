#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ros2 {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Below(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ZeroSeedStillProducesEntropy) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace ros2
