#include "common/logging.h"

#include <gtest/gtest.h>

namespace ros2 {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarn) {
  // Tests and benches must be quiet by default.
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kWarn));
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kDebug));
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kError));
}

TEST(LoggingTest, BelowThresholdDoesNotEvaluateStream) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  ROS2_DEBUG << expensive();
  ROS2_INFO << expensive();
  ROS2_WARN << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed logs must not evaluate operands";
  ROS2_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace ros2
