// Shared main for every test binary. Works unchanged against both the
// vendored minigtest shim and a real GoogleTest (-DROS2_USE_SYSTEM_GTEST=ON).
#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
