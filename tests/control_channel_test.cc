#include "rpc/control_channel.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "support/test_support.h"

namespace ros2::rpc {
namespace {

Buffer Bytes(const std::string& s) { return ros2::test::ToBuffer(s); }

TEST(ControlChannelTest, CallDispatchesToHandler) {
  ControlService service;
  service.Register("echo", [](const Buffer& req) -> Result<Buffer> {
    return req;
  });
  ControlChannel channel(&service);
  auto reply = channel.Call("echo", Bytes("ping"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, Bytes("ping"));
  EXPECT_EQ(service.calls(), 1u);
}

TEST(ControlChannelTest, UnknownMethod) {
  ControlService service;
  ControlChannel channel(&service);
  EXPECT_EQ(channel.Call("nope", Buffer{}).status().code(), ErrorCode::kNotFound);
}

TEST(ControlChannelTest, HandlerErrorsPropagate) {
  ControlService service;
  service.Register("fail", [](const Buffer&) -> Result<Buffer> {
    return Status(PermissionDenied("no"));
  });
  ControlChannel channel(&service);
  EXPECT_EQ(channel.Call("fail", Buffer{}).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST(ControlChannelTest, BulkPayloadRejectedStructurally) {
  // The 64 KiB cap is the control/data separation (§3.4): a 1 MiB payload
  // cannot ride the control plane.
  ControlService service;
  service.Register("sink", [](const Buffer&) -> Result<Buffer> {
    return Buffer{};
  });
  ControlChannel channel(&service);
  Buffer bulk(kControlMessageLimit + 1);
  EXPECT_EQ(channel.Call("sink", bulk).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.calls(), 0u);  // never reached the service
}

TEST(ControlChannelTest, ExactlyAtCapAccepted) {
  ControlService service;
  service.Register("sink", [](const Buffer&) -> Result<Buffer> {
    return Buffer{};
  });
  ControlChannel channel(&service);
  Buffer at_cap(kControlMessageLimit);
  EXPECT_TRUE(channel.Call("sink", at_cap).ok());
}

TEST(ControlChannelTest, OversizeReplyRejected) {
  ControlService service;
  service.Register("blabber", [](const Buffer&) -> Result<Buffer> {
    return Buffer(kControlMessageLimit + 1);
  });
  ControlChannel channel(&service);
  EXPECT_EQ(channel.Call("blabber", Buffer{}).status().code(),
            ErrorCode::kInternal);
}

TEST(ControlChannelTest, DisconnectedChannel) {
  ControlChannel channel(nullptr);
  EXPECT_EQ(channel.Call("x", Buffer{}).status().code(), ErrorCode::kUnavailable);
}

TEST(ControlChannelTest, ByteAccountingCountsBothDirections) {
  ControlService service;
  service.Register("echo", [](const Buffer& req) -> Result<Buffer> {
    return req;
  });
  ControlChannel channel(&service);
  ASSERT_TRUE(channel.Call("echo", Bytes("12345")).ok());
  EXPECT_EQ(service.bytes_transferred(), 10u);
}

TEST(ControlChannelTest, ReRegisterReplacesHandler) {
  ControlService service;
  service.Register("m", [](const Buffer&) -> Result<Buffer> {
    return Bytes("v1");
  });
  service.Register("m", [](const Buffer&) -> Result<Buffer> {
    return Bytes("v2");
  });
  ControlChannel channel(&service);
  EXPECT_EQ(*channel.Call("m", Buffer{}), Bytes("v2"));
}

}  // namespace
}  // namespace ros2::rpc
