// Versioned-object-store tests: extent semantics, epochs, tiering,
// end-to-end checksums, punch, and aggregation (§2.4's object model).
#include "daos/vos.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"

namespace ros2::daos {
namespace {

class VosTest : public ::testing::Test {
 protected:
  VosTest() {
    storage::NvmeDeviceConfig config;
    config.capacity_bytes = 256 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(config);
    bdev_ = std::make_unique<spdk::Bdev>(device_.get());
    scm_ = std::make_unique<scm::PmemPool>(32 * kMiB);
    vos_ = std::make_unique<Vos>(scm_.get(), bdev_.get());
  }

  const ObjectId oid_{1, 1};
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<spdk::Bdev> bdev_;
  std::unique_ptr<scm::PmemPool> scm_;
  std::unique_ptr<Vos> vos_;
};

TEST_F(VosTest, ArrayUpdateFetchRoundTrip) {
  Buffer data = MakePatternBuffer(4096, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  Buffer out(4096);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VosTest, HolesReadAsZeros) {
  Buffer data = MakePatternBuffer(100, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 1000, data).ok());
  Buffer out(2000);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(out[i], std::byte(0));
  EXPECT_EQ(VerifyPattern(
                std::span<const std::byte>(out.data() + 1000, 100), 1, 0),
            -1);
  for (int i = 1100; i < 2000; ++i) ASSERT_EQ(out[i], std::byte(0));
}

TEST_F(VosTest, MissingObjectReadsAsHoles) {
  Buffer out = MakePatternBuffer(128, 9);
  ASSERT_TRUE(
      vos_->FetchArray(ObjectId{9, 9}, "d", "a", kEpochHead, 0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST_F(VosTest, OverlappingWritesNewestWins) {
  Buffer first = MakePatternBuffer(1000, 1);
  Buffer second = MakePatternBuffer(500, 2);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, first).ok());
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 2, 250, second).ok());
  Buffer out(1000);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(VerifyPattern(std::span<const std::byte>(out.data(), 250), 1, 0),
            -1);
  EXPECT_EQ(VerifyPattern(
                std::span<const std::byte>(out.data() + 250, 500), 2, 0),
            -1);
  EXPECT_EQ(VerifyPattern(
                std::span<const std::byte>(out.data() + 750, 250), 1, 750),
            -1);
}

TEST_F(VosTest, EpochSnapshotReads) {
  Buffer v1 = MakePatternBuffer(100, 1);
  Buffer v2 = MakePatternBuffer(100, 2);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 5, 0, v1).ok());
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 9, 0, v2).ok());
  Buffer out(100);
  // As of epoch 5: v1 visible.
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", 5, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 1, 0), -1);
  // As of epoch 8 (between updates): still v1.
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", 8, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 1, 0), -1);
  // HEAD: v2.
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 2, 0), -1);
  // Before any write: holes.
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", 4, 0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
}

TEST_F(VosTest, EpochMonotonicityEnforced) {
  Buffer data(16);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 5, 0, data).ok());
  EXPECT_EQ(vos_->UpdateArray(oid_, "dk", "ak", 4, 0, data).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(VosTest, SmallRecordsLandInScm) {
  Buffer small = MakePatternBuffer(4096, 1);  // <= 64 KiB threshold
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, small).ok());
  EXPECT_EQ(vos_->stats().scm_records, 1u);
  EXPECT_EQ(vos_->stats().nvme_records, 0u);
}

TEST_F(VosTest, LargeRecordsLandOnNvme) {
  Buffer large = MakePatternBuffer(1 << 20, 2);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, large).ok());
  EXPECT_EQ(vos_->stats().nvme_records, 1u);
  EXPECT_GT(device_->bytes_written(), 0u);
  Buffer out(1 << 20);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(out, large);
}

TEST_F(VosTest, UnalignedLargeRecordPaddedTransparently) {
  Buffer large = MakePatternBuffer((1 << 20) + 777, 3);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, large).ok());
  Buffer out(large.size());
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(out, large);
}

TEST_F(VosTest, ChecksumDetectsScmCorruption) {
  Buffer data = MakePatternBuffer(1024, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  // Corrupt the SCM arena behind the record (handle 1 is the first alloc).
  auto span = scm_->Deref(1);
  ASSERT_TRUE(span.ok());
  (*span)[100] ^= std::byte(0xFF);
  Buffer out(1024);
  EXPECT_EQ(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).code(),
            ErrorCode::kDataLoss);
}

TEST_F(VosTest, ChecksumDetectsNvmeCorruption) {
  Buffer data = MakePatternBuffer(256 * 1024, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  // Corrupt the device under the engine through a side-channel bdev.
  spdk::Bdev raw(device_.get());
  Buffer evil = MakePatternBuffer(4096, 0xEE);
  ASSERT_TRUE(raw.Write(0, evil).ok());
  Buffer out(256 * 1024);
  EXPECT_EQ(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).code(),
            ErrorCode::kDataLoss);
}

TEST_F(VosTest, SingleValueRoundTripAndVersioning) {
  Buffer v1 = MakePatternBuffer(64, 1);
  Buffer v2 = MakePatternBuffer(64, 2);
  ASSERT_TRUE(vos_->UpdateSingle(oid_, "meta", "size", 3, v1).ok());
  ASSERT_TRUE(vos_->UpdateSingle(oid_, "meta", "size", 7, v2).ok());
  auto head = vos_->FetchSingle(oid_, "meta", "size", kEpochHead);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, v2);
  auto old = vos_->FetchSingle(oid_, "meta", "size", 5);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, v1);
  EXPECT_EQ(vos_->FetchSingle(oid_, "meta", "size", 2).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(VosTest, TypeConfusionRejected) {
  Buffer data(16);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "arr", 1, 0, data).ok());
  EXPECT_EQ(vos_->UpdateSingle(oid_, "dk", "arr", 2, data).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(vos_->UpdateSingle(oid_, "dk", "sv", 3, data).ok());
  EXPECT_EQ(vos_->UpdateArray(oid_, "dk", "sv", 4, 0, data).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(vos_->FetchSingle(oid_, "dk", "arr", kEpochHead).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(VosTest, PunchAkeyMakesRangeHoles) {
  Buffer data = MakePatternBuffer(100, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  ASSERT_TRUE(vos_->PunchAkey(oid_, "dk", "ak", 2).ok());
  Buffer out(100);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte(0));
  // Pre-punch epoch still sees the data (versioned punch).
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", 1, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 1, 0), -1);
}

TEST_F(VosTest, WriteAfterPunchVisible) {
  Buffer data = MakePatternBuffer(100, 1);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  ASSERT_TRUE(vos_->PunchAkey(oid_, "dk", "ak", 2).ok());
  Buffer fresh = MakePatternBuffer(50, 2);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 3, 25, fresh).ok());
  Buffer out(100);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  for (int i = 0; i < 25; ++i) ASSERT_EQ(out[i], std::byte(0));
  EXPECT_EQ(
      VerifyPattern(std::span<const std::byte>(out.data() + 25, 50), 2, 0),
      -1);
}

TEST_F(VosTest, PunchObjectReclaimsStorage) {
  Buffer big = MakePatternBuffer(1 << 20, 1);  // NVMe-tier record
  Buffer small = MakePatternBuffer(512, 2);    // SCM-tier record
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, big).ok());
  ASSERT_TRUE(vos_->UpdateSingle(oid_, "meta", "s", 2, small).ok());
  const auto scm_used = scm_->used_bytes();
  EXPECT_GT(scm_used, 0u);
  ASSERT_TRUE(vos_->PunchObject(oid_, 3).ok());
  EXPECT_FALSE(vos_->ObjectExists(oid_));
  EXPECT_EQ(scm_->used_bytes(), 0u);
  EXPECT_EQ(vos_->PunchObject(oid_, 4).code(), ErrorCode::kNotFound);
}

TEST_F(VosTest, ArraySizeTracksHighWaterMark) {
  Buffer data(100);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 4000, data).ok());
  auto size = vos_->ArraySize(oid_, "dk", "ak", kEpochHead);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4100u);
  // As-of earlier epoch: nothing.
  EXPECT_EQ(vos_->ArraySize(oid_, "dk", "ak", 0).value_or(1), 4100u);
}

TEST_F(VosTest, ListKeys) {
  Buffer data(8);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "d1", "a1", 1, 0, data).ok());
  ASSERT_TRUE(vos_->UpdateArray(oid_, "d1", "a2", 2, 0, data).ok());
  ASSERT_TRUE(vos_->UpdateArray(oid_, "d2", "a1", 3, 0, data).ok());
  EXPECT_EQ(vos_->ListDkeys(oid_).size(), 2u);
  EXPECT_EQ(vos_->ListAkeys(oid_, "d1").size(), 2u);
  EXPECT_EQ(vos_->ListAkeys(oid_, "d2").size(), 1u);
  EXPECT_TRUE(vos_->ListDkeys(ObjectId{5, 5}).empty());
}

TEST_F(VosTest, AggregationCollapsesRecordLog) {
  // Many small overlapping writes, then aggregate: content preserved,
  // superseded SCM space reclaimed.
  for (Epoch e = 1; e <= 50; ++e) {
    Buffer data = MakePatternBuffer(1000, e);
    ASSERT_TRUE(
        vos_->UpdateArray(oid_, "dk", "ak", e, (e % 10) * 500, data).ok());
  }
  Buffer before(10 * 500 + 1000);
  ASSERT_TRUE(
      vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, before).ok());
  const auto scm_before = scm_->used_bytes();

  ASSERT_TRUE(vos_->AggregateArray(oid_, "dk", "ak", kEpochHead).ok());
  EXPECT_LT(scm_->used_bytes(), scm_before);

  Buffer after(before.size());
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, after).ok());
  EXPECT_EQ(after, before);
}

TEST_F(VosTest, AggregationPreservesNewerEpochs) {
  Buffer v1 = MakePatternBuffer(100, 1);
  Buffer v2 = MakePatternBuffer(100, 2);
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, v1).ok());
  ASSERT_TRUE(vos_->UpdateArray(oid_, "dk", "ak", 10, 0, v2).ok());
  // Aggregate only up to epoch 5: the epoch-10 record must survive.
  ASSERT_TRUE(vos_->AggregateArray(oid_, "dk", "ak", 5).ok());
  Buffer out(100);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 2, 0), -1);
  ASSERT_TRUE(vos_->FetchArray(oid_, "dk", "ak", 5, 0, out).ok());
  EXPECT_EQ(VerifyPattern(out, 1, 0), -1);
}

TEST_F(VosTest, ChecksumsOffSkipsVerification) {
  VosConfig config;
  config.checksums = false;
  Vos vos(scm_.get(), bdev_.get(), config);
  Buffer data = MakePatternBuffer(512, 1);
  ASSERT_TRUE(vos.UpdateArray(oid_, "dk", "ak", 1, 0, data).ok());
  Buffer out(512);
  ASSERT_TRUE(vos.FetchArray(oid_, "dk", "ak", kEpochHead, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VosTest, EmptyUpdateRejected) {
  EXPECT_EQ(vos_->UpdateArray(oid_, "dk", "ak", 1, 0, {}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(vos_->UpdateArray(ObjectId{}, "dk", "ak", 1, 0,
                              MakePatternBuffer(8, 1))
                .code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ros2::daos
