// The lint is itself tested: every rule in scripts/lint.sh must fire on
// its seeded violation (tests/lint_fixtures/<rule>/), the negative
// control must pass, and src/ itself must be clean — so a rule that
// silently stops matching (regex rot, renamed flag) fails tier-1, not
// just CI.
//
// Each case shells out to the real script; the grep rules are pure text
// processing, so the selftest needs no toolchain beyond bash + coreutils
// (the clang-tidy depth pass is explicitly disabled to keep the selftest
// hermetic).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sys/wait.h"

namespace {

#ifndef ROS2_REPO_ROOT
#error "build must define ROS2_REPO_ROOT (see tests/CMakeLists.txt)"
#endif

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& dir_arg) {
  std::string cmd = std::string("cd '") + ROS2_REPO_ROOT +
                    "' && bash scripts/lint.sh --no-clang-tidy";
  if (!dir_arg.empty()) cmd += " --dir '" + dir_arg + "'";
  cmd += " 2>&1";
  LintRun run;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int raw = ::pclose(pipe);
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return run;
}

void ExpectRuleFires(const std::string& rule) {
  const LintRun run = RunLint("tests/lint_fixtures/" + rule);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The violation is reported under the RIGHT rule name (a misfiled
  // report would pass a weaker "any failure" assertion).
  EXPECT_NE(run.output.find("LINT-FAIL " + rule + ":"), std::string::npos)
      << run.output;
}

TEST(LintSelftest, AdhocStatsRuleFires) { ExpectRuleFires("adhoc-stats"); }

TEST(LintSelftest, RawMutexRuleFires) { ExpectRuleFires("raw-mutex"); }

TEST(LintSelftest, NodiscardRuleFires) { ExpectRuleFires("nodiscard"); }

TEST(LintSelftest, IncludeGuardRuleFires) {
  ExpectRuleFires("include-guard");
}

TEST(LintSelftest, BannedFunctionRuleFires) {
  ExpectRuleFires("banned-function");
}

TEST(LintSelftest, CleanFixturePasses) {
  const LintRun run = RunLint("tests/lint_fixtures/clean");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("LINT-FAIL"), std::string::npos) << run.output;
}

TEST(LintSelftest, MissingDirectoryIsAUsageError) {
  const LintRun run = RunLint("tests/lint_fixtures/no-such-dir");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

// The real gate: the shipped tree passes its own lint. This is what makes
// the standing constraints (telemetry registration, annotated mutexes,
// nodiscard factories) tier-1-enforced rather than CI-only.
TEST(LintSelftest, SrcTreeIsClean) {
  const LintRun run = RunLint("");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
