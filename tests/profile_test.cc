#include "perf/profile.h"

#include <gtest/gtest.h>

#include "perf/calibration.h"

namespace ros2::perf {
namespace {

TEST(ProfileTest, HostShape) {
  const auto host = PlatformProfile::ServerHost();
  EXPECT_EQ(host.platform, Platform::kServerHost);
  EXPECT_EQ(host.cores, cal::kHostCores);
  EXPECT_DOUBLE_EQ(host.core_speed, 1.0);
  // No DPU-style RX bottleneck on the host.
  EXPECT_DOUBLE_EQ(host.tcp_rx_bw, 0.0);
  EXPECT_DOUBLE_EQ(host.TcpRxBwAt(16), 0.0);
}

TEST(ProfileTest, BlueField3Shape) {
  const auto bf3 = PlatformProfile::BlueField3();
  EXPECT_EQ(bf3.platform, Platform::kBlueField3);
  EXPECT_EQ(bf3.cores, cal::kBf3Cores);
  EXPECT_LT(bf3.core_speed, 1.0);
  EXPECT_GT(bf3.tcp_rx_bw, 0.0);
  EXPECT_GT(bf3.tcp_rx_per_io, 0.0);
}

TEST(ProfileTest, CostScalingInverseToSpeed) {
  const auto bf3 = PlatformProfile::BlueField3();
  EXPECT_DOUBLE_EQ(bf3.ScaleCost(6.0), 6.0 / cal::kBf3CoreSpeed);
  const auto host = PlatformProfile::ServerHost();
  EXPECT_DOUBLE_EQ(host.ScaleCost(6.0), 6.0);
}

TEST(ProfileTest, RxBandwidthDegradesWithConcurrency) {
  const auto bf3 = PlatformProfile::BlueField3();
  const double at1 = bf3.TcpRxBwAt(1);
  const double at4 = bf3.TcpRxBwAt(4);
  const double at16 = bf3.TcpRxBwAt(16);
  EXPECT_DOUBLE_EQ(at1, cal::kBf3TcpRxBw);
  EXPECT_GT(at1, at4);
  EXPECT_GT(at4, at16);
  // Paper band: ~3.1 GiB/s at low concurrency down to ~1.6 GiB/s at 16 jobs.
  EXPECT_NEAR(at1 / double(kGiB), 3.2, 0.3);
  EXPECT_NEAR(at16 / double(kGiB), 1.6, 0.25);
}

TEST(ProfileTest, ForSelectsProfile) {
  EXPECT_EQ(PlatformProfile::For(Platform::kServerHost).platform,
            Platform::kServerHost);
  EXPECT_EQ(PlatformProfile::For(Platform::kBlueField3).platform,
            Platform::kBlueField3);
}

TEST(TypesTest, OpKindPredicates) {
  EXPECT_TRUE(IsRead(OpKind::kRead));
  EXPECT_TRUE(IsRead(OpKind::kRandRead));
  EXPECT_FALSE(IsRead(OpKind::kWrite));
  EXPECT_TRUE(IsRandom(OpKind::kRandWrite));
  EXPECT_FALSE(IsRandom(OpKind::kRead));
}

TEST(TypesTest, Names) {
  EXPECT_EQ(OpKindName(OpKind::kRandRead), "randread");
  EXPECT_EQ(TransportName(Transport::kRdma), "rdma");
  EXPECT_EQ(PlatformName(Platform::kBlueField3), "bluefield3");
}

}  // namespace
}  // namespace ros2::perf
