// Concurrent DFS traffic (TSan-gated suite): one threaded engine (real
// xstream workers + progress thread) serving several client threads,
// each with its own pumpless DaosClient and its own mount of the SAME
// container. Cross-thread interleavings land on shared engine state —
// the root directory object, per-target schedulers, the poll set — and
// every byte must still verify after the threads join.
//
// Worker threads never touch gtest assertions (minigtest's failure
// recording is main-thread-only, like rebuild_mt_test): each thread
// reports into its own pre-sized error slot, checked after join.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/client.h"
#include "dfs/dfs.h"

namespace ros2::dfs {
namespace {

constexpr std::uint64_t kChunk = 16 * kKiB;
constexpr int kThreads = 4;

class DfsMtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    daos::EngineConfig config;
    config.address = "fabric://dfs-mt-engine";
    config.targets = 8;
    config.scm_per_target = 16 * kMiB;
    config.xstream_workers = true;
    auto engine = daos::DaosEngine::Create(&fabric_, config, raw);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    engine_->StartProgressThread();

    auto setup = NewClient("setup");
    ASSERT_NE(setup, nullptr);
    auto cont = setup->ContainerCreate("mt");
    ASSERT_TRUE(cont.ok());
    cont_ = *cont;
    // Format the namespace once; every thread opens it with create=false.
    DfsConfig dconfig;
    dconfig.chunk_size = kChunk;
    auto dfs = Dfs::Mount(setup.get(), cont_, /*create=*/true, dconfig);
    ASSERT_TRUE(dfs.ok()) << dfs.status().ToString();
  }

  /// A pumpless client (the engine's progress thread serves it), safe to
  /// own per thread. Main-thread only (uses EXPECT).
  std::unique_ptr<daos::DaosClient> NewClient(const std::string& name) {
    daos::DaosClient::ConnectOptions options;
    options.client_address = "fabric://dfs-mt-" + name;
    options.progress_pump = false;
    auto client = daos::DaosClient::Connect(&fabric_, engine_.get(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  /// Opens the shared namespace through `client`. Assertion-free, so
  /// worker threads may call it; nullptr on failure.
  std::unique_ptr<Dfs> OpenMount(daos::DaosClient* client) {
    DfsConfig config;
    config.chunk_size = kChunk;
    auto dfs = Dfs::Mount(client, cont_, /*create=*/false, config);
    return dfs.ok() ? std::move(*dfs) : nullptr;
  }

  static std::uint64_t FileSeed(int thread, int file) {
    return std::uint64_t(thread) * 100 + std::uint64_t(file) + 1;
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<daos::DaosEngine> engine_;
  daos::ContainerId cont_;
};

TEST_F(DfsMtTest, ConcurrentMountsReadAndWriteOneNamespace) {
  // Each thread works in its own directory: Mkdir on the shared root,
  // multi-chunk batched writes, reads of its own files, and listings —
  // all concurrently against one engine.
  constexpr int kFiles = 5;
  const std::uint64_t file_bytes = 3 * kChunk + 123;

  std::vector<std::unique_ptr<daos::DaosClient>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(NewClient("w" + std::to_string(t)));
    ASSERT_NE(clients.back(), nullptr);
  }
  std::vector<std::string> errors(kThreads);  // one slot per thread
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string& error = errors[std::size_t(t)];
      auto dfs = OpenMount(clients[std::size_t(t)].get());
      if (dfs == nullptr) {
        error = "mount failed";
        return;
      }
      const std::string dir = "/t" + std::to_string(t);
      if (!dfs->Mkdir(dir).ok()) {
        error = "mkdir failed";
        return;
      }
      for (int f = 0; f < kFiles; ++f) {
        const std::string path = dir + "/f" + std::to_string(f);
        OpenFlags create;
        create.create = true;
        auto fd = dfs->Open(path, create);
        if (!fd.ok()) {
          error = "open failed: " + path;
          return;
        }
        Buffer data = MakePatternBuffer(file_bytes, FileSeed(t, f));
        if (!dfs->Write(*fd, 0, data).ok()) {
          error = "write failed: " + path;
          return;
        }
        Buffer out(file_bytes);
        auto n = dfs->Read(*fd, 0, out);
        if (!n.ok() || *n != file_bytes || out != data) {
          error = "readback diverged: " + path;
          return;
        }
        if (!dfs->Close(*fd).ok()) {
          error = "close failed: " + path;
          return;
        }
      }
      auto entries = dfs->Readdir(dir);
      if (!entries.ok() || entries->size() != std::size_t(kFiles)) {
        error = "own-directory listing wrong";
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[std::size_t(t)], "") << "thread " << t;
  }

  // Quiesced: a fresh mount must see every thread's directory and every
  // byte, exactly as written.
  auto verify_client = NewClient("verify");
  ASSERT_NE(verify_client, nullptr);
  auto dfs = OpenMount(verify_client.get());
  ASSERT_NE(dfs, nullptr);
  auto root = dfs->Readdir("/");
  ASSERT_TRUE(root.ok());
  std::set<std::string> dirs;
  for (const auto& entry : *root) dirs.insert(entry.name);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(dirs.contains("t" + std::to_string(t))) << t;
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int f = 0; f < kFiles; ++f) {
      const std::string path =
          "/t" + std::to_string(t) + "/f" + std::to_string(f);
      auto fd = dfs->Open(path, OpenFlags{});
      ASSERT_TRUE(fd.ok()) << path;
      Buffer out(file_bytes);
      auto n = dfs->Read(*fd, 0, out);
      ASSERT_TRUE(n.ok());
      ASSERT_EQ(*n, file_bytes) << path;
      EXPECT_EQ(out, MakePatternBuffer(file_bytes, FileSeed(t, f))) << path;
      ASSERT_TRUE(dfs->Close(*fd).ok());
    }
  }
}

TEST_F(DfsMtTest, ConcurrentCreatesInOneDirectory) {
  // All threads hammer the SAME directory object with entry inserts
  // while a reader pages through it — the entry dkeys, the dkey pager,
  // and the batched entry fetch all run under contention.
  auto setup = NewClient("mkdir");
  ASSERT_NE(setup, nullptr);
  {
    auto dfs = OpenMount(setup.get());
    ASSERT_NE(dfs, nullptr);
    ASSERT_TRUE(dfs->Mkdir("/shared").ok());
  }
  constexpr int kPerThread = 8;
  std::atomic<bool> stop_reader{false};
  std::vector<std::unique_ptr<daos::DaosClient>> clients;
  for (int t = 0; t < kThreads + 1; ++t) {
    clients.push_back(NewClient("c" + std::to_string(t)));
    ASSERT_NE(clients.back(), nullptr);
  }
  std::vector<std::string> errors(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string& error = errors[std::size_t(t)];
      auto dfs = OpenMount(clients[std::size_t(t)].get());
      if (dfs == nullptr) {
        error = "mount failed";
        return;
      }
      for (int f = 0; f < kPerThread; ++f) {
        const std::string path =
            "/shared/t" + std::to_string(t) + "-" + std::to_string(f);
        OpenFlags create;
        create.create = true;
        auto fd = dfs->Open(path, create);
        if (!fd.ok() || !dfs->Write(*fd, 0, MakePatternBuffer(256, 1)).ok() ||
            !dfs->Close(*fd).ok()) {
          error = "create failed: " + path;
          return;
        }
      }
    });
  }
  std::thread reader([&] {
    std::string& error = errors[std::size_t(kThreads)];
    auto dfs = OpenMount(clients[std::size_t(kThreads)].get());
    if (dfs == nullptr) {
      error = "reader mount failed";
      return;
    }
    while (!stop_reader.load(std::memory_order_acquire)) {
      // Pages may catch the directory mid-growth; they must never fail
      // or repeat a name within one walk.
      ReaddirPage page;
      page.limit = 7;
      std::set<std::string> seen;
      for (;;) {
        auto result = dfs->Readdir("/shared", page);
        if (!result.ok()) {
          error = "paged readdir failed: " + result.status().ToString();
          return;
        }
        for (const auto& entry : result->entries) {
          if (!seen.insert(entry.name).second) {
            error = entry.name + " repeated within one walk";
            return;
          }
        }
        if (!result->more) break;
        page.marker = result->next_marker;
      }
    }
  });
  for (auto& t : threads) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  for (std::size_t t = 0; t < errors.size(); ++t) {
    EXPECT_EQ(errors[t], "") << "thread " << t;
  }

  auto dfs = OpenMount(setup.get());
  ASSERT_NE(dfs, nullptr);
  auto entries = dfs->Readdir("/shared");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), std::size_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ros2::dfs
