// EngineScheduler + engine pipeline tests: per-target FIFO with
// round-robin interleave across targets, multi-QP fairness through one
// DaosEngine::ProgressAll() tick, and the validating DaosEngine::Create
// factory (targets == 0 regression).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "daos/engine.h"
#include "daos/placement.h"
#include "daos/scheduler.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

namespace ros2::daos {
namespace {

constexpr std::span<const std::byte> kNoHeader{};

// ------------------------------------------------- scheduler unit tests

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server_ep = fabric_.CreateEndpoint("fabric://sched-server");
    auto client_ep = fabric_.CreateEndpoint("fabric://sched-client");
    ASSERT_TRUE(server_ep.ok() && client_ep.ok());
    auto qp = (*client_ep)->Connect(*server_ep, net::Transport::kRdma,
                                    (*client_ep)->AllocPd(),
                                    (*server_ep)->AllocPd());
    ASSERT_TRUE(qp.ok());
    qp_ = *qp;
    client_ = std::make_unique<rpc::RpcClient>(qp_, *client_ep, nullptr);
    server_.RegisterAsync(1, [this](rpc::RpcContextPtr ctx) {
      parked_.push_back(std::move(ctx));
      return rpc::HandlerVerdict::kDeferred;
    });
  }

  /// Issues `n` requests and returns their parked contexts in arrival
  /// order.
  std::vector<rpc::RpcContextPtr> Park(int n) {
    for (int i = 0; i < n; ++i) {
      auto id = client_->CallAsync(1, kNoHeader);
      EXPECT_TRUE(id.ok());
    }
    EXPECT_TRUE(server_.Progress(qp_->peer()).ok());
    return std::move(parked_);
  }

  net::Fabric fabric_;
  net::Qp* qp_ = nullptr;
  rpc::RpcServer server_;
  std::unique_ptr<rpc::RpcClient> client_;
  std::vector<rpc::RpcContextPtr> parked_;
};

TEST_F(SchedulerTest, RoundRobinInterleavesTargetsFifoWithinTarget) {
  EngineScheduler sched(3);
  EXPECT_EQ(sched.num_targets(), 3u);
  EXPECT_TRUE(sched.idle());

  auto ctxs = Park(6);
  ASSERT_EQ(ctxs.size(), 6u);
  std::vector<int> order;
  auto op = [&order](int index) {
    return [&order, index](rpc::RpcContext&) -> Result<Buffer> {
      order.push_back(index);
      return Buffer{};
    };
  };
  // Targets: 0 gets ops {0,1,2}; 1 gets {3,5}; 2 gets {4}.
  sched.Enqueue(0, std::move(ctxs[0]), op(0));
  sched.Enqueue(0, std::move(ctxs[1]), op(1));
  sched.Enqueue(0, std::move(ctxs[2]), op(2));
  sched.Enqueue(1, std::move(ctxs[3]), op(3));
  sched.Enqueue(2, std::move(ctxs[4]), op(4));
  sched.Enqueue(1, std::move(ctxs[5]), op(5));
  EXPECT_EQ(sched.queued(), 6u);
  EXPECT_EQ(sched.queued(0), 3u);
  EXPECT_EQ(sched.max_queue_depth(), 6u);

  // Pass 1 (start target 0): one op per non-empty target.
  EXPECT_EQ(sched.ProgressOnce(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 3, 4}));
  // Pass 2 (start target 1): target 1's SECOND op runs before target 0's.
  EXPECT_EQ(sched.ProgressOnce(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 3, 4, 5, 1}));
  // Pass 3: only target 0 still has work.
  EXPECT_EQ(sched.ProgressOnce(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 3, 4, 5, 1, 2}));
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(sched.executed(), 6u);
  EXPECT_EQ(sched.ProgressOnce(), 0u);

  // FIFO per target held: 0 < 1 < 2 and 3 < 5 in completion order.
  // Every context was completed with a reply.
  EXPECT_EQ(client_->Poll(), 6u);
}

TEST_F(SchedulerTest, ProgressAllDrainsEverything) {
  EngineScheduler sched(4);
  auto ctxs = Park(9);
  int ran = 0;
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    sched.Enqueue(std::uint32_t(i % 2), std::move(ctxs[i]),
                  [&ran](rpc::RpcContext&) -> Result<Buffer> {
                    ++ran;
                    return Buffer{};
                  });
  }
  EXPECT_EQ(sched.ProgressAll(), 9u);
  EXPECT_EQ(ran, 9);
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(client_->Poll(), 9u);
}

TEST_F(SchedulerTest, FailingOpCompletesContextWithError) {
  EngineScheduler sched(1);
  auto ctxs = Park(1);
  sched.Enqueue(0, std::move(ctxs[0]),
                [](rpc::RpcContext&) -> Result<Buffer> {
                  return Status(DataLoss("checksum mismatch on xstream"));
                });
  EXPECT_EQ(sched.ProgressAll(), 1u);
  EXPECT_EQ(client_->Poll(), 1u);
}

// --------------------------------------------------- engine-level tests

class EnginePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 256 * kMiB;
    device_ = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device_.get()};
    EngineConfig config;
    config.address = "fabric://pipeline-engine";
    config.targets = 4;
    config.scm_per_target = 16 * kMiB;
    auto engine = DaosEngine::Create(&fabric_, config, raw);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  /// A raw data-plane client on its own QP, pumping the ENGINE's progress
  /// tick (not a per-QP poke).
  std::unique_ptr<rpc::RpcClient> NewClient(int index) {
    auto ep = fabric_.CreateEndpoint("fabric://pipeline-client-" +
                                     std::to_string(index));
    EXPECT_TRUE(ep.ok());
    auto qp = (*ep)->Connect(engine_->endpoint(), net::Transport::kRdma,
                             (*ep)->AllocPd(), engine_->pd());
    EXPECT_TRUE(qp.ok());
    DaosEngine* engine = engine_.get();
    return std::make_unique<rpc::RpcClient>(
        *qp, *ep, [engine] { (void)engine->ProgressAll(); });
  }

  Result<ContainerId> CreateContainer(rpc::RpcClient* client,
                                      const std::string& label) {
    rpc::Encoder enc;
    enc.Str(label);
    ROS2_ASSIGN_OR_RETURN(
        rpc::RpcReply reply,
        client->Call(std::uint32_t(DaosOpcode::kContCreate), enc));
    rpc::Decoder dec(reply.header);
    return dec.U64();
  }

  static rpc::Encoder SingleUpdateHeader(ContainerId cont,
                                         const ObjectId& oid,
                                         const std::string& dkey,
                                         std::span<const std::byte> value) {
    rpc::Encoder enc;
    enc.U64(cont).U64(oid.hi).U64(oid.lo).Str(dkey).Str("a");
    enc.Bytes(value);
    return enc;
  }

  net::Fabric fabric_;
  std::unique_ptr<storage::NvmeDevice> device_;
  std::unique_ptr<DaosEngine> engine_;
};

TEST_F(EnginePipelineTest, CreateRejectsZeroTargets) {
  storage::NvmeDevice* raw[] = {device_.get()};
  EngineConfig config;
  config.address = "fabric://zero-target-engine";
  config.targets = 0;
  auto engine = DaosEngine::Create(&fabric_, config, raw);
  EXPECT_EQ(engine.status().code(), ErrorCode::kInvalidArgument)
      << "targets == 0 must be a clean construction error, not a silent "
         "single-target fallback";
  // The reject happened before any endpoint was claimed.
  EXPECT_FALSE(fabric_.Lookup("fabric://zero-target-engine").ok());
}

TEST_F(EnginePipelineTest, CreateRejectsEmptyDevicesAndDuplicateAddress) {
  EngineConfig config;
  config.address = "fabric://no-device-engine";
  auto no_dev = DaosEngine::Create(
      &fabric_, config, std::span<storage::NvmeDevice* const>{});
  EXPECT_EQ(no_dev.status().code(), ErrorCode::kInvalidArgument);

  storage::NvmeDevice* raw[] = {device_.get()};
  EngineConfig dup;
  dup.address = "fabric://pipeline-engine";  // taken by the fixture engine
  EXPECT_EQ(DaosEngine::Create(&fabric_, dup, raw).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(EnginePipelineTest, OneProgressTickServicesAllClientsFairly) {
  constexpr int kClients = 3;
  constexpr int kCallsPerClient = 4;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(NewClient(c));
  ASSERT_EQ(engine_->poll_set().member_count(), std::size_t(kClients));

  auto cont = CreateContainer(clients[0].get(), "fairness");
  ASSERT_TRUE(cont.ok());

  // Interleaved outstanding requests: client 0, 1, 2, 0, 1, 2, ...
  Buffer value = MakePatternBuffer(128, 7);
  std::vector<std::vector<rpc::RpcClient::CallId>> ids(kClients);
  for (int round = 0; round < kCallsPerClient; ++round) {
    for (int c = 0; c < kClients; ++c) {
      ObjectId oid{1, std::uint64_t(c)};
      rpc::Encoder header = SingleUpdateHeader(
          *cont, oid, "c" + std::to_string(c) + "-k" + std::to_string(round),
          value);
      auto id = clients[std::size_t(c)]->CallAsync(
          std::uint32_t(DaosOpcode::kSingleUpdate), header);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids[std::size_t(c)].push_back(*id);
    }
  }
  const std::uint64_t executed_before = engine_->scheduler().executed();

  // ONE engine tick: poll-set drain decodes all 12 requests off all 3
  // QPs, the xstreams run them, every client's replies are on the wire.
  ASSERT_TRUE(engine_->ProgressAll().ok());
  EXPECT_EQ(engine_->scheduler().executed() - executed_before,
            std::uint64_t(kClients) * kCallsPerClient);
  EXPECT_TRUE(engine_->scheduler().idle());

  for (int c = 0; c < kClients; ++c) {
    // No further pumping: the tick already answered everyone.
    EXPECT_EQ(clients[std::size_t(c)]->Poll(), std::size_t(kCallsPerClient))
        << "client " << c << " starved";
    for (auto id : ids[std::size_t(c)]) {
      auto reply = clients[std::size_t(c)]->Take(id);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    }
  }
  EXPECT_EQ(engine_->stats().updates,
            std::uint64_t(kClients) * kCallsPerClient);
}

TEST_F(EnginePipelineTest, DeferredOpsLandOnTheirDkeysTargets) {
  auto client = NewClient(5);
  auto cont = CreateContainer(client.get(), "routing");
  ASSERT_TRUE(cont.ok());
  ObjectId oid{1, 7};

  // 16 distinct dkeys of ONE object, decoded but NOT drained (poke the
  // rpc server directly instead of ProgressAll): each op must be parked
  // on exactly the queue PlaceDkey names. (Regression: the dispatch
  // lambda used to move the decoded address before the routing hash ran,
  // collapsing every dkey onto the moved-from-string's target.)
  constexpr int kOps = 16;
  std::vector<std::size_t> expected(engine_->num_targets(), 0);
  Buffer value = MakePatternBuffer(32, 1);
  for (int i = 0; i < kOps; ++i) {
    const std::string dkey = "route-" + std::to_string(i);
    expected[PlaceDkey(oid, dkey, engine_->num_targets())]++;
    rpc::Encoder header = SingleUpdateHeader(*cont, oid, dkey, value);
    ASSERT_TRUE(client
                    ->CallAsync(std::uint32_t(DaosOpcode::kSingleUpdate),
                                header)
                    .ok());
  }
  ASSERT_TRUE(engine_->server()->Progress(client->qp()->peer()).ok());
  ASSERT_EQ(engine_->scheduler().queued(), std::size_t(kOps));
  int nonempty = 0;
  for (std::uint32_t t = 0; t < engine_->num_targets(); ++t) {
    EXPECT_EQ(engine_->scheduler().queued(t), expected[t])
        << "target " << t << " holds the wrong ops";
    if (expected[t] > 0) ++nonempty;
  }
  EXPECT_GE(nonempty, 2) << "test dkeys must spread over targets";
  ASSERT_TRUE(engine_->ProgressAll().ok());
  EXPECT_EQ(client->Poll(), std::size_t(kOps));
}

TEST_F(EnginePipelineTest, SameDkeyOpsStayFifoAcrossThePipeline) {
  auto client = NewClient(9);
  auto cont = CreateContainer(client.get(), "fifo");
  ASSERT_TRUE(cont.ok());
  ObjectId oid{1, 42};

  // Five pipelined updates to ONE dkey: all outstanding at once, so they
  // ride the same target queue.
  constexpr int kUpdates = 5;
  std::vector<rpc::RpcClient::CallId> ids;
  std::vector<Buffer> values;
  for (int i = 0; i < kUpdates; ++i) {
    values.push_back(MakePatternBuffer(64, std::uint64_t(i) + 1));
    rpc::Encoder header =
        SingleUpdateHeader(*cont, oid, "hot-dkey", values.back());
    auto id = client->CallAsync(std::uint32_t(DaosOpcode::kSingleUpdate),
                                header);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(engine_->ProgressAll().ok());
  ASSERT_EQ(client->Poll(), std::size_t(kUpdates));

  // Epochs stamp at execution: FIFO order on the target means the i-th
  // issued update got the i-th epoch, strictly increasing.
  Epoch last = 0;
  for (int i = 0; i < kUpdates; ++i) {
    auto reply = client->Take(ids[std::size_t(i)]);
    ASSERT_TRUE(reply.ok());
    rpc::Decoder dec(reply->header);
    auto epoch = dec.U64();
    ASSERT_TRUE(epoch.ok());
    EXPECT_GT(*epoch, last) << "update " << i << " executed out of order";
    last = *epoch;
  }

  // HEAD readback sees the LAST issued value.
  rpc::Encoder fetch;
  fetch.U64(*cont).U64(oid.hi).U64(oid.lo).Str("hot-dkey").Str("a");
  fetch.U64(kEpochHead);
  auto reply =
      client->Call(std::uint32_t(DaosOpcode::kSingleFetch), fetch);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  rpc::Decoder dec(reply->header);
  auto value = dec.Bytes();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, values.back());
}

}  // namespace
}  // namespace ros2::daos
