// Selftest for the vendored google-benchmark shim in
// third_party/minibenchmark. Like minigtest_selftest, this always compiles
// against the VENDORED header (its job is to keep the shim honest even
// when bench_micro_transport links a system google-benchmark) and uses the
// MINIBENCHMARK-only internal hooks to run registered benchmarks
// in-process: registration/expansion, argument ranges, fixed-iteration
// runs, counter flag math, filter semantics, flag parsing, and both report
// formats.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#ifndef MINIBENCHMARK
#error minibenchmark_selftest must compile against the vendored shim
#endif

namespace {

void BM_Counting(benchmark::State& state) {
  std::int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++n);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["plain"] = 5.0;
  state.counters["inv"] =
      benchmark::Counter(2.0, benchmark::Counter::kIsIterationInvariant);
  state.counters["avg"] =
      benchmark::Counter(100.0, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Counting)->Arg(16)->Arg(64);

void BM_Ranged(benchmark::State& state) {
  for (auto _ : state) {
  }
}
BENCHMARK(BM_Ranged)->Range(4096, 1 << 20);

void BM_TwoArgs(benchmark::State& state) {
  for (auto _ : state) {
  }
  state.SetLabel("two-args");
}
BENCHMARK(BM_TwoArgs)->Args({8, 3});

void BM_Captured(benchmark::State& state, int bonus) {
  std::int64_t total = 0;
  while (state.KeepRunning()) {
    total += bonus;
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK_CAPTURE(BM_Captured, bonus7, 7);

void BM_Skipped(benchmark::State& state) {
  state.SkipWithError("deliberate skip");
  for (auto _ : state) {
  }
}
BENCHMARK(BM_Skipped);

benchmark::internal::FlagState FixedIterationFlags(std::int64_t iters) {
  benchmark::internal::FlagState flags;
  flags.min_time_iters = iters;
  return flags;
}

std::vector<benchmark::internal::RunResult> RunOnly(
    const std::string& filter, std::int64_t iters = 50) {
  benchmark::internal::FlagState flags = FixedIterationFlags(iters);
  flags.filter = filter;
  return benchmark::internal::RunFiltered(flags);
}

TEST(MinibenchmarkSelftest, RegistrationExpandsArgsIntoNames) {
  std::vector<std::string> names;
  for (const auto& spec : benchmark::internal::ExpandRegistry()) {
    names.push_back(spec.name);
  }
  auto contains = [&names](const std::string& name) {
    for (const auto& candidate : names) {
      if (candidate == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("BM_Counting/16"));
  EXPECT_TRUE(contains("BM_Counting/64"));
  EXPECT_TRUE(contains("BM_TwoArgs/8/3"));
  EXPECT_TRUE(contains("BM_Captured/bonus7"));
  EXPECT_TRUE(contains("BM_Skipped"));
  // Range(4096, 1<<20) with the default 8x multiplier.
  EXPECT_TRUE(contains("BM_Ranged/4096"));
  EXPECT_TRUE(contains("BM_Ranged/32768"));
  EXPECT_TRUE(contains("BM_Ranged/262144"));
  EXPECT_TRUE(contains("BM_Ranged/1048576"));
  EXPECT_FALSE(contains("BM_Ranged/2097152"));
}

TEST(MinibenchmarkSelftest, RangeWithZeroLowerBoundTerminates) {
  // Regression guard: lo=0 must not spin the power-of-multiplier loop
  // forever; it fills in powers from 1 like google-benchmark.
  benchmark::internal::Benchmark bench("BM_ZeroLo", [](benchmark::State&) {});
  bench.Range(0, 64);
  ASSERT_EQ(bench.args_list().size(), 4u);
  EXPECT_EQ(bench.args_list()[0][0], 0);
  EXPECT_EQ(bench.args_list()[1][0], 1);
  EXPECT_EQ(bench.args_list()[2][0], 8);
  EXPECT_EQ(bench.args_list()[3][0], 64);
}

TEST(MinibenchmarkSelftest, FixedIterationRunHonorsBudget) {
  const auto results = RunOnly("^BM_Counting/16$", 50);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "BM_Counting/16");
  EXPECT_EQ(results[0].iterations, 50);
  EXPECT_FALSE(results[0].skipped);
  EXPECT_GE(results[0].real_time, 0.0);
  EXPECT_GE(results[0].bytes_per_second, 0.0);
  EXPECT_GE(results[0].items_per_second, 0.0);
}

TEST(MinibenchmarkSelftest, CounterFlagMath) {
  const auto results = RunOnly("^BM_Counting/16$", 50);
  ASSERT_EQ(results.size(), 1u);
  double plain = -1.0, inv = -1.0, avg = -1.0;
  for (const auto& [name, value] : results[0].counters) {
    if (name == "plain") plain = value;
    if (name == "inv") inv = value;
    if (name == "avg") avg = value;
  }
  EXPECT_EQ(plain, 5.0);
  EXPECT_EQ(inv, 2.0 * 50);    // iteration-invariant: scaled by iterations
  EXPECT_EQ(avg, 100.0 / 50);  // averaged over iterations
}

TEST(MinibenchmarkSelftest, SkipWithErrorReports) {
  const auto results = RunOnly("^BM_Skipped$");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].skipped);
  EXPECT_EQ(results[0].error_message, "deliberate skip");
}

TEST(MinibenchmarkSelftest, KeepRunningPathMatchesIterationBudget) {
  const auto results = RunOnly("^BM_Captured/bonus7$", 25);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].iterations, 25);
}

TEST(MinibenchmarkSelftest, AdaptiveTimingGrowsIterations) {
  benchmark::internal::FlagState flags;
  flags.min_time_s = 0.002;  // tiny but far beyond one trivial iteration
  flags.filter = "^BM_Ranged/4096$";
  const auto results = benchmark::internal::RunFiltered(flags);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].iterations, 1);
}

TEST(MinibenchmarkSelftest, FilterSemantics) {
  using benchmark::internal::MatchesFilter;
  EXPECT_TRUE(MatchesFilter("", "anything"));
  EXPECT_TRUE(MatchesFilter("all", "anything"));
  EXPECT_TRUE(MatchesFilter("Counting", "BM_Counting/16"));  // substring
  EXPECT_TRUE(MatchesFilter("BM_*/16", "BM_Counting/16"));
  EXPECT_TRUE(MatchesFilter("^BM_Counting", "BM_Counting/16"));
  EXPECT_FALSE(MatchesFilter("^Counting", "BM_Counting/16"));
  EXPECT_TRUE(MatchesFilter("16$", "BM_Counting/16"));
  EXPECT_FALSE(MatchesFilter("BM_Counting$", "BM_Counting/16"));
  EXPECT_FALSE(MatchesFilter("BM_Ranged", "BM_Counting/16"));
  const auto results = RunOnly("BM_Counting");
  EXPECT_EQ(results.size(), 2u);  // /16 and /64
}

TEST(MinibenchmarkSelftest, MinTimeFlagParsing) {
  benchmark::internal::FlagState flags;
  EXPECT_TRUE(benchmark::internal::ParseMinTime("0.25s", &flags));
  EXPECT_EQ(flags.min_time_s, 0.25);
  EXPECT_EQ(flags.min_time_iters, 0);
  EXPECT_TRUE(benchmark::internal::ParseMinTime("2", &flags));
  EXPECT_EQ(flags.min_time_s, 2.0);
  EXPECT_TRUE(benchmark::internal::ParseMinTime("500x", &flags));
  EXPECT_EQ(flags.min_time_iters, 500);
  EXPECT_FALSE(benchmark::internal::ParseMinTime("junk", &flags));
  EXPECT_FALSE(benchmark::internal::ParseMinTime("", &flags));
}

TEST(MinibenchmarkSelftest, InitializeParsesAndStripsBenchmarkFlags) {
  benchmark::internal::GetFlags() = benchmark::internal::FlagState{};
  const char* argv_init[] = {"selftest", "--benchmark_filter=BM_Counting",
                             "--benchmark_format=json",
                             "--benchmark_min_time=100x",
                             "--benchmark_out=/tmp/x.json", "--keep-me"};
  std::vector<char*> argv;
  for (const char* arg : argv_init) argv.push_back(const_cast<char*>(arg));
  int argc = int(argv.size());
  benchmark::Initialize(&argc, argv.data());
  const auto& flags = benchmark::internal::GetFlags();
  EXPECT_EQ(flags.filter, "BM_Counting");
  EXPECT_EQ(flags.format, "json");
  EXPECT_EQ(flags.min_time_iters, 100);
  EXPECT_EQ(flags.out, "/tmp/x.json");
  // Recognized flags are consumed; unrecognized args are kept for the app.
  ASSERT_EQ(argc, 2);
  EXPECT_EQ(std::string(argv[1]), "--keep-me");
  EXPECT_TRUE(benchmark::ReportUnrecognizedArguments(argc, argv.data()));
  benchmark::internal::GetFlags() = benchmark::internal::FlagState{};
}

TEST(MinibenchmarkSelftest, JsonReportShape) {
  auto results = RunOnly("^BM_TwoArgs/8/3$");
  auto skipped = RunOnly("^BM_Skipped$");
  results.insert(results.end(), skipped.begin(), skipped.end());
  benchmark::internal::FlagState flags;
  flags.executable = "selftest-binary";
  std::ostringstream out;
  benchmark::internal::WriteJsonReport(out, results, flags);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"context\": {"), std::string::npos);
  EXPECT_NE(json.find("\"executable\": \"selftest-binary\""),
            std::string::npos);
  EXPECT_NE(json.find("\"benchmarks\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"BM_TwoArgs/8/3\""), std::string::npos);
  EXPECT_NE(json.find("\"run_type\": \"iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"time_unit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"two-args\""), std::string::npos);
  EXPECT_NE(json.find("\"error_occurred\": true"), std::string::npos);
  EXPECT_NE(json.find("\"error_message\": \"deliberate skip\""),
            std::string::npos);
}

TEST(MinibenchmarkSelftest, ConsoleReportShape) {
  auto results = RunOnly("^BM_Counting/16$");
  auto skipped = RunOnly("^BM_Skipped$");
  results.insert(results.end(), skipped.begin(), skipped.end());
  std::ostringstream out;
  benchmark::internal::WriteConsoleReport(out, results);
  const std::string console = out.str();
  EXPECT_NE(console.find("Benchmark"), std::string::npos);
  EXPECT_NE(console.find("Iterations"), std::string::npos);
  EXPECT_NE(console.find("BM_Counting/16"), std::string::npos);
  EXPECT_NE(console.find("bytes_per_second="), std::string::npos);
  EXPECT_NE(console.find("inv=100"), std::string::npos);
  EXPECT_NE(console.find("ERROR: 'deliberate skip'"), std::string::npos);
}

}  // namespace
