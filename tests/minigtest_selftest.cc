// Selftest for the vendored minigtest shim (third_party/minigtest).
//
// Always compiled against the shim — even when the rest of the suite uses a
// system GoogleTest — because its job is to keep the shim honest: passing
// and failing assertions, fixture lifecycle ordering, parameterized
// expansion, and death-free failure capture (a failing assertion is recorded
// and reported; it never aborts the process).
#include <gtest/gtest.h>

#ifndef MINIGTEST
#error "minigtest_selftest must compile against the vendored shim"
#endif

#include <string>
#include <tuple>
#include <vector>

namespace {

using ::testing::internal::ScopedFailureCapture;

// ---------------------------------------------------------------------------
// Passing assertions of every flavor the repo uses.
// ---------------------------------------------------------------------------

TEST(MinigtestAssertions, PassingAssertionsRecordNothing) {
  ScopedFailureCapture capture;
  EXPECT_TRUE(true);
  EXPECT_FALSE(false);
  EXPECT_EQ(2 + 2, 4);
  EXPECT_NE(1, 2);
  EXPECT_LT(1, 2);
  EXPECT_LE(2, 2);
  EXPECT_GT(3, 2);
  EXPECT_GE(3, 3);
  EXPECT_NEAR(1.0, 1.0 + 1e-9, 1e-6);
  EXPECT_DOUBLE_EQ(0.3, 0.1 + 0.2);  // 1 ULP apart: DOUBLE_EQ must accept
  EXPECT_STREQ("abc", "abc");
  EXPECT_STRNE("abc", "abd");
  capture.Release();
  EXPECT_EQ(capture.count(), 0u);
}

// ---------------------------------------------------------------------------
// Failing assertions: captured, counted, never fatal to the process.
// ---------------------------------------------------------------------------

TEST(MinigtestAssertions, FailingExpectIsNonFatalAndCaptured) {
  ScopedFailureCapture capture;
  EXPECT_EQ(1, 2);
  EXPECT_TRUE(false);
  const bool reached_after_failures = true;  // EXPECT_* must not return
  capture.Release();
  EXPECT_TRUE(reached_after_failures);
  EXPECT_EQ(capture.count(), 2u);
  EXPECT_FALSE(capture.HasFatal());
}

TEST(MinigtestAssertions, FailureMessageCarriesOperandsAndTrailer) {
  ScopedFailureCapture capture;
  const int lhs = 41;
  EXPECT_EQ(lhs, 42) << "trailer context " << 7;
  capture.Release();
  ASSERT_EQ(capture.count(), 1u);
  const std::string& text = capture.records()[0].text;
  EXPECT_NE(text.find("lhs"), std::string::npos);
  EXPECT_NE(text.find("41"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("trailer context 7"), std::string::npos);
}

void HelperWithFatalAssert(bool* reached_after) {
  ASSERT_EQ(1, 2);          // fatal: must return out of this helper...
  *reached_after = true;    // ...so this line must never run
}

TEST(MinigtestAssertions, FailingAssertReturnsFromEnclosingFunction) {
  bool reached_after = false;
  {
    ScopedFailureCapture capture;
    HelperWithFatalAssert(&reached_after);
    capture.Release();
    EXPECT_EQ(capture.count(), 1u);
    EXPECT_TRUE(capture.HasFatal());
  }
  EXPECT_FALSE(reached_after);
}

TEST(MinigtestAssertions, NearAndDoubleEqRejectOutOfToleranceValues) {
  ScopedFailureCapture capture;
  EXPECT_NEAR(1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(1.0, 1.0001);
  capture.Release();
  EXPECT_EQ(capture.count(), 2u);
}

// ---------------------------------------------------------------------------
// Fixture lifecycle: SetUp before body, TearDown after, fresh object per test.
// ---------------------------------------------------------------------------

class LifecycleFixture : public ::testing::Test {
 public:
  static inline std::vector<std::string> events;

 protected:
  void SetUp() override { events.push_back("SetUp"); }
  void TearDown() override { events.push_back("TearDown"); }
  int per_test_state_ = 0;
};

TEST_F(LifecycleFixture, FirstBodyRunsBetweenSetUpAndTearDown) {
  events.push_back("Body1");
  per_test_state_ = 99;
  EXPECT_GE(events.size(), 2u);
  EXPECT_EQ(events[events.size() - 2], "SetUp");
  EXPECT_EQ(events.back(), "Body1");
}

TEST_F(LifecycleFixture, SecondBodyGetsAFreshFixtureObject) {
  events.push_back("Body2");
  // 99 was set by the previous test; a new fixture instance must not see it.
  EXPECT_EQ(per_test_state_, 0);
}

TEST_F(LifecycleFixture, EventOrderIsSetUpBodyTearDown) {
  // Isolation-safe (works under --gtest_filter running only this test):
  // verify the lifecycle grammar of however many cycles actually ran —
  // every cycle is SetUp [Body] TearDown, and this test's own SetUp is last.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "SetUp");
  EXPECT_EQ(events.back(), "SetUp");
  std::size_t setups = 0, teardowns = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i] == "SetUp") {
      ++setups;
      if (i > 0) {
        EXPECT_EQ(events[i - 1], "TearDown") << "event index " << i;
      }
    } else if (events[i] == "TearDown") {
      ++teardowns;
      EXPECT_NE(events[i - 1], "TearDown") << "event index " << i;
    } else {
      EXPECT_EQ(events[i - 1], "SetUp") << "body must follow SetUp, index " << i;
    }
  }
  EXPECT_EQ(setups, teardowns + 1);  // own SetUp has no TearDown yet
  // When the whole file ran in order, additionally pin the exact sequence.
  if (events.size() >= 7) {
    const std::vector<std::string> expected = {"SetUp", "Body1", "TearDown",
                                               "SetUp", "Body2", "TearDown",
                                               "SetUp"};
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(events[i], expected[i]) << "event index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized tests: Values expansion, GetParam, Combine cross product.
// ---------------------------------------------------------------------------

class ParamSelfTest : public ::testing::TestWithParam<int> {
 public:
  static inline std::vector<int> seen_params;
};

TEST_P(ParamSelfTest, RecordsEveryParam) {
  seen_params.push_back(GetParam());
  EXPECT_GE(GetParam(), 10);
  EXPECT_LE(GetParam(), 30);
  // Params expand in Values() order, so with the full suite running the
  // 30-instance goes last and sees the whole sweep. Guarded on size so a
  // --gtest_filter run of a single instance stays green; full expansion is
  // pinned order-independently by MinigtestGenerators below.
  if (GetParam() == 30 && seen_params.size() == 3) {
    EXPECT_EQ(seen_params[0] + seen_params[1] + seen_params[2], 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParamSelfTest, ::testing::Values(10, 20, 30));

class ComboSelfTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {
 public:
  static inline std::vector<std::tuple<int, std::string>> seen;
};

TEST_P(ComboSelfTest, RecordsCrossProduct) {
  seen.push_back(GetParam());
  const auto [number, text] = GetParam();
  EXPECT_TRUE(number == 1 || number == 2);
  EXPECT_TRUE(text == "a" || text == "b");
  // The last tuple of the cross product verifies full coverage (guarded on
  // size so a filtered single-instance run stays green; see
  // MinigtestGenerators for the order-independent expansion checks).
  if (number == 2 && text == "b" && seen.size() == 4) {
    for (int want_number : {1, 2}) {
      for (const char* want_text : {"a", "b"}) {
        bool found = false;
        for (const auto& t : seen) {
          if (std::get<0>(t) == want_number && std::get<1>(t) == want_text) {
            found = true;
          }
        }
        EXPECT_TRUE(found) << want_number << want_text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ComboSelfTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(std::string("a"),
                                                              std::string("b"))));

// Order-independent pinning of the expansion machinery: materialize the
// generators directly (shim-only API) instead of relying on which test
// instances ran before this one.
TEST(MinigtestGenerators, ValuesMaterializesInOrderWithConversions) {
  const auto values =
      ::testing::Values(10, 20u, 30ll).Materialize<std::uint64_t>();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 10u);
  EXPECT_EQ(values[1], 20u);
  EXPECT_EQ(values[2], 30u);
}

TEST(MinigtestGenerators, CombineMaterializesTheFullCrossProduct) {
  using Tuple = std::tuple<int, std::string>;
  const auto tuples =
      ::testing::Combine(::testing::Values(1, 2),
                         ::testing::Values(std::string("a"), std::string("b")))
          .Materialize<Tuple>();
  ASSERT_EQ(tuples.size(), 4u);
  // Last generator varies fastest.
  EXPECT_EQ(tuples[0], Tuple(1, "a"));
  EXPECT_EQ(tuples[1], Tuple(1, "b"));
  EXPECT_EQ(tuples[2], Tuple(2, "a"));
  EXPECT_EQ(tuples[3], Tuple(2, "b"));
}

TEST(MinigtestGenerators, BoolAndRangeCoverTheirDomains) {
  const auto bools = ::testing::Bool().Materialize<bool>();
  ASSERT_EQ(bools.size(), 2u);
  EXPECT_FALSE(bools[0]);
  EXPECT_TRUE(bools[1]);
  const auto range = ::testing::Range(0, 10, 3).Materialize<int>();
  ASSERT_EQ(range.size(), 4u);
  EXPECT_EQ(range[3], 9);
}

// ---------------------------------------------------------------------------
// Suite-level hooks: SetUpTestSuite runs before the first test of a suite,
// TearDownTestSuite after its last (verified from the suite's own tests,
// so it holds under filtering too).
// ---------------------------------------------------------------------------

class SuiteHookFixture : public ::testing::Test {
 public:
  static inline int suite_setups = 0;
  static inline int suite_teardowns = 0;
  static void SetUpTestSuite() { ++suite_setups; }
  static void TearDownTestSuite() { ++suite_teardowns; }
};

TEST_F(SuiteHookFixture, SetUpTestSuiteRanExactlyOnceBeforeFirstTest) {
  EXPECT_EQ(suite_setups, 1);
  EXPECT_EQ(suite_teardowns, 0);
}

TEST_F(SuiteHookFixture, SetUpTestSuiteDidNotRunAgainForSecondTest) {
  EXPECT_EQ(suite_setups, 1);
  EXPECT_EQ(suite_teardowns, 0);
}

// Suites whose declarations interleave still get each hook exactly once
// (GoogleTest semantics): setup before the suite's first test, teardown
// after its last — not at every registration-order boundary.
class InterleaveA : public ::testing::Test {
 public:
  static inline int setups = 0;
  static inline int teardowns = 0;
  static void SetUpTestSuite() { ++setups; }
  static void TearDownTestSuite() { ++teardowns; }
};

class InterleaveB : public ::testing::Test {};

TEST_F(InterleaveA, First) { EXPECT_EQ(setups, 1); }

TEST_F(InterleaveB, Between) {
  // A's last test hasn't run yet, so its teardown must not have fired.
  EXPECT_EQ(InterleaveA::teardowns, 0);
}

TEST_F(InterleaveA, Second) {
  EXPECT_EQ(setups, 1);  // not re-run at the B boundary
  EXPECT_EQ(teardowns, 0);
}

// Custom namer lambda, as used by nvmf_test / daos_client_test.
class NamedParamTest : public ::testing::TestWithParam<int> {};

TEST_P(NamedParamTest, NamerCompiles) { EXPECT_GT(GetParam(), 0); }

INSTANTIATE_TEST_SUITE_P(Named, NamedParamTest, ::testing::Values(1, 2),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// GTEST_SKIP marks the test skipped without failing it.
// ---------------------------------------------------------------------------

TEST(MinigtestSkip, SkipReturnsImmediately) {
  GTEST_SKIP() << "intentional skip to exercise the skip path";
  ADD_FAILURE() << "must be unreachable";
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
