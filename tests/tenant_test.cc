#include "core/tenant.h"

#include <gtest/gtest.h>

namespace ros2::core {
namespace {

TEST(QosBucketTest, UnlimitedAlwaysAdmits) {
  QosBucket bucket(0.0, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.Acquire(1 << 30, 0.0).ok());
  }
}

TEST(QosBucketTest, BurstThenRateLimited) {
  QosBucket bucket(/*rate=*/1000.0, /*burst=*/500);
  EXPECT_TRUE(bucket.Acquire(500, 0.0).ok());  // burst spent
  EXPECT_EQ(bucket.Acquire(1, 0.0).code(), ErrorCode::kResourceExhausted);
}

TEST(QosBucketTest, RefillsOverTime) {
  QosBucket bucket(1000.0, 500);
  ASSERT_TRUE(bucket.Acquire(500, 0.0).ok());
  EXPECT_FALSE(bucket.Acquire(100, 0.0).ok());
  // 0.2 s later: 200 tokens refilled.
  EXPECT_TRUE(bucket.Acquire(100, 0.2).ok());
  EXPECT_TRUE(bucket.Acquire(100, 0.2).ok());
  EXPECT_FALSE(bucket.Acquire(100, 0.2).ok());
}

TEST(QosBucketTest, RefillCapsAtBurst) {
  QosBucket bucket(1000.0, 500);
  ASSERT_TRUE(bucket.Acquire(500, 0.0).ok());
  // After 100 s only `burst` tokens are available, not 100 000.
  EXPECT_TRUE(bucket.Acquire(500, 100.0).ok());
  EXPECT_FALSE(bucket.Acquire(1, 100.0).ok());
}

TEST(TenantRegistryTest, RegisterAndAuthenticate) {
  TenantRegistry registry;
  TenantConfig config;
  config.name = "team-llm";
  config.auth_token = "s3cret";
  auto id = registry.Register(config);
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*id, 0u);  // 0 is the system tenant

  auto tenant = registry.Authenticate("team-llm", "s3cret");
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ((*tenant)->id, *id);
}

TEST(TenantRegistryTest, BadCredentialsRejected) {
  TenantRegistry registry;
  TenantConfig config;
  config.name = "t";
  config.auth_token = "right";
  ASSERT_TRUE(registry.Register(config).ok());
  EXPECT_EQ(registry.Authenticate("t", "wrong").status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(registry.Authenticate("ghost", "right").status().code(),
            ErrorCode::kPermissionDenied);
}

TEST(TenantRegistryTest, DuplicateNameRejected) {
  TenantRegistry registry;
  TenantConfig config;
  config.name = "dup";
  ASSERT_TRUE(registry.Register(config).ok());
  EXPECT_EQ(registry.Register(config).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(TenantRegistryTest, EmptyNameRejected) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Register({}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(TenantRegistryTest, CryptoKeysUniquePerTenant) {
  TenantRegistry registry;
  TenantConfig a;
  a.name = "a";
  TenantConfig b;
  b.name = "b";
  auto id_a = registry.Register(a);
  auto id_b = registry.Register(b);
  ASSERT_TRUE(id_a.ok() && id_b.ok());
  auto ta = registry.Find(*id_a);
  auto tb = registry.Find(*id_b);
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_NE((*ta)->crypto_key, (*tb)->crypto_key);
}

TEST(TenantRegistryTest, FindUnknown) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Find(77).status().code(), ErrorCode::kNotFound);
}

TEST(TenantRegistryTest, PerTenantBucketsIndependent) {
  TenantRegistry registry;
  TenantConfig limited;
  limited.name = "limited";
  limited.rate_limit_bps = 100.0;
  limited.burst_bytes = 100;
  TenantConfig open;
  open.name = "open";
  auto id_l = registry.Register(limited);
  auto id_o = registry.Register(open);
  ASSERT_TRUE(id_l.ok() && id_o.ok());
  Tenant* l = *registry.Find(*id_l);
  Tenant* o = *registry.Find(*id_o);
  ASSERT_TRUE(l->bucket.Acquire(100, 0.0).ok());
  EXPECT_FALSE(l->bucket.Acquire(100, 0.0).ok());
  EXPECT_TRUE(o->bucket.Acquire(1 << 20, 0.0).ok());  // unaffected
}

}  // namespace
}  // namespace ros2::core
