// Shape tests for the Fig. 4 (remote SPDK NVMe-oF) model: §4.3 results.
#include "perf/remote_spdk_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ros2::perf {
namespace {

double GiBps(const sim::ClosedLoopResult& r) {
  return r.bytes_per_sec / double(kGiB);
}

sim::ClosedLoopResult RunModel(Transport t, std::uint32_t ccores,
                          std::uint32_t scores, OpKind op, std::uint64_t bs,
                          std::uint64_t ops = 20000) {
  RemoteSpdkModel::Config config;
  config.transport = t;
  config.client_cores = ccores;
  config.server_cores = scores;
  config.op = op;
  config.block_size = bs;
  RemoteSpdkModel model(config);
  return model.Run(ops);
}

TEST(RemoteModelTest, LargeBlocksPlateauAtMediaCeilingBothTransports) {
  // §4.3: "The similarity between TCP and RDMA at 1 MiB indicates a
  // media/network ceiling" once a few cores are available.
  const double tcp = GiBps(RunModel(Transport::kTcp, 4, 4, OpKind::kRead, kMiB));
  const double rdma = GiBps(RunModel(Transport::kRdma, 4, 4, OpKind::kRead, kMiB));
  EXPECT_NEAR(tcp, 5.4, 0.4);
  EXPECT_NEAR(rdma, 5.4, 0.4);
}

TEST(RemoteModelTest, TcpNeedsModestParallelismAtLargeBlocks) {
  // TCP with one core is copy-bound below the media rate; it catches up
  // with a couple of cores.
  const double one = GiBps(RunModel(Transport::kTcp, 1, 1, OpKind::kRead, kMiB));
  const double four = GiBps(RunModel(Transport::kTcp, 4, 4, OpKind::kRead, kMiB));
  EXPECT_LT(one, 4.5);
  EXPECT_GT(four, 5.0);
}

TEST(RemoteModelTest, RdmaSaturatesLargeReadsWithOneCore) {
  const double r = GiBps(RunModel(Transport::kRdma, 1, 1, OpKind::kRead, kMiB));
  EXPECT_NEAR(r, 5.4, 0.4);
}

TEST(RemoteModelTest, WritesBoundByMediaWriteRate) {
  const double r = GiBps(RunModel(Transport::kRdma, 4, 4, OpKind::kWrite, kMiB));
  EXPECT_NEAR(r, 2.7, 0.3);
}

TEST(RemoteModelTest, RdmaSmallBlockIopsBeatTcp) {
  // §4.3: "RDMA delivers substantially higher IOPS".
  const auto tcp = RunModel(Transport::kTcp, 4, 4, OpKind::kRandRead, 4096, 40000);
  const auto rdma =
      RunModel(Transport::kRdma, 4, 4, OpKind::kRandRead, 4096, 40000);
  EXPECT_GT(rdma.ops_per_sec, 2.0 * tcp.ops_per_sec);
}

TEST(RemoteModelTest, TcpSmallBlockScalingFlattens) {
  // §4.3: "TCP heatmaps show limited benefit from additional cores".
  const auto c4 = RunModel(Transport::kTcp, 4, 4, OpKind::kRandRead, 4096, 40000);
  const auto c16 =
      RunModel(Transport::kTcp, 16, 16, OpKind::kRandRead, 4096, 60000);
  EXPECT_LT(c16.ops_per_sec, c4.ops_per_sec * 1.5);
  // Bounded by the serialized stack section (~250 K).
  EXPECT_LT(c16.ops_per_sec, 300'000);
}

TEST(RemoteModelTest, RdmaSmallBlockKeepsScalingWithCores) {
  // §4.3: "RDMA continues to gain, especially for reads/randreads".
  const auto c1 = RunModel(Transport::kRdma, 1, 1, OpKind::kRandRead, 4096, 40000);
  const auto c4 = RunModel(Transport::kRdma, 4, 4, OpKind::kRandRead, 4096, 60000);
  const auto c16 =
      RunModel(Transport::kRdma, 16, 16, OpKind::kRandRead, 4096, 80000);
  EXPECT_GT(c4.ops_per_sec, c1.ops_per_sec * 2.5);
  EXPECT_GT(c16.ops_per_sec, c4.ops_per_sec * 1.2);
}

TEST(RemoteModelTest, RdmaLatencyBelowTcpAtSmallBlocks) {
  const auto tcp = RunModel(Transport::kTcp, 1, 1, OpKind::kRandRead, 4096);
  const auto rdma = RunModel(Transport::kRdma, 1, 1, OpKind::kRandRead, 4096);
  EXPECT_LT(rdma.latency.mean(), tcp.latency.mean());
}

class RemoteGridTest
    : public ::testing::TestWithParam<std::tuple<Transport, OpKind>> {};

TEST_P(RemoteGridTest, CoreSweepNeverDegrades) {
  // Property over Fig. 4's heatmap axes: adding cores never reduces
  // throughput (the heatmaps are monotone along both axes).
  const auto [transport, op] = GetParam();
  double prev = 0.0;
  for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = RunModel(transport, cores, cores, op, 4096, 40000);
    EXPECT_GE(r.ops_per_sec, prev * 0.98)
        << TransportName(transport) << "/" << OpKindName(op)
        << " cores=" << cores;
    prev = r.ops_per_sec;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RemoteGridTest,
    ::testing::Combine(::testing::Values(Transport::kTcp, Transport::kRdma),
                       ::testing::Values(OpKind::kRead, OpKind::kWrite,
                                         OpKind::kRandRead,
                                         OpKind::kRandWrite)));

}  // namespace
}  // namespace ros2::perf
