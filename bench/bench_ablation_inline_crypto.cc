// Ablation: DPU-resident inline encryption (ChaCha20) — the "inline
// services close to the NIC" feature offload enables (§1, §5).
//
// Two parts: (1) timed DFS model with crypto on/off across block sizes on
// the BlueField-3 deployment; (2) a functional sanity pass proving
// ciphertext-at-rest through the real stack.
#include <cstdio>
#include <string>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

bool CiphertextAtRestCheck() {
  core::Ros2Cluster cluster;
  core::TenantConfig tenant;
  tenant.name = "crypto-bench";
  tenant.auth_token = "k";
  if (!cluster.tenants()->Register(tenant).ok()) return false;
  core::ClientConfig config;
  config.platform = perf::Platform::kBlueField3;
  config.transport = net::Transport::kRdma;
  config.tenant_name = "crypto-bench";
  config.tenant_token = "k";
  config.inline_crypto = true;
  auto client = core::Ros2Client::Connect(&cluster, config);
  if (!client.ok()) return false;
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/blob", flags);
  if (!fd.ok()) return false;
  Buffer plain = MakePatternBuffer(64 * kKiB, 1);
  if (!(*client)->Pwrite(*fd, 0, plain).ok()) return false;
  Buffer roundtrip(plain.size());
  auto n = (*client)->Pread(*fd, 0, roundtrip);
  if (!n.ok() || roundtrip != plain) return false;
  Buffer at_rest(plain.size());
  if (!(*client)->dfs()->Read(*fd, 0, at_rest).ok()) return false;
  return at_rest != plain;  // stored bytes must be ciphertext
}

}  // namespace

ROS2_BENCH_EXPERIMENT(ablation_inline_crypto,
                      "Ablation: inline DPU encryption (ChaCha20, "
                      "per-tenant keys)") {
  ctx.Note("Deployment: BlueField-3 + RDMA, 4 SSDs, 8 jobs.");
  ctx.Check("ciphertext at rest through the real stack",
            CiphertextAtRestCheck());

  // Aggregate throughput barely moves (16 Arm cores push ~28 GiB/s of
  // ChaCha20, above the link ceiling); the honest cost is per-op LATENCY,
  // so both are reported — throughput at saturation, latency at low queue
  // depth where service time dominates.
  AsciiTable table({"block size", "plaintext", "inline crypto", "tput cost",
                    "p99 plain (qd2)", "p99 crypto (qd2)"});
  for (std::uint64_t bs : {std::uint64_t(4096), std::uint64_t(64) * kKiB,
                           kMiB}) {
    perf::DfsModel::Config config;
    config.platform = perf::Platform::kBlueField3;
    config.transport = net::Transport::kRdma;
    config.num_ssds = 4;
    config.num_jobs = 8;
    config.op = perf::OpKind::kRead;
    config.block_size = bs;
    perf::DfsModel plain(config);
    config.inline_crypto = true;
    perf::DfsModel crypto(config);
    const double p = plain.Run(ctx.ops(20000)).bytes_per_sec;
    const double c = crypto.Run(ctx.ops(20000)).bytes_per_sec;

    config.num_jobs = 1;
    config.iodepth = 2;
    config.inline_crypto = false;
    perf::DfsModel plain_lowq(config);
    config.inline_crypto = true;
    perf::DfsModel crypto_lowq(config);
    const double p99_plain = plain_lowq.Run(ctx.ops(5000)).latency.p99();
    const double p99_crypto = crypto_lowq.Run(ctx.ops(5000)).latency.p99();

    const double cost_pct = (1.0 - c / p) * 100.0;
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f%%", cost_pct);
    table.AddRow({FormatBytes(bs), FormatBandwidth(p), FormatBandwidth(c),
                  overhead, FormatDuration(p99_plain),
                  FormatDuration(p99_crypto)});
    const bench::Params params = {{"block_size", FormatBytes(bs)}};
    ctx.Metric("throughput_plaintext", "bytes_per_sec", p, params);
    ctx.Metric("throughput_inline_crypto", "bytes_per_sec", c, params);
    ctx.Metric("crypto_tput_cost", "percent", cost_pct, params);
    ctx.Metric("p99_plaintext_qd2", "seconds", p99_plain, params);
    ctx.Metric("p99_crypto_qd2", "seconds", p99_crypto, params);
  }
  ctx.Table("Inline ChaCha20 cost across block sizes", table);
  ctx.Note(
      "Note: models the SOFTWARE ChaCha20 path on Arm cores; the real "
      "BlueField-3 carries crypto accelerators, so these overheads are an "
      "upper bound (DESIGN.md section 1).");
}

ROS2_BENCH_MAIN()
