// Fig. 3 reproduction: local FIO benchmark with the io_uring engine,
// 1 and 4 NVMe SSDs, jobs in {1,2,4,8,16}, four POSIX workloads.
//
//   (a) 1 MiB throughput, 1 SSD     (b) 4 KiB IOPS, 1 SSD
//   (c) 1 MiB throughput, 4 SSDs    (d) 4 KiB IOPS, 4 SSDs
//
// A small functional slice runs through the real io_uring ring + NVMe
// device model with pattern verification; the reported numbers come from
// the calibrated queueing model (see DESIGN.md section 1).
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

constexpr std::uint32_t kJobSweep[] = {1, 2, 4, 8, 16};
constexpr perf::OpKind kOps[] = {perf::OpKind::kRead, perf::OpKind::kWrite,
                                 perf::OpKind::kRandRead,
                                 perf::OpKind::kRandWrite};

void RunPanel(bench::BenchContext& ctx, const char* title, const char* panel,
              std::uint32_t num_ssds, std::uint64_t block_size) {
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices;
  std::vector<storage::NvmeDevice*> raw;
  for (std::uint32_t i = 0; i < num_ssds; ++i) {
    storage::NvmeDeviceConfig config;
    config.capacity_bytes = 64 * kMiB;  // sparse; functional slice only
    devices.push_back(std::make_unique<storage::NvmeDevice>(config));
    raw.push_back(devices.back().get());
  }
  fio::LocalFio harness(raw);

  const bool iops_panel = block_size == 4096;
  std::vector<std::string> headers = {"workload"};
  for (auto jobs : kJobSweep) {
    headers.push_back("jobs=" + std::to_string(jobs));
  }
  AsciiTable table(headers);
  bool all_rows_ok = true;
  for (auto op : kOps) {
    std::vector<std::string> row = {std::string(perf::OpKindName(op))};
    for (auto jobs : kJobSweep) {
      fio::JobSpec spec;
      spec.name = "fig3";
      spec.rw = op;
      spec.block_size = block_size;
      spec.numjobs = jobs;
      spec.total_ops = ctx.ops(iops_panel ? 60000 : 20000);
      spec.verify_ops = jobs == 1 ? 32 : 0;  // one functional pass per row
      auto report = harness.Run(spec);
      if (!report.ok()) {
        row.push_back("ERR:" + report.status().ToString());
        all_rows_ok = false;
        continue;
      }
      row.push_back(iops_panel ? FormatCount(report->iops) + "IOPS"
                               : FormatBandwidth(report->bytes_per_sec));
      ctx.Metric(iops_panel ? "iops" : "throughput",
                 iops_panel ? "ops_per_sec" : "bytes_per_sec",
                 iops_panel ? report->iops : report->bytes_per_sec,
                 {{"panel", panel},
                  {"workload", std::string(perf::OpKindName(op))},
                  {"jobs", std::to_string(jobs)}});
    }
    table.AddRow(std::move(row));
  }
  ctx.Check(std::string("panel ") + panel + " jobs completed without error",
            all_rows_ok);
  ctx.Table(title, table);
}

}  // namespace

ROS2_BENCH_EXPERIMENT(fig3_local_fio,
                      "Fig. 3: Local FIO benchmark (IO_URING engine), "
                      "paper Sec. 4.2") {
  ctx.Note(
      "Expected shapes: (i) 1 MiB saturates per-device BW at 1 job (reads "
      "~5.4 GiB/s, writes ~2.7 GiB/s per SSD, ~4x with 4 SSDs); (ii) 4 KiB "
      "IOPS grow with jobs ~80K -> ~600K regardless of drive count (host "
      "software-path limit).");
  RunPanel(ctx, "(a) throughput, bs=1 MiB, 1 NVMe SSD", "a", 1, kMiB);
  RunPanel(ctx, "(b) IOPS, bs=4 KiB, 1 NVMe SSD", "b", 1, 4096);
  RunPanel(ctx, "(c) throughput, bs=1 MiB, 4 NVMe SSDs", "c", 4, kMiB);
  RunPanel(ctx, "(d) IOPS, bs=4 KiB, 4 NVMe SSDs", "d", 4, 4096);
}

ROS2_BENCH_MAIN()
