// Telemetry overhead: the same single-update/fetch storm against two
// engines that differ ONLY in EngineConfig::telemetry. The instrumented
// arm pays the full accounting bill — per-opcode sharded counters, three
// latency histogram records per request, the trace-ring push, scheduler
// op timing — and the gate demands it keeps >= 90% of the uninstrumented
// arm's throughput (the ISSUE's <= 10% overhead budget), enforced via the
// bench exit code.
//
// A primitives section prices the raw hot-path operations (relaxed
// sharded Counter::Add, per-shard-mutex Histogram::Record) in ns/op so a
// regression in the metric objects themselves is visible even when the
// end-to-end ratio hides inside run-to-run noise.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and the committed
// baseline. The overhead RATIO check is what gates.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "daos/client.h"
#include "telemetry/metrics.h"

using namespace ros2;

namespace {

/// One engine + one pumped client; returns wall seconds for the timed loop
/// (2 ops per iteration), 0.0 on any failure.
double EngineSeconds(bool telemetry, std::uint64_t iters, int rep,
                     bool* all_ok) {
  net::Fabric fabric;
  storage::NvmeDeviceConfig dev_config;
  dev_config.capacity_bytes = 256 * kMiB;
  storage::NvmeDevice device(dev_config);
  storage::NvmeDevice* raw[] = {&device};
  daos::EngineConfig config;
  config.address = "fabric://telemetry-bench-" +
                   std::to_string(int(telemetry)) + "-" + std::to_string(rep);
  config.targets = 4;
  // Every update lands a new epoch version in SCM; size for the full rep
  // (iters x 1 KiB spread over 4 targets) with headroom.
  config.scm_per_target = 64 * kMiB;
  config.xstream_workers = false;  // serial: per-op cost dominates, no
                                   // thread scheduling noise in the ratio
  config.telemetry = telemetry;
  auto engine = daos::DaosEngine::Create(&fabric, config, raw);
  if (!engine.ok()) {
    *all_ok = false;
    return 0.0;
  }
  daos::DaosClient::ConnectOptions connect;
  connect.client_address = config.address + "-client";
  auto client = daos::DaosClient::Connect(&fabric, engine->get(), connect);
  if (!client.ok()) {
    *all_ok = false;
    return 0.0;
  }
  auto cont = (*client)->ContainerCreate("bench");
  auto oid = cont.ok() ? (*client)->AllocOid(*cont)
                       : Result<daos::ObjectId>(cont.status());
  if (!oid.ok()) {
    *all_ok = false;
    return 0.0;
  }
  const Buffer value = MakePatternBuffer(1024, 9);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::string dkey = "k" + std::to_string(i % 64);
    if (!(*client)->UpdateSingle(*cont, *oid, dkey, "a", value).ok() ||
        !(*client)->FetchSingle(*cont, *oid, dkey, "a").ok()) {
      *all_ok = false;
      return 0.0;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// ns per Counter::Add / Histogram::Record on the shard-0 hot path.
template <typename Fn>
double NsPerOp(std::uint64_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         double(iters);
}

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_telemetry,
                      "Engine throughput with telemetry on vs compiled "
                      "off — the <= 10% overhead budget, gated") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Single-update + single-fetch storm (1 KiB values, serial engine, "
      "pumped client) against two engines differing only in "
      "EngineConfig::telemetry. Each measurement is a back-to-back "
      "off/on PAIR (both arms see the same ambient conditions) and the "
      "gated ratio is the MEDIAN over all pairs, so an ambient spike "
      "that lands on one pair cannot swing the verdict. Rates are "
      "realtime counters — the gate is the RATIO: instrumented >= 0.90 "
      "x uninstrumented.");

  // Median-of-paired-ratios: a sum (or best-of) across arms leaves the
  // verdict hostage to whichever arm caught the machine's bad moment; a
  // pair runs within ~100 ms, so its ratio cancels ambient load, and the
  // median ignores the pairs a spike still managed to split.
  const int pairs = ctx.quick() ? 7 : 9;
  const std::uint64_t iters = ctx.quick() ? 10000 : 30000;
  constexpr double kGate = 0.90;

  bool all_ok = true;
  double seconds_on = 0.0;
  double seconds_off = 0.0;
  std::vector<double> ratios;
  auto run_pairs = [&](int count, int base) {
    for (int pair = 0; pair < count; ++pair) {
      const double off = EngineSeconds(false, iters, base + pair, &all_ok);
      const double on = EngineSeconds(true, iters, base + pair, &all_ok);
      seconds_off += off;
      seconds_on += on;
      ratios.push_back(on > 0.0 ? off / on : 0.0);  // rate_on / rate_off
    }
  };
  auto median = [&ratios] {
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    return sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  };
  run_pairs(pairs, 0);
  double ratio = median();
  if (all_ok && ratio < kGate) {
    // A sub-gate first median on a ~6%-overhead change is usually ambient
    // noise that landed asymmetrically; one re-measure (gating the median
    // of ALL pairs) separates a real regression from a bad minute.
    ctx.Note("first-round overhead median below gate; re-measuring");
    run_pairs(pairs, pairs);
    ratio = median();
  }
  const double total_ops = 2.0 * double(iters) * double(ratios.size());
  const double rate_off = seconds_off > 0.0 ? total_ops / seconds_off : 0.0;
  const double rate_on = seconds_on > 0.0 ? total_ops / seconds_on : 0.0;

  AsciiTable table({"arm", "ops/s", "vs uninstrumented"});
  table.AddRow({"telemetry off", FormatCount(rate_off) + "ops/s", "1.00"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ratio);
  table.AddRow({"telemetry on", FormatCount(rate_on) + "ops/s", buf});
  ctx.Table("Engine ops/s, telemetry on vs off (wall clock)", table);

  ctx.Metric("telemetry_off_ops_per_sec", "ops_per_sec", rate_off, {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("telemetry_on_ops_per_sec", "ops_per_sec", rate_on, {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("telemetry_overhead_ratio", "ratio", ratio, {},
             bench::MetricDirection::kHigherIsBetter);

  ctx.Check("every benchmark op succeeded", all_ok);
  ctx.Check("instrumented engine keeps >= 90% of uninstrumented ops/s",
            ratio >= kGate);

  // Primitive costs: what one metric update actually costs, isolated.
  const std::uint64_t prim_iters = ctx.quick() ? 2000000 : 20000000;
  telemetry::Counter counter(5);
  const double counter_ns =
      NsPerOp(prim_iters, [&](std::uint64_t i) { counter.Add(1, i & 3); });
  telemetry::Histogram hist(5);
  const double hist_ns = NsPerOp(prim_iters / 8, [&](std::uint64_t i) {
    hist.Record(double(1 + (i & 1023)) * kUsec, i & 3);
  });
  AsciiTable prim({"primitive", "ns/op"});
  std::snprintf(buf, sizeof(buf), "%.1f", counter_ns);
  prim.AddRow({"Counter::Add (sharded, relaxed)", buf});
  std::snprintf(buf, sizeof(buf), "%.1f", hist_ns);
  prim.AddRow({"Histogram::Record (per-shard mutex)", buf});
  ctx.Table("Metric primitive cost", prim);
  ctx.Metric("counter_add_ns", "ns_per_op", counter_ns, {},
             bench::MetricDirection::kLowerIsBetter);
  ctx.Metric("histogram_record_ns", "ns_per_op", hist_ns, {},
             bench::MetricDirection::kLowerIsBetter);
  ctx.Check("counter add stays under 1us", counter_ns < 1000.0);
}

ROS2_BENCH_MAIN()
