// Ablation: end-to-end checksums (DAOS computes/verifies CRC-32C on every
// extent, §2.4). Cost across block sizes, plus a functional proof that the
// checksum path catches device corruption.
#include <cstdio>
#include <string>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "daos/vos.h"
#include "perf/dfs_model.h"

using namespace ros2;

namespace {

bool CorruptionCaughtCheck() {
  storage::NvmeDeviceConfig dev_config;
  dev_config.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice device(dev_config);
  spdk::Bdev bdev(&device);
  scm::PmemPool scm(8 * kMiB);
  daos::Vos vos(&scm, &bdev);
  const daos::ObjectId oid{1, 1};
  Buffer data = MakePatternBuffer(256 * kKiB, 1);
  if (!vos.UpdateArray(oid, "d", "a", 1, 0, data).ok()) return false;
  // Corrupt the device behind the engine's back.
  spdk::Bdev evil(&device);
  Buffer junk = MakePatternBuffer(4096, 0xBAD);
  if (!evil.Write(0, junk).ok()) return false;
  Buffer out(data.size());
  return vos.FetchArray(oid, "d", "a", daos::kEpochHead, 0, out).code() ==
         ErrorCode::kDataLoss;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(ablation_checksum,
                      "Ablation: end-to-end CRC-32C checksums") {
  ctx.Check("corruption detection surfaces DATA_LOSS",
            CorruptionCaughtCheck());
  ctx.Note("Timed: host RDMA deployment, 4 SSDs, 16 jobs, random reads.");
  AsciiTable table(
      {"block size", "checksums on", "checksums off", "overhead"});
  for (std::uint64_t bs :
       {std::uint64_t(4096), std::uint64_t(64) * kKiB, kMiB}) {
    perf::DfsModel::Config config;
    config.platform = perf::Platform::kServerHost;
    config.transport = perf::Transport::kRdma;
    config.num_ssds = 4;
    config.num_jobs = 16;
    config.op = perf::OpKind::kRandRead;
    config.block_size = bs;
    config.checksums = true;
    perf::DfsModel on(config);
    config.checksums = false;
    perf::DfsModel off(config);
    const double with_crc = on.Run(ctx.ops(30000)).bytes_per_sec;
    const double without = off.Run(ctx.ops(30000)).bytes_per_sec;
    const double overhead_pct = (1.0 - with_crc / without) * 100.0;
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f%%", overhead_pct);
    table.AddRow({FormatBytes(bs), FormatBandwidth(with_crc),
                  FormatBandwidth(without), overhead});
    const bench::Params params = {{"block_size", FormatBytes(bs)}};
    ctx.Metric("throughput_checksums_on", "bytes_per_sec", with_crc, params);
    ctx.Metric("throughput_checksums_off", "bytes_per_sec", without, params);
    ctx.Metric("checksum_overhead", "percent", overhead_pct, params);
  }
  ctx.Table("Checksum cost across block sizes", table);
  ctx.Note(
      "Checksums ride the engine targets' per-byte budget; at DAOS's "
      "defaults the tax is small next to transport costs - which is why "
      "the paper leaves them on.");
}

ROS2_BENCH_MAIN()
