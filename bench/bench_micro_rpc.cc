// Wall-clock throughput of the RPC data path itself: calls per real
// second (4 KiB send + 4 KiB recv windows, registration-dominated) and
// bulk GiB per real second (1 MiB fetch-shaped windows,
// data-movement-dominated) over both transports — with the RDMA path
// measured both POOLED (MrCache leases, the production default) and
// UNPOOLED (per-call ad-hoc registration, what RpcClient::Call did before
// the pool). Registration genuinely pins pages (mlock), so the pooled win
// here is the honest cost the MR cache amortizes, not bookkeeping noise.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and out of the
// default `benchctl diff`; the metrics ride the BENCH JSON aggregate as
// direction-hinted counters (higher is better). The pooled>=2x-unpooled
// ratio check IS gated (bench exit code), because the ratio — unlike the
// absolute rates — is machine-independent.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "net/fabric.h"
#include "net/mr_cache.h"
#include "rpc/data_rpc.h"

using namespace ros2;

namespace {

constexpr std::span<const std::byte> kNoHeader{};

struct RpcHarness {
  net::Fabric fabric;
  net::Endpoint* client_ep = nullptr;
  net::Qp* qp = nullptr;
  rpc::RpcServer server;
  std::unique_ptr<rpc::RpcClient> client;

  RpcHarness(net::Transport transport, bool pooled) {
    auto server_ep = *fabric.CreateEndpoint("fabric://server");
    client_ep = *fabric.CreateEndpoint("fabric://client");
    qp = *client_ep->Connect(server_ep, transport, client_ep->AllocPd(),
                             server_ep->AllocPd());
    client = std::make_unique<rpc::RpcClient>(
        qp, client_ep, [this] { (void)server.Progress(qp->peer()); });
    client->set_mr_pooling(pooled);
    // Fetch/update-shaped echo: pull whatever the client sent, fill
    // whatever window it exposed.
    server.Register(1, [](const Buffer&, rpc::BulkIo& bulk)
                           -> Result<Buffer> {
      if (bulk.in_size() > 0) {
        Buffer data(bulk.in_size());
        ROS2_RETURN_IF_ERROR(bulk.Pull(data));
      }
      if (bulk.out_capacity() > 0) {
        Buffer reply(bulk.out_capacity(), std::byte(0x5A));
        ROS2_RETURN_IF_ERROR(bulk.Push(reply));
      }
      return Buffer{};
    });
  }
};

struct Workload {
  const char* mr;  // "pooled" | "unpooled" | "inline" (TCP has no MRs)
  net::Transport transport;
  bool pooled;
};

constexpr Workload kWorkloads[] = {
    {"pooled", net::Transport::kRdma, true},
    {"unpooled", net::Transport::kRdma, false},
    {"inline", net::Transport::kTcp, true},
};

/// Best-of-N calls-per-second with `send` + `recv` bulk windows of
/// `bulk_size` bytes each. Fresh harness per repetition (the best run is
/// the least-preempted one); `*all_ok` accumulates call success.
double BestCallRate(const Workload& w, std::uint64_t bulk_size,
                    std::uint64_t calls, int repetitions, bool* all_ok,
                    std::uint64_t* pool_hits) {
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    RpcHarness h(w.transport, w.pooled);
    Buffer payload = MakePatternBuffer(bulk_size, 1);
    Buffer window(bulk_size);
    rpc::CallOptions options;
    options.send_bulk = payload;
    options.recv_bulk = window;
    *all_ok = *all_ok && h.client->Call(1, kNoHeader, options).ok();  // warm
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < calls; ++i) {
      *all_ok = *all_ok && h.client->Call(1, kNoHeader, options).ok();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds > 0.0) best = std::max(best, double(calls) / seconds);
    *pool_hits = h.client_ep->mr_cache().hits();
  }
  return best;
}

/// Best-of-N bulk bandwidth: fetch-shaped calls filling a `bulk_size`
/// recv window.
double BestBulkRate(const Workload& w, std::uint64_t bulk_size,
                    std::uint64_t calls, int repetitions, bool* all_ok) {
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    RpcHarness h(w.transport, w.pooled);
    Buffer window(bulk_size);
    rpc::CallOptions options;
    options.recv_bulk = window;
    *all_ok = *all_ok && h.client->Call(1, kNoHeader, options).ok();  // warm
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < calls; ++i) {
      *all_ok = *all_ok && h.client->Call(1, kNoHeader, options).ok();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds > 0.0) {
      best = std::max(best, double(calls * bulk_size) / seconds);
    }
  }
  return best;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_rpc_data_path,
                      "RPC data-path wall-clock throughput: pooled vs "
                      "unpooled MR registration over TCP and RDMA") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Calls/s uses 4 KiB send + 4 KiB recv bulk windows (the "
      "registration-dominated regime the MrCache targets); bulk GiB/s "
      "uses 1 MiB fetch-shaped recv windows (data-movement-dominated). "
      "Fresh harness per repetition, best of N. Rates are realtime "
      "counters — compare trajectories per machine, not across machines; "
      "the pooled/unpooled RATIO is machine-independent and gated.");

  // Own scaling (not ctx.ops): its 2000-op floor exists for sim
  // steady-state, but 2000 one-MiB TCP calls per repetition would melt the
  // quick-mode wall clock. Rates stabilize far earlier here.
  const int repetitions = ctx.quick() ? 3 : 9;
  const std::uint64_t call_ops = ctx.quick() ? 2000 : 24000;
  const std::uint64_t bulk_ops = ctx.quick() ? 200 : 2000;
  constexpr std::uint64_t kSmall = 4 * 1024;
  constexpr std::uint64_t kLarge = kMiB;

  AsciiTable table({"transport", "mr", "calls/s (4 KiB)", "bulk (1 MiB)"});
  bool all_ok = true;
  double pooled_rdma_rate = 0.0;
  double unpooled_rdma_rate = 0.0;
  std::uint64_t pooled_hits = 0;
  for (const Workload& w : kWorkloads) {
    std::uint64_t hits = 0;
    const double call_rate =
        BestCallRate(w, kSmall, call_ops, repetitions, &all_ok, &hits);
    const double bulk_rate =
        BestBulkRate(w, kLarge, bulk_ops, repetitions, &all_ok);
    if (w.transport == net::Transport::kRdma) {
      (w.pooled ? pooled_rdma_rate : unpooled_rdma_rate) = call_rate;
      if (w.pooled) pooled_hits = hits;
    }
    const std::string transport(perf::TransportName(w.transport));
    table.AddRow({transport, w.mr, FormatCount(call_rate) + "calls/s",
                  FormatBandwidth(bulk_rate)});
    ctx.Metric("rpc_calls_per_sec", "calls_per_sec", call_rate,
               {{"transport", transport}, {"mr", w.mr}},
               bench::MetricDirection::kHigherIsBetter);
    ctx.Metric("rpc_bulk_bytes_per_sec", "bytes_per_sec", bulk_rate,
               {{"transport", transport}, {"mr", w.mr}},
               bench::MetricDirection::kHigherIsBetter);
  }
  ctx.Check("every timed call succeeded", all_ok);
  ctx.Check("pooled RDMA converges to cache hits (2 per call)",
            pooled_hits >= 2 * call_ops);
  // The point of the pool: amortizing page-pin registration must be worth
  // >= 2x on registration-dominated calls. The ratio is machine-portable
  // even though the absolute rates are not.
  ctx.Check("pooled-MR RDMA calls/s >= 2x unpooled",
            pooled_rdma_rate >= 2.0 * unpooled_rdma_rate);
  ctx.Metric("rpc_pooled_speedup", "ratio",
             unpooled_rdma_rate > 0.0
                 ? pooled_rdma_rate / unpooled_rdma_rate
                 : 0.0,
             {{"transport", "rdma"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Table("RPC data-path throughput (wall clock)", table);
}

ROS2_BENCH_MAIN()
