// Kill-an-engine-mid-workload scenario: three threaded engines behind a
// shared pool map, a writer hammering replicated updates, and a
// FaultPlan (kEngineKill) that downs one engine after a set number of
// writes. The bench then measures what the redundancy layer promises:
//
//   - zero failed reads across the whole run (fetch fails over to the
//     surviving replica; replicas=2 over 3 engines keeps every dkey
//     covered),
//   - every degraded write succeeds on the survivors (the miss lands in
//     the resync journal instead of failing the call),
//   - degraded read throughput stays >= 50% of the healthy baseline
//     (failover costs one extra attempt for dkeys whose primary died),
//   - the background rebuild re-silvers the victim while the writer is
//     still running, the journal quiesces, and afterwards the victim
//     ALONE serves byte-exact data.
//
// The whole report is realtime-tagged: wall-clock rates and the rebuild
// duration churn by machine, so benchctl keeps this section out of
// EXPERIMENTS.md and the committed baseline. The functional gates above
// ARE enforced through the bench exit code — this is the CI scenario
// gate for the self-healing path.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/fault.h"
#include "common/table.h"
#include "common/units.h"
#include "daos/client.h"
#include "daos/engine.h"
#include "daos/placement.h"
#include "daos/pool_map.h"
#include "daos/rebuild.h"
#include "net/fabric.h"
#include "storage/nvme_device.h"

using namespace ros2;

namespace {

constexpr std::uint32_t kEngines = 3;
constexpr std::uint32_t kReplicas = 2;
constexpr std::uint32_t kVictim = 1;
constexpr std::size_t kValueSize = 1024;

/// Timed closed-loop fetch sweep over the seeded dkeys; returns reads/s
/// and counts failures (the zero-failed-reads gate).
double ReadRate(daos::DaosClient* client, std::uint64_t cont,
                const daos::ObjectId& oid, int seeded, std::uint64_t ops,
                std::uint64_t* failed) {
  Buffer out(kValueSize);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::string dkey = "seed" + std::to_string(i % std::uint64_t(seeded));
    if (!client->Fetch(cont, oid, dkey, "a", 0, out).ok()) ++*failed;
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return seconds > 0.0 ? double(ops) / seconds : 0.0;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_rebuild,
                      "Self-healing scenario: fault-injected engine kill "
                      "mid-workload, degraded service, background rebuild") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Three threaded engines (4 targets each, progress threads serving "
      "pumpless clients), replicas=2 over a shared pool map. A FaultPlan "
      "kEngineKill point downs engine " +
      std::to_string(kVictim) +
      " after a fixed write budget; the writer keeps running through the "
      "kill, the degraded window, and the rebuild. Rates are realtime "
      "counters — compare trajectories per machine, not across machines. "
      "The functional gates (zero failed reads, degraded writes succeed, "
      "degraded reads >= 50% of healthy, rebuilt engine serves byte-exact "
      "data alone) are enforced via the bench exit code.");

  const int seeded = ctx.quick() ? 24 : 96;
  const std::uint64_t read_ops = ctx.quick() ? 600 : 6000;
  const std::uint64_t kill_after = ctx.quick() ? 16 : 64;

  net::Fabric fabric;
  std::vector<std::unique_ptr<storage::NvmeDevice>> devices;
  std::vector<std::unique_ptr<daos::DaosEngine>> engines;
  std::vector<daos::DaosEngine*> raw_engines;
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 256 * kMiB;
    devices.push_back(std::make_unique<storage::NvmeDevice>(dev));
    storage::NvmeDevice* raw[] = {devices.back().get()};
    daos::EngineConfig config;
    config.address = "fabric://rebuild-bench-engine-" + std::to_string(e);
    config.targets = 4;
    config.scm_per_target = 16 * kMiB;
    config.xstream_workers = true;
    auto engine = daos::DaosEngine::Create(&fabric, config, raw);
    ctx.Check("engine " + std::to_string(e) + " booted", engine.ok());
    if (!engine.ok()) return;
    engines.push_back(std::move(*engine));
    engines.back()->StartProgressThread();
    raw_engines.push_back(engines.back().get());
  }
  daos::PoolMap map(kEngines);

  // All clients dial in while the pool is healthy (PoolConnect is
  // metadata — it refuses a degraded pool by design). Pumpless: the
  // engines' progress threads serialize every reply.
  auto new_client = [&](const std::string& name)
      -> std::unique_ptr<daos::DaosClient> {
    daos::DaosClient::ConnectOptions options;
    options.client_address = "fabric://rebuild-bench-" + name;
    options.replicas = kReplicas;
    options.pool_map = &map;
    options.progress_pump = false;
    auto client = daos::DaosClient::Connect(&fabric, raw_engines, options);
    ctx.Check("client '" + name + "' connected", client.ok());
    return client.ok() ? std::move(*client) : nullptr;
  };
  auto setup = new_client("setup");
  auto writer_client = new_client("writer");
  auto reader_client = new_client("reader");
  auto verify = new_client("verify");
  if (!setup || !writer_client || !reader_client || !verify) return;

  auto cont = setup->ContainerCreate("rebuild-bench");
  auto oid = cont.ok() ? setup->AllocOid(*cont)
                       : Result<daos::ObjectId>(cont.status());
  ctx.Check("container + oid allocated", cont.ok() && oid.ok());
  if (!cont.ok() || !oid.ok()) return;

  std::map<std::string, std::uint64_t> last_seed;
  bool seed_ok = true;
  for (int i = 0; i < seeded; ++i) {
    const std::string dkey = "seed" + std::to_string(i);
    const std::uint64_t seed = std::uint64_t(i) + 1;
    seed_ok = seed_ok &&
              setup
                  ->Update(*cont, *oid, dkey, "a", 0,
                           MakePatternBuffer(kValueSize, seed))
                  .ok();
    last_seed[dkey] = seed;
  }
  ctx.Check("seed writes succeeded", seed_ok);

  // The writer runs from here to the end of the rebuild, consulting the
  // kEngineKill point on every write. It starts disarmed so the healthy
  // baseline below measures reads against identical concurrent write
  // pressure; arming it later is the kill switch — the plan fires once
  // and the writer downs the victim in the shared map mid-workload, not
  // at a quiesce point.
  common::FaultPlan plan;
  std::atomic<bool> stop{false};
  std::atomic<bool> killed{false};
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> degraded_writes{0};
  constexpr int kHot = 16;
  std::uint64_t final_round = 0;
  std::thread writer([&] {
    daos::DaosClient* client = writer_client.get();
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++round;
      for (int i = 0; i < kHot; ++i) {
        const std::string dkey = "hot" + std::to_string(i);
        if (!client
                 ->Update(*cont, *oid, dkey, "a", 0,
                          MakePatternBuffer(kValueSize,
                                            round * 1000 + std::uint64_t(i)))
                 .ok()) {
          write_failures.fetch_add(1, std::memory_order_relaxed);
        } else if (killed.load(std::memory_order_acquire)) {
          degraded_writes.fetch_add(1, std::memory_order_relaxed);
        }
        if (plan.Evaluate(common::FaultPoint::kEngineKill).fire) {
          (void)map.SetState(kVictim, daos::EngineState::kDown);
          killed.store(true, std::memory_order_release);
        }
      }
    }
    final_round = round;
  });

  // Healthy baseline: closed-loop reads against the running writer, no
  // failures tolerated.
  std::uint64_t healthy_failed = 0;
  const double healthy_rate = ReadRate(reader_client.get(), *cont, *oid,
                                       seeded, read_ops, &healthy_failed);

  // Inject the failure: skip a few more writes, then one fire.
  common::FaultSpec kill;
  kill.skip = kill_after;
  kill.count = 1;
  plan.Arm(common::FaultPoint::kEngineKill, kill);

  // Degraded window: wait for the injected kill, then re-measure read
  // throughput through failover while the writer keeps degrading.
  while (!killed.load(std::memory_order_acquire) &&
         write_failures.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  std::uint64_t degraded_failed = 0;
  const double degraded_rate = ReadRate(reader_client.get(), *cont, *oid,
                                        seeded, read_ops, &degraded_failed);

  // Background rebuild, concurrent with the writer.
  daos::RebuildManager::Options ropts;
  ropts.address = "fabric://rebuild-bench-mgr";
  ropts.replicas = kReplicas;
  ropts.progress_pump = false;
  auto mgr = daos::RebuildManager::Create(&fabric, raw_engines, &map, ropts);
  ctx.Check("rebuild manager connected", mgr.ok());
  if (!mgr.ok()) {
    stop.store(true, std::memory_order_release);
    writer.join();
    return;
  }
  // The rebuild overlaps live writes through its scan + re-silver
  // phase; once it is under way the writer quiesces so the
  // journal-drain loop can terminate (a sustained hot-key writer can
  // starve the quiesce check forever — every write landing on the
  // REBUILDING engine re-journals post-completion by the two-mark
  // rule, so each drain pass finds the hot dkeys again).
  Status rebuilt;
  double rebuild_seconds = 0.0;
  std::atomic<bool> rebuild_done{false};
  std::thread rebuilder([&] {
    const auto rebuild_start = std::chrono::steady_clock::now();
    rebuilt = (*mgr)->Rebuild(kVictim);
    rebuild_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      rebuild_start)
            .count();
    rebuild_done.store(true, std::memory_order_release);
  });
  const std::uint64_t mark = degraded_writes.load(std::memory_order_relaxed);
  while (!rebuild_done.load(std::memory_order_acquire) &&
         write_failures.load(std::memory_order_relaxed) == 0 &&
         (map.state(kVictim) == daos::EngineState::kDown ||
          degraded_writes.load(std::memory_order_relaxed) < mark + 32)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  rebuilder.join();
  for (int i = 0; i < kHot; ++i) {
    last_seed["hot" + std::to_string(i)] =
        final_round * 1000 + std::uint64_t(i);
  }
  const Status resynced = (*mgr)->Resync(kVictim);

  // The functional gates.
  ctx.Check("engine kill fault fired exactly once",
            plan.fired(common::FaultPoint::kEngineKill) == 1);
  ctx.Check("zero failed reads (healthy + degraded windows)",
            healthy_failed == 0 && degraded_failed == 0);
  ctx.Check("every write through the kill + rebuild succeeded",
            write_failures.load() == 0);
  ctx.Check("writes degraded into the journal while the victim was down",
            degraded_writes.load() > 0);
  ctx.Check("rebuild completed and victim returned UP",
            rebuilt.ok() && map.state(kVictim) == daos::EngineState::kUp);
  ctx.Check("straggler resync drained the journal",
            resynced.ok() && map.journal().depth(kVictim) == 0);
  ctx.Check("rebuild re-silvered data (scan + journal observable)",
            (*mgr)->dkeys_scanned(kVictim) > 0 &&
                (*mgr)->bytes_copied(kVictim) > 0);
  ctx.Check("degraded reads/s >= 50% of healthy baseline",
            degraded_rate >= 0.5 * healthy_rate);

  // Byte-exactness: with both survivors down, the rebuilt victim alone
  // must serve every dkey whose replica ring contains it.
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    if (e != kVictim) (void)map.SetState(e, daos::EngineState::kDown);
  }
  bool exact = true;
  std::uint64_t owed_dkeys = 0;
  for (const auto& [dkey, seed] : last_seed) {
    const std::uint32_t primary = daos::PlaceEngine(*oid, dkey, kEngines);
    bool owed = false;
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      if ((primary + r) % kEngines == kVictim) owed = true;
    }
    if (!owed) continue;
    ++owed_dkeys;
    Buffer out(kValueSize);
    exact = exact &&
            verify->Fetch(*cont, *oid, dkey, "a", 0, out).ok() &&
            out == MakePatternBuffer(kValueSize, seed);
  }
  ctx.Check("rebuilt engine alone serves byte-exact data",
            exact && owed_dkeys > 0);
  for (std::uint32_t e = 0; e < kEngines; ++e) {
    if (e != kVictim) (void)map.SetState(e, daos::EngineState::kUp);
  }

  AsciiTable table({"window", "reads/s", "failed"});
  table.AddRow({"healthy", FormatCount(healthy_rate) + "reads/s",
                std::to_string(healthy_failed)});
  table.AddRow({"degraded", FormatCount(degraded_rate) + "reads/s",
                std::to_string(degraded_failed)});
  ctx.Table("Read throughput through the failure (wall clock)", table);
  ctx.Metric("rebuild_healthy_reads_per_sec", "reads_per_sec", healthy_rate,
             {}, bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("rebuild_degraded_reads_per_sec", "reads_per_sec", degraded_rate,
             {}, bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("rebuild_degraded_read_ratio", "ratio",
             healthy_rate > 0.0 ? degraded_rate / healthy_rate : 0.0, {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("rebuild_seconds", "seconds", rebuild_seconds, {},
             bench::MetricDirection::kLowerIsBetter);
  ctx.Metric("rebuild_dkeys_scanned", "count",
             double((*mgr)->dkeys_scanned(kVictim)), {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("rebuild_bytes_copied", "bytes",
             double((*mgr)->bytes_copied(kVictim)), {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("rebuild_journal_replayed", "count",
             double((*mgr)->journal_replayed(kVictim)), {},
             bench::MetricDirection::kHigherIsBetter);
}

ROS2_BENCH_MAIN()
