// Wall-clock throughput of the ASYNC request pipeline: small-RPC calls
// per real second as a function of client queue depth (1 -> 64), over the
// deferred-reply server path (decode -> park on a run queue -> complete
// from the progress loop) driven through a net::PollSet.
//
// What makes depth > 1 honestly faster: every progress wakeup pays the
// real event-channel cost — the first send into an idle poll set rings a
// doorbell (one byte through a self-pipe) and the drain poll()s + read()s
// it back, three genuine syscalls per wakeup (see net::PollSet). A
// depth-1 client wakes the server once per call; a depth-64 client wakes
// it once per 64 calls. That is the paper's pipelining argument (§3.3)
// with the same make-the-stand-in-pay-the-real-cost philosophy as
// bench_micro_rpc's mlock-backed registration.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and the committed
// baseline. The pipelined(depth >= 8) >= 2x depth-1 ratio check IS gated
// (bench exit code): the ratio — unlike the absolute rates — is
// machine-independent.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"

using namespace ros2;

namespace {

/// Deferred-echo server harness: requests park on a queue at dispatch and
/// complete from the progress hook — the engine-xstream shape without the
/// VOS cost, so the bench isolates the pipeline itself.
struct PipelineHarness {
  net::Fabric fabric;
  net::Endpoint* client_ep = nullptr;
  net::Qp* qp = nullptr;
  net::PollSet poll_set;
  rpc::RpcServer server;
  std::vector<rpc::RpcContextPtr> parked;
  std::unique_ptr<rpc::RpcClient> client;

  explicit PipelineHarness(net::Transport transport) {
    auto server_ep = *fabric.CreateEndpoint("fabric://server");
    client_ep = *fabric.CreateEndpoint("fabric://client");
    server_ep->set_accept_poll_set(&poll_set);
    qp = *client_ep->Connect(server_ep, transport, client_ep->AllocPd(),
                             server_ep->AllocPd());
    server.RegisterAsync(1, [this](rpc::RpcContextPtr ctx) {
      parked.push_back(std::move(ctx));
      return rpc::HandlerVerdict::kDeferred;
    });
    client = std::make_unique<rpc::RpcClient>(qp, client_ep, [this] {
      // One progress wakeup: poll-set drain (decode + dispatch every
      // queued request on every ready QP), then the run-queue drain
      // completing deferred contexts.
      (void)server.Progress(&poll_set);
      for (auto& ctx : parked) {
        (void)ctx->Complete(Buffer{});  // small-RPC ack (update-shaped)
      }
      parked.clear();
    });
  }
};

/// Best-of-N calls/s at `depth` outstanding calls: the client issues
/// through CallAsync with max_in_flight = depth (backpressure pumps the
/// server exactly when the window fills) and retires completions as they
/// arrive, keeping client-side state bounded.
double BestPipelinedRate(net::Transport transport, std::uint32_t depth,
                         std::uint64_t calls, int repetitions,
                         bool* all_ok, double* wakeups_per_call) {
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    PipelineHarness h(transport);
    h.client->set_max_in_flight(depth);
    Buffer header = MakePatternBuffer(16, 0x11);
    // Warm one full window so steady state starts immediately.
    for (std::uint32_t i = 0; i < depth; ++i) {
      *all_ok = *all_ok && h.client->CallAsync(1, header).ok();
    }
    *all_ok = *all_ok && h.client->Flush().ok();

    const std::uint64_t drains_before = h.poll_set.drains();
    std::deque<rpc::RpcClient::CallId> outstanding;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < calls; ++i) {
      auto id = h.client->CallAsync(1, header);
      if (!id.ok()) {
        *all_ok = false;
        break;
      }
      outstanding.push_back(*id);
      while (!outstanding.empty() && h.client->Done(outstanding.front())) {
        *all_ok =
            *all_ok && h.client->Take(outstanding.front()).ok();
        outstanding.pop_front();
      }
    }
    *all_ok = *all_ok && h.client->Flush().ok();
    while (!outstanding.empty()) {
      *all_ok = *all_ok && h.client->Take(outstanding.front()).ok();
      outstanding.pop_front();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds > 0.0) best = std::max(best, double(calls) / seconds);
    if (calls > 0) {
      *wakeups_per_call =
          double(h.poll_set.drains() - drains_before) / double(calls);
    }
  }
  return best;
}

constexpr std::uint32_t kDepths[] = {1, 2, 4, 8, 16, 32, 64};

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_pipeline,
                      "Async RPC pipeline wall-clock throughput vs queue "
                      "depth (deferred-reply server via poll set)") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Small-RPC echo (16 B header, no bulk) through the deferred-reply "
      "path: decode -> park on run queue -> complete from the progress "
      "wakeup. Each wakeup costs a real doorbell write + poll + read on "
      "the poll set's event channel, so depth d amortizes the wakeup "
      "over d calls. Rates are realtime counters — compare trajectories "
      "per machine, not across machines; the depth>=8 / depth-1 RATIO is "
      "machine-independent and gated.");

  const int repetitions = ctx.quick() ? 3 : 7;
  const std::uint64_t calls = ctx.quick() ? 4000 : 40000;

  AsciiTable table({"depth", "rdma calls/s", "tcp calls/s",
                    "rdma wakeups/call"});
  bool all_ok = true;
  double depth1_rdma = 0.0;
  double best_pipelined_rdma = 0.0;
  for (std::uint32_t depth : kDepths) {
    double rdma_wakeups = 0.0;
    double tcp_wakeups = 0.0;
    const double rdma_rate =
        BestPipelinedRate(net::Transport::kRdma, depth, calls, repetitions,
                          &all_ok, &rdma_wakeups);
    const double tcp_rate =
        BestPipelinedRate(net::Transport::kTcp, depth, calls, repetitions,
                          &all_ok, &tcp_wakeups);
    if (depth == 1) depth1_rdma = rdma_rate;
    if (depth >= 8) {
      best_pipelined_rdma = std::max(best_pipelined_rdma, rdma_rate);
    }
    char wakeups_str[32];
    std::snprintf(wakeups_str, sizeof(wakeups_str), "%.3f", rdma_wakeups);
    table.AddRow({std::to_string(depth),
                  FormatCount(rdma_rate) + "calls/s",
                  FormatCount(tcp_rate) + "calls/s", wakeups_str});
    const std::string depth_str = std::to_string(depth);
    ctx.Metric("pipeline_calls_per_sec", "calls_per_sec", rdma_rate,
               {{"transport", "rdma"}, {"depth", depth_str}},
               bench::MetricDirection::kHigherIsBetter);
    ctx.Metric("pipeline_calls_per_sec", "calls_per_sec", tcp_rate,
               {{"transport", "tcp"}, {"depth", depth_str}},
               bench::MetricDirection::kHigherIsBetter);
    ctx.Metric("pipeline_wakeups_per_call", "wakeups", rdma_wakeups,
               {{"transport", "rdma"}, {"depth", depth_str}},
               bench::MetricDirection::kLowerIsBetter);
  }
  ctx.Check("every pipelined call succeeded", all_ok);
  // The point of the async pipeline: amortizing the per-wakeup progress
  // cost must be worth >= 2x on small RPCs once >= 8 calls share a
  // wakeup. The ratio is machine-portable; the absolute rates are not.
  ctx.Check("pipelined (depth >= 8) RDMA calls/s >= 2x depth-1",
            best_pipelined_rdma >= 2.0 * depth1_rdma);
  ctx.Metric("pipeline_speedup", "ratio",
             depth1_rdma > 0.0 ? best_pipelined_rdma / depth1_rdma : 0.0,
             {{"transport", "rdma"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Table("Async pipeline throughput vs queue depth (wall clock)",
            table);
}

ROS2_BENCH_MAIN()
