// Fig. 1 reproduction: the LLM-pipeline storage-requirement taxonomy,
// exercised as workloads. Fig. 1 itself is a requirements diagram; this
// bench runs each stage's representative FIO template through the DFS
// model (host RDMA deployment) and reports the measured profile next to
// the paper's stated requirement.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "fio/llm_workloads.h"
#include "perf/dfs_model.h"

using namespace ros2;

int main() {
  std::printf(
      "== Fig. 1: storage requirements across the LLM pipeline ==\n"
      "Each stage's template runs on the DFS model (host CPU, RDMA, 4\n"
      "SSDs); the measured profile should match the stated requirement.\n\n");
  AsciiTable table({"stage", "paper requirement", "workload", "throughput",
                    "IOPS", "p99 latency"});
  for (const auto& stage : fio::AllLlmStages()) {
    perf::DfsModel::Config config;
    config.platform = perf::Platform::kServerHost;
    config.transport = net::Transport::kRdma;
    config.num_ssds = 4;
    config.num_jobs = stage.job.numjobs;
    config.iodepth = stage.job.iodepth;
    config.op = stage.job.rw;
    config.block_size = stage.job.block_size;
    perf::DfsModel model(config);
    const auto result = model.Run(30000);
    const std::string workload =
        std::string(perf::OpKindName(stage.job.rw)) + " " +
        FormatBytes(stage.job.block_size) + " x" +
        std::to_string(stage.job.numjobs) + "j";
    table.AddRow({stage.name, stage.requirement, workload,
                  FormatBandwidth(result.bytes_per_sec),
                  FormatCount(result.ops_per_sec),
                  FormatDuration(result.latency.p99())});
  }
  table.Print();
  return 0;
}
