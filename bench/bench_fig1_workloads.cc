// Fig. 1 reproduction: the LLM-pipeline storage-requirement taxonomy,
// exercised as workloads. Fig. 1 itself is a requirements diagram; this
// bench runs each stage's representative FIO template through the DFS
// model (host RDMA deployment) and reports the measured profile next to
// the paper's stated requirement.
#include <string>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/llm_workloads.h"
#include "perf/dfs_model.h"

using namespace ros2;

ROS2_BENCH_EXPERIMENT(fig1_workloads,
                      "Fig. 1: storage requirements across the LLM pipeline") {
  ctx.Note(
      "Each stage's template runs on the DFS model (host CPU, RDMA, 4 SSDs); "
      "the measured profile should match the stated requirement.");
  AsciiTable table({"stage", "paper requirement", "workload", "throughput",
                    "IOPS", "p99 latency"});
  for (const auto& stage : fio::AllLlmStages()) {
    perf::DfsModel::Config config;
    config.platform = perf::Platform::kServerHost;
    config.transport = net::Transport::kRdma;
    config.num_ssds = 4;
    config.num_jobs = stage.job.numjobs;
    config.iodepth = stage.job.iodepth;
    config.op = stage.job.rw;
    config.block_size = stage.job.block_size;
    perf::DfsModel model(config);
    const auto result = model.Run(ctx.ops(30000));
    const std::string workload =
        std::string(perf::OpKindName(stage.job.rw)) + " " +
        FormatBytes(stage.job.block_size) + " x" +
        std::to_string(stage.job.numjobs) + "j";
    table.AddRow({stage.name, stage.requirement, workload,
                  FormatBandwidth(result.bytes_per_sec),
                  FormatCount(result.ops_per_sec),
                  FormatDuration(result.latency.p99())});
    const bench::Params params = {{"stage", stage.name}};
    ctx.Metric("throughput", "bytes_per_sec", result.bytes_per_sec, params);
    ctx.Metric("iops", "ops_per_sec", result.ops_per_sec, params);
    ctx.Metric("p99_latency", "seconds", result.latency.p99(), params);
  }
  ctx.Table("Fig. 1: storage requirements across the LLM pipeline", table);
}

ROS2_BENCH_MAIN()
