// Wall-clock throughput of the PIPELINED DFS data path vs the sequential
// one, on the paper's two DFS scenario workloads:
//
//  1. Many-small-file dataloader loop (fig5 shape): open + whole-file
//     read + close over a directory of small multi-chunk files. The
//     pipelined mount batches each file's chunk fetches into one
//     FetchBatch window and serves warm path walks from the lookup
//     cache; the sequential mount (batch_io/lookup_cache off) pays one
//     blocking round trip per chunk and per path component — the
//     pre-PR-10 data path.
//
//  2. Streaming checkpoint write + restore (fig1 shape): one large file
//     appended through DfsOutputStream, then read back through
//     DfsInputStream. Both mounts coalesce the same window; only the
//     pipelined one issues it as an in-flight batch, so every flush or
//     readahead refill pays one progress wakeup instead of one per chunk.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and the committed
// baseline. The pipelined >= 2x sequential ratio checks ARE gated (bench
// exit code): the ratios — unlike the absolute rates — are
// machine-independent.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "daos/client.h"
#include "daos/engine.h"
#include "dfs/dfs.h"
#include "dfs/stream.h"
#include "net/fabric.h"
#include "storage/nvme_device.h"

using namespace ros2;

namespace {

// Tiny chunks keep the scenarios WAKEUP-bound, not memcpy-bound: at 1 KiB
// the per-chunk copy is negligible next to the per-RPC client<->progress
// thread handoff (doorbell syscall + thread wake), which is the cost
// pipelining amortizes. Large chunks would measure memory bandwidth —
// identical for both paths.
constexpr std::uint64_t kChunk = 512;
constexpr std::uint64_t kWindowChunks = 16;  // stream window / batch depth
/// Dataloader files are small multi-chunk files (2 KiB thumbnails): per
/// open, the sequential path pays two directory lookups + a leaf lookup +
/// a size read + one blocking fetch per chunk; the batched path pays the
/// size read + ONE pipelined fetch batch (lookups served from cache).
constexpr std::uint64_t kFileBytes = 4 * kChunk;

/// One engine + one client + two mounts of the SAME namespace: `batched`
/// with the pipelined data path on, `sequential` with every accelerator
/// off (per-chunk blocking RPCs, no lookup cache, no readahead). Fresh
/// per repetition so extent logs never accumulate across reps.
struct DfsHarness {
  net::Fabric fabric;
  std::unique_ptr<storage::NvmeDevice> device;
  std::unique_ptr<daos::DaosEngine> engine;
  std::unique_ptr<daos::DaosClient> client;
  std::unique_ptr<dfs::Dfs> batched;
  std::unique_ptr<dfs::Dfs> sequential;
  bool ok = false;

  explicit DfsHarness(int rep) {
    storage::NvmeDeviceConfig dev;
    dev.capacity_bytes = 512 * kMiB;
    device = std::make_unique<storage::NvmeDevice>(dev);
    storage::NvmeDevice* raw[] = {device.get()};
    daos::EngineConfig config;
    config.address = "fabric://dfs-bench-" + std::to_string(rep);
    config.targets = 8;
    config.scm_per_target = 16 * kMiB;
    // Checksums off (for BOTH mounts): per-record CRC is byte-
    // proportional compute identical on either path; leaving it on just
    // dilutes the per-RPC fixed cost this bench isolates.
    config.checksums = false;
    auto created = daos::DaosEngine::Create(&fabric, config, raw);
    if (!created.ok()) return;
    engine = std::move(*created);
    // Synchronous pump client: every pump round drains the engine's poll
    // set, paying the real event-channel cost (doorbell write + poll +
    // read, see net::PollSet). A blocking per-chunk call pays one round
    // per chunk; a pipelined batch pays one round per WINDOW — the same
    // amortization bench_micro_pipeline gates, measured through the full
    // DFS + VOS stack. (A dedicated progress thread would measure
    // context-switch ping-pong instead on small hosts.)
    daos::DaosClient::ConnectOptions options;
    options.client_address = config.address + "-client";
    auto connected = daos::DaosClient::Connect(&fabric, engine.get(),
                                               options);
    if (!connected.ok()) return;
    client = std::move(*connected);
    auto cont = client->ContainerCreate("dfs-bench");
    if (!cont.ok()) return;

    dfs::DfsConfig fast;
    fast.chunk_size = kChunk;
    fast.readahead_chunks = kWindowChunks;
    fast.write_coalesce_chunks = kWindowChunks;
    auto fast_mount = dfs::Dfs::Mount(client.get(), *cont, /*create=*/true,
                                      fast);
    if (!fast_mount.ok()) return;
    batched = std::move(*fast_mount);

    // The sequential baseline is the pre-PR-10 data path verbatim: one
    // blocking RPC per chunk, every path component re-resolved, and the
    // streams at their old one-chunk default windows (each one-chunk
    // flush also pays its own size-update RPC).
    dfs::DfsConfig slow;
    slow.chunk_size = kChunk;
    slow.batch_io = false;
    slow.lookup_cache = false;
    slow.readahead_chunks = 1;
    slow.write_coalesce_chunks = 1;
    auto slow_mount = dfs::Dfs::Mount(client.get(), *cont, /*create=*/false,
                                      slow);
    if (!slow_mount.ok()) return;
    sequential = std::move(*slow_mount);
    ok = true;
  }
};

/// Dataset layout: files nested class/shard deep
/// ("/dataset/c<k>/s<k>/f<i>"), the ImageNet-style tree real dataloaders
/// walk — every open re-resolves three directory components unless the
/// lookup cache short-circuits them.
std::string DatasetPath(std::uint64_t i) {
  std::string path = "/dataset/c";
  path += std::to_string(i % 4);
  path += "/s";
  path += std::to_string(i % 2);
  path += "/f";
  path += std::to_string(i);
  return path;
}

/// Seeds /dataset with `files` small files (each kFileBytes, multi-chunk).
bool SeedDataset(dfs::Dfs* mount, std::uint64_t files) {
  if (!mount->Mkdir("/dataset").ok()) return false;
  for (std::uint64_t k = 0; k < 4; ++k) {
    std::string cls = "/dataset/c" + std::to_string(k);
    if (!mount->Mkdir(cls).ok()) return false;
    for (std::uint64_t s = 0; s < 2; ++s) {
      if (!mount->Mkdir(cls + "/s" + std::to_string(s)).ok()) return false;
    }
  }
  Buffer block = MakePatternBuffer(kFileBytes, 5);
  for (std::uint64_t i = 0; i < files; ++i) {
    dfs::OpenFlags flags;
    flags.create = true;
    auto fd = mount->Open(DatasetPath(i), flags);
    if (!fd.ok()) return false;
    if (!mount->Write(*fd, 0, block).ok()) return false;
    if (!mount->Close(*fd).ok()) return false;
  }
  return true;
}

/// `epochs` dataloader epochs: open + read whole + close every file, the
/// steady-state training loop. Returns files/s (0 on failure); several
/// epochs per measurement keep the window well above timer/scheduler
/// noise.
double DataloaderEpochRate(dfs::Dfs* mount, std::uint64_t files,
                           int epochs, bool* all_ok) {
  Buffer out(kFileBytes);
  const auto start = std::chrono::steady_clock::now();
  for (int e = 0; e < epochs; ++e) {
    for (std::uint64_t i = 0; i < files; ++i) {
      auto fd = mount->Open(DatasetPath(i), {});
      if (!fd.ok()) {
        *all_ok = false;
        return 0.0;
      }
      auto n = mount->Read(*fd, 0, out);
      if (!n.ok() || *n != kFileBytes || !mount->Close(*fd).ok()) {
        *all_ok = false;
        return 0.0;
      }
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return seconds > 0.0 ? double(files) * epochs / seconds : 0.0;
}

struct CheckpointRates {
  double write_mibs = 0.0;    ///< checkpoint write phase
  double restore_mibs = 0.0;  ///< restore phase
  double combined_mibs = 0.0; ///< bytes moved / total wall clock
};

/// Checkpoint write + restore through the streams. Returns per-phase and
/// combined MiB/s (all-zero on failure).
CheckpointRates CheckpointRate(dfs::Dfs* mount, const std::string& path,
                               std::uint64_t total_bytes, bool* all_ok) {
  Buffer block = MakePatternBuffer(16 * kKiB, 9);
  Buffer back(block.size());
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = mount->Open(path, flags);
  if (!fd.ok()) {
    *all_ok = false;
    return {};
  }
  const auto start = std::chrono::steady_clock::now();
  {
    dfs::DfsOutputStream writer(mount, *fd);
    for (std::uint64_t written = 0; written < total_bytes;
         written += block.size()) {
      if (!writer.Append(block).ok()) {
        *all_ok = false;
        return {};
      }
    }
    if (!writer.Close().ok()) {
      *all_ok = false;
      return {};
    }
  }
  const auto mid = std::chrono::steady_clock::now();
  dfs::DfsInputStream reader(mount, *fd);
  std::uint64_t restored = 0;
  while (true) {
    auto n = reader.Read(back);
    if (!n.ok()) {
      *all_ok = false;
      return {};
    }
    if (*n == 0) break;
    restored += *n;
  }
  const auto stop = std::chrono::steady_clock::now();
  if (restored != total_bytes || !mount->Close(*fd).ok()) {
    *all_ok = false;
    return {};
  }
  const double mib = double(total_bytes) / double(kMiB);
  const double write_s = std::chrono::duration<double>(mid - start).count();
  const double read_s = std::chrono::duration<double>(stop - mid).count();
  CheckpointRates rates;
  if (write_s > 0.0) rates.write_mibs = mib / write_s;
  if (read_s > 0.0) rates.restore_mibs = mib / read_s;
  if (write_s + read_s > 0.0) {
    rates.combined_mibs = 2.0 * mib / (write_s + read_s);
  }
  return rates;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_dfs,
                      "Pipelined vs sequential DFS data path wall-clock "
                      "throughput (dataloader + checkpoint scenarios)") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Two mounts of one namespace: 'batched' = pipelined chunk batches + "
      "lookup cache + readahead, 'sequential' = every accelerator off "
      "(one blocking RPC per chunk and per path component). Dataloader = "
      "open+read+close over /dataset (files/s, warm epochs); checkpoint = "
      "stream write then restore of one large file (MiB/s). Rates are "
      "realtime counters — compare trajectories per machine, not across "
      "machines; the batched/sequential RATIOS are machine-independent "
      "and gated at >= 2x.");

  const int repetitions = ctx.quick() ? 3 : 5;
  const std::uint64_t files = ctx.quick() ? 48 : 128;
  const int epochs = ctx.quick() ? 3 : 5;
  const std::uint64_t checkpoint_bytes =
      (ctx.quick() ? 2 : 8) * std::uint64_t(kMiB);

  // Each repetition measures batched and sequential BACK TO BACK on a
  // fresh harness and keeps the pair together: a per-rep ratio compares
  // two runs in the same machine state, where a ratio of bests taken
  // from different reps would compare different states (container CPU
  // throughput drifts between reps). The gate takes the best per-rep
  // ratio; the table shows that rep's actual rates.
  bool all_ok = true;
  double best_loader_batched = 0.0;
  double best_loader_sequential = 0.0;
  double loader_ratio = 0.0;
  CheckpointRates best_ckpt_batched;
  CheckpointRates best_ckpt_sequential;
  double ckpt_ratio = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    DfsHarness h(rep);
    if (!h.ok) {
      all_ok = false;
      break;
    }
    if (!SeedDataset(h.batched.get(), files)) {
      all_ok = false;
      break;
    }
    // Warm epoch populates the lookup cache; measured epochs are the
    // dataloader's steady state (same files, every epoch).
    (void)DataloaderEpochRate(h.batched.get(), files, 1, &all_ok);
    const double loader_batched =
        DataloaderEpochRate(h.batched.get(), files, epochs, &all_ok);
    const double loader_sequential =
        DataloaderEpochRate(h.sequential.get(), files, epochs, &all_ok);
    if (loader_sequential > 0.0 &&
        loader_batched / loader_sequential > loader_ratio) {
      loader_ratio = loader_batched / loader_sequential;
      best_loader_batched = loader_batched;
      best_loader_sequential = loader_sequential;
    }

    const CheckpointRates ckpt_batched = CheckpointRate(
        h.batched.get(), "/ckpt-batched.bin", checkpoint_bytes, &all_ok);
    const CheckpointRates ckpt_sequential =
        CheckpointRate(h.sequential.get(), "/ckpt-sequential.bin",
                       checkpoint_bytes, &all_ok);
    if (ckpt_sequential.combined_mibs > 0.0 &&
        ckpt_batched.combined_mibs / ckpt_sequential.combined_mibs >
            ckpt_ratio) {
      ckpt_ratio = ckpt_batched.combined_mibs / ckpt_sequential.combined_mibs;
      best_ckpt_batched = ckpt_batched;
      best_ckpt_sequential = ckpt_sequential;
    }
  }

  AsciiTable table({"scenario", "sequential", "batched", "ratio"});
  auto add_row = [&table](const std::string& name, double seq, double fast,
                          const std::string& unit) {
    char ratio_str[32];
    std::snprintf(ratio_str, sizeof(ratio_str), "%.2fx",
                  seq > 0.0 ? fast / seq : 0.0);
    table.AddRow({name, FormatCount(seq) + unit, FormatCount(fast) + unit,
                  ratio_str});
  };
  add_row("dataloader (files/s)", best_loader_sequential,
          best_loader_batched, "files/s");
  add_row("checkpoint write", best_ckpt_sequential.write_mibs,
          best_ckpt_batched.write_mibs, "MiB/s");
  add_row("checkpoint restore", best_ckpt_sequential.restore_mibs,
          best_ckpt_batched.restore_mibs, "MiB/s");
  add_row("checkpoint combined", best_ckpt_sequential.combined_mibs,
          best_ckpt_batched.combined_mibs, "MiB/s");
  ctx.Table("Pipelined vs sequential DFS data path (wall clock)", table);

  ctx.Metric("dfs_dataloader_files_per_sec", "files_per_sec",
             best_loader_batched, {{"path", "batched"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_dataloader_files_per_sec", "files_per_sec",
             best_loader_sequential, {{"path", "sequential"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_mib_per_sec", "mib_per_sec",
             best_ckpt_batched.combined_mibs, {{"path", "batched"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_mib_per_sec", "mib_per_sec",
             best_ckpt_sequential.combined_mibs, {{"path", "sequential"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_write_mib_per_sec", "mib_per_sec",
             best_ckpt_batched.write_mibs, {{"path", "batched"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_write_mib_per_sec", "mib_per_sec",
             best_ckpt_sequential.write_mibs, {{"path", "sequential"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_restore_mib_per_sec", "mib_per_sec",
             best_ckpt_batched.restore_mibs, {{"path", "batched"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_restore_mib_per_sec", "mib_per_sec",
             best_ckpt_sequential.restore_mibs, {{"path", "sequential"}},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_dataloader_speedup", "ratio", loader_ratio, {},
             bench::MetricDirection::kHigherIsBetter);
  ctx.Metric("dfs_checkpoint_speedup", "ratio", ckpt_ratio, {},
             bench::MetricDirection::kHigherIsBetter);

  ctx.Check("every DFS op succeeded", all_ok);
  // The tentpole gates: pipelined chunk batches + warm lookup cache must
  // be worth >= 2x on the many-small-file loop, and batched flush /
  // readahead windows >= 2x on the checkpoint stream. Ratios are
  // machine-portable; the absolute rates are not.
  ctx.Check("pipelined DFS dataloader >= 2x sequential",
            loader_ratio >= 2.0);
  ctx.Check("pipelined DFS checkpoint write+restore >= 2x sequential",
            ckpt_ratio >= 2.0);
}

ROS2_BENCH_MAIN()
