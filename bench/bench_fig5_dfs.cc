// Fig. 5 reproduction: end-to-end DFS results, host CPU vs BlueField-3,
// TCP vs RDMA, 1 and 4 NVMe SSDs, R/W/RR/RW workloads.
//
//   (a) DFS TCP 1 MiB   (b) DFS RDMA 1 MiB
//   (c) DFS TCP 4 KiB   (d) DFS RDMA 4 KiB
//
// Each panel prints two row groups (host on top, DPU below), matching the
// figure layout. One functional pass per deployment runs through the full
// ROS2 stack (control plane, DAOS engine, DFS, tenant QoS) with pattern
// verification.
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

constexpr std::uint32_t kJobSweep[] = {1, 2, 4, 8, 16};
constexpr perf::OpKind kOps[] = {perf::OpKind::kRead, perf::OpKind::kWrite,
                                 perf::OpKind::kRandRead,
                                 perf::OpKind::kRandWrite};

const char* RowLabel(perf::OpKind op) {
  switch (op) {
    case perf::OpKind::kRead: return "R";
    case perf::OpKind::kWrite: return "W";
    case perf::OpKind::kRandRead: return "RR";
    case perf::OpKind::kRandWrite: return "RW";
  }
  return "?";
}

void RunPanel(bench::BenchContext& ctx, const char* title, const char* panel,
              net::Transport transport, std::uint64_t block_size) {
  const bool iops_panel = block_size == 4096;
  for (auto platform :
       {perf::Platform::kServerHost, perf::Platform::kBlueField3}) {
    for (std::uint32_t ssds : {1u, 4u}) {
      const std::string group =
          std::string(perf::PlatformName(platform)) + " " +
          std::to_string(ssds) + "ssd";
      std::vector<std::string> headers = {group};
      for (auto jobs : kJobSweep) {
        headers.push_back("jobs=" + std::to_string(jobs));
      }
      AsciiTable table(headers);
      for (auto op : kOps) {
        std::vector<std::string> row = {RowLabel(op)};
        for (auto jobs : kJobSweep) {
          perf::DfsModel::Config config;
          config.platform = platform;
          config.transport = transport;
          config.num_ssds = ssds;
          config.num_jobs = jobs;
          config.op = op;
          config.block_size = block_size;
          perf::DfsModel model(config);
          const auto result = model.Run(ctx.ops(iops_panel ? 40000 : 15000));
          row.push_back(iops_panel ? FormatCount(result.ops_per_sec)
                                   : FormatBandwidth(result.bytes_per_sec));
          ctx.Metric(iops_panel ? "iops" : "throughput",
                     iops_panel ? "ops_per_sec" : "bytes_per_sec",
                     iops_panel ? result.ops_per_sec : result.bytes_per_sec,
                     {{"panel", panel},
                      {"platform", std::string(perf::PlatformName(platform))},
                      {"ssds", std::to_string(ssds)},
                      {"workload", std::string(perf::OpKindName(op))},
                      {"jobs", std::to_string(jobs)}});
        }
        table.AddRow(std::move(row));
      }
      ctx.Table(std::string(title) + " — " + group, table);
    }
  }
}

bool FunctionalCheck(perf::Platform platform, net::Transport transport) {
  core::Ros2Cluster::Config cluster_config;
  cluster_config.num_ssds = 1;
  cluster_config.engine_targets = 8;
  cluster_config.scm_per_target = 16 * kMiB;
  core::Ros2Cluster cluster(cluster_config);
  core::TenantConfig tenant;
  tenant.name = "bench";
  tenant.auth_token = "bench-key";
  if (!cluster.tenants()->Register(tenant).ok()) return false;

  core::ClientConfig config;
  config.platform = platform;
  config.transport = transport;
  config.tenant_name = "bench";
  config.tenant_token = "bench-key";
  auto client = core::Ros2Client::Connect(&cluster, config);
  if (!client.ok()) return false;

  fio::DfsFio::Setup setup;
  fio::DfsFio harness(client->get(), setup);
  fio::JobSpec spec;
  spec.name = "fig5";
  spec.rw = perf::OpKind::kRandRead;
  spec.block_size = 4096;
  spec.total_ops = 1000;
  spec.verify_ops = 64;
  auto report = harness.Run(spec);
  return report.ok() && report->verified_ops == 64;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(fig5_dfs,
                      "Fig. 5: DFS end-to-end, host vs BlueField-3, paper "
                      "Sec. 4.4") {
  ctx.Note(
      "Expected shapes: (i) DPU RDMA ~= host at 1 MiB (~6.4 / ~10-11 "
      "GiB/s); (ii) DPU TCP reads collapse (~3.1 -> ~1.6 GiB/s with "
      "concurrency) while writes stay ~10 GiB/s; (iii) 4 KiB: host TCP "
      "~0.4-0.6M, DPU TCP ~0.18-0.23M, DPU RDMA >= 2x DPU TCP but trails "
      "host RDMA by 20-40%.");
  for (auto platform :
       {perf::Platform::kServerHost, perf::Platform::kBlueField3}) {
    for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
      ctx.Check(std::string("full-stack 64-op verified pass (") +
                    std::string(perf::PlatformName(platform)) + "/" +
                    std::string(perf::TransportName(transport)) + ")",
                FunctionalCheck(platform, transport));
    }
  }
  RunPanel(ctx, "(a) DFS TCP 1M (GiB/s)", "a", net::Transport::kTcp, kMiB);
  RunPanel(ctx, "(b) DFS RDMA 1M (GiB/s)", "b", net::Transport::kRdma, kMiB);
  RunPanel(ctx, "(c) DFS TCP 4K (IOPS)", "c", net::Transport::kTcp, 4096);
  RunPanel(ctx, "(d) DFS RDMA 4K (IOPS)", "d", net::Transport::kRdma, 4096);
}

ROS2_BENCH_MAIN()
