// Wall-clock throughput of the simulation engine itself: how many
// SIMULATED ops per REAL second the closed-loop DES sustains on the fig3
// quick workloads. This is the regression gate for the allocation-free
// engine (reused inline-capacity plans, streaming steady-state stats, the
// ring+overflow issue queue, single-server ServerPool fast path): the
// model NUMBERS are pinned bit-exactly by closed_loop_equivalence_test and
// the bench baseline; this binary pins the SPEED those numbers are
// computed at.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and out of the
// default `benchctl diff` — the metrics ride the BENCH JSON aggregate as
// direction-hinted counters (higher is better).
#include <chrono>
#include <cstdint>
#include <string>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "perf/local_fio_model.h"

using namespace ros2;

namespace {

struct EngineWorkload {
  const char* name;        // fig3 panel this mirrors
  std::uint32_t num_ssds;
  std::uint32_t num_jobs;
  std::uint64_t block_size;
  std::uint64_t full_ops;  // fig3's full-mode budget (ctx.ops scales it)
};

// The fig3 sweep corners: (d) is the 256-context 4 KiB IOPS panel that
// dominates simulated-op count; (c) is the bandwidth-bound 1 MiB panel.
constexpr EngineWorkload kWorkloads[] = {
    {"fig3d-randread-4k", 4, 16, 4096, 60000},
    {"fig3c-read-1m", 4, 16, kMiB, 20000},
};

double BestRate(const EngineWorkload& workload, std::uint64_t ops,
                int repetitions, std::uint64_t* completed) {
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    perf::LocalFioModel::Config config;
    config.num_ssds = workload.num_ssds;
    config.num_jobs = workload.num_jobs;
    config.op = workload.block_size == kMiB ? perf::OpKind::kRead
                                            : perf::OpKind::kRandRead;
    config.block_size = workload.block_size;
    perf::LocalFioModel model(config);
    const auto start = std::chrono::steady_clock::now();
    const auto result = model.Run(ops);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    *completed = result.completed_ops;
    if (seconds > 0.0) {
      best = std::max(best, double(result.completed_ops) / seconds);
    }
  }
  return best;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_sim_engine,
                      "Simulation-engine wall-clock throughput on the fig3 "
                      "quick workloads") {
  ctx.report().MarkRealtime();
  ctx.Note(
      "Simulated ops per wall-clock second of sim::RunClosedLoop driving "
      "the fig3 local-FIO model (fresh model per repetition, best of N — "
      "the best run is the least-preempted one). Reported as realtime "
      "counters: compare trajectories per machine, not across machines.");

  const int repetitions = ctx.quick() ? 9 : 25;
  AsciiTable table({"workload", "ops/run", "sim-ops per wall-second"});
  bool all_completed = true;
  for (const auto& workload : kWorkloads) {
    const std::uint64_t ops = ctx.ops(workload.full_ops);
    std::uint64_t completed = 0;
    const double rate = BestRate(workload, ops, repetitions, &completed);
    all_completed = all_completed && completed == ops;
    table.AddRow({workload.name, std::to_string(ops),
                  FormatCount(rate) + "ops/s"});
    ctx.Metric("engine_sim_ops_per_wall_sec", "ops_per_wall_sec", rate,
               {{"workload", workload.name}},
               bench::MetricDirection::kHigherIsBetter);
  }
  ctx.Check("every timed run completed its full op budget", all_completed);
  ctx.Table("Engine throughput (wall clock)", table);
}

ROS2_BENCH_MAIN()
