// Fig. 4 reproduction: remote SPDK NVMe-oF benchmark, TCP vs RDMA,
// client x server core heatmaps over {1,2,4,8,16}^2 with one NVMe SSD.
//
//   (a) 1 MiB throughput, TCP     (b) 1 MiB throughput, RDMA
//   (c) 4 KiB IOPS, TCP           (d) 4 KiB IOPS, RDMA
//
// Functional verification runs once per transport through the real
// NVMe-oF target/initiator; heatmap numbers come from the calibrated model.
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

constexpr std::uint32_t kCoreSweep[] = {1, 2, 4, 8, 16};

void RunHeatmap(bench::BenchContext& ctx, const char* title,
                const char* panel, net::Transport transport,
                std::uint64_t block_size, perf::OpKind op) {
  const bool iops_panel = block_size == 4096;
  std::vector<std::string> headers = {"client\\server"};
  for (auto cores : kCoreSweep) {
    headers.push_back(std::to_string(cores));
  }
  AsciiTable table(headers);
  for (auto client_cores : kCoreSweep) {
    std::vector<std::string> row = {std::to_string(client_cores)};
    for (auto server_cores : kCoreSweep) {
      perf::RemoteSpdkModel::Config config;
      config.transport = transport;
      config.client_cores = client_cores;
      config.server_cores = server_cores;
      config.op = op;
      config.block_size = block_size;
      perf::RemoteSpdkModel model(config);
      const auto result = model.Run(ctx.ops(iops_panel ? 40000 : 15000));
      row.push_back(iops_panel ? FormatCount(result.ops_per_sec)
                               : FormatBandwidth(result.bytes_per_sec));
      ctx.Metric(iops_panel ? "iops" : "throughput",
                 iops_panel ? "ops_per_sec" : "bytes_per_sec",
                 iops_panel ? result.ops_per_sec : result.bytes_per_sec,
                 {{"panel", panel},
                  {"workload", std::string(perf::OpKindName(op))},
                  {"client_cores", std::to_string(client_cores)},
                  {"server_cores", std::to_string(server_cores)}});
    }
    table.AddRow(std::move(row));
  }
  ctx.Table(std::string(title) + " (" +
                std::string(perf::OpKindName(op)) + ")",
            table);
}

bool FunctionalCheck(net::Transport transport) {
  net::Fabric fabric;
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice device(config);
  spdk::Bdev bdev(&device);
  spdk::NvmfTarget target(&fabric, "fabric://nvmf-target");
  if (!target.AddNamespace(1, &bdev).ok()) return false;
  auto initiator = spdk::NvmfConnect(&fabric, &target, transport,
                                     "fabric://nvmf-client");
  if (!initiator.ok()) return false;
  fio::RemoteFio::Setup setup;
  setup.transport = transport;
  setup.client_cores = 4;
  setup.server_cores = 4;
  fio::RemoteFio harness(initiator->get(), setup);
  fio::JobSpec spec;
  spec.rw = perf::OpKind::kRandRead;
  spec.block_size = 4096;
  spec.total_ops = 1000;
  spec.verify_ops = 128;
  auto report = harness.Run(spec);
  return report.ok() && report->verified_ops == 128;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(fig4_remote_spdk,
                      "Fig. 4: Remote SPDK benchmark (NVMe-oF, 1 SSD), "
                      "paper Sec. 4.3") {
  ctx.Note(
      "Expected shapes: 1 MiB - both transports plateau at the media "
      "ceiling (~5.4 GiB/s) after a few cores; 4 KiB - RDMA >> TCP and "
      "keeps scaling with cores while TCP flattens (~250K serialized cap).");
  for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
    ctx.Check(std::string("NVMe-oF 128-op verified pass (") +
                  std::string(perf::TransportName(transport)) + ")",
              FunctionalCheck(transport));
  }
  RunHeatmap(ctx, "(a) throughput, bs=1 MiB, TCP", "a", net::Transport::kTcp,
             kMiB, perf::OpKind::kRead);
  RunHeatmap(ctx, "(b) throughput, bs=1 MiB, RDMA", "b",
             net::Transport::kRdma, kMiB, perf::OpKind::kRead);
  RunHeatmap(ctx, "(c) IOPS, bs=4 KiB, TCP", "c", net::Transport::kTcp, 4096,
             perf::OpKind::kRandRead);
  RunHeatmap(ctx, "(d) IOPS, bs=4 KiB, RDMA", "d", net::Transport::kRdma,
             4096, perf::OpKind::kRandRead);
  // Write-side panels (the paper sweeps all four workloads; reads shown
  // above as the headline, writes here for completeness).
  RunHeatmap(ctx, "(a') throughput, bs=1 MiB, TCP", "a2", net::Transport::kTcp,
             kMiB, perf::OpKind::kWrite);
  RunHeatmap(ctx, "(b') throughput, bs=1 MiB, RDMA", "b2",
             net::Transport::kRdma, kMiB, perf::OpKind::kWrite);
  RunHeatmap(ctx, "(c') IOPS, bs=4 KiB, TCP", "c2", net::Transport::kTcp,
             4096, perf::OpKind::kRandWrite);
  RunHeatmap(ctx, "(d') IOPS, bs=4 KiB, RDMA", "d2", net::Transport::kRdma,
             4096, perf::OpKind::kRandWrite);
}

ROS2_BENCH_MAIN()
