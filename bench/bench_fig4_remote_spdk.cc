// Fig. 4 reproduction: remote SPDK NVMe-oF benchmark, TCP vs RDMA,
// client x server core heatmaps over {1,2,4,8,16}^2 with one NVMe SSD.
//
//   (a) 1 MiB throughput, TCP     (b) 1 MiB throughput, RDMA
//   (c) 4 KiB IOPS, TCP           (d) 4 KiB IOPS, RDMA
//
// Functional verification runs once per transport through the real
// NVMe-oF target/initiator; heatmap numbers come from the calibrated model.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

constexpr std::uint32_t kCoreSweep[] = {1, 2, 4, 8, 16};

void RunHeatmap(const char* title, net::Transport transport,
                std::uint64_t block_size, perf::OpKind op) {
  std::printf("\n-- %s (%s) --\n", title, perf::OpKindName(op).data());
  const bool iops_panel = block_size == 4096;
  std::vector<std::string> headers = {"client\\server"};
  for (auto cores : kCoreSweep) {
    headers.push_back(std::to_string(cores));
  }
  AsciiTable table(headers);
  for (auto client_cores : kCoreSweep) {
    std::vector<std::string> row = {std::to_string(client_cores)};
    for (auto server_cores : kCoreSweep) {
      perf::RemoteSpdkModel::Config config;
      config.transport = transport;
      config.client_cores = client_cores;
      config.server_cores = server_cores;
      config.op = op;
      config.block_size = block_size;
      perf::RemoteSpdkModel model(config);
      const auto result = model.Run(iops_panel ? 40000 : 15000);
      row.push_back(iops_panel ? FormatCount(result.ops_per_sec)
                               : FormatBandwidth(result.bytes_per_sec));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

bool FunctionalCheck(net::Transport transport) {
  net::Fabric fabric;
  storage::NvmeDeviceConfig config;
  config.capacity_bytes = 64 * kMiB;
  storage::NvmeDevice device(config);
  spdk::Bdev bdev(&device);
  spdk::NvmfTarget target(&fabric, "fabric://nvmf-target");
  if (!target.AddNamespace(1, &bdev).ok()) return false;
  auto initiator = spdk::NvmfConnect(&fabric, &target, transport,
                                     "fabric://nvmf-client");
  if (!initiator.ok()) return false;
  fio::RemoteFio::Setup setup;
  setup.transport = transport;
  setup.client_cores = 4;
  setup.server_cores = 4;
  fio::RemoteFio harness(initiator->get(), setup);
  fio::JobSpec spec;
  spec.rw = perf::OpKind::kRandRead;
  spec.block_size = 4096;
  spec.total_ops = 1000;
  spec.verify_ops = 128;
  auto report = harness.Run(spec);
  return report.ok() && report->verified_ops == 128;
}

}  // namespace

int main() {
  std::printf(
      "== Fig. 4: Remote SPDK benchmark (NVMe-oF, 1 SSD), paper Sec. 4.3 ==\n"
      "Expected shapes: 1 MiB - both transports plateau at the media\n"
      "ceiling (~5.4 GiB/s) after a few cores; 4 KiB - RDMA >> TCP and\n"
      "keeps scaling with cores while TCP flattens (~250K serialized cap).\n");
  for (auto transport : {net::Transport::kTcp, net::Transport::kRdma}) {
    std::printf("functional check (%s): %s\n",
                perf::TransportName(transport).data(),
                FunctionalCheck(transport) ? "PASS (128 ops verified)"
                                           : "FAIL");
  }
  RunHeatmap("(a) throughput, bs=1 MiB, TCP", net::Transport::kTcp, kMiB,
             perf::OpKind::kRead);
  RunHeatmap("(b) throughput, bs=1 MiB, RDMA", net::Transport::kRdma, kMiB,
             perf::OpKind::kRead);
  RunHeatmap("(c) IOPS, bs=4 KiB, TCP", net::Transport::kTcp, 4096,
             perf::OpKind::kRandRead);
  RunHeatmap("(d) IOPS, bs=4 KiB, RDMA", net::Transport::kRdma, 4096,
             perf::OpKind::kRandRead);
  // Write-side panels (the paper sweeps all four workloads; reads shown
  // above as the headline, writes here for completeness).
  RunHeatmap("(a') throughput, bs=1 MiB, TCP", net::Transport::kTcp, kMiB,
             perf::OpKind::kWrite);
  RunHeatmap("(b') throughput, bs=1 MiB, RDMA", net::Transport::kRdma, kMiB,
             perf::OpKind::kWrite);
  RunHeatmap("(c') IOPS, bs=4 KiB, TCP", net::Transport::kTcp, 4096,
             perf::OpKind::kRandWrite);
  RunHeatmap("(d') IOPS, bs=4 KiB, RDMA", net::Transport::kRdma, 4096,
             perf::OpKind::kRandWrite);
  return 0;
}
