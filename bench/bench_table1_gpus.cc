// Table 1 reproduction: NVIDIA data-center GPU generations and the
// ingest-rate implication model B_node = G * r * s from §2.1.
//
// The table is static (vendor datasheet numbers quoted by the paper); the
// value added here is the derived per-node ingest requirement that
// motivates the RDMA-first design, swept over the paper's parameters.
#include <string>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"

using namespace ros2;

namespace {

struct GpuSpec {
  const char* name;
  const char* arch;
  const char* memory;
  const char* mem_bw;
  const char* nvlink;
  const char* fp16;
  const char* fp8;
  const char* fp4;
  double mem_bw_tbps;  // numeric, for the ingest model
};

constexpr GpuSpec kGpus[] = {
    {"P100", "Pascal", "16 GB HBM2", "732 GB/s", "NVLink 1 / 80 GB/s",
     "21.2 TFLOPS", "N/A", "N/A", 0.732},
    {"V100", "Volta", "32 GB HBM2", "1134 GB/s", "NVLink 2 / 300 GB/s",
     "130 TFLOPS", "N/A", "N/A", 1.134},
    {"A100", "Ampere", "80 GB HBM2e", "~2.0 TB/s", "NVLink 3 / 600 GB/s",
     "624 TFLOPS", "N/A", "N/A", 2.0},
    {"H100", "Hopper", "80 GB HBM3", "3.35 TB/s", "NVLink 4 / 900 GB/s",
     "~2 PFLOPS", "~4 PFLOPS", "N/A", 3.35},
    {"H200", "Hopper", "141 GB HBM3e", "4.8 TB/s", "NVLink 4 / 900 GB/s",
     "~2 PFLOPS", "~4 PFLOPS", "N/A", 4.8},
    {"B200", "Blackwell", "186 GB HBM3e", "8.0 TB/s", "NVLink 5 / 1.8 TB/s",
     "5 PFLOPS", "10 PFLOPS", "20 PFLOPS", 8.0},
};

}  // namespace

ROS2_BENCH_EXPERIMENT(table1_gpus,
                      "Table 1: NVIDIA data center GPUs across generations") {
  AsciiTable table({"GPU", "Architecture", "Memory", "Mem BW",
                    "NVLink (gen / per-GPU BW)", "FP16", "FP8", "FP4"});
  for (const auto& gpu : kGpus) {
    table.AddRow({gpu.name, gpu.arch, gpu.memory, gpu.mem_bw, gpu.nvlink,
                  gpu.fp16, gpu.fp8, gpu.fp4});
    ctx.Metric("mem_bandwidth", "tb_per_sec", gpu.mem_bw_tbps,
               {{"gpu", gpu.name}});
  }
  ctx.Table("Table 1: NVIDIA data center GPUs across generations", table);
}

ROS2_BENCH_EXPERIMENT(table1_ingest_model,
                      "Ingest implication model (Sec. 2.1): B_node ~= G*r*s") {
  ctx.Note(
      "G = GPUs per node, r = per-GPU sample rate (samples/s), s = bytes "
      "fetched per sample after compression.");
  AsciiTable ingest(
      {"G", "r (samples/s)", "s (KiB)", "B_node", "fits 100 Gbps link?"});
  for (int gpus : {4, 8}) {
    for (double rate : {500.0, 2000.0, 8000.0}) {
      for (double sample_kib : {64.0, 256.0, 1024.0}) {
        const double bytes_per_sec = gpus * rate * sample_kib * double(kKiB);
        const bool fits = bytes_per_sec < 100.0 * kGbps;
        ingest.AddRow({std::to_string(gpus), std::to_string(int(rate)),
                       std::to_string(int(sample_kib)),
                       FormatBandwidth(bytes_per_sec),
                       fits ? "yes" : "NO - saturates fabric"});
        ctx.Metric("node_ingest", "bytes_per_sec", bytes_per_sec,
                   {{"gpus", std::to_string(gpus)},
                    {"rate", std::to_string(int(rate))},
                    {"sample_kib", std::to_string(int(sample_kib))}});
      }
    }
  }
  ctx.Table("Ingest implication model (Sec. 2.1)", ingest);
  ctx.Note(
      "Even conservative choices yield multi-GiB/s per node plus heavy "
      "small-I/O pressure from shuffling - the motivation for the "
      "RDMA-first, SmartNIC-offloaded data path evaluated in Figs. 3-5.");
}

ROS2_BENCH_MAIN()
