// Ablation: GPU placement (§3.5) — staged through DPU DRAM vs GPUDirect
// RDMA straight into GPU HBM. The paper leaves GPUDirect as future work;
// this bench quantifies what the extra staging copy costs and functionally
// demonstrates the three-step GPUDirect recipe.
#include <cstdio>
#include <string>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

/// Runs the functional GPUDirect path end to end; returns staging copies
/// observed (0 expected for gpudirect, >0 for staged).
int FunctionalGpuRead(bool gpudirect) {
  core::Ros2Cluster cluster;
  core::TenantConfig tenant;
  tenant.name = "gpu-bench";
  tenant.auth_token = "k";
  if (!cluster.tenants()->Register(tenant).ok()) return -1;
  core::ClientConfig config;
  config.platform = perf::Platform::kBlueField3;
  config.transport = net::Transport::kRdma;
  config.tenant_name = "gpu-bench";
  config.tenant_token = "k";
  auto client = core::Ros2Client::Connect(&cluster, config);
  if (!client.ok()) return -1;
  dfs::OpenFlags flags;
  flags.create = true;
  auto fd = (*client)->Open("/weights", flags);
  if (!fd.ok()) return -1;
  Buffer data = MakePatternBuffer(kMiB, 3);
  if (!(*client)->Pwrite(*fd, 0, data).ok()) return -1;
  const auto copies_before = (*client)->counters().staging_copies;
  core::GpuBuffer gpu(kMiB);
  auto n = (*client)->PreadGpu(*fd, 0, &gpu, 0, kMiB, gpudirect);
  if (!n.ok() || VerifyPattern(gpu.bytes(), 3, 0) != -1) return -1;
  return int((*client)->counters().staging_copies - copies_before);
}

}  // namespace

ROS2_BENCH_EXPERIMENT(ablation_gpudirect,
                      "Ablation: GPU placement - DPU-DRAM staging vs "
                      "GPUDirect RDMA") {
  ctx.Note("Deployment: BlueField-3 + RDMA, 4 SSDs, sequential 1 MiB reads.");
  const int staged_copies = FunctionalGpuRead(false);
  const int direct_copies = FunctionalGpuRead(true);
  ctx.Check("staged path pays >=1 staging copy", staged_copies > 0);
  ctx.Check("GPUDirect path pays 0 staging copies", direct_copies == 0);

  AsciiTable table(
      {"jobs", "DPU DRAM sink", "GPU staged", "GPUDirect", "direct gain"});
  for (std::uint32_t jobs : {1u, 4u, 8u, 16u}) {
    double results[3];
    int i = 0;
    for (auto sink : {perf::DataSink::kDpuDram, perf::DataSink::kGpuStaged,
                      perf::DataSink::kGpuDirect}) {
      perf::DfsModel::Config config;
      config.platform = perf::Platform::kBlueField3;
      config.transport = net::Transport::kRdma;
      config.num_ssds = 4;
      config.num_jobs = jobs;
      config.op = perf::OpKind::kRead;
      config.block_size = kMiB;
      config.sink = sink;
      perf::DfsModel model(config);
      results[i++] = model.Run(ctx.ops(15000)).bytes_per_sec;
    }
    char gain[32];
    std::snprintf(gain, sizeof(gain), "%.2fx", results[2] / results[1]);
    table.AddRow({std::to_string(jobs), FormatBandwidth(results[0]),
                  FormatBandwidth(results[1]), FormatBandwidth(results[2]),
                  gain});
    const bench::Params params = {{"jobs", std::to_string(jobs)}};
    ctx.Metric("throughput_dpu_dram", "bytes_per_sec", results[0], params);
    ctx.Metric("throughput_gpu_staged", "bytes_per_sec", results[1], params);
    ctx.Metric("throughput_gpudirect", "bytes_per_sec", results[2], params);
    ctx.Metric("gpudirect_gain", "ratio", results[2] / results[1], params);
  }
  ctx.Table("GPU data placement across job counts", table);
  ctx.Note(
      "GPUDirect matches the DPU-DRAM sink (no extra copy) while the "
      "staged GPU path pays the DPU->GPU copy - the minimal-copy argument "
      "of Sec. 3.5/Sec. 5.");
}

ROS2_BENCH_MAIN()
