// Real-time microbenchmarks (google-benchmark) of the FUNCTIONAL data
// path: what eager (inline copy, TCP-style) vs rendezvous (one-sided,
// RDMA-style) transfer costs in this process, plus CRC and ChaCha20 rates.
// These measure the simulator's real CPU work — complementary to the
// calibrated model numbers in the fig benches.
#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/crc.h"
#include "core/chacha20.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"

namespace {

using namespace ros2;

struct RpcPair {
  net::Fabric fabric;
  net::Endpoint* client_ep = nullptr;
  net::Qp* qp = nullptr;
  rpc::RpcServer server;
  std::unique_ptr<rpc::RpcClient> client;

  explicit RpcPair(net::Transport transport) {
    auto server_ep = fabric.CreateEndpoint("fabric://s");
    auto client_result = fabric.CreateEndpoint("fabric://c");
    client_ep = *client_result;
    auto qp_result = client_ep->Connect(*server_ep, transport,
                                        client_ep->AllocPd(),
                                        (*server_ep)->AllocPd());
    qp = *qp_result;
    client = std::make_unique<rpc::RpcClient>(
        qp, client_ep, [this] { (void)server.Progress(qp->peer()); });
    server.Register(1, [](const Buffer&, rpc::BulkIo& bulk) -> Result<Buffer> {
      Buffer data(bulk.in_size());
      if (bulk.in_size() > 0) {
        ROS2_RETURN_IF_ERROR(bulk.Pull(data));
      }
      if (bulk.out_capacity() > 0) {
        Buffer reply(bulk.out_capacity(), std::byte(0x5A));
        ROS2_RETURN_IF_ERROR(bulk.Push(reply));
      }
      return Buffer{};
    });
  }
};

void BM_BulkFetch(benchmark::State& state, net::Transport transport) {
  RpcPair pair(transport);
  const std::size_t size = std::size_t(state.range(0));
  Buffer window(size);
  for (auto _ : state) {
    rpc::CallOptions options;
    options.recv_bulk = window;
    auto reply = pair.client->Call(1, std::span<const std::byte>{}, options);
    benchmark::DoNotOptimize(reply);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}

void BM_BulkUpdate(benchmark::State& state, net::Transport transport) {
  RpcPair pair(transport);
  const std::size_t size = std::size_t(state.range(0));
  Buffer payload = MakePatternBuffer(size, 1);
  for (auto _ : state) {
    rpc::CallOptions options;
    options.send_bulk = payload;
    auto reply = pair.client->Call(1, std::span<const std::byte>{}, options);
    benchmark::DoNotOptimize(reply);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}

void BM_OneSidedRead(benchmark::State& state) {
  net::Fabric fabric;
  auto a = *fabric.CreateEndpoint("fabric://a");
  auto b = *fabric.CreateEndpoint("fabric://b");
  auto qp = *a->Connect(b, net::Transport::kRdma, a->AllocPd(),
                        b->AllocPd());
  Buffer remote = MakePatternBuffer(std::size_t(state.range(0)), 2);
  // Register under the connection's PD so the capability check passes.
  auto mr =
      *b->RegisterMemory(qp->peer()->local_pd(), remote, net::kRemoteRead);
  Buffer local(remote.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp->RdmaRead(local, mr.addr, mr.rkey));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(local.size()));
}

void BM_Crc32c(benchmark::State& state) {
  Buffer data = MakePatternBuffer(std::size_t(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(data.size()));
}

void BM_ChaCha20(benchmark::State& state) {
  core::ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = std::uint8_t(i);
  Buffer data = MakePatternBuffer(std::size_t(state.range(0)), 4);
  for (auto _ : state) {
    core::ChaCha20Xor(key, 1, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(data.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_BulkFetch, tcp_eager, ros2::net::Transport::kTcp)
    ->Range(4096, 1 << 20);
BENCHMARK_CAPTURE(BM_BulkFetch, rdma_rendezvous,
                  ros2::net::Transport::kRdma)
    ->Range(4096, 1 << 20);
BENCHMARK_CAPTURE(BM_BulkUpdate, tcp_eager, ros2::net::Transport::kTcp)
    ->Range(4096, 1 << 20);
BENCHMARK_CAPTURE(BM_BulkUpdate, rdma_rendezvous,
                  ros2::net::Transport::kRdma)
    ->Range(4096, 1 << 20);
BENCHMARK(BM_OneSidedRead)->Range(4096, 1 << 20);
BENCHMARK(BM_Crc32c)->Range(4096, 1 << 20);
BENCHMARK(BM_ChaCha20)->Range(4096, 1 << 20);

BENCHMARK_MAIN();
