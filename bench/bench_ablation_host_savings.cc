// Ablation: host-side resource savings from SmartNIC offload.
//
// The paper's §5 explicitly defers this: "Our study does not yet quantify
// host-side resource savings". The model can: every client-side CPU cost
// lands on the deployment's client platform, so comparing host-direct vs
// DPU-offloaded runs shows how many HOST core-seconds per GiB the offload
// removes (they move to the DPU's Arm cores, freeing the host for the
// training job).
#include <cstdio>
#include <string>

#include "bench/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "perf/dfs_model.h"

using namespace ros2;

namespace {

struct Row {
  perf::DfsModel::Config config;
  sim::ClosedLoopResult result;
  perf::DfsModel::Utilization util;
};

Row RunCell(bench::BenchContext& ctx, perf::Platform platform,
            perf::Transport transport, perf::OpKind op, std::uint64_t bs) {
  Row row;
  row.config.platform = platform;
  row.config.transport = transport;
  row.config.num_ssds = 4;
  row.config.num_jobs = 16;
  row.config.op = op;
  row.config.block_size = bs;
  perf::DfsModel model(row.config);
  row.result = model.Run(ctx.ops(bs == 4096 ? 40000 : 15000));
  row.util = model.UtilizationAfter(row.result);
  return row;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(ablation_host_savings,
                      "Ablation: host-side resource savings from DPU "
                      "offload") {
  ctx.Note(
      "(the follow-up the paper defers in Sec. 5, quantified on the model) "
      "Client-side CPU work per delivered GiB, by deployment. In the "
      "offloaded rows those core-seconds burn on the DPU's 16 Arm cores; "
      "the HOST contribution is ~zero (it only launches jobs, Sec. 3.2).");
  AsciiTable table({"workload", "transport", "deployment", "throughput",
                    "client CPU util", "core-sec / GiB",
                    "host core-sec / GiB"});
  for (auto op : {perf::OpKind::kRead, perf::OpKind::kRandRead}) {
    const std::uint64_t bs = op == perf::OpKind::kRead ? kMiB : 4096;
    for (auto transport :
         {perf::Transport::kTcp, perf::Transport::kRdma}) {
      for (auto platform :
           {perf::Platform::kServerHost, perf::Platform::kBlueField3}) {
        const Row row = RunCell(ctx, platform, transport, op, bs);
        const double gib =
            row.result.bytes_per_sec * row.result.makespan / double(kGiB);
        const double core_sec_per_gib =
            gib > 0 ? row.util.client_core_seconds / gib : 0.0;
        const bool offloaded = platform == perf::Platform::kBlueField3;
        const double host_core_sec = offloaded ? 0.0 : core_sec_per_gib;
        char util[32];
        std::snprintf(util, sizeof(util), "%.1f%%",
                      row.util.client_cores * 100.0);
        char cspg[32];
        std::snprintf(cspg, sizeof(cspg), "%.4f", core_sec_per_gib);
        char host_cspg[32];
        std::snprintf(host_cspg, sizeof(host_cspg), "%.4f", host_core_sec);
        table.AddRow({std::string(perf::OpKindName(op)) + " " +
                          FormatBytes(bs),
                      std::string(perf::TransportName(transport)),
                      offloaded ? "DPU-offload" : "host-direct",
                      FormatBandwidth(row.result.bytes_per_sec), util, cspg,
                      host_cspg});
        const bench::Params params = {
            {"workload", std::string(perf::OpKindName(op))},
            {"transport", std::string(perf::TransportName(transport))},
            {"deployment", offloaded ? "dpu-offload" : "host-direct"}};
        ctx.Metric("throughput", "bytes_per_sec", row.result.bytes_per_sec,
                   params);
        ctx.Metric("client_core_sec_per_gib", "core_sec_per_gib",
                   core_sec_per_gib, params);
        ctx.Metric("host_core_sec_per_gib", "core_sec_per_gib",
                   host_core_sec, params);
      }
    }
  }
  ctx.Table("Client-side CPU cost per delivered GiB", table);
  ctx.Note(
      "Reading: with RDMA the offload moves the whole client-side budget "
      "off the host at equal throughput (paper takeaway (i)); with TCP the "
      "DPU burns MORE cycles per GiB (RX bottleneck) while also delivering "
      "less - reinforcing that offloaded deployments should be RDMA-first.");
}

ROS2_BENCH_MAIN()
