// Wall-clock throughput of the THREADED engine: single-update calls per
// real second as the target count (= xstream worker count) sweeps 1 -> 4,
// with one closed-loop client thread per target and the engine's network
// progress thread doing all reply serialization (no client pump).
//
// What makes more targets honestly faster on a multi-core host: each
// target is a real worker thread (daos::Xstream) executing its VOS ops,
// so updates routed to different targets run concurrently while the
// per-dkey FIFO holds inside each worker. Each client thread pins its
// dkey to its own target via the placement hash, so target count T means
// T independent update streams — the paper's per-target xstream argument
// (§2.2) measured end-to-end through the real RPC + poll-set doorbell
// path.
//
// The whole report is realtime-tagged: wall-clock rates churn by machine,
// so benchctl keeps this section out of EXPERIMENTS.md and the committed
// baseline. The 4-target >= 2x 1-target ratio check IS gated (bench exit
// code) — but only on hosts with >= 4 cores; on smaller hosts the workers
// time-slice one core and the check passes vacuously with a note.
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "daos/engine.h"
#include "daos/placement.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "rpc/wire.h"
#include "storage/nvme_device.h"

using namespace ros2;

namespace {

/// A dkey that the placement hash routes to `target` out of `targets`.
std::string DkeyForTarget(const daos::ObjectId& oid, std::uint32_t target,
                          std::uint32_t targets) {
  for (int i = 0;; ++i) {
    std::string dkey = "dkey-" + std::to_string(i);
    if (daos::PlaceDkey(oid, dkey, targets) == target) return dkey;
  }
}

/// One engine with `targets` xstream workers + progress thread, one
/// client (own endpoint/QP, no pump) per target. Returns total updates/s
/// wall clock across all client threads; `ops` is the per-client budget.
double ThreadedEngineRate(std::uint32_t targets, std::uint64_t ops,
                          int rep, bool* all_ok) {
  net::Fabric fabric;
  storage::NvmeDeviceConfig dev_config;
  dev_config.capacity_bytes = 256 * kMiB;
  storage::NvmeDevice device(dev_config);
  storage::NvmeDevice* raw[] = {&device};
  daos::EngineConfig config;
  config.address =
      "fabric://mt-bench-" + std::to_string(targets) + "-" +
      std::to_string(rep);
  config.targets = targets;
  config.scm_per_target = 16 * kMiB;
  config.xstream_workers = true;
  auto engine = daos::DaosEngine::Create(&fabric, config, raw);
  if (!engine.ok()) {
    *all_ok = false;
    return 0.0;
  }
  (*engine)->StartProgressThread();

  std::vector<std::thread> clients;
  std::vector<char> ok(targets, 1);  // one slot per thread, no sharing
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t t = 0; t < targets; ++t) {
    clients.emplace_back([&, t] {
      auto ep = fabric.CreateEndpoint(config.address + "-client-" +
                                      std::to_string(t));
      if (!ep.ok()) {
        ok[t] = 0;
        return;
      }
      auto qp = (*ep)->Connect((*engine)->endpoint(), net::Transport::kRdma,
                               (*ep)->AllocPd(), (*engine)->pd());
      if (!qp.ok()) {
        ok[t] = 0;
        return;
      }
      rpc::RpcClient client(*qp, *ep, nullptr);  // progress thread serves
      client.set_max_in_flight(16);
      client.set_stall_timeout_ms(10000.0);

      rpc::Encoder create;
      create.Str("cont-" + std::to_string(t));
      auto created = client.Call(
          std::uint32_t(daos::DaosOpcode::kContCreate), create);
      if (!created.ok()) {
        ok[t] = 0;
        return;
      }
      rpc::Decoder dec(created->header);
      auto cont = dec.U64();
      if (!cont.ok()) {
        ok[t] = 0;
        return;
      }
      const daos::ObjectId oid{1, t + 1};
      const std::string dkey = DkeyForTarget(oid, t, targets);
      Buffer value = MakePatternBuffer(64, t + 1);

      std::deque<rpc::RpcClient::CallId> outstanding;
      for (std::uint64_t i = 0; i < ops; ++i) {
        rpc::Encoder header;
        header.U64(*cont).U64(oid.hi).U64(oid.lo).Str(dkey).Str("a");
        header.Bytes(value);
        auto id = client.CallAsync(
            std::uint32_t(daos::DaosOpcode::kSingleUpdate), header);
        if (!id.ok()) {
          ok[t] = 0;
          return;
        }
        outstanding.push_back(*id);
        while (!outstanding.empty() && client.Done(outstanding.front())) {
          if (!client.Take(outstanding.front()).ok()) ok[t] = 0;
          outstanding.pop_front();
        }
      }
      if (!client.Flush().ok()) ok[t] = 0;
      while (!outstanding.empty()) {
        if (!client.Take(outstanding.front()).ok()) ok[t] = 0;
        outstanding.pop_front();
      }
    });
  }
  for (auto& c : clients) c.join();
  const auto stop = std::chrono::steady_clock::now();
  (*engine)->StopProgressThread();
  for (char c : ok) *all_ok = *all_ok && c;

  const double seconds = std::chrono::duration<double>(stop - start).count();
  return seconds > 0.0 ? double(targets) * double(ops) / seconds : 0.0;
}

constexpr std::uint32_t kTargetCounts[] = {1, 2, 4};

}  // namespace

ROS2_BENCH_EXPERIMENT(micro_mt,
                      "Threaded engine wall-clock throughput vs target "
                      "(xstream worker) count, progress thread serving") {
  ctx.report().MarkRealtime();
  const unsigned cores = std::thread::hardware_concurrency();
  ctx.Note(
      "Single-update storm (64 B values) against a threaded engine: one "
      "closed-loop client thread per target, each client's dkey pinned "
      "to its own target by the placement hash, all replies serialized "
      "by the engine's network progress thread (clients have no pump). "
      "Rates are realtime counters — compare trajectories per machine, "
      "not across machines. The 4-target / 1-target RATIO is gated on "
      "hosts with >= 4 cores (this host: " +
      std::to_string(cores) + ").");

  const int repetitions = ctx.quick() ? 2 : 4;
  const std::uint64_t ops = ctx.quick() ? 1500 : 15000;

  AsciiTable table({"targets", "client threads", "updates/s"});
  bool all_ok = true;
  double rate1 = 0.0;
  double rate4 = 0.0;
  for (std::uint32_t targets : kTargetCounts) {
    double best = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
      best = std::max(best, ThreadedEngineRate(targets, ops, rep, &all_ok));
    }
    if (targets == 1) rate1 = best;
    if (targets == 4) rate4 = best;
    table.AddRow({std::to_string(targets), std::to_string(targets),
                  FormatCount(best) + "updates/s"});
    ctx.Metric("mt_updates_per_sec", "updates_per_sec", best,
               {{"targets", std::to_string(targets)}},
               bench::MetricDirection::kHigherIsBetter);
  }
  ctx.Check("every threaded-engine update succeeded", all_ok);
  // The point of real xstreams: independent targets scale across cores.
  // Ratio, not absolute rate, so it ports across machines — but it needs
  // the cores to exist; a 1-core host time-slices all workers and the
  // check must not penalize it.
  if (cores >= 4) {
    ctx.Check("4-target updates/s >= 2x 1-target (host has >= 4 cores)",
              rate4 >= 2.0 * rate1);
  } else {
    ctx.Note("scaling gate skipped: host has " + std::to_string(cores) +
             " core(s) < 4, workers time-slice and the 2x ratio is "
             "unmeasurable — check passes vacuously");
    ctx.Check("4-target updates/s >= 2x 1-target (host has >= 4 cores)",
              true);
  }
  ctx.Metric("mt_scaling_1_to_4", "ratio", rate1 > 0.0 ? rate4 / rate1 : 0.0,
             {}, bench::MetricDirection::kHigherIsBetter);
  ctx.Table("Threaded engine throughput vs target count (wall clock)",
            table);
}

ROS2_BENCH_MAIN()
