// Ablation: multi-tenant QoS on the DPU (§5 "per-tenant queues and rate
// limits"). Shows (1) timed aggregate throughput under per-tenant caps and
// (2) a functional demonstration that one tenant's rate limit does not
// starve another.
#include <algorithm>
#include <string>

#include "bench/registry.h"
#include "common/bytes.h"
#include "common/table.h"
#include "common/units.h"
#include "fio/fio.h"

using namespace ros2;

namespace {

bool FunctionalIsolationCheck() {
  core::Ros2Cluster cluster;
  core::TenantConfig capped;
  capped.name = "capped";
  capped.auth_token = "k";
  capped.rate_limit_bps = 4096.0;  // tiny: exhausts immediately
  capped.burst_bytes = 4096;
  core::TenantConfig open;
  open.name = "open";
  open.auth_token = "k";
  if (!cluster.tenants()->Register(capped).ok()) return false;
  if (!cluster.tenants()->Register(open).ok()) return false;

  auto connect = [&](const char* name, const char* cont) {
    core::ClientConfig config;
    config.platform = perf::Platform::kBlueField3;
    config.transport = net::Transport::kRdma;
    config.tenant_name = name;
    config.tenant_token = "k";
    config.container_label = cont;
    return core::Ros2Client::Connect(&cluster, config);
  };
  auto capped_client = connect("capped", "cont-capped");
  auto open_client = connect("open", "cont-open");
  if (!capped_client.ok() || !open_client.ok()) return false;

  dfs::OpenFlags flags;
  flags.create = true;
  auto cfd = (*capped_client)->Open("/f", flags);
  auto ofd = (*open_client)->Open("/f", flags);
  if (!cfd.ok() || !ofd.ok()) return false;
  Buffer chunk(4096);
  // Capped tenant: first write spends the burst, second is rejected.
  if (!(*capped_client)->Pwrite(*cfd, 0, chunk).ok()) return false;
  if ((*capped_client)->Pwrite(*cfd, 4096, chunk).code() !=
      ErrorCode::kResourceExhausted) {
    return false;
  }
  // Open tenant is unaffected (isolation).
  for (int i = 0; i < 16; ++i) {
    if (!(*open_client)->Pwrite(*ofd, i * 4096, chunk).ok()) return false;
  }
  return true;
}

}  // namespace

ROS2_BENCH_EXPERIMENT(ablation_multitenant,
                      "Ablation: multi-tenant QoS (per-tenant rate limits "
                      "on the DPU)") {
  ctx.Check("rate-limited tenant cannot starve an open tenant",
            FunctionalIsolationCheck());
  ctx.Note(
      "Timed: N tenants sharing a BlueField-3 RDMA deployment, each capped "
      "at the listed rate; sequential 1 MiB reads, 16 jobs, 4 SSDs.");
  AsciiTable table({"tenants", "per-tenant cap", "aggregate", "uncapped",
                    "enforcement"});
  for (std::uint32_t tenants : {2u, 4u, 8u}) {
    for (double cap_gib : {0.5, 1.0, 2.0}) {
      perf::DfsModel::Config config;
      config.platform = perf::Platform::kBlueField3;
      config.transport = net::Transport::kRdma;
      config.num_ssds = 4;
      config.num_jobs = 16;
      config.op = perf::OpKind::kRead;
      config.block_size = kMiB;
      config.tenants = tenants;
      config.per_tenant_bw = cap_gib * double(kGiB);
      perf::DfsModel capped(config);
      const double agg = capped.Run(ctx.ops(20000)).bytes_per_sec;

      config.tenants = 1;
      config.per_tenant_bw = 0.0;
      perf::DfsModel uncapped(config);
      const double free_run = uncapped.Run(ctx.ops(20000)).bytes_per_sec;

      const double expected = std::min(tenants * cap_gib * double(kGiB),
                                       free_run);
      const bool enforced = agg < expected * 1.15;
      table.AddRow({std::to_string(tenants),
                    FormatBandwidth(cap_gib * double(kGiB)),
                    FormatBandwidth(agg), FormatBandwidth(free_run),
                    enforced ? "ok" : "VIOLATED"});
      const bench::Params params = {
          {"tenants", std::to_string(tenants)},
          {"cap_gib", std::to_string(cap_gib)}};
      ctx.Metric("aggregate_throughput", "bytes_per_sec", agg, params);
      ctx.Metric("uncapped_throughput", "bytes_per_sec", free_run, params);
      ctx.Check("cap enforced for tenants=" + std::to_string(tenants) +
                    " cap=" + FormatBandwidth(cap_gib * double(kGiB)),
                enforced);
    }
  }
  ctx.Table("Aggregate throughput under per-tenant caps", table);
}

ROS2_BENCH_MAIN()
