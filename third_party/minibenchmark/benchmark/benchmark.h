// minibenchmark — a single-header, zero-dependency google-benchmark
// compatible harness, vendored so bench_micro_transport (and any future
// real-time microbench) builds and runs on machines with no network and no
// libbenchmark install. Mirrors third_party/minigtest's role for tests.
//
// Implemented subset (everything bench/ uses today, plus headroom):
//   * BENCHMARK, BENCHMARK_CAPTURE, BENCHMARK_MAIN
//   * benchmark::State: range-for + KeepRunning() iteration, range(i),
//     SetBytesProcessed/SetItemsProcessed, SetLabel, counters (with
//     Counter::kIsRate / kAvgIterations / kIsIterationInvariant flags),
//     PauseTiming/ResumeTiming, SkipWithError
//   * builder chain: Arg/Args/Range/RangeMultiplier/DenseRange/Ranges/
//     Unit/MinTime/Iterations/Name (UseRealTime/Threads/Repetitions are
//     accepted no-ops; the shim is single-threaded, repetitions = 1)
//   * flags: --benchmark_filter, --benchmark_min_time (0.25s / 500x),
//     --benchmark_format=console|json, --benchmark_out=<file>,
//     --benchmark_out_format, --benchmark_list_tests
//   * adaptive timing: iteration count grows until a run covers min_time,
//     like google-benchmark's predict-and-retry loop
//
// Known divergences, chosen for zero dependencies:
//   * --benchmark_filter uses gtest-style '*'/'?' wildcards (searched as a
//     substring unless anchored with '^'/'$') instead of full regex.
//   * JSON context omits host CPU scaling/cache probing; benchmark entries
//     carry the same fields google-benchmark emits for single-repetition
//     runs (name, run_name, run_type, iterations, real_time, cpu_time,
//     time_unit, bytes_per_second, items_per_second, label, counters).
//
// Build with -DROS2_USE_SYSTEM_BENCHMARK=ON to use a real google-benchmark
// install instead; this header is API-compatible for everything in bench/.
//
// Extensions beyond google-benchmark (guarded by MINIBENCHMARK so the
// selftest can exercise the harness in-process): benchmark::internal::
// GetFlags(), RunFiltered(), WriteConsoleReport(), WriteJsonReport().
#pragma once

#define MINIBENCHMARK 1

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

class Counter {
 public:
  enum Flags : std::uint32_t {
    kDefaults = 0,
    /// Divided by the run's real elapsed time.
    kIsRate = 1u << 0,
    /// Accepted for source compatibility; the shim is single-threaded.
    kAvgThreads = 1u << 1,
    kAvgThreadsRate = kIsRate | kAvgThreads,
    /// Multiplied by the iteration count (value is per-iteration).
    kIsIterationInvariant = 1u << 2,
    kIsIterationInvariantRate = kIsRate | kIsIterationInvariant,
    /// Divided by the iteration count.
    kAvgIterations = 1u << 3,
    kAvgIterationsRate = kIsRate | kAvgIterations,
  };

  double value = 0.0;
  Flags flags = kDefaults;

  Counter(double v = 0.0, Flags f = kDefaults) : value(v), flags(f) {}
  Counter& operator=(double v) {
    value = v;
    return *this;
  }
  operator double() const { return value; }
};

using UserCounters = std::map<std::string, Counter>;

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

inline const char* GetTimeUnitString(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

inline double GetTimeUnitMultiplier(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

// ---------------------------------------------------------------------------
// DoNotOptimize / ClobberMemory
// ---------------------------------------------------------------------------

template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

template <class T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

namespace internal {
class BenchmarkRunner;

inline double RealNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double CpuNow() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
  }
#endif
  return double(std::clock()) / double(CLOCKS_PER_SEC);
}
}  // namespace internal

class State {
 public:
  State(std::int64_t max_iterations, std::vector<std::int64_t> ranges)
      : max_iterations(max_iterations), ranges_(std::move(ranges)) {}

  struct StateIterator {
    // The attribute keeps `for (auto _ : state)` clean under
    // -Wunused-but-set-variable (same device as google-benchmark's
    // BENCHMARK_UNUSED).
    struct __attribute__((unused)) Value {};
    explicit StateIterator(State* state)
        : state_(state), remaining_(state ? state->max_iterations : 0) {}
    Value operator*() const { return Value{}; }
    StateIterator& operator++() {
      --remaining_;
      return *this;
    }
    bool operator!=(const StateIterator& /*end*/) const {
      if (remaining_ != 0 && !state_->skipped_) return true;
      state_->FinishKeepRunning(state_->max_iterations - remaining_);
      return false;
    }
    State* state_;
    std::int64_t remaining_;
  };

  StateIterator begin() {
    StartKeepRunning();
    return StateIterator(this);
  }
  StateIterator end() { return StateIterator(nullptr); }

  bool KeepRunning() {
    if (!started_) StartKeepRunning();
    if (completed_ < max_iterations && !skipped_) {
      ++completed_;
      return true;
    }
    FinishKeepRunning(completed_);
    return false;
  }

  void PauseTiming() {
    real_elapsed_ += internal::RealNow() - real_start_;
    cpu_elapsed_ += internal::CpuNow() - cpu_start_;
  }

  void ResumeTiming() {
    real_start_ = internal::RealNow();
    cpu_start_ = internal::CpuNow();
  }

  void SkipWithError(const char* message) {
    skipped_ = true;
    error_message_ = message == nullptr ? "" : message;
  }

  bool error_occurred() const { return skipped_; }

  std::int64_t range(std::size_t index = 0) const {
    return index < ranges_.size() ? ranges_[index] : 0;
  }

  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  std::int64_t bytes_processed() const { return bytes_processed_; }

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }

  void SetLabel(const std::string& label) { label_ = label; }

  /// Iterations completed: the full budget once the loop has finished (the
  /// common post-loop use), the running count mid-loop under KeepRunning().
  std::int64_t iterations() const {
    return finished_ ? iterations_done_ : completed_;
  }

  const std::int64_t max_iterations;
  UserCounters counters;

 private:
  friend struct StateIterator;
  friend class internal::BenchmarkRunner;

  void StartKeepRunning() {
    started_ = true;
    ResumeTiming();
  }

  void FinishKeepRunning(std::int64_t done) {
    if (finished_) return;
    PauseTiming();
    finished_ = true;
    iterations_done_ = done;
  }

  std::vector<std::int64_t> ranges_;
  bool started_ = false;
  bool finished_ = false;
  bool skipped_ = false;
  std::string error_message_;
  std::int64_t completed_ = 0;
  std::int64_t iterations_done_ = 0;
  std::int64_t bytes_processed_ = -1;
  std::int64_t items_processed_ = -1;
  std::string label_;
  double real_start_ = 0.0;
  double cpu_start_ = 0.0;
  double real_elapsed_ = 0.0;
  double cpu_elapsed_ = 0.0;
};

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

namespace internal {

class Benchmark {
 public:
  Benchmark(std::string name, std::function<void(State&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  Benchmark* Arg(std::int64_t x) {
    args_list_.push_back({x});
    return this;
  }

  Benchmark* Args(const std::vector<std::int64_t>& xs) {
    args_list_.push_back(xs);
    return this;
  }

  Benchmark* Range(std::int64_t lo, std::int64_t hi) {
    std::vector<std::int64_t> values;
    AddRange(&values, lo, hi, range_multiplier_);
    for (std::int64_t v : values) Arg(v);
    return this;
  }

  Benchmark* DenseRange(std::int64_t lo, std::int64_t hi,
                        std::int64_t step = 1) {
    for (std::int64_t v = lo; v <= hi; v += step) Arg(v);
    return this;
  }

  /// Cartesian product of per-dimension Range() sequences.
  Benchmark* Ranges(
      const std::vector<std::pair<std::int64_t, std::int64_t>>& ranges) {
    std::vector<std::vector<std::int64_t>> dims;
    for (const auto& [lo, hi] : ranges) {
      dims.emplace_back();
      AddRange(&dims.back(), lo, hi, range_multiplier_);
    }
    std::vector<std::size_t> index(dims.size(), 0);
    for (;;) {
      std::vector<std::int64_t> args;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        args.push_back(dims[d][index[d]]);
      }
      args_list_.push_back(std::move(args));
      std::size_t d = dims.size();
      while (d > 0) {
        --d;
        if (++index[d] < dims[d].size()) break;
        index[d] = 0;
        if (d == 0) return this;
      }
    }
  }

  Benchmark* RangeMultiplier(int multiplier) {
    range_multiplier_ = multiplier < 2 ? 2 : multiplier;
    return this;
  }

  Benchmark* MinTime(double seconds) {
    min_time_ = seconds;
    return this;
  }

  Benchmark* Iterations(std::int64_t n) {
    fixed_iterations_ = n;
    return this;
  }

  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }

  Benchmark* Name(std::string name) {
    name_ = std::move(name);
    return this;
  }

  // Accepted no-ops (single-threaded, single-repetition shim).
  Benchmark* UseRealTime() { return this; }
  Benchmark* UseManualTime() { return this; }
  Benchmark* Threads(int) { return this; }
  Benchmark* ThreadRange(int, int) { return this; }
  Benchmark* Repetitions(int) { return this; }
  Benchmark* ReportAggregatesOnly(bool = true) { return this; }

  const std::string& name() const { return name_; }
  const std::function<void(State&)>& fn() const { return fn_; }
  const std::vector<std::vector<std::int64_t>>& args_list() const {
    return args_list_;
  }
  double min_time() const { return min_time_; }
  std::int64_t fixed_iterations() const { return fixed_iterations_; }
  TimeUnit unit() const { return unit_; }

 private:
  static void AddRange(std::vector<std::int64_t>* dst, std::int64_t lo,
                       std::int64_t hi, int multiplier) {
    dst->push_back(lo);
    if (hi <= lo) return;
    // lo <= 0 would make v *= multiplier loop forever; like
    // google-benchmark, fill the gap with powers of the multiplier from 1.
    for (std::int64_t v = lo > 0 ? lo * multiplier : 1; v < hi;
         v *= multiplier) {
      if (v > lo) dst->push_back(v);
      if (v > hi / multiplier) break;  // overflow guard
    }
    dst->push_back(hi);
  }

  std::string name_;
  std::function<void(State&)> fn_;
  std::vector<std::vector<std::int64_t>> args_list_;
  int range_multiplier_ = 8;
  double min_time_ = 0.0;  // 0 = use the --benchmark_min_time flag
  std::int64_t fixed_iterations_ = 0;
  TimeUnit unit_ = kNanosecond;
};

inline std::vector<std::unique_ptr<Benchmark>>& Registry() {
  static std::vector<std::unique_ptr<Benchmark>> registry;
  return registry;
}

inline Benchmark* RegisterBenchmarkInternal(std::string name,
                                            std::function<void(State&)> fn) {
  Registry().push_back(
      std::make_unique<Benchmark>(std::move(name), std::move(fn)));
  return Registry().back().get();
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

struct FlagState {
  std::string filter;  // empty = run everything
  std::string format = "console";
  std::string out;
  std::string out_format = "json";
  double min_time_s = 0.5;
  std::int64_t min_time_iters = 0;  // from the "500x" form; 0 = time-based
  bool list_tests = false;
  std::string executable = "benchmark";
};

inline FlagState& GetFlags() {
  static FlagState flags;
  return flags;
}

/// "0.25s" / "0.25" -> seconds; "500x" -> fixed iteration count.
inline bool ParseMinTime(const std::string& text, FlagState* flags) {
  if (text.empty()) return false;
  if (text.back() == 'x') {
    flags->min_time_iters = std::atoll(text.c_str());
    return flags->min_time_iters > 0;
  }
  const double seconds = std::atof(text.c_str());
  if (seconds <= 0.0) return false;
  flags->min_time_s = seconds;
  flags->min_time_iters = 0;
  return true;
}

// Wildcard ('*'/'?') match, full-string.
inline bool WildcardMatch(const char* pattern, const char* text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*') {
    return WildcardMatch(pattern + 1, text) ||
           (*text != '\0' && WildcardMatch(pattern, text + 1));
  }
  if (*text == '\0') return false;
  if (*pattern == '?' || *pattern == *text) {
    return WildcardMatch(pattern + 1, text + 1);
  }
  return false;
}

/// google-benchmark filters are regexes applied as a search; the shim's
/// subset: '*'/'?' wildcards, searched anywhere unless anchored with
/// '^' / '$'.
inline bool MatchesFilter(const std::string& filter, const std::string& name) {
  if (filter.empty() || filter == "all") return true;
  std::string pattern = filter;
  bool anchor_front = false;
  bool anchor_back = false;
  if (!pattern.empty() && pattern.front() == '^') {
    anchor_front = true;
    pattern.erase(pattern.begin());
  }
  if (!pattern.empty() && pattern.back() == '$') {
    anchor_back = true;
    pattern.pop_back();
  }
  if (!anchor_front) pattern.insert(pattern.begin(), '*');
  if (!anchor_back) pattern.push_back('*');
  return WildcardMatch(pattern.c_str(), name.c_str());
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

struct RunResult {
  std::string name;
  std::string time_unit = "ns";
  std::int64_t iterations = 0;
  double real_time = 0.0;  // per-iteration, in time_unit
  double cpu_time = 0.0;   // per-iteration, in time_unit
  double bytes_per_second = -1.0;  // < 0 = not reported
  double items_per_second = -1.0;
  std::string label;
  bool skipped = false;
  std::string error_message;
  std::vector<std::pair<std::string, double>> counters;
};

struct RunSpec {
  std::string name;
  const Benchmark* benchmark = nullptr;
  std::vector<std::int64_t> args;
};

inline std::vector<RunSpec> ExpandRegistry() {
  std::vector<RunSpec> specs;
  for (const auto& bench : Registry()) {
    if (bench->args_list().empty()) {
      specs.push_back({bench->name(), bench.get(), {}});
      continue;
    }
    for (const auto& args : bench->args_list()) {
      std::string name = bench->name();
      for (std::int64_t arg : args) name += "/" + std::to_string(arg);
      specs.push_back({std::move(name), bench.get(), args});
    }
  }
  return specs;
}

class BenchmarkRunner {
 public:
  static RunResult Run(const RunSpec& spec, const FlagState& flags) {
    const Benchmark& bench = *spec.benchmark;
    const double min_time =
        bench.min_time() > 0.0 ? bench.min_time() : flags.min_time_s;
    std::int64_t iters = 1;
    bool fixed = false;
    if (bench.fixed_iterations() > 0) {
      iters = bench.fixed_iterations();
      fixed = true;
    } else if (flags.min_time_iters > 0) {
      iters = flags.min_time_iters;
      fixed = true;
    }
    constexpr std::int64_t kMaxIters = std::int64_t(1) << 30;
    for (;;) {
      State state(iters, spec.args);
      bench.fn()(state);
      if (!state.finished_) state.FinishKeepRunning(state.completed_);
      if (state.skipped_) {
        RunResult result;
        result.name = spec.name;
        result.skipped = true;
        result.error_message = state.error_message_;
        return result;
      }
      if (fixed || state.real_elapsed_ >= min_time || iters >= kMaxIters) {
        return Summarize(spec, bench, state);
      }
      // Predict the iteration count that covers min_time, with google-
      // benchmark's safety margin and growth clamps.
      double multiplier = 10.0;
      if (state.real_elapsed_ > 1e-9) {
        multiplier = min_time * 1.4 / state.real_elapsed_;
        multiplier = std::min(10.0, std::max(2.0, multiplier));
      }
      iters = std::min<std::int64_t>(
          kMaxIters, std::int64_t(double(iters) * multiplier) + 1);
    }
  }

 private:
  static RunResult Summarize(const RunSpec& spec, const Benchmark& bench,
                             const State& state) {
    RunResult result;
    result.name = spec.name;
    result.iterations = state.iterations_done_;
    const double unit_scale = GetTimeUnitMultiplier(bench.unit());
    result.time_unit = GetTimeUnitString(bench.unit());
    const double iterations = double(std::max<std::int64_t>(
        state.iterations_done_, 1));
    result.real_time = state.real_elapsed_ / iterations * unit_scale;
    result.cpu_time = state.cpu_elapsed_ / iterations * unit_scale;
    const double elapsed =
        state.real_elapsed_ > 0.0 ? state.real_elapsed_ : 1e-12;
    if (state.bytes_processed_ >= 0) {
      result.bytes_per_second = double(state.bytes_processed_) / elapsed;
    }
    if (state.items_processed_ >= 0) {
      result.items_per_second = double(state.items_processed_) / elapsed;
    }
    result.label = state.label_;
    for (const auto& [name, counter] : state.counters) {
      double value = counter.value;
      if (counter.flags & Counter::kIsIterationInvariant) value *= iterations;
      if (counter.flags & Counter::kAvgIterations) value /= iterations;
      if (counter.flags & Counter::kIsRate) value /= elapsed;
      result.counters.emplace_back(name, value);
    }
    return result;
  }
};

inline std::vector<RunResult> RunFiltered(const FlagState& flags) {
  std::vector<RunResult> results;
  for (const auto& spec : ExpandRegistry()) {
    if (!MatchesFilter(flags.filter, spec.name)) continue;
    results.push_back(BenchmarkRunner::Run(spec, flags));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

/// "1.2345G/s"-style human bandwidth (binary units, like google-benchmark).
inline std::string HumanRate(double per_second) {
  static const char* kSuffixes[] = {"", "k", "M", "G", "T"};
  int suffix = 0;
  while (per_second >= 1024.0 && suffix < 4) {
    per_second /= 1024.0;
    ++suffix;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g%s/s", per_second,
                kSuffixes[suffix]);
  return buffer;
}

inline std::string Pad(const std::string& text, std::size_t width,
                       bool right) {
  if (text.size() >= width) return text;
  const std::string fill(width - text.size(), ' ');
  return right ? fill + text : text + fill;
}

inline std::string FormatTimeCell(double value) {
  char buffer[64];
  if (value < 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  } else if (value < 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  }
  return buffer;
}

inline void WriteConsoleReport(std::ostream& out,
                               const std::vector<RunResult>& results) {
  std::size_t name_width = std::strlen("Benchmark");
  for (const auto& result : results) {
    name_width = std::max(name_width, result.name.size());
  }
  const std::string rule(name_width + 44, '-');
  out << rule << '\n';
  out << Pad("Benchmark", name_width, false) << Pad("Time", 15, true)
      << Pad("CPU", 16, true) << Pad("Iterations", 13, true) << '\n';
  out << rule << '\n';
  for (const auto& result : results) {
    if (result.skipped) {
      out << Pad(result.name, name_width, false) << " ERROR: '"
          << result.error_message << "'\n";
      continue;
    }
    out << Pad(result.name, name_width, false)
        << Pad(FormatTimeCell(result.real_time) + " " + result.time_unit, 15,
               true)
        << Pad(FormatTimeCell(result.cpu_time) + " " + result.time_unit, 16,
               true)
        << Pad(std::to_string(result.iterations), 13, true);
    if (result.bytes_per_second >= 0.0) {
      out << " bytes_per_second=" << HumanRate(result.bytes_per_second);
    }
    if (result.items_per_second >= 0.0) {
      out << " items_per_second=" << HumanRate(result.items_per_second);
    }
    for (const auto& [name, value] : result.counters) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
      out << ' ' << name << '=' << buffer;
    }
    if (!result.label.empty()) out << ' ' << result.label;
    out << '\n';
  }
}

inline std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// google-benchmark-shaped JSON: {"context": {...}, "benchmarks": [...]}.
inline void WriteJsonReport(std::ostream& out,
                            const std::vector<RunResult>& results,
                            const FlagState& flags) {
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"" << JsonEscape(flags.executable) << "\",\n"
      << "    \"library\": \"minibenchmark\",\n"
      << "    \"library_version\": \"1.0\",\n"
      << "    \"num_threads\": 1\n"
      << "  },\n  \"benchmarks\": [";
  bool first = true;
  for (const auto& result : results) {
    if (!first) out << ',';
    first = false;
    out << "\n    {\n      \"name\": \"" << JsonEscape(result.name) << "\",\n"
        << "      \"run_name\": \"" << JsonEscape(result.name) << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"repetitions\": 1,\n"
        << "      \"repetition_index\": 0,\n"
        << "      \"threads\": 1,\n";
    if (result.skipped) {
      out << "      \"error_occurred\": true,\n"
          << "      \"error_message\": \""
          << JsonEscape(result.error_message) << "\",\n";
    }
    out << "      \"iterations\": " << result.iterations << ",\n"
        << "      \"real_time\": " << JsonNumber(result.real_time) << ",\n"
        << "      \"cpu_time\": " << JsonNumber(result.cpu_time) << ",\n"
        << "      \"time_unit\": \"" << result.time_unit << "\"";
    if (result.bytes_per_second >= 0.0) {
      out << ",\n      \"bytes_per_second\": "
          << JsonNumber(result.bytes_per_second);
    }
    if (result.items_per_second >= 0.0) {
      out << ",\n      \"items_per_second\": "
          << JsonNumber(result.items_per_second);
    }
    for (const auto& [name, value] : result.counters) {
      out << ",\n      \"" << JsonEscape(name)
          << "\": " << JsonNumber(value);
    }
    if (!result.label.empty()) {
      out << ",\n      \"label\": \"" << JsonEscape(result.label) << "\"";
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

inline void Initialize(int* argc, char** argv) {
  internal::FlagState& flags = internal::GetFlags();
  if (argc == nullptr || argv == nullptr) return;
  if (*argc > 0) flags.executable = argv[0];
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--benchmark_filter=", 0) == 0) {
      flags.filter = value_of("--benchmark_filter=");
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      if (!internal::ParseMinTime(value_of("--benchmark_min_time="),
                                  &flags)) {
        std::fprintf(stderr, "minibenchmark: bad --benchmark_min_time '%s'\n",
                     arg.c_str());
      }
    } else if (arg.rfind("--benchmark_format=", 0) == 0) {
      flags.format = value_of("--benchmark_format=");
    } else if (arg.rfind("--benchmark_out_format=", 0) == 0) {
      flags.out_format = value_of("--benchmark_out_format=");
    } else if (arg.rfind("--benchmark_out=", 0) == 0) {
      flags.out = value_of("--benchmark_out=");
    } else if (arg == "--benchmark_list_tests" ||
               arg == "--benchmark_list_tests=true") {
      flags.list_tests = true;
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Recognized-family flag the shim doesn't implement: accept silently
      // (google-benchmark also tolerates e.g. repetition flags it defaults).
    } else {
      argv[kept++] = argv[i];
      continue;
    }
  }
  *argc = kept;
}

inline bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "minibenchmark: unrecognized argument '%s'\n",
                 argv[i]);
  }
  return argc > 1;
}

inline std::size_t RunSpecifiedBenchmarks() {
  const internal::FlagState& flags = internal::GetFlags();
  if (flags.list_tests) {
    for (const auto& spec : internal::ExpandRegistry()) {
      if (internal::MatchesFilter(flags.filter, spec.name)) {
        std::printf("%s\n", spec.name.c_str());
      }
    }
    return 0;
  }
  const auto results = internal::RunFiltered(flags);
  std::ostringstream buffer;
  if (flags.format == "json") {
    internal::WriteJsonReport(buffer, results, flags);
  } else {
    internal::WriteConsoleReport(buffer, results);
  }
  std::fputs(buffer.str().c_str(), stdout);
  if (!flags.out.empty()) {
    std::ofstream file(flags.out);
    if (!file) {
      std::fprintf(stderr, "minibenchmark: cannot write '%s'\n",
                   flags.out.c_str());
    } else {
      std::ostringstream file_buffer;
      if (flags.out_format == "console") {
        internal::WriteConsoleReport(file_buffer, results);
      } else {
        internal::WriteJsonReport(file_buffer, results, flags);
      }
      file << file_buffer.str();
    }
  }
  return results.size();
}

inline void Shutdown() {}

}  // namespace benchmark

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#define MINIBENCHMARK_CONCAT_(a, b) a##b
#define MINIBENCHMARK_CONCAT(a, b) MINIBENCHMARK_CONCAT_(a, b)

#define BENCHMARK(func)                                                \
  [[maybe_unused]] static ::benchmark::internal::Benchmark*            \
      MINIBENCHMARK_CONCAT(benchmark_uniq_, __LINE__) =                \
          ::benchmark::internal::RegisterBenchmarkInternal(#func, func)

#define BENCHMARK_CAPTURE(func, test_case_name, ...)                   \
  [[maybe_unused]] static ::benchmark::internal::Benchmark*            \
      MINIBENCHMARK_CONCAT(benchmark_uniq_, __LINE__) =                \
          ::benchmark::internal::RegisterBenchmarkInternal(            \
              #func "/" #test_case_name, [](::benchmark::State& st) {  \
                func(st, __VA_ARGS__);                                 \
              })

#define BENCHMARK_MAIN()                                               \
  int main(int argc, char** argv) {                                    \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    ::benchmark::Shutdown();                                           \
    return 0;                                                          \
  }
