// minigtest — a zero-dependency, single-header, GoogleTest-compatible test
// harness vendored so the repo builds and tests offline.
//
// It implements the subset of the GoogleTest API this repository actually
// uses (see tests/):
//   * TEST, TEST_F, TEST_P + INSTANTIATE_TEST_SUITE_P
//   * ::testing::Test fixtures with SetUp()/TearDown() and static
//     SetUpTestSuite()/TearDownTestSuite() run at suite boundaries
//     (TearDown always runs once SetUp has started, even on a throw)
//   * ::testing::TestWithParam<T>, ::testing::Values, ::testing::Combine,
//     ::testing::Bool, ::testing::Range, ::testing::TestParamInfo
//   * EXPECT_/ASSERT_ {TRUE, FALSE, EQ, NE, LT, LE, GT, GE, NEAR,
//     DOUBLE_EQ, FLOAT_EQ, STREQ, STRNE} with `<< "extra message"` streaming
//   * ADD_FAILURE, FAIL, SUCCEED, GTEST_SKIP
//   * ::testing::InitGoogleTest (--gtest_filter / --gtest_list_tests) and
//     RUN_ALL_TESTS with gtest-style console output
//
// Failures are reported with file:line and the printed values of both
// operands; ASSERT_* aborts the current test (by returning from it) while
// EXPECT_* continues. Nothing here calls abort()/exit() on a test failure,
// so one bad assertion can never take down the whole suite binary.
//
// Build with -DROS2_USE_SYSTEM_GTEST=ON to use a real GoogleTest install
// instead; this header is API-compatible for everything under tests/.
//
// Extensions beyond GoogleTest (guarded by MINIGTEST so shim-only tests can
// detect them): ::testing::internal::ScopedFailureCapture, which diverts
// assertion failures into a buffer so the selftest can exercise failing
// assertions without failing or killing the suite.
#pragma once

#define MINIGTEST 1

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---------------------------------------------------------------------------
// Value printing
// ---------------------------------------------------------------------------

namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
struct IsTupleLike : std::false_type {};
template <typename... Ts>
struct IsTupleLike<std::tuple<Ts...>> : std::true_type {};
template <typename A, typename B>
struct IsTupleLike<std::pair<A, B>> : std::true_type {};

template <typename T>
void UniversalPrint(const T& value, std::ostream& os);

template <typename Tuple, std::size_t... I>
void PrintTupleTo(const Tuple& t, std::ostream& os, std::index_sequence<I...>) {
  os << "(";
  std::size_t n = 0;
  ((os << (n++ ? ", " : ""), UniversalPrint(std::get<I>(t), os)), ...);
  os << ")";
}

template <typename T>
void UniversalPrint(const T& value, std::ostream& os) {
  using D = std::remove_cv_t<std::remove_reference_t<T>>;
  if constexpr (std::is_same_v<D, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (std::is_same_v<D, std::nullptr_t>) {
    os << "nullptr";
  } else if constexpr (std::is_same_v<D, std::byte>) {
    os << static_cast<unsigned>(value);
  } else if constexpr (IsStreamable<D>::value) {
    os << value;
  } else if constexpr (std::is_enum_v<D>) {
    os << static_cast<long long>(static_cast<std::underlying_type_t<D>>(value));
  } else if constexpr (IsTupleLike<D>::value) {
    PrintTupleTo(value, os,
                 std::make_index_sequence<std::tuple_size_v<D>>{});
  } else {
    // Fall back to a hex dump of the object representation, like gtest.
    const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
    os << "<" << sizeof(D) << "-byte object:";
    for (std::size_t i = 0; i < sizeof(D); ++i) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), " %02X", bytes[i]);
      os << buf;
    }
    os << ">";
  }
}

template <typename T>
std::string PrintToString(const T& value) {
  std::ostringstream os;
  UniversalPrint(value, os);
  return os.str();
}

}  // namespace internal

template <typename T>
std::string PrintToString(const T& value) {
  return internal::PrintToString(value);
}

// ---------------------------------------------------------------------------
// Messages and assertion results
// ---------------------------------------------------------------------------

/// Stream accumulator for `EXPECT_X(...) << "context"` trailers.
class Message {
 public:
  Message() = default;
  template <typename T>
  Message& operator<<(const T& value) {
    internal::UniversalPrint(value, ss_);
    return *this;
  }
  std::string GetString() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

/// Boolean verdict plus explanatory text, contextually convertible to bool.
class AssertionResult {
 public:
  explicit AssertionResult(bool ok) : ok_(ok) {}
  explicit operator bool() const { return ok_; }
  const char* message() const { return message_.c_str(); }
  const char* failure_message() const { return message_.c_str(); }
  template <typename T>
  AssertionResult& operator<<(const T& value) {
    std::ostringstream os;
    internal::UniversalPrint(value, os);
    message_ += os.str();
    return *this;
  }

 private:
  bool ok_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

// ---------------------------------------------------------------------------
// Test registry and results
// ---------------------------------------------------------------------------

class Test;

namespace internal {

struct TestResult {
  bool failed = false;
  bool fatal = false;
  bool skipped = false;
};

/// Diverts failures during the capture's lifetime (selftest extension).
struct FailureRecord {
  std::string file;
  int line = 0;
  bool fatal = false;
  std::string text;
};

struct RegisteredTest {
  std::string suite;
  std::string name;
  std::function<Test*()> factory;
  // Static SetUpTestSuite/TearDownTestSuite of the fixture (no-ops from
  // ::testing::Test unless the fixture shadows them). Run at suite
  // boundaries by the runner.
  void (*suite_setup)() = nullptr;
  void (*suite_teardown)() = nullptr;
};

class UnitTestImpl {
 public:
  static UnitTestImpl& Get() {
    static UnitTestImpl instance;
    return instance;
  }

  int AddTest(std::string suite, std::string name,
              std::function<Test*()> factory, void (*suite_setup)() = nullptr,
              void (*suite_teardown)() = nullptr) {
    tests_.push_back({std::move(suite), std::move(name), std::move(factory),
                      suite_setup, suite_teardown});
    return 0;
  }

  // Parameterized suites expand lazily at RUN_ALL_TESTS time so the relative
  // static-init order of TEST_P and INSTANTIATE_TEST_SUITE_P never matters.
  void AddDeferredExpansion(std::function<void()> fn) {
    deferred_.push_back(std::move(fn));
  }

  void RunDeferredExpansions() {
    // Expansions may themselves be registered while others run; index loop.
    for (std::size_t i = 0; i < deferred_.size(); ++i) deferred_[i]();
    deferred_.clear();
  }

  std::vector<RegisteredTest>& tests() { return tests_; }

  TestResult* current_result = nullptr;
  std::vector<std::vector<FailureRecord>*> capture_stack;
  std::string filter = "*";
  bool list_only = false;
  // Failures recorded outside any running test (e.g. from helpers invoked in
  // static init) still fail the binary.
  bool orphan_failure = false;

 private:
  std::vector<RegisteredTest> tests_;
  std::vector<std::function<void()>> deferred_;
};

inline void RecordFailure(const char* file, int line, bool fatal,
                          const std::string& summary,
                          const std::string& user_message) {
  auto& impl = UnitTestImpl::Get();
  std::string text = summary;
  if (!user_message.empty()) text += "\n" + user_message;
  if (!impl.capture_stack.empty()) {
    impl.capture_stack.back()->push_back({file, line, fatal, text});
    return;
  }
  std::fprintf(stderr, "%s:%d: Failure\n%s\n", file, line, text.c_str());
  if (impl.current_result != nullptr) {
    impl.current_result->failed = true;
    if (fatal) impl.current_result->fatal = true;
  } else {
    impl.orphan_failure = true;
  }
}

/// RAII capture of assertion failures; while alive, EXPECT/ASSERT failures
/// are appended to records() instead of failing the current test. ASSERT_*
/// still returns out of the enclosing void function. minigtest-only.
class ScopedFailureCapture {
 public:
  ScopedFailureCapture() { UnitTestImpl::Get().capture_stack.push_back(&records_); }
  ~ScopedFailureCapture() { Release(); }
  ScopedFailureCapture(const ScopedFailureCapture&) = delete;
  ScopedFailureCapture& operator=(const ScopedFailureCapture&) = delete;

  /// Stops capturing (idempotent); subsequent failures flow normally again.
  void Release() {
    auto& stack = UnitTestImpl::Get().capture_stack;
    if (active_ && !stack.empty() && stack.back() == &records_) {
      stack.pop_back();
      active_ = false;
    }
  }

  const std::vector<FailureRecord>& records() const { return records_; }
  std::size_t count() const { return records_.size(); }
  bool HasFatal() const {
    for (const auto& r : records_) {
      if (r.fatal) return true;
    }
    return false;
  }

 private:
  std::vector<FailureRecord> records_;
  bool active_ = true;
};

/// Records one failure when assigned a Message (gtest's AssertHelper shape:
/// `helper = Message() << ...` makes the macro a single statement that can
/// be prefixed with `return` for ASSERT_*).
class AssertHelper {
 public:
  AssertHelper(bool fatal, const char* file, int line, std::string summary)
      : fatal_(fatal), file_(file), line_(line), summary_(std::move(summary)) {}
  void operator=(const Message& message) const {
    RecordFailure(file_, line_, fatal_, summary_, message.GetString());
  }

 private:
  bool fatal_;
  const char* file_;
  int line_;
  std::string summary_;
};

/// Marks the current test skipped when assigned a Message (GTEST_SKIP()).
class SkipHelper {
 public:
  SkipHelper(const char* file, int line) : file_(file), line_(line) {}
  void operator=(const Message& message) const {
    auto& impl = UnitTestImpl::Get();
    if (impl.current_result != nullptr) impl.current_result->skipped = true;
    const std::string text = message.GetString();
    if (!text.empty()) {
      std::fprintf(stderr, "%s:%d: Skipped\n%s\n", file_, line_, text.c_str());
    }
  }

 private:
  const char* file_;
  int line_;
};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

inline AssertionResult BoolResult(bool value, const char* expression,
                                  bool expected) {
  if (value == expected) return AssertionSuccess();
  AssertionResult result = AssertionFailure();
  result << "Value of: " << expression << "\n  Actual: "
         << (value ? "true" : "false")
         << "\nExpected: " << (expected ? "true" : "false");
  return result;
}

template <typename A, typename B>
AssertionResult CmpHelperEQ(const char* e1, const char* e2, const A& a,
                            const B& b) {
  if (a == b) return AssertionSuccess();
  AssertionResult result = AssertionFailure();
  result << "Expected equality of these values:\n  " << e1
         << "\n    Which is: " << PrintToString(a) << "\n  " << e2
         << "\n    Which is: " << PrintToString(b);
  return result;
}

#define MINIGTEST_DEFINE_CMP_HELPER_(name, op)                              \
  template <typename A, typename B>                                         \
  AssertionResult CmpHelper##name(const char* e1, const char* e2,           \
                                  const A& a, const B& b) {                 \
    if (a op b) return AssertionSuccess();                                  \
    AssertionResult result = AssertionFailure();                            \
    result << "Expected: (" << e1 << ") " #op " (" << e2                    \
           << "), actual: " << PrintToString(a) << " vs "                   \
           << PrintToString(b);                                             \
    return result;                                                          \
  }

MINIGTEST_DEFINE_CMP_HELPER_(NE, !=)
MINIGTEST_DEFINE_CMP_HELPER_(LT, <)
MINIGTEST_DEFINE_CMP_HELPER_(LE, <=)
MINIGTEST_DEFINE_CMP_HELPER_(GT, >)
MINIGTEST_DEFINE_CMP_HELPER_(GE, >=)
#undef MINIGTEST_DEFINE_CMP_HELPER_

inline AssertionResult CmpHelperNear(const char* e1, const char* e2,
                                     const char* e3, double a, double b,
                                     double tolerance) {
  const double diff = std::fabs(a - b);
  if (diff <= tolerance) return AssertionSuccess();
  AssertionResult result = AssertionFailure();
  result << "The difference between " << e1 << " and " << e2 << " is " << diff
         << ", which exceeds " << e3 << ", where\n"
         << e1 << " evaluates to " << a << ",\n"
         << e2 << " evaluates to " << b << ", and\n"
         << e3 << " evaluates to " << tolerance << ".";
  return result;
}

/// ULP-distance equality for floating point, mirroring gtest's
/// FloatingPoint<T>::AlmostEquals (4 ULPs).
template <typename Raw, typename Bits>
bool AlmostEqualUlps(Raw a, Raw b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  auto biased = [](Bits bits) {
    const Bits sign_mask = Bits(1) << (sizeof(Bits) * 8 - 1);
    return (bits & sign_mask) ? ~bits + 1 : sign_mask | bits;
  };
  Bits ba, bb;
  std::memcpy(&ba, &a, sizeof(Raw));
  std::memcpy(&bb, &b, sizeof(Raw));
  const Bits da = biased(ba), db = biased(bb);
  const Bits dist = da >= db ? da - db : db - da;
  return dist <= 4;
}

template <typename Raw, typename Bits>
AssertionResult CmpHelperFloatingPointEQ(const char* e1, const char* e2,
                                         Raw a, Raw b) {
  if (AlmostEqualUlps<Raw, Bits>(a, b)) return AssertionSuccess();
  AssertionResult result = AssertionFailure();
  std::ostringstream os;
  os.precision(17);
  os << "Expected equality of these values:\n  " << e1
     << "\n    Which is: " << a << "\n  " << e2 << "\n    Which is: " << b;
  result << os.str();
  return result;
}

inline AssertionResult CmpHelperSTREQ(const char* e1, const char* e2,
                                      const char* a, const char* b) {
  if (a == nullptr || b == nullptr) {
    if (a == b) return AssertionSuccess();
  } else if (std::strcmp(a, b) == 0) {
    return AssertionSuccess();
  }
  AssertionResult result = AssertionFailure();
  result << "Expected equality of these values:\n  " << e1
         << "\n    Which is: " << (a ? a : "(null)") << "\n  " << e2
         << "\n    Which is: " << (b ? b : "(null)");
  return result;
}

inline AssertionResult CmpHelperSTRNE(const char* e1, const char* e2,
                                      const char* a, const char* b) {
  const bool equal =
      (a == nullptr || b == nullptr) ? a == b : std::strcmp(a, b) == 0;
  if (!equal) return AssertionSuccess();
  AssertionResult result = AssertionFailure();
  result << "Expected: (" << e1 << ") != (" << e2 << "), actual: both are \""
         << (a ? a : "(null)") << "\"";
  return result;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test fixture base
// ---------------------------------------------------------------------------

class Test {
 public:
  virtual ~Test() = default;
  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

 protected:
  Test() = default;
};

// ---------------------------------------------------------------------------
// Parameterized tests
// ---------------------------------------------------------------------------

template <typename T>
struct TestParamInfo {
  T param;
  std::size_t index = 0;
};

template <typename T>
class WithParamInterface {
 public:
  using ParamType = T;
  static const T& GetParam() { return *current_param_; }
  static void SetParam(const T* param) { current_param_ = param; }

 private:
  static inline const T* current_param_ = nullptr;
};

template <typename T>
class TestWithParam : public Test, public WithParamInterface<T> {};

namespace internal {

/// ::testing::Values(...) — holds heterogeneous literals and converts each to
/// the suite's ParamType only at materialization time (so Values(0, 1u, 2ll)
/// can instantiate a TestWithParam<uint64_t>).
template <typename... Ts>
class ValueArray {
 public:
  explicit ValueArray(Ts... values) : values_(std::move(values)...) {}

  template <typename T>
  std::vector<T> Materialize() const {
    std::vector<T> out;
    out.reserve(sizeof...(Ts));
    std::apply(
        [&out](const auto&... v) {
          (out.push_back(static_cast<T>(v)), ...);
        },
        values_);
    return out;
  }

 private:
  std::tuple<Ts...> values_;
};

/// ::testing::Range(begin, end, step) — half-open arithmetic progression.
template <typename T>
class RangeGenerator {
 public:
  RangeGenerator(T begin, T end, T step)
      : begin_(begin), end_(end), step_(step) {}

  template <typename U>
  std::vector<U> Materialize() const {
    std::vector<U> out;
    for (T v = begin_; v < end_; v = static_cast<T>(v + step_)) {
      out.push_back(static_cast<U>(v));
    }
    return out;
  }

 private:
  T begin_, end_, step_;
};

/// ::testing::Combine(g1, g2, ...) — cartesian product materialized to the
/// suite's std::tuple ParamType; the last generator varies fastest.
template <typename... Gens>
class CartesianProductGenerator {
 public:
  explicit CartesianProductGenerator(Gens... gens)
      : gens_(std::move(gens)...) {}

  template <typename Tuple>
  std::vector<Tuple> Materialize() const {
    return MaterializeImpl<Tuple>(std::make_index_sequence<sizeof...(Gens)>{});
  }

 private:
  template <typename Tuple, std::size_t... I>
  std::vector<Tuple> MaterializeImpl(std::index_sequence<I...>) const {
    constexpr std::size_t kArity = sizeof...(Gens);
    static_assert(std::tuple_size_v<Tuple> == kArity,
                  "Combine() arity must match the suite's tuple ParamType");
    auto axes = std::make_tuple(
        std::get<I>(gens_).template Materialize<std::tuple_element_t<I, Tuple>>()...);
    const std::size_t sizes[kArity] = {std::get<I>(axes).size()...};
    std::size_t strides[kArity];
    std::size_t total = 1;
    for (std::size_t i = kArity; i-- > 0;) {
      strides[i] = total;
      total *= sizes[i];
    }
    std::vector<Tuple> out;
    out.reserve(total);
    for (std::size_t k = 0; k < total; ++k) {
      out.push_back(Tuple(std::get<I>(axes)[(k / strides[I]) % sizes[I]]...));
    }
    return out;
  }

  std::tuple<Gens...> gens_;
};

/// Per-suite registry joining TEST_P bodies with INSTANTIATE_TEST_SUITE_P
/// param sets; the cross product is expanded lazily at RUN_ALL_TESTS.
template <typename Suite>
class ParamRegistry {
 public:
  using ParamType = typename Suite::ParamType;
  using Namer = std::function<std::string(const TestParamInfo<ParamType>&)>;

  static ParamRegistry& Instance() {
    static ParamRegistry registry;
    return registry;
  }

  int AddTest(const char* suite, const char* name,
              std::function<Test*()> factory, void (*suite_setup)() = nullptr,
              void (*suite_teardown)() = nullptr) {
    EnsureDeferred();
    tests_.push_back(
        {suite, name, std::move(factory), suite_setup, suite_teardown});
    return 0;
  }

  template <typename Gen>
  int AddInstantiation(const char* prefix, const Gen& gen) {
    return AddInstantiation(prefix, gen, [](const TestParamInfo<ParamType>& info) {
      return std::to_string(info.index);
    });
  }

  template <typename Gen>
  int AddInstantiation(const char* prefix, const Gen& gen, Namer namer) {
    EnsureDeferred();
    instantiations_.push_back(
        {prefix, gen.template Materialize<ParamType>(), std::move(namer)});
    return 0;
  }

 private:
  struct PTest {
    std::string suite;
    std::string name;
    std::function<Test*()> factory;
    void (*suite_setup)() = nullptr;
    void (*suite_teardown)() = nullptr;
  };
  struct Instantiation {
    std::string prefix;
    std::vector<ParamType> params;
    Namer namer;
  };

  void EnsureDeferred() {
    if (deferred_registered_) return;
    deferred_registered_ = true;
    UnitTestImpl::Get().AddDeferredExpansion([this] { Expand(); });
  }

  void Expand() {
    for (const auto& inst : instantiations_) {
      for (std::size_t i = 0; i < inst.params.size(); ++i) {
        const ParamType* param = &inst.params[i];
        const std::string suffix = inst.namer({*param, i});
        for (const auto& test : tests_) {
          UnitTestImpl::Get().AddTest(
              inst.prefix + "/" + test.suite, test.name + "/" + suffix,
              [factory = test.factory, param]() -> Test* {
                Suite::SetParam(param);
                return factory();
              },
              test.suite_setup, test.suite_teardown);
        }
      }
    }
  }

  std::vector<PTest> tests_;
  // deque: materialized param vectors must stay address-stable because the
  // expanded factories capture pointers into them.
  std::deque<Instantiation> instantiations_;
  bool deferred_registered_ = false;
};

}  // namespace internal

template <typename... Ts>
internal::ValueArray<Ts...> Values(Ts... values) {
  return internal::ValueArray<Ts...>(std::move(values)...);
}

inline internal::ValueArray<bool, bool> Bool() {
  return internal::ValueArray<bool, bool>(false, true);
}

template <typename T>
internal::RangeGenerator<T> Range(T begin, T end, T step = 1) {
  return internal::RangeGenerator<T>(begin, end, step);
}

template <typename... Gens>
internal::CartesianProductGenerator<Gens...> Combine(Gens... gens) {
  return internal::CartesianProductGenerator<Gens...>(std::move(gens)...);
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

namespace internal {

/// One section of a --gtest_filter pattern: '*' and '?' wildcards.
inline bool WildcardMatch(const char* pattern, const char* text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*') {
    return WildcardMatch(pattern + 1, text) ||
           (*text != '\0' && WildcardMatch(pattern, text + 1));
  }
  if (*text == '\0') return false;
  if (*pattern == '?' || *pattern == *text) {
    return WildcardMatch(pattern + 1, text + 1);
  }
  return false;
}

/// gtest filter syntax: positive patterns ':'-separated, then an optional
/// '-' introducing ':'-separated negative patterns.
inline bool MatchesFilter(const std::string& filter, const std::string& name) {
  // Initialize (never reassign) the pattern strings: GCC 12's -Wrestrict
  // false-positives on any string assignment after the substr copies at -O2.
  const std::size_t dash = filter.find('-');
  const std::string positive =
      dash == std::string::npos ? filter : filter.substr(0, dash);
  const std::string negative =
      dash == std::string::npos ? std::string() : filter.substr(dash + 1);
  auto any_section_matches = [&name](const std::string& patterns) {
    std::size_t begin = 0;
    while (begin <= patterns.size()) {
      std::size_t end = patterns.find(':', begin);
      if (end == std::string::npos) end = patterns.size();
      const std::string pattern = patterns.substr(begin, end - begin);
      if (!pattern.empty() && WildcardMatch(pattern.c_str(), name.c_str())) {
        return true;
      }
      begin = end + 1;
    }
    return false;
  };
  // An empty positive section (e.g. filter "-Foo.*") means match-all.
  if (!positive.empty() && !any_section_matches(positive)) return false;
  return negative.empty() || !any_section_matches(negative);
}

inline int RunAllTestsImpl() {
  auto& impl = UnitTestImpl::Get();
  impl.RunDeferredExpansions();

  std::vector<const RegisteredTest*> selected;
  for (const auto& test : impl.tests()) {
    if (MatchesFilter(impl.filter, test.suite + "." + test.name)) {
      selected.push_back(&test);
    }
  }

  if (impl.list_only) {
    // Group by suite in registration order, gtest-style.
    std::string last_suite;
    for (const auto* test : selected) {
      if (test->suite != last_suite) {
        std::printf("%s.\n", test->suite.c_str());
        last_suite = test->suite;
      }
      std::printf("  %s\n", test->name.c_str());
    }
    return 0;
  }

  std::size_t suite_count = 0;
  {
    std::vector<std::string> suites;
    for (const auto* test : selected) suites.push_back(test->suite);
    std::sort(suites.begin(), suites.end());
    suite_count = std::unique(suites.begin(), suites.end()) - suites.begin();
  }

  std::printf("[==========] Running %zu tests from %zu test suites.\n",
              selected.size(), suite_count);
  const auto suite_start = std::chrono::steady_clock::now();
  std::vector<std::string> failed, skipped;
  // Suite-level hooks run exactly once per suite regardless of whether its
  // tests are contiguous in registration order (GoogleTest semantics):
  // SetUpTestSuite before a suite's first selected test, TearDownTestSuite
  // after its last. Failures in them are reported outside any test and fail
  // the binary via orphan_failure.
  std::map<std::string, std::size_t> last_of_suite;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    last_of_suite[selected[i]->suite] = i;
  }
  std::set<std::string> started_suites;
  auto run_hook = [](void (*hook)(), const char* what) {
    if (hook == nullptr) return;
    try {
      hook();
    } catch (const std::exception& e) {
      RecordFailure("<suite>", 0, true,
                    std::string(what) + " threw std::exception: " + e.what(),
                    "");
    } catch (...) {
      RecordFailure("<suite>", 0, true,
                    std::string(what) + " threw a non-standard exception", "");
    }
  };
  for (std::size_t test_index = 0; test_index < selected.size();
       ++test_index) {
    const auto* test = selected[test_index];
    if (started_suites.insert(test->suite).second) {
      run_hook(test->suite_setup, "SetUpTestSuite");
    }
    const std::string full_name = test->suite + "." + test->name;
    std::printf("[ RUN      ] %s\n", full_name.c_str());
    std::fflush(stdout);
    TestResult result;
    impl.current_result = &result;
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<Test> instance;
    try {
      instance.reset(test->factory());
    } catch (...) {
      RecordFailure("<unknown>", 0, true, "fixture constructor threw", "");
    }
    if (instance != nullptr) {
      // Each phase gets its own try block: once SetUp has started,
      // TearDown always runs (matching GoogleTest), even if the body throws.
      try {
        instance->SetUp();
      } catch (const std::exception& e) {
        RecordFailure("<unknown>", 0, true,
                      std::string("SetUp threw std::exception: ") + e.what(),
                      "");
      } catch (...) {
        RecordFailure("<unknown>", 0, true, "SetUp threw a non-standard exception",
                      "");
      }
      if (!result.fatal && !result.skipped) {
        try {
          instance->TestBody();
        } catch (const std::exception& e) {
          RecordFailure("<unknown>", 0, true,
                        std::string("uncaught std::exception: ") + e.what(),
                        "");
        } catch (...) {
          RecordFailure("<unknown>", 0, true, "uncaught non-standard exception",
                        "");
        }
      }
      try {
        instance->TearDown();
      } catch (const std::exception& e) {
        RecordFailure("<unknown>", 0, true,
                      std::string("TearDown threw std::exception: ") + e.what(),
                      "");
      } catch (...) {
        RecordFailure("<unknown>", 0, true,
                      "TearDown threw a non-standard exception", "");
      }
      instance.reset();
    }
    impl.current_result = nullptr;
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (result.failed) {
      failed.push_back(full_name);
      std::printf("[  FAILED  ] %s (%lld ms)\n", full_name.c_str(),
                  static_cast<long long>(elapsed_ms));
    } else if (result.skipped) {
      skipped.push_back(full_name);
      std::printf("[  SKIPPED ] %s (%lld ms)\n", full_name.c_str(),
                  static_cast<long long>(elapsed_ms));
    } else {
      std::printf("[       OK ] %s (%lld ms)\n", full_name.c_str(),
                  static_cast<long long>(elapsed_ms));
    }
    std::fflush(stdout);
    if (last_of_suite[test->suite] == test_index) {
      run_hook(test->suite_teardown, "TearDownTestSuite");
    }
  }
  const auto total_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - suite_start)
                            .count();
  std::printf("[==========] %zu tests from %zu test suites ran. (%lld ms total)\n",
              selected.size(), suite_count,
              static_cast<long long>(total_ms));
  std::printf("[  PASSED  ] %zu tests.\n",
              selected.size() - failed.size() - skipped.size());
  if (!skipped.empty()) {
    std::printf("[  SKIPPED ] %zu tests, listed below:\n", skipped.size());
    for (const auto& name : skipped) {
      std::printf("[  SKIPPED ] %s\n", name.c_str());
    }
  }
  if (!failed.empty()) {
    std::printf("[  FAILED  ] %zu tests, listed below:\n", failed.size());
    for (const auto& name : failed) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
    std::printf("\n %zu FAILED %s\n", failed.size(),
                failed.size() == 1 ? "TEST" : "TESTS");
  }
  std::fflush(stdout);
  return (failed.empty() && !impl.orphan_failure) ? 0 : 1;
}

inline int RegisterTest(const char* suite, const char* name,
                        std::function<Test*()> factory,
                        void (*suite_setup)() = nullptr,
                        void (*suite_teardown)() = nullptr) {
  return UnitTestImpl::Get().AddTest(suite, name, std::move(factory),
                                     suite_setup, suite_teardown);
}

}  // namespace internal

/// Parses and strips --gtest_* flags. Unrecognized gtest flags are ignored
/// (accepted but inert) so wrapper scripts written for real gtest still run.
inline void InitGoogleTest(int* argc, char** argv) {
  auto& impl = internal::UnitTestImpl::Get();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gtest_filter=", 0) == 0) {
      impl.filter = arg.substr(std::strlen("--gtest_filter="));
    } else if (arg == "--gtest_list_tests") {
      impl.list_only = true;
    } else if (arg.rfind("--gtest_", 0) == 0) {
      // recognized-but-ignored (color, brief, repeat, shuffle, ...)
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void InitGoogleTest() {}

}  // namespace testing

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#define MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                              \
  case 0:                                 \
  default:

// The `if (result) {} else helper = Message() << ...` shape makes every
// assertion a single statement that accepts a streamed trailer message and,
// for ASSERT_*, a leading `return`.
#define MINIGTEST_TEST_RESULT_(expression, fail_prefix, fatal)            \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_                                       \
  if (const ::testing::AssertionResult minigtest_ar = (expression)) {     \
  } else                                                                  \
    fail_prefix ::testing::internal::AssertHelper(fatal, __FILE__,        \
                                                  __LINE__,               \
                                                  minigtest_ar.message()) = \
        ::testing::Message()

#define MINIGTEST_EXPECT_(expression) MINIGTEST_TEST_RESULT_(expression, , false)
#define MINIGTEST_ASSERT_(expression) \
  MINIGTEST_TEST_RESULT_(expression, return, true)

#define EXPECT_TRUE(condition) \
  MINIGTEST_EXPECT_(           \
      ::testing::internal::BoolResult(static_cast<bool>(condition), #condition, true))
#define EXPECT_FALSE(condition) \
  MINIGTEST_EXPECT_(            \
      ::testing::internal::BoolResult(static_cast<bool>(condition), #condition, false))
#define ASSERT_TRUE(condition) \
  MINIGTEST_ASSERT_(           \
      ::testing::internal::BoolResult(static_cast<bool>(condition), #condition, true))
#define ASSERT_FALSE(condition) \
  MINIGTEST_ASSERT_(            \
      ::testing::internal::BoolResult(static_cast<bool>(condition), #condition, false))

#define EXPECT_EQ(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperEQ(#a, #b, a, b))
#define EXPECT_NE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperNE(#a, #b, a, b))
#define EXPECT_LT(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperLT(#a, #b, a, b))
#define EXPECT_LE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperLE(#a, #b, a, b))
#define EXPECT_GT(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperGT(#a, #b, a, b))
#define EXPECT_GE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperGE(#a, #b, a, b))

#define ASSERT_EQ(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperEQ(#a, #b, a, b))
#define ASSERT_NE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperNE(#a, #b, a, b))
#define ASSERT_LT(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperLT(#a, #b, a, b))
#define ASSERT_LE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperLE(#a, #b, a, b))
#define ASSERT_GT(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperGT(#a, #b, a, b))
#define ASSERT_GE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperGE(#a, #b, a, b))

#define EXPECT_NEAR(a, b, tolerance) \
  MINIGTEST_EXPECT_(                 \
      ::testing::internal::CmpHelperNear(#a, #b, #tolerance, a, b, tolerance))
#define ASSERT_NEAR(a, b, tolerance) \
  MINIGTEST_ASSERT_(                 \
      ::testing::internal::CmpHelperNear(#a, #b, #tolerance, a, b, tolerance))

#define EXPECT_DOUBLE_EQ(a, b)                                            \
  MINIGTEST_EXPECT_(                                                      \
      (::testing::internal::CmpHelperFloatingPointEQ<double, std::uint64_t>( \
          #a, #b, a, b)))
#define ASSERT_DOUBLE_EQ(a, b)                                            \
  MINIGTEST_ASSERT_(                                                      \
      (::testing::internal::CmpHelperFloatingPointEQ<double, std::uint64_t>( \
          #a, #b, a, b)))
#define EXPECT_FLOAT_EQ(a, b)                                             \
  MINIGTEST_EXPECT_(                                                      \
      (::testing::internal::CmpHelperFloatingPointEQ<float, std::uint32_t>( \
          #a, #b, a, b)))
#define ASSERT_FLOAT_EQ(a, b)                                             \
  MINIGTEST_ASSERT_(                                                      \
      (::testing::internal::CmpHelperFloatingPointEQ<float, std::uint32_t>( \
          #a, #b, a, b)))

#define EXPECT_STREQ(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperSTREQ(#a, #b, a, b))
#define ASSERT_STREQ(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperSTREQ(#a, #b, a, b))
#define EXPECT_STRNE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperSTRNE(#a, #b, a, b))
#define ASSERT_STRNE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperSTRNE(#a, #b, a, b))

#define ADD_FAILURE()                                                    \
  ::testing::internal::AssertHelper(false, __FILE__, __LINE__, "Failed") = \
      ::testing::Message()
#define FAIL()                                                               \
  return ::testing::internal::AssertHelper(true, __FILE__, __LINE__,         \
                                           "Failed") = ::testing::Message()
#define SUCCEED() \
  static_cast<void>(0), ::testing::Message()

#define GTEST_SKIP() \
  return ::testing::internal::SkipHelper(__FILE__, __LINE__) = ::testing::Message()

// ---------------------------------------------------------------------------
// Test definition macros
// ---------------------------------------------------------------------------

#define MINIGTEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define MINIGTEST_TEST_(suite, name, base)                                    \
  class MINIGTEST_CLASS_NAME_(suite, name) : public base {                    \
   public:                                                                    \
    void TestBody() override;                                                 \
                                                                              \
   private:                                                                   \
    static const int minigtest_registered_;                                   \
  };                                                                          \
  const int MINIGTEST_CLASS_NAME_(suite, name)::minigtest_registered_ =       \
      ::testing::internal::RegisterTest(                                      \
          #suite, #name,                                                      \
          []() -> ::testing::Test* {                                          \
            return new MINIGTEST_CLASS_NAME_(suite, name)();                  \
          },                                                                  \
          &MINIGTEST_CLASS_NAME_(suite, name)::SetUpTestSuite,                \
          &MINIGTEST_CLASS_NAME_(suite, name)::TearDownTestSuite);            \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)

#define TEST_P(suite, name)                                                   \
  class MINIGTEST_CLASS_NAME_(suite, name) : public suite {                   \
   public:                                                                    \
    void TestBody() override;                                                 \
                                                                              \
   private:                                                                   \
    static const int minigtest_registered_;                                   \
  };                                                                          \
  const int MINIGTEST_CLASS_NAME_(suite, name)::minigtest_registered_ =       \
      ::testing::internal::ParamRegistry<suite>::Instance().AddTest(          \
          #suite, #name,                                                      \
          []() -> ::testing::Test* {                                          \
            return new MINIGTEST_CLASS_NAME_(suite, name)();                  \
          },                                                                  \
          &MINIGTEST_CLASS_NAME_(suite, name)::SetUpTestSuite,                \
          &MINIGTEST_CLASS_NAME_(suite, name)::TearDownTestSuite);            \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                       \
  static const int minigtest_inst_##prefix##_##suite##_ [[maybe_unused]] = \
      ::testing::internal::ParamRegistry<suite>::Instance().AddInstantiation( \
          #prefix, __VA_ARGS__)

// Pre-suite-API spelling kept for source compatibility.
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

#define RUN_ALL_TESTS() ::testing::internal::RunAllTestsImpl()
