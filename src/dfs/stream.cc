#include "dfs/stream.h"

#include <algorithm>
#include <cstring>

namespace ros2::dfs {

DfsOutputStream::DfsOutputStream(Dfs* dfs, Fd fd, std::size_t buffer_size)
    : dfs_(dfs),
      fd_(fd),
      buffer_(buffer_size == 0
                  ? std::size_t(dfs->config().write_coalesce_chunks *
                                dfs->chunk_size())
                  : buffer_size) {}

DfsOutputStream::~DfsOutputStream() {
  // Best-effort: the destructor has nowhere to surface a Status. Writers
  // that care about durability must call Close() and check it.
  (void)Close();
}

Status DfsOutputStream::Append(std::span<const std::byte> data) {
  if (closed_) return FailedPrecondition("stream is closed");
  if (!first_error_.ok()) return first_error_;
  std::size_t done = 0;
  while (done < data.size()) {
    if (fill_ == buffer_.size()) {
      ROS2_RETURN_IF_ERROR(Flush());
    }
    const std::size_t n =
        std::min(data.size() - done, buffer_.size() - fill_);
    std::memcpy(buffer_.data() + fill_, data.data() + done, n);
    fill_ += n;
    done += n;
    offset_ += n;
  }
  return Status::Ok();
}

Status DfsOutputStream::Flush() {
  if (closed_) return FailedPrecondition("stream is closed");
  if (!first_error_.ok()) return first_error_;
  if (fill_ == 0) return Status::Ok();
  Status wrote = dfs_->Write(
      fd_, buffered_at_, std::span<const std::byte>(buffer_.data(), fill_));
  if (!wrote.ok()) {
    first_error_ = wrote;  // latch: no further writes past the hole
    return wrote;
  }
  buffered_at_ += fill_;
  fill_ = 0;
  ++flushes_;
  dfs_->coalesced_flushes_.Add(1);
  return Status::Ok();
}

Status DfsOutputStream::Close() {
  if (closed_) return first_error_;
  (void)Flush();  // outcome (success or first failure) lands in status()
  closed_ = true;
  return first_error_;
}

DfsInputStream::DfsInputStream(Dfs* dfs, Fd fd, std::size_t readahead)
    : dfs_(dfs),
      fd_(fd),
      window_(readahead == 0
                  ? std::size_t(dfs->config().readahead_chunks *
                                dfs->chunk_size())
                  : readahead) {}

Status DfsInputStream::Refill() {
  window_at_ = offset_;
  ROS2_ASSIGN_OR_RETURN(window_len_, dfs_->Read(fd_, window_at_, window_));
  ++refills_;
  dfs_->readahead_refills_.Add(1);
  return Status::Ok();
}

Result<std::uint64_t> DfsInputStream::Read(std::span<std::byte> out) {
  if (!dfs_->config().readahead) {
    // Kill switch: no speculative window, one exact-size read per call.
    ROS2_ASSIGN_OR_RETURN(std::uint64_t n, dfs_->Read(fd_, offset_, out));
    offset_ += n;
    return n;
  }
  std::uint64_t done = 0;
  while (done < out.size()) {
    const bool in_window =
        offset_ >= window_at_ && offset_ < window_at_ + window_len_;
    if (!in_window) {
      ROS2_RETURN_IF_ERROR(Refill());
      if (window_len_ == 0) break;  // EOF
    }
    const std::uint64_t within = offset_ - window_at_;
    const std::uint64_t n = std::min<std::uint64_t>(
        out.size() - done, window_len_ - within);
    std::memcpy(out.data() + done, window_.data() + within, n);
    done += n;
    offset_ += n;
  }
  return done;
}

void DfsInputStream::Seek(std::uint64_t offset) { offset_ = offset; }

}  // namespace ros2::dfs
