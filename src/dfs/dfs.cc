#include "dfs/dfs.h"

#include <algorithm>
#include <cstring>

#include "rpc/wire.h"

namespace ros2::dfs {
namespace {

// Reserved dkeys on file/root objects ('\x01' cannot collide with path
// components, which never contain control characters after validation).
const char* const kMetaDkey = "\x01meta";
const char* const kSuperblockDkey = "\x01sb";
const char* const kEntryAkey = "e";
const char* const kSizeAkey = "size";
const char* const kMagicAkey = "magic";
constexpr std::uint64_t kDfsMagic = 0x524F53324446531Aull;  // "ROS2DFS\x1a"

std::string ChunkDkey(std::uint64_t chunk_index) {
  // Build via insert-free concatenation: the operator+(const char*,
  // string&&) form trips a GCC 12 -Wrestrict false positive here.
  std::string dkey = "c";
  dkey += std::to_string(chunk_index);
  return dkey;
}

Buffer EncodeEntry(const DfsStat& stat) {
  rpc::Encoder enc;
  enc.U8(std::uint8_t(stat.type))
      .U64(stat.oid.hi)
      .U64(stat.oid.lo)
      .U32(stat.mode);
  return enc.Take();
}

Result<DfsStat> DecodeEntry(const Buffer& raw) {
  rpc::Decoder dec(raw);
  DfsStat stat;
  ROS2_ASSIGN_OR_RETURN(std::uint8_t type, dec.U8());
  stat.type = InodeType(type);
  ROS2_ASSIGN_OR_RETURN(stat.oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(stat.oid.lo, dec.U64());
  ROS2_ASSIGN_OR_RETURN(stat.mode, dec.U32());
  return stat;
}

/// Splits "/a/b/c" into components; rejects empty and non-absolute paths
/// and components with control characters.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    return Status(InvalidArgument("path must be absolute: " + path));
  }
  std::vector<std::string> parts;
  std::size_t start = 1;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (end > start) {
      const std::string part = path.substr(start, end - start);
      if (part == "." || part == "..") {
        return Status(InvalidArgument("'.'/'..' are not supported"));
      }
      for (char c : part) {
        if (std::uint8_t(c) < 0x20) {
          return Status(
              InvalidArgument("control characters are not allowed in paths"));
        }
      }
      parts.push_back(part);
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return parts;
}

}  // namespace

Result<std::unique_ptr<Dfs>> Dfs::Mount(daos::DaosClient* client,
                                        daos::ContainerId cont, bool create,
                                        DfsConfig config) {
  if (client == nullptr) return Status(InvalidArgument("null client"));
  if (config.chunk_size == 0) {
    return Status(InvalidArgument("chunk size must be > 0"));
  }
  auto dfs = std::unique_ptr<Dfs>(new Dfs(client, cont, config));
  if (create) {
    ROS2_ASSIGN_OR_RETURN(dfs->root_, client->AllocOid(cont));
    rpc::Encoder sb;
    sb.U64(kDfsMagic).U64(config.chunk_size);
    ROS2_RETURN_IF_ERROR(client
                             ->UpdateSingle(cont, dfs->root_, kSuperblockDkey,
                                            kMagicAkey, sb.buffer())
                             .status());
  } else {
    // The root object is the container's first allocated oid.
    dfs->root_ = daos::ObjectId{cont, 1};
    auto sb = client->FetchSingle(cont, dfs->root_, kSuperblockDkey,
                                  kMagicAkey);
    if (!sb.ok()) {
      return Status(FailedPrecondition("container holds no DFS superblock"));
    }
    rpc::Decoder dec(*sb);
    ROS2_ASSIGN_OR_RETURN(std::uint64_t magic, dec.U64());
    if (magic != kDfsMagic) {
      return Status(DataLoss("DFS superblock magic mismatch"));
    }
    ROS2_ASSIGN_OR_RETURN(dfs->config_.chunk_size, dec.U64());
  }
  return dfs;
}

Status Dfs::ResolveParent(const std::string& path, daos::ObjectId* parent,
                          std::string* leaf) {
  ROS2_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) return InvalidArgument("path refers to the root");
  daos::ObjectId dir = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(dir, parts[i]));
    if (stat.type != InodeType::kDirectory) {
      return InvalidArgument("path component is not a directory: " +
                             parts[i]);
    }
    dir = stat.oid;
  }
  *parent = dir;
  *leaf = parts.back();
  return Status::Ok();
}

Result<DfsStat> Dfs::LookupEntry(const daos::ObjectId& dir,
                                 const std::string& name) {
  auto raw = client_->FetchSingle(cont_, dir, name, kEntryAkey);
  if (!raw.ok()) return Status(NotFound("no such entry: " + name));
  return DecodeEntry(*raw);
}

Status Dfs::WriteEntry(const daos::ObjectId& dir, const std::string& name,
                       const DfsStat& stat) {
  return client_->UpdateSingle(cont_, dir, name, kEntryAkey,
                               EncodeEntry(stat))
      .status();
}

Result<std::uint64_t> Dfs::LoadFileSize(const daos::ObjectId& oid) {
  auto raw = client_->FetchSingle(cont_, oid, kMetaDkey, kSizeAkey);
  if (!raw.ok()) return std::uint64_t(0);
  rpc::Decoder dec(*raw);
  return dec.U64();
}

Status Dfs::StoreFileSize(const daos::ObjectId& oid, std::uint64_t size) {
  rpc::Encoder enc;
  enc.U64(size);
  return client_->UpdateSingle(cont_, oid, kMetaDkey, kSizeAkey, enc.buffer())
      .status();
}

Status Dfs::Mkdir(const std::string& path, std::uint32_t mode) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  if (LookupEntry(parent, leaf).ok()) {
    return AlreadyExists("entry exists: " + path);
  }
  ROS2_ASSIGN_OR_RETURN(daos::ObjectId oid, client_->AllocOid(cont_));
  DfsStat stat;
  stat.type = InodeType::kDirectory;
  stat.oid = oid;
  stat.mode = mode;
  return WriteEntry(parent, leaf, stat);
}

Result<Fd> Dfs::Open(const std::string& path, OpenFlags flags,
                     std::uint32_t mode) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  auto existing = LookupEntry(parent, leaf);
  OpenFile file;
  if (existing.ok()) {
    if (existing->type != InodeType::kFile) {
      return Status(InvalidArgument("not a file: " + path));
    }
    if (flags.create && flags.exclusive) {
      return Status(AlreadyExists("O_EXCL: file exists: " + path));
    }
    file.oid = existing->oid;
    if (flags.truncate) {
      ROS2_RETURN_IF_ERROR(client_->PunchObject(cont_, file.oid));
      ROS2_RETURN_IF_ERROR(StoreFileSize(file.oid, 0));
      file.size = 0;
    } else {
      ROS2_ASSIGN_OR_RETURN(file.size, LoadFileSize(file.oid));
    }
  } else {
    if (!flags.create) return Status(NotFound("no such file: " + path));
    ROS2_ASSIGN_OR_RETURN(file.oid, client_->AllocOid(cont_));
    DfsStat stat;
    stat.type = InodeType::kFile;
    stat.oid = file.oid;
    stat.mode = mode;
    ROS2_RETURN_IF_ERROR(WriteEntry(parent, leaf, stat));
    ROS2_RETURN_IF_ERROR(StoreFileSize(file.oid, 0));
    file.size = 0;
  }
  const Fd fd = next_fd_++;
  open_files_[fd] = file;
  return fd;
}

Status Dfs::Close(Fd fd) {
  if (open_files_.erase(fd) == 0) return NotFound("bad file descriptor");
  return Status::Ok();
}

Result<DfsStat> Dfs::Stat(const std::string& path) {
  ROS2_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    DfsStat root;
    root.type = InodeType::kDirectory;
    root.oid = root_;
    root.mode = 0755;
    return root;
  }
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(parent, leaf));
  if (stat.type == InodeType::kFile) {
    ROS2_ASSIGN_OR_RETURN(stat.size, LoadFileSize(stat.oid));
  }
  return stat;
}

Result<std::vector<DirEntry>> Dfs::Readdir(const std::string& path) {
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, Stat(path));
  if (stat.type != InodeType::kDirectory) {
    return Status(InvalidArgument("not a directory: " + path));
  }
  ROS2_ASSIGN_OR_RETURN(std::vector<std::string> dkeys,
                        client_->ListDkeys(cont_, stat.oid));
  std::vector<DirEntry> out;
  for (auto& name : dkeys) {
    if (!name.empty() && name.front() == '\x01') continue;  // reserved
    auto entry = LookupEntry(stat.oid, name);
    if (!entry.ok()) continue;  // punched entry
    out.push_back({std::move(name), entry->type});
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

Status Dfs::Unlink(const std::string& path) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(parent, leaf));
  if (stat.type == InodeType::kDirectory) {
    ROS2_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, Readdir(path));
    if (!entries.empty()) {
      return FailedPrecondition("directory not empty: " + path);
    }
  }
  // Remove the name first, then reclaim the object (crash between the two
  // leaks space but never dangles a name).
  ROS2_RETURN_IF_ERROR(client_->PunchDkey(cont_, parent, leaf));
  (void)client_->PunchObject(cont_, stat.oid);  // may hold no records yet
  return Status::Ok();
}

Status Dfs::Rename(const std::string& from, const std::string& to) {
  daos::ObjectId from_parent;
  std::string from_leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(from, &from_parent, &from_leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(from_parent, from_leaf));
  daos::ObjectId to_parent;
  std::string to_leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(to, &to_parent, &to_leaf));
  auto existing = LookupEntry(to_parent, to_leaf);
  if (existing.ok()) {
    if (existing->type == InodeType::kDirectory) {
      return InvalidArgument("rename onto a directory");
    }
    ROS2_RETURN_IF_ERROR(Unlink(to));
  }
  ROS2_RETURN_IF_ERROR(WriteEntry(to_parent, to_leaf, stat));
  return client_->PunchDkey(cont_, from_parent, from_leaf);
}

Result<std::uint64_t> Dfs::Read(Fd fd, std::uint64_t offset,
                                std::span<std::byte> out) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return Status(NotFound("bad file descriptor"));
  const OpenFile& file = it->second;
  if (offset >= file.size || out.empty()) return std::uint64_t(0);
  const std::uint64_t n = std::min<std::uint64_t>(out.size(),
                                                  file.size - offset);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t chunk = pos / config_.chunk_size;
    const std::uint64_t within = pos % config_.chunk_size;
    const std::uint64_t take =
        std::min(n - done, config_.chunk_size - within);
    ROS2_RETURN_IF_ERROR(client_->Fetch(cont_, file.oid, ChunkDkey(chunk),
                                        "d", within,
                                        out.subspan(done, take)));
    done += take;
  }
  return n;
}

Status Dfs::Write(Fd fd, std::uint64_t offset,
                  std::span<const std::byte> data) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return NotFound("bad file descriptor");
  OpenFile& file = it->second;
  if (data.empty()) return Status::Ok();
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t chunk = pos / config_.chunk_size;
    const std::uint64_t within = pos % config_.chunk_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(data.size() - done,
                                config_.chunk_size - within);
    ROS2_RETURN_IF_ERROR(client_
                             ->Update(cont_, file.oid, ChunkDkey(chunk), "d",
                                      within, data.subspan(done, take))
                             .status());
    done += take;
  }
  const std::uint64_t end = offset + data.size();
  if (end > file.size) {
    ROS2_RETURN_IF_ERROR(StoreFileSize(file.oid, end));
    file.size = end;
  }
  return Status::Ok();
}

Result<daos::ObjectId> Dfs::Oid(Fd fd) const {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return Status(NotFound("bad file descriptor"));
  return it->second.oid;
}

Result<std::uint64_t> Dfs::Size(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return Status(NotFound("bad file descriptor"));
  return it->second.size;
}

Status Dfs::Truncate(Fd fd, std::uint64_t new_size) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return NotFound("bad file descriptor");
  OpenFile& file = it->second;
  if (new_size == 0 && file.size > 0) {
    // Reclaim all chunk data; metadata object survives.
    const std::uint64_t chunks =
        (file.size + config_.chunk_size - 1) / config_.chunk_size;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      (void)client_->PunchDkey(cont_, file.oid, ChunkDkey(c));
    }
  }
  // Extension is implicit (holes read as zeros); shrink-to-middle keeps
  // stale extents but masks them with the logical size.
  ROS2_RETURN_IF_ERROR(StoreFileSize(file.oid, new_size));
  file.size = new_size;
  return Status::Ok();
}

Status Dfs::Fsync(Fd fd) {
  if (!open_files_.contains(fd)) return NotFound("bad file descriptor");
  return Status::Ok();
}

}  // namespace ros2::dfs
