#include "dfs/dfs.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "rpc/wire.h"

namespace ros2::dfs {
namespace {

// Reserved dkeys on file/root objects ('\x01' cannot collide with path
// components, which never contain control characters after validation).
const char* const kMetaDkey = "\x01meta";
const char* const kSuperblockDkey = "\x01sb";
const char* const kEntryAkey = "e";
const char* const kSizeAkey = "size";
const char* const kMagicAkey = "magic";
constexpr std::uint64_t kDfsMagic = 0x524F53324446531Aull;  // "ROS2DFS\x1a"

/// Every reserved dkey starts with '\x01' and every legal entry name with
/// a byte >= 0x20, so listing from this marker skips the reserved records
/// server-side without a client-side filter pass.
const char* const kFirstEntryMarker = "\x02";

std::string ChunkDkey(std::uint64_t chunk_index) {
  // Build via insert-free concatenation: the operator+(const char*,
  // string&&) form trips a GCC 12 -Wrestrict false positive here.
  std::string dkey = "c";
  dkey += std::to_string(chunk_index);
  return dkey;
}

std::string CacheKey(const daos::ObjectId& dir, const std::string& name) {
  std::string key = std::to_string(dir.hi);
  key += '.';
  key += std::to_string(dir.lo);
  key += '/';
  key += name;
  return key;
}

Buffer EncodeEntry(const DfsStat& stat) {
  rpc::Encoder enc;
  enc.U8(std::uint8_t(stat.type))
      .U64(stat.oid.hi)
      .U64(stat.oid.lo)
      .U32(stat.mode);
  return enc.Take();
}

Result<DfsStat> DecodeEntry(const Buffer& raw) {
  rpc::Decoder dec(raw);
  DfsStat stat;
  ROS2_ASSIGN_OR_RETURN(std::uint8_t type, dec.U8());
  stat.type = InodeType(type);
  ROS2_ASSIGN_OR_RETURN(stat.oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(stat.oid.lo, dec.U64());
  ROS2_ASSIGN_OR_RETURN(stat.mode, dec.U32());
  return stat;
}

/// Splits "/a/b/c" into components; rejects empty and non-absolute paths
/// and components with control characters.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    return Status(InvalidArgument("path must be absolute: " + path));
  }
  std::vector<std::string> parts;
  std::size_t start = 1;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (end > start) {
      const std::string part = path.substr(start, end - start);
      if (part == "." || part == "..") {
        return Status(InvalidArgument("'.'/'..' are not supported"));
      }
      for (char c : part) {
        if (std::uint8_t(c) < 0x20) {
          return Status(
              InvalidArgument("control characters are not allowed in paths"));
        }
      }
      parts.push_back(part);
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return parts;
}

}  // namespace

Result<std::unique_ptr<Dfs>> Dfs::Mount(daos::DaosClient* client,
                                        daos::ContainerId cont, bool create,
                                        DfsConfig config) {
  if (client == nullptr) return Status(InvalidArgument("null client"));
  if (config.chunk_size == 0) {
    return Status(InvalidArgument("chunk size must be > 0"));
  }
  if (config.readahead_chunks == 0 || config.write_coalesce_chunks == 0) {
    return Status(
        InvalidArgument("stream windows must be >= 1 chunk (use the "
                        "readahead/batch_io switches to disable)"));
  }
  auto dfs = std::unique_ptr<Dfs>(new Dfs(client, cont, config));
  if (create) {
    ROS2_ASSIGN_OR_RETURN(dfs->root_, client->AllocOid(cont));
    rpc::Encoder sb;
    sb.U64(kDfsMagic).U64(config.chunk_size);
    ROS2_RETURN_IF_ERROR(client
                             ->UpdateSingle(cont, dfs->root_, kSuperblockDkey,
                                            kMagicAkey, sb.buffer())
                             .status());
  } else {
    // The root object is the container's first allocated oid.
    dfs->root_ = daos::ObjectId{cont, 1};
    auto sb = client->FetchSingle(cont, dfs->root_, kSuperblockDkey,
                                  kMagicAkey);
    if (!sb.ok()) {
      return Status(FailedPrecondition("container holds no DFS superblock"));
    }
    rpc::Decoder dec(*sb);
    ROS2_ASSIGN_OR_RETURN(std::uint64_t magic, dec.U64());
    if (magic != kDfsMagic) {
      return Status(DataLoss("DFS superblock magic mismatch"));
    }
    ROS2_ASSIGN_OR_RETURN(dfs->config_.chunk_size, dec.U64());
  }
  return dfs;
}

void Dfs::AttachTelemetry(telemetry::Telemetry* tree) {
  if (tree == nullptr) return;
  tree->LinkCounter("dfs/lookup_cache/hits", &lookup_hits_);
  tree->LinkCounter("dfs/lookup_cache/misses", &lookup_misses_);
  tree->LinkCounter("dfs/lookup_cache/evictions", &lookup_evictions_);
  tree->RegisterCallback("dfs/lookup_cache/entries", [this] {
    common::MutexLock lock(mu_);
    return std::int64_t(cache_index_.size());
  });
  tree->LinkCounter("dfs/io/chunk_fetches", &chunk_fetches_);
  tree->LinkCounter("dfs/io/chunk_updates", &chunk_updates_);
  tree->LinkCounter("dfs/io/read_batches", &read_batches_);
  tree->LinkCounter("dfs/io/write_batches", &write_batches_);
  tree->LinkCounter("dfs/readdir/pages", &readdir_pages_);
  tree->LinkCounter("dfs/readdir/entries", &readdir_entries_);
  tree->LinkCounter("dfs/stream/readahead_refills", &readahead_refills_);
  tree->LinkCounter("dfs/stream/coalesced_flushes", &coalesced_flushes_);
  tree->RegisterCallback("dfs/open_files", [this] {
    common::MutexLock lock(mu_);
    return std::int64_t(open_files_.size());
  });
}

// --------------------------------------------------------- lookup cache

void Dfs::CacheInsert(const daos::ObjectId& dir, const std::string& name,
                      const DfsStat& stat) {
  if (!config_.lookup_cache || config_.lookup_cache_entries == 0) return;
  // Size is a live quantity (shared FileState / loaded on demand); the
  // cache pins only the immutable record {type, oid, mode}.
  DfsStat entry = stat;
  entry.size = 0;
  std::string key = CacheKey(dir, name);
  common::MutexLock lock(mu_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    it->second->second = entry;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(std::move(key), entry);
  cache_index_[cache_lru_.front().first] = cache_lru_.begin();
  while (cache_index_.size() > config_.lookup_cache_entries) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
    lookup_evictions_.Add(1);
  }
}

void Dfs::CacheErase(const daos::ObjectId& dir, const std::string& name) {
  if (!config_.lookup_cache) return;
  const std::string key = CacheKey(dir, name);
  common::MutexLock lock(mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return;
  cache_lru_.erase(it->second);
  cache_index_.erase(it);
}

// ------------------------------------------------------------- namespace

Status Dfs::ResolveParent(const std::string& path, daos::ObjectId* parent,
                          std::string* leaf) {
  ROS2_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) return InvalidArgument("path refers to the root");
  daos::ObjectId dir = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(dir, parts[i]));
    if (stat.type != InodeType::kDirectory) {
      return InvalidArgument("path component is not a directory: " +
                             parts[i]);
    }
    dir = stat.oid;
  }
  *parent = dir;
  *leaf = parts.back();
  return Status::Ok();
}

Result<DfsStat> Dfs::LookupEntry(const daos::ObjectId& dir,
                                 const std::string& name) {
  if (config_.lookup_cache) {
    const std::string key = CacheKey(dir, name);
    common::MutexLock lock(mu_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      lookup_hits_.Add(1);
      return it->second->second;
    }
    lookup_misses_.Add(1);
  }
  auto raw = client_->FetchSingle(cont_, dir, name, kEntryAkey);
  if (!raw.ok()) return Status(NotFound("no such entry: " + name));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, DecodeEntry(*raw));
  CacheInsert(dir, name, stat);
  return stat;
}

Status Dfs::WriteEntry(const daos::ObjectId& dir, const std::string& name,
                       const DfsStat& stat) {
  return client_->UpdateSingle(cont_, dir, name, kEntryAkey,
                               EncodeEntry(stat))
      .status();
}

Result<std::uint64_t> Dfs::LoadFileSize(const daos::ObjectId& oid) {
  auto raw = client_->FetchSingle(cont_, oid, kMetaDkey, kSizeAkey);
  if (!raw.ok()) return std::uint64_t(0);
  rpc::Decoder dec(*raw);
  return dec.U64();
}

Status Dfs::StoreFileSize(const daos::ObjectId& oid, std::uint64_t size) {
  rpc::Encoder enc;
  enc.U64(size);
  return client_->UpdateSingle(cont_, oid, kMetaDkey, kSizeAkey, enc.buffer())
      .status();
}

Result<std::shared_ptr<Dfs::FileState>> Dfs::FindState(Fd fd) const {
  common::MutexLock lock(mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return Status(NotFound("bad file descriptor"));
  }
  return it->second;
}

Status Dfs::Mkdir(const std::string& path, std::uint32_t mode) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  if (LookupEntry(parent, leaf).ok()) {
    return AlreadyExists("entry exists: " + path);
  }
  ROS2_ASSIGN_OR_RETURN(daos::ObjectId oid, client_->AllocOid(cont_));
  DfsStat stat;
  stat.type = InodeType::kDirectory;
  stat.oid = oid;
  stat.mode = mode;
  ROS2_RETURN_IF_ERROR(WriteEntry(parent, leaf, stat));
  CacheInsert(parent, leaf, stat);
  return Status::Ok();
}

Result<Fd> Dfs::Open(const std::string& path, OpenFlags flags,
                     std::uint32_t mode) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  auto existing = LookupEntry(parent, leaf);
  daos::ObjectId oid;
  bool fresh = false;
  if (existing.ok()) {
    if (existing->type != InodeType::kFile) {
      return Status(InvalidArgument("not a file: " + path));
    }
    if (flags.create && flags.exclusive) {
      return Status(AlreadyExists("O_EXCL: file exists: " + path));
    }
    oid = existing->oid;
    if (flags.truncate) {
      ROS2_RETURN_IF_ERROR(client_->PunchObject(cont_, oid));
      ROS2_RETURN_IF_ERROR(StoreFileSize(oid, 0));
    }
  } else {
    if (!flags.create) return Status(NotFound("no such file: " + path));
    ROS2_ASSIGN_OR_RETURN(oid, client_->AllocOid(cont_));
    DfsStat stat;
    stat.type = InodeType::kFile;
    stat.oid = oid;
    stat.mode = mode;
    ROS2_RETURN_IF_ERROR(WriteEntry(parent, leaf, stat));
    ROS2_RETURN_IF_ERROR(StoreFileSize(oid, 0));
    CacheInsert(parent, leaf, stat);
    fresh = true;
  }
  // Bind the fd to the oid's SHARED state so truncates/extends through any
  // fd are visible to all of them; the size RPC only runs when no other fd
  // already tracks this file.
  std::shared_ptr<FileState> state;
  {
    common::MutexLock lock(mu_);
    auto it = states_by_oid_.find(oid);
    if (it != states_by_oid_.end()) state = it->second.lock();
  }
  if (state == nullptr) {
    std::uint64_t size = 0;
    if (!fresh && !flags.truncate) {
      ROS2_ASSIGN_OR_RETURN(size, LoadFileSize(oid));
    }
    auto created = std::make_shared<FileState>();
    created->oid = oid;
    created->size = size;
    common::MutexLock lock(mu_);
    auto it = states_by_oid_.find(oid);
    if (it != states_by_oid_.end()) state = it->second.lock();
    if (state == nullptr) state = std::move(created);
    states_by_oid_[oid] = state;
  }
  common::MutexLock lock(mu_);
  if (flags.truncate) state->size = 0;
  const Fd fd = next_fd_++;
  open_files_[fd] = std::move(state);
  return fd;
}

Status Dfs::Close(Fd fd) {
  common::MutexLock lock(mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return NotFound("bad file descriptor");
  std::shared_ptr<FileState> state = std::move(it->second);
  open_files_.erase(it);
  // Last fd on the file: drop the by-oid anchor (the weak_ptr would
  // linger forever on one-shot open/close workloads otherwise).
  if (state.use_count() == 1) states_by_oid_.erase(state->oid);
  return Status::Ok();
}

Result<DfsStat> Dfs::Stat(const std::string& path) {
  ROS2_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    DfsStat root;
    root.type = InodeType::kDirectory;
    root.oid = root_;
    root.mode = 0755;
    return root;
  }
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(parent, leaf));
  if (stat.type == InodeType::kFile) {
    // An open fd's in-memory size beats the stored record (extends and
    // truncates through a live fd land there first).
    bool live = false;
    {
      common::MutexLock lock(mu_);
      auto it = states_by_oid_.find(stat.oid);
      if (it != states_by_oid_.end()) {
        if (std::shared_ptr<FileState> state = it->second.lock()) {
          stat.size = state->size;
          live = true;
        }
      }
    }
    if (!live) {
      ROS2_ASSIGN_OR_RETURN(stat.size, LoadFileSize(stat.oid));
    }
  }
  return stat;
}

Result<std::vector<DirEntry>> Dfs::Readdir(const std::string& path) {
  ROS2_ASSIGN_OR_RETURN(ReaddirResult page, Readdir(path, ReaddirPage{}));
  return std::move(page.entries);
}

Result<ReaddirResult> Dfs::Readdir(const std::string& path,
                                   const ReaddirPage& page) {
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, Stat(path));
  if (stat.type != InodeType::kDirectory) {
    return Status(InvalidArgument("not a directory: " + path));
  }
  const std::string marker =
      page.marker.empty() ? std::string(kFirstEntryMarker) : page.marker;
  ROS2_ASSIGN_OR_RETURN(
      daos::DaosClient::DkeyPage dkeys,
      client_->ListDkeysPage(cont_, stat.oid, marker, page.limit));
  readdir_pages_.Add(1);
  // One pipelined batch for every entry record on the page — the old
  // N+1 loop cost one blocking round trip per entry.
  std::vector<daos::DaosClient::SingleFetchOp> ops;
  ops.reserve(dkeys.dkeys.size());
  for (const std::string& name : dkeys.dkeys) {
    daos::DaosClient::SingleFetchOp op;
    op.cont = cont_;
    op.oid = stat.oid;
    op.dkey = name;
    op.akey = kEntryAkey;
    ops.push_back(std::move(op));
  }
  ROS2_ASSIGN_OR_RETURN(auto raws, client_->FetchSingleBatch(ops));
  ReaddirResult out;
  out.entries.reserve(raws.size());
  for (std::size_t i = 0; i < raws.size(); ++i) {
    if (!raws[i].ok()) continue;  // entry punched mid-listing
    ROS2_ASSIGN_OR_RETURN(DfsStat entry, DecodeEntry(*raws[i]));
    CacheInsert(stat.oid, dkeys.dkeys[i], entry);
    out.entries.push_back({dkeys.dkeys[i], entry.type});
  }
  readdir_entries_.Add(out.entries.size());
  out.more = dkeys.more;
  if (out.more && !dkeys.dkeys.empty()) out.next_marker = dkeys.dkeys.back();
  return out;
}

Status Dfs::Unlink(const std::string& path) {
  daos::ObjectId parent;
  std::string leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(path, &parent, &leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(parent, leaf));
  if (stat.type == InodeType::kDirectory) {
    ROS2_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, Readdir(path));
    if (!entries.empty()) {
      return FailedPrecondition("directory not empty: " + path);
    }
  }
  // Remove the name first, then reclaim the object (crash between the two
  // leaks space but never dangles a name).
  ROS2_RETURN_IF_ERROR(client_->PunchDkey(cont_, parent, leaf));
  CacheErase(parent, leaf);
  (void)client_->PunchObject(cont_, stat.oid);  // may hold no records yet
  return Status::Ok();
}

Status Dfs::Rename(const std::string& from, const std::string& to) {
  daos::ObjectId from_parent;
  std::string from_leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(from, &from_parent, &from_leaf));
  ROS2_ASSIGN_OR_RETURN(DfsStat stat, LookupEntry(from_parent, from_leaf));
  daos::ObjectId to_parent;
  std::string to_leaf;
  ROS2_RETURN_IF_ERROR(ResolveParent(to, &to_parent, &to_leaf));
  auto existing = LookupEntry(to_parent, to_leaf);
  if (existing.ok()) {
    if (existing->type == InodeType::kDirectory) {
      return InvalidArgument("rename onto a directory");
    }
    ROS2_RETURN_IF_ERROR(Unlink(to));
  }
  ROS2_RETURN_IF_ERROR(WriteEntry(to_parent, to_leaf, stat));
  CacheInsert(to_parent, to_leaf, stat);
  ROS2_RETURN_IF_ERROR(client_->PunchDkey(cont_, from_parent, from_leaf));
  CacheErase(from_parent, from_leaf);
  return Status::Ok();
}

// -------------------------------------------------------------- file I/O

Result<std::uint64_t> Dfs::Read(Fd fd, std::uint64_t offset,
                                std::span<std::byte> out) {
  ROS2_ASSIGN_OR_RETURN(std::shared_ptr<FileState> state, FindState(fd));
  std::uint64_t size = 0;
  {
    common::MutexLock lock(mu_);
    size = state->size;
  }
  if (offset >= size || out.empty()) return std::uint64_t(0);
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), size - offset);
  // Assemble the whole chunk plan up front; never-written chunks inside
  // [0, size) are holes and fetch as zeros either way.
  std::vector<daos::DaosClient::FetchOp> ops;
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t chunk = pos / config_.chunk_size;
    const std::uint64_t within = pos % config_.chunk_size;
    const std::uint64_t take =
        std::min(n - done, config_.chunk_size - within);
    daos::DaosClient::FetchOp op;
    op.cont = cont_;
    op.oid = state->oid;
    op.dkey = ChunkDkey(chunk);
    op.akey = "d";
    op.offset = within;
    op.out = out.subspan(done, take);
    ops.push_back(std::move(op));
    done += take;
  }
  if (config_.batch_io) {
    // Pipelined: every chunk RPC (across targets) is in flight before any
    // reply is awaited.
    ROS2_RETURN_IF_ERROR(client_->FetchBatch(ops));
    read_batches_.Add(1);
  } else {
    for (const daos::DaosClient::FetchOp& op : ops) {
      ROS2_RETURN_IF_ERROR(client_->Fetch(op.cont, op.oid, op.dkey, op.akey,
                                          op.offset, op.out));
    }
  }
  chunk_fetches_.Add(ops.size());
  return n;
}

Status Dfs::Write(Fd fd, std::uint64_t offset,
                  std::span<const std::byte> data) {
  ROS2_ASSIGN_OR_RETURN(std::shared_ptr<FileState> state, FindState(fd));
  if (data.empty()) return Status::Ok();
  std::vector<daos::DaosClient::UpdateOp> ops;
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t chunk = pos / config_.chunk_size;
    const std::uint64_t within = pos % config_.chunk_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(data.size() - done,
                                config_.chunk_size - within);
    daos::DaosClient::UpdateOp op;
    op.cont = cont_;
    op.oid = state->oid;
    op.dkey = ChunkDkey(chunk);
    op.akey = "d";
    op.offset = within;
    op.data = data.subspan(done, take);
    ops.push_back(std::move(op));
    done += take;
  }
  if (config_.batch_io) {
    ROS2_RETURN_IF_ERROR(client_->UpdateBatch(ops).status());
    write_batches_.Add(1);
  } else {
    for (const daos::DaosClient::UpdateOp& op : ops) {
      ROS2_RETURN_IF_ERROR(client_
                               ->Update(op.cont, op.oid, op.dkey, op.akey,
                                        op.offset, op.data)
                               .status());
    }
  }
  chunk_updates_.Add(ops.size());
  const std::uint64_t end = offset + data.size();
  std::uint64_t current = 0;
  {
    common::MutexLock lock(mu_);
    current = state->size;
  }
  if (end > current) {
    ROS2_RETURN_IF_ERROR(StoreFileSize(state->oid, end));
    common::MutexLock lock(mu_);
    if (end > state->size) state->size = end;
  }
  return Status::Ok();
}

Result<daos::ObjectId> Dfs::Oid(Fd fd) const {
  ROS2_ASSIGN_OR_RETURN(std::shared_ptr<FileState> state, FindState(fd));
  return state->oid;
}

Result<std::uint64_t> Dfs::Size(Fd fd) {
  ROS2_ASSIGN_OR_RETURN(std::shared_ptr<FileState> state, FindState(fd));
  common::MutexLock lock(mu_);
  return state->size;
}

Status Dfs::Truncate(Fd fd, std::uint64_t new_size) {
  ROS2_ASSIGN_OR_RETURN(std::shared_ptr<FileState> state, FindState(fd));
  std::uint64_t old_size = 0;
  {
    common::MutexLock lock(mu_);
    old_size = state->size;
  }
  if (new_size < old_size) {
    const std::uint64_t cs = config_.chunk_size;
    // Punch every chunk wholly past the new end. A chunk that was never
    // written punches NOT_FOUND — that's a hole, not an error.
    const std::uint64_t first_dead = (new_size + cs - 1) / cs;
    const std::uint64_t old_chunks = (old_size + cs - 1) / cs;
    for (std::uint64_t c = first_dead; c < old_chunks; ++c) {
      Status punched = client_->PunchDkey(cont_, state->oid, ChunkDkey(c));
      if (!punched.ok() && punched.code() != ErrorCode::kNotFound) {
        return punched;
      }
    }
    // Zero the stale tail of the partial boundary chunk: a later write
    // that re-extends the file must expose zeros there, not old bytes.
    if (new_size % cs != 0) {
      const std::uint64_t chunk = new_size / cs;
      const std::uint64_t tail_end = std::min(old_size, (chunk + 1) * cs);
      if (tail_end > new_size) {
        Buffer zeros(tail_end - new_size);
        ROS2_RETURN_IF_ERROR(client_
                                 ->Update(cont_, state->oid, ChunkDkey(chunk),
                                          "d", new_size % cs, zeros)
                                 .status());
      }
    }
  }
  // Extension stays implicit: chunks past the old end are holes and read
  // as zeros.
  ROS2_RETURN_IF_ERROR(StoreFileSize(state->oid, new_size));
  common::MutexLock lock(mu_);
  state->size = new_size;
  return Status::Ok();
}

Status Dfs::Fsync(Fd fd) {
  return FindState(fd).status();
}

}  // namespace ros2::dfs
