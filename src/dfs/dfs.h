// DFS: POSIX-style namespace over DAOS objects (§3.3 "DFS mapping").
//
// "The DFS layer maps POSIX files and directories to DAOS objects and
// metadata entries." The mapping used here mirrors libdfs:
//
//  - every directory is an object; entries are dkeys (name -> single-value
//    record {type, oid, mode});
//  - every file is an object; data lives under per-chunk dkeys
//    ("c<index>", chunk size 1 MiB by default) as array values, so large
//    files stripe across engine targets;
//  - file size is a single-value record on the file object, updated on
//    extending writes;
//  - the superblock (magic, chunk size) is a record on the root object,
//    written at mount-create and verified at mount-open.
//
// The data path is pipelined: chunk-spanning Read/Write assemble every
// chunk op up front and issue the whole set through
// DaosClient::FetchBatch/UpdateBatch, so one engine progress tick services
// the full request instead of one round trip per chunk. Readdir lists one
// dkey page server-side, then fetches every entry record in a single
// FetchSingleBatch (no N+1 loop). Repeated path walks hit a bounded LRU
// lookup cache keyed (parent oid, name). Every accelerator has a kill
// switch in DfsConfig; counters land under the dfs/* telemetry subtree
// via AttachTelemetry.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "daos/client.h"
#include "daos/types.h"
#include "telemetry/metrics.h"

namespace ros2::dfs {

struct DfsConfig {
  std::uint64_t chunk_size = 1ull << 20;  // DAOS DFS default: 1 MiB

  /// Pipelined chunk I/O: Read/Write issue all chunk RPCs through
  /// FetchBatch/UpdateBatch. Off = one blocking round trip per chunk (the
  /// sequential baseline bench_micro_dfs compares against).
  bool batch_io = true;

  /// Path->entry LRU (bounded at lookup_cache_entries). Off = every walk
  /// pays one RPC per component, like the pre-cache code.
  bool lookup_cache = true;
  std::size_t lookup_cache_entries = 4096;

  /// Input-stream readahead: DfsInputStream refills a window of
  /// readahead_chunks chunks per miss. Off = the stream reads exactly what
  /// the caller asked for, nothing speculative.
  bool readahead = true;
  std::uint64_t readahead_chunks = 8;

  /// Output-stream coalescing window, in chunks: DfsOutputStream buffers
  /// this much before one batched flush.
  std::uint64_t write_coalesce_chunks = 8;
};

enum class InodeType : std::uint8_t { kDirectory = 0, kFile = 1 };

struct DfsStat {
  InodeType type = InodeType::kFile;
  daos::ObjectId oid;
  std::uint64_t size = 0;   ///< files only
  std::uint32_t mode = 0644;
};

struct DirEntry {
  std::string name;
  InodeType type = InodeType::kFile;
};

/// One page of a directory listing (Readdir paging).
struct ReaddirPage {
  /// Resume strictly after this name; empty = from the start.
  std::string marker;
  /// Max entries in the page; 0 = unbounded (whole directory).
  std::uint32_t limit = 0;
};

struct ReaddirResult {
  std::vector<DirEntry> entries;
  /// True when names past this page remain.
  bool more = false;
  /// Pass as the next page's marker (set iff `more`). May sort after
  /// entries.back().name when trailing names were punched mid-listing.
  std::string next_marker;
};

/// Open flags (subset of O_*).
struct OpenFlags {
  bool create = false;
  bool exclusive = false;  ///< with create: fail if the file exists
  bool truncate = false;
};

using Fd = std::uint64_t;

class Dfs {
 public:
  /// Mounts the DFS namespace in `cont`. With `create`, formats a fresh
  /// namespace (root object + superblock); otherwise verifies the
  /// superblock written by a previous mount.
  static Result<std::unique_ptr<Dfs>> Mount(daos::DaosClient* client,
                                            daos::ContainerId cont,
                                            bool create,
                                            DfsConfig config = {});

  // --- namespace operations (control-plane traffic in ROS2) --------------
  Status Mkdir(const std::string& path, std::uint32_t mode = 0755);
  Result<Fd> Open(const std::string& path, OpenFlags flags,
                  std::uint32_t mode = 0644);
  Status Close(Fd fd);
  Result<DfsStat> Stat(const std::string& path);
  Result<std::vector<DirEntry>> Readdir(const std::string& path);
  /// Paged listing for directories too large to materialize at once: one
  /// server-side dkey page, then one batched entry fetch for the page.
  Result<ReaddirResult> Readdir(const std::string& path,
                                const ReaddirPage& page);
  Status Unlink(const std::string& path);  ///< file or empty directory
  Status Rename(const std::string& from, const std::string& to);

  // --- file I/O (data-plane traffic) --------------------------------------
  /// Returns bytes read (clamped at EOF). Chunk-spanning reads issue every
  /// chunk fetch in one pipelined batch; holes read as zeros.
  Result<std::uint64_t> Read(Fd fd, std::uint64_t offset,
                             std::span<std::byte> out);
  Status Write(Fd fd, std::uint64_t offset, std::span<const std::byte> data);
  Result<std::uint64_t> Size(Fd fd);
  /// Backing object id of an open file (used by inline services that need
  /// a stable per-file nonce).
  Result<daos::ObjectId> Oid(Fd fd) const;
  Status Truncate(Fd fd, std::uint64_t new_size);
  /// Durability barrier. The model's tiers are immediately durable, so this
  /// only validates the handle (kept for POSIX parity with FIO's fsync).
  Status Fsync(Fd fd);

  std::uint64_t chunk_size() const { return config_.chunk_size; }
  const DfsConfig& config() const { return config_; }

  /// Registers the dfs/* subtree (cache hits/misses, chunk ops, readdir
  /// pages, stream refills/flushes). Counters are views (LinkCounter), so
  /// the tree must not outlive this Dfs.
  void AttachTelemetry(telemetry::Telemetry* tree);

 private:
  friend class DfsOutputStream;
  friend class DfsInputStream;

  /// Size/handle state shared by every fd open on the same file, so a
  /// truncate or extending write through one fd is immediately visible to
  /// the others (the per-fd copy it replaces went stale on exactly that
  /// interleaving).
  struct FileState {
    daos::ObjectId oid;
    std::uint64_t size = 0;
  };

  Dfs(daos::DaosClient* client, daos::ContainerId cont, DfsConfig config)
      : client_(client), cont_(cont), config_(config) {}

  /// Resolves `path` to its parent directory oid + leaf name.
  Status ResolveParent(const std::string& path, daos::ObjectId* parent,
                       std::string* leaf) ROS2_EXCLUDES(mu_);
  /// Looks up one entry in a directory (through the lookup cache).
  Result<DfsStat> LookupEntry(const daos::ObjectId& dir,
                              const std::string& name) ROS2_EXCLUDES(mu_);
  Status WriteEntry(const daos::ObjectId& dir, const std::string& name,
                    const DfsStat& stat);

  Result<std::uint64_t> LoadFileSize(const daos::ObjectId& oid);
  Status StoreFileSize(const daos::ObjectId& oid, std::uint64_t size);

  Result<std::shared_ptr<FileState>> FindState(Fd fd) const
      ROS2_EXCLUDES(mu_);

  // Lookup cache (bounded LRU over (dir oid, name) -> entry record).
  void CacheInsert(const daos::ObjectId& dir, const std::string& name,
                   const DfsStat& stat) ROS2_EXCLUDES(mu_);
  void CacheErase(const daos::ObjectId& dir, const std::string& name)
      ROS2_EXCLUDES(mu_);

  daos::DaosClient* client_;
  daos::ContainerId cont_;
  DfsConfig config_;
  daos::ObjectId root_;

  /// Guards the fd table, the shared per-oid file states, and the lookup
  /// cache. Never held across an RPC.
  mutable common::Mutex mu_;
  std::map<Fd, std::shared_ptr<FileState>> open_files_ ROS2_GUARDED_BY(mu_);
  /// Live states by oid; entries expire when the last fd closes.
  std::map<daos::ObjectId, std::weak_ptr<FileState>> states_by_oid_
      ROS2_GUARDED_BY(mu_);
  Fd next_fd_ ROS2_GUARDED_BY(mu_) = 3;  // 0/1/2 reserved, POSIX-style

  using CacheList = std::list<std::pair<std::string, DfsStat>>;
  CacheList cache_lru_ ROS2_GUARDED_BY(mu_);  ///< front = most recent
  std::unordered_map<std::string, CacheList::iterator> cache_index_
      ROS2_GUARDED_BY(mu_);

  // dfs/* telemetry (lock-free; linked into the tree by AttachTelemetry).
  telemetry::Counter lookup_hits_;
  telemetry::Counter lookup_misses_;
  telemetry::Counter lookup_evictions_;
  telemetry::Counter chunk_fetches_;
  telemetry::Counter chunk_updates_;
  telemetry::Counter read_batches_;
  telemetry::Counter write_batches_;
  telemetry::Counter readdir_pages_;
  telemetry::Counter readdir_entries_;
  telemetry::Counter readahead_refills_;
  telemetry::Counter coalesced_flushes_;
};

}  // namespace ros2::dfs
