// DFS: POSIX-style namespace over DAOS objects (§3.3 "DFS mapping").
//
// "The DFS layer maps POSIX files and directories to DAOS objects and
// metadata entries." The mapping used here mirrors libdfs:
//
//  - every directory is an object; entries are dkeys (name -> single-value
//    record {type, oid, mode});
//  - every file is an object; data lives under per-chunk dkeys
//    ("c<index>", chunk size 1 MiB by default) as array values, so large
//    files stripe across engine targets;
//  - file size is a single-value record on the file object, updated on
//    extending writes;
//  - the superblock (magic, chunk size) is a record on the root object,
//    written at mount-create and verified at mount-open.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "daos/client.h"
#include "daos/types.h"

namespace ros2::dfs {

struct DfsConfig {
  std::uint64_t chunk_size = 1ull << 20;  // DAOS DFS default: 1 MiB
};

enum class InodeType : std::uint8_t { kDirectory = 0, kFile = 1 };

struct DfsStat {
  InodeType type = InodeType::kFile;
  daos::ObjectId oid;
  std::uint64_t size = 0;   ///< files only
  std::uint32_t mode = 0644;
};

struct DirEntry {
  std::string name;
  InodeType type = InodeType::kFile;
};

/// Open flags (subset of O_*).
struct OpenFlags {
  bool create = false;
  bool exclusive = false;  ///< with create: fail if the file exists
  bool truncate = false;
};

using Fd = std::uint64_t;

class Dfs {
 public:
  /// Mounts the DFS namespace in `cont`. With `create`, formats a fresh
  /// namespace (root object + superblock); otherwise verifies the
  /// superblock written by a previous mount.
  static Result<std::unique_ptr<Dfs>> Mount(daos::DaosClient* client,
                                            daos::ContainerId cont,
                                            bool create,
                                            DfsConfig config = {});

  // --- namespace operations (control-plane traffic in ROS2) --------------
  Status Mkdir(const std::string& path, std::uint32_t mode = 0755);
  Result<Fd> Open(const std::string& path, OpenFlags flags,
                  std::uint32_t mode = 0644);
  Status Close(Fd fd);
  Result<DfsStat> Stat(const std::string& path);
  Result<std::vector<DirEntry>> Readdir(const std::string& path);
  Status Unlink(const std::string& path);  ///< file or empty directory
  Status Rename(const std::string& from, const std::string& to);

  // --- file I/O (data-plane traffic) --------------------------------------
  /// Returns bytes read (clamped at EOF). Chunk-spanning reads fan out to
  /// per-chunk fetches.
  Result<std::uint64_t> Read(Fd fd, std::uint64_t offset,
                             std::span<std::byte> out);
  Status Write(Fd fd, std::uint64_t offset, std::span<const std::byte> data);
  Result<std::uint64_t> Size(Fd fd);
  /// Backing object id of an open file (used by inline services that need
  /// a stable per-file nonce).
  Result<daos::ObjectId> Oid(Fd fd) const;
  Status Truncate(Fd fd, std::uint64_t new_size);
  /// Durability barrier. The model's tiers are immediately durable, so this
  /// only validates the handle (kept for POSIX parity with FIO's fsync).
  Status Fsync(Fd fd);

  std::uint64_t chunk_size() const { return config_.chunk_size; }

 private:
  struct OpenFile {
    daos::ObjectId oid;
    std::uint64_t size = 0;
  };

  Dfs(daos::DaosClient* client, daos::ContainerId cont, DfsConfig config)
      : client_(client), cont_(cont), config_(config) {}

  /// Resolves `path` to its parent directory oid + leaf name.
  Status ResolveParent(const std::string& path, daos::ObjectId* parent,
                       std::string* leaf);
  /// Looks up one entry in a directory.
  Result<DfsStat> LookupEntry(const daos::ObjectId& dir,
                              const std::string& name);
  Status WriteEntry(const daos::ObjectId& dir, const std::string& name,
                    const DfsStat& stat);

  Result<std::uint64_t> LoadFileSize(const daos::ObjectId& oid);
  Status StoreFileSize(const daos::ObjectId& oid, std::uint64_t size);

  daos::DaosClient* client_;
  daos::ContainerId cont_;
  DfsConfig config_;
  daos::ObjectId root_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;  // 0/1/2 reserved, POSIX-style
};

}  // namespace ros2::dfs
