// Buffered sequential streams over DFS files (§3.3: "client-side batching
// for large requests").
//
// FIO-style workloads issue aligned blocks, but real pipelines (checkpoint
// writers, dataset ingesters) emit odd-sized appends. These adapters batch
// them into chunk-sized DAOS updates / readahead fetches so the RPC count
// scales with data volume, not call count.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "dfs/dfs.h"

namespace ros2::dfs {

/// Append-oriented buffered writer. Not thread-safe (one stream per file
/// writer, like std::ofstream). Data is visible after Flush()/Close().
///
/// Error model: the first failed write latches (status()); subsequent
/// Append/Flush calls fail fast with it rather than writing out of order
/// past a hole. Call Close() to drain the buffer AND observe any failure
/// — the destructor closes best-effort and must discard the status, so a
/// writer that never calls Close() can lose a write error silently.
class DfsOutputStream {
 public:
  /// Buffers up to `buffer_size` bytes (default: the mount's
  /// write_coalesce_chunks * chunk_size, so each flush is one pipelined
  /// multi-chunk batch rather than one RPC per Append).
  DfsOutputStream(Dfs* dfs, Fd fd, std::size_t buffer_size = 0);
  ~DfsOutputStream();  ///< best-effort Close(); call Close() to check errors

  DfsOutputStream(const DfsOutputStream&) = delete;
  DfsOutputStream& operator=(const DfsOutputStream&) = delete;

  /// Appends at the current stream offset, batching into the buffer.
  Status Append(std::span<const std::byte> data);

  /// Writes out any buffered bytes.
  Status Flush();

  /// Flushes and seals the stream: further Append/Flush calls fail with
  /// FAILED_PRECONDITION. Returns the first write failure the stream hit
  /// (including one during this Close); idempotent — closing again
  /// returns the same status.
  Status Close();
  bool closed() const { return closed_; }

  /// First write failure the stream latched (OK while healthy).
  const Status& status() const { return first_error_; }

  /// Bytes appended so far (buffered + flushed).
  std::uint64_t offset() const { return offset_; }
  std::uint64_t flushes() const { return flushes_; }

 private:
  Dfs* dfs_;
  Fd fd_;
  std::uint64_t offset_ = 0;     ///< logical end of the stream
  std::uint64_t buffered_at_ = 0;  ///< file offset of buffer_[0]
  Buffer buffer_;
  std::size_t fill_ = 0;
  std::uint64_t flushes_ = 0;
  Status first_error_;
  bool closed_ = false;
};

/// Sequential buffered reader with readahead.
///
/// Each window miss refills readahead bytes ahead of the cursor in one
/// pipelined multi-chunk read (default window: the mount's
/// readahead_chunks * chunk_size). With DfsConfig::readahead off the
/// stream is a pass-through: every Read goes straight to Dfs::Read for
/// exactly the bytes asked, nothing speculative.
class DfsInputStream {
 public:
  DfsInputStream(Dfs* dfs, Fd fd, std::size_t readahead = 0);

  /// Reads at the cursor; returns bytes read (0 at EOF).
  Result<std::uint64_t> Read(std::span<std::byte> out);

  /// Moves the cursor (keeps the window if it still covers the position).
  void Seek(std::uint64_t offset);

  std::uint64_t offset() const { return offset_; }
  std::uint64_t refills() const { return refills_; }

 private:
  Status Refill();

  Dfs* dfs_;
  Fd fd_;
  std::uint64_t offset_ = 0;   ///< cursor
  std::uint64_t window_at_ = 0;
  Buffer window_;
  std::uint64_t window_len_ = 0;  ///< valid bytes in window_
  std::uint64_t refills_ = 0;
};

}  // namespace ros2::dfs
