// Registered-memory pool: an LRU MrCache per Endpoint plus RAII MrLease
// handles.
//
// Production RDMA stacks (DAOS, UCX, libfabric rails) never register
// memory per I/O: ibv_reg_mr pins pages and programs the NIC's MTT, a
// syscall-heavy path that costs microseconds while the data path costs
// nanoseconds. They pool registrations keyed by the buffer identity and
// reuse them across calls. This module is that pool for the in-process
// fabric:
//
//  - MrCache: per-endpoint cache of MemoryRegions keyed by
//    {pd, addr, len, access}. LRU-bounded (entries with outstanding
//    leases are never evicted), with hit/miss/eviction counters so the
//    bench and tests can see the pool working.
//  - MrLease: RAII handle for one use of a registration. A lease from
//    MrCache::Acquire returns the entry to the cache on release; a lease
//    from MrLease::Register (the unpooled path, kept for comparison
//    benches) deregisters on release. Either way every early-return path
//    releases by construction — the leak class the ad-hoc
//    RegisterMemory/DeregisterMemory pairs in RpcClient::Call suffered
//    from is gone.
//
// Capability hygiene: pooled rkeys stay valid between calls (exactly like
// DAOS's pooled registrations). The fabric's scoped-rkey mitigations
// (TTL, revocation, PD scoping) still apply — a revoked or expired entry
// is detected on the next Acquire, dropped, and re-registered.
//
// Thread-safety: worker threads share an Endpoint once the engine runs
// real xstreams, so Acquire/Release and the LRU bookkeeping are guarded
// by one cache mutex (lock order: MrCache before Endpoint — the cache
// calls RegisterMemory/DeregisterMemory while holding its lock; the
// endpoint never calls back into the cache under its own lock; the edge
// is machine-checked as an acquired-before contract on mu_). The
// hit/miss/eviction counters are atomic so telemetry reads don't block
// the data path.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/fabric.h"
#include "telemetry/metrics.h"

namespace ros2::net {

/// Cache key: the identity of a registration request.
struct MrKey {
  PdId pd = 0;
  std::uintptr_t addr = 0;
  std::size_t len = 0;
  std::uint32_t access = kLocalOnly;
  bool operator==(const MrKey&) const = default;
};

struct MrKeyHash {
  std::size_t operator()(const MrKey& key) const {
    auto mix = [](std::uint64_t x) {
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDull;
      x ^= x >> 33;
      return x;
    };
    std::uint64_t h = mix(key.addr ^ (std::uint64_t(key.pd) << 48));
    h = mix(h ^ key.len ^ (std::uint64_t(key.access) << 32));
    return std::size_t(h);
  }
};

/// One cached registration. Stable address (lives in MrCache's list) so
/// leases can point at it.
struct MrCacheEntry {
  MrKey key;
  MemoryRegion mr;
  std::uint32_t leases = 0;  ///< outstanding MrLease handles
  /// True once the entry was dropped from the index (revoked/expired
  /// while leased): it lives on a side list until its leases drain, so
  /// outstanding MrLease handles never dangle.
  bool detached = false;
};

class MrCache;

/// RAII handle for one use of a memory registration. Movable, not
/// copyable; releasing is idempotent and happens at destruction on every
/// path.
class MrLease {
 public:
  MrLease() = default;
  MrLease(MrLease&& other) noexcept;
  MrLease& operator=(MrLease&& other) noexcept;
  MrLease(const MrLease&) = delete;
  MrLease& operator=(const MrLease&) = delete;
  ~MrLease() { Release(); }

  /// The UNPOOLED path: a fresh ad-hoc registration that deregisters on
  /// release. Exists so the pooled-vs-unpooled comparison (bench_micro_rpc)
  /// measures the old per-call cost without the old leak.
  static Result<MrLease> Register(Endpoint* endpoint, PdId pd,
                                  std::span<std::byte> region,
                                  std::uint32_t access);

  bool valid() const { return endpoint_ != nullptr; }
  const MemoryRegion& mr() const { return mr_; }
  RKey rkey() const { return mr_.rkey; }
  std::uintptr_t addr() const { return mr_.addr; }
  std::uint64_t length() const { return mr_.length; }

  /// Returns the registration to its cache (pooled) or deregisters it
  /// (unpooled). Safe to call on an empty/released lease.
  void Release();

 private:
  friend class MrCache;
  MrLease(MrCache* cache, MrCacheEntry* entry, Endpoint* endpoint,
          const MemoryRegion& mr)
      : cache_(cache), entry_(entry), endpoint_(endpoint), mr_(mr) {}

  MrCache* cache_ = nullptr;       // null => owned (unpooled) lease
  MrCacheEntry* entry_ = nullptr;  // cache-resident entry, pooled only
  Endpoint* endpoint_ = nullptr;   // null => empty lease
  MemoryRegion mr_{};
};

/// LRU-bounded pool of registrations for one Endpoint.
class MrCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  explicit MrCache(Endpoint* endpoint,
                   std::size_t capacity = kDefaultCapacity)
      : endpoint_(endpoint), capacity_(capacity) {}
  ~MrCache();
  MrCache(const MrCache&) = delete;
  MrCache& operator=(const MrCache&) = delete;

  /// Returns a lease on a registration of `region` in `pd` with `access`.
  /// Cache hit: no fabric call at all. Miss: registers, caches, and (if
  /// over capacity) evicts the least-recently-used unleased entry.
  Result<MrLease> Acquire(PdId pd, std::span<std::byte> region,
                          std::uint32_t access) ROS2_EXCLUDES(mu_);

  /// Drops (and deregisters) every unleased entry. Returns the count
  /// dropped. Leased entries stay.
  std::size_t Clear() ROS2_EXCLUDES(mu_);

  /// Shrinks/grows the bound; evicts down immediately if needed.
  void set_capacity(std::size_t capacity) ROS2_EXCLUDES(mu_);
  std::size_t capacity() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return capacity_;
  }

  std::size_t size() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return lru_.size();
  }
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t evictions() const { return evictions_.value(); }
  /// Outstanding MrLease handles across all entries.
  std::uint32_t leased() const {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// The counters behind hits()/misses()/evictions(), exposed so a
  /// telemetry tree can link them as views (single source of truth — the
  /// cache keeps updating the same objects the snapshot reads).
  const telemetry::Counter& hits_counter() const { return hits_; }
  const telemetry::Counter& misses_counter() const { return misses_; }
  const telemetry::Counter& evictions_counter() const { return evictions_; }

 private:
  friend class MrLease;
  using LruList = std::list<MrCacheEntry>;

  void ReleaseEntry(MrCacheEntry* entry) ROS2_EXCLUDES(mu_);
  /// Evicts unleased entries from the LRU tail until size() <= target.
  void EvictDownTo(std::size_t target) ROS2_REQUIRES(mu_);
  /// True if the cached MR is still usable (registered, not revoked, not
  /// expired).
  bool StillValid(const MemoryRegion& mr) const;

  Endpoint* endpoint_;
  /// Guards capacity_, lru_, detached_, index_, and every entry's
  /// leases/detached fields. Entry ADDRESSES are stable (list nodes), so
  /// leases hold MrCacheEntry* across unlocked regions safely. Taken
  /// BEFORE the owning endpoint's table lock (the documented
  /// MrCache -> Endpoint order, machine-checked).
  mutable common::Mutex mu_ ROS2_ACQUIRED_BEFORE(endpoint_->mu_);
  std::size_t capacity_ ROS2_GUARDED_BY(mu_);
  LruList lru_ ROS2_GUARDED_BY(mu_);  // front = most recently used
  // Stale-but-leased entries parked until their last lease releases.
  LruList detached_ ROS2_GUARDED_BY(mu_);
  std::unordered_map<MrKey, LruList::iterator, MrKeyHash> index_
      ROS2_GUARDED_BY(mu_);
  telemetry::Counter hits_{1};
  telemetry::Counter misses_{1};
  telemetry::Counter evictions_{1};
  std::atomic<std::uint32_t> outstanding_{0};
};

}  // namespace ros2::net
