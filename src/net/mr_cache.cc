#include "net/mr_cache.h"

#include <utility>

namespace ros2::net {

// ---------------------------------------------------------------- MrLease

MrLease::MrLease(MrLease&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      entry_(std::exchange(other.entry_, nullptr)),
      endpoint_(std::exchange(other.endpoint_, nullptr)),
      mr_(other.mr_) {}

MrLease& MrLease::operator=(MrLease&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = std::exchange(other.cache_, nullptr);
    entry_ = std::exchange(other.entry_, nullptr);
    endpoint_ = std::exchange(other.endpoint_, nullptr);
    mr_ = other.mr_;
  }
  return *this;
}

Result<MrLease> MrLease::Register(Endpoint* endpoint, PdId pd,
                                  std::span<std::byte> region,
                                  std::uint32_t access) {
  if (endpoint == nullptr) return Status(InvalidArgument("null endpoint"));
  ROS2_ASSIGN_OR_RETURN(MemoryRegion mr,
                        endpoint->RegisterMemory(pd, region, access));
  return MrLease(nullptr, nullptr, endpoint, mr);
}

void MrLease::Release() {
  if (endpoint_ == nullptr) return;
  if (cache_ != nullptr) {
    cache_->ReleaseEntry(entry_);
  } else {
    (void)endpoint_->DeregisterMemory(mr_.rkey);
  }
  cache_ = nullptr;
  entry_ = nullptr;
  endpoint_ = nullptr;
}

// ---------------------------------------------------------------- MrCache

MrCache::~MrCache() { (void)Clear(); }

bool MrCache::StillValid(const MemoryRegion& mr) const {
  MemoryRegion live;
  if (!endpoint_->FindMr(mr.rkey, &live) || live.revoked) return false;
  if (live.expires_at > 0.0 &&
      endpoint_->fabric()->now() >= live.expires_at) {
    return false;
  }
  return true;
}

Result<MrLease> MrCache::Acquire(PdId pd, std::span<std::byte> region,
                                 std::uint32_t access) {
  const MrKey key{pd, reinterpret_cast<std::uintptr_t>(region.data()),
                  region.size(), access};
  common::MutexLock lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (StillValid(it->second->mr)) {
      hits_.Add(1);
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      MrCacheEntry& entry = *it->second;
      ++entry.leases;
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      return MrLease(this, &entry, endpoint_, entry.mr);
    }
    // Revoked/expired/externally-deregistered: drop and re-register. An
    // entry with outstanding leases is PARKED (not freed) so those
    // MrLease handles stay valid; it is reclaimed when the last one
    // releases.
    (void)endpoint_->DeregisterMemory(it->second->mr.rkey);
    if (it->second->leases > 0) {
      it->second->detached = true;
      detached_.splice(detached_.begin(), lru_, it->second);
    } else {
      lru_.erase(it->second);
    }
    index_.erase(it);
  }
  misses_.Add(1);
  ROS2_ASSIGN_OR_RETURN(MemoryRegion mr,
                        endpoint_->RegisterMemory(pd, region, access));
  lru_.push_front(MrCacheEntry{key, mr, 1});
  index_[key] = lru_.begin();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (lru_.size() > capacity_) EvictDownTo(capacity_);
  return MrLease(this, &lru_.front(), endpoint_, mr);
}

void MrCache::ReleaseEntry(MrCacheEntry* entry) {
  common::MutexLock lk(mu_);
  if (entry->leases > 0) --entry->leases;
  if (outstanding_.load(std::memory_order_acquire) > 0) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (entry->detached && entry->leases == 0) {
    // Last lease on a parked stale entry: reclaim it (its MR was already
    // deregistered when it was detached).
    for (auto it = detached_.begin(); it != detached_.end(); ++it) {
      if (&*it == entry) {
        detached_.erase(it);
        break;
      }
    }
  }
}

void MrCache::EvictDownTo(std::size_t target) {
  // Walk from the LRU tail; entries with outstanding leases are pinned.
  auto it = lru_.end();
  while (lru_.size() > target && it != lru_.begin()) {
    --it;
    if (it->leases > 0) continue;
    (void)endpoint_->DeregisterMemory(it->mr.rkey);
    index_.erase(it->key);
    it = lru_.erase(it);
    evictions_.Add(1);
  }
}

std::size_t MrCache::Clear() {
  common::MutexLock lk(mu_);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->leases > 0) {
      ++it;
      continue;
    }
    (void)endpoint_->DeregisterMemory(it->mr.rkey);
    index_.erase(it->key);
    it = lru_.erase(it);
    ++dropped;
  }
  return dropped;
}

void MrCache::set_capacity(std::size_t capacity) {
  common::MutexLock lk(mu_);
  capacity_ = capacity;
  if (lru_.size() > capacity_) EvictDownTo(capacity_);
}

}  // namespace ros2::net
