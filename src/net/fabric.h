// User-space fabric: UCX/libfabric-like endpoints with TCP and RDMA
// semantics (§3.2, §3.4).
//
// The fabric is in-process, but the *mechanisms* are real:
//
//  - RDMA: protection domains, memory regions with rkeys (optionally
//    scoped: TTL + revocation, §2.3's mitigations), queue pairs with
//    two-sided SEND/RECV and one-sided READ/WRITE. One-sided ops validate
//    {rkey known, not revoked, not expired, PD match, bounds, access mask}
//    before touching memory — exactly the capability model whose abuse
//    Pythia [39] demonstrated.
//  - TCP: the same Qp handle but *without* one-sided ops: payloads can only
//    move through send/recv streams (upper layers pay the copies, which is
//    where the paper's TCP overhead lives).
//
// Time for rkey expiry is the fabric's logical clock, advanced by tests and
// by the perf-model-driven harness.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/function_ref.h"
#include "common/status.h"
#include "perf/types.h"

namespace ros2::net {

class MrCache;
class PollSet;

using perf::Transport;

/// Access rights granted by a memory registration.
enum AccessFlags : std::uint32_t {
  kLocalOnly = 0,
  kRemoteRead = 1u << 0,
  kRemoteWrite = 1u << 1,
};

using PdId = std::uint32_t;
using RKey = std::uint64_t;
using TenantId = std::uint32_t;
inline constexpr TenantId kSystemTenant = 0;

/// A registered memory region (MR).
struct MemoryRegion {
  RKey rkey = 0;
  PdId pd = 0;
  std::uintptr_t addr = 0;
  std::size_t length = 0;
  std::uint32_t access = kLocalOnly;
  double expires_at = 0.0;  ///< fabric-clock seconds; 0 = no expiry
  bool revoked = false;
};

/// Two-sided message as delivered by Qp::Recv.
struct Message {
  Buffer payload;
};

class Endpoint;
class Fabric;

/// A connected queue pair. Obtained via Endpoint::Connect/Accept; always
/// paired with exactly one remote Qp.
class Qp {
 public:
  Transport transport() const { return transport_; }
  PdId local_pd() const { return local_pd_; }
  bool connected() const { return peer_ != nullptr; }
  /// The remote half of this connection (in-process fabric convenience,
  /// used to wire server progress loops).
  Qp* peer() const { return peer_; }

  /// Two-sided eager send: copies `payload` into the peer's receive queue.
  /// Both transports support this (UCX active-message equivalent).
  Status Send(std::span<const std::byte> payload);

  /// Polls the receive queue; NOT_FOUND when empty.
  Result<Message> Recv();
  bool HasMessage() const { return !rx_queue_.empty(); }

  /// One-sided RDMA READ: remote [remote_addr, +local.size()) -> local.
  /// RDMA transport only; validates the rkey capability at the remote side.
  Status RdmaRead(std::span<std::byte> local, std::uintptr_t remote_addr,
                  RKey rkey);

  /// One-sided RDMA WRITE: local -> remote [remote_addr, +local.size()).
  Status RdmaWrite(std::span<const std::byte> local,
                   std::uintptr_t remote_addr, RKey rkey);

  // Traffic counters (bytes moved through this Qp, both directions).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_one_sided() const { return bytes_one_sided_; }

  /// Fault injection: the next `count` Send() calls fail with UNAVAILABLE
  /// (a flapping link / blown send queue). Lets tests drive the
  /// send-failed cleanup paths that are unreachable on a healthy fabric.
  void InjectSendFaults(int count) { send_faults_ = count; }

  ~Qp();

 private:
  friend class Endpoint;
  friend class PollSet;
  Qp(Endpoint* owner, Transport transport, PdId pd)
      : owner_(owner), transport_(transport), local_pd_(pd) {}

  Status ValidateOneSided(std::uintptr_t remote_addr, std::size_t len,
                          RKey rkey, std::uint32_t need_access,
                          const MemoryRegion** out_mr) const;

  Endpoint* owner_;
  Transport transport_;
  PdId local_pd_;
  Qp* peer_ = nullptr;
  std::deque<Message> rx_queue_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_one_sided_ = 0;
  int send_faults_ = 0;
  PollSet* poll_set_ = nullptr;  // readiness set this Qp reports into
  bool poll_ready_ = false;      // already queued in the set's ready ring
};

/// Readiness set over queue pairs — the completion-channel analog of a
/// CaRT/UCX progress context. A server adds every accepted Qp once;
/// message arrival marks the Qp ready (edge-triggered), and one Drain()
/// services exactly the ready QPs, so a progress call costs O(ready), not
/// O(connections).
///
/// Each arm/drain cycle pays the honest event-channel cost: the first
/// message into an idle set rings a doorbell (one byte written to a
/// self-pipe, the eventfd a real CQ channel signals) and Drain poll()s the
/// channel and reads the byte back — the syscalls a real progress loop
/// pays per wakeup. Pipelined clients amortize that per-wakeup cost over
/// every request serviced by the wakeup, which is exactly the win
/// bench_micro_pipeline gates. (Same philosophy as RegisterMemory's page
/// pinning: the stand-in pays the real mechanism's cost so batching wins
/// honestly.) On platforms without pipes the set degrades to the pure
/// in-memory ready ring.
class PollSet {
 public:
  PollSet();
  ~PollSet();  // detaches any still-registered QPs
  PollSet(const PollSet&) = delete;
  PollSet& operator=(const PollSet&) = delete;

  /// Registers `qp`; messages already queued mark it ready immediately.
  /// A Qp belongs to at most one set (re-adding is a no-op; adding a Qp
  /// owned by another set is an error).
  Status Add(Qp* qp);
  void Remove(Qp* qp);

  /// Polls the event channel, then hands each ready Qp to `fn` exactly
  /// once. A Qp left with queued messages (e.g. a handler bailed early) is
  /// re-marked ready for the next drain. Returns the number serviced.
  std::size_t Drain(FunctionRef<void(Qp*)> fn);

  bool has_ready() const { return !ready_.empty(); }
  std::size_t member_count() const { return members_.size(); }
  /// Event-channel telemetry: doorbell rings (arm cycles) and drains.
  std::uint64_t doorbells() const { return doorbells_; }
  std::uint64_t drains() const { return drains_; }

 private:
  friend class Qp;
  void MarkReady(Qp* qp);
  void PollChannel();  // zero-timeout poll + doorbell byte consumption

  std::vector<Qp*> members_;
  std::deque<Qp*> ready_;
  Qp* draining_ = nullptr;        // qp currently inside Drain's callback
  bool draining_removed_ = false; // callback removed/destroyed draining_
  int pipe_rd_ = -1;
  int pipe_wr_ = -1;
  bool doorbell_armed_ = false;  // a byte is sitting in the pipe
  std::uint64_t doorbells_ = 0;
  std::uint64_t drains_ = 0;
};

/// A fabric endpoint (one per node/process): owns PDs, MRs, and QPs.
class Endpoint {
 public:
  ~Endpoint();

  const std::string& address() const { return address_; }
  Fabric* fabric() const { return fabric_; }

  /// Allocates a protection domain owned by `tenant`.
  PdId AllocPd(TenantId tenant = kSystemTenant);

  /// Registers `region` in `pd` with the given access and optional TTL
  /// (seconds of fabric time; 0 = no expiry). Returns the MR (rkey inside).
  ///
  /// Pins the region's pages (best-effort mlock, like ibv_reg_mr's
  /// get_user_pages) — registration is a genuinely expensive syscall path
  /// here, exactly the cost the per-endpoint MrCache amortizes.
  Result<MemoryRegion> RegisterMemory(PdId pd, std::span<std::byte> region,
                                      std::uint32_t access,
                                      double ttl = 0.0);

  /// Invalidate an rkey immediately (scoped-capability revocation).
  Status RevokeMemory(RKey rkey);
  Status DeregisterMemory(RKey rkey);

  /// Tenant owning `pd` (NOT_FOUND if the PD does not exist).
  Result<TenantId> PdTenant(PdId pd) const;

  /// Connects to `remote`, creating a Qp pair (one here, one there).
  /// `pd` scopes this side's one-sided operations.
  Result<Qp*> Connect(Endpoint* remote, Transport transport, PdId pd,
                      PdId remote_pd);

  std::size_t qp_count() const { return qps_.size(); }
  std::size_t mr_count() const { return mrs_.size(); }

  /// The endpoint's registered-memory pool (see net/mr_cache.h). Data
  /// paths acquire leases from here instead of registering per call.
  MrCache& mr_cache() { return *mr_cache_; }

  /// Server-side accept hook: every Qp subsequently accepted by this
  /// endpoint (the remote half of a peer's Connect) is added to `set`, so
  /// one progress loop services all connections without per-QP scans.
  /// Pass nullptr to stop auto-registering.
  void set_accept_poll_set(PollSet* set) { accept_poll_set_ = set; }

  /// Fault injection: after `skip` more successful registrations, the
  /// next `count` RegisterMemory calls fail with RESOURCE_EXHAUSTED (MR
  /// table full — a real verbs failure mode). Drives the
  /// registration-failed cleanup paths in tests.
  void InjectRegisterFaults(int skip, int count) {
    register_fault_skip_ = skip;
    register_faults_ = count;
  }

 private:
  friend class Fabric;
  friend class Qp;
  friend class MrCache;
  Endpoint(Fabric* fabric, std::string address);

  const MemoryRegion* FindMr(RKey rkey) const;

  // Refcounted page pinning (ibv_reg_mr semantics: overlapping MRs each
  // hold their pages; the last deregistration unpins). Keyed by 4 KiB
  // page base address.
  void PinRegion(std::uintptr_t addr, std::size_t len);
  void UnpinRegion(std::uintptr_t addr, std::size_t len);

  Fabric* fabric_;
  std::string address_;
  std::uint32_t next_pd_ = 1;
  std::map<PdId, TenantId> pds_;
  std::unordered_map<RKey, MemoryRegion> mrs_;
  std::unordered_map<std::uintptr_t, std::uint32_t> pin_counts_;
  std::vector<std::unique_ptr<Qp>> qps_;
  PollSet* accept_poll_set_ = nullptr;
  int register_fault_skip_ = 0;
  int register_faults_ = 0;
  // Declared last: destroyed first, while mrs_ is still alive to
  // deregister the pooled entries into.
  std::unique_ptr<MrCache> mr_cache_;
};

/// The in-process fabric: endpoint registry + logical clock.
class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Creates (or fails on duplicate address) an endpoint.
  Result<Endpoint*> CreateEndpoint(const std::string& address);
  Result<Endpoint*> Lookup(const std::string& address) const;

  /// Logical time driving rkey TTLs.
  double now() const { return now_; }
  void AdvanceTime(double seconds) { now_ += seconds; }

  /// Fresh, never-reused rkey (fabric-global so leaked rkeys can't collide).
  RKey NextRKey() { return next_rkey_++; }

 private:
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
  double now_ = 0.0;
  RKey next_rkey_ = 0x1000;
};

}  // namespace ros2::net
