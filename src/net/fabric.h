// User-space fabric: UCX/libfabric-like endpoints with TCP and RDMA
// semantics (§3.2, §3.4).
//
// The fabric is in-process, but the *mechanisms* are real:
//
//  - RDMA: protection domains, memory regions with rkeys (optionally
//    scoped: TTL + revocation, §2.3's mitigations), queue pairs with
//    two-sided SEND/RECV and one-sided READ/WRITE. One-sided ops validate
//    {rkey known, not revoked, not expired, PD match, bounds, access mask}
//    before touching memory — exactly the capability model whose abuse
//    Pythia [39] demonstrated.
//  - TCP: the same Qp handle but *without* one-sided ops: payloads can only
//    move through send/recv streams (upper layers pay the copies, which is
//    where the paper's TCP overhead lives).
//
// Time for rkey expiry is the fabric's logical clock, advanced by tests and
// by the perf-model-driven harness.
//
// Threading: the engine now runs real xstream worker threads, so the data
// path is thread-safe — Send/Recv/one-sided ops, memory registration, and
// PollSet::MarkReady may be called from any thread. The locking order is
// MrCache -> Endpoint -> PollSet -> Qp (each level may acquire the ones to
// its right, never the reverse; PollSet drain callbacks run unlocked).
// The contracts are machine-checked where Clang's capability analysis can
// express them: every lock is a common::Mutex, guarded state is tagged
// ROS2_GUARDED_BY, and the Endpoint -> Qp edge is an acquired-after
// contract on Qp::mu_ (which is why Qp is declared after Endpoint — the
// attribute needs the complete type). Control-plane setup/teardown
// (CreateEndpoint, Connect, destroying a Qp or PollSet) must still be
// quiesced against concurrent data-path use of the object being torn down.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/function_ref.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "perf/types.h"

namespace ros2::net {

class MrCache;
class PollSet;
class Qp;
class Endpoint;
class Fabric;

using perf::Transport;

/// Access rights granted by a memory registration.
enum AccessFlags : std::uint32_t {
  kLocalOnly = 0,
  kRemoteRead = 1u << 0,
  kRemoteWrite = 1u << 1,
};

using PdId = std::uint32_t;
using RKey = std::uint64_t;
using TenantId = std::uint32_t;
inline constexpr TenantId kSystemTenant = 0;

/// A registered memory region (MR).
struct MemoryRegion {
  RKey rkey = 0;
  PdId pd = 0;
  std::uintptr_t addr = 0;
  std::size_t length = 0;
  std::uint32_t access = kLocalOnly;
  double expires_at = 0.0;  ///< fabric-clock seconds; 0 = no expiry
  bool revoked = false;
};

/// Two-sided message as delivered by Qp::Recv.
struct Message {
  Buffer payload;
};

/// Readiness set over queue pairs — the completion-channel analog of a
/// CaRT/UCX progress context. A server adds every accepted Qp once;
/// message arrival marks the Qp ready (edge-triggered), and one Drain()
/// services exactly the ready QPs, so a progress call costs O(ready), not
/// O(connections).
///
/// Each arm/drain cycle pays the honest event-channel cost: the first
/// message into an idle set rings a doorbell (one byte written to a
/// self-pipe, the eventfd a real CQ channel signals) and Drain poll()s the
/// channel and reads the byte back — the syscalls a real progress loop
/// pays per wakeup. Pipelined clients amortize that per-wakeup cost over
/// every request serviced by the wakeup, which is exactly the win
/// bench_micro_pipeline gates. (Same philosophy as RegisterMemory's page
/// pinning: the stand-in pays the real mechanism's cost so batching wins
/// honestly.) On platforms without pipes the set degrades to the pure
/// in-memory ready ring.
///
/// Thread-safety: MarkReady (via Qp::Send) and Ring() may come from any
/// thread — the ready ring and doorbell arm state are mutex-guarded, and
/// the armed flag is atomic, so a foreign-thread ring wakes a blocked
/// DrainWait exactly once per arm cycle. Drain/DrainWait themselves are
/// single-consumer: exactly one progress thread drains a given set. Lock
/// order: PollSet::mu_ sits between Endpoint::mu_ and Qp::mu_ (a drain
/// may probe Qp::HasMessage under mu_; a Qp never calls into the set with
/// its own lock held).
class PollSet {
 public:
  PollSet();
  ~PollSet();  // detaches any still-registered QPs
  PollSet(const PollSet&) = delete;
  PollSet& operator=(const PollSet&) = delete;

  /// Registers `qp`; messages already queued mark it ready immediately.
  /// A Qp belongs to at most one set (re-adding is a no-op; adding a Qp
  /// owned by another set is an error).
  Status Add(Qp* qp) ROS2_EXCLUDES(mu_);
  void Remove(Qp* qp) ROS2_EXCLUDES(mu_);

  /// Polls the event channel, then hands each ready Qp to `fn` exactly
  /// once. A Qp left with queued messages (e.g. a handler bailed early) is
  /// re-marked ready for the next drain. Returns the number serviced.
  std::size_t Drain(FunctionRef<void(Qp*)> fn) ROS2_EXCLUDES(mu_);

  /// Blocking Drain for a dedicated progress thread: waits up to
  /// `timeout_ms` for a doorbell (message arrival or Ring()), then drains.
  /// May service zero QPs (timeout, or a bare Ring()).
  std::size_t DrainWait(int timeout_ms, FunctionRef<void(Qp*)> fn)
      ROS2_EXCLUDES(mu_);

  /// Wakes a blocked DrainWait without marking any Qp ready — the hook
  /// for foreign-thread events that the progress loop must notice (e.g. a
  /// worker thread finishing an op whose reply the loop sends).
  void Ring() ROS2_EXCLUDES(mu_);

  bool has_ready() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return !ready_.empty();
  }
  std::size_t member_count() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return members_.size();
  }
  /// Event-channel telemetry: doorbell rings (arm cycles) and drains.
  std::uint64_t doorbells() const {
    return doorbells_.load(std::memory_order_relaxed);
  }
  std::uint64_t drains() const {
    return drains_.load(std::memory_order_relaxed);
  }

 private:
  friend class Qp;
  void MarkReady(Qp* qp) ROS2_EXCLUDES(mu_);
  void MarkReadyLocked(Qp* qp) ROS2_REQUIRES(mu_);
  void RingDoorbell();  // lock-free: atomic armed flag + pipe
  void PollChannel();   // zero-timeout poll + doorbell byte consumption

  mutable common::Mutex mu_;
  common::CondVar cv_;  // DrainWait fallback when pipes are absent
  std::vector<Qp*> members_ ROS2_GUARDED_BY(mu_);
  std::deque<Qp*> ready_ ROS2_GUARDED_BY(mu_);
  /// Qp currently inside Drain's callback.
  Qp* draining_ ROS2_GUARDED_BY(mu_) = nullptr;
  /// Callback removed/destroyed draining_.
  bool draining_removed_ ROS2_GUARDED_BY(mu_) = false;
  /// Ring() since the last DrainWait.
  bool ring_pending_ ROS2_GUARDED_BY(mu_) = false;
  int pipe_rd_ = -1;
  int pipe_wr_ = -1;
  /// A byte is sitting in the pipe. Atomic so a worker-thread MarkReady
  /// and the drain loop's consume can't double-ring or lose the wakeup.
  std::atomic<bool> doorbell_armed_{false};
  std::atomic<std::uint64_t> doorbells_{0};
  std::atomic<std::uint64_t> drains_{0};
};

/// A fabric endpoint (one per node/process): owns PDs, MRs, and QPs.
/// Registration/lookup paths are thread-safe (one mutex over the PD/MR/QP
/// tables); MR data is handed out by value so readers never hold a
/// pointer into the table.
class Endpoint {
 public:
  ~Endpoint();

  const std::string& address() const { return address_; }
  Fabric* fabric() const { return fabric_; }

  /// Allocates a protection domain owned by `tenant`.
  PdId AllocPd(TenantId tenant = kSystemTenant) ROS2_EXCLUDES(mu_);

  /// Registers `region` in `pd` with the given access and optional TTL
  /// (seconds of fabric time; 0 = no expiry). Returns the MR (rkey inside).
  ///
  /// Pins the region's pages (best-effort mlock, like ibv_reg_mr's
  /// get_user_pages) — registration is a genuinely expensive syscall path
  /// here, exactly the cost the per-endpoint MrCache amortizes.
  Result<MemoryRegion> RegisterMemory(PdId pd, std::span<std::byte> region,
                                      std::uint32_t access, double ttl = 0.0)
      ROS2_EXCLUDES(mu_);

  /// Invalidate an rkey immediately (scoped-capability revocation).
  Status RevokeMemory(RKey rkey) ROS2_EXCLUDES(mu_);
  Status DeregisterMemory(RKey rkey) ROS2_EXCLUDES(mu_);

  /// Tenant owning `pd` (NOT_FOUND if the PD does not exist).
  Result<TenantId> PdTenant(PdId pd) const ROS2_EXCLUDES(mu_);

  /// Copies the MR for `rkey` into `*out`; false if unknown. By-value so
  /// no caller holds a pointer into the table across the lock.
  bool FindMr(RKey rkey, MemoryRegion* out) const ROS2_EXCLUDES(mu_);

  /// Connects to `remote`, creating a Qp pair (one here, one there).
  /// `pd` scopes this side's one-sided operations.
  Result<Qp*> Connect(Endpoint* remote, Transport transport, PdId pd,
                      PdId remote_pd);

  std::size_t qp_count() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return qps_.size();
  }
  std::size_t mr_count() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return mrs_.size();
  }

  /// The endpoint's registered-memory pool (see net/mr_cache.h). Data
  /// paths acquire leases from here instead of registering per call.
  MrCache& mr_cache() { return *mr_cache_; }

  /// Byte totals across every Qp this endpoint owns (two-sided sends and
  /// one-sided RDMA), for telemetry gauges. Takes the endpoint lock; the
  /// per-Qp counters themselves are relaxed atomics.
  struct Traffic {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_one_sided = 0;
  };
  Traffic TotalTraffic() const ROS2_EXCLUDES(mu_);

  /// Server-side accept hook: every Qp subsequently accepted by this
  /// endpoint (the remote half of a peer's Connect) is added to `set`, so
  /// one progress loop services all connections without per-QP scans.
  /// Pass nullptr to stop auto-registering.
  void set_accept_poll_set(PollSet* set) ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    accept_poll_set_ = set;
  }

  /// Fault injection: after `skip` more successful registrations, the
  /// next `count` RegisterMemory calls fail with RESOURCE_EXHAUSTED (MR
  /// table full — a real verbs failure mode). Drives the
  /// registration-failed cleanup paths in tests. Arms the endpoint's
  /// FaultPlan at kNetRegister; richer windows go through fault_plan().
  void InjectRegisterFaults(int skip, int count) {
    if (count <= 0) {
      fault_plan_.Disarm(common::FaultPoint::kNetRegister);
      return;
    }
    fault_plan_.Arm(common::FaultPoint::kNetRegister,
                    {std::uint64_t(skip < 0 ? 0 : skip),
                     std::uint64_t(count), 1.0, 0});
  }
  /// The endpoint's fault plan (kNetRegister consulted per registration).
  common::FaultPlan& fault_plan() { return fault_plan_; }

 private:
  friend class Fabric;
  friend class Qp;
  friend class MrCache;
  Endpoint(Fabric* fabric, std::string address);

  // Refcounted page pinning (ibv_reg_mr semantics: overlapping MRs each
  // hold their pages; the last deregistration unpins). Keyed by 4 KiB
  // page base address.
  void PinRegion(std::uintptr_t addr, std::size_t len) ROS2_REQUIRES(mu_);
  void UnpinRegion(std::uintptr_t addr, std::size_t len) ROS2_REQUIRES(mu_);

  Fabric* fabric_;
  std::string address_;
  mutable common::Mutex mu_;
  std::uint32_t next_pd_ ROS2_GUARDED_BY(mu_) = 1;
  std::map<PdId, TenantId> pds_ ROS2_GUARDED_BY(mu_);
  std::unordered_map<RKey, MemoryRegion> mrs_ ROS2_GUARDED_BY(mu_);
  std::unordered_map<std::uintptr_t, std::uint32_t> pin_counts_
      ROS2_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Qp>> qps_ ROS2_GUARDED_BY(mu_);
  PollSet* accept_poll_set_ ROS2_GUARDED_BY(mu_) = nullptr;
  common::FaultPlan fault_plan_;
  // Declared last: destroyed first, while mrs_ is still alive to
  // deregister the pooled entries into.
  std::unique_ptr<MrCache> mr_cache_;
};

/// A connected queue pair. Obtained via Endpoint::Connect/Accept; always
/// paired with exactly one remote Qp. Send/Recv/one-sided ops are
/// thread-safe; destruction must be quiesced against concurrent use.
/// Declared after Endpoint so mu_'s acquired-after contract can name
/// Endpoint::mu_ (Qp::mu_ is the innermost lock in the documented order).
class Qp {
 public:
  Transport transport() const { return transport_; }
  PdId local_pd() const { return local_pd_; }
  bool connected() const { return peer_ != nullptr; }
  /// The remote half of this connection (in-process fabric convenience,
  /// used to wire server progress loops).
  Qp* peer() const { return peer_; }

  /// Two-sided eager send: copies `payload` into the peer's receive queue.
  /// Both transports support this (UCX active-message equivalent).
  Status Send(std::span<const std::byte> payload);

  /// Polls the receive queue; NOT_FOUND when empty.
  Result<Message> Recv() ROS2_EXCLUDES(mu_);
  bool HasMessage() const ROS2_EXCLUDES(mu_) {
    common::MutexLock lk(mu_);
    return !rx_queue_.empty();
  }

  /// One-sided RDMA READ: remote [remote_addr, +local.size()) -> local.
  /// RDMA transport only; validates the rkey capability at the remote side.
  Status RdmaRead(std::span<std::byte> local, std::uintptr_t remote_addr,
                  RKey rkey);

  /// One-sided RDMA WRITE: local -> remote [remote_addr, +local.size()).
  Status RdmaWrite(std::span<const std::byte> local,
                   std::uintptr_t remote_addr, RKey rkey);

  // Traffic counters (bytes moved through this Qp, both directions).
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_one_sided() const {
    return bytes_one_sided_.load(std::memory_order_relaxed);
  }

  /// Fault injection: the next `count` Send() calls fail with UNAVAILABLE
  /// (a flapping link / blown send queue). Lets tests drive the
  /// send-failed cleanup paths that are unreachable on a healthy fabric.
  /// Arms this Qp's FaultPlan at kNetSend; richer windows (skip,
  /// probability) go through fault_plan() directly.
  void InjectSendFaults(int count) {
    if (count <= 0) {
      fault_plan_.Disarm(common::FaultPoint::kNetSend);
      return;
    }
    fault_plan_.Arm(common::FaultPoint::kNetSend,
                    {0, std::uint64_t(count), 1.0, 0});
  }
  /// The Qp's fault plan (kNetSend consulted on every Send).
  common::FaultPlan& fault_plan() { return fault_plan_; }

  ~Qp();

 private:
  friend class Endpoint;
  friend class PollSet;
  Qp(Endpoint* owner, Transport transport, PdId pd)
      : owner_(owner), transport_(transport), local_pd_(pd) {}

  Status ValidateOneSided(std::uintptr_t remote_addr, std::size_t len,
                          RKey rkey, std::uint32_t need_access) const;

  Endpoint* owner_;
  Transport transport_;
  PdId local_pd_;
  Qp* peer_ = nullptr;
  /// Innermost lock of the documented order — the acquired-after edge to
  /// the owning Endpoint's table lock is the machine-checked contract.
  /// (PollSet::mu_ also precedes this lock; the set is reached through an
  /// atomic pointer, which the analysis cannot name.)
  mutable common::Mutex mu_ ROS2_ACQUIRED_AFTER(owner_->mu_);
  /// Foreign threads Send here.
  std::deque<Message> rx_queue_ ROS2_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_one_sided_{0};
  common::FaultPlan fault_plan_;
  /// Readiness set this Qp reports into. Atomic: Send() reads it from
  /// worker threads while Add/Remove swap it on the control path.
  std::atomic<PollSet*> poll_set_{nullptr};
  /// Queued in the set's ready ring — guarded by the OWNING SET's mu_
  /// (not expressible as an attribute through the atomic pointer).
  bool poll_ready_ = false;
};

/// The in-process fabric: endpoint registry + logical clock.
class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Creates (or fails on duplicate address) an endpoint.
  Result<Endpoint*> CreateEndpoint(const std::string& address)
      ROS2_EXCLUDES(mu_);
  Result<Endpoint*> Lookup(const std::string& address) const
      ROS2_EXCLUDES(mu_);

  /// Logical time driving rkey TTLs. Read from worker threads (TTL
  /// checks), so it is atomic; advancing still belongs to the harness.
  double now() const { return now_.load(std::memory_order_relaxed); }
  void AdvanceTime(double seconds) {
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + seconds,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Fresh, never-reused rkey (fabric-global so leaked rkeys can't collide).
  RKey NextRKey() {
    return next_rkey_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_
      ROS2_GUARDED_BY(mu_);
  std::atomic<double> now_{0.0};
  std::atomic<RKey> next_rkey_{0x1000};
};

}  // namespace ros2::net
