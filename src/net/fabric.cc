#include "net/fabric.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <unistd.h>
#define ROS2_HAVE_MLOCK 1
#define ROS2_HAVE_POLL 1
#endif

#include "common/logging.h"
#include "net/mr_cache.h"

namespace ros2::net {
namespace {

// Registration pins the region's pages, like ibv_reg_mr's get_user_pages
// — this (not the bookkeeping) is why real NICs take microseconds per
// registration and why data paths pool MRs. Best-effort: a denied mlock
// (RLIMIT_MEMLOCK) still pays the syscall, which is the honest cost.
void PinPages(std::uintptr_t addr, std::size_t len) {
#ifdef ROS2_HAVE_MLOCK
  (void)mlock(reinterpret_cast<void*>(addr), len);
#else
  (void)addr;
  (void)len;
#endif
}

void UnpinPages(std::uintptr_t addr, std::size_t len) {
#ifdef ROS2_HAVE_MLOCK
  (void)munlock(reinterpret_cast<void*>(addr), len);
#else
  (void)addr;
  (void)len;
#endif
}

}  // namespace

// ----------------------------------------------------------------- Qp

Qp::~Qp() {
  PollSet* set = poll_set_.load(std::memory_order_acquire);
  if (set != nullptr) set->Remove(this);
}

Status Qp::Send(std::span<const std::byte> payload) {
  if (peer_ == nullptr) return Unavailable("qp not connected");
  if (fault_plan_.Evaluate(common::FaultPoint::kNetSend).fire) {
    return Unavailable("injected send fault");
  }
  Message msg;
  msg.payload.assign(payload.begin(), payload.end());
  {
    common::MutexLock lk(peer_->mu_);
    peer_->rx_queue_.push_back(std::move(msg));
  }
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  // The peer's Qp lock is released before taking the poll set's (lock
  // order: PollSet before Qp, never nested the other way).
  PollSet* set = peer_->poll_set_.load(std::memory_order_acquire);
  if (set != nullptr) set->MarkReady(peer_);
  return Status::Ok();
}

Result<Message> Qp::Recv() {
  common::MutexLock lk(mu_);
  if (rx_queue_.empty()) return NotFound("receive queue empty");
  Message msg = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return msg;
}

Status Qp::ValidateOneSided(std::uintptr_t remote_addr, std::size_t len,
                            RKey rkey, std::uint32_t need_access) const {
  if (peer_ == nullptr) return Unavailable("qp not connected");
  if (transport_ != Transport::kRdma) {
    return Unimplemented("one-sided operations require the RDMA transport");
  }
  MemoryRegion mr;
  if (!peer_->owner_->FindMr(rkey, &mr)) {
    return PermissionDenied("unknown rkey");
  }
  if (mr.revoked) {
    return PermissionDenied("rkey has been revoked");
  }
  if (mr.expires_at > 0.0 &&
      peer_->owner_->fabric()->now() >= mr.expires_at) {
    return PermissionDenied("rkey has expired");
  }
  // PD scoping: the capability is only valid on connections bound to the
  // same protection domain at the remote side (per-tenant isolation).
  if (mr.pd != peer_->local_pd_) {
    return PermissionDenied("rkey protection domain does not match qp");
  }
  if ((mr.access & need_access) != need_access) {
    return PermissionDenied("memory region access mask forbids operation");
  }
  if (remote_addr < mr.addr || len > mr.length ||
      remote_addr - mr.addr > mr.length - len) {
    return PermissionDenied("one-sided access outside registered bounds");
  }
  return Status::Ok();
}

Status Qp::RdmaRead(std::span<std::byte> local, std::uintptr_t remote_addr,
                    RKey rkey) {
  ROS2_RETURN_IF_ERROR(
      ValidateOneSided(remote_addr, local.size(), rkey, kRemoteRead));
  std::memcpy(local.data(), reinterpret_cast<const void*>(remote_addr),
              local.size());
  bytes_one_sided_.fetch_add(local.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status Qp::RdmaWrite(std::span<const std::byte> local,
                     std::uintptr_t remote_addr, RKey rkey) {
  ROS2_RETURN_IF_ERROR(
      ValidateOneSided(remote_addr, local.size(), rkey, kRemoteWrite));
  std::memcpy(reinterpret_cast<void*>(remote_addr), local.data(),
              local.size());
  bytes_one_sided_.fetch_add(local.size(), std::memory_order_relaxed);
  return Status::Ok();
}

// -------------------------------------------------------------- PollSet

PollSet::PollSet() {
#ifdef ROS2_HAVE_POLL
  int fds[2];
  if (::pipe(fds) == 0) {
    pipe_rd_ = fds[0];
    pipe_wr_ = fds[1];
    (void)::fcntl(pipe_rd_, F_SETFL, O_NONBLOCK);
    (void)::fcntl(pipe_wr_, F_SETFL, O_NONBLOCK);
  }
#endif
}

PollSet::~PollSet() {
  {
    common::MutexLock lk(mu_);
    for (Qp* qp : members_) {
      qp->poll_set_.store(nullptr, std::memory_order_release);
      qp->poll_ready_ = false;
    }
  }
#ifdef ROS2_HAVE_POLL
  if (pipe_rd_ >= 0) ::close(pipe_rd_);
  if (pipe_wr_ >= 0) ::close(pipe_wr_);
#endif
}

Status PollSet::Add(Qp* qp) {
  if (qp == nullptr) return InvalidArgument("null qp");
  common::MutexLock lk(mu_);
  PollSet* current = qp->poll_set_.load(std::memory_order_acquire);
  if (current == this) return Status::Ok();  // idempotent
  if (current != nullptr) {
    return FailedPrecondition("qp already belongs to another poll set");
  }
  qp->poll_set_.store(this, std::memory_order_release);
  members_.push_back(qp);
  // Messages that arrived before registration must not be lost to the
  // edge trigger: report them as an initial edge.
  if (qp->HasMessage()) MarkReadyLocked(qp);
  return Status::Ok();
}

void PollSet::Remove(Qp* qp) {
  if (qp == nullptr) return;
  common::MutexLock lk(mu_);
  if (qp->poll_set_.load(std::memory_order_acquire) != this) return;
  qp->poll_set_.store(nullptr, std::memory_order_release);
  qp->poll_ready_ = false;
  members_.erase(std::remove(members_.begin(), members_.end(), qp),
                 members_.end());
  ready_.erase(std::remove(ready_.begin(), ready_.end(), qp), ready_.end());
  // A drain callback may remove (or destroy, which removes) the very Qp
  // being serviced; flag it so Drain skips the post-callback re-check.
  if (qp == draining_) draining_removed_ = true;
}

void PollSet::RingDoorbell() {
#ifdef ROS2_HAVE_POLL
  // Ring once per arm cycle (eventfd semantics): the first event into an
  // idle set wakes the progress loop; followers ride the same wakeup —
  // that is the cost pipelining amortizes. The CAS makes the arm
  // exactly-once under concurrent ringers.
  if (pipe_wr_ < 0) return;
  bool expected = false;
  if (doorbell_armed_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    const char byte = 1;
    if (::write(pipe_wr_, &byte, 1) == 1) {
      doorbells_.fetch_add(1, std::memory_order_relaxed);
    } else {
      doorbell_armed_.store(false, std::memory_order_release);
    }
  }
#endif
}

void PollSet::MarkReadyLocked(Qp* qp) {
  if (qp->poll_ready_) return;  // edge already pending
  qp->poll_ready_ = true;
  ready_.push_back(qp);
  RingDoorbell();
  cv_.NotifyAll();
}

void PollSet::MarkReady(Qp* qp) {
  common::MutexLock lk(mu_);
  // The Qp may have been removed between the sender reading its set
  // pointer and this call; membership is re-checked under the lock.
  if (qp->poll_set_.load(std::memory_order_acquire) != this) return;
  MarkReadyLocked(qp);
}

void PollSet::Ring() {
  {
    common::MutexLock lk(mu_);
    ring_pending_ = true;
    RingDoorbell();
  }
  cv_.NotifyAll();
}

void PollSet::PollChannel() {
#ifdef ROS2_HAVE_POLL
  if (pipe_rd_ < 0) return;
  // The real event-channel sequence, at zero timeout (a progress loop
  // never blocks): poll the channel fd, then consume the doorbell.
  // Consume-then-disarm: a concurrent ring that loses the CAS while the
  // byte is still in flight was already pushed to ready_ (push happens
  // before ring), so the drain that follows this call services it.
  struct pollfd pfd;
  pfd.fd = pipe_rd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN) != 0) {
    char drainbuf[16];
    while (::read(pipe_rd_, drainbuf, sizeof(drainbuf)) > 0) {
    }
    doorbell_armed_.store(false, std::memory_order_release);
  }
#endif
}

std::size_t PollSet::Drain(FunctionRef<void(Qp*)> fn) {
  drains_.fetch_add(1, std::memory_order_relaxed);
  PollChannel();
  // Service only the QPs ready at entry; edges raised by `fn` itself wait
  // for the next drain (bounded work per call). The callback may Remove
  // QPs (shrinking ready_), so re-check emptiness every iteration. The
  // lock drops around `fn` so handlers can Send/Recv/Remove freely.
  common::MutexLock lk(mu_);
  const std::size_t bound = ready_.size();
  std::size_t n = 0;
  for (std::size_t i = 0; i < bound && !ready_.empty(); ++i) {
    Qp* qp = ready_.front();
    ready_.pop_front();
    qp->poll_ready_ = false;
    draining_ = qp;
    draining_removed_ = false;
    lk.Unlock();
    fn(qp);
    lk.Lock();
    const bool removed = draining_removed_;
    draining_ = nullptr;
    draining_removed_ = false;
    // Liveness: a handler that bailed early (decode error) leaves bytes
    // queued with the edge already consumed; re-raise it — unless the
    // callback removed/destroyed the Qp, in which case touching it is UB.
    if (!removed && qp->HasMessage()) MarkReadyLocked(qp);
    ++n;
  }
  lk.Unlock();
  if (n > 0) {
    // Re-arm/re-check: an edge-triggered channel consumer must look at
    // the event queue again AFTER re-arming notification, or a doorbell
    // that raced with the service loop is lost until the next external
    // wakeup (the ibv_req_notify_cq-then-repoll discipline). One more
    // zero-timeout poll per productive wakeup — also amortized by depth.
    PollChannel();
  }
  return n;
}

std::size_t PollSet::DrainWait(int timeout_ms, FunctionRef<void(Qp*)> fn) {
  bool must_wait;
  {
    common::MutexLock lk(mu_);
    must_wait = ready_.empty() && !ring_pending_;
  }
  if (must_wait) {
#ifdef ROS2_HAVE_POLL
    if (pipe_rd_ >= 0) {
      // Block in poll() on the doorbell pipe — the byte a foreign-thread
      // MarkReady/Ring writes ends the wait; Drain's PollChannel consumes
      // it. A doorbell armed before we got here means the byte is already
      // in the pipe, so poll() returns immediately: no lost wakeup.
      struct pollfd pfd;
      pfd.fd = pipe_rd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      (void)::poll(&pfd, 1, timeout_ms);
    } else
#endif
    {
      // Deadline while-loop instead of a predicate lambda: the guarded
      // reads stay in this (annotated) function body.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms);
      common::MutexLock lk(mu_);
      while (ready_.empty() && !ring_pending_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        (void)cv_.WaitFor(mu_, deadline - now);
      }
    }
  }
  {
    common::MutexLock lk(mu_);
    ring_pending_ = false;
  }
  return Drain(fn);
}

// ------------------------------------------------------------- Endpoint

Endpoint::Endpoint(Fabric* fabric, std::string address)
    : fabric_(fabric),
      address_(std::move(address)),
      mr_cache_(std::make_unique<MrCache>(this)) {}

Endpoint::~Endpoint() = default;

void Endpoint::PinRegion(std::uintptr_t addr, std::size_t len) {
  // One mlock for the whole region (idempotent per page), plus a per-page
  // refcount so overlapping registrations each hold their pages — like
  // get_user_pages under ibv_reg_mr, where the LAST release unpins.
  PinPages(addr, len);
  constexpr std::uintptr_t kPage = 4096;
  for (std::uintptr_t page = addr & ~(kPage - 1); page < addr + len;
       page += kPage) {
    ++pin_counts_[page];
  }
}

void Endpoint::UnpinRegion(std::uintptr_t addr, std::size_t len) {
  constexpr std::uintptr_t kPage = 4096;
  // munlock only the contiguous runs of pages whose refcount hits zero.
  std::uintptr_t run_start = 0;
  std::uintptr_t run_len = 0;
  for (std::uintptr_t page = addr & ~(kPage - 1); page < addr + len;
       page += kPage) {
    bool free_page = false;
    auto it = pin_counts_.find(page);
    if (it != pin_counts_.end() && --it->second == 0) {
      pin_counts_.erase(it);
      free_page = true;
    }
    if (free_page) {
      if (run_len == 0) run_start = page;
      run_len += kPage;
    } else if (run_len != 0) {
      UnpinPages(run_start, run_len);
      run_len = 0;
    }
  }
  if (run_len != 0) UnpinPages(run_start, run_len);
}

PdId Endpoint::AllocPd(TenantId tenant) {
  common::MutexLock lk(mu_);
  const PdId id = next_pd_++;
  pds_[id] = tenant;
  return id;
}

Result<MemoryRegion> Endpoint::RegisterMemory(PdId pd,
                                              std::span<std::byte> region,
                                              std::uint32_t access,
                                              double ttl) {
  common::MutexLock lk(mu_);
  if (!pds_.contains(pd)) return NotFound("unknown protection domain");
  if (region.empty()) return InvalidArgument("empty memory region");
  if (fault_plan_.Evaluate(common::FaultPoint::kNetRegister).fire) {
    return ResourceExhausted("injected registration fault (MR table full)");
  }
  MemoryRegion mr;
  mr.rkey = fabric_->NextRKey();
  mr.pd = pd;
  mr.addr = reinterpret_cast<std::uintptr_t>(region.data());
  mr.length = region.size();
  mr.access = access;
  mr.expires_at = ttl > 0.0 ? fabric_->now() + ttl : 0.0;
  PinRegion(mr.addr, mr.length);
  mrs_[mr.rkey] = mr;
  return mr;
}

Status Endpoint::RevokeMemory(RKey rkey) {
  common::MutexLock lk(mu_);
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) return NotFound("unknown rkey");
  it->second.revoked = true;
  return Status::Ok();
}

Status Endpoint::DeregisterMemory(RKey rkey) {
  common::MutexLock lk(mu_);
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) return NotFound("unknown rkey");
  UnpinRegion(it->second.addr, it->second.length);
  mrs_.erase(it);
  return Status::Ok();
}

Result<TenantId> Endpoint::PdTenant(PdId pd) const {
  common::MutexLock lk(mu_);
  auto it = pds_.find(pd);
  if (it == pds_.end()) return NotFound("unknown protection domain");
  return it->second;
}

bool Endpoint::FindMr(RKey rkey, MemoryRegion* out) const {
  common::MutexLock lk(mu_);
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) return false;
  *out = it->second;
  return true;
}

// Locks two Endpoint instances of the same class via std::lock — a flow
// the capability analysis cannot express, hence the escape hatch (the
// deadlock-freedom argument is std::lock's ordering, documented below).
Result<Qp*> Endpoint::Connect(Endpoint* remote, Transport transport, PdId pd,
                              PdId remote_pd) ROS2_NO_THREAD_SAFETY_ANALYSIS {
  if (remote == nullptr) return InvalidArgument("null remote endpoint");
  auto local_qp = std::unique_ptr<Qp>(new Qp(this, transport, pd));
  auto remote_qp =
      std::unique_ptr<Qp>(new Qp(remote, transport, remote_pd));
  local_qp->peer_ = remote_qp.get();
  remote_qp->peer_ = local_qp.get();
  Qp* out = local_qp.get();
  PollSet* accept_set = nullptr;
  {
    // Two endpoints, one lock each; std::lock orders the acquisition so
    // concurrent A->B / B->A connects cannot deadlock. Loopback connects
    // (remote == this) take the single lock once.
    std::unique_lock<common::Mutex> lk_local(mu_, std::defer_lock);
    std::unique_lock<common::Mutex> lk_remote(remote->mu_, std::defer_lock);
    if (remote == this) {
      lk_local.lock();
    } else {
      std::lock(lk_local, lk_remote);
    }
    if (!pds_.contains(pd)) {
      return NotFound("unknown local protection domain");
    }
    if (!remote->pds_.contains(remote_pd)) {
      return NotFound("unknown remote protection domain");
    }
    accept_set = remote->accept_poll_set_;
    qps_.push_back(std::move(local_qp));
    remote->qps_.push_back(std::move(remote_qp));
  }
  // The accepting side's progress loop watches every accepted Qp through
  // its poll set (CaRT progress-context accept hook). Outside the
  // endpoint locks: PollSet is below Endpoint in the lock order.
  if (accept_set != nullptr) {
    (void)accept_set->Add(out->peer_);
  }
  ROS2_DEBUG << "qp connected " << address_ << " <-> " << remote->address_
             << " (" << perf::TransportName(transport) << ")";
  return out;
}

Endpoint::Traffic Endpoint::TotalTraffic() const {
  Traffic total;
  common::MutexLock lk(mu_);
  for (const auto& qp : qps_) {
    total.bytes_sent += qp->bytes_sent();
    total.bytes_one_sided += qp->bytes_one_sided();
  }
  return total;
}

// --------------------------------------------------------------- Fabric

Result<Endpoint*> Fabric::CreateEndpoint(const std::string& address) {
  common::MutexLock lk(mu_);
  if (endpoints_.contains(address)) {
    return AlreadyExists("endpoint address in use: " + address);
  }
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(this, address));
  Endpoint* raw = ep.get();
  endpoints_[address] = std::move(ep);
  return raw;
}

Result<Endpoint*> Fabric::Lookup(const std::string& address) const {
  common::MutexLock lk(mu_);
  auto it = endpoints_.find(address);
  if (it == endpoints_.end()) return NotFound("no endpoint at " + address);
  return it->second.get();
}

}  // namespace ros2::net
