// libdaos-equivalent client: pool/container handles and object I/O over
// the data-plane RPC layer (§3.2 "the DFS client translates POSIX calls to
// DAOS RPCs and bulk transfers").
//
// The client is transport-agnostic: over RDMA its buffers are registered
// and the engine moves payloads with one-sided verbs; over TCP payloads
// ride inline. Nothing above this class (DFS, ROS2 core) knows which.
//
// Scale-out (the paper's §5 "broaden device counts" follow-up): the client
// can connect to SEVERAL engines forming one pool. Dkeys place onto an
// engine first (then onto a target inside it), and updates optionally
// replicate onto the next `replicas-1` engines. Engine health comes from
// the versioned PoolMap (shareable with the control plane and the rebuild
// task): HEAD reads fail over to the first UP replica; updates degrade
// gracefully — a copy whose replica is DOWN (or whose send races the
// down-transition: per-send rejection is authoritative, there is no
// pre-send check to race) is recorded in the map's resync journal instead
// of failing the op, and the rebuild task replays the journal later. An
// update fails only when no replica copy lands at all, or a replica
// returns a non-UNAVAILABLE error (the Status then reports how many
// copies landed). Epoch stamps are per-engine, so snapshot reads pin to
// the engine that issued the epoch (documented simplification).
//
// Pipelining: replica updates are issued CONCURRENTLY to every replica
// engine (CallAsync fan-out, then await) instead of serially, and the
// batch APIs (UpdateBatch/FetchBatch) keep many data-plane RPCs in
// flight at once — one engine progress tick then services the whole
// window, which is where the paper's "heavy traffic" throughput comes
// from (bench_micro_pipeline gates the win).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "daos/engine.h"
#include "daos/pool_map.h"
#include "daos/types.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"

namespace ros2::daos {

class DaosClient {
 public:
  struct ConnectOptions {
    std::string client_address = "fabric://daos-client";
    net::Transport transport = net::Transport::kRdma;
    std::string pool_label = "pool0";
    std::string access_token;
    net::TenantId tenant = net::kSystemTenant;
    /// Copies of every update, placed on consecutive engines (1 = none).
    std::uint32_t replicas = 1;
    /// Shared pool map (control plane / rebuild task / other clients see
    /// the same engine states and resync journal). Must outlive the
    /// client and have engine_count == engines. nullptr: the client owns
    /// a private map.
    PoolMap* pool_map = nullptr;
    /// False: the client's RPC connections get no progress hook — every
    /// engine must run its own progress thread (StartProgressThread).
    /// Required when several client threads share an engine: the engine
    /// poll set is single-consumer, so concurrent pumps would race.
    bool progress_pump = true;
  };

  /// Dials the engine, performs PoolConnect (auth), returns a live client.
  static Result<std::unique_ptr<DaosClient>> Connect(
      net::Fabric* fabric, DaosEngine* engine, const ConnectOptions& options);

  /// Scale-out form: one pool spanning several engines (§5 follow-up).
  /// All engines must share `pool_label` and credentials.
  static Result<std::unique_ptr<DaosClient>> Connect(
      net::Fabric* fabric, std::span<DaosEngine* const> engines,
      const ConnectOptions& options);

  /// Failure injection shorthand over the pool map: down=true marks the
  /// engine DOWN (reads fail over, writes degrade + journal), down=false
  /// marks it UP again. Richer transitions (REBUILDING) go through
  /// pool_map()->SetState.
  Status SetEngineDown(std::uint32_t engine_index, bool down);
  std::uint32_t engine_count() const {
    return std::uint32_t(engines_.size());
  }
  /// The engine-health authority this client routes by.
  PoolMap* pool_map() { return map_; }
  const PoolMap* pool_map() const { return map_; }

  // --- containers --------------------------------------------------------
  Result<ContainerId> ContainerCreate(const std::string& label);
  Result<ContainerId> ContainerOpen(const std::string& label);

  // --- objects -----------------------------------------------------------
  Result<ObjectId> AllocOid(ContainerId cont);

  /// Array write; returns the stamped epoch.
  Result<Epoch> Update(ContainerId cont, const ObjectId& oid,
                       const std::string& dkey, const std::string& akey,
                       std::uint64_t offset,
                       std::span<const std::byte> data);

  /// Array read at `epoch` (kEpochHead = latest); holes read as zeros.
  Status Fetch(ContainerId cont, const ObjectId& oid, const std::string& dkey,
               const std::string& akey, std::uint64_t offset,
               std::span<std::byte> out, Epoch epoch = kEpochHead);

  // --- pipelined batches --------------------------------------------------
  // One batch issues every op (and every replica copy) before awaiting any
  // reply, so a single engine progress tick drains the whole window. The
  // caller's data/out buffers must stay alive until the batch call
  // returns. Ops on the same dkey keep their in-batch order (per-target
  // FIFO); ops on different dkeys may execute interleaved.

  struct UpdateOp {
    ContainerId cont = 0;
    ObjectId oid;
    std::string dkey;
    std::string akey;
    std::uint64_t offset = 0;
    std::span<const std::byte> data;
  };
  struct FetchOp {
    ContainerId cont = 0;
    ObjectId oid;
    std::string dkey;
    std::string akey;
    std::uint64_t offset = 0;
    std::span<std::byte> out;
    Epoch epoch = kEpochHead;
  };

  /// Pipelined array writes; returns each op's stamped epoch (the first
  /// replica copy that landed; the primary's when it is up). Degraded
  /// replica semantics per op — DOWN replicas are journaled, not errors;
  /// an op fails only when no copy lands or a copy returns a hard error
  /// (remaining in-flight ops still drain).
  Result<std::vector<Epoch>> UpdateBatch(std::span<const UpdateOp> ops);

  /// Pipelined array reads into each op's `out` window (holes as zeros).
  /// Fails on the first op error (short reads are DATA_LOSS), after
  /// draining the whole batch.
  Status FetchBatch(std::span<const FetchOp> ops);

  /// One single-value read in a pipelined batch (kSingleFetch is a
  /// header-reply op, so there is no caller-owned out window to pin).
  struct SingleFetchOp {
    ContainerId cont = 0;
    ObjectId oid;
    std::string dkey;
    std::string akey;
    Epoch epoch = kEpochHead;
  };

  /// Pipelined single-value reads: every request is in flight before any
  /// reply is awaited (DFS readdir uses this to fetch a page of entry
  /// records in one window). Per-op outcomes are independent — a missing
  /// record is that op's NOT_FOUND, not the batch's — so the call itself
  /// only fails on issue-path errors (down engines, encode failures),
  /// after draining whatever was issued.
  Result<std::vector<Result<Buffer>>> FetchSingleBatch(
      std::span<const SingleFetchOp> ops);

  Result<Epoch> UpdateSingle(ContainerId cont, const ObjectId& oid,
                             const std::string& dkey, const std::string& akey,
                             std::span<const std::byte> value);
  Result<Buffer> FetchSingle(ContainerId cont, const ObjectId& oid,
                             const std::string& dkey, const std::string& akey,
                             Epoch epoch = kEpochHead);

  Status PunchObject(ContainerId cont, const ObjectId& oid);
  Status PunchDkey(ContainerId cont, const ObjectId& oid,
                   const std::string& dkey);
  Status PunchAkey(ContainerId cont, const ObjectId& oid,
                   const std::string& dkey, const std::string& akey);

  Result<std::vector<std::string>> ListDkeys(ContainerId cont,
                                             const ObjectId& oid);

  /// One page of an object's dkey enumeration, sorted ascending.
  struct DkeyPage {
    std::vector<std::string> dkeys;
    /// True when dkeys past this page remain; resume with
    /// marker = dkeys.back().
    bool more = false;
  };

  /// Server-side paged enumeration: every engine filters `> marker`,
  /// sorts, and truncates to `limit` before replying, so a million-entry
  /// directory never materializes whole on either side (limit 0 = all).
  Result<DkeyPage> ListDkeysPage(ContainerId cont, const ObjectId& oid,
                                 const std::string& marker,
                                 std::uint32_t limit);
  Result<std::vector<std::string>> ListAkeys(ContainerId cont,
                                             const ObjectId& oid,
                                             const std::string& dkey);
  Result<std::uint64_t> ArraySize(ContainerId cont, const ObjectId& oid,
                                  const std::string& dkey,
                                  const std::string& akey,
                                  Epoch epoch = kEpochHead);
  Status Aggregate(ContainerId cont, const ObjectId& oid,
                   const std::string& dkey, const std::string& akey,
                   Epoch upto);

  /// Control plane: one engine's telemetry snapshot — metrics whose path
  /// starts with `prefix` (empty = all), plus the recent-request trace
  /// ring when `traces`. Engines with telemetry disabled answer with an
  /// empty snapshot.
  Result<telemetry::TelemetrySnapshot> TelemetryQuery(
      std::uint32_t engine_index = 0, const std::string& prefix = {},
      bool traces = false);

  net::Transport transport() const { return transport_; }
  std::uint32_t pool_targets() const { return pool_targets_; }
  net::Qp* qp() const {
    return engines_.empty() ? nullptr : engines_[0].rpc->qp();
  }

 private:
  struct EngineConn {
    std::unique_ptr<rpc::RpcClient> rpc;
  };

  DaosClient() = default;
  Status Punch(ContainerId cont, const ObjectId& oid, const std::string& dkey,
               const std::string& akey, PunchScope scope);

  /// Primary engine index for (oid, dkey); replica i lives at
  /// (primary + i) % engines. Delegates to placement.h's PlaceEngine so
  /// the rebuild task computes identical replica sets.
  std::uint32_t PrimaryEngine(const ObjectId& oid,
                              const std::string& dkey) const;
  /// The r-th replica engine on the ring starting at `primary`.
  std::uint32_t ReplicaEngine(std::uint32_t primary, std::uint32_t r) const {
    return (primary + r) % std::uint32_t(engines_.size());
  }
  /// First UP replica for reads; error when none is.
  Result<std::uint32_t> ReadableEngine(const ObjectId& oid,
                                       const std::string& dkey) const;
  /// UNAVAILABLE unless `engine` is UP (snapshot reads pin to the
  /// stamping engine and cannot fail over).
  Status RequireUp(std::uint32_t engine) const;
  /// Records a missed replica copy of (cont, oid, dkey) owed to `engine`
  /// in the pool map's resync journal.
  void JournalMiss(std::uint32_t engine, ContainerId cont,
                   const ObjectId& oid, const std::string& dkey);
  /// Unary call against a specific engine. Headers travel as the Encoder
  /// that built them so the RPC layer can refuse overflowed encodes.
  Result<rpc::RpcReply> Call(std::uint32_t engine, std::uint32_t opcode,
                             const rpc::Encoder& header,
                             const rpc::CallOptions& options = {});
  /// Async form of Call: issues without awaiting (DOWN engines rejected).
  Result<rpc::RpcClient::CallId> CallAsyncEngine(
      std::uint32_t engine, std::uint32_t opcode,
      const rpc::Encoder& header, const rpc::CallOptions& options = {});
  /// Same call issued CONCURRENTLY to every writable replica of
  /// (oid, dkey) — all requests go out before any reply is awaited; the
  /// first landed copy's reply is returned (the primary's when it is up).
  /// DOWN replicas and copies that fail UNAVAILABLE mid-flight degrade
  /// into journal entries; the call fails only when no copy lands (the
  /// Status reports "0/N replica copies landed") or a copy returns a
  /// hard error (annotated with the landed count).
  Result<rpc::RpcReply> CallReplicas(ContainerId cont, const ObjectId& oid,
                                     const std::string& dkey,
                                     std::uint32_t opcode,
                                     const rpc::Encoder& header,
                                     const rpc::CallOptions& options = {});
  /// Broadcast to every engine (container/namespace metadata). Strict: a
  /// DOWN engine fails the broadcast — metadata has no degraded mode.
  Result<rpc::RpcReply> CallAll(std::uint32_t opcode,
                                const rpc::Encoder& header);

  std::vector<EngineConn> engines_;
  net::Transport transport_ = net::Transport::kRdma;
  std::uint32_t pool_targets_ = 0;
  std::uint32_t replicas_ = 1;
  /// Shared map (options.pool_map) or owned_map_.get().
  PoolMap* map_ = nullptr;
  std::unique_ptr<PoolMap> owned_map_;
};

}  // namespace ros2::daos
