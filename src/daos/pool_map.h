// Versioned pool map + per-engine resync journal (the DAOS pool map /
// rebuild-log shape, upstream src/pool + src/object/srv_obj_migrate.c).
//
// The pool map is the one authority on engine health. Each engine is UP,
// DOWN, or REBUILDING; every transition bumps a monotonic version, so any
// observer can tell "the map changed since I routed" apart from "my send
// raced the transition". Routing policy (enforced by DaosClient and the
// RebuildManager):
//
//   - reads     -> UP engines only (a REBUILDING engine may lack data)
//   - writes    -> UP and REBUILDING engines (new data lands on the
//                  replacement while the rebuild task backfills history)
//   - metadata  -> DOWN engines reject; no degraded mode for metadata
//
// Degraded writes do not fail: a replica copy that cannot land (engine
// DOWN, or a send that raced the down-transition) is recorded in the
// journal as {container, object, dkey} — the unit of placement — and the
// rebuild task replays the journal after its bulk scan. Writes that land
// on a REBUILDING engine are ALSO journaled (post-completion): the rebuild
// pass may overwrite the dkey with older survivor content at a higher
// epoch, and the journal replay re-silvers survivor HEAD (which includes
// the completed write), so the loop converges to byte-equality.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "daos/types.h"
#include "telemetry/metrics.h"

namespace ros2::daos {

enum class EngineState : std::uint8_t {
  kUp = 0,
  kDown = 1,
  kRebuilding = 2,
};

const char* EngineStateName(EngineState state);

/// One missed (or rebuild-racing) replica write: the dkey to re-silver.
struct ResyncEntry {
  ContainerId cont = 0;
  ObjectId oid;
  std::string dkey;

  friend bool operator<(const ResyncEntry& a, const ResyncEntry& b) {
    if (a.cont != b.cont) return a.cont < b.cont;
    if (a.oid.hi != b.oid.hi) return a.oid.hi < b.oid.hi;
    if (a.oid.lo != b.oid.lo) return a.oid.lo < b.oid.lo;
    return a.dkey < b.dkey;
  }
  friend bool operator==(const ResyncEntry& a, const ResyncEntry& b) {
    return a.cont == b.cont && a.oid.hi == b.oid.hi && a.oid.lo == b.oid.lo &&
           a.dkey == b.dkey;
  }
};

/// Per-engine set of dkeys owed a replica copy. Deduplicated: a dkey
/// written a thousand times while its replica was down is re-silvered
/// once. Thread-safe (clients journal from their threads; the rebuild
/// task drains from its own).
class ResyncJournal {
 public:
  explicit ResyncJournal(std::uint32_t engines);
  ResyncJournal(const ResyncJournal&) = delete;
  ResyncJournal& operator=(const ResyncJournal&) = delete;

  void Record(std::uint32_t engine, ResyncEntry entry);
  /// Takes (and clears) the engine's pending set.
  std::vector<ResyncEntry> Drain(std::uint32_t engine);

  std::size_t depth(std::uint32_t engine) const;
  std::size_t total_depth() const;

  /// Entries ever recorded (dedup hits included count once) — the
  /// telemetry tree links this counter.
  std::uint64_t recorded() const { return recorded_.value(); }
  const telemetry::Counter& recorded_counter() const { return recorded_; }

 private:
  struct PerEngine {
    mutable common::Mutex mu;
    std::set<ResyncEntry> entries ROS2_GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<PerEngine>> engines_;
  telemetry::Counter recorded_{1};
};

/// The versioned engine-state map. Shared by the control plane, every
/// client, and the rebuild task; all of them see one truth. State reads
/// are single relaxed atomic loads (the data-path cost), transitions take
/// the map mutex and bump the version.
class PoolMap {
 public:
  explicit PoolMap(std::uint32_t engines);
  PoolMap(const PoolMap&) = delete;
  PoolMap& operator=(const PoolMap&) = delete;

  std::uint32_t engine_count() const {
    return std::uint32_t(states_.size());
  }
  EngineState state(std::uint32_t engine) const {
    if (engine >= states_.size()) return EngineState::kDown;
    return EngineState(states_[engine].load(std::memory_order_acquire));
  }
  /// UP only: a REBUILDING engine may not have the data yet.
  bool readable(std::uint32_t engine) const {
    return state(engine) == EngineState::kUp;
  }
  /// UP or REBUILDING: new writes land on the replacement while the
  /// rebuild backfills.
  bool writable(std::uint32_t engine) const {
    return state(engine) != EngineState::kDown;
  }

  /// Transitions `engine` and bumps the version (idempotent transitions
  /// still bump: the observer contract is "version moved => re-read").
  Status SetState(std::uint32_t engine, EngineState state);

  /// Monotonic: starts at 1, bumps on every SetState.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  std::uint64_t transitions() const { return transitions_.value(); }

  ResyncJournal& journal() { return journal_; }
  const ResyncJournal& journal() const { return journal_; }

  /// Registers the map's observables under pool_map/ in `tree`: version,
  /// per-engine state, journal depth + recorded total. The map must
  /// outlive the tree (callback views).
  void AttachTelemetry(telemetry::Telemetry* tree);

 private:
  std::vector<std::atomic<std::uint8_t>> states_;
  std::atomic<std::uint64_t> version_{1};
  telemetry::Counter transitions_{1};
  /// Serializes SetState (state+version move together). Nothing is read
  /// under it — states_ stays lock-free for the data path — so no member
  /// is GUARDED_BY it; the capability only orders writers.
  common::Mutex mu_;
  ResyncJournal journal_;
};

}  // namespace ros2::daos
