// Per-target execution streams ("xstreams") for the DAOS engine (§3.3).
//
// "The engine spawns one xstream per target; the CaRT progress loop
// decodes incoming RPCs and hands each one to the xstream owning its
// dkey." This scheduler is that structure, in two modes:
//
//  - SERIAL (default): every target owns a FIFO run queue of deferred
//    requests (rpc::RpcContext + the bound VOS operation), and
//    ProgressAll() drains the queues in round-robin passes — one op per
//    target per pass — so one hot target cannot starve the others, while
//    ops on the SAME target (and therefore the same dkey, since placement
//    is by dkey) execute strictly in arrival order. Deterministic; what
//    the single-threaded tests and the perf model pin.
//
//  - THREADED: every target owns a real worker thread (daos::Xstream)
//    with a bounded MPSC submit queue — the Argobots-xstream-per-target
//    shape. Enqueue() hands the op to the target's worker; the op body
//    (VOS access, bulk movement) runs on that thread, preserving per-dkey
//    FIFO order because one thread drains one FIFO queue. The computed
//    reply is NOT sent from the worker: it is pushed onto a completion
//    queue and the next ProgressOnce()/ProgressAll() — the progress
//    thread's tick — performs RpcContext::Complete there, so reply
//    serialization stays on the network progress path (CaRT's rule).
//
// Epoch stamping, container lookup, and bulk movement all happen at
// execution time on the target's stream, exactly like a ULT body; the
// decode step only routed the request here.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "daos/xstream.h"
#include "rpc/data_rpc.h"
#include "telemetry/metrics.h"

namespace ros2::daos {

struct EngineSchedulerOptions {
  /// false: single-threaded round-robin drain (deterministic).
  /// true: one worker thread per target + completion hand-off.
  bool threaded = false;
  /// Per-target submit-queue bound (threaded mode; backpressures Enqueue).
  std::size_t queue_capacity = Xstream::kDefaultQueueCapacity;
  /// Stamp execution start/end on each context and accumulate per-target
  /// busy time (two clock reads per op). The engine wires this to
  /// EngineConfig::telemetry so an uninstrumented engine pays nothing.
  bool time_ops = true;
};

class EngineScheduler {
 public:
  /// The deferred body: runs on the target's stream, returns the reply
  /// (or error) for its context. Receives the context for bulk access.
  using OpFn = std::function<Result<Buffer>(rpc::RpcContext& ctx)>;

  explicit EngineScheduler(std::uint32_t targets,
                           EngineSchedulerOptions options = {});
  ~EngineScheduler();
  EngineScheduler(const EngineScheduler&) = delete;
  EngineScheduler& operator=(const EngineScheduler&) = delete;

  /// Parks `ctx` on `target`'s run queue. FIFO per target. In threaded
  /// mode this blocks while the target's submit queue is full; after
  /// Shutdown() the context is completed with UNAVAILABLE instead.
  void Enqueue(std::uint32_t target, rpc::RpcContextPtr ctx, OpFn op);

  /// Serial: one round-robin pass — at most one queued op per target (the
  /// pass's start target rotates so draining is fair under load).
  /// Threaded: sends every reply the workers have finished computing
  /// (RpcContext::Complete on the calling thread).
  /// Returns ops completed.
  std::size_t ProgressOnce();

  /// Serial: round-robin passes until every queue is empty. Threaded:
  /// identical to ProgressOnce (non-blocking completion drain — workers
  /// may still be executing). Returns ops completed.
  std::size_t ProgressAll();

  /// BARRIER: every op enqueued before this call has executed AND its
  /// reply has been sent when it returns. Serial: ProgressAll. Threaded:
  /// quiesces every worker, then drains the completion queue. Callers
  /// must not Enqueue concurrently with a Quiesce they depend on.
  std::size_t Quiesce();

  /// Threaded: stops every worker (queued ops still execute — a clean
  /// shutdown loses no requests), then sends the remaining replies.
  /// Serial: no-op. Idempotent; the destructor calls it.
  void Shutdown();

  /// Invoked (from a worker thread) whenever a finished reply lands on
  /// the completion queue — the engine points this at PollSet::Ring() so
  /// a blocked progress thread wakes to send it. Set before any Enqueue.
  void set_completion_wakeup(std::function<void()> fn) {
    completion_wakeup_ = std::move(fn);
  }

  bool threaded() const { return threaded_; }
  bool idle() const {
    return queued_total_.load(std::memory_order_acquire) == 0;
  }
  std::uint32_t num_targets() const { return num_targets_; }
  /// Ops accepted but not yet replied to.
  std::size_t queued() const {
    return queued_total_.load(std::memory_order_acquire);
  }
  std::size_t queued(std::uint32_t target) const;
  std::uint64_t executed() const { return executed_.value(); }
  /// Ops executed on one target (its counter shard).
  std::uint64_t executed(std::uint32_t target) const {
    return executed_.shard_value(target);
  }
  /// Time spent executing op bodies, total and per target (0 unless
  /// time_ops; accumulated by the executing thread into its own shard).
  std::uint64_t busy_ns() const { return busy_ns_.value(); }
  std::uint64_t busy_ns(std::uint32_t target) const {
    return busy_ns_.shard_value(target);
  }
  /// Time a target's worker spent parked waiting for work (threaded mode
  /// only; 0 in serial mode, where idleness belongs to the progress loop).
  std::uint64_t idle_ns(std::uint32_t target) const;
  bool time_ops() const { return time_ops_; }
  /// High-water mark of total queued ops (pipeline depth telemetry).
  std::size_t max_queue_depth() const {
    return high_water_.load(std::memory_order_acquire);
  }

 private:
  struct QueuedOp {
    rpc::RpcContextPtr ctx;
    OpFn op;
  };
  struct Completion {
    std::shared_ptr<rpc::RpcContext> ctx;
    Result<Buffer> reply;
    std::uint32_t target = 0;
  };

  void NoteQueued();
  void PushCompletion(std::uint32_t target,
                      std::shared_ptr<rpc::RpcContext> ctx,
                      Result<Buffer> reply) ROS2_EXCLUDES(completions_mu_);
  std::size_t DrainCompletions() ROS2_EXCLUDES(completions_mu_);

  const bool threaded_;
  const std::uint32_t num_targets_;
  const bool time_ops_;

  // Serial mode state (owner: the single progress thread — single-owner
  // by contract, so unguarded on purpose; threaded mode never touches it).
  std::vector<std::deque<QueuedOp>> queues_;
  std::uint32_t cursor_ = 0;  // rotating start target for fairness

  // Threaded mode state. Workers push onto the completion queue under
  // completions_mu_; the progress thread drains it (lock dropped around
  // each Complete so workers keep finishing while replies send).
  std::vector<std::unique_ptr<Xstream>> xstreams_;
  common::Mutex completions_mu_;
  std::deque<Completion> completions_ ROS2_GUARDED_BY(completions_mu_);
  std::function<void()> completion_wakeup_;  // set once, before workers run
  std::atomic<bool> shut_down_{false};

  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> high_water_{0};
  // One shard per target: workers tick their own shard, snapshots fold.
  telemetry::Counter executed_;
  telemetry::Counter busy_ns_;
};

}  // namespace ros2::daos
