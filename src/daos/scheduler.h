// Per-target execution streams ("xstreams") for the DAOS engine (§3.3).
//
// "The engine spawns one xstream per target; the CaRT progress loop
// decodes incoming RPCs and hands each one to the xstream owning its
// dkey." This scheduler is that structure, single-threaded: every target
// owns a FIFO run queue of deferred requests (rpc::RpcContext + the bound
// VOS operation), and ProgressAll() drains the queues in round-robin
// passes — one op per target per pass — so one hot target cannot starve
// the others, while ops on the SAME target (and therefore the same dkey,
// since placement is by dkey) execute strictly in arrival order.
//
// Epoch stamping, container lookup, and bulk movement all happen at
// execution time on the target's stream, exactly like a ULT body; the
// decode step only routed the request here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rpc/data_rpc.h"

namespace ros2::daos {

class EngineScheduler {
 public:
  /// The deferred body: runs on the target's stream, returns the reply
  /// (or error) for its context. Receives the context for bulk access.
  using OpFn = std::function<Result<Buffer>(rpc::RpcContext& ctx)>;

  explicit EngineScheduler(std::uint32_t targets);

  /// Parks `ctx` on `target`'s run queue. FIFO per target.
  void Enqueue(std::uint32_t target, rpc::RpcContextPtr ctx, OpFn op);

  /// One round-robin pass: runs at most one queued op per target (the
  /// pass's start target rotates so draining is fair under load).
  /// Returns the number of ops executed.
  std::size_t ProgressOnce();

  /// Round-robin passes until every queue is empty. Returns ops executed.
  std::size_t ProgressAll();

  bool idle() const { return queued_total_ == 0; }
  std::uint32_t num_targets() const {
    return std::uint32_t(queues_.size());
  }
  std::size_t queued() const { return queued_total_; }
  std::size_t queued(std::uint32_t target) const {
    return target < queues_.size() ? queues_[target].size() : 0;
  }
  std::uint64_t executed() const { return executed_; }
  /// High-water mark of total queued ops (pipeline depth telemetry).
  std::size_t max_queue_depth() const { return high_water_; }

 private:
  struct QueuedOp {
    rpc::RpcContextPtr ctx;
    OpFn op;
  };

  std::vector<std::deque<QueuedOp>> queues_;
  std::uint32_t cursor_ = 0;  // rotating start target for fairness
  std::size_t queued_total_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ros2::daos
