// Background replica rebuild (DAOS's rebuild/reintegration service,
// upstream src/rebuild + src/object/srv_obj_migrate.c).
//
// When an engine returns after a failure, its replicas are stale: every
// write issued while it was DOWN skipped it (journaled in the pool map's
// resync journal), and everything it held before the failure is treated as
// lost. The RebuildManager re-silvers the replacement from the surviving
// replicas:
//
//   1. DOWN -> REBUILDING (new writes start landing on the replacement
//      again while history backfills).
//   2. Bulk scan: every survivor enumerates its (oid, dkey) pairs
//      (kObjScan); entries whose replica ring contains the rebuilt engine
//      are re-silvered — export the dkey's HEAD image from the first UP
//      replica (kDkeyExport), import it onto the replacement
//      (kDkeyImport). Imports are deferred per-target ops on the
//      replacement's xstreams, so they interleave with foreground traffic
//      instead of stalling it.
//   3. Journal drain loop: writes that degraded while the engine was DOWN
//      — and writes that raced an import while it was REBUILDING (marked
//      post-completion, see pool_map.h) — sit in the resync journal;
//      drain and re-silver until a pass finds it empty.
//   4. REBUILDING -> UP, plus one final drain for entries recorded
//      between the last pass and the transition. A write still in flight
//      at that instant can leave a journal entry behind; Resync() drains
//      such stragglers once traffic quiesces (DAOS's incremental
//      reintegration tick).
//
// The manager is a pool-service client: it owns its own fabric endpoint
// and an RPC connection per engine, and shares the PoolMap (and its
// journal) with the control plane and the data-path clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "daos/engine.h"
#include "daos/pool_map.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "telemetry/metrics.h"

namespace ros2::daos {

/// Single-owner concurrency contract: exactly one thread drives
/// Start/Step/Run (the orchestrator), so the worklist and cursors are
/// deliberately unguarded — no common::Mutex, nothing GUARDED_BY. The
/// pieces other threads DO observe are the atomic progress counters
/// (telemetry reads them) and the PoolMap/ResyncJournal, which carry
/// their own annotated locks. Adding cross-thread mutation here means
/// adding a common::Mutex and annotations first (scripts/lint.sh rejects
/// an unannotated raw mutex member).
class RebuildManager {
 public:
  struct Options {
    std::string address = "fabric://daos-rebuild";
    net::Transport transport = net::Transport::kRdma;
    std::string pool_label = "pool0";
    std::string access_token;
    net::TenantId tenant = net::kSystemTenant;
    /// Must match the data-path clients' replication factor: the ring
    /// membership test uses it to decide which dkeys the rebuilt engine
    /// owes a copy of.
    std::uint32_t replicas = 1;
    /// Journal-drain passes before giving up (a pass that finds the
    /// journal empty ends the loop early).
    std::uint32_t max_journal_passes = 64;
    /// False: no progress hooks on the manager's RPC connections — the
    /// engines' progress threads serve them (required when the manager
    /// runs concurrently with pumping clients; the engine poll set is
    /// single-consumer).
    bool progress_pump = true;
  };

  /// Dials every engine (PoolConnect handshake included). `pool_map` is
  /// the shared health authority; must outlive the manager and have
  /// engine_count == engines.size().
  static Result<std::unique_ptr<RebuildManager>> Create(
      net::Fabric* fabric, std::span<DaosEngine* const> engines,
      PoolMap* pool_map, const Options& options);

  RebuildManager(const RebuildManager&) = delete;
  RebuildManager& operator=(const RebuildManager&) = delete;

  /// Full rebuild of `engine` (currently DOWN or REBUILDING): scan,
  /// re-silver, drain the journal, mark UP. On success the engine serves
  /// reads again and holds a byte-identical HEAD copy of every dkey it
  /// owes. Fails without marking UP when no survivor covers some dkey or
  /// the journal refuses to quiesce within max_journal_passes.
  Status Rebuild(std::uint32_t engine);

  /// Drains whatever the resync journal currently holds for `engine`
  /// (which may be UP) and re-silvers those dkeys. The post-rebuild
  /// straggler sweep — cheap when the journal is empty.
  Status Resync(std::uint32_t engine);

  // Per-engine rebuild observables (cumulative across rebuilds).
  std::uint64_t dkeys_scanned(std::uint32_t engine) const;
  std::uint64_t bytes_copied(std::uint32_t engine) const;
  std::uint64_t journal_replayed(std::uint32_t engine) const;
  std::uint64_t passes(std::uint32_t engine) const;
  /// 0..100 through the current rebuild; 100 once it completed.
  std::int64_t progress(std::uint32_t engine) const;

  /// Registers rebuild/<engine>/{dkeys_scanned,bytes_copied,
  /// journal_replayed,passes,progress} in `tree`. The manager must
  /// outlive the tree (linked counters + callback views).
  void AttachTelemetry(telemetry::Telemetry* tree);

 private:
  /// Per-engine counters, telemetry-linkable (the tree is the one home
  /// for stats — no ad-hoc struct copies).
  struct PerEngine {
    telemetry::Counter dkeys_scanned{1};
    telemetry::Counter bytes_copied{1};
    telemetry::Counter journal_replayed{1};
    telemetry::Counter passes{1};
    std::atomic<std::uint64_t> planned{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<bool> complete{false};
  };

  RebuildManager() = default;

  /// Export (cont, oid, dkey) from its first UP surviving replica and
  /// import onto `engine`.
  Status Resilver(std::uint32_t engine, const ResyncEntry& entry);
  /// Survivor bulk scan: every dkey in the pool whose replica ring
  /// contains `engine`.
  Result<std::vector<ResyncEntry>> ScanSurvivors(std::uint32_t engine);
  Status DrainPass(std::uint32_t engine, bool* was_empty);

  std::vector<std::unique_ptr<rpc::RpcClient>> rpcs_;
  std::vector<std::unique_ptr<PerEngine>> stats_;
  PoolMap* map_ = nullptr;
  std::uint32_t replicas_ = 1;
  std::uint32_t max_journal_passes_ = 64;
};

}  // namespace ros2::daos
