#include "daos/vos.h"

#include <algorithm>
#include <cstring>

#include "common/crc.h"

namespace ros2::daos {

Vos::Vos(scm::PmemPool* scm, spdk::Bdev* nvme, VosConfig config)
    : scm_(scm),
      nvme_(nvme),
      nvme_alloc_(config.nvme_base,
                  config.nvme_capacity == 0 ? nvme->size_bytes()
                                            : config.nvme_capacity,
                  nvme->block_size()),
      config_(config) {}

Vos::~Vos() = default;

// ------------------------------------------------------------- tier I/O

Result<Vos::ValueLoc> Vos::Store(std::span<const std::byte> data) {
  ValueLoc loc;
  loc.logical_len = data.size();
  loc.crc = config_.checksums ? Crc32c(data) : 0;
  if (data.size() <= config_.scm_threshold) {
    loc.tier = ValueLoc::Tier::kScm;
    ROS2_ASSIGN_OR_RETURN(loc.scm_handle,
                          scm_->Alloc(data.empty() ? 1 : data.size()));
    loc.length = data.size();
    if (!data.empty()) {
      auto span = scm_->Deref(loc.scm_handle);
      if (!span.ok()) return span.status();
      std::memcpy(span->data(), data.data(), data.size());
    }
    ++stats_.scm_records;
    stats_.bytes_in_scm += data.size();
  } else {
    loc.tier = ValueLoc::Tier::kNvme;
    const std::uint32_t lba = nvme_->block_size();
    const std::uint64_t padded = (data.size() + lba - 1) / lba * lba;
    ROS2_ASSIGN_OR_RETURN(loc.nvme_offset, nvme_alloc_.Alloc(padded));
    loc.length = padded;
    // Pad the tail block; the logical length masks the padding on load.
    Buffer staged(padded);
    std::memcpy(staged.data(), data.data(), data.size());
    ROS2_RETURN_IF_ERROR(nvme_->Write(loc.nvme_offset, staged));
    ++stats_.nvme_records;
    stats_.bytes_in_nvme += padded;
  }
  return loc;
}

Status Vos::Load(const ValueLoc& loc, std::span<std::byte> out) const {
  if (out.size() != loc.logical_len) {
    return Internal("loc load size mismatch");
  }
  if (loc.tier == ValueLoc::Tier::kScm) {
    auto span = scm_->Deref(loc.scm_handle);
    if (!span.ok()) return span.status();
    std::memcpy(out.data(), span->data(), loc.logical_len);
  } else {
    Buffer staged(loc.length);
    ROS2_RETURN_IF_ERROR(nvme_->Read(loc.nvme_offset, staged));
    std::memcpy(out.data(), staged.data(), loc.logical_len);
  }
  if (config_.checksums) {
    const std::uint32_t crc = Crc32c(out);
    if (crc != loc.crc) {
      return DataLoss("extent checksum mismatch (end-to-end CRC-32C)");
    }
  }
  return Status::Ok();
}

void Vos::Release(ValueLoc& loc) {
  if (loc.tier == ValueLoc::Tier::kScm &&
      loc.scm_handle != scm::kNullHandle) {
    (void)scm_->Free(loc.scm_handle);
    loc.scm_handle = scm::kNullHandle;
    stats_.bytes_in_scm -= loc.logical_len;
    --stats_.scm_records;
  } else if (loc.tier == ValueLoc::Tier::kNvme && loc.length > 0) {
    (void)nvme_alloc_.Free(loc.nvme_offset);
    stats_.bytes_in_nvme -= loc.length;
    --stats_.nvme_records;
    loc.length = 0;
  }
}

// --------------------------------------------------------------- lookup

Result<const Vos::AkeyValue*> Vos::FindValue(const ObjectId& oid,
                                             const std::string& dkey,
                                             const std::string& akey,
                                             ValueType expected) const {
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return NotFound("no such object");
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return NotFound("no such dkey");
  auto ak = dk->second.find(akey);
  if (ak == dk->second.end()) return NotFound("no such akey");
  if (ak->second.type != expected) {
    return InvalidArgument("akey value type mismatch");
  }
  return &ak->second;
}

// --------------------------------------------------------------- arrays

Status Vos::UpdateArray(const ObjectId& oid, const std::string& dkey,
                        const std::string& akey, Epoch epoch,
                        std::uint64_t offset,
                        std::span<const std::byte> data) {
  if (!oid.valid()) return InvalidArgument("invalid oid");
  if (data.empty()) return InvalidArgument("empty update");
  auto& value = objects_[oid][dkey][akey];
  if (!value.records.empty() || !value.singles.empty()) {
    if (value.type != ValueType::kArray) {
      return InvalidArgument("akey holds a single value");
    }
    if (!value.records.empty() && epoch < value.records.back().epoch) {
      return InvalidArgument("epoch must be monotonic per akey");
    }
  }
  value.type = ValueType::kArray;

  ArrayRecord rec;
  rec.extent = {offset, data.size()};
  rec.epoch = epoch;
  ROS2_ASSIGN_OR_RETURN(rec.loc, Store(data));
  value.records.push_back(std::move(rec));
  ++stats_.updates;
  return Status::Ok();
}

Status Vos::FetchArray(const ObjectId& oid, const std::string& dkey,
                       const std::string& akey, Epoch epoch,
                       std::uint64_t offset, std::span<std::byte> out) const {
  auto value = FindValue(oid, dkey, akey, ValueType::kArray);
  std::memset(out.data(), 0, out.size());
  if (!value.ok()) {
    // Missing object/keys read as holes (DAOS fetch semantics).
    return Status::Ok();
  }
  const Extent want{offset, out.size()};
  // Replay the record log in epoch order; newest visible record wins by
  // being applied last.
  for (const ArrayRecord& rec : (*value)->records) {
    if (epoch != kEpochHead && rec.epoch > epoch) continue;
    if (rec.punch) {
      const std::uint64_t lo = std::max(rec.extent.offset, want.offset);
      const std::uint64_t hi = std::min(rec.extent.end(), want.end());
      if (lo < hi) {
        std::memset(out.data() + (lo - want.offset), 0, hi - lo);
      }
      continue;
    }
    if (!rec.extent.Overlaps(want)) continue;
    // Load the whole stored extent so the record CRC can be verified, then
    // copy the overlapping slice (DAOS verifies per-chunk checksums the
    // same way).
    Buffer staged(rec.loc.logical_len);
    ROS2_RETURN_IF_ERROR(Load(rec.loc, staged));
    const std::uint64_t lo = std::max(rec.extent.offset, want.offset);
    const std::uint64_t hi = std::min(rec.extent.end(), want.end());
    std::memcpy(out.data() + (lo - want.offset),
                staged.data() + (lo - rec.extent.offset), hi - lo);
  }
  ++stats_.fetches;
  return Status::Ok();
}

Result<std::uint64_t> Vos::ArraySize(const ObjectId& oid,
                                     const std::string& dkey,
                                     const std::string& akey,
                                     Epoch epoch) const {
  auto value = FindValue(oid, dkey, akey, ValueType::kArray);
  if (!value.ok()) return std::uint64_t(0);
  std::uint64_t size = 0;
  for (const ArrayRecord& rec : (*value)->records) {
    if (epoch != kEpochHead && rec.epoch > epoch) continue;
    if (rec.punch) continue;  // punches do not shrink logical size here
    size = std::max(size, rec.extent.end());
  }
  return size;
}

// -------------------------------------------------------------- singles

Status Vos::UpdateSingle(const ObjectId& oid, const std::string& dkey,
                         const std::string& akey, Epoch epoch,
                         std::span<const std::byte> value_bytes) {
  if (!oid.valid()) return InvalidArgument("invalid oid");
  auto& value = objects_[oid][dkey][akey];
  if ((!value.records.empty() || !value.singles.empty()) &&
      value.type != ValueType::kSingle) {
    return InvalidArgument("akey holds an array value");
  }
  value.type = ValueType::kSingle;
  if (!value.singles.empty() && epoch < value.singles.back().epoch) {
    return InvalidArgument("epoch must be monotonic per akey");
  }
  SingleRecord rec;
  rec.epoch = epoch;
  ROS2_ASSIGN_OR_RETURN(rec.loc, Store(value_bytes));
  value.singles.push_back(std::move(rec));
  ++stats_.updates;
  return Status::Ok();
}

Result<Buffer> Vos::FetchSingle(const ObjectId& oid, const std::string& dkey,
                                const std::string& akey, Epoch epoch) const {
  ROS2_ASSIGN_OR_RETURN(const AkeyValue* value,
                        FindValue(oid, dkey, akey, ValueType::kSingle));
  const SingleRecord* visible = nullptr;
  for (const SingleRecord& rec : value->singles) {
    if (epoch != kEpochHead && rec.epoch > epoch) continue;
    visible = &rec;
  }
  if (visible == nullptr || visible->punch) {
    return Status(NotFound("no visible value at epoch"));
  }
  Buffer out(visible->loc.logical_len);
  ROS2_RETURN_IF_ERROR(Load(visible->loc, out));
  return out;
}

// ---------------------------------------------------------------- punch

Status Vos::PunchAkey(const ObjectId& oid, const std::string& dkey,
                      const std::string& akey, Epoch epoch) {
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return NotFound("no such object");
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return NotFound("no such dkey");
  auto ak = dk->second.find(akey);
  if (ak == dk->second.end()) return NotFound("no such akey");
  if (ak->second.type == ValueType::kArray) {
    ArrayRecord rec;
    rec.extent = {0, ~std::uint64_t(0)};
    rec.epoch = epoch;
    rec.punch = true;
    ak->second.records.push_back(std::move(rec));
  } else {
    SingleRecord rec;
    rec.epoch = epoch;
    rec.punch = true;
    ak->second.singles.push_back(std::move(rec));
  }
  return Status::Ok();
}

Status Vos::PunchDkey(const ObjectId& oid, const std::string& dkey,
                      Epoch epoch) {
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return NotFound("no such object");
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return NotFound("no such dkey");
  for (auto& [akey, value] : dk->second) {
    (void)value;
    ROS2_RETURN_IF_ERROR(PunchAkey(oid, dkey, akey, epoch));
  }
  return Status::Ok();
}

Status Vos::PunchObject(const ObjectId& oid, Epoch epoch) {
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return NotFound("no such object");
  // Hard punch: reclaim all storage (aggregated delete).
  for (auto& [dkey, akeys] : obj->second) {
    (void)dkey;
    for (auto& [akey, value] : akeys) {
      (void)akey;
      for (auto& rec : value.records) Release(rec.loc);
      for (auto& rec : value.singles) Release(rec.loc);
    }
  }
  (void)epoch;
  objects_.erase(obj);
  return Status::Ok();
}

// ---------------------------------------------------------- enumeration

std::vector<std::string> Vos::ListDkeys(const ObjectId& oid) const {
  std::vector<std::string> out;
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return out;
  out.reserve(obj->second.size());
  for (const auto& [dkey, _] : obj->second) out.push_back(dkey);
  return out;
}

std::vector<std::string> Vos::ListAkeys(const ObjectId& oid,
                                        const std::string& dkey) const {
  std::vector<std::string> out;
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return out;
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return out;
  out.reserve(dk->second.size());
  for (const auto& [akey, _] : dk->second) out.push_back(akey);
  return out;
}

bool Vos::ObjectExists(const ObjectId& oid) const {
  return objects_.contains(oid);
}

std::vector<ObjectId> Vos::ListObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [oid, _] : objects_) out.push_back(oid);
  return out;
}

std::vector<Vos::AkeyInfo> Vos::DescribeDkey(const ObjectId& oid,
                                             const std::string& dkey) const {
  std::vector<AkeyInfo> out;
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return out;
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return out;
  out.reserve(dk->second.size());
  for (const auto& [akey, value] : dk->second) {
    AkeyInfo info;
    info.akey = akey;
    info.type = value.type;
    if (value.type == ValueType::kArray) {
      for (const ArrayRecord& rec : value.records) {
        if (rec.punch) continue;  // punches do not shrink logical size
        info.head_size = std::max(info.head_size, rec.extent.end());
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

// ----------------------------------------------------------- aggregation

Status Vos::AggregateArray(const ObjectId& oid, const std::string& dkey,
                           const std::string& akey, Epoch upto) {
  auto obj = objects_.find(oid);
  if (obj == objects_.end()) return NotFound("no such object");
  auto dk = obj->second.find(dkey);
  if (dk == obj->second.end()) return NotFound("no such dkey");
  auto ak = dk->second.find(akey);
  if (ak == dk->second.end()) return NotFound("no such akey");
  AkeyValue& value = ak->second;
  if (value.type != ValueType::kArray) {
    return InvalidArgument("aggregation applies to array values");
  }
  if (value.records.empty()) return Status::Ok();

  ROS2_ASSIGN_OR_RETURN(std::uint64_t size, ArraySize(oid, dkey, akey, upto));
  if (size == 0) {
    // Nothing visible at `upto`: drop the records it covers, but records
    // newer than the aggregation point must survive untouched.
    std::vector<ArrayRecord> survivors;
    for (auto& rec : value.records) {
      if (upto != kEpochHead && rec.epoch > upto) {
        survivors.push_back(std::move(rec));
      } else {
        Release(rec.loc);
      }
    }
    value.records = std::move(survivors);
    return Status::Ok();
  }
  // Materialize the visible state at `upto`, then rebuild the log as one
  // flat record plus any records newer than `upto`.
  Buffer flat(size);
  ROS2_RETURN_IF_ERROR(FetchArray(oid, dkey, akey, upto, 0, flat));

  std::vector<ArrayRecord> survivors;
  Epoch flat_epoch = 0;
  for (auto& rec : value.records) {
    if (upto != kEpochHead && rec.epoch > upto) {
      survivors.push_back(std::move(rec));
    } else {
      flat_epoch = std::max(flat_epoch, rec.epoch);
      Release(rec.loc);
    }
  }
  ArrayRecord merged;
  merged.extent = {0, size};
  merged.epoch = flat_epoch;
  ROS2_ASSIGN_OR_RETURN(merged.loc, Store(flat));

  value.records.clear();
  value.records.push_back(std::move(merged));
  for (auto& rec : survivors) value.records.push_back(std::move(rec));
  return Status::Ok();
}

}  // namespace ros2::daos
