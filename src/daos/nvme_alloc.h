// Block-granular allocator over a bdev's LBA space.
//
// The VOS data path places large extents on NVMe; this allocator hands out
// LBA-aligned regions with first-fit + coalescing-free semantics (a
// simplified SPDK blobstore cluster allocator).
#pragma once

#include <cstdint>
#include <map>

#include "common/status.h"

namespace ros2::daos {

class NvmeAllocator {
 public:
  /// Manages [base, base + capacity) in units of `block_size` bytes.
  /// A non-zero base lets several targets partition one shared device.
  NvmeAllocator(std::uint64_t base, std::uint64_t capacity,
                std::uint32_t block_size);

  /// Allocates >= `size` bytes (rounded up to blocks). Returns byte offset.
  Result<std::uint64_t> Alloc(std::uint64_t size);

  /// Frees a previous allocation by offset.
  Status Free(std::uint64_t offset);

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint32_t block_size_;
  std::uint64_t used_ = 0;
  std::map<std::uint64_t, std::uint64_t> free_list_;   // offset -> size
  std::map<std::uint64_t, std::uint64_t> allocated_;   // offset -> size
};

}  // namespace ros2::daos
