// DAOS I/O engine: the storage-server process (§3.3).
//
// "The DAOS I/O engine executes entirely in user space with kernel-bypass
// I/O — SPDK for NVMe and PMDK for SCM; UCX/libfabric for networking."
//
// The engine owns N targets (xstreams); each target has an SCM pool, an
// NVMe partition on one of the server's devices, and a VOS instance.
// Object RPCs are routed to targets by dkey placement. Crucially — and this
// is the property the paper's offload leans on — the engine is UNCHANGED
// between host-client and DPU-client deployments: it just answers CaRT
// RPCs on its fabric endpoint.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "daos/types.h"
#include "daos/vos.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "scm/pmem_pool.h"
#include "spdk/bdev.h"
#include "storage/nvme_device.h"

namespace ros2::daos {

/// Data-plane opcodes served by the engine.
enum class DaosOpcode : std::uint32_t {
  kPoolConnect = 100,
  kContCreate,
  kContOpen,
  kOidAlloc,
  kObjUpdate,
  kObjFetch,
  kSingleUpdate,
  kSingleFetch,
  kObjPunch,
  kListDkeys,
  kListAkeys,
  kArraySize,
  kAggregate,
};

/// Punch scope selector on the wire.
enum class PunchScope : std::uint8_t { kObject = 0, kDkey = 1, kAkey = 2 };

struct EngineConfig {
  std::string address = "fabric://daos-server";
  std::string pool_label = "pool0";
  /// Shared secret required by PoolConnect ("" = open pool).
  std::string access_token;
  std::uint32_t targets = 16;
  /// SCM arena per target (allocates real memory; sized for tests/benches).
  std::uint64_t scm_per_target = 64ull * 1024 * 1024;
  bool checksums = true;
};

struct EngineStats {
  std::uint64_t updates = 0;
  std::uint64_t fetches = 0;
  std::uint64_t bulk_bytes_in = 0;
  std::uint64_t bulk_bytes_out = 0;
};

class DaosEngine {
 public:
  /// `devices` are the server's NVMe SSDs; targets partition them
  /// round-robin (target i -> device i % devices.size()).
  DaosEngine(net::Fabric* fabric, EngineConfig config,
             std::span<storage::NvmeDevice* const> devices);
  ~DaosEngine();

  net::Endpoint* endpoint() const { return endpoint_; }
  net::PdId pd() const { return pd_; }
  rpc::RpcServer* server() { return &server_; }
  const EngineConfig& config() const { return config_; }
  std::uint32_t num_targets() const { return std::uint32_t(targets_.size()); }

  /// Direct VOS access for white-box tests (target introspection).
  Vos* target_vos(std::uint32_t target);

  EngineStats stats() const;

 private:
  struct Target {
    std::unique_ptr<scm::PmemPool> scm;
    std::unique_ptr<spdk::Bdev> bdev;
    std::unique_ptr<Vos> vos;
  };

  struct Container {
    ContainerId id = 0;
    std::string label;
    Epoch next_epoch = 1;
    std::uint64_t next_oid = 1;
  };

  void RegisterHandlers();
  Result<Container*> FindContainer(ContainerId id);
  Result<Vos*> RouteDkey(const ObjectId& oid, const std::string& dkey);

  // RPC handlers.
  Result<Buffer> HandlePoolConnect(const Buffer& header);
  Result<Buffer> HandleContCreate(const Buffer& header);
  Result<Buffer> HandleContOpen(const Buffer& header);
  Result<Buffer> HandleOidAlloc(const Buffer& header);
  Result<Buffer> HandleObjUpdate(const Buffer& header, rpc::BulkIo& bulk);
  Result<Buffer> HandleObjFetch(const Buffer& header, rpc::BulkIo& bulk);
  Result<Buffer> HandleSingleUpdate(const Buffer& header);
  Result<Buffer> HandleSingleFetch(const Buffer& header);
  Result<Buffer> HandleObjPunch(const Buffer& header);
  Result<Buffer> HandleListDkeys(const Buffer& header);
  Result<Buffer> HandleListAkeys(const Buffer& header);
  Result<Buffer> HandleArraySize(const Buffer& header);
  Result<Buffer> HandleAggregate(const Buffer& header);

  net::Fabric* fabric_;
  EngineConfig config_;
  net::Endpoint* endpoint_ = nullptr;
  net::PdId pd_ = 0;
  rpc::RpcServer server_;
  std::vector<Target> targets_;
  std::map<std::string, ContainerId> containers_by_label_;
  std::map<ContainerId, Container> containers_;
  ContainerId next_container_id_ = 1;
  EngineStats stats_;
};

}  // namespace ros2::daos
