// DAOS I/O engine: the storage-server process (§3.3).
//
// "The DAOS I/O engine executes entirely in user space with kernel-bypass
// I/O — SPDK for NVMe and PMDK for SCM; UCX/libfabric for networking."
//
// The engine owns N targets (xstreams); each target has an SCM pool, an
// NVMe partition on one of the server's devices, and a VOS instance.
// Object RPCs are routed to targets by dkey placement. Crucially — and this
// is the property the paper's offload leans on — the engine is UNCHANGED
// between host-client and DPU-client deployments: it just answers CaRT
// RPCs on its fabric endpoint.
//
// The request path is the paper's event-driven pipeline: every accepted QP
// reports into the engine's net::PollSet; ProgressAll() drains ready QPs
// (decode -> dispatch), data-plane ops defer onto their target's
// EngineScheduler run queue, and the scheduler's round-robin drain
// executes them — same-dkey ops stay FIFO on their target while different
// targets interleave — completing each deferred RpcContext with its reply.
// Metadata ops answer inline from dispatch; ops that touch every target
// (object punch, dkey enumeration) drain the xstreams first (a barrier),
// so they observe every previously-issued op.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "daos/scheduler.h"
#include "daos/types.h"
#include "daos/vos.h"
#include "net/fabric.h"
#include "rpc/data_rpc.h"
#include "scm/pmem_pool.h"
#include "spdk/bdev.h"
#include "storage/nvme_device.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace ros2::daos {

/// Data-plane opcodes served by the engine.
enum class DaosOpcode : std::uint32_t {
  kPoolConnect = 100,
  kContCreate,
  kContOpen,
  kOidAlloc,
  kObjUpdate,
  kObjFetch,
  kSingleUpdate,
  kSingleFetch,
  kObjPunch,
  kListDkeys,
  kListAkeys,
  kArraySize,
  kAggregate,
  /// Control plane: export a telemetry snapshot (header = flags + path
  /// prefix; reply = wire-encoded TelemetrySnapshot).
  kTelemetryQuery,
  /// Rebuild scan: every (oid, dkey) resident on this engine, all targets
  /// (barrier, like kListDkeys). Reply: u32 count, then per entry
  /// {u64 oid.hi, u64 oid.lo, str dkey}. The container is oid.hi by the
  /// kOidAlloc convention.
  kObjScan,
  /// Rebuild export: materialize one dkey's HEAD state. Header = ObjAddr
  /// (akey ignored); reply: u32 akey count, then per akey {str name,
  /// u8 ValueType, bytes payload} — arrays as the flat [0, size) image,
  /// punched/empty singles omitted. Absent dkey -> count 0.
  kDkeyExport,
  /// Rebuild import: replace one dkey with an exported image (punch-then-
  /// apply at fresh epochs). Header = ObjAddr (akey ignored) + bytes(the
  /// kDkeyExport reply, verbatim). Reply: u64 payload bytes applied.
  kDkeyImport,
};

/// Metric-path name for an opcode ("single_update"); "op<number>" for
/// opcodes outside the enum.
std::string DaosOpcodeName(std::uint32_t opcode);

/// kTelemetryQuery header flag: include the engine's TraceRecord ring in
/// the reply.
inline constexpr std::uint8_t kTelemetryQueryTraces = 0x1;

/// Punch scope selector on the wire.
enum class PunchScope : std::uint8_t { kObject = 0, kDkey = 1, kAkey = 2 };

struct EngineConfig {
  std::string address = "fabric://daos-server";
  std::string pool_label = "pool0";
  /// Shared secret required by PoolConnect ("" = open pool).
  std::string access_token;
  std::uint32_t targets = 16;
  /// SCM arena per target (allocates real memory; sized for tests/benches).
  std::uint64_t scm_per_target = 64ull * 1024 * 1024;
  bool checksums = true;
  /// True: each target is a real execution stream — a worker thread with a
  /// bounded submit queue — and deferred ops execute on their target's
  /// thread (replies still serialize on the progress path). False: the
  /// deterministic single-threaded round-robin drain.
  bool xstream_workers = false;
  /// Per-target submit-queue bound (threaded mode only).
  std::size_t xstream_queue_depth = 256;
  /// False: no metric tree, no per-op latency stamping, no scheduler
  /// clock reads — the engine answers kTelemetryQuery with an empty
  /// snapshot. The instrumentation-overhead bench's control arm.
  bool telemetry = true;
};

struct EngineStats {
  std::uint64_t updates = 0;
  std::uint64_t fetches = 0;
  std::uint64_t bulk_bytes_in = 0;
  std::uint64_t bulk_bytes_out = 0;
};

class DaosEngine {
 public:
  /// Validating factory: rejects a zero-target config (every engine needs
  /// at least one xstream; the constructor would otherwise have to guess)
  /// and an empty device span with INVALID_ARGUMENT.
  static Result<std::unique_ptr<DaosEngine>> Create(
      net::Fabric* fabric, EngineConfig config,
      std::span<storage::NvmeDevice* const> devices);

  /// `devices` are the server's NVMe SSDs; targets partition them
  /// round-robin (target i -> device i % devices.size()).
  /// Requires config.targets >= 1 (asserted; use Create for a Status).
  DaosEngine(net::Fabric* fabric, EngineConfig config,
             std::span<storage::NvmeDevice* const> devices);
  ~DaosEngine();

  net::Endpoint* endpoint() const { return endpoint_; }
  net::PdId pd() const { return pd_; }
  rpc::RpcServer* server() { return &server_; }
  const EngineConfig& config() const { return config_; }
  std::uint32_t num_targets() const { return std::uint32_t(targets_.size()); }

  /// One engine progress call (the CaRT progress-loop tick): drains every
  /// ready accepted QP through decode->dispatch, then completes deferred
  /// requests — serial mode runs the run queues dry; threaded mode waits
  /// for the workers to finish what was handed to them (a synchronous
  /// pump: replies for everything decodable are sent before returning).
  /// Clients pump this as their progress hook.
  Status ProgressAll();

  /// Starts the dedicated network progress thread: blocks in the poll
  /// set's DrainWait (doorbell wakeups — QP sends and worker completions
  /// both ring it), services ready QPs, and sends finished replies. With
  /// this running, clients need no progress hook at all. No-op if already
  /// running.
  void StartProgressThread();
  /// Stops and joins the progress thread (no-op if not running). The
  /// destructor calls it.
  void StopProgressThread();
  bool progress_thread_running() const {
    return progress_thread_.joinable();
  }

  /// The engine's per-target run queues (telemetry + tests).
  const EngineScheduler& scheduler() const { return scheduler_; }
  /// The accepted-QP readiness set (telemetry + tests).
  const net::PollSet& poll_set() const { return poll_set_; }

  /// Direct VOS access for white-box tests (target introspection).
  Vos* target_vos(std::uint32_t target);

  EngineStats stats() const;

  /// The engine's metric tree (empty when config.telemetry is false).
  /// Remote readers use kTelemetryQuery; in-process readers may snapshot
  /// directly — the hot paths only touch atomics, so this is safe while
  /// the engine is serving.
  const telemetry::Telemetry& telemetry() const { return telemetry_; }
  /// Mutable tree for co-located services (pool map, rebuild manager) to
  /// register their metrics into, so one kTelemetryQuery serves the whole
  /// node. nullptr when telemetry is disabled — Attach* helpers no-op on
  /// nullptr, so callers can pass it straight through.
  telemetry::Telemetry* mutable_telemetry() {
    return config_.telemetry ? &telemetry_ : nullptr;
  }
  /// Recent per-request timing breakdowns (trace_id -> queue/exec/total).
  const telemetry::TraceRing& traces() const { return traces_; }

  /// The final snapshot published by the progress thread as it exits
  /// (StopProgressThread), so post-mortem dumps see the real totals.
  /// FAILED_PRECONDITION until the progress thread has stopped at least
  /// once; NOT_FOUND when telemetry is disabled.
  Result<telemetry::TelemetrySnapshot> published_snapshot() const;

 private:
  struct Target {
    std::unique_ptr<scm::PmemPool> scm;
    std::unique_ptr<spdk::Bdev> bdev;
    std::unique_ptr<Vos> vos;
  };

  struct Container {
    ContainerId id = 0;
    std::string label;
    /// Atomic: epoch stamping happens on target worker threads, and one
    /// container's ops may span every target. (Makes Container pinned in
    /// place — the map's node stability is what Container* leans on.)
    std::atomic<Epoch> next_epoch{1};
    std::uint64_t next_oid = 1;
  };

  struct ObjAddr;  // common cont/oid/dkey/akey wire prefix (engine.cc)
  static Status DecodeObjAddr(rpc::Decoder& dec, ObjAddr* out);

  void RegisterHandlers();
  /// Builds the metric tree: links the engine/server/MR-cache counters,
  /// registers callback gauges over scheduler, poll-set, endpoint, and
  /// per-target VOS state. No-op when config.telemetry is false.
  void SetupTelemetry();
  /// Snapshots the whole tree (plus traces) into published_ — called by
  /// the progress thread on its way out.
  void PublishSnapshot();
  Result<Container*> FindContainer(ContainerId id);
  std::uint32_t TargetOf(const ObjectId& oid, const std::string& dkey) const;

  /// Parks a decoded request on `target`'s xstream. Takes the precomputed
  /// index, not (oid, dkey): callers move the decoded address into the op
  /// closure, so re-deriving the target here would read moved-from keys.
  rpc::HandlerVerdict Defer(std::uint32_t target, rpc::RpcContextPtr ctx,
                            EngineScheduler::OpFn op);
  /// Answers `ctx` with `error` at the dispatch step (shared malformed-
  /// header funnel for the Defer* handlers).
  static rpc::HandlerVerdict CompleteWithError(rpc::RpcContextPtr ctx,
                                               Status error);

  // Dispatch-step decoders for target-routed data ops: decode the header,
  // then park the context on the owning xstream (decode errors complete
  // the context immediately).
  rpc::HandlerVerdict DeferObjUpdate(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferObjFetch(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferSingleUpdate(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferSingleFetch(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferObjPunch(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferListAkeys(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferArraySize(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferAggregate(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferDkeyExport(rpc::RpcContextPtr ctx);
  rpc::HandlerVerdict DeferDkeyImport(rpc::RpcContextPtr ctx);

  // Execution bodies (run on the target xstream at drain time).
  Result<Buffer> ExecObjUpdate(const ObjAddr& addr, std::uint64_t offset,
                               std::uint32_t target, rpc::BulkIo& bulk);
  Result<Buffer> ExecObjFetch(const ObjAddr& addr, std::uint64_t offset,
                              std::uint64_t length, Epoch epoch,
                              std::uint32_t target, rpc::BulkIo& bulk);
  Result<Buffer> ExecSingleUpdate(const ObjAddr& addr, const Buffer& value,
                                  std::uint32_t target);
  Result<Buffer> ExecSingleFetch(const ObjAddr& addr, Epoch epoch,
                                 std::uint32_t target);
  Result<Buffer> ExecKeyPunch(const ObjAddr& addr, PunchScope scope,
                              std::uint32_t target);

  // Inline (metadata / barrier) handlers.
  Result<Buffer> HandlePoolConnect(const Buffer& header);
  Result<Buffer> HandleContCreate(const Buffer& header);
  Result<Buffer> HandleContOpen(const Buffer& header);
  Result<Buffer> HandleOidAlloc(const Buffer& header);
  Result<Buffer> HandleObjectPunch(const ObjAddr& addr);
  Result<Buffer> HandleListDkeys(const Buffer& header);
  Result<Buffer> HandleTelemetryQuery(const Buffer& header);
  Result<Buffer> HandleObjScan();

  // Rebuild bodies (run on the dkey's target xstream).
  Result<Buffer> ExecDkeyExport(const ObjAddr& addr, std::uint32_t target);
  Result<Buffer> ExecDkeyImport(const ObjAddr& addr, const Buffer& image,
                                std::uint32_t target);

  void ProgressThreadMain();
  /// Barrier before ops that must observe every issued op (object punch,
  /// dkey enumeration): serial = run the queues dry; threaded = quiesce
  /// the workers and send their replies.
  void DrainBarrier();

  net::Fabric* fabric_;
  EngineConfig config_;
  net::Endpoint* endpoint_ = nullptr;
  net::PdId pd_ = 0;
  rpc::RpcServer server_;
  net::PollSet poll_set_;
  EngineScheduler scheduler_;
  /// One counter shard per target plus one for the progress thread.
  telemetry::Telemetry telemetry_;
  telemetry::TraceRing traces_;
  std::vector<Target> targets_;
  /// Guards the container tables (created on the dispatch path, looked up
  /// from worker threads). Map nodes are stable, so a Container* handed
  /// out under the lock stays valid — containers are never erased.
  mutable common::Mutex containers_mu_;
  std::map<std::string, ContainerId> containers_by_label_
      ROS2_GUARDED_BY(containers_mu_);
  std::map<ContainerId, Container> containers_
      ROS2_GUARDED_BY(containers_mu_);
  ContainerId next_container_id_ ROS2_GUARDED_BY(containers_mu_) = 1;
  /// Sharded per target: each worker ticks its own shard.
  telemetry::Counter updates_;
  telemetry::Counter fetches_;
  /// Owned by the tree; cached here so the query handler can tick them
  /// without a path lookup. Null when telemetry is disabled.
  telemetry::Counter* queries_ = nullptr;
  telemetry::Timestamp* last_query_at_ = nullptr;
  std::thread progress_thread_;
  std::atomic<bool> progress_stop_{false};
  /// Satellite: the progress thread's exit publishes a final snapshot so
  /// dumps after Stop() are not all-zero.
  mutable common::Mutex published_mu_;
  telemetry::TelemetrySnapshot published_ ROS2_GUARDED_BY(published_mu_);
  bool has_published_ ROS2_GUARDED_BY(published_mu_) = false;
};

}  // namespace ros2::daos
