// Versioned Object Store — one per engine target (§2.4).
//
// Implements DAOS's transactional, versioned object model over the two
// storage tiers:
//
//   object -> dkey -> akey -> { single value | extent array }
//
// Every update is stamped with an epoch; fetches read "as of" an epoch
// (overlapping extents resolve newest-visible-wins). Records carry
// end-to-end CRC-32C: computed at ingest, verified on every fetch, so a
// corrupted tier surfaces as DATA_LOSS rather than silent bad bytes.
//
// Tiering follows DAOS policy: records <= the SCM threshold (and all
// single values) land in the PMEM pool; larger extents go to NVMe through
// the block allocator.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "daos/nvme_alloc.h"
#include "daos/types.h"
#include "scm/pmem_pool.h"
#include "spdk/bdev.h"

namespace ros2::daos {

struct VosConfig {
  /// Records at or below this size are stored in SCM (DAOS default policy).
  std::uint64_t scm_threshold = 64 * 1024;
  bool checksums = true;
  /// NVMe partition assigned to this target on the (possibly shared)
  /// bdev; capacity 0 means "the whole device".
  std::uint64_t nvme_base = 0;
  std::uint64_t nvme_capacity = 0;
};

// Relaxed atomics, not plain integers: with xstream workers each target's
// Vos is single-writer, but telemetry snapshots read these fields from the
// progress thread while the owning worker keeps ticking them.
struct VosStats {
  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> fetches{0};
  std::atomic<std::uint64_t> scm_records{0};
  std::atomic<std::uint64_t> nvme_records{0};
  std::atomic<std::uint64_t> bytes_in_scm{0};
  std::atomic<std::uint64_t> bytes_in_nvme{0};
};

class Vos {
 public:
  /// `scm` and `nvme` are the target's storage tiers (borrowed).
  Vos(scm::PmemPool* scm, spdk::Bdev* nvme, VosConfig config = {});
  ~Vos();

  Vos(const Vos&) = delete;
  Vos& operator=(const Vos&) = delete;

  // --- array values ------------------------------------------------------
  /// Writes `data` at `offset` within the array under (oid, dkey, akey),
  /// visible from `epoch` onward.
  Status UpdateArray(const ObjectId& oid, const std::string& dkey,
                     const std::string& akey, Epoch epoch,
                     std::uint64_t offset, std::span<const std::byte> data);

  /// Reads [offset, offset+out.size()) as of `epoch` (kEpochHead = latest).
  /// Holes read as zeros.
  Status FetchArray(const ObjectId& oid, const std::string& dkey,
                    const std::string& akey, Epoch epoch,
                    std::uint64_t offset, std::span<std::byte> out) const;

  /// Logical size: one past the highest written byte as of `epoch`.
  Result<std::uint64_t> ArraySize(const ObjectId& oid,
                                  const std::string& dkey,
                                  const std::string& akey,
                                  Epoch epoch) const;

  // --- single values -----------------------------------------------------
  Status UpdateSingle(const ObjectId& oid, const std::string& dkey,
                      const std::string& akey, Epoch epoch,
                      std::span<const std::byte> value);
  Result<Buffer> FetchSingle(const ObjectId& oid, const std::string& dkey,
                             const std::string& akey, Epoch epoch) const;

  // --- punch (delete) ----------------------------------------------------
  /// Removes the akey's value (visible from `epoch`).
  Status PunchAkey(const ObjectId& oid, const std::string& dkey,
                   const std::string& akey, Epoch epoch);
  Status PunchDkey(const ObjectId& oid, const std::string& dkey, Epoch epoch);
  Status PunchObject(const ObjectId& oid, Epoch epoch);

  // --- enumeration -------------------------------------------------------
  std::vector<std::string> ListDkeys(const ObjectId& oid) const;
  std::vector<std::string> ListAkeys(const ObjectId& oid,
                                     const std::string& dkey) const;
  bool ObjectExists(const ObjectId& oid) const;
  /// Every object resident on this target (rebuild scan).
  std::vector<ObjectId> ListObjects() const;

  /// Export descriptor for one akey under (oid, dkey): the value kind plus
  /// (for arrays) the HEAD logical size — everything the rebuild exporter
  /// needs to materialize the akey with FetchArray/FetchSingle.
  struct AkeyInfo {
    std::string akey;
    ValueType type = ValueType::kArray;
    std::uint64_t head_size = 0;  ///< arrays only: logical size at HEAD
  };
  /// Empty when the dkey (or object) does not exist on this target.
  std::vector<AkeyInfo> DescribeDkey(const ObjectId& oid,
                                     const std::string& dkey) const;

  // --- maintenance -------------------------------------------------------
  /// DAOS aggregation: collapses an array's record log up to `upto` into a
  /// single flat record, reclaiming superseded tier space. Reads at epochs
  /// below `upto` afterwards see the aggregated (latest) state.
  Status AggregateArray(const ObjectId& oid, const std::string& dkey,
                        const std::string& akey, Epoch upto);

  const VosStats& stats() const { return stats_; }

 private:
  /// Where a record's bytes physically live.
  struct ValueLoc {
    enum class Tier : std::uint8_t { kScm, kNvme } tier = Tier::kScm;
    scm::PmemHandle scm_handle = scm::kNullHandle;
    std::uint64_t nvme_offset = 0;
    std::uint64_t length = 0;       ///< stored bytes (LBA-padded on NVMe)
    std::uint64_t logical_len = 0;  ///< caller bytes
    std::uint32_t crc = 0;
  };

  /// One versioned extent record in an array's log.
  struct ArrayRecord {
    Extent extent;
    Epoch epoch = 0;
    bool punch = false;  ///< punch records erase the covered range
    ValueLoc loc;
  };

  struct SingleRecord {
    Epoch epoch = 0;
    bool punch = false;
    ValueLoc loc;
  };

  struct AkeyValue {
    ValueType type = ValueType::kArray;
    std::vector<ArrayRecord> records;    // array log, epoch-ordered
    std::vector<SingleRecord> singles;   // single-value log, epoch-ordered
  };

  using DkeyMap = std::map<std::string, AkeyValue>;
  using Object = std::map<std::string, DkeyMap>;

  Result<ValueLoc> Store(std::span<const std::byte> data);
  Status Load(const ValueLoc& loc, std::span<std::byte> out) const;
  void Release(ValueLoc& loc);

  Result<const AkeyValue*> FindValue(const ObjectId& oid,
                                     const std::string& dkey,
                                     const std::string& akey,
                                     ValueType expected) const;

  scm::PmemPool* scm_;
  spdk::Bdev* nvme_;
  NvmeAllocator nvme_alloc_;
  VosConfig config_;
  mutable VosStats stats_;  // fetch counters tick inside const reads
  std::map<ObjectId, Object> objects_;
};

}  // namespace ros2::daos
