// Core DAOS object-model types (§2.4): object ids, keys, epochs, extents.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ros2::daos {

/// 128-bit object identifier (DAOS oid).
struct ObjectId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const ObjectId&) const = default;
  bool valid() const { return hi != 0 || lo != 0; }
};

/// Monotonic version tag; every update is stamped with the container's
/// next epoch, and fetches read "as of" an epoch (0 = HEAD).
using Epoch = std::uint64_t;
inline constexpr Epoch kEpochHead = 0;

/// A byte range within an array value.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  bool Overlaps(const Extent& other) const {
    return offset < other.end() && other.offset < end();
  }
};

/// Value shape under an akey: a single atomic value (metadata-style) or a
/// sparse byte array addressed by extents (file-data-style).
enum class ValueType : std::uint8_t { kSingle = 0, kArray = 1 };

/// Container-scoped ids are dense u64s in this model (real DAOS uses
/// uuids; dense ids keep wire headers compact).
using ContainerId = std::uint64_t;
using PoolId = std::uint64_t;

struct DaosKeyHash {
  std::size_t operator()(const ObjectId& oid) const {
    // Mix both halves (splitmix-style).
    std::uint64_t x = oid.hi * 0x9E3779B97F4A7C15ull + oid.lo;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return std::size_t(x);
  }
};

}  // namespace ros2::daos
