#include "daos/pool_map.h"

namespace ros2::daos {

const char* EngineStateName(EngineState state) {
  switch (state) {
    case EngineState::kUp: return "up";
    case EngineState::kDown: return "down";
    case EngineState::kRebuilding: return "rebuilding";
  }
  return "unknown";
}

// ------------------------------------------------------- ResyncJournal

ResyncJournal::ResyncJournal(std::uint32_t engines) {
  engines_.reserve(engines);
  for (std::uint32_t e = 0; e < engines; ++e) {
    engines_.push_back(std::make_unique<PerEngine>());
  }
}

void ResyncJournal::Record(std::uint32_t engine, ResyncEntry entry) {
  if (engine >= engines_.size()) return;
  PerEngine& pe = *engines_[engine];
  common::MutexLock lk(pe.mu);
  if (pe.entries.insert(std::move(entry)).second) recorded_.Add(1);
}

std::vector<ResyncEntry> ResyncJournal::Drain(std::uint32_t engine) {
  if (engine >= engines_.size()) return {};
  PerEngine& pe = *engines_[engine];
  common::MutexLock lk(pe.mu);
  std::vector<ResyncEntry> out(pe.entries.begin(), pe.entries.end());
  pe.entries.clear();
  return out;
}

std::size_t ResyncJournal::depth(std::uint32_t engine) const {
  if (engine >= engines_.size()) return 0;
  PerEngine& pe = *engines_[engine];
  common::MutexLock lk(pe.mu);
  return pe.entries.size();
}

std::size_t ResyncJournal::total_depth() const {
  std::size_t total = 0;
  for (std::uint32_t e = 0; e < engines_.size(); ++e) total += depth(e);
  return total;
}

// ------------------------------------------------------------- PoolMap

PoolMap::PoolMap(std::uint32_t engines)
    : states_(engines == 0 ? 1 : engines),
      journal_(engines == 0 ? 1 : engines) {
  for (auto& s : states_) {
    s.store(std::uint8_t(EngineState::kUp), std::memory_order_relaxed);
  }
}

Status PoolMap::SetState(std::uint32_t engine, EngineState state) {
  if (engine >= states_.size()) return InvalidArgument("no such engine");
  common::MutexLock lk(mu_);
  states_[engine].store(std::uint8_t(state), std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
  transitions_.Add(1);
  return Status::Ok();
}

void PoolMap::AttachTelemetry(telemetry::Telemetry* tree) {
  if (tree == nullptr) return;
  tree->RegisterCallback("pool_map/version", [this] {
    return std::int64_t(version());
  });
  tree->LinkCounter("pool_map/transitions", &transitions_);
  tree->LinkCounter("pool_map/journal_recorded",
                    &journal_.recorded_counter());
  tree->RegisterCallback("pool_map/journal_depth", [this] {
    return std::int64_t(journal_.total_depth());
  });
  for (std::uint32_t e = 0; e < engine_count(); ++e) {
    tree->RegisterCallback(
        "pool_map/engine/" + std::to_string(e) + "/state",
        [this, e] { return std::int64_t(state(e)); });
  }
}

}  // namespace ros2::daos
