#include "daos/nvme_alloc.h"

namespace ros2::daos {

NvmeAllocator::NvmeAllocator(std::uint64_t base, std::uint64_t capacity,
                             std::uint32_t block_size)
    : capacity_(capacity), block_size_(block_size) {
  free_list_[base] = capacity_;
}

Result<std::uint64_t> NvmeAllocator::Alloc(std::uint64_t size) {
  if (size == 0) return InvalidArgument("zero-size allocation");
  const std::uint64_t rounded =
      (size + block_size_ - 1) / block_size_ * block_size_;
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= rounded) {
      const std::uint64_t offset = it->first;
      const std::uint64_t remaining = it->second - rounded;
      free_list_.erase(it);
      if (remaining > 0) free_list_[offset + rounded] = remaining;
      allocated_[offset] = rounded;
      used_ += rounded;
      return offset;
    }
  }
  return ResourceExhausted("nvme space exhausted");
}

Status NvmeAllocator::Free(std::uint64_t offset) {
  auto it = allocated_.find(offset);
  if (it == allocated_.end()) return NotFound("unknown allocation");
  const std::uint64_t size = it->second;
  allocated_.erase(it);
  used_ -= size;
  auto inserted = free_list_.emplace(offset, size).first;
  if (inserted != free_list_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_list_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_list_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_list_.erase(next);
  }
  return Status::Ok();
}

}  // namespace ros2::daos
