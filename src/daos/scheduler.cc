#include "daos/scheduler.h"

#include <cassert>
#include <utility>

namespace ros2::daos {

EngineScheduler::EngineScheduler(std::uint32_t targets,
                                 EngineSchedulerOptions options)
    : threaded_(options.threaded),
      num_targets_(targets),
      time_ops_(options.time_ops),
      executed_(targets),
      busy_ns_(targets) {
  assert(targets != 0 && "scheduler needs at least one target xstream");
  if (threaded_) {
    xstreams_.reserve(targets);
    for (std::uint32_t t = 0; t < targets; ++t) {
      xstreams_.push_back(std::make_unique<Xstream>(options.queue_capacity));
    }
  } else {
    queues_.resize(targets);
  }
}

EngineScheduler::~EngineScheduler() { Shutdown(); }

void EngineScheduler::NoteQueued() {
  const std::size_t depth =
      queued_total_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::size_t seen = high_water_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !high_water_.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
  }
}

void EngineScheduler::Enqueue(std::uint32_t target, rpc::RpcContextPtr ctx,
                              OpFn op) {
  assert(target < num_targets_ && "target out of range");
  if (!threaded_) {
    queues_[target].push_back(QueuedOp{std::move(ctx), std::move(op)});
    NoteQueued();
    return;
  }
  // Workers need a copyable task closure (std::function), so ownership of
  // the context goes shared at the submit boundary.
  auto shared = std::shared_ptr<rpc::RpcContext>(ctx.release());
  NoteQueued();
  const bool accepted = xstreams_[target]->Submit(
      [this, target, shared, op = std::move(op)]() mutable {
        std::uint64_t t0 = 0;
        if (time_ops_) {
          t0 = telemetry::NowNs();
          shared->MarkExecStart(t0);
        }
        Result<Buffer> reply = op(*shared);
        if (time_ops_) {
          const std::uint64_t t1 = telemetry::NowNs();
          shared->MarkExecEnd(t1);
          busy_ns_.Add(t1 - t0, target);
        }
        PushCompletion(target, std::move(shared), std::move(reply));
      });
  if (!accepted) {
    // Stream already stopping: answer instead of dropping the request.
    queued_total_.fetch_sub(1, std::memory_order_acq_rel);
    (void)shared->Complete(Status(Unavailable("engine shutting down")));
  }
}

void EngineScheduler::PushCompletion(std::uint32_t target,
                                     std::shared_ptr<rpc::RpcContext> ctx,
                                     Result<Buffer> reply) {
  {
    common::MutexLock lk(completions_mu_);
    completions_.push_back(
        Completion{std::move(ctx), std::move(reply), target});
  }
  if (completion_wakeup_) completion_wakeup_();
}

std::size_t EngineScheduler::DrainCompletions() {
  std::size_t n = 0;
  common::MutexLock lk(completions_mu_);
  while (!completions_.empty()) {
    Completion c = std::move(completions_.front());
    completions_.pop_front();
    lk.Unlock();
    // A failed Complete (dead QP) is the transport's problem; the op ran.
    (void)c.ctx->Complete(std::move(c.reply));
    executed_.Add(1, c.target);
    queued_total_.fetch_sub(1, std::memory_order_acq_rel);
    ++n;
    lk.Lock();
  }
  return n;
}

std::size_t EngineScheduler::ProgressOnce() {
  if (threaded_) return DrainCompletions();
  const std::uint32_t n = num_targets_;
  std::size_t ran = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t t = (cursor_ + i) % n;
    auto& queue = queues_[t];
    if (queue.empty()) continue;
    QueuedOp item = std::move(queue.front());
    queue.pop_front();
    queued_total_.fetch_sub(1, std::memory_order_acq_rel);
    std::uint64_t t0 = 0;
    if (time_ops_) {
      t0 = telemetry::NowNs();
      item.ctx->MarkExecStart(t0);
    }
    Result<Buffer> reply = item.op(*item.ctx);
    if (time_ops_) {
      const std::uint64_t t1 = telemetry::NowNs();
      item.ctx->MarkExecEnd(t1);
      busy_ns_.Add(t1 - t0, t);
    }
    // A failed Complete (dead QP) is the transport's problem; the op ran.
    (void)item.ctx->Complete(std::move(reply));
    executed_.Add(1, t);
    ++ran;
  }
  // Rotate the pass's start so target `cursor_` is not structurally first
  // every pass.
  if (n > 0) cursor_ = (cursor_ + 1) % n;
  return ran;
}

std::size_t EngineScheduler::ProgressAll() {
  if (threaded_) return DrainCompletions();
  std::size_t total = 0;
  while (!idle()) {
    total += ProgressOnce();
  }
  return total;
}

std::size_t EngineScheduler::Quiesce() {
  if (!threaded_) return ProgressAll();
  // Every already-submitted op finishes executing (workers go idle), then
  // every computed reply goes out. Workers only ever ADD completions, so
  // once they are idle one drain empties the hand-off queue.
  for (auto& xs : xstreams_) xs->Quiesce();
  return DrainCompletions();
}

void EngineScheduler::Shutdown() {
  if (!threaded_) return;
  if (shut_down_.exchange(true)) return;
  // Stop() runs everything still queued before joining, so no accepted
  // request is lost; the final drain sends their replies.
  for (auto& xs : xstreams_) xs->Stop();
  DrainCompletions();
}

std::size_t EngineScheduler::queued(std::uint32_t target) const {
  if (target >= num_targets_) return 0;
  if (threaded_) return xstreams_[target]->queued();
  return queues_[target].size();
}

std::uint64_t EngineScheduler::idle_ns(std::uint32_t target) const {
  if (!threaded_ || target >= num_targets_) return 0;
  return xstreams_[target]->idle_ns();
}

}  // namespace ros2::daos
