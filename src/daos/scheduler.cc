#include "daos/scheduler.h"

#include <cassert>

namespace ros2::daos {

EngineScheduler::EngineScheduler(std::uint32_t targets) {
  assert(targets != 0 && "scheduler needs at least one target xstream");
  queues_.resize(targets);
}

void EngineScheduler::Enqueue(std::uint32_t target, rpc::RpcContextPtr ctx,
                              OpFn op) {
  assert(target < queues_.size() && "target out of range");
  queues_[target].push_back(QueuedOp{std::move(ctx), std::move(op)});
  ++queued_total_;
  if (queued_total_ > high_water_) high_water_ = queued_total_;
}

std::size_t EngineScheduler::ProgressOnce() {
  const std::uint32_t n = num_targets();
  std::size_t ran = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t t = (cursor_ + i) % n;
    auto& queue = queues_[t];
    if (queue.empty()) continue;
    QueuedOp item = std::move(queue.front());
    queue.pop_front();
    --queued_total_;
    Result<Buffer> reply = item.op(*item.ctx);
    // A failed Complete (dead QP) is the transport's problem; the op ran.
    (void)item.ctx->Complete(std::move(reply));
    ++executed_;
    ++ran;
  }
  // Rotate the pass's start so target `cursor_` is not structurally first
  // every pass.
  if (n > 0) cursor_ = (cursor_ + 1) % n;
  return ran;
}

std::size_t EngineScheduler::ProgressAll() {
  std::size_t total = 0;
  while (!idle()) {
    total += ProgressOnce();
  }
  return total;
}

}  // namespace ros2::daos
