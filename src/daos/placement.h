// Object placement: (oid, dkey) -> engine target (§2.4 "objects are
// distributed across a set of storage targets").
//
// DAOS places by jump-consistent-style hashing over the pool map; this
// model keeps the property the evaluation depends on — distribution keys
// spread uniformly across targets — with a mixed 64-bit hash.
#pragma once

#include <cstdint>
#include <string_view>

#include "daos/types.h"

namespace ros2::daos {

inline std::uint64_t HashKey(std::string_view key) {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Level-1 placement: primary engine index in [0, num_engines) for a
/// (oid, dkey) pair; replica r lives at (primary + r) % num_engines.
/// Shared by DaosClient routing and the rebuild task's replica-set
/// filtering — the salt differs from PlaceDkey so the engine level and the
/// in-engine target level decorrelate.
inline std::uint32_t PlaceEngine(const ObjectId& oid, std::string_view dkey,
                                 std::uint32_t num_engines) {
  if (num_engines <= 1) return 0;
  std::uint64_t x = oid.lo ^ (oid.hi * 0xD1B54A32D192ED03ull) ^
                    (HashKey(dkey) * 0x9E3779B97F4A7C15ull);
  x ^= x >> 31;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 29;
  return std::uint32_t(x % num_engines);
}

/// Target index in [0, num_targets) for a (oid, dkey) pair. All akeys under
/// one dkey colocate (DAOS's unit of distribution is the dkey).
inline std::uint32_t PlaceDkey(const ObjectId& oid, std::string_view dkey,
                               std::uint32_t num_targets) {
  std::uint64_t x = oid.hi ^ (oid.lo * 0x9E3779B97F4A7C15ull) ^ HashKey(dkey);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 29;
  return std::uint32_t(x % (num_targets == 0 ? 1 : num_targets));
}

}  // namespace ros2::daos
