#include "daos/engine.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "daos/placement.h"
#include "rpc/wire.h"

namespace ros2::daos {

std::string DaosOpcodeName(std::uint32_t opcode) {
  switch (DaosOpcode(opcode)) {
    case DaosOpcode::kPoolConnect: return "pool_connect";
    case DaosOpcode::kContCreate: return "cont_create";
    case DaosOpcode::kContOpen: return "cont_open";
    case DaosOpcode::kOidAlloc: return "oid_alloc";
    case DaosOpcode::kObjUpdate: return "obj_update";
    case DaosOpcode::kObjFetch: return "obj_fetch";
    case DaosOpcode::kSingleUpdate: return "single_update";
    case DaosOpcode::kSingleFetch: return "single_fetch";
    case DaosOpcode::kObjPunch: return "obj_punch";
    case DaosOpcode::kListDkeys: return "list_dkeys";
    case DaosOpcode::kListAkeys: return "list_akeys";
    case DaosOpcode::kArraySize: return "array_size";
    case DaosOpcode::kAggregate: return "aggregate";
    case DaosOpcode::kTelemetryQuery: return "telemetry_query";
    case DaosOpcode::kObjScan: return "obj_scan";
    case DaosOpcode::kDkeyExport: return "dkey_export";
    case DaosOpcode::kDkeyImport: return "dkey_import";
  }
  return "op" + std::to_string(opcode);
}

/// Common object-addressing prefix: cont, oid, dkey, akey.
struct DaosEngine::ObjAddr {
  ContainerId cont = 0;
  ObjectId oid;
  std::string dkey;
  std::string akey;
};

Status DaosEngine::DecodeObjAddr(rpc::Decoder& dec, ObjAddr* out) {
  ROS2_ASSIGN_OR_RETURN(out->cont, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->oid.lo, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->dkey, dec.Str());
  ROS2_ASSIGN_OR_RETURN(out->akey, dec.Str());
  return Status::Ok();
}

Result<std::unique_ptr<DaosEngine>> DaosEngine::Create(
    net::Fabric* fabric, EngineConfig config,
    std::span<storage::NvmeDevice* const> devices) {
  if (config.targets == 0) {
    return Status(InvalidArgument(
        "EngineConfig::targets must be >= 1: every engine needs at least "
        "one target xstream"));
  }
  if (devices.empty()) {
    return Status(InvalidArgument("engine needs at least one NVMe device"));
  }
  if (fabric->Lookup(config.address).ok()) {
    return Status(AlreadyExists("engine address in use: " + config.address));
  }
  return std::unique_ptr<DaosEngine>(
      new DaosEngine(fabric, std::move(config), devices));
}

DaosEngine::DaosEngine(net::Fabric* fabric, EngineConfig config,
                       std::span<storage::NvmeDevice* const> devices)
    : fabric_(fabric),
      config_(std::move(config)),
      scheduler_(config_.targets,
                 EngineSchedulerOptions{config_.xstream_workers,
                                        config_.xstream_queue_depth,
                                        /*time_ops=*/config_.telemetry}),
      telemetry_(/*default_shards=*/config_.targets + 1),
      updates_(config_.targets),
      fetches_(config_.targets) {
  assert(config_.targets != 0 &&
         "EngineConfig::targets must be >= 1 (DaosEngine::Create validates)");
  assert(!devices.empty() && "engine needs at least one NVMe device");
  auto ep = fabric_->CreateEndpoint(config_.address);
  assert(ep.ok() && "engine endpoint address collision");
  endpoint_ = ep.value();
  pd_ = endpoint_->AllocPd();
  // Every QP this endpoint accepts reports into the engine's poll set, so
  // one ProgressAll tick services all connections without per-QP scans.
  endpoint_->set_accept_poll_set(&poll_set_);
  if (scheduler_.threaded()) {
    // Worker-finished replies must wake a progress thread blocked in
    // DrainWait: ring the poll set's doorbell from the completion push.
    scheduler_.set_completion_wakeup([this] { poll_set_.Ring(); });
  }

  // Partition each device among the targets assigned to it.
  const std::uint32_t n = config_.targets;
  std::vector<std::uint32_t> per_device(devices.size(), 0);
  for (std::uint32_t t = 0; t < n; ++t) per_device[t % devices.size()]++;

  for (std::uint32_t t = 0; t < n; ++t) {
    const std::size_t dev_index = t % devices.size();
    storage::NvmeDevice* device = devices[dev_index];
    const std::uint32_t slot = t / std::uint32_t(devices.size());
    const std::uint64_t share =
        device->config().capacity_bytes / per_device[dev_index];
    // Align the partition base to the LBA size.
    const std::uint32_t lba = device->config().lba_size;
    const std::uint64_t base = (share * slot) / lba * lba;

    Target target;
    target.scm = std::make_unique<scm::PmemPool>(config_.scm_per_target);
    target.bdev = std::make_unique<spdk::Bdev>(device);
    VosConfig vos_config;
    vos_config.checksums = config_.checksums;
    vos_config.nvme_base = base;
    vos_config.nvme_capacity = share / lba * lba;
    target.vos = std::make_unique<Vos>(target.scm.get(), target.bdev.get(),
                                       vos_config);
    targets_.push_back(std::move(target));
  }
  SetupTelemetry();
  RegisterHandlers();
  ROS2_INFO << "daos engine up at " << config_.address << " ("
            << targets_.size() << " targets, " << devices.size()
            << " devices)";
}

DaosEngine::~DaosEngine() {
  StopProgressThread();
  // Stop the workers BEFORE member destruction: targets_ (the VOS
  // instances the ops touch) is destroyed before scheduler_ in reverse
  // declaration order, so a still-running worker would use freed state.
  scheduler_.Shutdown();
  // Detach the accept hook before poll_set_ dies; the endpoint (and its
  // QPs) belong to the fabric and may outlive this engine.
  if (endpoint_ != nullptr) endpoint_->set_accept_poll_set(nullptr);
}

Status DaosEngine::ProgressAll() {
  // Decode + dispatch everything that arrived (inline handlers reply
  // here; data ops park on their target's xstream), then complete the
  // deferred contexts: serial mode runs the queues dry (round-robin
  // target order, same-dkey FIFO); threaded mode waits for the workers
  // to finish what this tick dispatched and sends their replies, so the
  // synchronous-pump contract (reply ready when ProgressAll returns)
  // holds in both modes.
  Status s = server_.Progress(&poll_set_);
  if (scheduler_.threaded()) {
    scheduler_.Quiesce();
  } else {
    scheduler_.ProgressAll();
  }
  return s;
}

void DaosEngine::DrainBarrier() {
  if (scheduler_.threaded()) {
    scheduler_.Quiesce();
  } else {
    scheduler_.ProgressAll();
  }
}

void DaosEngine::ProgressThreadMain() {
  while (!progress_stop_.load(std::memory_order_acquire)) {
    // Block until a QP reports readiness or a worker completion rings the
    // doorbell (bounded so a missed edge can't hang shutdown), then
    // service both directions of the pipeline.
    poll_set_.DrainWait(/*timeout_ms=*/10,
                        [&](net::Qp* qp) { (void)server_.Progress(qp); });
    // Drain the run queue completely before blocking again: ops parked by
    // the dispatch above do NOT ring the doorbell, and ProgressOnce runs
    // at most one op per target per pass — sleeping with a non-empty
    // queue would stall every pipelined multi-chunk batch by the full
    // wait timeout. Interleave a non-blocking drain so requests arriving
    // mid-pass are decoded into this same pass.
    while (scheduler_.ProgressOnce() > 0 &&
           !progress_stop_.load(std::memory_order_acquire)) {
      (void)poll_set_.Drain(
          [&](net::Qp* qp) { (void)server_.Progress(qp); });
    }
  }
  // Final sweep: everything decoded before stop was requested still gets
  // its reply (tests rely on a clean drain, not dropped contexts).
  (void)server_.Progress(&poll_set_);
  DrainBarrier();
  // Publish the totals as of thread exit so a post-mortem dump (after
  // Stop(), when live queries are no longer pumped) is not all-zero.
  PublishSnapshot();
}

void DaosEngine::StartProgressThread() {
  if (progress_thread_.joinable()) return;
  progress_stop_.store(false, std::memory_order_release);
  progress_thread_ = std::thread([this] { ProgressThreadMain(); });
}

void DaosEngine::StopProgressThread() {
  if (!progress_thread_.joinable()) return;
  progress_stop_.store(true, std::memory_order_release);
  poll_set_.Ring();  // kick it out of DrainWait immediately
  progress_thread_.join();
}

Vos* DaosEngine::target_vos(std::uint32_t target) {
  return target < targets_.size() ? targets_[target].vos.get() : nullptr;
}

EngineStats DaosEngine::stats() const {
  // A view over the telemetry counters — same objects the metric tree
  // links, folded here instead of maintained twice.
  EngineStats s;
  s.updates = updates_.value();
  s.fetches = fetches_.value();
  s.bulk_bytes_in = server_.bulk_bytes_in();
  s.bulk_bytes_out = server_.bulk_bytes_out();
  return s;
}

void DaosEngine::SetupTelemetry() {
  if (!config_.telemetry) return;
  // Per-opcode request counters + decode->dispatch->execute->reply
  // latency histograms, named after the DAOS opcodes.
  server_.EnableTelemetry(
      &telemetry_, [](std::uint32_t op) { return DaosOpcodeName(op); },
      &traces_);
  telemetry_.LinkCounter("engine/updates", &updates_);
  telemetry_.LinkCounter("engine/fetches", &fetches_);
  if (auto* ts = telemetry_.RegisterTimestamp("engine/started_at")) {
    ts->Stamp();
  }
  queries_ = telemetry_.RegisterCounter("telemetry/queries", 1);
  last_query_at_ = telemetry_.RegisterTimestamp("telemetry/last_query_at");

  // Scheduler: aggregate + per-target queue depth and busy/idle split.
  telemetry_.RegisterCallback("sched/queued", [this] {
    return std::int64_t(scheduler_.queued());
  });
  telemetry_.RegisterCallback("sched/queue_high_water", [this] {
    return std::int64_t(scheduler_.max_queue_depth());
  });
  telemetry_.RegisterCallback("sched/executed", [this] {
    return std::int64_t(scheduler_.executed());
  });
  telemetry_.RegisterCallback("sched/busy_ns", [this] {
    return std::int64_t(scheduler_.busy_ns());
  });
  for (std::uint32_t t = 0; t < config_.targets; ++t) {
    const std::string base = "sched/target/" + std::to_string(t) + "/";
    telemetry_.RegisterCallback(base + "queue_depth", [this, t] {
      return std::int64_t(scheduler_.queued(t));
    });
    telemetry_.RegisterCallback(base + "executed", [this, t] {
      return std::int64_t(scheduler_.executed(t));
    });
    telemetry_.RegisterCallback(base + "busy_ns", [this, t] {
      return std::int64_t(scheduler_.busy_ns(t));
    });
    telemetry_.RegisterCallback(base + "idle_ns", [this, t] {
      return std::int64_t(scheduler_.idle_ns(t));
    });
  }

  // Network: doorbell wakeups, traffic, and the MR cache (linked — the
  // cache keeps updating the same counter objects the snapshot reads).
  telemetry_.RegisterCallback("net/doorbells", [this] {
    return std::int64_t(poll_set_.doorbells());
  });
  telemetry_.RegisterCallback("net/drains", [this] {
    return std::int64_t(poll_set_.drains());
  });
  telemetry_.RegisterCallback("net/qp_count", [this] {
    return std::int64_t(endpoint_->qp_count());
  });
  telemetry_.RegisterCallback("net/bytes_sent", [this] {
    return std::int64_t(endpoint_->TotalTraffic().bytes_sent);
  });
  telemetry_.RegisterCallback("net/bytes_one_sided", [this] {
    return std::int64_t(endpoint_->TotalTraffic().bytes_one_sided);
  });
  const net::MrCache& mrc = endpoint_->mr_cache();
  telemetry_.LinkCounter("net/mr_cache/hits", &mrc.hits_counter());
  telemetry_.LinkCounter("net/mr_cache/misses", &mrc.misses_counter());
  telemetry_.LinkCounter("net/mr_cache/evictions", &mrc.evictions_counter());
  telemetry_.RegisterCallback("net/mr_cache/leased", [this] {
    return std::int64_t(endpoint_->mr_cache().leased());
  });

  // Per-target VOS: op counts and tier placement (atomics readable while
  // the target worker ticks them).
  for (std::uint32_t t = 0; t < std::uint32_t(targets_.size()); ++t) {
    const Vos* vos = targets_[t].vos.get();
    const std::string base = "vos/target/" + std::to_string(t) + "/";
    auto read = [](const std::atomic<std::uint64_t>& v) {
      return std::int64_t(v.load(std::memory_order_relaxed));
    };
    telemetry_.RegisterCallback(base + "updates", [vos, read] {
      return read(vos->stats().updates);
    });
    telemetry_.RegisterCallback(base + "fetches", [vos, read] {
      return read(vos->stats().fetches);
    });
    telemetry_.RegisterCallback(base + "scm_records", [vos, read] {
      return read(vos->stats().scm_records);
    });
    telemetry_.RegisterCallback(base + "nvme_records", [vos, read] {
      return read(vos->stats().nvme_records);
    });
    telemetry_.RegisterCallback(base + "bytes_in_scm", [vos, read] {
      return read(vos->stats().bytes_in_scm);
    });
    telemetry_.RegisterCallback(base + "bytes_in_nvme", [vos, read] {
      return read(vos->stats().bytes_in_nvme);
    });
  }
}

void DaosEngine::PublishSnapshot() {
  if (!config_.telemetry) return;
  telemetry::TelemetrySnapshot snap = telemetry_.Snapshot();
  snap.traces = traces_.Snapshot();
  common::MutexLock lk(published_mu_);
  published_ = std::move(snap);
  has_published_ = true;
}

Result<telemetry::TelemetrySnapshot> DaosEngine::published_snapshot() const {
  if (!config_.telemetry) {
    return Status(NotFound("telemetry disabled on this engine"));
  }
  common::MutexLock lk(published_mu_);
  if (!has_published_) {
    return Status(FailedPrecondition(
        "no published snapshot: progress thread has not stopped yet"));
  }
  return published_;
}

void DaosEngine::RegisterHandlers() {
  // Metadata / pool-service ops: answered inline from the dispatch step.
  auto bind = [this](DaosOpcode op,
                     Result<Buffer> (DaosEngine::*fn)(const Buffer&)) {
    server_.Register(std::uint32_t(op),
                     [this, fn](const Buffer& h, rpc::BulkIo&) {
                       return (this->*fn)(h);
                     });
  };
  bind(DaosOpcode::kPoolConnect, &DaosEngine::HandlePoolConnect);
  bind(DaosOpcode::kContCreate, &DaosEngine::HandleContCreate);
  bind(DaosOpcode::kContOpen, &DaosEngine::HandleContOpen);
  bind(DaosOpcode::kOidAlloc, &DaosEngine::HandleOidAlloc);
  bind(DaosOpcode::kTelemetryQuery, &DaosEngine::HandleTelemetryQuery);
  // kListDkeys enumerates every target: it is a BARRIER — the xstreams
  // drain first so the listing observes every already-issued op.
  server_.Register(std::uint32_t(DaosOpcode::kListDkeys),
                   [this](const Buffer& h, rpc::BulkIo&) {
                     DrainBarrier();
                     return HandleListDkeys(h);
                   });
  // kObjScan (the rebuild walk) enumerates every target too: same barrier
  // so the scan observes every already-issued op.
  server_.Register(std::uint32_t(DaosOpcode::kObjScan),
                   [this](const Buffer&, rpc::BulkIo&) {
                     DrainBarrier();
                     return HandleObjScan();
                   });

  // Target-routed data ops: decode -> defer onto the dkey's xstream.
  auto defer = [this](DaosOpcode op,
                      rpc::HandlerVerdict (DaosEngine::*fn)(
                          rpc::RpcContextPtr)) {
    server_.RegisterAsync(std::uint32_t(op),
                          [this, fn](rpc::RpcContextPtr ctx) {
                            return (this->*fn)(std::move(ctx));
                          });
  };
  defer(DaosOpcode::kObjUpdate, &DaosEngine::DeferObjUpdate);
  defer(DaosOpcode::kObjFetch, &DaosEngine::DeferObjFetch);
  defer(DaosOpcode::kSingleUpdate, &DaosEngine::DeferSingleUpdate);
  defer(DaosOpcode::kSingleFetch, &DaosEngine::DeferSingleFetch);
  defer(DaosOpcode::kObjPunch, &DaosEngine::DeferObjPunch);
  defer(DaosOpcode::kListAkeys, &DaosEngine::DeferListAkeys);
  defer(DaosOpcode::kArraySize, &DaosEngine::DeferArraySize);
  defer(DaosOpcode::kAggregate, &DaosEngine::DeferAggregate);
  defer(DaosOpcode::kDkeyExport, &DaosEngine::DeferDkeyExport);
  defer(DaosOpcode::kDkeyImport, &DaosEngine::DeferDkeyImport);
}

Result<DaosEngine::Container*> DaosEngine::FindContainer(ContainerId id) {
  common::MutexLock lk(containers_mu_);
  auto it = containers_.find(id);
  if (it == containers_.end()) return NotFound("unknown container");
  return &it->second;  // node-stable; containers are never erased
}

std::uint32_t DaosEngine::TargetOf(const ObjectId& oid,
                                   const std::string& dkey) const {
  return PlaceDkey(oid, dkey, std::uint32_t(targets_.size()));
}

rpc::HandlerVerdict DaosEngine::Defer(std::uint32_t target,
                                      rpc::RpcContextPtr ctx,
                                      EngineScheduler::OpFn op) {
  scheduler_.Enqueue(target, std::move(ctx), std::move(op));
  return rpc::HandlerVerdict::kDeferred;
}

// ------------------------------------------------------ inline handlers

Result<Buffer> DaosEngine::HandlePoolConnect(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  ROS2_ASSIGN_OR_RETURN(std::string token, dec.Str());
  if (label != config_.pool_label) {
    return Status(NotFound("unknown pool label: " + label));
  }
  if (!config_.access_token.empty() && token != config_.access_token) {
    return Status(PermissionDenied("pool access token rejected"));
  }
  rpc::Encoder enc;
  enc.U64(1 /*pool id*/).U32(std::uint32_t(targets_.size()));
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleContCreate(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  common::MutexLock lk(containers_mu_);
  if (containers_by_label_.contains(label)) {
    return Status(AlreadyExists("container label in use: " + label));
  }
  const ContainerId id = next_container_id_++;
  containers_by_label_[label] = id;
  Container& cont = containers_[id];  // in-place: Container is immovable
  cont.id = id;
  cont.label = label;
  if (config_.telemetry) {
    // Container* is node-stable and never erased; the callback only reads
    // the epoch atomic, so no lock ordering issue with containers_mu_.
    const Container* cp = &cont;
    telemetry_.RegisterCallback(
        "engine/cont/" + label + "/epoch",
        [cp] { return std::int64_t(cp->next_epoch.load()); });
  }
  rpc::Encoder enc;
  enc.U64(id);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleContOpen(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  common::MutexLock lk(containers_mu_);
  auto it = containers_by_label_.find(label);
  if (it == containers_by_label_.end()) {
    return Status(NotFound("no container labeled " + label));
  }
  rpc::Encoder enc;
  enc.U64(it->second);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleOidAlloc(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(ContainerId cont_id, dec.U64());
  // next_oid is plain (not atomic): allocate under the table lock.
  common::MutexLock lk(containers_mu_);
  auto it = containers_.find(cont_id);
  if (it == containers_.end()) return Status(NotFound("unknown container"));
  rpc::Encoder enc;
  // hi = container id (namespacing), lo = per-container sequence.
  enc.U64(cont_id).U64(it->second.next_oid++);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleObjectPunch(const ObjAddr& addr) {
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  const Epoch epoch = cont->next_epoch++;
  // The object's dkeys may span every target; punch on each.
  bool found = false;
  for (auto& target : targets_) {
    if (target.vos->ObjectExists(addr.oid)) {
      ROS2_RETURN_IF_ERROR(target.vos->PunchObject(addr.oid, epoch));
      found = true;
    }
  }
  if (!found) return Status(NotFound("no such object"));
  return Buffer{};
}

Result<Buffer> DaosEngine::HandleListDkeys(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(ContainerId cont_id, dec.U64());
  ObjectId oid;
  ROS2_ASSIGN_OR_RETURN(oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(oid.lo, dec.U64());
  ROS2_ASSIGN_OR_RETURN(std::string marker, dec.Str());
  ROS2_ASSIGN_OR_RETURN(std::uint32_t limit, dec.U32());
  ROS2_RETURN_IF_ERROR(FindContainer(cont_id).status());
  // Paged enumeration (limit 0 = everything): filter strictly past the
  // marker, sort, and truncate server-side so a million-entry directory
  // ships one page per round trip, not the whole namespace.
  std::vector<std::string> all;
  for (auto& target : targets_) {
    for (auto& dkey : target.vos->ListDkeys(oid)) {
      if (!marker.empty() && dkey <= marker) continue;
      all.push_back(std::move(dkey));
    }
  }
  std::sort(all.begin(), all.end());
  bool more = false;
  if (limit != 0 && all.size() > limit) {
    all.resize(limit);
    more = true;
  }
  rpc::Encoder enc;
  enc.U32(std::uint32_t(all.size()));
  for (const auto& dkey : all) enc.Str(dkey);
  enc.U8(more ? 1 : 0);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleObjScan() {
  // Within one engine a dkey lives on exactly one target, so the
  // concatenation is already duplicate-free.
  rpc::Encoder enc;
  std::uint32_t count = 0;
  rpc::Encoder entries;
  for (auto& target : targets_) {
    for (const ObjectId& oid : target.vos->ListObjects()) {
      for (const std::string& dkey : target.vos->ListDkeys(oid)) {
        entries.U64(oid.hi).U64(oid.lo).Str(dkey);
        ++count;
      }
    }
  }
  enc.U32(count).Bytes(entries.buffer());
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleTelemetryQuery(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::uint8_t flags, dec.U8());
  ROS2_ASSIGN_OR_RETURN(std::string prefix, dec.Str());
  if (queries_ != nullptr) queries_->Add(1);
  if (last_query_at_ != nullptr) last_query_at_->Stamp();
  // With telemetry disabled the tree is empty: the reply is a valid,
  // empty snapshot rather than an error (readers can tell the modes
  // apart by the absence of engine/started_at).
  telemetry::TelemetrySnapshot snap = telemetry_.Snapshot(prefix);
  if ((flags & kTelemetryQueryTraces) != 0) snap.traces = traces_.Snapshot();
  rpc::Encoder enc;
  snap.EncodeTo(enc);
  return enc.Take();
}

// ------------------------------------------------- dispatch-step routing

rpc::HandlerVerdict DaosEngine::CompleteWithError(rpc::RpcContextPtr ctx,
                                                  Status error) {
  (void)ctx->Complete(std::move(error));
  return rpc::HandlerVerdict::kDone;
}

rpc::HandlerVerdict DaosEngine::DeferObjUpdate(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  std::uint64_t offset = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(offset, dec.U64());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), offset,
                target](rpc::RpcContext& c) {
                 return ExecObjUpdate(addr, offset, target, c.bulk());
               });
}

rpc::HandlerVerdict DaosEngine::DeferObjFetch(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  Epoch epoch = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(offset, dec.U64());
    ROS2_ASSIGN_OR_RETURN(length, dec.U64());
    ROS2_ASSIGN_OR_RETURN(epoch, dec.U64());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), offset, length, epoch,
                target](rpc::RpcContext& c) {
                 return ExecObjFetch(addr, offset, length, epoch, target,
                                     c.bulk());
               });
}

rpc::HandlerVerdict DaosEngine::DeferSingleUpdate(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Buffer value;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(value, dec.Bytes());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), value = std::move(value),
                target](rpc::RpcContext&) {
                 return ExecSingleUpdate(addr, value, target);
               });
}

rpc::HandlerVerdict DaosEngine::DeferSingleFetch(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Epoch epoch = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(epoch, dec.U64());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), epoch,
                target](rpc::RpcContext&) {
                 return ExecSingleFetch(addr, epoch, target);
               });
}

rpc::HandlerVerdict DaosEngine::DeferObjPunch(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  std::uint8_t scope_raw = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(scope_raw, dec.U8());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const auto scope = PunchScope(scope_raw);
  if (scope == PunchScope::kObject) {
    // Object punch touches every target: barrier, then answer inline.
    DrainBarrier();
    (void)ctx->Complete(HandleObjectPunch(addr));
    return rpc::HandlerVerdict::kDone;
  }
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), scope,
                target](rpc::RpcContext&) {
                 return ExecKeyPunch(addr, scope, target);
               });
}

rpc::HandlerVerdict DaosEngine::DeferListAkeys(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Status s = DecodeObjAddr(dec, &addr);
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), target](rpc::RpcContext&)
                   -> Result<Buffer> {
                 ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
                 rpc::Encoder enc;
                 const auto akeys =
                     targets_[target].vos->ListAkeys(addr.oid, addr.dkey);
                 enc.U32(std::uint32_t(akeys.size()));
                 for (const auto& akey : akeys) enc.Str(akey);
                 return enc.Take();
               });
}

rpc::HandlerVerdict DaosEngine::DeferArraySize(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Epoch epoch = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(epoch, dec.U64());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), epoch,
                target](rpc::RpcContext&) -> Result<Buffer> {
                 ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
                 ROS2_ASSIGN_OR_RETURN(
                     std::uint64_t size,
                     targets_[target].vos->ArraySize(addr.oid, addr.dkey,
                                                     addr.akey, epoch));
                 rpc::Encoder enc;
                 enc.U64(size);
                 return enc.Take();
               });
}

rpc::HandlerVerdict DaosEngine::DeferAggregate(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Epoch upto = 0;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(upto, dec.U64());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), upto,
                target](rpc::RpcContext&) -> Result<Buffer> {
                 ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
                 ROS2_RETURN_IF_ERROR(targets_[target].vos->AggregateArray(
                     addr.oid, addr.dkey, addr.akey, upto));
                 return Buffer{};
               });
}

rpc::HandlerVerdict DaosEngine::DeferDkeyExport(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Status s = DecodeObjAddr(dec, &addr);
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), target](rpc::RpcContext&) {
                 return ExecDkeyExport(addr, target);
               });
}

rpc::HandlerVerdict DaosEngine::DeferDkeyImport(rpc::RpcContextPtr ctx) {
  rpc::Decoder dec(ctx->header());
  ObjAddr addr;
  Buffer image;
  Status s = [&]() -> Status {
    ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
    ROS2_ASSIGN_OR_RETURN(image, dec.Bytes());
    return Status::Ok();
  }();
  if (!s.ok()) return CompleteWithError(std::move(ctx), std::move(s));
  const std::uint32_t target = TargetOf(addr.oid, addr.dkey);
  return Defer(target, std::move(ctx),
               [this, addr = std::move(addr), image = std::move(image),
                target](rpc::RpcContext&) {
                 return ExecDkeyImport(addr, image, target);
               });
}

// ------------------------------------------------- xstream execution

Result<Buffer> DaosEngine::ExecObjUpdate(const ObjAddr& addr,
                                         std::uint64_t offset,
                                         std::uint32_t target,
                                         rpc::BulkIo& bulk) {
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  if (bulk.in_size() == 0) {
    return Status(InvalidArgument("update requires a bulk payload"));
  }
  Buffer data(bulk.in_size());
  ROS2_RETURN_IF_ERROR(bulk.Pull(data));
  const Epoch epoch = cont->next_epoch++;
  ROS2_RETURN_IF_ERROR(targets_[target].vos->UpdateArray(
      addr.oid, addr.dkey, addr.akey, epoch, offset, data));
  updates_.Add(1, target);
  rpc::Encoder enc;
  enc.U64(epoch);
  return enc.Take();
}

Result<Buffer> DaosEngine::ExecObjFetch(const ObjAddr& addr,
                                        std::uint64_t offset,
                                        std::uint64_t length, Epoch epoch,
                                        std::uint32_t target,
                                        rpc::BulkIo& bulk) {
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  if (length != bulk.out_capacity()) {
    return Status(InvalidArgument("fetch length != client bulk window"));
  }
  Buffer data(length);
  ROS2_RETURN_IF_ERROR(targets_[target].vos->FetchArray(
      addr.oid, addr.dkey, addr.akey, epoch, offset, data));
  ROS2_RETURN_IF_ERROR(bulk.Push(data));
  fetches_.Add(1, target);
  return Buffer{};
}

Result<Buffer> DaosEngine::ExecSingleUpdate(const ObjAddr& addr,
                                            const Buffer& value,
                                            std::uint32_t target) {
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  const Epoch epoch = cont->next_epoch++;
  ROS2_RETURN_IF_ERROR(targets_[target].vos->UpdateSingle(
      addr.oid, addr.dkey, addr.akey, epoch, value));
  updates_.Add(1, target);
  rpc::Encoder enc;
  enc.U64(epoch);
  return enc.Take();
}

Result<Buffer> DaosEngine::ExecSingleFetch(const ObjAddr& addr, Epoch epoch,
                                           std::uint32_t target) {
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  ROS2_ASSIGN_OR_RETURN(Buffer value,
                        targets_[target].vos->FetchSingle(
                            addr.oid, addr.dkey, addr.akey, epoch));
  fetches_.Add(1, target);
  rpc::Encoder enc;
  enc.Bytes(value);
  return enc.Take();
}

Result<Buffer> DaosEngine::ExecDkeyExport(const ObjAddr& addr,
                                          std::uint32_t target) {
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  Vos* vos = targets_[target].vos.get();
  struct Entry {
    std::string akey;
    ValueType type;
    Buffer payload;
  };
  std::vector<Entry> entries;
  for (const Vos::AkeyInfo& info : vos->DescribeDkey(addr.oid, addr.dkey)) {
    if (info.type == ValueType::kArray) {
      // The flat HEAD image: holes and punched ranges materialize as
      // zeros, so the import reproduces fetch-visible bytes exactly.
      Buffer flat(info.head_size);
      if (info.head_size > 0) {
        ROS2_RETURN_IF_ERROR(vos->FetchArray(addr.oid, addr.dkey, info.akey,
                                             kEpochHead, 0, flat));
      }
      entries.push_back({info.akey, info.type, std::move(flat)});
    } else {
      auto value = vos->FetchSingle(addr.oid, addr.dkey, info.akey,
                                    kEpochHead);
      if (!value.ok()) {
        // Punched singles have no visible value: omit the akey.
        if (value.status().code() == ErrorCode::kNotFound) continue;
        return value.status();
      }
      entries.push_back({info.akey, info.type, std::move(*value)});
    }
  }
  fetches_.Add(1, target);
  rpc::Encoder enc;
  enc.U32(std::uint32_t(entries.size()));
  for (const Entry& e : entries) {
    enc.Str(e.akey).U8(std::uint8_t(e.type)).Bytes(e.payload);
  }
  return enc.Take();
}

Result<Buffer> DaosEngine::ExecDkeyImport(const ObjAddr& addr,
                                          const Buffer& image,
                                          std::uint32_t target) {
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  Vos* vos = targets_[target].vos.get();
  // Replace semantics: clear whatever version the replacement holds (a
  // partial earlier pass, or nothing), then apply the image at fresh
  // epochs — later than any epoch the survivors stamped, keeping per-akey
  // epoch monotonicity.
  Status punched = vos->PunchDkey(addr.oid, addr.dkey, cont->next_epoch++);
  if (!punched.ok() && punched.code() != ErrorCode::kNotFound) {
    return punched;
  }
  rpc::Decoder dec(image);
  ROS2_ASSIGN_OR_RETURN(std::uint32_t count, dec.U32());
  std::uint64_t bytes = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ROS2_ASSIGN_OR_RETURN(std::string akey, dec.Str());
    ROS2_ASSIGN_OR_RETURN(std::uint8_t type, dec.U8());
    ROS2_ASSIGN_OR_RETURN(Buffer payload, dec.Bytes());
    const Epoch epoch = cont->next_epoch++;
    if (ValueType(type) == ValueType::kArray) {
      if (payload.empty()) continue;  // zero-length array: nothing to write
      ROS2_RETURN_IF_ERROR(vos->UpdateArray(addr.oid, addr.dkey, akey, epoch,
                                            /*offset=*/0, payload));
    } else {
      ROS2_RETURN_IF_ERROR(
          vos->UpdateSingle(addr.oid, addr.dkey, akey, epoch, payload));
    }
    bytes += payload.size();
  }
  updates_.Add(1, target);
  rpc::Encoder enc;
  enc.U64(bytes);
  return enc.Take();
}

Result<Buffer> DaosEngine::ExecKeyPunch(const ObjAddr& addr,
                                        PunchScope scope,
                                        std::uint32_t target) {
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  const Epoch epoch = cont->next_epoch++;
  Vos* vos = targets_[target].vos.get();
  if (scope == PunchScope::kDkey) {
    ROS2_RETURN_IF_ERROR(vos->PunchDkey(addr.oid, addr.dkey, epoch));
  } else {
    ROS2_RETURN_IF_ERROR(
        vos->PunchAkey(addr.oid, addr.dkey, addr.akey, epoch));
  }
  return Buffer{};
}

}  // namespace ros2::daos
