#include "daos/engine.h"

#include <cassert>

#include "common/logging.h"
#include "daos/placement.h"
#include "rpc/wire.h"

namespace ros2::daos {
namespace {

/// Common object-addressing prefix: cont, oid, dkey, akey.
struct ObjAddr {
  ContainerId cont = 0;
  ObjectId oid;
  std::string dkey;
  std::string akey;
};

Status DecodeObjAddr(rpc::Decoder& dec, ObjAddr* out) {
  ROS2_ASSIGN_OR_RETURN(out->cont, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->oid.lo, dec.U64());
  ROS2_ASSIGN_OR_RETURN(out->dkey, dec.Str());
  ROS2_ASSIGN_OR_RETURN(out->akey, dec.Str());
  return Status::Ok();
}

}  // namespace

DaosEngine::DaosEngine(net::Fabric* fabric, EngineConfig config,
                       std::span<storage::NvmeDevice* const> devices)
    : fabric_(fabric), config_(std::move(config)) {
  assert(!devices.empty() && "engine needs at least one NVMe device");
  auto ep = fabric_->CreateEndpoint(config_.address);
  assert(ep.ok() && "engine endpoint address collision");
  endpoint_ = ep.value();
  pd_ = endpoint_->AllocPd();

  // Partition each device among the targets assigned to it.
  const std::uint32_t n = config_.targets == 0 ? 1 : config_.targets;
  std::vector<std::uint32_t> per_device(devices.size(), 0);
  for (std::uint32_t t = 0; t < n; ++t) per_device[t % devices.size()]++;

  for (std::uint32_t t = 0; t < n; ++t) {
    const std::size_t dev_index = t % devices.size();
    storage::NvmeDevice* device = devices[dev_index];
    const std::uint32_t slot = t / std::uint32_t(devices.size());
    const std::uint64_t share =
        device->config().capacity_bytes / per_device[dev_index];
    // Align the partition base to the LBA size.
    const std::uint32_t lba = device->config().lba_size;
    const std::uint64_t base = (share * slot) / lba * lba;

    Target target;
    target.scm = std::make_unique<scm::PmemPool>(config_.scm_per_target);
    target.bdev = std::make_unique<spdk::Bdev>(device);
    VosConfig vos_config;
    vos_config.checksums = config_.checksums;
    vos_config.nvme_base = base;
    vos_config.nvme_capacity = share / lba * lba;
    target.vos = std::make_unique<Vos>(target.scm.get(), target.bdev.get(),
                                       vos_config);
    targets_.push_back(std::move(target));
  }
  RegisterHandlers();
  ROS2_INFO << "daos engine up at " << config_.address << " ("
            << targets_.size() << " targets, " << devices.size()
            << " devices)";
}

DaosEngine::~DaosEngine() = default;

Vos* DaosEngine::target_vos(std::uint32_t target) {
  return target < targets_.size() ? targets_[target].vos.get() : nullptr;
}

EngineStats DaosEngine::stats() const {
  EngineStats s = stats_;
  s.bulk_bytes_in = server_.bulk_bytes_in();
  s.bulk_bytes_out = server_.bulk_bytes_out();
  return s;
}

void DaosEngine::RegisterHandlers() {
  auto bind = [this](DaosOpcode op,
                     Result<Buffer> (DaosEngine::*fn)(const Buffer&)) {
    server_.Register(std::uint32_t(op),
                     [this, fn](const Buffer& h, rpc::BulkIo&) {
                       return (this->*fn)(h);
                     });
  };
  bind(DaosOpcode::kPoolConnect, &DaosEngine::HandlePoolConnect);
  bind(DaosOpcode::kContCreate, &DaosEngine::HandleContCreate);
  bind(DaosOpcode::kContOpen, &DaosEngine::HandleContOpen);
  bind(DaosOpcode::kOidAlloc, &DaosEngine::HandleOidAlloc);
  bind(DaosOpcode::kSingleUpdate, &DaosEngine::HandleSingleUpdate);
  bind(DaosOpcode::kSingleFetch, &DaosEngine::HandleSingleFetch);
  bind(DaosOpcode::kObjPunch, &DaosEngine::HandleObjPunch);
  bind(DaosOpcode::kListDkeys, &DaosEngine::HandleListDkeys);
  bind(DaosOpcode::kListAkeys, &DaosEngine::HandleListAkeys);
  bind(DaosOpcode::kArraySize, &DaosEngine::HandleArraySize);
  bind(DaosOpcode::kAggregate, &DaosEngine::HandleAggregate);
  server_.Register(std::uint32_t(DaosOpcode::kObjUpdate),
                   [this](const Buffer& h, rpc::BulkIo& b) {
                     return HandleObjUpdate(h, b);
                   });
  server_.Register(std::uint32_t(DaosOpcode::kObjFetch),
                   [this](const Buffer& h, rpc::BulkIo& b) {
                     return HandleObjFetch(h, b);
                   });
}

Result<DaosEngine::Container*> DaosEngine::FindContainer(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return NotFound("unknown container");
  return &it->second;
}

Result<Vos*> DaosEngine::RouteDkey(const ObjectId& oid,
                                   const std::string& dkey) {
  const std::uint32_t t =
      PlaceDkey(oid, dkey, std::uint32_t(targets_.size()));
  return targets_[t].vos.get();
}

Result<Buffer> DaosEngine::HandlePoolConnect(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  ROS2_ASSIGN_OR_RETURN(std::string token, dec.Str());
  if (label != config_.pool_label) {
    return Status(NotFound("unknown pool label: " + label));
  }
  if (!config_.access_token.empty() && token != config_.access_token) {
    return Status(PermissionDenied("pool access token rejected"));
  }
  rpc::Encoder enc;
  enc.U64(1 /*pool id*/).U32(std::uint32_t(targets_.size()));
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleContCreate(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  if (containers_by_label_.contains(label)) {
    return Status(AlreadyExists("container label in use: " + label));
  }
  Container cont;
  cont.id = next_container_id_++;
  cont.label = label;
  containers_by_label_[label] = cont.id;
  containers_[cont.id] = cont;
  rpc::Encoder enc;
  enc.U64(cont.id);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleContOpen(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(std::string label, dec.Str());
  auto it = containers_by_label_.find(label);
  if (it == containers_by_label_.end()) {
    return Status(NotFound("no container labeled " + label));
  }
  rpc::Encoder enc;
  enc.U64(it->second);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleOidAlloc(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(ContainerId cont_id, dec.U64());
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(cont_id));
  rpc::Encoder enc;
  // hi = container id (namespacing), lo = per-container sequence.
  enc.U64(cont_id).U64(cont->next_oid++);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleObjUpdate(const Buffer& header,
                                           rpc::BulkIo& bulk) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(std::uint64_t offset, dec.U64());
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  if (bulk.in_size() == 0) {
    return Status(InvalidArgument("update requires a bulk payload"));
  }
  Buffer data(bulk.in_size());
  ROS2_RETURN_IF_ERROR(bulk.Pull(data));
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  const Epoch epoch = cont->next_epoch++;
  ROS2_RETURN_IF_ERROR(
      vos->UpdateArray(addr.oid, addr.dkey, addr.akey, epoch, offset, data));
  ++stats_.updates;
  rpc::Encoder enc;
  enc.U64(epoch);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleObjFetch(const Buffer& header,
                                          rpc::BulkIo& bulk) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(std::uint64_t offset, dec.U64());
  ROS2_ASSIGN_OR_RETURN(std::uint64_t length, dec.U64());
  ROS2_ASSIGN_OR_RETURN(Epoch epoch, dec.U64());
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  if (length != bulk.out_capacity()) {
    return Status(InvalidArgument("fetch length != client bulk window"));
  }
  Buffer data(length);
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  ROS2_RETURN_IF_ERROR(
      vos->FetchArray(addr.oid, addr.dkey, addr.akey, epoch, offset, data));
  ROS2_RETURN_IF_ERROR(bulk.Push(data));
  ++stats_.fetches;
  return Buffer{};
}

Result<Buffer> DaosEngine::HandleSingleUpdate(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(Buffer value, dec.Bytes());
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  const Epoch epoch = cont->next_epoch++;
  ROS2_RETURN_IF_ERROR(
      vos->UpdateSingle(addr.oid, addr.dkey, addr.akey, epoch, value));
  ++stats_.updates;
  rpc::Encoder enc;
  enc.U64(epoch);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleSingleFetch(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(Epoch epoch, dec.U64());
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  ROS2_ASSIGN_OR_RETURN(Buffer value,
                        vos->FetchSingle(addr.oid, addr.dkey, addr.akey,
                                         epoch));
  ++stats_.fetches;
  rpc::Encoder enc;
  enc.Bytes(value);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleObjPunch(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(std::uint8_t scope_raw, dec.U8());
  ROS2_ASSIGN_OR_RETURN(Container * cont, FindContainer(addr.cont));
  const Epoch epoch = cont->next_epoch++;
  const auto scope = PunchScope(scope_raw);
  if (scope == PunchScope::kObject) {
    // The object's dkeys may span every target; punch on each.
    bool found = false;
    for (auto& target : targets_) {
      if (target.vos->ObjectExists(addr.oid)) {
        ROS2_RETURN_IF_ERROR(target.vos->PunchObject(addr.oid, epoch));
        found = true;
      }
    }
    if (!found) return Status(NotFound("no such object"));
    return Buffer{};
  }
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  if (scope == PunchScope::kDkey) {
    ROS2_RETURN_IF_ERROR(vos->PunchDkey(addr.oid, addr.dkey, epoch));
  } else {
    ROS2_RETURN_IF_ERROR(
        vos->PunchAkey(addr.oid, addr.dkey, addr.akey, epoch));
  }
  return Buffer{};
}

Result<Buffer> DaosEngine::HandleListDkeys(const Buffer& header) {
  rpc::Decoder dec(header);
  ROS2_ASSIGN_OR_RETURN(ContainerId cont_id, dec.U64());
  ObjectId oid;
  ROS2_ASSIGN_OR_RETURN(oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(oid.lo, dec.U64());
  ROS2_RETURN_IF_ERROR(FindContainer(cont_id).status());
  rpc::Encoder enc;
  std::vector<std::string> all;
  for (auto& target : targets_) {
    for (auto& dkey : target.vos->ListDkeys(oid)) {
      all.push_back(std::move(dkey));
    }
  }
  enc.U32(std::uint32_t(all.size()));
  for (const auto& dkey : all) enc.Str(dkey);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleListAkeys(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  rpc::Encoder enc;
  const auto akeys = vos->ListAkeys(addr.oid, addr.dkey);
  enc.U32(std::uint32_t(akeys.size()));
  for (const auto& akey : akeys) enc.Str(akey);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleArraySize(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(Epoch epoch, dec.U64());
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  ROS2_ASSIGN_OR_RETURN(
      std::uint64_t size,
      vos->ArraySize(addr.oid, addr.dkey, addr.akey, epoch));
  rpc::Encoder enc;
  enc.U64(size);
  return enc.Take();
}

Result<Buffer> DaosEngine::HandleAggregate(const Buffer& header) {
  rpc::Decoder dec(header);
  ObjAddr addr;
  ROS2_RETURN_IF_ERROR(DecodeObjAddr(dec, &addr));
  ROS2_ASSIGN_OR_RETURN(Epoch upto, dec.U64());
  ROS2_RETURN_IF_ERROR(FindContainer(addr.cont).status());
  ROS2_ASSIGN_OR_RETURN(Vos * vos, RouteDkey(addr.oid, addr.dkey));
  ROS2_RETURN_IF_ERROR(
      vos->AggregateArray(addr.oid, addr.dkey, addr.akey, upto));
  return Buffer{};
}

}  // namespace ros2::daos
