#include "daos/rebuild.h"

#include <set>

#include "daos/placement.h"
#include "rpc/wire.h"

namespace ros2::daos {
namespace {

void EncodeDkeyAddr(rpc::Encoder& enc, const ResyncEntry& entry) {
  // The ObjAddr wire prefix with an empty akey (export/import address
  // whole dkeys).
  enc.U64(entry.cont).U64(entry.oid.hi).U64(entry.oid.lo).Str(entry.dkey);
  enc.Str("");
}

}  // namespace

Result<std::unique_ptr<RebuildManager>> RebuildManager::Create(
    net::Fabric* fabric, std::span<DaosEngine* const> engines,
    PoolMap* pool_map, const Options& options) {
  if (engines.empty()) return Status(InvalidArgument("no engines"));
  if (pool_map == nullptr) {
    return Status(InvalidArgument("rebuild needs the shared pool map"));
  }
  if (pool_map->engine_count() != engines.size()) {
    return Status(InvalidArgument(
        "pool map engine count does not match the engine list"));
  }
  if (options.replicas == 0 || options.replicas > engines.size()) {
    return Status(InvalidArgument("replicas must be in [1, engines]"));
  }
  ROS2_ASSIGN_OR_RETURN(net::Endpoint * ep,
                        fabric->CreateEndpoint(options.address));
  const net::PdId pd = ep->AllocPd(options.tenant);

  auto mgr = std::unique_ptr<RebuildManager>(new RebuildManager());
  mgr->map_ = pool_map;
  mgr->replicas_ = options.replicas;
  mgr->max_journal_passes_ = options.max_journal_passes;
  for (DaosEngine* engine : engines) {
    if (engine == nullptr || engine->endpoint() == nullptr) {
      return Status(InvalidArgument("engine has no endpoint"));
    }
    ROS2_ASSIGN_OR_RETURN(
        net::Qp * qp, ep->Connect(engine->endpoint(), options.transport, pd,
                                  engine->pd()));
    mgr->rpcs_.push_back(std::make_unique<rpc::RpcClient>(
        qp, ep,
        options.progress_pump
            ? std::function<void()>([engine] { (void)engine->ProgressAll(); })
            : std::function<void()>()));
    if (!options.progress_pump) {
      mgr->rpcs_.back()->set_stall_timeout_ms(10000.0);
    }
    mgr->stats_.push_back(std::make_unique<PerEngine>());
  }
  // Auth handshake against every engine's pool service, like any client.
  for (std::uint32_t e = 0; e < mgr->rpcs_.size(); ++e) {
    rpc::Encoder enc;
    enc.Str(options.pool_label).Str(options.access_token);
    ROS2_RETURN_IF_ERROR(
        mgr->rpcs_[e]
            ->Call(std::uint32_t(DaosOpcode::kPoolConnect), enc)
            .status());
  }
  return mgr;
}

Result<std::vector<ResyncEntry>> RebuildManager::ScanSurvivors(
    std::uint32_t engine) {
  const std::uint32_t n = std::uint32_t(rpcs_.size());
  std::set<ResyncEntry> owed;
  bool any_survivor = false;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s == engine || !map_->readable(s)) continue;
    any_survivor = true;
    rpc::Encoder enc;  // kObjScan takes no header fields
    ROS2_ASSIGN_OR_RETURN(
        rpc::RpcReply reply,
        rpcs_[s]->Call(std::uint32_t(DaosOpcode::kObjScan), enc));
    rpc::Decoder dec(reply.header);
    ROS2_ASSIGN_OR_RETURN(std::uint32_t count, dec.U32());
    ROS2_ASSIGN_OR_RETURN(Buffer entries, dec.Bytes());
    rpc::Decoder edec(entries);
    for (std::uint32_t i = 0; i < count; ++i) {
      ResyncEntry entry;
      ROS2_ASSIGN_OR_RETURN(entry.oid.hi, edec.U64());
      ROS2_ASSIGN_OR_RETURN(entry.oid.lo, edec.U64());
      ROS2_ASSIGN_OR_RETURN(entry.dkey, edec.Str());
      entry.cont = entry.oid.hi;  // the kOidAlloc convention
      const std::uint32_t primary =
          PlaceEngine(entry.oid, entry.dkey, n);
      // Does the rebuilt engine owe a copy? Replica r lives at
      // (primary + r) % n.
      for (std::uint32_t r = 0; r < replicas_; ++r) {
        if ((primary + r) % n == engine) {
          owed.insert(std::move(entry));
          break;
        }
      }
    }
  }
  if (!any_survivor && n > 1) {
    return Status(Unavailable("no UP survivor to rebuild from"));
  }
  return std::vector<ResyncEntry>(owed.begin(), owed.end());
}

Status RebuildManager::Resilver(std::uint32_t engine,
                                const ResyncEntry& entry) {
  const std::uint32_t n = std::uint32_t(rpcs_.size());
  const std::uint32_t primary = PlaceEngine(entry.oid, entry.dkey, n);
  std::uint32_t source = n;
  for (std::uint32_t r = 0; r < replicas_; ++r) {
    const std::uint32_t s = (primary + r) % n;
    if (s != engine && map_->readable(s)) {
      source = s;
      break;
    }
  }
  if (source == n) {
    return Unavailable("no UP replica of dkey '" + entry.dkey +
                       "' to rebuild from (pool map v" +
                       std::to_string(map_->version()) + ")");
  }
  rpc::Encoder exp;
  EncodeDkeyAddr(exp, entry);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply image,
      rpcs_[source]->Call(std::uint32_t(DaosOpcode::kDkeyExport), exp));
  rpc::Encoder imp;
  EncodeDkeyAddr(imp, entry);
  imp.Bytes(image.header);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply applied,
      rpcs_[engine]->Call(std::uint32_t(DaosOpcode::kDkeyImport), imp));
  rpc::Decoder dec(applied.header);
  ROS2_ASSIGN_OR_RETURN(std::uint64_t bytes, dec.U64());
  stats_[engine]->bytes_copied.Add(bytes);
  return Status::Ok();
}

Status RebuildManager::DrainPass(std::uint32_t engine, bool* was_empty) {
  std::vector<ResyncEntry> drained = map_->journal().Drain(engine);
  *was_empty = drained.empty();
  for (const ResyncEntry& entry : drained) {
    ROS2_RETURN_IF_ERROR(Resilver(engine, entry));
    stats_[engine]->journal_replayed.Add(1);
    stats_[engine]->done.fetch_add(1, std::memory_order_relaxed);
  }
  if (!drained.empty()) stats_[engine]->passes.Add(1);
  return Status::Ok();
}

Status RebuildManager::Rebuild(std::uint32_t engine) {
  if (engine >= rpcs_.size()) return InvalidArgument("no such engine");
  if (map_->state(engine) == EngineState::kUp) {
    return FailedPrecondition("engine " + std::to_string(engine) +
                              " is UP; nothing to rebuild");
  }
  PerEngine& st = *stats_[engine];
  st.complete.store(false, std::memory_order_release);
  st.planned.store(0, std::memory_order_relaxed);
  st.done.store(0, std::memory_order_relaxed);
  // REBUILDING: writes start landing on the replacement again (and racing
  // writes journal post-completion); reads keep failing over.
  ROS2_RETURN_IF_ERROR(map_->SetState(engine, EngineState::kRebuilding));

  // Bulk scan, then the first journal drain folded in (everything the
  // engine missed while DOWN): one deduplicated worklist.
  ROS2_ASSIGN_OR_RETURN(std::vector<ResyncEntry> owed,
                        ScanSurvivors(engine));
  std::uint64_t journal_merged = 0;
  {
    std::set<ResyncEntry> merged(owed.begin(), owed.end());
    for (ResyncEntry& entry : map_->journal().Drain(engine)) {
      ++journal_merged;
      merged.insert(std::move(entry));
    }
    owed.assign(merged.begin(), merged.end());
  }
  st.planned.store(owed.size(), std::memory_order_relaxed);
  for (const ResyncEntry& entry : owed) {
    ROS2_RETURN_IF_ERROR(Resilver(engine, entry));
    st.dkeys_scanned.Add(1);
    st.done.fetch_add(1, std::memory_order_relaxed);
  }
  // The folded-in journal entries were replayed as part of the worklist.
  if (journal_merged > 0) st.journal_replayed.Add(journal_merged);
  st.passes.Add(1);

  // Converge on the journal: foreground writes that degraded (or raced an
  // import on the REBUILDING engine) keep feeding it; each pass re-silvers
  // survivor HEAD, which includes those writes.
  bool empty = false;
  for (std::uint32_t pass = 0; pass < max_journal_passes_ && !empty;
       ++pass) {
    ROS2_RETURN_IF_ERROR(DrainPass(engine, &empty));
  }
  if (!empty) {
    return Unavailable(
        "resync journal did not quiesce within " +
        std::to_string(max_journal_passes_) +
        " passes; engine left REBUILDING (writes land, reads fail over)");
  }
  ROS2_RETURN_IF_ERROR(map_->SetState(engine, EngineState::kUp));
  // Entries recorded between the last empty pass and the UP transition:
  // sweep once more (an in-flight write can still journal after this —
  // Resync() catches those once traffic quiesces).
  ROS2_RETURN_IF_ERROR(DrainPass(engine, &empty));
  st.complete.store(true, std::memory_order_release);
  return Status::Ok();
}

Status RebuildManager::Resync(std::uint32_t engine) {
  if (engine >= rpcs_.size()) return InvalidArgument("no such engine");
  bool empty = false;
  for (std::uint32_t pass = 0; pass < max_journal_passes_ && !empty;
       ++pass) {
    ROS2_RETURN_IF_ERROR(DrainPass(engine, &empty));
  }
  if (!empty) {
    return Unavailable("resync journal did not quiesce within " +
                       std::to_string(max_journal_passes_) + " passes");
  }
  return Status::Ok();
}

std::uint64_t RebuildManager::dkeys_scanned(std::uint32_t engine) const {
  return engine < stats_.size() ? stats_[engine]->dkeys_scanned.value() : 0;
}
std::uint64_t RebuildManager::bytes_copied(std::uint32_t engine) const {
  return engine < stats_.size() ? stats_[engine]->bytes_copied.value() : 0;
}
std::uint64_t RebuildManager::journal_replayed(std::uint32_t engine) const {
  return engine < stats_.size() ? stats_[engine]->journal_replayed.value()
                                : 0;
}
std::uint64_t RebuildManager::passes(std::uint32_t engine) const {
  return engine < stats_.size() ? stats_[engine]->passes.value() : 0;
}

std::int64_t RebuildManager::progress(std::uint32_t engine) const {
  if (engine >= stats_.size()) return 0;
  const PerEngine& st = *stats_[engine];
  if (st.complete.load(std::memory_order_acquire)) return 100;
  const std::uint64_t planned = st.planned.load(std::memory_order_relaxed);
  if (planned == 0) return 0;
  const std::uint64_t done = st.done.load(std::memory_order_relaxed);
  return std::int64_t(done >= planned ? 99 : done * 100 / planned);
}

void RebuildManager::AttachTelemetry(telemetry::Telemetry* tree) {
  if (tree == nullptr) return;
  for (std::uint32_t e = 0; e < stats_.size(); ++e) {
    const std::string base = "rebuild/" + std::to_string(e) + "/";
    tree->LinkCounter(base + "dkeys_scanned", &stats_[e]->dkeys_scanned);
    tree->LinkCounter(base + "bytes_copied", &stats_[e]->bytes_copied);
    tree->LinkCounter(base + "journal_replayed",
                      &stats_[e]->journal_replayed);
    tree->LinkCounter(base + "passes", &stats_[e]->passes);
    tree->RegisterCallback(base + "progress",
                           [this, e] { return progress(e); });
  }
}

}  // namespace ros2::daos
