#include "daos/client.h"

#include <set>

#include "daos/placement.h"
#include "rpc/wire.h"

namespace ros2::daos {
namespace {

void EncodeObjAddr(rpc::Encoder& enc, ContainerId cont, const ObjectId& oid,
                   const std::string& dkey, const std::string& akey) {
  enc.U64(cont).U64(oid.hi).U64(oid.lo).Str(dkey).Str(akey);
}

Result<std::vector<std::string>> DecodeStringList(const Buffer& raw) {
  rpc::Decoder dec(raw);
  ROS2_ASSIGN_OR_RETURN(std::uint32_t count, dec.U32());
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ROS2_ASSIGN_OR_RETURN(std::string s, dec.Str());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- connect

Result<std::unique_ptr<DaosClient>> DaosClient::Connect(
    net::Fabric* fabric, DaosEngine* engine, const ConnectOptions& options) {
  DaosEngine* engines[] = {engine};
  return Connect(fabric, engines, options);
}

Result<std::unique_ptr<DaosClient>> DaosClient::Connect(
    net::Fabric* fabric, std::span<DaosEngine* const> engines,
    const ConnectOptions& options) {
  if (engines.empty()) return Status(InvalidArgument("no engines"));
  if (options.replicas == 0 || options.replicas > engines.size()) {
    return Status(InvalidArgument("replicas must be in [1, engines]"));
  }
  ROS2_ASSIGN_OR_RETURN(net::Endpoint * client_ep,
                        fabric->CreateEndpoint(options.client_address));
  const net::PdId pd = client_ep->AllocPd(options.tenant);

  auto client = std::unique_ptr<DaosClient>(new DaosClient());
  client->transport_ = options.transport;
  client->replicas_ = options.replicas;
  if (options.pool_map != nullptr) {
    if (options.pool_map->engine_count() != engines.size()) {
      return Status(InvalidArgument(
          "pool map engine count does not match the engine list"));
    }
    client->map_ = options.pool_map;
  } else {
    client->owned_map_ =
        std::make_unique<PoolMap>(std::uint32_t(engines.size()));
    client->map_ = client->owned_map_.get();
  }

  for (DaosEngine* engine : engines) {
    if (engine == nullptr || engine->endpoint() == nullptr) {
      return Status(InvalidArgument("engine has no endpoint"));
    }
    ROS2_ASSIGN_OR_RETURN(
        net::Qp * qp, client_ep->Connect(engine->endpoint(),
                                         options.transport, pd,
                                         engine->pd()));
    EngineConn conn;
    // The pump is the engine's full progress tick (poll-set drain +
    // xstream run queues), not a per-QP poke: one pump services every
    // client of the engine and completes deferred requests — the fairness
    // property multi-QP tests pin. Pumpless clients (progress_pump ==
    // false) rely on the engines' own progress threads instead — the
    // poll-set drain is single-consumer, so concurrent clients must not
    // pump it themselves.
    conn.rpc = std::make_unique<rpc::RpcClient>(
        qp, client_ep,
        options.progress_pump
            ? std::function<void()>([engine] { (void)engine->ProgressAll(); })
            : std::function<void()>());
    if (!options.progress_pump) conn.rpc->set_stall_timeout_ms(10000.0);
    client->engines_.push_back(std::move(conn));
  }

  // Authenticate against every engine's pool service before handing the
  // client out; target counts must agree (one homogeneous pool).
  for (std::uint32_t e = 0; e < client->engines_.size(); ++e) {
    rpc::Encoder enc;
    enc.Str(options.pool_label).Str(options.access_token);
    ROS2_ASSIGN_OR_RETURN(
        rpc::RpcReply reply,
        client->Call(e, std::uint32_t(DaosOpcode::kPoolConnect),
                     enc));
    rpc::Decoder dec(reply.header);
    ROS2_RETURN_IF_ERROR(dec.U64().status());  // pool id
    ROS2_ASSIGN_OR_RETURN(std::uint32_t targets, dec.U32());
    if (e == 0) {
      client->pool_targets_ = targets;
    } else if (targets != client->pool_targets_) {
      return Status(FailedPrecondition(
          "engines disagree on target count; not one pool"));
    }
  }
  return client;
}

Status DaosClient::SetEngineDown(std::uint32_t engine_index, bool down) {
  if (engine_index >= engines_.size()) {
    return InvalidArgument("no such engine");
  }
  return map_->SetState(engine_index,
                        down ? EngineState::kDown : EngineState::kUp);
}

// -------------------------------------------------------------- routing

std::uint32_t DaosClient::PrimaryEngine(const ObjectId& oid,
                                        const std::string& dkey) const {
  // Level 1 of placement: dkeys spread over engines (level 2, inside the
  // engine, spreads over its targets).
  return PlaceEngine(oid, dkey, std::uint32_t(engines_.size()));
}

Result<std::uint32_t> DaosClient::ReadableEngine(
    const ObjectId& oid, const std::string& dkey) const {
  const std::uint32_t primary = PrimaryEngine(oid, dkey);
  for (std::uint32_t r = 0; r < replicas_; ++r) {
    const std::uint32_t e = ReplicaEngine(primary, r);
    if (map_->readable(e)) return e;
  }
  return Status(
      Unavailable("no UP replica of this dkey (pool map v" +
                  std::to_string(map_->version()) + ")"));
}

Status DaosClient::RequireUp(std::uint32_t engine) const {
  if (map_->readable(engine)) return Status::Ok();
  return Unavailable("engine " + std::to_string(engine) + " is " +
                     EngineStateName(map_->state(engine)) +
                     " (pool map v" + std::to_string(map_->version()) + ")");
}

void DaosClient::JournalMiss(std::uint32_t engine, ContainerId cont,
                             const ObjectId& oid, const std::string& dkey) {
  map_->journal().Record(engine, ResyncEntry{cont, oid, dkey});
}

Result<rpc::RpcReply> DaosClient::Call(std::uint32_t engine,
                                       std::uint32_t opcode,
                                       const rpc::Encoder& header,
                                       const rpc::CallOptions& options) {
  if (map_->state(engine) == EngineState::kDown) {
    return Status(Unavailable("engine " + std::to_string(engine) +
                              " is down"));
  }
  return engines_[engine].rpc->Call(opcode, header, options);
}

Result<telemetry::TelemetrySnapshot> DaosClient::TelemetryQuery(
    std::uint32_t engine_index, const std::string& prefix, bool traces) {
  if (engine_index >= engines_.size()) {
    return Status(InvalidArgument("no such engine"));
  }
  rpc::Encoder enc;
  enc.U8(traces ? kTelemetryQueryTraces : 0).Str(prefix);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(engine_index, std::uint32_t(DaosOpcode::kTelemetryQuery), enc));
  rpc::Decoder dec(reply.header);
  return telemetry::TelemetrySnapshot::DecodeFrom(dec);
}

Result<rpc::RpcClient::CallId> DaosClient::CallAsyncEngine(
    std::uint32_t engine, std::uint32_t opcode, const rpc::Encoder& header,
    const rpc::CallOptions& options) {
  if (map_->state(engine) == EngineState::kDown) {
    return Status(Unavailable("engine " + std::to_string(engine) +
                              " is down"));
  }
  return engines_[engine].rpc->CallAsync(opcode, header, options);
}

Result<rpc::RpcReply> DaosClient::CallReplicas(
    ContainerId cont, const ObjectId& oid, const std::string& dkey,
    std::uint32_t opcode, const rpc::Encoder& header,
    const rpc::CallOptions& options) {
  const std::uint32_t primary = PrimaryEngine(oid, dkey);
  // Degraded write-all: issue every copy concurrently to the writable
  // replicas, then await. There is deliberately NO up-front all-replicas
  // check (the old CheckReplicasUp raced concurrent down-transitions) —
  // the per-send outcome is authoritative: a DOWN replica, a send that
  // fails UNAVAILABLE, or an UNAVAILABLE reply all degrade into resync-
  // journal entries instead of failing the op.
  struct Issued {
    std::uint32_t engine;
    rpc::RpcClient::CallId id;
    bool rebuilding;  // post-completion journal mark (see pool_map.h)
  };
  std::vector<Issued> issued;
  issued.reserve(replicas_);
  for (std::uint32_t r = 0; r < replicas_; ++r) {
    const std::uint32_t e = ReplicaEngine(primary, r);
    const EngineState st = map_->state(e);
    if (st == EngineState::kDown) {
      JournalMiss(e, cont, oid, dkey);
      continue;
    }
    auto id = engines_[e].rpc->CallAsync(opcode, header, options);
    if (id.ok()) {
      issued.push_back({e, *id, st == EngineState::kRebuilding});
      continue;
    }
    if (id.status().code() == ErrorCode::kUnavailable) {
      JournalMiss(e, cont, oid, dkey);  // raced the down-transition
      continue;
    }
    // A hard issue error (window stall, encode overflow) is not a health
    // event: drain what already went out, then surface it.
    Status hard = id.status();
    for (const Issued& is : issued) {
      (void)engines_[is.engine].rpc->Await(is.id);
    }
    return hard;
  }
  std::uint32_t landed = 0;
  Status hard = Status::Ok();
  Result<rpc::RpcReply> first = Status(Internal("no replica copy landed"));
  for (const Issued& is : issued) {
    // Await every issued copy even past a failure: later replicas must
    // not be left dangling in the pipeline.
    auto reply = engines_[is.engine].rpc->Await(is.id);
    if (reply.ok()) {
      ++landed;
      if (landed == 1) first = std::move(reply);
      // A copy that landed on a REBUILDING engine may still be overwritten
      // by an in-flight rebuild pass importing older survivor state at a
      // higher epoch: journal it so the rebuild's journal-drain loop
      // re-silvers survivor HEAD (which includes this completed write).
      if (is.rebuilding) JournalMiss(is.engine, cont, oid, dkey);
    } else if (reply.status().code() == ErrorCode::kUnavailable) {
      JournalMiss(is.engine, cont, oid, dkey);
    } else if (hard.ok()) {
      hard = reply.status();
    }
  }
  const std::string copies =
      std::to_string(landed) + "/" + std::to_string(replicas_);
  if (!hard.ok()) {
    return Status(hard.code(), hard.message() + " (replica copy failed; " +
                                   copies + " replica copies landed)");
  }
  if (landed == 0) {
    return Status(Unavailable("no writable replica: " + copies +
                              " replica copies landed (pool map v" +
                              std::to_string(map_->version()) + ")"));
  }
  return first;
}

Result<rpc::RpcReply> DaosClient::CallAll(std::uint32_t opcode,
                                          const rpc::Encoder& header) {
  Result<rpc::RpcReply> first = Status(Internal("no engines"));
  for (std::uint32_t e = 0; e < engines_.size(); ++e) {
    auto reply = Call(e, opcode, header);
    if (!reply.ok()) return reply;
    if (e == 0) {
      first = std::move(reply);
    } else if (reply->header != first->header) {
      return Status(Internal("engines returned divergent metadata"));
    }
  }
  return first;
}

// ------------------------------------------------------------ containers

Result<ContainerId> DaosClient::ContainerCreate(const std::string& label) {
  rpc::Encoder enc;
  enc.Str(label);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      CallAll(std::uint32_t(DaosOpcode::kContCreate), enc));
  rpc::Decoder dec(reply.header);
  return dec.U64();
}

Result<ContainerId> DaosClient::ContainerOpen(const std::string& label) {
  rpc::Encoder enc;
  enc.Str(label);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      CallAll(std::uint32_t(DaosOpcode::kContOpen), enc));
  rpc::Decoder dec(reply.header);
  return dec.U64();
}

Result<ObjectId> DaosClient::AllocOid(ContainerId cont) {
  // Oids are allocated by engine 0 (the "pool service" in this model);
  // the id only namespaces keys, so other engines never need the counter.
  rpc::Encoder enc;
  enc.U64(cont);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(0, std::uint32_t(DaosOpcode::kOidAlloc), enc));
  rpc::Decoder dec(reply.header);
  ObjectId oid;
  ROS2_ASSIGN_OR_RETURN(oid.hi, dec.U64());
  ROS2_ASSIGN_OR_RETURN(oid.lo, dec.U64());
  return oid;
}

// --------------------------------------------------------------- arrays

Result<Epoch> DaosClient::Update(ContainerId cont, const ObjectId& oid,
                                 const std::string& dkey,
                                 const std::string& akey,
                                 std::uint64_t offset,
                                 std::span<const std::byte> data) {
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U64(offset);
  rpc::CallOptions options;
  options.send_bulk = data;
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      CallReplicas(cont, oid, dkey, std::uint32_t(DaosOpcode::kObjUpdate),
                   enc, options));
  rpc::Decoder dec(reply.header);
  return dec.U64();
}

Status DaosClient::Fetch(ContainerId cont, const ObjectId& oid,
                         const std::string& dkey, const std::string& akey,
                         std::uint64_t offset, std::span<std::byte> out,
                         Epoch epoch) {
  // Snapshot reads pin to the primary (epochs are per-engine); HEAD reads
  // fail over across replicas.
  std::uint32_t engine = 0;
  if (epoch != kEpochHead) {
    engine = PrimaryEngine(oid, dkey);
    ROS2_RETURN_IF_ERROR(RequireUp(engine));
  } else {
    ROS2_ASSIGN_OR_RETURN(engine, ReadableEngine(oid, dkey));
  }
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U64(offset).U64(out.size()).U64(epoch);
  rpc::CallOptions options;
  options.recv_bulk = out;
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(engine, std::uint32_t(DaosOpcode::kObjFetch), enc,
           options));
  if (reply.bulk_received != out.size()) {
    return DataLoss("short DAOS fetch");
  }
  return Status::Ok();
}

// -------------------------------------------------------------- batches

Result<std::vector<Epoch>> DaosClient::UpdateBatch(
    std::span<const UpdateOp> ops) {
  // Issue phase: every op, every writable replica — nothing awaited yet.
  // The RPC layer's in-flight window applies backpressure by pumping
  // progress, so arbitrarily large batches stream through bounded client
  // state. Same degraded semantics as CallReplicas, per op: DOWN (or
  // racing-down) replicas journal instead of failing the batch.
  struct Issued {
    std::uint32_t engine = 0;
    rpc::RpcClient::CallId id = 0;
    bool rebuilding = false;
  };
  std::vector<std::vector<Issued>> copies(ops.size());
  Status failure = Status::Ok();
  for (std::size_t i = 0; i < ops.size() && failure.ok(); ++i) {
    const UpdateOp& op = ops[i];
    rpc::Encoder enc;
    EncodeObjAddr(enc, op.cont, op.oid, op.dkey, op.akey);
    enc.U64(op.offset);
    rpc::CallOptions options;
    options.send_bulk = op.data;
    const std::uint32_t primary = PrimaryEngine(op.oid, op.dkey);
    copies[i].reserve(replicas_);
    for (std::uint32_t r = 0; r < replicas_; ++r) {
      const std::uint32_t e = ReplicaEngine(primary, r);
      const EngineState st = map_->state(e);
      if (st == EngineState::kDown) {
        JournalMiss(e, op.cont, op.oid, op.dkey);
        continue;
      }
      auto id = engines_[e].rpc->CallAsync(
          std::uint32_t(DaosOpcode::kObjUpdate), enc, options);
      if (id.ok()) {
        copies[i].push_back({e, *id, st == EngineState::kRebuilding});
      } else if (id.status().code() == ErrorCode::kUnavailable) {
        JournalMiss(e, op.cont, op.oid, op.dkey);
      } else {
        failure = id.status();  // hard issue error: stop issuing, drain
        break;
      }
    }
  }
  // Await phase: drain everything that was issued, even past a failure —
  // a batch error must not strand calls in the pipeline.
  std::vector<Epoch> epochs(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    std::uint32_t landed = 0;
    for (const Issued& copy : copies[i]) {
      auto reply = engines_[copy.engine].rpc->Await(copy.id);
      if (reply.ok()) {
        ++landed;
        if (copy.rebuilding) {
          JournalMiss(copy.engine, ops[i].cont, ops[i].oid, ops[i].dkey);
        }
        if (landed > 1) continue;
        rpc::Decoder dec(reply->header);
        auto epoch = dec.U64();
        if (epoch.ok()) {
          epochs[i] = *epoch;
        } else if (failure.ok()) {
          failure = epoch.status();
        }
      } else if (reply.status().code() == ErrorCode::kUnavailable) {
        JournalMiss(copy.engine, ops[i].cont, ops[i].oid, ops[i].dkey);
      } else if (failure.ok()) {
        failure = reply.status();
      }
    }
    if (landed == 0 && failure.ok()) {
      failure = Unavailable(
          "no writable replica for batch op " + std::to_string(i) + ": 0/" +
          std::to_string(replicas_) + " replica copies landed (pool map v" +
          std::to_string(map_->version()) + ")");
    }
  }
  if (!failure.ok()) return failure;
  return epochs;
}

Status DaosClient::FetchBatch(std::span<const FetchOp> ops) {
  struct Issued {
    std::uint32_t engine = 0;
    rpc::RpcClient::CallId id = 0;
    bool issued = false;
  };
  std::vector<Issued> issued(ops.size());
  Status failure = Status::Ok();
  for (std::size_t i = 0; i < ops.size() && failure.ok(); ++i) {
    const FetchOp& op = ops[i];
    // Same engine selection as Fetch: snapshot reads pin to the primary
    // (epochs are per-engine), HEAD reads fail over across replicas.
    std::uint32_t engine = 0;
    if (op.epoch != kEpochHead) {
      engine = PrimaryEngine(op.oid, op.dkey);
      Status up = RequireUp(engine);
      if (!up.ok()) {
        failure = std::move(up);
        break;
      }
    } else {
      auto readable = ReadableEngine(op.oid, op.dkey);
      if (!readable.ok()) {
        failure = readable.status();
        break;
      }
      engine = *readable;
    }
    rpc::Encoder enc;
    EncodeObjAddr(enc, op.cont, op.oid, op.dkey, op.akey);
    enc.U64(op.offset).U64(op.out.size()).U64(op.epoch);
    rpc::CallOptions options;
    options.recv_bulk = op.out;
    auto id = CallAsyncEngine(engine, std::uint32_t(DaosOpcode::kObjFetch),
                              enc, options);
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    issued[i] = {engine, *id, true};
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!issued[i].issued) continue;
    auto reply = engines_[issued[i].engine].rpc->Await(issued[i].id);
    if (!reply.ok()) {
      if (failure.ok()) failure = reply.status();
      continue;
    }
    if (reply->bulk_received != ops[i].out.size() && failure.ok()) {
      failure = DataLoss("short DAOS fetch");
    }
  }
  return failure;
}

Result<std::vector<Result<Buffer>>> DaosClient::FetchSingleBatch(
    std::span<const SingleFetchOp> ops) {
  struct Issued {
    std::uint32_t engine = 0;
    rpc::RpcClient::CallId id = 0;
    bool issued = false;
  };
  std::vector<Issued> issued(ops.size());
  Status failure = Status::Ok();
  for (std::size_t i = 0; i < ops.size() && failure.ok(); ++i) {
    const SingleFetchOp& op = ops[i];
    std::uint32_t engine = 0;
    if (op.epoch != kEpochHead) {
      engine = PrimaryEngine(op.oid, op.dkey);
      Status up = RequireUp(engine);
      if (!up.ok()) {
        failure = std::move(up);
        break;
      }
    } else {
      auto readable = ReadableEngine(op.oid, op.dkey);
      if (!readable.ok()) {
        failure = readable.status();
        break;
      }
      engine = *readable;
    }
    rpc::Encoder enc;
    EncodeObjAddr(enc, op.cont, op.oid, op.dkey, op.akey);
    enc.U64(op.epoch);
    auto id = CallAsyncEngine(engine, std::uint32_t(DaosOpcode::kSingleFetch),
                              enc);
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    issued[i] = {engine, *id, true};
  }
  // Per-op outcomes: a missing record is data, not a batch failure —
  // readdir skips punched entries by looking at each op's status. The
  // whole batch still drains past an issue error so no call is stranded.
  std::vector<Result<Buffer>> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!issued[i].issued) {
      out.push_back(Status(Unavailable("single fetch was never issued")));
      continue;
    }
    auto reply = engines_[issued[i].engine].rpc->Await(issued[i].id);
    if (!reply.ok()) {
      out.push_back(reply.status());
      continue;
    }
    rpc::Decoder dec(reply->header);
    out.push_back(dec.Bytes());
  }
  if (!failure.ok()) return failure;
  return out;
}

// -------------------------------------------------------------- singles

Result<Epoch> DaosClient::UpdateSingle(ContainerId cont, const ObjectId& oid,
                                       const std::string& dkey,
                                       const std::string& akey,
                                       std::span<const std::byte> value) {
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.Bytes(value);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      CallReplicas(cont, oid, dkey, std::uint32_t(DaosOpcode::kSingleUpdate),
                   enc));
  rpc::Decoder dec(reply.header);
  return dec.U64();
}

Result<Buffer> DaosClient::FetchSingle(ContainerId cont, const ObjectId& oid,
                                       const std::string& dkey,
                                       const std::string& akey, Epoch epoch) {
  std::uint32_t engine = 0;
  if (epoch != kEpochHead) {
    engine = PrimaryEngine(oid, dkey);
    ROS2_RETURN_IF_ERROR(RequireUp(engine));
  } else {
    ROS2_ASSIGN_OR_RETURN(engine, ReadableEngine(oid, dkey));
  }
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U64(epoch);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(engine, std::uint32_t(DaosOpcode::kSingleFetch), enc));
  rpc::Decoder dec(reply.header);
  return dec.Bytes();
}

// ---------------------------------------------------------------- punch

Status DaosClient::Punch(ContainerId cont, const ObjectId& oid,
                         const std::string& dkey, const std::string& akey,
                         PunchScope scope) {
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U8(std::uint8_t(scope));
  if (scope == PunchScope::kObject) {
    // The object's dkeys (and replicas) may live on every engine.
    bool any = false;
    for (std::uint32_t e = 0; e < engines_.size(); ++e) {
      auto reply = Call(e, std::uint32_t(DaosOpcode::kObjPunch),
                        enc);
      if (reply.ok()) {
        any = true;
      } else if (reply.status().code() == ErrorCode::kUnavailable) {
        return reply.status();  // down engine: fail loudly, not silently
      } else if (reply.status().code() != ErrorCode::kNotFound) {
        return reply.status();
      }
    }
    return any ? Status::Ok() : NotFound("no such object");
  }
  return CallReplicas(cont, oid, dkey, std::uint32_t(DaosOpcode::kObjPunch),
                      enc)
      .status();
}

Status DaosClient::PunchObject(ContainerId cont, const ObjectId& oid) {
  return Punch(cont, oid, "", "", PunchScope::kObject);
}
Status DaosClient::PunchDkey(ContainerId cont, const ObjectId& oid,
                             const std::string& dkey) {
  return Punch(cont, oid, dkey, "", PunchScope::kDkey);
}
Status DaosClient::PunchAkey(ContainerId cont, const ObjectId& oid,
                             const std::string& dkey,
                             const std::string& akey) {
  return Punch(cont, oid, dkey, akey, PunchScope::kAkey);
}

// ---------------------------------------------------------- enumeration

Result<std::vector<std::string>> DaosClient::ListDkeys(ContainerId cont,
                                                       const ObjectId& oid) {
  ROS2_ASSIGN_OR_RETURN(DkeyPage page, ListDkeysPage(cont, oid, "", 0));
  return std::move(page.dkeys);
}

Result<DaosClient::DkeyPage> DaosClient::ListDkeysPage(ContainerId cont,
                                                       const ObjectId& oid,
                                                       const std::string& marker,
                                                       std::uint32_t limit) {
  // Dkeys spread across engines; each engine pre-filters (> marker) and
  // pre-truncates to `limit`, so the client merge set holds at most
  // engines * limit entries, never the whole directory.
  rpc::Encoder enc;
  enc.U64(cont).U64(oid.hi).U64(oid.lo).Str(marker).U32(limit);
  std::set<std::string> merged;
  bool any_up = false;
  bool more = false;
  for (std::uint32_t e = 0; e < engines_.size(); ++e) {
    if (!map_->readable(e)) continue;
    any_up = true;
    ROS2_ASSIGN_OR_RETURN(
        rpc::RpcReply reply,
        Call(e, std::uint32_t(DaosOpcode::kListDkeys), enc));
    rpc::Decoder dec(reply.header);
    ROS2_ASSIGN_OR_RETURN(std::uint32_t count, dec.U32());
    for (std::uint32_t i = 0; i < count; ++i) {
      ROS2_ASSIGN_OR_RETURN(std::string dkey, dec.Str());
      merged.insert(std::move(dkey));
    }
    ROS2_ASSIGN_OR_RETURN(std::uint8_t engine_more, dec.U8());
    more = more || engine_more != 0;
  }
  if (!any_up) return Status(Unavailable("all engines are down"));
  DkeyPage page;
  page.dkeys.assign(merged.begin(), merged.end());
  if (limit != 0 && page.dkeys.size() > limit) {
    // The merge across engines can overshoot: dkeys past the cut are
    // still pending even if every engine said "done".
    page.dkeys.resize(limit);
    more = true;
  }
  page.more = more;
  return page;
}

Result<std::vector<std::string>> DaosClient::ListAkeys(
    ContainerId cont, const ObjectId& oid, const std::string& dkey) {
  ROS2_ASSIGN_OR_RETURN(std::uint32_t engine, ReadableEngine(oid, dkey));
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, "");
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(engine, std::uint32_t(DaosOpcode::kListAkeys), enc));
  return DecodeStringList(reply.header);
}

Result<std::uint64_t> DaosClient::ArraySize(ContainerId cont,
                                            const ObjectId& oid,
                                            const std::string& dkey,
                                            const std::string& akey,
                                            Epoch epoch) {
  std::uint32_t engine = 0;
  if (epoch != kEpochHead) {
    engine = PrimaryEngine(oid, dkey);
    ROS2_RETURN_IF_ERROR(RequireUp(engine));
  } else {
    ROS2_ASSIGN_OR_RETURN(engine, ReadableEngine(oid, dkey));
  }
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U64(epoch);
  ROS2_ASSIGN_OR_RETURN(
      rpc::RpcReply reply,
      Call(engine, std::uint32_t(DaosOpcode::kArraySize), enc));
  rpc::Decoder dec(reply.header);
  return dec.U64();
}

Status DaosClient::Aggregate(ContainerId cont, const ObjectId& oid,
                             const std::string& dkey, const std::string& akey,
                             Epoch upto) {
  rpc::Encoder enc;
  EncodeObjAddr(enc, cont, oid, dkey, akey);
  enc.U64(upto);
  return CallReplicas(cont, oid, dkey, std::uint32_t(DaosOpcode::kAggregate),
                      enc)
      .status();
}

}  // namespace ros2::daos
