// A real execution stream: one worker thread fed by a bounded MPSC queue
// (the Argobots xstream the paper's engine spawns per target, §3.3).
//
// Upstream DAOS pins one Argobots xstream per target and a CaRT progress
// thread feeds it ULTs; here the ULT body is a std::function and the
// scheduler (daos::EngineScheduler) is the feeder. The queue is bounded so
// a flooded target applies backpressure to the submitter instead of
// growing without bound — the same reason DAOS bounds its per-xstream
// ABT pools.
//
// Threading contract:
//  - Submit() may be called from any thread; it blocks while the queue is
//    full and returns false once the stream is stopping (the task was NOT
//    accepted — the caller still owns whatever the closure captured).
//  - Quiesce() blocks until every task submitted before the call has
//    finished executing (queue empty AND worker idle) — the barrier the
//    engine's all-target ops (object punch, dkey enumeration) stand on.
//  - Stop() drains the queue (every accepted task executes; none are
//    dropped) and joins the worker. Idempotent; the destructor calls it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace ros2::daos {

class Xstream {
 public:
  using Task = std::function<void()>;

  static constexpr std::size_t kDefaultQueueCapacity = 256;

  explicit Xstream(std::size_t queue_capacity = kDefaultQueueCapacity);
  ~Xstream();
  Xstream(const Xstream&) = delete;
  Xstream& operator=(const Xstream&) = delete;

  /// Enqueues `task` for the worker. Blocks while the queue is at
  /// capacity; returns false (task not accepted) once Stop() began.
  bool Submit(Task task);

  /// Waits until the queue is empty and the worker is between tasks.
  void Quiesce();

  /// Stops accepting tasks, runs everything already queued, joins the
  /// worker. Idempotent.
  void Stop();

  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Cumulative time the worker spent parked waiting for work (the
  /// busy-idle split's idle half; busy time is accounted per-op by the
  /// scheduler). Only ticks while the queue is empty, so the measurement
  /// itself costs nothing on a saturated stream.
  std::uint64_t idle_ns() const {
    return idle_ns_.load(std::memory_order_relaxed);
  }
  std::size_t queued() const;
  /// High-water mark of queue depth (backpressure telemetry).
  std::size_t max_queue_depth() const;

 private:
  void Run();

  mutable std::mutex mu_;
  std::condition_variable cv_nonempty_;  // worker waits for tasks
  std::condition_variable cv_space_;     // submitters wait for room
  std::condition_variable cv_idle_;      // Quiesce waits for drain
  std::deque<Task> queue_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  bool stopping_ = false;
  bool busy_ = false;  // worker currently inside a task body
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  std::thread worker_;
};

}  // namespace ros2::daos
