// A real execution stream: one worker thread fed by a bounded MPSC queue
// (the Argobots xstream the paper's engine spawns per target, §3.3).
//
// Upstream DAOS pins one Argobots xstream per target and a CaRT progress
// thread feeds it ULTs; here the ULT body is a std::function and the
// scheduler (daos::EngineScheduler) is the feeder. The queue is bounded so
// a flooded target applies backpressure to the submitter instead of
// growing without bound — the same reason DAOS bounds its per-xstream
// ABT pools.
//
// Threading contract:
//  - Submit() may be called from any thread; it blocks while the queue is
//    full and returns false once the stream is stopping (the task was NOT
//    accepted — the caller still owns whatever the closure captured).
//  - Quiesce() blocks until every task submitted before the call has
//    finished executing (queue empty AND worker idle) — the barrier the
//    engine's all-target ops (object punch, dkey enumeration) stand on.
//  - Stop() drains the queue (every accepted task executes; none are
//    dropped) and joins the worker. Idempotent; the destructor calls it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "common/thread_annotations.h"

namespace ros2::daos {

class Xstream {
 public:
  using Task = std::function<void()>;

  static constexpr std::size_t kDefaultQueueCapacity = 256;

  explicit Xstream(std::size_t queue_capacity = kDefaultQueueCapacity);
  ~Xstream();
  Xstream(const Xstream&) = delete;
  Xstream& operator=(const Xstream&) = delete;

  /// Enqueues `task` for the worker. Blocks while the queue is at
  /// capacity; returns false (task not accepted) once Stop() began.
  bool Submit(Task task) ROS2_EXCLUDES(mu_);

  /// Waits until the queue is empty and the worker is between tasks.
  void Quiesce() ROS2_EXCLUDES(mu_);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// worker. Idempotent.
  void Stop() ROS2_EXCLUDES(mu_);

  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Cumulative time the worker spent parked waiting for work (the
  /// busy-idle split's idle half; busy time is accounted per-op by the
  /// scheduler). Only ticks while the queue is empty, so the measurement
  /// itself costs nothing on a saturated stream.
  std::uint64_t idle_ns() const {
    return idle_ns_.load(std::memory_order_relaxed);
  }
  std::size_t queued() const ROS2_EXCLUDES(mu_);
  /// High-water mark of queue depth (backpressure telemetry).
  std::size_t max_queue_depth() const ROS2_EXCLUDES(mu_);

 private:
  void Run() ROS2_EXCLUDES(mu_);

  /// One lock over the MPSC queue and its flags; the three condvars all
  /// ride it (waits are while-loops so the guarded predicate reads stay
  /// in the annotated function).
  mutable common::Mutex mu_;
  common::CondVar cv_nonempty_;  // worker waits for tasks
  common::CondVar cv_space_;     // submitters wait for room
  common::CondVar cv_idle_;      // Quiesce waits for drain
  std::deque<Task> queue_ ROS2_GUARDED_BY(mu_);
  std::size_t capacity_;  // immutable after construction
  std::size_t high_water_ ROS2_GUARDED_BY(mu_) = 0;
  bool stopping_ ROS2_GUARDED_BY(mu_) = false;
  /// Worker currently inside a task body.
  bool busy_ ROS2_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  std::thread worker_;
};

}  // namespace ros2::daos
