#include "daos/xstream.h"

#include <chrono>
#include <utility>

namespace ros2::daos {

Xstream::Xstream(std::size_t queue_capacity)
    : capacity_(queue_capacity ? queue_capacity : 1),
      worker_([this] { Run(); }) {}

Xstream::~Xstream() { Stop(); }

bool Xstream::Submit(Task task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [this] {
      return queue_.size() < capacity_ || stopping_;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
  }
  cv_nonempty_.notify_one();
  return true;
}

void Xstream::Quiesce() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

void Xstream::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_nonempty_.notify_all();
  cv_space_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::size_t Xstream::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t Xstream::max_queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_water_;
}

void Xstream::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (queue_.empty() && !stopping_) {
      // Only an actually-parked worker pays the clock reads: a saturated
      // stream (predicate already true) skips this branch entirely.
      const auto idle_from = std::chrono::steady_clock::now();
      cv_nonempty_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      idle_ns_.fetch_add(
          std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - idle_from)
                            .count()),
          std::memory_order_relaxed);
    }
    if (queue_.empty()) break;  // stopping with a drained queue: exit
    Task task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lk.unlock();
    cv_space_.notify_one();
    task();
    task = nullptr;  // release captures before claiming idle
    executed_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
    busy_ = false;
    if (queue_.empty()) cv_idle_.notify_all();
  }
  cv_idle_.notify_all();
}

}  // namespace ros2::daos
