#include "daos/xstream.h"

#include <chrono>
#include <utility>

namespace ros2::daos {

Xstream::Xstream(std::size_t queue_capacity)
    : capacity_(queue_capacity ? queue_capacity : 1),
      worker_([this] { Run(); }) {}

Xstream::~Xstream() { Stop(); }

bool Xstream::Submit(Task task) {
  {
    common::MutexLock lk(mu_);
    while (queue_.size() >= capacity_ && !stopping_) cv_space_.Wait(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
  }
  cv_nonempty_.NotifyOne();
  return true;
}

void Xstream::Quiesce() {
  common::MutexLock lk(mu_);
  while (!queue_.empty() || busy_) cv_idle_.Wait(mu_);
}

void Xstream::Stop() {
  {
    common::MutexLock lk(mu_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_nonempty_.NotifyAll();
  cv_space_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

std::size_t Xstream::queued() const {
  common::MutexLock lk(mu_);
  return queue_.size();
}

std::size_t Xstream::max_queue_depth() const {
  common::MutexLock lk(mu_);
  return high_water_;
}

void Xstream::Run() {
  common::MutexLock lk(mu_);
  for (;;) {
    if (queue_.empty() && !stopping_) {
      // Only an actually-parked worker pays the clock reads: a saturated
      // stream (condition already true) skips this branch entirely.
      const auto idle_from = std::chrono::steady_clock::now();
      while (queue_.empty() && !stopping_) cv_nonempty_.Wait(mu_);
      idle_ns_.fetch_add(
          std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - idle_from)
                            .count()),
          std::memory_order_relaxed);
    }
    if (queue_.empty()) break;  // stopping with a drained queue: exit
    Task task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lk.Unlock();
    cv_space_.NotifyOne();
    task();
    task = nullptr;  // release captures before claiming idle
    executed_.fetch_add(1, std::memory_order_relaxed);
    lk.Lock();
    busy_ = false;
    if (queue_.empty()) cv_idle_.NotifyAll();
  }
  cv_idle_.NotifyAll();
}

}  // namespace ros2::daos
