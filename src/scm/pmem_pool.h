// PMDK-like persistent-memory pool (§2.4, §3.3).
//
// The DAOS engine keeps metadata and small records in SCM through PMDK;
// this model provides the same contract: byte-addressable allocation from a
// fixed pool, plus undo-log transactions so multi-word updates are
// crash-atomic. "Persistence" is simulated — SimulateCrash() rolls back any
// open transaction exactly as a power loss would under PMDK's undo log,
// which is the property the DAOS metadata path depends on.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.h"

namespace ros2::scm {

/// Pool-relative handle to an allocation (PMEMoid stand-in).
using PmemHandle = std::uint64_t;
inline constexpr PmemHandle kNullHandle = 0;

class PmemPool {
 public:
  explicit PmemPool(std::uint64_t capacity);

  /// Allocates `size` bytes; returns a stable handle. First-fit over a
  /// free list, like pmemobj's transactional allocator (simplified).
  Result<PmemHandle> Alloc(std::uint64_t size);
  Status Free(PmemHandle handle);

  /// Direct access to an allocation's bytes. The span is invalidated by
  /// Free of the same handle (never by other allocations).
  Result<std::span<std::byte>> Deref(PmemHandle handle);
  Result<std::span<const std::byte>> Deref(PmemHandle handle) const;

  // --- transactions (undo-log) -------------------------------------------
  /// Opens a transaction; nesting is not supported (PMDK flattens).
  Status TxBegin();
  /// Snapshots [offset, offset+length) of `handle` so TxAbort (or a crash)
  /// restores it. Must be called BEFORE modifying the range.
  Status TxSnapshot(PmemHandle handle, std::uint64_t offset,
                    std::uint64_t length);
  /// Allocation inside a transaction: rolled back on abort.
  Result<PmemHandle> TxAlloc(std::uint64_t size);
  /// Free inside a transaction: deferred until commit.
  Status TxFree(PmemHandle handle);
  Status TxCommit();
  void TxAbort();
  bool InTx() const { return in_tx_; }

  /// Power-loss simulation: any open transaction is rolled back via the
  /// undo log; committed state is untouched.
  void SimulateCrash();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t allocation_count() const { return allocations_.size(); }

 private:
  struct UndoRecord {
    PmemHandle handle;
    std::uint64_t offset;
    std::vector<std::byte> old_bytes;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::vector<std::byte> arena_;
  PmemHandle next_handle_ = 1;
  // handle -> (arena offset, size)
  std::map<PmemHandle, std::pair<std::uint64_t, std::uint64_t>> allocations_;
  // arena offset -> size of free block (coalesced on free)
  std::map<std::uint64_t, std::uint64_t> free_list_;

  bool in_tx_ = false;
  std::vector<UndoRecord> undo_log_;
  std::vector<PmemHandle> tx_allocs_;
  std::vector<PmemHandle> tx_frees_;
};

}  // namespace ros2::scm
