// Transactional key-value store over a PmemPool.
//
// Models the slice of DAOS's VOS metadata layer the engine needs: string
// keys to opaque values, crash-atomic updates, ordered iteration (for
// directory listings). Values live in pool allocations; the DRAM index is
// rebuilt implicitly (here: kept consistent) the way VOS rebuilds from SCM
// at open.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "scm/pmem_pool.h"

namespace ros2::scm {

class ScmKv {
 public:
  explicit ScmKv(PmemPool* pool) : pool_(pool) {}

  /// Inserts or overwrites. Crash-atomic: either the old or new value
  /// survives a crash, never a torn record.
  Status Put(std::string_view key, std::span<const std::byte> value);
  Status Put(std::string_view key, std::string_view value);

  Result<Buffer> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;
  Status Delete(std::string_view key);

  /// Keys with the given prefix, in lexicographic order.
  std::vector<std::string> ListPrefix(std::string_view prefix) const;

  std::size_t size() const { return index_.size(); }

 private:
  PmemPool* pool_;
  // key -> value allocation handle
  std::map<std::string, PmemHandle, std::less<>> index_;
  // handle -> logical value size (allocations round zero-length values up)
  std::map<PmemHandle, std::size_t> value_sizes_;
};

}  // namespace ros2::scm
