#include "scm/pmem_pool.h"

#include <algorithm>
#include <cstring>

namespace ros2::scm {

PmemPool::PmemPool(std::uint64_t capacity)
    : capacity_(capacity), arena_(capacity) {
  free_list_[0] = capacity;
}

Result<PmemHandle> PmemPool::Alloc(std::uint64_t size) {
  if (size == 0) return InvalidArgument("zero-size allocation");
  // First fit.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= size) {
      const std::uint64_t offset = it->first;
      const std::uint64_t remaining = it->second - size;
      free_list_.erase(it);
      if (remaining > 0) free_list_[offset + size] = remaining;
      const PmemHandle handle = next_handle_++;
      allocations_[handle] = {offset, size};
      used_ += size;
      std::memset(arena_.data() + offset, 0, size);
      return handle;
    }
  }
  return ResourceExhausted("pmem pool exhausted");
}

Status PmemPool::Free(PmemHandle handle) {
  auto it = allocations_.find(handle);
  if (it == allocations_.end()) return NotFound("unknown pmem handle");
  auto [offset, size] = it->second;
  allocations_.erase(it);
  used_ -= size;
  // Insert into the free list and coalesce with neighbours.
  auto inserted = free_list_.emplace(offset, size).first;
  if (inserted != free_list_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_list_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_list_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_list_.erase(next);
  }
  return Status::Ok();
}

Result<std::span<std::byte>> PmemPool::Deref(PmemHandle handle) {
  auto it = allocations_.find(handle);
  if (it == allocations_.end()) return NotFound("unknown pmem handle");
  return std::span<std::byte>(arena_.data() + it->second.first,
                              it->second.second);
}

Result<std::span<const std::byte>> PmemPool::Deref(PmemHandle handle) const {
  auto it = allocations_.find(handle);
  if (it == allocations_.end()) return NotFound("unknown pmem handle");
  return std::span<const std::byte>(arena_.data() + it->second.first,
                                    it->second.second);
}

Status PmemPool::TxBegin() {
  if (in_tx_) return FailedPrecondition("transaction already open");
  in_tx_ = true;
  return Status::Ok();
}

Status PmemPool::TxSnapshot(PmemHandle handle, std::uint64_t offset,
                            std::uint64_t length) {
  if (!in_tx_) return FailedPrecondition("no open transaction");
  auto it = allocations_.find(handle);
  if (it == allocations_.end()) return NotFound("unknown pmem handle");
  if (offset > it->second.second || length > it->second.second - offset) {
    return OutOfRange("snapshot range beyond allocation");
  }
  UndoRecord rec;
  rec.handle = handle;
  rec.offset = offset;
  rec.old_bytes.resize(length);
  // A zero-length snapshot has a null old_bytes.data(); memcpy's
  // arguments are nonnull even for length 0.
  if (length != 0) {
    std::memcpy(rec.old_bytes.data(),
                arena_.data() + it->second.first + offset, length);
  }
  undo_log_.push_back(std::move(rec));
  return Status::Ok();
}

Result<PmemHandle> PmemPool::TxAlloc(std::uint64_t size) {
  if (!in_tx_) return Status(FailedPrecondition("no open transaction"));
  auto res = Alloc(size);
  if (res.ok()) tx_allocs_.push_back(res.value());
  return res;
}

Status PmemPool::TxFree(PmemHandle handle) {
  if (!in_tx_) return FailedPrecondition("no open transaction");
  if (!allocations_.contains(handle)) return NotFound("unknown pmem handle");
  tx_frees_.push_back(handle);
  return Status::Ok();
}

Status PmemPool::TxCommit() {
  if (!in_tx_) return FailedPrecondition("no open transaction");
  for (PmemHandle h : tx_frees_) {
    ROS2_RETURN_IF_ERROR(Free(h));
  }
  undo_log_.clear();
  tx_allocs_.clear();
  tx_frees_.clear();
  in_tx_ = false;
  return Status::Ok();
}

void PmemPool::TxAbort() {
  if (!in_tx_) return;
  // Undo data modifications in reverse order.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    auto alloc = allocations_.find(it->handle);
    if (alloc != allocations_.end()) {
      std::memcpy(arena_.data() + alloc->second.first + it->offset,
                  it->old_bytes.data(), it->old_bytes.size());
    }
  }
  // Allocations made inside the tx never happened.
  for (PmemHandle h : tx_allocs_) {
    (void)Free(h);
  }
  // Deferred frees are dropped (the allocations survive).
  undo_log_.clear();
  tx_allocs_.clear();
  tx_frees_.clear();
  in_tx_ = false;
}

void PmemPool::SimulateCrash() { TxAbort(); }

}  // namespace ros2::scm
