#include "scm/scm_kv.h"

#include <cstring>

namespace ros2::scm {

Status ScmKv::Put(std::string_view key, std::span<const std::byte> value) {
  if (key.empty()) return InvalidArgument("empty key");
  // Allocate-new-then-swap: the index flip is the commit point, so a crash
  // mid-put leaves the old record intact (new allocation is rolled back).
  ROS2_RETURN_IF_ERROR(pool_->TxBegin());
  auto alloc = pool_->TxAlloc(value.empty() ? 1 : value.size());
  if (!alloc.ok()) {
    pool_->TxAbort();
    return alloc.status();
  }
  if (!value.empty()) {
    auto span = pool_->Deref(alloc.value());
    if (!span.ok()) {
      pool_->TxAbort();
      return span.status();
    }
    std::memcpy(span->data(), value.data(), value.size());
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    ROS2_RETURN_IF_ERROR(pool_->TxFree(it->second));
  }
  ROS2_RETURN_IF_ERROR(pool_->TxCommit());
  if (it != index_.end()) {
    it->second = alloc.value();
  } else {
    index_.emplace(std::string(key), alloc.value());
  }
  value_sizes_[alloc.value()] = value.size();
  return Status::Ok();
}

Status ScmKv::Put(std::string_view key, std::string_view value) {
  return Put(key, std::span<const std::byte>(
                      reinterpret_cast<const std::byte*>(value.data()),
                      value.size()));
}

Result<Buffer> ScmKv::Get(std::string_view key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return NotFound("key not found");
  auto span = pool_->Deref(it->second);
  if (!span.ok()) return span.status();
  auto size_it = value_sizes_.find(it->second);
  const std::size_t size =
      size_it != value_sizes_.end() ? size_it->second : span->size();
  Buffer out(size);
  // Empty values store a 1-byte placeholder allocation but read back as
  // size 0, where out.data() is null — and memcpy's arguments are
  // declared nonnull even for length 0 (ScmKvTest.EmptyValueSupported
  // trips this under UBSan).
  if (size != 0) std::memcpy(out.data(), span->data(), size);
  return out;
}

bool ScmKv::Contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

Status ScmKv::Delete(std::string_view key) {
  auto it = index_.find(key);
  if (it == index_.end()) return NotFound("key not found");
  ROS2_RETURN_IF_ERROR(pool_->Free(it->second));
  value_sizes_.erase(it->second);
  index_.erase(it);
  return Status::Ok();
}

std::vector<std::string> ScmKv::ListPrefix(std::string_view prefix) const {
  std::vector<std::string> out;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace ros2::scm
