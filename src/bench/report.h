// Structured result emitter for the experiments subsystem.
//
// Every bench binary used to printf its paper table and exit; nothing could
// aggregate, regenerate EXPERIMENTS.md, or diff two runs. BenchReport keeps
// the verbatim tables (AsciiTable renders are embedded untouched) and adds
// machine-readable scalar metrics, PASS/FAIL functional checks, and prose
// notes. It renders three ways:
//   * console  — what the binary prints to stdout (the old output, framed)
//   * markdown — the binary's EXPERIMENTS.md section
//   * JSON     — the "ros2-bench-report-v1" document that scripts/bench.sh
//                aggregates into BENCH_quick.json and benchctl diffs
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bench/json.h"
#include "common/status.h"
#include "common/table.h"

namespace ros2::bench {

/// One (key, value) experiment parameter. A vector — not a map — so params
/// emit in the order the experiment states them and diffs stay stable.
using Params = std::vector<std::pair<std::string, std::string>>;

/// Which way a metric is allowed to drift: `benchctl diff` fails a
/// direction-hinted metric only when it moves the BAD way beyond tolerance
/// (improvements pass); un-hinted metrics fail on any drift. Deterministic
/// model numbers should stay un-hinted — any drift there is a modeling
/// change that must be acknowledged by moving the baseline.
enum class MetricDirection {
  kNone,            ///< any out-of-tolerance drift fails
  kHigherIsBetter,  ///< only an out-of-tolerance drop fails
  kLowerIsBetter,   ///< only an out-of-tolerance rise fails
};

class BenchReport {
 public:
  BenchReport(std::string binary, bool quick)
      : binary_(std::move(binary)), quick_(quick) {}

  /// Tags the whole report as wall-clock-derived: benchctl keeps it out of
  /// the regenerated EXPERIMENTS.md and its metrics out of the default
  /// diff, exactly like normalized google-benchmark output.
  void MarkRealtime() { realtime_ = true; }
  bool realtime() const { return realtime_; }

  /// Starts a new experiment section; subsequent Add* calls land in it.
  void BeginExperiment(const std::string& name,
                       const std::string& description);

  /// Prose line (methodology, expected shapes, caveats).
  void AddNote(const std::string& text);

  /// Functional check (the PASS/FAIL lines the old binaries printed). A
  /// failed check fails the bench binary's exit code and benchctl diff.
  void AddCheck(const std::string& name, bool pass);

  /// Embeds an AsciiTable render verbatim (paper-table fidelity).
  void AddTable(const std::string& title, const AsciiTable& table);

  /// Machine-readable scalar: metrics are what `benchctl diff` compares
  /// across runs. Units are spelled out ("bytes_per_sec", "seconds",
  /// "ratio", "core_sec_per_gib", ...). `direction` annotates which way
  /// the metric may drift (see MetricDirection).
  void AddMetric(const std::string& metric, const std::string& unit,
                 double value, const Params& params = {},
                 MetricDirection direction = MetricDirection::kNone);

  const std::string& binary() const { return binary_; }
  bool quick() const { return quick_; }
  bool AllChecksPassed() const;

  Json ToJson() const;
  std::string RenderConsole() const;
  /// Convenience for RenderReportMarkdown(ToJson()).
  std::string RenderMarkdown() const;

  Status WriteJsonFile(const std::string& path) const;

 private:
  struct Check {
    std::string name;
    bool pass;
  };
  struct Table {
    std::string title;
    std::string text;
  };
  struct Metric {
    std::string metric;
    std::string unit;
    double value;
    Params params;
    MetricDirection direction;
  };
  struct Experiment {
    std::string name;
    std::string description;
    std::vector<std::string> notes;
    std::vector<Check> checks;
    std::vector<Table> tables;
    std::vector<Metric> metrics;
  };

  Experiment& Current();

  std::string binary_;
  bool quick_;
  bool realtime_ = false;
  std::vector<Experiment> experiments_;
};

/// Renders one ros2-bench-report-v1 JSON document as its EXPERIMENTS.md
/// section. The single markdown renderer: BenchReport::RenderMarkdown and
/// `ros2_benchctl merge --experiments-md` both go through it, so the
/// per-binary output and the regenerated EXPERIMENTS.md cannot diverge.
std::string RenderReportMarkdown(const Json& report);

}  // namespace ros2::bench
